// neighborhood — fleet-scale simulation of many premises on one feeder.
//
//   $ ./neighborhood [scenario] [premises] [threads] [seed] [csv_path]
//                    [--fidelity=full|device|stat|mixed:P]
//   $ ./neighborhood evening_peak 100 0 1 neighborhood.csv
//   $ ./neighborhood scale_sweep 100000 0 1 sweep.csv --fidelity=stat
//   $ ./neighborhood --list
//
// Runs the named fleet scenario (default: evening_peak, 100 premises,
// 24 simulated hours) on the work-stealing executor, prints the feeder
// metrics the utility cares about, and writes the aggregate feeder load
// series as CSV. An unknown scenario name is an error (never a silent
// fallback); --list prints the registered presets. `--fidelity` picks
// the premise backend tier (default full; see src/fidelity/).
// Deterministic: the same scenario/premises/seed/fidelity yields a
// byte-identical CSV for any thread count.
//
// `--telemetry=manifest.json` profiles the run into a versioned JSON
// manifest (phase breakdown, deterministic counters, run metadata);
// `--trace=trace.json` additionally records a Chrome trace-event
// timeline (chrome://tracing / Perfetto).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/han.hpp"
#include "example_util.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flags.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace han;
  using examples::arg_count;
  using examples::print_scenarios;

  if (examples::wants_scenario_list(argc, argv)) {
    print_scenarios(stdout);
    return 0;
  }

  const telemetry::FlagParse manifest_flag =
      telemetry::take_value_flag(argc, argv, "--telemetry");
  const telemetry::FlagParse trace_flag =
      telemetry::take_value_flag(argc, argv, "--trace");
  if (manifest_flag.error || trace_flag.error) {
    std::fprintf(stderr, "%s requires a filename (e.g. %s=out.json)\n",
                 manifest_flag.error ? "--telemetry" : "--trace",
                 manifest_flag.error ? "--telemetry" : "--trace");
    return 1;
  }

  // Peel --fidelity off wherever it sits; positionals stay in place.
  fidelity::FidelityPolicy fidelity_policy;
  std::vector<char*> positional;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fidelity=", 11) == 0) {
      const auto parsed = fidelity::policy_from_flag(argv[i] + 11);
      if (!parsed) {
        std::fprintf(stderr,
                     "bad --fidelity value '%s' "
                     "(want full | device | stat | mixed:P)\n",
                     argv[i] + 11);
        return 1;
      }
      fidelity_policy = *parsed;
    } else {
      positional.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(positional.size());
  argv = positional.data();

  const std::string scenario_name = argc > 1 ? argv[1] : "evening_peak";
  const std::size_t premises = arg_count(argc, argv, 2, 100);
  const std::size_t threads = arg_count(argc, argv, 3, 0);
  const auto seed = static_cast<std::uint64_t>(arg_count(argc, argv, 4, 1));
  const std::string csv_path = argc > 5 ? argv[5] : "neighborhood.csv";

  if (premises == 0) {
    std::fprintf(stderr, "premise count must be > 0\n");
    return 1;
  }

  const auto kind = fleet::scenario_from_name(scenario_name);
  if (!kind) {
    std::fprintf(stderr, "unknown scenario '%s'; available:\n",
                 scenario_name.c_str());
    print_scenarios(stderr);
    return 1;
  }

  // Open the output first: don't simulate for minutes just to discover
  // the CSV path is unwritable.
  std::ofstream csv(csv_path);
  if (!csv) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }

  fleet::FleetConfig cfg = fleet::make_scenario(*kind, premises, seed);
  cfg.fidelity = fidelity_policy;
  fleet::Executor executor(threads);
  std::printf("neighborhood — %s, %zu premises, %.0f h horizon, "
              "%zu threads, seed %llu, %s fidelity\n\n",
              scenario_name.c_str(), premises, cfg.horizon.hours_f(),
              executor.thread_count(),
              static_cast<unsigned long long>(seed),
              fidelity::to_string(fidelity_policy).c_str());

  telemetry::Collector collector;
  telemetry::Collector* const tel =
      manifest_flag.present || trace_flag.present ? &collector : nullptr;
  if (trace_flag.present) collector.enable_tracing();
  if (tel != nullptr) {
    collector.set_meta("binary", "neighborhood");
    collector.set_meta("scenario", scenario_name);
    collector.set_meta_num("premises", static_cast<double>(premises));
    collector.set_meta_num("seed", static_cast<double>(seed));
    collector.set_meta_num("threads",
                           static_cast<double>(executor.thread_count()));
    collector.set_meta("fidelity", fidelity::to_string(fidelity_policy));
    collector.set_meta_num("horizon_h", cfg.horizon.hours_f());
    collector.set_meta("git", telemetry::git_describe());
  }

  const fleet::FleetEngine engine(cfg);
  const fleet::FleetResult result = engine.run(executor, tel);
  const fleet::FeederMetrics& f = result.feeder;

  metrics::TextTable table({"feeder metric", "value"});
  table.add_row({"premises", std::to_string(f.premises)});
  table.add_row({"coordinated premises",
                 std::to_string(result.coordinated_premises)});
  table.add_row({"requests served", std::to_string(result.total_requests)});
  table.add_row({"coincident peak (kW)", metrics::fmt(f.coincident_peak_kw)});
  table.add_row({"sum of premise peaks (kW)",
                 metrics::fmt(f.sum_premise_peaks_kw)});
  table.add_row({"diversity factor", metrics::fmt(f.diversity_factor)});
  table.add_row({"mean load (kW)", metrics::fmt(f.mean_kw)});
  table.add_row({"peak-to-average ratio", metrics::fmt(f.peak_to_average)});
  table.add_row({"max step (kW)", metrics::fmt(f.max_step_kw)});
  table.add_row({"energy (MWh)", metrics::fmt(f.energy_mwh, 3)});
  table.add_row({"transformer rating (kW)",
                 metrics::fmt(f.transformer_capacity_kw)});
  table.add_row({"overload minutes", metrics::fmt(f.overload_minutes, 1)});
  table.add_row({"minDCD violations",
                 std::to_string(result.min_dcd_violations)});
  table.add_row({"service-gap violations",
                 std::to_string(result.service_gap_violations)});
  table.print(std::cout);

  metrics::write_csv(csv, {"feeder_kw"}, {&result.feeder_load});
  std::printf("\nfeeder series (%zu samples) -> %s\n",
              result.feeder_load.size(), csv_path.c_str());

  if (manifest_flag.present) {
    std::ofstream manifest(manifest_flag.value);
    if (!manifest) {
      std::fprintf(stderr, "cannot write %s\n", manifest_flag.value.c_str());
      return 1;
    }
    telemetry::write_manifest(collector, manifest);
    std::printf("telemetry manifest -> %s\n", manifest_flag.value.c_str());
  }
  if (trace_flag.present) {
    std::ofstream trace(trace_flag.value);
    if (!trace) {
      std::fprintf(stderr, "cannot write %s\n", trace_flag.value.c_str());
      return 1;
    }
    telemetry::write_chrome_trace(collector, trace);
    std::printf("chrome trace -> %s\n", trace_flag.value.c_str());
  }
  return 0;
}
