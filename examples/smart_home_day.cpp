// smart_home_day — a realistic mixed home over a summer day.
//
//   $ ./smart_home_day
//
// Demonstrates the pieces the paper's §II sketches beyond the testbed
// evaluation:
//   * heterogeneous Type-2 appliances whose (minDCD, maxDCP) are
//     *derived from physics* — each has a thermal zone (RC model), and
//     the constraints come from ThermalZone::derive_constraints();
//   * Type-1 base load (TV, lights, kitchen) that is metered but not
//     scheduled;
//   * a day-shaped request pattern (morning, midday, evening blocks)
//     instead of homogeneous Poisson arrivals.
//
// Prints an hourly load profile for both strategies.
#include <cstdio>
#include <string>
#include <vector>

#include "core/han.hpp"

namespace {

using namespace han;

/// One Type-2 appliance spec: power + its thermal environment.
struct Zone {
  const char* name;
  double kw;
  appliance::ThermalParams thermal;
};

std::vector<Zone> make_zones() {
  std::vector<Zone> zones;
  // Bedroom AC: tau = R*C = 48 min => ~25 min cooling bursts,
  // ~12 min drift-back through the 4 C comfort band.
  appliance::ThermalParams bedroom;
  bedroom.capacitance_kwh_per_deg = 0.1;
  bedroom.resistance_deg_per_kw = 8.0;
  bedroom.outdoor_deg = 40.0;
  bedroom.unit_kw = -3.0;
  bedroom.band_low_deg = 22.0;
  bedroom.band_high_deg = 26.0;
  zones.push_back({"bedroom-ac", 1.2, bedroom});
  // Living-room AC: twice the thermal mass, stronger unit.
  appliance::ThermalParams living = bedroom;
  living.capacitance_kwh_per_deg = 0.2;
  living.unit_kw = -4.5;
  zones.push_back({"living-ac", 1.8, living});
  // Water heater: well-insulated tank, narrow control band.
  appliance::ThermalParams boiler;
  boiler.capacitance_kwh_per_deg = 0.232;  // ~200 l of water
  boiler.resistance_deg_per_kw = 100.0;
  boiler.outdoor_deg = 25.0;  // ambient around the tank
  boiler.unit_kw = 2.0;
  boiler.band_low_deg = 58.0;
  boiler.band_high_deg = 62.0;
  zones.push_back({"water-heater", 2.0, boiler});
  // Fridge: small compartment, ~12 min compressor bursts.
  appliance::ThermalParams fridge;
  fridge.capacitance_kwh_per_deg = 0.02;
  fridge.resistance_deg_per_kw = 50.0;
  fridge.outdoor_deg = 28.0;
  fridge.unit_kw = -0.9;
  fridge.band_low_deg = 2.0;
  fridge.band_high_deg = 6.0;
  zones.push_back({"fridge", 0.3, fridge});
  // Second bedroom AC.
  zones.push_back({"bedroom2-ac", 1.2, bedroom});
  // Heat-pump dryer: runs close to continuously while demanded.
  appliance::ThermalParams dryer;
  dryer.capacitance_kwh_per_deg = 0.02;
  dryer.resistance_deg_per_kw = 20.0;
  dryer.outdoor_deg = 25.0;
  dryer.unit_kw = 2.5;
  dryer.band_low_deg = 50.0;
  dryer.band_high_deg = 70.0;
  zones.push_back({"dryer", 1.5, dryer});
  return zones;
}

double run_day(core::SchedulerKind kind, std::vector<double>& hourly) {
  const std::vector<Zone> zones = make_zones();

  sim::Simulator sim;
  core::HanConfig hc;
  hc.device_count = zones.size();
  hc.topology_kind = core::TopologyKind::kRandom;  // one house, short links
  hc.fidelity = core::CpFidelity::kAbstract;
  hc.scheduler = kind;
  hc.seed = 7;
  core::HanNetwork net(sim, hc);

  // Physics-derived duty-cycle constraints per appliance.
  std::printf("%-13s derived constraints (%s):\n", "",
              core::to_string(kind).data());
  for (std::size_t i = 0; i < zones.size(); ++i) {
    appliance::ThermalZone zone(zones[i].thermal,
                                zones[i].thermal.band_high_deg);
    const auto c = zone.derive_constraints();
    if (c) {
      net.di(static_cast<net::NodeId>(i))
          .appliance()
          .set_constraints(*c);
      std::printf("  %-12s minDCD %6.1f min   maxDCP %6.1f min\n",
                  zones[i].name, c->min_dcd().minutes_f(),
                  c->max_dcp().minutes_f());
    }
  }

  // Type-1 base load: TV + lights + kitchen bursts.
  const std::size_t tv = net.add_type1({net::kInvalidNode, "tv",
                                        appliance::ApplianceType::kType1,
                                        0.15});
  const std::size_t lights = net.add_type1(
      {net::kInvalidNode, "lights", appliance::ApplianceType::kType1, 0.2});
  const std::size_t kitchen = net.add_type1(
      {net::kInvalidNode, "kitchen", appliance::ApplianceType::kType1, 1.0});
  const auto t0 = sim::TimePoint::epoch();
  net.inject_type1_session(t0 + sim::hours(19), tv, sim::hours(4));
  net.inject_type1_session(t0 + sim::hours(18), lights, sim::hours(6));
  net.inject_type1_session(t0 + sim::hours(7), kitchen, sim::minutes(45));
  net.inject_type1_session(t0 + sim::hours(18) + sim::minutes(30), kitchen,
                           sim::minutes(60));

  // Day-shaped Type-2 demand: morning boiler, midday fridge/AC comfort,
  // evening everything.
  auto demand = [&](std::size_t dev, int hour, int minutes_service) {
    appliance::Request r;
    r.at = t0 + sim::hours(hour);
    r.device = static_cast<net::NodeId>(dev);
    r.service = sim::minutes(minutes_service);
    net.inject_request(r);
  };
  demand(2, 6, 120);   // water heater for the morning
  demand(3, 0, 1380);  // fridge runs all day
  demand(0, 13, 240);  // bedroom AC for the afternoon
  demand(1, 14, 300);  // living room AC
  demand(4, 21, 120);  // second bedroom at night
  demand(5, 20, 90);   // dryer after dinner
  demand(2, 18, 120);  // boiler again for the evening
  demand(0, 21, 180);  // bedroom AC at night

  metrics::LoadMonitor mon(sim, [&net] { return net.total_load_kw(); },
                           sim::minutes(1));
  net.start(t0 + sim::milliseconds(10));
  mon.start(t0 + sim::seconds(4));
  sim.run_until(t0 + sim::hours(24));

  const metrics::TimeSeries hourly_series = mon.series().downsample(60);
  hourly.assign(hourly_series.values().begin(), hourly_series.values().end());
  return mon.series().peak();
}

}  // namespace

int main() {
  std::printf("smart_home_day — heterogeneous home, thermal-derived "
              "constraints, 24 h\n\n");
  std::vector<double> un_hourly, co_hourly;
  const double un_peak = run_day(core::SchedulerKind::kUncoordinated,
                                 un_hourly);
  const double co_peak = run_day(core::SchedulerKind::kCoordinated,
                                 co_hourly);

  std::printf("\nhour  uncoordinated  coordinated   (mean kW)\n");
  for (std::size_t h = 0; h < un_hourly.size() && h < co_hourly.size();
       ++h) {
    std::printf("%4zu  %12.2f  %11.2f\n", h, un_hourly[h], co_hourly[h]);
  }
  std::printf("\npeak: %.2f kW uncoordinated vs %.2f kW coordinated\n",
              un_peak, co_peak);
  return 0;
}
