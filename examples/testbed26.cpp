// testbed26 — the paper's full testbed run at packet level.
//
//   $ ./testbed26 [high|moderate|low] [coordinated|uncoordinated] [seed]
//
// Simulates the 26-node office-floor deployment end to end: every
// MiniCast flood slot, every relay transmission, SINR/capture reception,
// clock drift — then the Execution Plane on top. Prints per-minute load
// as CSV plus CP/radio diagnostics a testbed operator would look at.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/han.hpp"

namespace {

using namespace han;

appliance::ArrivalScenario parse_scenario(const char* s) {
  if (std::strcmp(s, "low") == 0) return appliance::ArrivalScenario::kLow;
  if (std::strcmp(s, "moderate") == 0) {
    return appliance::ArrivalScenario::kModerate;
  }
  return appliance::ArrivalScenario::kHigh;
}

core::SchedulerKind parse_scheduler(const char* s) {
  return std::strcmp(s, "uncoordinated") == 0
             ? core::SchedulerKind::kUncoordinated
             : core::SchedulerKind::kCoordinated;
}

}  // namespace

int main(int argc, char** argv) {
  const appliance::ArrivalScenario scenario =
      argc > 1 ? parse_scenario(argv[1]) : appliance::ArrivalScenario::kHigh;
  const core::SchedulerKind kind = argc > 2
                                       ? parse_scheduler(argv[2])
                                       : core::SchedulerKind::kCoordinated;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  std::fprintf(stderr,
               "testbed26: scenario=%s scheduler=%s seed=%llu "
               "(packet-level, ~1-2 min wall time)\n",
               to_string(scenario).data(), core::to_string(kind).data(),
               static_cast<unsigned long long>(seed));

  const core::ExperimentConfig cfg = core::paper_config(scenario, kind, seed);
  const core::ExperimentResult r = core::run_experiment(cfg);

  // Figure-ready CSV on stdout.
  metrics::write_csv(std::cout, {"load_kw"}, {&r.load});

  // Operator diagnostics on stderr.
  std::fprintf(stderr, "\n--- load ---\n");
  std::fprintf(stderr, "peak %.1f kW, mean %.2f kW, stddev %.2f kW, "
                       "largest step %.1f kW\n",
               r.peak_kw, r.mean_kw, r.std_kw, r.max_step_kw);
  std::fprintf(stderr, "--- workload ---\n");
  std::fprintf(stderr, "%llu requests injected\n",
               static_cast<unsigned long long>(r.requests));
  std::fprintf(stderr, "--- communication plane ---\n");
  std::fprintf(stderr,
               "mean all-to-all coverage %.4f, stale-view rounds %llu\n",
               r.network.cp_mean_coverage,
               static_cast<unsigned long long>(r.network.stale_view_rounds));
  std::fprintf(stderr, "--- radio cost ---\n");
  std::fprintf(stderr, "mean duty cycle %.2f%%, total charge %.1f mAh\n",
               100.0 * r.network.mean_radio_duty,
               r.network.total_radio_mah);
  std::fprintf(stderr, "--- constraint audit ---\n");
  std::fprintf(stderr, "minDCD violations %llu, service gaps %llu\n",
               static_cast<unsigned long long>(r.network.min_dcd_violations),
               static_cast<unsigned long long>(
                   r.network.service_gap_violations));
  return 0;
}
