// Quickstart: run the paper's headline experiment in ~20 lines.
//
//   $ ./quickstart
//
// Builds the 26-node HAN on the simulated office floor, plays the
// high-rate request workload for 350 minutes with and without the
// collaborative scheduler, and prints the comparison.
#include <cstdio>

#include "core/han.hpp"

int main() {
  using namespace han;

  std::printf("Collaborative Load Management in a Smart HAN — quickstart\n");
  std::printf("26 x 1 kW duty-cycled devices, 30 requests/hour, 350 min\n\n");

  for (const core::SchedulerKind kind : {core::SchedulerKind::kUncoordinated,
                                         core::SchedulerKind::kCoordinated}) {
    // paper_config() gives the full packet-level setup; the abstract CP
    // keeps the quickstart instant.
    core::ExperimentConfig cfg =
        core::paper_config(appliance::ArrivalScenario::kHigh, kind);
    cfg.han.fidelity = core::CpFidelity::kAbstract;

    const core::ExperimentResult r = core::run_experiment(cfg);
    std::printf("%-15s peak %5.1f kW   mean %5.2f kW   stddev %4.2f kW\n",
                core::to_string(kind).data(), r.peak_kw, r.mean_kw,
                r.std_kw);
  }

  std::printf(
      "\nCoordination staggers the devices' ON bursts into minDCD-wide\n"
      "phase slots, so requests execute one by one instead of stacking.\n"
      "Try examples/testbed26 for the full packet-level radio simulation.\n");
  return 0;
}
