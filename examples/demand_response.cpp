// demand_response — closed-loop grid control over a neighborhood fleet.
//
//   $ ./demand_response [scenario] [premises] [threads] [seed] [log_csv]
//                       [feeders] [mode] [--transfers[=on|off]]
//                       [--fidelity=full|device|stat|mixed:P]
//   $ ./demand_response dr_heat_wave 100 0 1 signals.csv
//   $ ./demand_response multi_feeder 100 0 1 signals.csv 4
//   $ ./demand_response dr_heat_wave 100 0 1 signals.csv 0 event
//   $ ./demand_response multi_feeder 100 0 1 signals.csv 8 polled --transfers
//   $ ./demand_response tie_switch 100 0 1 signals.csv 0 polled --transfers=off
//   $ ./demand_response dr_heat_wave 10000 0 1 signals.csv 0 polled --fidelity=stat
//   $ ./demand_response --list
//
// `mode` selects the control plane: `polled` (default; fixed
// control-interval barriers, byte-identical output across versions) or
// `event` (threshold-triggered observation; far fewer barriers).
// `--transfers` (anywhere on the line) forces the substation tie
// switches on; `--transfers=off` mutes them even for presets that
// enable them (tie_switch with transfers off is multi_feeder exactly).
// `--fidelity` picks the premise backend tier (default full):
// `device` steps duty-cycle state machines without the radio plane,
// `stat` runs the calibrated statistical surrogate, and `mixed:P`
// keeps fraction P of each feeder at full fidelity (stratified,
// at least one per feeder) with the rest statistical.
//
// Runs the named scenario twice with the same seed — open loop (DR
// controller muted) and closed loop — and prints what closing the loop
// bought the transformer: overload minutes avoided, shed count and
// latency, unserved-shed kW, and the comfort cost premises paid. The
// full signal/compliance log is written as CSV. Deterministic: the
// same scenario/premises/seed yields byte-identical output (including
// the log) for any thread count.
// `--telemetry=manifest.json` profiles the closed-loop run (phase
// wall-clock breakdown, deterministic counters, run metadata) into a
// versioned JSON manifest; `--trace=trace.json` additionally records a
// Chrome trace-event timeline loadable in chrome://tracing or Perfetto.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/han.hpp"
#include "example_util.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flags.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace han;
  using examples::arg_count;
  using examples::print_scenarios;

  if (examples::wants_scenario_list(argc, argv)) {
    print_scenarios(stdout);
    return 0;
  }

  // Valued flags first (they consume a following argument), then the
  // boolean/inline flags, leaving the positionals where arg_count
  // expects them.
  const telemetry::FlagParse manifest_flag =
      telemetry::take_value_flag(argc, argv, "--telemetry");
  const telemetry::FlagParse trace_flag =
      telemetry::take_value_flag(argc, argv, "--trace");
  if (manifest_flag.error || trace_flag.error) {
    std::fprintf(stderr, "%s requires a filename (e.g. %s=out.json)\n",
                 manifest_flag.error ? "--telemetry" : "--trace",
                 manifest_flag.error ? "--telemetry" : "--trace");
    return 1;
  }

  // Peel the --transfers/--fidelity flags off wherever they sit,
  // leaving the positional arguments where arg_count expects them.
  int transfers_override = -1;  // -1 preset, 0 off, 1 on
  fidelity::FidelityPolicy fidelity_policy;
  std::vector<char*> positional;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transfers") == 0 ||
        std::strcmp(argv[i], "--transfers=on") == 0) {
      transfers_override = 1;
    } else if (std::strcmp(argv[i], "--transfers=off") == 0) {
      transfers_override = 0;
    } else if (std::strncmp(argv[i], "--fidelity=", 11) == 0) {
      const auto parsed = fidelity::policy_from_flag(argv[i] + 11);
      if (!parsed) {
        std::fprintf(stderr,
                     "bad --fidelity value '%s' "
                     "(want full | device | stat | mixed:P)\n",
                     argv[i] + 11);
        return 1;
      }
      fidelity_policy = *parsed;
    } else {
      positional.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(positional.size());
  argv = positional.data();

  const std::string scenario_name = argc > 1 ? argv[1] : "dr_heat_wave";
  const std::size_t premises = arg_count(argc, argv, 2, 100);
  const std::size_t threads = arg_count(argc, argv, 3, 0);
  const auto seed = static_cast<std::uint64_t>(arg_count(argc, argv, 4, 1));
  const std::string log_path = argc > 5 ? argv[5] : "signals.csv";
  // 0 keeps the scenario's own feeder count (1 for single-feeder
  // presets, 4 for multi_feeder).
  const std::size_t feeder_override = arg_count(argc, argv, 6, 0);
  const std::string mode = argc > 7 ? argv[7] : "polled";

  if (premises == 0) {
    std::fprintf(stderr, "premise count must be > 0\n");
    return 1;
  }
  fleet::ControlMode control_mode = fleet::ControlMode::kPolled;
  if (mode == "event" || mode == "event_driven") {
    control_mode = fleet::ControlMode::kEventDriven;
  } else if (mode != "polled") {
    std::fprintf(stderr,
                 "unknown control mode '%s' (want polled | event)\n",
                 mode.c_str());
    return 1;
  }
  const auto kind = fleet::scenario_from_name(scenario_name);
  if (!kind) {
    std::fprintf(stderr, "unknown scenario '%s'; available:\n",
                 scenario_name.c_str());
    print_scenarios(stderr);
    return 1;
  }

  std::ofstream log(log_path);
  if (!log) {
    std::fprintf(stderr, "cannot write %s\n", log_path.c_str());
    return 1;
  }

  fleet::FleetConfig closed = fleet::make_scenario(*kind, premises, seed);
  closed.grid.enabled = true;  // close the loop even for non-DR presets
  closed.grid.control_mode = control_mode;
  closed.fidelity = fidelity_policy;
  if (feeder_override > 0) closed.feeder_count = feeder_override;
  if (transfers_override >= 0) {
    closed.grid.tie.enabled = transfers_override == 1;
  }
  fleet::FleetConfig open = closed;
  open.grid.enabled = false;

  fleet::Executor executor(threads);
  std::printf("demand_response — %s, %zu premises, %zu feeder(s), "
              "%.0f h horizon, %zu threads, seed %llu, %s control, "
              "%s fidelity\n\n",
              scenario_name.c_str(), premises, closed.feeder_count,
              closed.horizon.hours_f(), executor.thread_count(),
              static_cast<unsigned long long>(seed), mode.c_str(),
              fidelity::to_string(fidelity_policy).c_str());

  // Telemetry profiles the closed-loop run (the open-loop leg is the
  // untimed counterfactual).
  telemetry::Collector collector;
  telemetry::Collector* const tel =
      manifest_flag.present || trace_flag.present ? &collector : nullptr;
  if (trace_flag.present) collector.enable_tracing();
  if (tel != nullptr) {
    collector.set_meta("binary", "demand_response");
    collector.set_meta("scenario", scenario_name);
    collector.set_meta_num("premises", static_cast<double>(premises));
    collector.set_meta_num("seed", static_cast<double>(seed));
    collector.set_meta_num("feeders",
                           static_cast<double>(closed.feeder_count));
    collector.set_meta_num("threads",
                           static_cast<double>(executor.thread_count()));
    collector.set_meta("control_mode", mode);
    collector.set_meta("fidelity", fidelity::to_string(fidelity_policy));
    collector.set_meta("transfers",
                       closed.grid.tie.enabled ? "on" : "off");
    collector.set_meta_num("horizon_h", closed.horizon.hours_f());
    collector.set_meta("git", telemetry::git_describe());
  }

  const fleet::GridFleetResult off =
      fleet::FleetEngine(open).run_grid(executor);
  const fleet::GridFleetResult on =
      fleet::FleetEngine(closed).run_grid(executor, tel);

  metrics::TextTable table({"metric", "open loop", "closed loop"});
  const auto row = [&table](const std::string& label, double a, double b,
                            int precision = 1) {
    table.add_row({label, metrics::fmt(a, precision),
                   metrics::fmt(b, precision)});
  };
  row("coincident peak (kW)", off.fleet.feeder.coincident_peak_kw,
      on.fleet.feeder.coincident_peak_kw);
  row("transformer rating (kW)", off.fleet.feeder.transformer_capacity_kw,
      on.fleet.feeder.transformer_capacity_kw);
  row("overload minutes", off.fleet.feeder.overload_minutes,
      on.fleet.feeder.overload_minutes);
  row("hot minutes (thermal)", off.hot_minutes, on.hot_minutes);
  row("peak hotspot temp (pu)", off.peak_temperature_pu,
      on.peak_temperature_pu, 3);
  row("energy (MWh)", off.fleet.feeder.energy_mwh, on.fleet.feeder.energy_mwh,
      3);
  row("service-gap violations (comfort)",
      static_cast<double>(off.comfort_gap_violations),
      static_cast<double>(on.comfort_gap_violations), 0);
  table.print(std::cout);

  const grid::DrStats& dr = on.dr;
  std::printf("\ndemand response:\n");
  std::printf("  overload minutes avoided   %.1f\n",
              off.fleet.feeder.overload_minutes -
                  on.fleet.feeder.overload_minutes);
  std::printf("  shed signals               %llu\n",
              static_cast<unsigned long long>(dr.shed_signals));
  std::printf("  all-clear signals          %llu\n",
              static_cast<unsigned long long>(dr.all_clear_signals));
  std::printf("  tariff signals             %llu\n",
              static_cast<unsigned long long>(dr.tariff_signals));
  std::printf("  shed-active minutes        %.1f\n",
              dr.shed_active_minutes);
  std::printf("  mean shed latency (min)    %.2f\n",
              dr.mean_shed_latency_minutes());
  std::printf("  mean unserved shed (kW)    %.2f\n",
              dr.mean_unserved_shed_kw());
  std::printf("  enrolled premises          %zu / %zu (%zu can comply)\n",
              on.opted_in_premises, premises, on.complying_premises);
  std::printf("  control barriers           %llu\n",
              static_cast<unsigned long long>(on.control_barriers));
  std::printf("  controller wakes           %llu\n",
              static_cast<unsigned long long>(on.controller_wakes));

  if (on.feeders.size() > 1) {
    std::printf("\nper-feeder (closed loop, capacity shares by planned "
                "skew weight):\n");
    metrics::TextTable shards({"feeder", "premises", "capacity kW",
                               "peak kW", "overload min", "sheds",
                               "enrolled"});
    for (const fleet::FeederOutcome& fo : on.feeders) {
      shards.add_row({std::to_string(fo.feeder),
                      std::to_string(fo.premises),
                      metrics::fmt(fo.capacity_kw, 1),
                      metrics::fmt(fo.peak_load_kw, 1),
                      metrics::fmt(fo.overload_minutes, 1),
                      std::to_string(fo.dr.shed_signals),
                      std::to_string(fo.opted_in_premises)});
    }
    shards.print(std::cout);
    const fleet::SubstationMetrics& sub = on.fleet.substation;
    std::printf("\nsubstation: peak %.1f kW vs %.1f kW summed feeder "
                "peaks (inter-feeder diversity %.4f)\n",
                sub.coincident_peak_kw, sub.sum_feeder_peaks_kw,
                sub.inter_feeder_diversity);

    if (closed.grid.tie.enabled) {
      std::printf("\ntie-switch transfers (closed loop): %llu operations "
                  "(%llu transfers, %llu give-backs), %llu premise moves, "
                  "%.2f kWh served off home feeder\n",
                  static_cast<unsigned long long>(sub.tie_switch_operations),
                  static_cast<unsigned long long>(sub.tie_transfers),
                  static_cast<unsigned long long>(sub.tie_give_backs),
                  static_cast<unsigned long long>(sub.premises_transferred),
                  sub.transferred_energy_kwh);
      metrics::TextTable ties({"feeder", "xfers out", "xfers in",
                               "lent", "borrowed", "lent kWh",
                               "borrowed kWh"});
      for (const fleet::FeederOutcome& fo : on.feeders) {
        ties.add_row({std::to_string(fo.feeder),
                      std::to_string(fo.transfers_out),
                      std::to_string(fo.transfers_in),
                      std::to_string(fo.premises_lent),
                      std::to_string(fo.premises_borrowed),
                      metrics::fmt(fo.energy_lent_kwh, 2),
                      metrics::fmt(fo.energy_borrowed_kwh, 2)});
      }
      ties.print(std::cout);
    }
  }

  log << on.signal_log_csv;
  std::printf("\nsignal/compliance log (%zu deliveries) -> %s\n",
              on.deliveries.size(), log_path.c_str());

  if (manifest_flag.present) {
    std::ofstream manifest(manifest_flag.value);
    if (!manifest) {
      std::fprintf(stderr, "cannot write %s\n", manifest_flag.value.c_str());
      return 1;
    }
    telemetry::write_manifest(collector, manifest);
    std::printf("telemetry manifest -> %s\n", manifest_flag.value.c_str());
  }
  if (trace_flag.present) {
    std::ofstream trace(trace_flag.value);
    if (!trace) {
      std::fprintf(stderr, "cannot write %s\n", trace_flag.value.c_str());
      return 1;
    }
    telemetry::write_chrome_trace(collector, trace);
    std::printf("chrome trace (load in chrome://tracing or "
                "https://ui.perfetto.dev) -> %s\n",
                trace_flag.value.c_str());
  }
  return 0;
}
