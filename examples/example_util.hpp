// Shared helpers for the example binaries' tiny CLI surface.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fleet/scenario.hpp"

namespace han::examples {

/// Parses argv[i] as a non-negative count; anything unparsable or
/// negative falls back to `fallback`.
inline std::size_t arg_count(int argc, char** argv, int i,
                             std::size_t fallback) {
  if (argc <= i) return fallback;
  const long long v = std::atoll(argv[i]);
  return v >= 0 ? static_cast<std::size_t>(v) : fallback;
}

/// Prints the registered fleet scenario presets, one per line.
inline void print_scenarios(std::FILE* out) {
  for (const fleet::ScenarioInfo& s : fleet::scenarios()) {
    std::fprintf(out, "  %-16s %.*s\n", std::string(s.name).c_str(),
                 static_cast<int>(s.description.size()),
                 s.description.data());
  }
}

/// True when argv[1] is the --list/-l flag (print presets and exit 0).
inline bool wants_scenario_list(int argc, char** argv) {
  return argc > 1 && (std::strcmp(argv[1], "--list") == 0 ||
                      std::strcmp(argv[1], "-l") == 0);
}

}  // namespace han::examples
