// evening_peak — peak shaving under synchronized demand surges.
//
//   $ ./evening_peak
//
// Models the classic utility problem: at 18:00 a whole block of
// appliances is switched on within minutes (everyone returns home).
// Shows, minute by minute around the surge, how the collaborative
// scheduler converts the stacked spike into a staircase — the "up to
// 50%" regime of the paper's abstract.
#include <cstdio>

#include "core/han.hpp"

namespace {

using namespace han;

metrics::TimeSeries run_surge(core::SchedulerKind kind) {
  sim::Simulator sim;
  core::HanConfig hc;
  hc.device_count = 26;
  hc.topology_kind = core::TopologyKind::kFlockLab26;
  hc.fidelity = core::CpFidelity::kAbstract;
  hc.scheduler = kind;
  hc.seed = 3;
  core::HanNetwork net(sim, hc);

  // The surge: 20 devices requested within 3 minutes of t=60 min, plus a
  // small steady background before and after.
  const auto t0 = sim::TimePoint::epoch();
  sim::Rng rng(3);
  sim::Rng jitter = rng.stream("jitter");
  for (net::NodeId d = 0; d < 20; ++d) {
    appliance::Request r;
    r.at = t0 + sim::minutes(60) +
           sim::seconds_f(jitter.uniform(0.0, 180.0));
    r.device = d;
    r.service = sim::minutes(30);
    net.inject_request(r);
  }
  for (int k = 0; k < 6; ++k) {  // background requests
    appliance::Request r;
    r.at = t0 + sim::minutes(10 + 25 * k);
    r.device = static_cast<net::NodeId>(20 + k % 6);
    r.service = sim::minutes(30);
    net.inject_request(r);
  }

  metrics::LoadMonitor mon(sim, [&net] { return net.total_load_kw(); },
                           sim::minutes(1));
  net.start(t0 + sim::milliseconds(10));
  mon.start(t0 + sim::seconds(4));
  sim.run_until(t0 + sim::minutes(180));
  return mon.series();
}

}  // namespace

int main() {
  std::printf("evening_peak — 20 simultaneous requests at t=60 min\n\n");
  const metrics::TimeSeries without =
      run_surge(core::SchedulerKind::kUncoordinated);
  const metrics::TimeSeries with =
      run_surge(core::SchedulerKind::kCoordinated);

  std::printf("min   w/o coordination        with coordination\n");
  for (std::size_t m = 50; m < 140 && m < without.size(); m += 2) {
    std::printf("%4zu  ", m);
    const int a = static_cast<int>(without.at(m) + 0.5);
    const int b = static_cast<int>(with.at(m) + 0.5);
    for (int i = 0; i < a; ++i) std::putchar('#');
    for (int i = a; i < 22; ++i) std::putchar(' ');
    std::printf("| ");
    for (int i = 0; i < b; ++i) std::putchar('#');
    std::printf("\n");
  }
  std::printf("\npeak: %.0f kW -> %.0f kW (%.0f%% reduction)\n",
              without.peak(), with.peak(),
              100.0 * (without.peak() - with.peak()) / without.peak());
  std::printf("stddev: %.2f kW -> %.2f kW (%.0f%% reduction)\n",
              without.stddev(), with.stddev(),
              100.0 * (without.stddev() - with.stddev()) / without.stddev());
  return 0;
}
