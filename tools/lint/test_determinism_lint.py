#!/usr/bin/env python3
"""Unit tests for determinism_lint.py.

Each lint rule is exercised three ways against the fixture tree in
tests/fixtures/: a positive file that must be flagged, a negative file
that must stay clean, and the lint:allow escape hatch (justified allows
suppress; unjustified, unknown-rule and stale allows are themselves
errors). Run directly or via CTest (`ctest -R lint`).
"""

import io
import os
import shutil
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "tests", "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))

sys.path.insert(0, HERE)
import determinism_lint  # noqa: E402


def run_lint(*argv):
    """Runs the linter in-process; returns (exit_code, stdout_lines)."""
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = determinism_lint.main(list(argv))
    lines = [l for l in out.getvalue().splitlines() if l]
    return code, lines


def lint_fixture(relpath):
    return run_lint("--root", FIXTURES, os.path.join(FIXTURES, relpath))


class UnseededRandomTest(unittest.TestCase):
    def test_positive_catches_every_pattern(self):
        code, lines = lint_fixture("src/appliance/bad_rand.cpp")
        self.assertEqual(code, 1)
        findings = [l for l in lines if "[unseeded-random]" in l]
        # <random> include, random_device, mt19937, distribution, srand, rand.
        self.assertGreaterEqual(len(findings), 6)

    def test_negative_rng_stream_idiom(self):
        code, lines = lint_fixture("src/appliance/ok_rng.cpp")
        self.assertEqual(code, 0, lines)

    def test_seed_plumbing_exempt(self):
        code, lines = lint_fixture("src/sim/random.cpp")
        self.assertEqual(code, 0, lines)


class WallClockTest(unittest.TestCase):
    def test_positive(self):
        code, lines = lint_fixture("src/sim/bad_time.cpp")
        self.assertEqual(code, 1)
        findings = [l for l in lines if "[wall-clock]" in l]
        self.assertEqual(len(findings), 2)  # system_clock + time(nullptr)

    def test_telemetry_dir_exempt(self):
        code, lines = lint_fixture("src/telemetry/clock_ok.cpp")
        self.assertEqual(code, 0, lines)

    def test_justified_allow_suppresses_trailing_and_preceding(self):
        code, lines = lint_fixture("src/sim/allowed_time.cpp")
        self.assertEqual(code, 0, lines)


class UnorderedTest(unittest.TestCase):
    def test_iteration_flagged(self):
        code, lines = lint_fixture("src/sim/iter_unordered.cpp")
        self.assertEqual(code, 1)
        self.assertTrue(any("[unordered-iteration]" in l for l in lines),
                        lines)
        # The declaration itself is excused by its justified allow.
        self.assertFalse(any("[unordered-container]" in l for l in lines))

    def test_declaration_flagged_in_result_committing_layer(self):
        code, lines = lint_fixture("src/fleet/decl_unordered.cpp")
        self.assertEqual(code, 1)
        self.assertTrue(any("[unordered-container]" in l and "by_premise" in l
                            for l in lines), lines)

    def test_declaration_allow_with_doc_comment_between(self):
        code, lines = lint_fixture("src/fleet/decl_allowed.cpp")
        self.assertEqual(code, 0, lines)


class PragmaOnceTest(unittest.TestCase):
    def test_missing_pragma(self):
        code, lines = lint_fixture("src/sim/bad_header.hpp")
        self.assertEqual(code, 1)
        self.assertTrue(any("[pragma-once]" in l for l in lines), lines)

    def test_pragma_after_leading_comment_ok(self):
        code, lines = lint_fixture("src/sim/good_header.hpp")
        self.assertEqual(code, 0, lines)


class AllowHygieneTest(unittest.TestCase):
    def test_unjustified_allow_is_error_and_does_not_suppress(self):
        code, lines = lint_fixture("src/sim/unjustified_allow.cpp")
        self.assertEqual(code, 1)
        self.assertTrue(any("[allow-syntax]" in l for l in lines), lines)
        self.assertTrue(any("[wall-clock]" in l for l in lines), lines)

    def test_unknown_rule_allow_is_error(self):
        code, lines = lint_fixture("src/sim/unknown_rule_allow.cpp")
        self.assertEqual(code, 1)
        self.assertTrue(any("unknown rule" in l for l in lines), lines)

    def test_stale_allow_is_error(self):
        code, lines = lint_fixture("src/sim/stale_allow.cpp")
        self.assertEqual(code, 1)
        self.assertTrue(any("suppresses nothing" in l for l in lines), lines)


class WholeTreeTest(unittest.TestCase):
    def test_fixture_tree_totals(self):
        """Linting the whole fixture tree finds exactly the seeded
        positives — a drift check on scoping (a rule leaking into an
        exempt directory would change the count)."""
        code, lines = run_lint("--root", FIXTURES)
        self.assertEqual(code, 1)
        by_rule = {}
        for l in lines:
            if "[" in l:
                rule = l.split("[", 1)[1].split("]", 1)[0]
                by_rule[rule] = by_rule.get(rule, 0) + 1
        self.assertGreaterEqual(by_rule.get("unseeded-random", 0), 6)
        self.assertEqual(by_rule.get("wall-clock"), 3)  # bad_time x2 + unjustified x1
        self.assertEqual(by_rule.get("unordered-iteration"), 1)
        self.assertEqual(by_rule.get("unordered-container"), 1)
        self.assertEqual(by_rule.get("pragma-once"), 1)
        self.assertEqual(by_rule.get("allow-syntax"), 3)

    def test_real_src_is_clean(self):
        """The committed tree must lint clean — the same invocation CI
        runs."""
        code, lines = run_lint("--root", REPO_ROOT)
        self.assertEqual(code, 0, lines)


class CiArtifactsTest(unittest.TestCase):
    def test_real_repo_artifacts_exist(self):
        code, lines = run_lint("--root", REPO_ROOT, "--check-ci-artifacts")
        self.assertEqual(code, 0, lines)

    def test_missing_snapshot_fails_fast(self):
        tmp = tempfile.mkdtemp(prefix="lint_art_")
        try:
            wf = os.path.join(tmp, ".github", "workflows")
            os.makedirs(wf)
            os.makedirs(os.path.join(tmp, "ci", "golden"))
            with open(os.path.join(wf, "ci.yml"), "w") as f:
                f.write("run: cmp out.csv ci/golden/renamed_golden.csv\n"
                        "run: python3 ci/check_bench.py ci/BENCH_gone.json x\n")
            # Present golden so only the renamed refs are missing.
            with open(os.path.join(tmp, "ci", "golden", "other.csv"),
                      "w") as f:
                f.write("x\n")
            code, lines = run_lint("--root", tmp, "--check-ci-artifacts")
            self.assertEqual(code, 1)
            self.assertTrue(
                any("renamed_golden.csv" in l for l in lines), lines)
            self.assertTrue(any("BENCH_gone.json" in l for l in lines), lines)
        finally:
            shutil.rmtree(tmp)


if __name__ == "__main__":
    unittest.main(verbosity=2)
