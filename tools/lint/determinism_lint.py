#!/usr/bin/env python3
"""Determinism & hygiene linter for the han codebase.

The repo's core guarantee is byte-identical simulation results at any
executor width. Runtime tests pin that after the fact; this linter stops
the classes of change that break it from landing at all:

  unseeded-random      rand()/srand(), <random> engines and distributions
                       anywhere outside the designated seed plumbing
                       (src/sim/random.*). All randomness must flow from
                       sim::Rng named streams.
  wall-clock           system_clock/steady_clock/time()/gettimeofday/...
                       outside src/telemetry/ (profiling may read clocks;
                       simulation results must never depend on one).
  unordered-iteration  range-for over a std::unordered_map/unordered_set
                       declared in the same file, anywhere in src/.
                       Hash-order iteration is nondeterministic across
                       libstdc++ versions and address-space layouts.
  unordered-container  any unordered_map/unordered_set declaration inside
                       the result-committing layers (src/fleet, src/grid,
                       src/metrics, src/fidelity) and the serialization-
                       adjacent src/sim. Requires a justified allow (the
                       usual justification: lookup-only, never iterated).
  pragma-once          every header under src/ must open with #pragma once.

A fifth determinism check — every header must compile standalone — is
build-level and lives in CMake (the han_header_selfcheck target generates
one TU per header); see README "Static analysis & determinism rules".

Escape hatch: a finding is suppressed by

    // lint:allow(<rule>): <justification>

either at the end of the offending line or on its own line directly above
it (doc-comment lines in between are fine). The justification text is
mandatory — an allow without one, or naming an unknown rule, is itself an
error, so suppressions stay auditable.

Usage:
    determinism_lint.py [--root DIR] [PATH...]   lint PATHs (default src/)
    determinism_lint.py --check-ci-artifacts     verify every ci/golden/*
                                                 and ci/BENCH_*.json file
                                                 referenced by the CI
                                                 workflow + ci/README.md
                                                 exists on disk
    determinism_lint.py --list-rules             print the rule table

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Rule table. `dirs`/`exempt_dirs` are path prefixes relative to the repo
# root using '/' separators; a rule only fires on files under one of
# `dirs` and under none of `exempt_dirs`/`exempt_files`.
# --------------------------------------------------------------------------

CXX_SUFFIXES = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")
HEADER_SUFFIXES = (".hpp", ".hh", ".h")

RESULT_COMMITTING_DIRS = ("src/fleet", "src/grid", "src/metrics",
                          "src/fidelity")


@dataclass(frozen=True)
class Rule:
    name: str
    description: str
    dirs: tuple = ("src",)
    exempt_dirs: tuple = ()
    exempt_files: tuple = ()


RULES = {
    "unseeded-random": Rule(
        name="unseeded-random",
        description="unseeded randomness outside the seed plumbing "
                    "(src/sim/random.*); draw from sim::Rng streams",
        exempt_files=("src/sim/random.hpp", "src/sim/random.cpp"),
    ),
    "wall-clock": Rule(
        name="wall-clock",
        description="wall-clock read outside src/telemetry/; simulation "
                    "results must never depend on real time",
        exempt_dirs=("src/telemetry",),
    ),
    "unordered-iteration": Rule(
        name="unordered-iteration",
        description="range-for over an unordered container; hash order is "
                    "nondeterministic — use an ordered/stable container",
    ),
    "unordered-container": Rule(
        name="unordered-container",
        description="unordered container declared in a result-committing "
                    "layer; justify (lookup-only) or use ordered storage",
        dirs=RESULT_COMMITTING_DIRS + ("src/sim",),
    ),
    "pragma-once": Rule(
        name="pragma-once",
        description="header missing #pragma once",
    ),
}

UNSEEDED_RANDOM_PATTERNS = [
    re.compile(r"(?<![\w:])s?rand\s*\("),
    re.compile(r"(?<![\w:])random\s*\(\s*\)"),
    re.compile(r"std::random_device"),
    re.compile(r"std::(minstd_rand0?|mt19937(_64)?|ranlux\w+|knuth_b|"
               r"default_random_engine)"),
    re.compile(r"std::(uniform_int|uniform_real|bernoulli|binomial|poisson|"
               r"exponential|normal|geometric|discrete)_distribution"),
    re.compile(r"#\s*include\s*<random>"),
]

WALL_CLOCK_PATTERNS = [
    re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
    re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0)?\s*\)"),
    re.compile(r"(?<![\w:])(gettimeofday|clock_gettime|localtime|gmtime)"
               r"\s*\("),
    re.compile(r"(?<![\w:])clock\s*\(\s*\)"),
]

# A (possibly qualified) unordered container declaration introducing a
# named variable/member, e.g. `std::unordered_map<K, V> name_;`. The
# template argument match is non-greedy across nested <>, good enough
# for the declarations this codebase writes on one line.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<.*>\s+(\w+)\s*(?:[;={(]|$)")

RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*\*?(\w+(?:[._]\w+|->\w+)*)\s*\)")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([\w-]+)\)(:?)\s*(.*)")

COMMENT_LINE_RE = re.compile(r"^\s*(//|/\*|\*)")


@dataclass
class Finding:
    path: str
    line: int  # 1-based; 0 = whole file
    rule: str
    message: str

    def render(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


@dataclass
class Allow:
    rule: str
    line: int
    justified: bool
    used: bool = False


def rel(path: str, root: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def in_scope(rule: Rule, relpath: str) -> bool:
    if relpath in rule.exempt_files:
        return False
    if any(relpath == d or relpath.startswith(d + "/")
           for d in rule.exempt_dirs):
        return False
    return any(relpath == d or relpath.startswith(d + "/")
               for d in rule.dirs)


def parse_allows(lines: list[str], relpath: str,
                 findings: list[Finding]) -> list[Allow]:
    """Collects lint:allow annotations, validating rule name and
    justification. Returns one Allow per annotation."""
    allows: list[Allow] = []
    for i, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            # Prose may mention the mechanism; only the paren form claims
            # to BE an annotation and must then parse fully.
            if "lint:allow(" in line:
                findings.append(Finding(
                    relpath, i, "allow-syntax",
                    "malformed lint:allow; use "
                    "// lint:allow(<rule>): <justification>"))
            continue
        rule, colon, justification = m.group(1), m.group(2), m.group(3)
        if rule not in RULES:
            findings.append(Finding(
                relpath, i, "allow-syntax",
                f"lint:allow names unknown rule '{rule}'"))
            continue
        justified = bool(colon) and bool(justification.strip())
        if not justified:
            findings.append(Finding(
                relpath, i, "allow-syntax",
                f"lint:allow({rule}) requires a justification: "
                "// lint:allow(<rule>): <why this is safe>"))
        allows.append(Allow(rule=rule, line=i, justified=justified))
    return allows


def allowed(allows: list[Allow], lines: list[str], rule: str,
            line_no: int) -> bool:
    """True if a finding of `rule` at 1-based `line_no` is covered by a
    justified allow: same line, or a standalone allow on a line above
    with only comment/blank lines in between."""
    for a in allows:
        if a.rule != rule or not a.justified:
            continue
        if a.line == line_no:
            a.used = True
            return True
        if a.line < line_no:
            between = lines[a.line:line_no - 1]  # lines strictly between
            if all(not s.strip() or COMMENT_LINE_RE.match(s)
                   for s in between):
                # The allow itself must be a standalone comment line.
                if COMMENT_LINE_RE.match(lines[a.line - 1]):
                    a.used = True
                    return True
    return False


def strip_line_comment(line: str) -> str:
    """Drops a trailing // comment (naive: ignores // inside strings,
    which the patterns here never need to see anyway)."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def lint_file(path: str, root: str) -> list[Finding]:
    relpath = rel(path, root)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(relpath, 0, "io", str(e))]
    lines = text.splitlines()

    findings: list[Finding] = []
    allows = parse_allows(lines, relpath, findings)

    def check(rule_name: str, line_no: int, message: str) -> None:
        if not in_scope(RULES[rule_name], relpath):
            return
        if allowed(allows, lines, rule_name, line_no):
            return
        findings.append(Finding(relpath, line_no, rule_name, message))

    # pragma-once: headers only, must appear before any code line.
    if relpath.endswith(HEADER_SUFFIXES) and in_scope(
            RULES["pragma-once"], relpath):
        seen = False
        for line in lines:
            s = line.strip()
            if s == "#pragma once":
                seen = True
                break
            if s and not COMMENT_LINE_RE.match(line):
                break  # first code line reached without the pragma
        if not seen:
            findings.append(Finding(
                relpath, 1, "pragma-once",
                "header must start with #pragma once"))

    unordered_names: set = set()
    for i, raw in enumerate(lines, start=1):
        line = strip_line_comment(raw)
        if not line.strip():
            continue

        for pat in UNSEEDED_RANDOM_PATTERNS:
            m = pat.search(line)
            if m:
                check("unseeded-random", i,
                      f"'{m.group(0).strip()}' — derive randomness from a "
                      "sim::Rng named stream instead")

        for pat in WALL_CLOCK_PATTERNS:
            m = pat.search(line)
            if m:
                check("wall-clock", i,
                      f"'{m.group(0).strip()}' — wall-clock reads are "
                      "allowed only in src/telemetry/")

        m = UNORDERED_DECL_RE.search(line)
        if m:
            unordered_names.add(m.group(1))
            check("unordered-container", i,
                  f"unordered container '{m.group(1)}' in a "
                  "result-committing layer; use ordered storage or "
                  "justify with lint:allow")

        fm = RANGE_FOR_RE.search(line)
        if fm:
            # `for (x : expr)` — flag when expr's last path component is
            # a name declared as unordered in this file.
            target = re.split(r"\.|->", fm.group(1))[-1]
            if target in unordered_names:
                check("unordered-iteration", i,
                      f"range-for over unordered container '{target}' — "
                      "iteration order is nondeterministic")

    for a in allows:
        if a.justified and not a.used:
            findings.append(Finding(
                relpath, a.line, "allow-syntax",
                f"lint:allow({a.rule}) suppresses nothing (stale allow?)"))

    return findings


def collect_files(paths: list[str], root: str) -> list[str]:
    out = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(CXX_SUFFIXES):
                out.append(p)
            continue
        for dirpath, _dirnames, filenames in os.walk(p):
            for name in sorted(filenames):
                if name.endswith(CXX_SUFFIXES):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


# --------------------------------------------------------------------------
# CI artifact existence: every ci/golden/* and ci/BENCH_*.json path named
# in the workflow files or ci/README.md must exist, so a renamed snapshot
# fails the lint job fast instead of silently skipping a cmp/gate step.
# --------------------------------------------------------------------------

ARTIFACT_REF_RE = re.compile(r"ci/(?:golden/[\w.\-]+|BENCH_[\w.\-]+\.json)")


def check_ci_artifacts(root: str) -> list[Finding]:
    findings: list[Finding] = []
    sources = []
    wf_dir = os.path.join(root, ".github", "workflows")
    if os.path.isdir(wf_dir):
        sources += [os.path.join(wf_dir, n) for n in sorted(os.listdir(wf_dir))
                    if n.endswith((".yml", ".yaml"))]
    readme = os.path.join(root, "ci", "README.md")
    if os.path.isfile(readme):
        sources.append(readme)
    if not sources:
        return [Finding(".github/workflows", 0, "ci-artifacts",
                        "no workflow files found to scan")]

    refs: dict = {}
    for src in sources:
        with open(src, encoding="utf-8") as f:
            for i, line in enumerate(f, start=1):
                for m in ARTIFACT_REF_RE.finditer(line):
                    refs.setdefault(m.group(0), (rel(src, root), i))
    if not refs:
        findings.append(Finding("ci", 0, "ci-artifacts",
                                "no ci/golden or ci/BENCH_*.json references "
                                "found in workflows — gate wiring missing?"))
    for ref in sorted(refs):
        src, line = refs[ref]
        if not os.path.isfile(os.path.join(root, ref)):
            findings.append(Finding(
                src, line, "ci-artifacts",
                f"referenced snapshot '{ref}' does not exist (renamed "
                "without updating the workflow, or not committed?)"))
    golden_dir = os.path.join(root, "ci", "golden")
    if not os.path.isdir(golden_dir) or not os.listdir(golden_dir):
        findings.append(Finding("ci/golden", 0, "ci-artifacts",
                                "golden directory missing or empty"))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="determinism_lint.py",
        description="determinism & hygiene linter (see module docstring)")
    parser.add_argument("--root", default=".",
                        help="repo root (scoping prefixes are relative "
                             "to it; default: cwd)")
    parser.add_argument("--check-ci-artifacts", action="store_true",
                        help="verify referenced CI snapshots exist instead "
                             "of linting sources")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files/dirs to lint (default: <root>/src)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"error: --root {args.root} is not a directory",
              file=sys.stderr)
        return 2

    if args.list_rules:
        for r in RULES.values():
            scope = ", ".join(r.dirs)
            exempt = ", ".join(r.exempt_dirs + r.exempt_files)
            line = f"{r.name:22} {r.description} [scope: {scope}"
            line += f"; exempt: {exempt}]" if exempt else "]"
            print(line)
        return 0

    if args.check_ci_artifacts:
        findings = check_ci_artifacts(root)
    else:
        paths = args.paths or [os.path.join(root, "src")]
        paths = [p if os.path.isabs(p) else os.path.join(root, p)
                 for p in paths]
        for p in paths:
            if not os.path.exists(p):
                print(f"error: no such path: {p}", file=sys.stderr)
                return 2
        findings = []
        for f in collect_files(paths, root):
            findings.extend(lint_file(f, root))

    for f in findings:
        print(f.render())
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
