// Fixture: src/telemetry/ may read monotonic and wall clocks freely —
// profiling is inherently wall-clock business.
#include <chrono>

unsigned long long now_ns() {
  return static_cast<unsigned long long>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
