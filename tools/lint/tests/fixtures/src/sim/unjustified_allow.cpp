// Fixture: an allow without a justification is itself an error AND does
// not suppress the underlying finding.
#include <chrono>

long long stamp() {
  // lint:allow(wall-clock)
  return std::chrono::system_clock::now().time_since_epoch().count();
}
