// Fixture: header without #pragma once.
inline int bad_header_value() { return 3; }
