// Fixture: the designated seed plumbing is exempt from unseeded-random
// (this is where entropy would legitimately enter, were it ever needed).
#include <random>

unsigned seed_from_entropy() {
  std::random_device rd;
  return rd();
}
