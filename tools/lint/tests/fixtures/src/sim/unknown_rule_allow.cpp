// Fixture: lint:allow naming an unknown rule (typo) is an error.
int f() {
  // lint:allow(wall-clok): justified-looking text
  return 0;
}
