// Fixture: a well-formed header — leading comment, then the pragma.
#pragma once

inline int good_header_value() { return 4; }
