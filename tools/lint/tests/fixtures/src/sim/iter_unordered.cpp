// Fixture: range-iteration over an unordered container (the order the
// loop body observes is hash order — nondeterministic).
#include <string>
#include <unordered_map>
#include <vector>

// lint:allow(unordered-container): fixture exercises the iteration rule in isolation
std::unordered_map<std::string, double> totals;

std::vector<double> snapshot() {
  std::vector<double> out;
  for (const auto& [key, value] : totals) {
    (void)key;
    out.push_back(value);
  }
  return out;
}
