// Fixture: a justified allow that suppresses nothing is flagged so
// suppressions cannot outlive the code they excused.
int f() {
  // lint:allow(wall-clock): this line reads no clock at all
  return 1;
}
