// Fixture: a justified allow suppresses a wall-clock finding, both as a
// trailing comment and as a standalone line above the offending one.
#include <chrono>

long long boot_stamp() {
  const auto a = std::chrono::system_clock::now();  // lint:allow(wall-clock): log header timestamp, never reaches results
  // lint:allow(wall-clock): log header timestamp, never reaches results
  const auto b = std::chrono::system_clock::now();
  return a.time_since_epoch().count() + b.time_since_epoch().count();
}
