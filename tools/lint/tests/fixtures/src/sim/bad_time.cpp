// Fixture: wall-clock reads in simulation code.
#include <chrono>
#include <ctime>

long long stamp() {
  const auto now = std::chrono::system_clock::now();
  (void)now;
  return static_cast<long long>(time(nullptr));
}
