// Fixture: every unseeded-randomness pattern the linter must catch.
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::uniform_int_distribution<int> dist(0, 9);
  srand(42);
  return rand() + dist(gen);
}
