// Fixture: the blessed pattern — randomness from a named Rng stream.
// Identifiers like operand() or branding must not trip the rand() regex.
struct Rng {
  unsigned long long next_u64();
};

int operand_count(Rng& rng) {
  Rng workload = rng;  // derived stream stand-in
  return static_cast<int>(workload.next_u64() % 7);
}
