// Fixture: unordered container declared in a result-committing layer
// with no justification.
#include <cstddef>
#include <unordered_map>

struct Accumulator {
  std::unordered_map<std::size_t, double> by_premise;
};
