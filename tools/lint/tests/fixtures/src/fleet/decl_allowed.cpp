// Fixture: the same declaration, excused with a justified allow on the
// line above (doc comments in between are permitted).
#include <cstddef>
#include <unordered_map>

struct Index {
  /// id -> slot.
  // lint:allow(unordered-container): lookup-only index, never iterated
  std::unordered_map<std::size_t, std::size_t> slot_of;
};
