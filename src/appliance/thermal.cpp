#include "appliance/thermal.hpp"

#include <cmath>

namespace han::appliance {

ThermalZone::ThermalZone(ThermalParams params, double initial_deg)
    : params_(params), temp_(initial_deg) {}

double ThermalZone::equilibrium(bool unit_on) const noexcept {
  // Setting dT/dt = 0: T_eq = T_out + s * P_unit * R.
  return params_.outdoor_deg +
         (unit_on ? params_.unit_kw * params_.resistance_deg_per_kw : 0.0);
}

void ThermalZone::advance(sim::Duration dt, bool unit_on) {
  const double tau_h =
      params_.resistance_deg_per_kw * params_.capacitance_kwh_per_deg;
  const double t_eq = equilibrium(unit_on);
  const double x = dt.hours_f() / tau_h;
  temp_ = t_eq + (temp_ - t_eq) * std::exp(-x);
}

std::optional<sim::Duration> ThermalZone::time_to_reach(double from, double to,
                                                        bool unit_on) const {
  const double t_eq = equilibrium(unit_on);
  const double num = from - t_eq;
  const double den = to - t_eq;
  // `to` must lie strictly between `from` and the equilibrium.
  if (num == 0.0 || den == 0.0) {
    return from == to ? std::optional(sim::Duration::zero()) : std::nullopt;
  }
  const double ratio = num / den;
  if (ratio < 1.0) return std::nullopt;  // moving away or unreachable
  const double tau_h =
      params_.resistance_deg_per_kw * params_.capacitance_kwh_per_deg;
  const double hours = tau_h * std::log(ratio);
  return sim::seconds_f(hours * 3600.0);
}

std::optional<DutyCycleConstraints> ThermalZone::derive_constraints() const {
  const bool cooling = params_.unit_kw < 0.0;
  const double on_start = cooling ? params_.band_high_deg : params_.band_low_deg;
  const double on_end = cooling ? params_.band_low_deg : params_.band_high_deg;

  const auto burst = time_to_reach(on_start, on_end, /*unit_on=*/true);
  const auto drift = time_to_reach(on_end, on_start, /*unit_on=*/false);
  if (!burst || !drift) return std::nullopt;
  if (*burst <= sim::Duration::zero() || *drift <= sim::Duration::zero()) {
    return std::nullopt;
  }
  return DutyCycleConstraints(*burst, *burst + *drift);
}

}  // namespace han::appliance
