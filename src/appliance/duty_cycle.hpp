// han::appliance — duty-cycle constraints of Type-2 devices.
//
// The paper simplifies a Type-2 appliance's internal control loop into
// two constraints (§II):
//   * minDCD (min duty-cycle duration): once the power-hungry unit turns
//     ON it must stay ON at least this long, and at least one minDCD
//     burst must execute inside every maxDCP window while the device has
//     demand;
//   * maxDCP (max duty-cycle period): the period of the duty cycle.
//
// Both may change over time with environment and user targets (the
// thermal model derives them); the scheduler treats them as data.
#pragma once

#include <stdexcept>

#include "sim/time.hpp"

namespace han::appliance {

/// Validated (minDCD, maxDCP) pair.
class DutyCycleConstraints {
 public:
  /// Paper defaults: 15-minute bursts in 30-minute periods.
  DutyCycleConstraints()
      : DutyCycleConstraints(sim::minutes(15), sim::minutes(30)) {}

  DutyCycleConstraints(sim::Duration min_dcd, sim::Duration max_dcp)
      : min_dcd_(min_dcd), max_dcp_(max_dcp) {
    if (min_dcd <= sim::Duration::zero()) {
      throw std::invalid_argument("minDCD must be positive");
    }
    if (max_dcp < min_dcd) {
      throw std::invalid_argument("maxDCP must be >= minDCD");
    }
  }

  [[nodiscard]] sim::Duration min_dcd() const noexcept { return min_dcd_; }
  [[nodiscard]] sim::Duration max_dcp() const noexcept { return max_dcp_; }

  /// Fraction of time the device runs when executing exactly one minDCD
  /// burst per maxDCP (the scheduler's steady-state duty factor).
  [[nodiscard]] double duty_factor() const noexcept {
    return static_cast<double>(min_dcd_.us()) /
           static_cast<double>(max_dcp_.us());
  }

  /// Number of whole minDCD bursts that fit serially in one maxDCP:
  /// the coordinated scheduler's phase-slot count K.
  [[nodiscard]] sim::Ticks serial_slots() const noexcept {
    return max_dcp_ / min_dcd_;
  }

  bool operator==(const DutyCycleConstraints&) const noexcept = default;

 private:
  sim::Duration min_dcd_;
  sim::Duration max_dcp_;
};

}  // namespace han::appliance
