// han::appliance — electrical appliance models.
//
// The paper's two categories (§II):
//   * Type-1: must turn ON instantly on user request (fans, TVs,
//     blenders); not deferrable, contributes base load.
//   * Type-2: high-power but duty-cycled and deferrable within the
//     (minDCD, maxDCP) constraints (ACs, water heaters, fridges); the
//     Device Interface controls the power-hungry unit's relay.
#pragma once

#include <cstdint>
#include <string>

#include "appliance/duty_cycle.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace han::appliance {

enum class ApplianceType : std::uint8_t { kType1 = 1, kType2 = 2 };

/// Common identity + rating of any appliance.
struct ApplianceInfo {
  net::NodeId id = net::kInvalidNode;
  std::string name;
  ApplianceType type = ApplianceType::kType2;
  double rated_kw = 1.0;
};

/// A Type-2 (deferrable, duty-cycled) appliance as seen by its DI.
///
/// Demand semantics: a user request gives the device demand for a
/// service duration (e.g. "cool the bedroom for the next hour"). While
/// demand is pending the scheduler must grant at least one minDCD burst
/// per maxDCP window. Requests arriving while active extend the demand.
///
/// The class tracks relay state, accumulates energy, and audits the
/// constraints: turning OFF before minDCD has elapsed is recorded as a
/// violation (the schedulers are tested to never cause one), as is a
/// maxDCP window with demand but no burst.
class Type2Appliance {
 public:
  Type2Appliance(ApplianceInfo info, DutyCycleConstraints constraints);

  [[nodiscard]] const ApplianceInfo& info() const noexcept { return info_; }
  [[nodiscard]] const DutyCycleConstraints& constraints() const noexcept {
    return constraints_;
  }
  void set_constraints(const DutyCycleConstraints& c) { constraints_ = c; }

  // --- Demand ---------------------------------------------------------

  /// Registers a user request at `now` for `service` worth of demand.
  void add_demand(sim::TimePoint now, sim::Duration service);

  /// True if the device currently has unexpired demand.
  [[nodiscard]] bool active(sim::TimePoint now) const noexcept {
    return demand_until_ > now;
  }
  [[nodiscard]] sim::TimePoint demand_until() const noexcept {
    return demand_until_;
  }
  /// Time the current demand was first registered (kInvalid when idle).
  [[nodiscard]] sim::TimePoint demand_since() const noexcept {
    return demand_since_;
  }

  /// True while the device has demand but has not yet accumulated one
  /// full minDCD burst since the demand began. Published over the CP so
  /// peers can weigh slot occupancy by who still needs to run.
  [[nodiscard]] bool burst_pending(sim::TimePoint now) const noexcept;

  // --- Relay control (called by the DI / scheduler) --------------------

  /// Switches the power-hungry unit. Turning OFF before minDCD since the
  /// last turn-ON is *executed* but recorded in min_dcd_violations().
  void set_relay(bool on, sim::TimePoint now);

  [[nodiscard]] bool relay_on() const noexcept { return relay_on_; }
  [[nodiscard]] sim::TimePoint relay_since() const noexcept {
    return relay_since_;
  }

  /// Instantaneous electrical load: the power unit draws its rating
  /// whenever the relay is closed (a burst completing its minDCD past
  /// demand expiry still consumes power).
  [[nodiscard]] double load_kw(sim::TimePoint) const noexcept {
    return relay_on_ ? info_.rated_kw : 0.0;
  }

  // --- Accounting -------------------------------------------------------

  /// Total ON time so far (the current burst counted up to `now`).
  [[nodiscard]] sim::Duration total_on_time(sim::TimePoint now) const noexcept;
  /// Energy consumed so far, kWh.
  [[nodiscard]] double energy_kwh(sim::TimePoint now) const noexcept;
  [[nodiscard]] std::uint64_t switch_count() const noexcept {
    return switches_;
  }
  [[nodiscard]] std::uint64_t min_dcd_violations() const noexcept {
    return min_dcd_violations_;
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_;
  }

 private:
  ApplianceInfo info_;
  DutyCycleConstraints constraints_;
  sim::TimePoint demand_until_ = sim::TimePoint::epoch();
  sim::TimePoint demand_since_ = sim::TimePoint::epoch();
  bool relay_on_ = false;
  sim::TimePoint relay_since_ = sim::TimePoint::epoch();
  sim::Duration on_time_accum_ = sim::Duration::zero();
  sim::Duration demand_on_accum_ = sim::Duration::zero();
  std::uint64_t switches_ = 0;
  std::uint64_t min_dcd_violations_ = 0;
  std::uint64_t requests_ = 0;
};

/// A Type-1 (instant-on) appliance: it simply runs for the session the
/// user asked for; the HAN only meters it.
class Type1Appliance {
 public:
  explicit Type1Appliance(ApplianceInfo info);

  [[nodiscard]] const ApplianceInfo& info() const noexcept { return info_; }

  /// User turns the appliance on at `now` for `duration`.
  void start_session(sim::TimePoint now, sim::Duration duration);

  [[nodiscard]] bool running(sim::TimePoint now) const noexcept {
    return session_until_ > now;
  }
  [[nodiscard]] double load_kw(sim::TimePoint now) const noexcept {
    return running(now) ? info_.rated_kw : 0.0;
  }
  [[nodiscard]] std::uint64_t sessions() const noexcept { return sessions_; }

 private:
  ApplianceInfo info_;
  sim::TimePoint session_until_ = sim::TimePoint::epoch();
  std::uint64_t sessions_ = 0;
};

}  // namespace han::appliance
