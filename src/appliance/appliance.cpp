#include "appliance/appliance.hpp"

#include <algorithm>

namespace han::appliance {

Type2Appliance::Type2Appliance(ApplianceInfo info,
                               DutyCycleConstraints constraints)
    : info_(std::move(info)), constraints_(constraints) {
  info_.type = ApplianceType::kType2;
}

void Type2Appliance::add_demand(sim::TimePoint now, sim::Duration service) {
  if (!active(now)) {
    demand_since_ = now;
    demand_on_accum_ = sim::Duration::zero();
  }
  sim::TimePoint until = std::max(demand_until_, now + service);
  // A duty-cycled appliance completes whole cycles: demand always spans
  // an integer number of maxDCP periods from its start. This keeps the
  // energy delivered per request pattern identical across scheduling
  // strategies (one minDCD burst per covered period).
  const sim::Duration span = until - demand_since_;
  const sim::Duration dcp = constraints_.max_dcp();
  const sim::Ticks periods = (span.us() + dcp.us() - 1) / dcp.us();
  demand_until_ = demand_since_ + dcp * std::max<sim::Ticks>(periods, 1);
  ++requests_;
}

bool Type2Appliance::burst_pending(sim::TimePoint now) const noexcept {
  if (!active(now)) return false;
  sim::Duration done = demand_on_accum_;
  if (relay_on_) done += now - std::max(relay_since_, demand_since_);
  return done < constraints_.min_dcd();
}

void Type2Appliance::set_relay(bool on, sim::TimePoint now) {
  if (on == relay_on_) return;
  if (!on) {
    // Close of a burst: audit minDCD and accumulate ON time.
    const sim::Duration burst = now - relay_since_;
    if (burst < constraints_.min_dcd()) ++min_dcd_violations_;
    on_time_accum_ += burst;
    demand_on_accum_ += now - std::max(relay_since_, demand_since_);
  }
  relay_on_ = on;
  relay_since_ = now;
  ++switches_;
}

sim::Duration Type2Appliance::total_on_time(sim::TimePoint now) const noexcept {
  sim::Duration t = on_time_accum_;
  if (relay_on_) t += now - relay_since_;
  return t;
}

double Type2Appliance::energy_kwh(sim::TimePoint now) const noexcept {
  return info_.rated_kw * total_on_time(now).hours_f();
}

Type1Appliance::Type1Appliance(ApplianceInfo info) : info_(std::move(info)) {
  info_.type = ApplianceType::kType1;
}

void Type1Appliance::start_session(sim::TimePoint now, sim::Duration duration) {
  session_until_ = std::max(session_until_, now + duration);
  ++sessions_;
}

}  // namespace han::appliance
