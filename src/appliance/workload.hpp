// han::appliance — user request workload generation.
//
// Reproduces the paper's workload (§III): user requests for each of the
// N Type-2 devices arrive randomly (a Poisson process over the whole
// home); the paper's three scenarios are 30 (high), 18 (moderate) and
// 4 (low) requests/hour. Each request gives the chosen device demand for
// a service duration (the paper leaves this implicit; the default is a
// 60-minute mean, configurable and documented in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace han::appliance {

/// One user request.
struct Request {
  sim::TimePoint at;
  net::NodeId device = net::kInvalidNode;
  sim::Duration service = sim::Duration::zero();

  bool operator==(const Request&) const = default;
};

/// How a request's service duration is drawn.
enum class ServiceModel : std::uint8_t {
  kFixed,        // always mean_service
  kExponential,  // exponential with mean mean_service
  kUniform,      // uniform on [0.5, 1.5] * mean_service
};

/// The paper's arrival-rate scenarios.
enum class ArrivalScenario : std::uint8_t { kLow, kModerate, kHigh };

/// Requests/hour for a scenario: 4, 18, 30 (paper §III).
[[nodiscard]] double scenario_rate_per_hour(ArrivalScenario s) noexcept;
[[nodiscard]] std::string_view to_string(ArrivalScenario s) noexcept;

/// Workload generation parameters.
struct WorkloadParams {
  double rate_per_hour = 30.0;
  std::size_t device_count = 26;
  sim::Duration horizon = sim::minutes(350);
  /// One request demands one duty cycle (maxDCP => exactly one minDCD
  /// burst). This matches the paper's average-load levels in Fig 2(c):
  /// rate x minDCD x 1 kW = 7.5 kW at 30 requests/hour.
  sim::Duration mean_service = sim::minutes(30);
  ServiceModel service_model = ServiceModel::kFixed;
  /// First arrival is not before this offset (lets the CP boot).
  sim::Duration warmup = sim::Duration::zero();
};

/// Clustered-arrival parameters: bursts of near-simultaneous requests
/// (a family coming home and switching everything on). This is the
/// worst case for uncoordinated duty cycling — all bursts stack — and
/// the regime where the paper's "up to 50 % peak / 58 % deviation"
/// bounds are reached.
struct ClusterParams {
  /// Cluster epochs form a Poisson process at this rate.
  double clusters_per_hour = 3.0;
  /// Requests per cluster (each hits a distinct device).
  std::size_t cluster_size = 10;
  /// Requests within a cluster arrive within this span.
  sim::Duration spread = sim::minutes(2);
};

/// Deterministic Poisson request-trace generator.
class WorkloadGenerator {
 public:
  /// Generates the full request trace for one run. Uses `rng` streams
  /// "arrivals", "devices", and "service" so the three choices are
  /// independently reproducible.
  [[nodiscard]] static std::vector<Request> generate(
      const WorkloadParams& params, const sim::Rng& rng);

  /// Convenience: paper scenario with the given seed-bearing rng.
  [[nodiscard]] static std::vector<Request> generate_scenario(
      ArrivalScenario scenario, std::size_t device_count,
      sim::Duration horizon, const sim::Rng& rng);

  /// Clustered arrivals (see ClusterParams). Service durations follow
  /// `base.mean_service`/`base.service_model`; rate fields are ignored.
  [[nodiscard]] static std::vector<Request> generate_clustered(
      const WorkloadParams& base, const ClusterParams& clusters,
      const sim::Rng& rng);

  /// Mean number of simultaneously active devices implied by Little's
  /// law (arrival rate x mean service), clamped to the device count.
  /// Used by tests to sanity-check traces.
  [[nodiscard]] static double expected_active_devices(
      const WorkloadParams& params) noexcept;
};

}  // namespace han::appliance
