// han::appliance — first-order (RC) thermal model.
//
// Supports the paper's discussion (§II) that minDCD/maxDCP are dynamic:
// "to achieve a target temperature of 20°C, the maxDCP would be lesser
// compared to a target of 30°C when the external temperature is 40°C".
//
// Model: a zone with thermal capacitance C [kWh/°C] coupled to the
// outside through resistance R [°C/kW]; the appliance moves heat at
// p_unit [kW] (negative for cooling) when its power unit runs:
//
//   dT/dt = (T_out - T) / (R * C) + s * P_unit / C,   s in {0, 1}
//
// The exponential solution is used in closed form, so advancing the
// model is O(1) regardless of dt, and the burst/period durations needed
// to traverse a comfort band are computed analytically.
#pragma once

#include <optional>

#include "appliance/duty_cycle.hpp"
#include "sim/time.hpp"

namespace han::appliance {

/// Static parameters of one thermal zone + its conditioning unit.
struct ThermalParams {
  double capacitance_kwh_per_deg = 0.8;  // small bedroom
  double resistance_deg_per_kw = 8.0;    // insulation
  double outdoor_deg = 40.0;             // hot summer day
  /// Heat moved by the unit while ON, kW (negative = cooling).
  double unit_kw = -3.0;
  /// Comfort band the controller keeps the zone inside.
  double band_low_deg = 22.0;
  double band_high_deg = 26.0;
};

/// Evolving zone temperature with closed-form advancement.
class ThermalZone {
 public:
  explicit ThermalZone(ThermalParams params, double initial_deg);

  [[nodiscard]] const ThermalParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] double temperature() const noexcept { return temp_; }
  void set_temperature(double deg) noexcept { temp_ = deg; }

  /// Advances the zone by `dt` with the unit ON or OFF.
  void advance(sim::Duration dt, bool unit_on);

  /// Steady-state temperature with the unit held in the given state.
  [[nodiscard]] double equilibrium(bool unit_on) const noexcept;

  /// Time for the temperature to move from `from` to `to` with the unit
  /// in the given state; nullopt if `to` is unreachable (beyond the
  /// equilibrium).
  [[nodiscard]] std::optional<sim::Duration> time_to_reach(
      double from, double to, bool unit_on) const;

  /// Duty-cycle constraints that keep the zone inside its comfort band:
  /// minDCD = time the unit needs to traverse the band (high -> low for
  /// cooling), maxDCP = minDCD + time to drift back across the band.
  /// nullopt when the unit cannot hold the band at all (undersized).
  [[nodiscard]] std::optional<DutyCycleConstraints> derive_constraints()
      const;

 private:
  ThermalParams params_;
  double temp_;
};

}  // namespace han::appliance
