#include "appliance/workload.hpp"

#include <algorithm>

namespace han::appliance {

double scenario_rate_per_hour(ArrivalScenario s) noexcept {
  switch (s) {
    case ArrivalScenario::kLow:
      return 4.0;
    case ArrivalScenario::kModerate:
      return 18.0;
    case ArrivalScenario::kHigh:
      return 30.0;
  }
  return 0.0;
}

std::string_view to_string(ArrivalScenario s) noexcept {
  switch (s) {
    case ArrivalScenario::kLow:
      return "low";
    case ArrivalScenario::kModerate:
      return "moderate";
    case ArrivalScenario::kHigh:
      return "high";
  }
  return "?";
}

std::vector<Request> WorkloadGenerator::generate(const WorkloadParams& params,
                                                 const sim::Rng& rng) {
  std::vector<Request> out;
  if (params.rate_per_hour <= 0.0 || params.device_count == 0) return out;

  sim::Rng arrivals = rng.stream("arrivals");
  sim::Rng devices = rng.stream("devices");
  sim::Rng service = rng.stream("service");

  const double mean_gap_us = 3600e6 / params.rate_per_hour;
  sim::TimePoint t = sim::TimePoint::epoch() + params.warmup;
  for (;;) {
    t = t + sim::seconds_f(arrivals.exponential(mean_gap_us) / 1e6);
    if (t.since_epoch() > params.horizon) break;

    Request r;
    r.at = t;
    r.device = static_cast<net::NodeId>(devices.index(params.device_count));
    switch (params.service_model) {
      case ServiceModel::kFixed:
        r.service = params.mean_service;
        break;
      case ServiceModel::kExponential:
        r.service = sim::seconds_f(
            service.exponential(params.mean_service.seconds_f()));
        break;
      case ServiceModel::kUniform:
        r.service = sim::seconds_f(service.uniform(
            0.5 * params.mean_service.seconds_f(),
            1.5 * params.mean_service.seconds_f()));
        break;
    }
    out.push_back(r);
  }
  return out;
}

std::vector<Request> WorkloadGenerator::generate_scenario(
    ArrivalScenario scenario, std::size_t device_count, sim::Duration horizon,
    const sim::Rng& rng) {
  WorkloadParams p;
  p.rate_per_hour = scenario_rate_per_hour(scenario);
  p.device_count = device_count;
  p.horizon = horizon;
  return generate(p, rng);
}

std::vector<Request> WorkloadGenerator::generate_clustered(
    const WorkloadParams& base, const ClusterParams& clusters,
    const sim::Rng& rng) {
  std::vector<Request> out;
  if (clusters.clusters_per_hour <= 0.0 || base.device_count == 0) return out;

  sim::Rng epochs = rng.stream("cluster-epochs");
  sim::Rng members = rng.stream("cluster-members");
  sim::Rng jitter = rng.stream("cluster-jitter");

  const double mean_gap_us = 3600e6 / clusters.clusters_per_hour;
  sim::TimePoint t = sim::TimePoint::epoch() + base.warmup;
  for (;;) {
    t = t + sim::seconds_f(epochs.exponential(mean_gap_us) / 1e6);
    if (t.since_epoch() > base.horizon) break;

    // Distinct devices per cluster, chosen by partial Fisher-Yates.
    std::vector<net::NodeId> ids(base.device_count);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ids[i] = static_cast<net::NodeId>(i);
    }
    members.shuffle(ids);
    const std::size_t n = std::min(clusters.cluster_size, ids.size());
    for (std::size_t i = 0; i < n; ++i) {
      Request r;
      r.at = t + sim::seconds_f(
                     jitter.uniform(0.0, clusters.spread.seconds_f()));
      r.device = ids[i];
      r.service = base.mean_service;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Request& a, const Request& b) { return a.at < b.at; });
  return out;
}

double WorkloadGenerator::expected_active_devices(
    const WorkloadParams& params) noexcept {
  const double offered =
      params.rate_per_hour * params.mean_service.hours_f();
  return std::min(offered, static_cast<double>(params.device_count));
}

}  // namespace han::appliance
