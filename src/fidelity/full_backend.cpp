#include "fidelity/full_backend.hpp"

namespace han::fidelity {

FullBackend::FullBackend(fleet::PremiseSpec spec)
    : PremiseBackend(std::move(spec)) {
  net_ = std::make_unique<core::HanNetwork>(sim_, spec_.experiment.han);
  net_->inject_requests(spec_.trace);
  core::HanNetwork* net = net_.get();
  monitor_ = std::make_unique<metrics::LoadMonitor>(
      sim_, [net]() { return net->total_load_kw(); },
      spec_.experiment.sample_interval);
  net_->start(sim::TimePoint::epoch() + sim::milliseconds(10));
  monitor_->start(sim::TimePoint::epoch() + spec_.experiment.cp_boot);
}

void FullBackend::advance_to(sim::TimePoint t) {
  for (const auto& [at, signal] : take_due_signals(t)) {
    core::HanNetwork* net = net_.get();
    const grid::GridSignal sig = signal;
    sim_.schedule_at(at, [net, sig]() { net->apply_grid_signal(sig); });
  }
  sim_.run_until(t);
  inst_kw_ =
      net_->total_load_kw() + fleet::FleetEngine::diurnal_base_kw(spec_, t);
}

void FullBackend::migrate_to_feeder(std::size_t feeder,
                                    grid::TariffTier tier) {
  net_->set_feeder(static_cast<std::uint32_t>(feeder));
  net_->set_tariff_tier(tier);
  PremiseBackend::migrate_to_feeder(feeder, tier);
}

fleet::PremiseResult FullBackend::finish() {
  monitor_->stop();
  return fleet::FleetEngine::assemble_premise_result(
      spec_, monitor_->series(), net_->stats());
}

}  // namespace han::fidelity
