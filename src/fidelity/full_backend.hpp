// han::fidelity — the full-fidelity premise backend.
//
// Today's HAN network simulation behind the PremiseBackend interface:
// own Simulator, own topology/CP, a LoadMonitor sampling the premise on
// the fleet grid. A fleet whose every premise runs this backend is
// byte-identical to the pre-fidelity engine — the boot sequence, the
// signal scheduling and the collection below are verbatim ports of the
// grid loop's PremiseRuntime.
#pragma once

#include <memory>

#include "core/han_network.hpp"
#include "fidelity/backend.hpp"
#include "metrics/load_monitor.hpp"
#include "sim/simulator.hpp"

namespace han::fidelity {

class FullBackend final : public PremiseBackend {
 public:
  explicit FullBackend(fleet::PremiseSpec spec);

  [[nodiscard]] FidelityTier tier() const noexcept override {
    return FidelityTier::kFull;
  }
  void advance_to(sim::TimePoint t) override;
  void migrate_to_feeder(std::size_t feeder, grid::TariffTier tier) override;
  [[nodiscard]] fleet::PremiseResult finish() override;

  /// The premise network (tests poke at DR/tariff state through it).
  [[nodiscard]] const core::HanNetwork& network() const noexcept {
    return *net_;
  }

 private:
  sim::Simulator sim_;
  std::unique_ptr<core::HanNetwork> net_;
  std::unique_ptr<metrics::LoadMonitor> monitor_;
};

}  // namespace han::fidelity
