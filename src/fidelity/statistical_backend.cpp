#include "fidelity/statistical_backend.hpp"

#include <algorithm>

namespace han::fidelity {

StatisticalBackend::StatisticalBackend(fleet::PremiseSpec spec,
                                       const CalibrationTable& calibration)
    : PremiseBackend(std::move(spec)), cal_(calibration) {
  const core::HanConfig& han = spec_.experiment.han;
  coordinated_ = han.scheduler == core::SchedulerKind::kCoordinated;
  dr_aware_ = han.dr_aware;
  rated_kw_ = han.rated_kw;
  duty_factor_ = han.constraints.duty_factor();
  next_sample_ = sim::TimePoint::epoch() + spec_.experiment.cp_boot;
  series_ = metrics::TimeSeries(next_sample_,
                                spec_.experiment.sample_interval);

  // Collapse the trace into per-device demand intervals (mirroring
  // Type2Appliance::add_demand's whole-maxDCP rounding), then into one
  // premise-wide step function of the active-device count. Demand
  // timing is signal-independent, so this is precomputable.
  const sim::Duration dcp = han.constraints.max_dcp();
  std::vector<sim::TimePoint> since(han.device_count,
                                    sim::TimePoint::epoch());
  std::vector<sim::TimePoint> until(han.device_count,
                                    sim::TimePoint::epoch());
  std::vector<bool> open(han.device_count, false);
  const auto close = [&](std::size_t d) {
    demand_events_.emplace_back(since[d], +1);
    demand_events_.emplace_back(until[d], -1);
    open[d] = false;
  };
  for (const appliance::Request& r : spec_.trace) {
    if (r.device >= han.device_count) continue;
    const std::size_t d = r.device;
    if (open[d] && until[d] <= r.at) close(d);
    if (!open[d]) {
      since[d] = r.at;
      until[d] = r.at;
      open[d] = true;
    }
    const sim::TimePoint want = std::max(until[d], r.at + r.service);
    const sim::Duration span = want - since[d];
    const sim::Ticks periods =
        std::max<sim::Ticks>(1, (span.us() + dcp.us() - 1) / dcp.us());
    until[d] = since[d] + dcp * periods;
  }
  for (std::size_t d = 0; d < han.device_count; ++d) {
    if (open[d]) close(d);
  }
  std::sort(demand_events_.begin(), demand_events_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

void StatisticalBackend::catch_up_demand(sim::TimePoint t) {
  // A device is active while demand_until > t, so a -1 at time u takes
  // effect when t reaches u (interval [since, until)).
  while (demand_next_ < demand_events_.size() &&
         demand_events_[demand_next_].first <= t) {
    active_devices_ += demand_events_[demand_next_].second;
    ++demand_next_;
  }
}

bool StatisticalBackend::shed_active(sim::TimePoint t) const noexcept {
  return dr_aware_ && coordinated_ && t < shed_until_ && shed_stretch_ > 1;
}

double StatisticalBackend::raw_prediction_kw(sim::TimePoint t) const {
  const auto hour = static_cast<std::size_t>(t.since_epoch().hours_f());
  return rated_kw_ * static_cast<double>(active_devices_) * duty_factor_ *
         cal_.duty_gain * cal_.hourly_shape[hour % 24];
}

double StatisticalBackend::type2_kw(sim::TimePoint t, sim::Duration dt,
                                    bool commit) {
  const double pred = raw_prediction_kw(t);
  const double dt_h = dt.hours_f();

  double load = pred;
  double deferred_kwh = 0.0;
  if (shed_active(t)) {
    const double cut =
        pred * cal_.shed_compliance *
        (1.0 - 1.0 / static_cast<double>(shed_stretch_));
    load -= cut;
    deferred_kwh += cut * dt_h * cal_.rebound_fraction;
  }
  if (tariff_tier_ == grid::TariffTier::kPeak) {
    const double cut = load * cal_.tariff_elasticity;
    load -= cut;
    deferred_kwh += cut * dt_h;
  } else if (!shed_active(t) && pool_kwh_ > 0.0) {
    // Release the deferred pool exponentially once nothing is
    // suppressing the premise.
    const double tau_h = std::max(cal_.rebound_tau.hours_f(), 1e-9);
    const double release_kw = pool_kwh_ / tau_h;
    const double released_kwh = std::min(pool_kwh_, release_kw * dt_h);
    load += release_kw;
    if (commit) pool_kwh_ -= released_kwh;
  }
  if (commit) pool_kwh_ += deferred_kwh;
  return std::max(load, 0.0);
}

void StatisticalBackend::apply_signal(sim::TimePoint at,
                                      const grid::GridSignal& s) {
  if (s.feeder != current_feeder_) {
    ++signals_misrouted_;
    return;
  }
  ++signals_applied_;
  switch (s.kind) {
    case grid::SignalKind::kDrShed:
      shed_stretch_ = std::max<sim::Ticks>(s.period_stretch, 1);
      shed_until_ = at + s.duration;
      break;
    case grid::SignalKind::kAllClear:
      shed_until_ = at;
      break;
    case grid::SignalKind::kTariffChange:
      tariff_tier_ = s.tier;
      break;
  }
}

void StatisticalBackend::advance_to(sim::TimePoint t) {
  const auto due = take_due_signals(t);
  std::size_t next = 0;
  const sim::Duration dt = series_.interval();
  while (next_sample_ <= t) {
    while (next < due.size() && due[next].first <= next_sample_) {
      apply_signal(due[next].first, due[next].second);
      ++next;
    }
    catch_up_demand(next_sample_);
    series_.append(type2_kw(next_sample_, dt, /*commit=*/true));
    next_sample_ = next_sample_ + dt;
  }
  while (next < due.size()) {
    apply_signal(due[next].first, due[next].second);
    ++next;
  }
  catch_up_demand(t);
  inst_kw_ = type2_kw(t, dt, /*commit=*/false) +
             fleet::FleetEngine::diurnal_base_kw(spec_, t);
}

void StatisticalBackend::migrate_to_feeder(std::size_t feeder,
                                           grid::TariffTier tier) {
  PremiseBackend::migrate_to_feeder(feeder, tier);
  tariff_tier_ = tier;
}

fleet::PremiseResult StatisticalBackend::finish() {
  core::NetworkStats stats;
  stats.requests_injected = spec_.trace.size();
  stats.grid_signals_applied = signals_applied_;
  stats.grid_signals_misrouted = signals_misrouted_;
  stats.cp_mean_coverage = 1.0;
  return fleet::FleetEngine::assemble_premise_result(spec_, series_, stats);
}

}  // namespace han::fidelity
