#include "fidelity/backend.hpp"

#include "fidelity/device_backend.hpp"
#include "fidelity/full_backend.hpp"
#include "fidelity/statistical_backend.hpp"

namespace han::fidelity {

void PremiseBackend::migrate_to_feeder(std::size_t feeder,
                                       grid::TariffTier /*tier*/) {
  current_feeder_ = feeder;
  filter_pending_for_feeder(feeder);
}

std::unique_ptr<PremiseBackend> make_backend(
    FidelityTier tier, fleet::PremiseSpec spec,
    const CalibrationTable& calibration) {
  switch (tier) {
    case FidelityTier::kFull:
      return std::make_unique<FullBackend>(std::move(spec));
    case FidelityTier::kDevice:
      return std::make_unique<DeviceBackend>(std::move(spec));
    case FidelityTier::kStatistical:
      return std::make_unique<StatisticalBackend>(std::move(spec),
                                                  calibration);
  }
  return std::make_unique<FullBackend>(std::move(spec));
}

}  // namespace han::fidelity
