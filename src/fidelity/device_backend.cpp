#include "fidelity/device_backend.hpp"

#include <algorithm>

#include "sched/coordinated.hpp"
#include "sched/uncoordinated.hpp"

namespace han::fidelity {

DeviceBackend::DeviceBackend(fleet::PremiseSpec spec)
    : PremiseBackend(std::move(spec)) {
  const core::HanConfig& han = spec_.experiment.han;
  coordinated_ = han.scheduler == core::SchedulerKind::kCoordinated;
  dr_aware_ = han.dr_aware;
  tariff_defer_ = han.tariff_defer;
  min_dcd_ = han.constraints.min_dcd();
  max_dcp_ = han.constraints.max_dcp();
  rated_kw_ = han.rated_kw;
  devs_.resize(han.device_count);
  next_sample_ = sim::TimePoint::epoch() + spec_.experiment.cp_boot;
  series_ = metrics::TimeSeries(next_sample_,
                                spec_.experiment.sample_interval);
}

sched::GridPressure DeviceBackend::pressure_at(sim::TimePoint t) const {
  sched::GridPressure p;
  if (dr_aware_ && t < shed_until_ && shed_stretch_ > 1) {
    p.shed_active = true;
    p.period_stretch = shed_stretch_;
  }
  return p;
}

bool DeviceBackend::device_on(const Dev& d, sim::TimePoint t) const {
  if (d.demand_until <= t) return false;
  if (!coordinated_) {
    return sched::UncoordinatedScheduler::free_running_on(
        t, d.demand_since, min_dcd_, max_dcp_);
  }
  if (d.slot == sched::kNoSlot) return false;
  const sim::Duration eff =
      sched::effective_max_dcp(max_dcp_, pressure_at(t));
  return sched::CoordinatedScheduler::slot_window_on(t, d.slot, min_dcd_,
                                                     eff);
}

double DeviceBackend::type2_kw(sim::TimePoint t) const {
  double kw = 0.0;
  for (const Dev& d : devs_) {
    if (device_on(d, t)) kw += rated_kw_;
  }
  return kw;
}

sched::GlobalView DeviceBackend::view_at(sim::TimePoint t) const {
  sched::GlobalView view;
  view.now = t;
  view.grid = pressure_at(t);
  view.devices.reserve(devs_.size());
  for (std::size_t i = 0; i < devs_.size(); ++i) {
    const Dev& d = devs_[i];
    sched::DeviceStatus s;
    s.id = static_cast<net::NodeId>(i);
    s.has_demand = d.demand_until > t;
    s.relay_on = device_on(d, t);
    s.demand_since = d.demand_since;
    s.demand_until = d.demand_until;
    s.min_dcd = min_dcd_;
    s.max_dcp = max_dcp_;
    s.rated_kw = rated_kw_;
    s.slot = d.slot;
    view.devices.push_back(s);
  }
  return view;
}

void DeviceBackend::arrival(sim::TimePoint at,
                            const appliance::Request& r) {
  if (r.device >= devs_.size()) return;
  if (tariff_defer_ && tariff_tier_ == grid::TariffTier::kPeak) {
    // Discretionary demand waits out the peak window; it re-arrives
    // when the tier drops (see set_tariff).
    appliance::Request parked = r;
    parked.at = at;
    deferred_.push_back(parked);
    ++tariff_deferrals_;
    return;
  }
  Dev& d = devs_[r.device];
  const bool fresh = d.demand_until <= at;
  if (fresh) {
    d.demand_since = at;
    d.demand_until = at;
    d.slot = sched::kNoSlot;
  }
  // Mirror Type2Appliance::add_demand: demand spans a whole number of
  // maxDCP periods from its start.
  const sim::TimePoint until = std::max(d.demand_until, at + r.service);
  const sim::Duration span = until - d.demand_since;
  const sim::Ticks periods =
      std::max<sim::Ticks>(1, (span.us() + max_dcp_.us() - 1) / max_dcp_.us());
  d.demand_until = d.demand_since + max_dcp_ * periods;
  if (fresh && coordinated_) {
    // The owning DI claims the least-occupied slot once per demand.
    sched::DeviceStatus self;
    self.id = static_cast<net::NodeId>(r.device);
    self.has_demand = true;
    self.demand_since = d.demand_since;
    self.demand_until = d.demand_until;
    self.min_dcd = min_dcd_;
    self.max_dcp = max_dcp_;
    self.rated_kw = rated_kw_;
    const bool apply_grid = dr_aware_ && pressure_at(at).shed_active;
    d.slot = sched::CoordinatedScheduler::pick_slot(view_at(at), self,
                                                    apply_grid);
  }
}

void DeviceBackend::set_tariff(sim::TimePoint at, grid::TariffTier tier) {
  tariff_tier_ = tier;
  if (!tariff_defer_ || tier == grid::TariffTier::kPeak) return;
  // The peak window ended: parked requests re-arrive now, in order.
  std::vector<appliance::Request> parked;
  parked.swap(deferred_);
  for (const appliance::Request& r : parked) arrival(at, r);
}

void DeviceBackend::apply_signal(sim::TimePoint at,
                                 const grid::GridSignal& s) {
  if (s.feeder != current_feeder_) {
    ++signals_misrouted_;
    return;
  }
  ++signals_applied_;
  switch (s.kind) {
    case grid::SignalKind::kDrShed:
      shed_stretch_ = std::max<sim::Ticks>(s.period_stretch, 1);
      shed_until_ = at + s.duration;
      break;
    case grid::SignalKind::kAllClear:
      shed_until_ = at;
      break;
    case grid::SignalKind::kTariffChange:
      set_tariff(at, s.tier);
      break;
  }
}

void DeviceBackend::process_until(sim::TimePoint t) {
  // Merge trace arrivals and due signals in time order (arrivals first
  // on ties, matching the full simulator's insertion order).
  const std::vector<appliance::Request>& trace = spec_.trace;
  while (true) {
    const bool have_req =
        trace_next_ < trace.size() && trace[trace_next_].at <= t;
    const bool have_sig =
        due_next_ < due_.size() && due_[due_next_].first <= t;
    if (!have_req && !have_sig) break;
    if (have_req &&
        (!have_sig || trace[trace_next_].at <= due_[due_next_].first)) {
      const appliance::Request& r = trace[trace_next_++];
      arrival(r.at, r);
    } else {
      const auto& [at, sig] = due_[due_next_++];
      apply_signal(at, sig);
    }
  }
  now_ = t;
}

void DeviceBackend::advance_to(sim::TimePoint t) {
  due_ = take_due_signals(t);
  due_next_ = 0;
  while (next_sample_ <= t) {
    process_until(next_sample_);
    series_.append(type2_kw(next_sample_));
    next_sample_ = next_sample_ + series_.interval();
  }
  process_until(t);
  inst_kw_ =
      type2_kw(t) + fleet::FleetEngine::diurnal_base_kw(spec_, t);
}

void DeviceBackend::migrate_to_feeder(std::size_t feeder,
                                      grid::TariffTier tier) {
  PremiseBackend::migrate_to_feeder(feeder, tier);
  set_tariff(now_, tier);
}

fleet::PremiseResult DeviceBackend::finish() {
  core::NetworkStats stats;
  stats.requests_injected = spec_.trace.size();
  stats.grid_signals_applied = signals_applied_;
  stats.grid_signals_misrouted = signals_misrouted_;
  stats.tariff_deferrals = tariff_deferrals_;
  stats.cp_mean_coverage = 1.0;
  return fleet::FleetEngine::assemble_premise_result(spec_, series_, stats);
}

}  // namespace han::fidelity
