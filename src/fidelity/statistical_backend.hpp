// han::fidelity — the statistical-tier premise backend.
//
// A calibrated closed-form surrogate, O(1) per sample: the premise's
// Type-2 load is predicted from demand bookkeeping (how many devices
// have unexpired demand, precomputed from the trace as a step function)
// times the duty-cycle duty factor, corrected by a CalibrationTable
// fitted offline from full-fidelity runs (see calibration.hpp). Grid
// responses are modeled, not simulated:
//
//   * DR shed — a complying premise delivers shed_compliance of the
//     stretch-implied reduction 1 - 1/stretch while the shed is
//     active; rebound_fraction of the suppressed energy lands in a
//     deferred pool released exponentially (rebound_tau) afterwards;
//   * tariff — tariff_elasticity of the predicted load is deferred out
//     of peak-tariff windows into the same pool (the elasticity hook
//     the tariff_change signal drives);
//   * misrouted signals are counted exactly like the full premise.
//
// This is the tier that makes 100k+ premise fleets tractable; its
// feeder-level aggregate is pinned against full fidelity by the
// calibration harness.
#pragma once

#include <vector>

#include "fidelity/backend.hpp"
#include "metrics/timeseries.hpp"

namespace han::fidelity {

class StatisticalBackend final : public PremiseBackend {
 public:
  StatisticalBackend(fleet::PremiseSpec spec,
                     const CalibrationTable& calibration);

  [[nodiscard]] FidelityTier tier() const noexcept override {
    return FidelityTier::kStatistical;
  }
  void advance_to(sim::TimePoint t) override;
  void migrate_to_feeder(std::size_t feeder, grid::TariffTier tier) override;
  [[nodiscard]] fleet::PremiseResult finish() override;

  /// Last tariff tier signalled to this premise (tests).
  [[nodiscard]] grid::TariffTier tariff_tier() const noexcept {
    return tariff_tier_;
  }
  /// Raw (pre-response) prediction at `t` given the current demand
  /// pointer — exposed for the calibration fit, which needs the
  /// uncorrected estimate.
  [[nodiscard]] double raw_prediction_kw(sim::TimePoint t) const;
  /// Sampled Type-2 series so far (pre-diurnal; the calibration fit
  /// pairs this against a full run's Type-2 series).
  [[nodiscard]] const metrics::TimeSeries& type2_series() const noexcept {
    return series_;
  }

 private:
  void apply_signal(sim::TimePoint at, const grid::GridSignal& s);
  void catch_up_demand(sim::TimePoint t);
  [[nodiscard]] bool shed_active(sim::TimePoint t) const noexcept;
  /// Type-2 estimate at `t` with shed/tariff response applied;
  /// `commit` updates the rebound pool over `dt` (sample steps only).
  double type2_kw(sim::TimePoint t, sim::Duration dt, bool commit);

  CalibrationTable cal_;
  bool coordinated_ = true;
  bool dr_aware_ = false;
  double rated_kw_ = 1.0;
  double duty_factor_ = 0.5;

  /// Demand step function: (time, +1/-1) deltas, time order.
  std::vector<std::pair<sim::TimePoint, int>> demand_events_;
  std::size_t demand_next_ = 0;
  int active_devices_ = 0;

  sim::Ticks shed_stretch_ = 1;
  sim::TimePoint shed_until_ = sim::TimePoint::epoch();
  grid::TariffTier tariff_tier_ = grid::TariffTier::kStandard;
  /// Deferred energy awaiting release (kWh).
  double pool_kwh_ = 0.0;

  metrics::TimeSeries series_;
  sim::TimePoint next_sample_;

  std::uint64_t signals_applied_ = 0;
  std::uint64_t signals_misrouted_ = 0;
};

}  // namespace han::fidelity
