// han::fidelity — the premise backend interface the fleet engine drives.
//
// A PremiseBackend is one premise as the grid loop sees it, at any
// fidelity tier: it absorbs grid signals at their delivery times,
// advances to control barriers, reports its instantaneous contribution
// to the feeder aggregate, migrates between feeders on tie transfers,
// and finally yields the same PremiseResult a full simulation would.
// Both barrier schedulers (polled and event-driven) drive every tier
// through exactly this surface, which is what lets mixed-fidelity
// fleets share the signal routing, transfer accounting and invariant
// harness of the full engine unchanged.
//
// Signal-queue contract (mirrors the pre-fidelity engine exactly so
// the full tier stays byte-identical): queued (deliver_at, signal)
// pairs are FIFO by delivery time; advance_to(t) applies every pair
// with deliver_at <= t at its exact delivery time; migrate_to_feeder
// drops still-undelivered signals from the old head end (only entries
// stamped with the NEW feeder survive) and adopts the new feeder's
// tariff tier.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "fidelity/fidelity.hpp"
#include "fleet/engine.hpp"
#include "grid/signal.hpp"

namespace han::fidelity {

class PremiseBackend {
 public:
  explicit PremiseBackend(fleet::PremiseSpec spec)
      : spec_(std::move(spec)), current_feeder_(spec_.feeder) {}
  virtual ~PremiseBackend() = default;

  PremiseBackend(const PremiseBackend&) = delete;
  PremiseBackend& operator=(const PremiseBackend&) = delete;

  [[nodiscard]] virtual FidelityTier tier() const noexcept = 0;

  /// The resolved premise inputs. spec().feeder stays the HOME feeder
  /// for the whole run (PremiseResult reports home membership);
  /// current_feeder() tracks tie transfers.
  [[nodiscard]] const fleet::PremiseSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] std::size_t current_feeder() const noexcept {
    return current_feeder_;
  }

  /// Enqueues a grid signal addressed to this premise for application
  /// at `deliver_at` (>= the current barrier time by construction:
  /// signals are emitted at barriers and latency is non-negative).
  void queue_signal(sim::TimePoint deliver_at,
                    const grid::GridSignal& signal) {
    pending_.emplace_back(deliver_at, signal);
  }

  /// Advances the premise to barrier time `t`, applying queued signals
  /// due inside the interval at their exact delivery times, and
  /// refreshes inst_kw() to the contribution at `t` (Type-2 + diurnal
  /// base).
  virtual void advance_to(sim::TimePoint t) = 0;

  /// Instantaneous feeder contribution at the last barrier (kW).
  [[nodiscard]] double inst_kw() const noexcept { return inst_kw_; }

  /// Re-homes the premise onto `feeder` (tie-switch transfer) and
  /// adopts that head end's current tariff `tier`. Undelivered signals
  /// from the old head end are dropped.
  virtual void migrate_to_feeder(std::size_t feeder, grid::TariffTier tier);

  /// Finishes the run: the sampled load series assembled into the same
  /// PremiseResult shape a full simulation yields. Call once, after
  /// the final advance_to().
  [[nodiscard]] virtual fleet::PremiseResult finish() = 0;

 protected:
  /// Pops every queued signal due at or before `t`, in queue order.
  /// Returns pairs ordered by delivery time (the engine queues them in
  /// emission order; delivery times are non-decreasing per premise).
  [[nodiscard]] std::vector<std::pair<sim::TimePoint, grid::GridSignal>>
  take_due_signals(sim::TimePoint t) {
    std::vector<std::pair<sim::TimePoint, grid::GridSignal>> due;
    while (pending_next_ < pending_.size() &&
           pending_[pending_next_].first <= t) {
      due.push_back(pending_[pending_next_]);
      ++pending_next_;
    }
    return due;
  }

  /// Drops still-undelivered signals not stamped with `feeder` (the
  /// migration filter; matches the pre-fidelity engine verbatim).
  void filter_pending_for_feeder(std::size_t feeder) {
    std::size_t w = pending_next_;
    for (std::size_t r = pending_next_; r < pending_.size(); ++r) {
      if (pending_[r].second.feeder == feeder) {
        pending_[w++] = pending_[r];
      }
    }
    pending_.resize(w);
  }

  fleet::PremiseSpec spec_;
  std::size_t current_feeder_ = 0;
  double inst_kw_ = 0.0;

 private:
  /// Signals addressed to this premise, FIFO by delivery time.
  std::vector<std::pair<sim::TimePoint, grid::GridSignal>> pending_;
  std::size_t pending_next_ = 0;
};

/// Constructs the backend for `tier`. The spec must already carry the
/// grid-run premise settings (dr_aware, tariff_defer) — backends do
/// not flip those themselves.
[[nodiscard]] std::unique_ptr<PremiseBackend> make_backend(
    FidelityTier tier, fleet::PremiseSpec spec,
    const CalibrationTable& calibration);

}  // namespace han::fidelity
