// han::fidelity — versioned calibration tables for surrogate premises.
//
// The statistical premise tier predicts a premise's Type-2 load from
// closed-form demand bookkeeping instead of simulating the HAN. The
// prediction is anchored to the full model by a CalibrationTable fitted
// offline from full-fidelity runs of the same PremiseSpec population:
//
//   predicted_kw(t) = rated_kw * active_devices(t) * duty_factor
//                     * duty_gain * hourly_shape[hour(t)]
//
// plus a shed-response model (compliance fraction, rebound pool) and a
// tariff-elasticity hook. Tables are versioned so a stored table from
// an older fit format is rejected instead of silently misread.
#pragma once

#include <array>
#include <iosfwd>
#include <optional>
#include <string>

#include "metrics/timeseries.hpp"
#include "sim/time.hpp"

namespace han::fidelity {

/// Fitted parameters of the statistical premise surrogate.
struct CalibrationTable {
  /// Format version; load() rejects tables from a different format.
  static constexpr int kVersion = 1;
  int version = kVersion;

  /// Multiplicative hour-of-day correction on the duty-factor
  /// prediction (what the CP boot, round latency and slot quantization
  /// do to the naive estimate, resolved by hour). Unit (all-1.0) in an
  /// unfitted table.
  std::array<double, 24> hourly_shape{1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
                                      1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
                                      1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
                                      1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  /// Global gain on the duty-factor prediction (hour-independent part
  /// of the fit).
  double duty_gain = 1.0;
  /// Fraction of the stretch-implied reduction a complying premise
  /// actually delivers during a DR shed.
  double shed_compliance = 1.0;
  /// Fraction of shed-suppressed energy that returns after the shed
  /// (deferred duty cycles catching up), and the exponential release
  /// time constant of that rebound pool.
  double rebound_fraction = 0.6;
  sim::Duration rebound_tau = sim::minutes(30);
  /// Fraction of predicted load deferred out of peak-tariff windows
  /// (released through the same rebound pool when the peak ends).
  double tariff_elasticity = 0.25;

  /// The table shipped with the repo: fitted from full-fidelity
  /// scale_sweep runs (see tests/fidelity/test_calibration.cpp for the
  /// workflow that reproduces it).
  [[nodiscard]] static CalibrationTable defaults();

  /// CSV persistence (key,value rows; hourly_shape as 24 rows). The
  /// loader returns nullopt on a malformed table — a row without a
  /// comma, a value that is not a (complete) finite number, NaN/inf,
  /// an unknown key, an out-of-range hourly_shape index — or a version
  /// mismatch. With `error` non-null the reason (with its 1-based line
  /// number) is written there, so callers can say WHICH row poisoned
  /// the table instead of silently falling back to defaults.
  void save_csv(std::ostream& out) const;
  [[nodiscard]] static std::optional<CalibrationTable> load_csv(
      std::istream& in);
  [[nodiscard]] static std::optional<CalibrationTable> load_csv(
      std::istream& in, std::string* error);

  bool operator==(const CalibrationTable&) const = default;
};

/// Offline fit of the hourly shape + duty gain: accumulate
/// (observed full-fidelity series, raw surrogate prediction series)
/// pairs — same sample grid — then fit(). Hours with no prediction
/// energy keep shape 1.0.
class Calibrator {
 public:
  void add(const metrics::TimeSeries& observed,
           const metrics::TimeSeries& predicted);

  /// Number of series pairs accumulated.
  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

  /// Fits a table from the accumulated sums; remaining fields (shed
  /// response, tariff elasticity) are taken from `base`.
  [[nodiscard]] CalibrationTable fit(
      const CalibrationTable& base = CalibrationTable{}) const;

 private:
  std::array<double, 24> observed_{};
  std::array<double, 24> predicted_{};
  std::size_t samples_ = 0;
};

}  // namespace han::fidelity
