#include "fidelity/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace han::fidelity {

std::string_view to_string(FidelityTier t) noexcept {
  switch (t) {
    case FidelityTier::kFull:
      return "full";
    case FidelityTier::kDevice:
      return "device";
    case FidelityTier::kStatistical:
      return "stat";
  }
  return "?";
}

std::vector<FidelityTier> assign_tiers(
    const FidelityPolicy& policy, std::uint64_t seed,
    const std::vector<std::size_t>& feeder_of_premise,
    std::size_t feeder_count) {
  std::vector<FidelityTier> tiers(feeder_of_premise.size(),
                                  FidelityTier::kFull);
  if (policy.all_full()) return tiers;

  const double f = std::max(0.0, policy.full_fraction);
  // Feeder membership in index order — the rank every premise samples
  // its stratum position from.
  std::vector<std::vector<std::size_t>> members(feeder_count);
  for (std::size_t i = 0; i < feeder_of_premise.size(); ++i) {
    members[feeder_of_premise[i]].push_back(i);
  }
  for (std::size_t k = 0; k < feeder_count; ++k) {
    const std::vector<std::size_t>& m = members[k];
    if (m.empty()) continue;
    // Systematic sampling with a per-feeder random phase: hits the
    // target fraction within one premise per feeder, spread evenly
    // over the rank order (which is index order, i.e. uncorrelated
    // with any premise draw).
    const double phase =
        sim::Rng(seed).stream("fidelity", k).uniform();
    std::size_t full_count = 0;
    for (std::size_t r = 0; r < m.size(); ++r) {
      const bool full =
          std::floor(static_cast<double>(r + 1) * f + phase) >
          std::floor(static_cast<double>(r) * f + phase);
      tiers[m[r]] = full ? FidelityTier::kFull : policy.surrogate;
      if (full) ++full_count;
    }
    const std::size_t want =
        std::min(policy.min_full_per_feeder, m.size());
    for (std::size_t r = 0; r < m.size() && full_count < want; ++r) {
      if (tiers[m[r]] != FidelityTier::kFull) {
        tiers[m[r]] = FidelityTier::kFull;
        ++full_count;
      }
    }
  }
  return tiers;
}

std::optional<FidelityPolicy> policy_from_flag(std::string_view value) {
  FidelityPolicy p;
  if (value == "full") {
    p.full_fraction = 1.0;
    return p;
  }
  if (value == "device") {
    p.surrogate = FidelityTier::kDevice;
    p.full_fraction = 0.0;
    p.min_full_per_feeder = 0;
    return p;
  }
  if (value == "stat") {
    p.surrogate = FidelityTier::kStatistical;
    p.full_fraction = 0.0;
    p.min_full_per_feeder = 0;
    return p;
  }
  constexpr std::string_view kMixed = "mixed:";
  if (value.rfind(kMixed, 0) == 0) {
    const std::string frac(value.substr(kMixed.size()));
    char* end = nullptr;
    const double f = std::strtod(frac.c_str(), &end);
    if (end == frac.c_str() || *end != '\0' || !(f >= 0.0) || f > 1.0) {
      return std::nullopt;
    }
    p.surrogate = FidelityTier::kStatistical;
    p.full_fraction = f;
    p.min_full_per_feeder = 1;
    return p;
  }
  return std::nullopt;
}

std::string to_string(const FidelityPolicy& policy) {
  if (policy.all_full()) return "full";
  if (policy.full_fraction <= 0.0 && policy.min_full_per_feeder == 0) {
    return std::string(to_string(policy.surrogate));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "mixed:%.2f (full+%s)",
                policy.full_fraction,
                std::string(to_string(policy.surrogate)).c_str());
  return buf;
}

}  // namespace han::fidelity
