// han::fidelity — the device-tier premise backend.
//
// Duty-cycle state machines stepped directly: every Type-2 device keeps
// the paper's (minDCD, maxDCP) envelope and the premise schedules with
// the SAME policy code the full simulation runs (the coordinated slot
// ledger via CoordinatedScheduler's static helpers, or the free-running
// uncoordinated baseline) — but over a locally built, always-perfect
// view instead of CP rounds. What is skipped: the radio medium, CSMA,
// flood dissemination, per-round events. What is kept: demand
// bookkeeping (whole-maxDCP rounding), slot claims at demand start, DR
// shed stretch with auto-expiry, the misroute guard, and the
// peak-tariff deferral stub.
//
// Cost: O(trace + samples * devices) per premise instead of O(CP
// rounds * devices^2); deviation from the full tier comes from CP
// latency effects (claims land a round late, relays switch at round
// boundaries) and is pinned by the calibration harness.
#pragma once

#include <vector>

#include "appliance/workload.hpp"
#include "fidelity/backend.hpp"
#include "metrics/timeseries.hpp"
#include "sched/view.hpp"

namespace han::fidelity {

class DeviceBackend final : public PremiseBackend {
 public:
  explicit DeviceBackend(fleet::PremiseSpec spec);

  [[nodiscard]] FidelityTier tier() const noexcept override {
    return FidelityTier::kDevice;
  }
  void advance_to(sim::TimePoint t) override;
  void migrate_to_feeder(std::size_t feeder, grid::TariffTier tier) override;
  [[nodiscard]] fleet::PremiseResult finish() override;

  /// Last tariff tier signalled to this premise (tests).
  [[nodiscard]] grid::TariffTier tariff_tier() const noexcept {
    return tariff_tier_;
  }
  /// Instantaneous Type-2 load at `t` given the current state (tests).
  [[nodiscard]] double type2_kw(sim::TimePoint t) const;
  /// Sampled Type-2 series so far (pre-diurnal; tests/divergence).
  [[nodiscard]] const metrics::TimeSeries& type2_series() const noexcept {
    return series_;
  }

 private:
  struct Dev {
    sim::TimePoint demand_since;
    sim::TimePoint demand_until;  // <= now means idle
    std::uint8_t slot = sched::kNoSlot;
  };

  void process_until(sim::TimePoint t);
  void arrival(sim::TimePoint at, const appliance::Request& r);
  void apply_signal(sim::TimePoint at, const grid::GridSignal& s);
  void set_tariff(sim::TimePoint at, grid::TariffTier tier);
  [[nodiscard]] sched::GridPressure pressure_at(sim::TimePoint t) const;
  [[nodiscard]] bool device_on(const Dev& d, sim::TimePoint t) const;
  [[nodiscard]] sched::GlobalView view_at(sim::TimePoint t) const;

  bool coordinated_ = true;
  bool dr_aware_ = false;
  bool tariff_defer_ = false;
  sim::Duration min_dcd_;
  sim::Duration max_dcp_;
  double rated_kw_ = 1.0;

  std::vector<Dev> devs_;
  std::size_t trace_next_ = 0;
  /// Signals due in the current advance, drained by process_until.
  std::vector<std::pair<sim::TimePoint, grid::GridSignal>> due_;
  std::size_t due_next_ = 0;

  sim::Ticks shed_stretch_ = 1;
  sim::TimePoint shed_until_ = sim::TimePoint::epoch();
  grid::TariffTier tariff_tier_ = grid::TariffTier::kStandard;
  /// Requests parked during a peak-tariff window (tariff_defer only).
  std::vector<appliance::Request> deferred_;

  metrics::TimeSeries series_;
  sim::TimePoint next_sample_;
  sim::TimePoint now_ = sim::TimePoint::epoch();

  std::uint64_t signals_applied_ = 0;
  std::uint64_t signals_misrouted_ = 0;
  std::uint64_t tariff_deferrals_ = 0;
};

}  // namespace han::fidelity
