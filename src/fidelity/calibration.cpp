#include "fidelity/calibration.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace han::fidelity {

CalibrationTable CalibrationTable::defaults() {
  CalibrationTable t;
  // Fitted from full-fidelity scale_sweep runs (48 premises, seed 1,
  // ~6 h): the surrogate's naive duty-factor estimate needs a small
  // downward gain — slot quantization and CP boot shave real bursts —
  // and the shape is kept flat because scale_sweep's Poisson background
  // has no diurnal structure (the fitted per-hour corrections are noise
  // around 1). Reproduced by tests/fidelity/
  // test_calibration.cpp::FitWorkflowReproducesShippedGain.
  t.duty_gain = 0.9925;
  return t;
}

void CalibrationTable::save_csv(std::ostream& out) const {
  out << "key,value\n";
  out << "version," << version << "\n";
  out << "duty_gain," << duty_gain << "\n";
  out << "shed_compliance," << shed_compliance << "\n";
  out << "rebound_fraction," << rebound_fraction << "\n";
  out << "rebound_tau_us," << rebound_tau.us() << "\n";
  out << "tariff_elasticity," << tariff_elasticity << "\n";
  for (std::size_t h = 0; h < hourly_shape.size(); ++h) {
    out << "hourly_shape_" << h << "," << hourly_shape[h] << "\n";
  }
}

std::optional<CalibrationTable> CalibrationTable::load_csv(std::istream& in) {
  return load_csv(in, nullptr);
}

namespace {

/// Records the rejection reason (prefixed with the 1-based CSV line
/// number) and returns nullopt, so every bail-out site in the loader
/// reads as one statement.
std::optional<CalibrationTable> reject(std::string* error, std::size_t line_no,
                                       const std::string& why) {
  if (error != nullptr) {
    *error = "calibration CSV line " + std::to_string(line_no) + ": " + why;
  }
  return std::nullopt;
}

}  // namespace

std::optional<CalibrationTable> CalibrationTable::load_csv(
    std::istream& in, std::string* error) {
  CalibrationTable t;
  bool saw_version = false;
  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(in, line)) {
    return reject(error, line_no, "empty stream (missing header)");
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return reject(error, line_no, "no comma in row '" + line + "'");
    }
    const std::string key = line.substr(0, comma);
    const std::string value = line.substr(comma + 1);
    double v = 0.0;
    std::size_t consumed = 0;
    try {
      v = std::stod(value, &consumed);
    } catch (...) {
      return reject(error, line_no,
                    "value '" + value + "' for key '" + key +
                        "' is not a number");
    }
    // stod accepts a numeric prefix ("1.5abc") and the words nan/inf;
    // a calibration parameter must be a complete, finite number or the
    // surrogate silently computes garbage loads from it.
    if (consumed != value.size()) {
      return reject(error, line_no,
                    "trailing garbage in value '" + value + "' for key '" +
                        key + "'");
    }
    if (!std::isfinite(v)) {
      return reject(error, line_no,
                    "non-finite value '" + value + "' for key '" + key +
                        "'");
    }
    if (key == "version") {
      t.version = static_cast<int>(v);
      saw_version = true;
    } else if (key == "duty_gain") {
      t.duty_gain = v;
    } else if (key == "shed_compliance") {
      t.shed_compliance = v;
    } else if (key == "rebound_fraction") {
      t.rebound_fraction = v;
    } else if (key == "rebound_tau_us") {
      t.rebound_tau = sim::microseconds(static_cast<sim::Ticks>(v));
    } else if (key == "tariff_elasticity") {
      t.tariff_elasticity = v;
    } else if (key.rfind("hourly_shape_", 0) == 0) {
      std::size_t h = 0;
      std::size_t digits = 0;
      const std::string index = key.substr(13);
      try {
        h = std::stoul(index, &digits);
      } catch (...) {
        return reject(error, line_no,
                      "bad hourly_shape index '" + index + "'");
      }
      if (digits != index.size()) {
        return reject(error, line_no,
                      "bad hourly_shape index '" + index + "'");
      }
      if (h >= t.hourly_shape.size()) {
        return reject(error, line_no,
                      "hourly_shape index " + index + " out of range (0-" +
                          std::to_string(t.hourly_shape.size() - 1) + ")");
      }
      t.hourly_shape[h] = v;
    } else {
      return reject(error, line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_version) {
    return reject(error, line_no, "table has no version row");
  }
  if (t.version != CalibrationTable::kVersion) {
    return reject(error, line_no,
                  "version " + std::to_string(t.version) +
                      " does not match expected " +
                      std::to_string(CalibrationTable::kVersion));
  }
  return t;
}

void Calibrator::add(const metrics::TimeSeries& observed,
                     const metrics::TimeSeries& predicted) {
  const std::size_t n = std::min(observed.size(), predicted.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto h = static_cast<std::size_t>(
        observed.time_of(i).since_epoch().hours_f());
    observed_[h % 24] += observed.at(i);
    predicted_[h % 24] += predicted.at(i);
  }
  ++samples_;
}

CalibrationTable Calibrator::fit(const CalibrationTable& base) const {
  CalibrationTable t = base;
  t.version = CalibrationTable::kVersion;
  // Global gain: total observed energy over total predicted. Hourly
  // shape: per-hour ratio normalized by the global gain, so the shape
  // carries only the hour-of-day structure.
  double obs_total = 0.0;
  double pred_total = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    obs_total += observed_[h];
    pred_total += predicted_[h];
  }
  t.duty_gain = pred_total > 0.0 ? obs_total / pred_total : 1.0;
  for (std::size_t h = 0; h < 24; ++h) {
    t.hourly_shape[h] =
        (predicted_[h] > 0.0 && t.duty_gain > 0.0)
            ? (observed_[h] / predicted_[h]) / t.duty_gain
            : 1.0;
  }
  return t;
}

}  // namespace han::fidelity
