#include "fidelity/calibration.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace han::fidelity {

CalibrationTable CalibrationTable::defaults() {
  CalibrationTable t;
  // Fitted from full-fidelity scale_sweep runs (48 premises, seed 1,
  // ~6 h): the surrogate's naive duty-factor estimate needs a small
  // downward gain — slot quantization and CP boot shave real bursts —
  // and the shape is kept flat because scale_sweep's Poisson background
  // has no diurnal structure (the fitted per-hour corrections are noise
  // around 1). Reproduced by tests/fidelity/
  // test_calibration.cpp::FitWorkflowReproducesShippedGain.
  t.duty_gain = 0.9925;
  return t;
}

void CalibrationTable::save_csv(std::ostream& out) const {
  out << "key,value\n";
  out << "version," << version << "\n";
  out << "duty_gain," << duty_gain << "\n";
  out << "shed_compliance," << shed_compliance << "\n";
  out << "rebound_fraction," << rebound_fraction << "\n";
  out << "rebound_tau_us," << rebound_tau.us() << "\n";
  out << "tariff_elasticity," << tariff_elasticity << "\n";
  for (std::size_t h = 0; h < hourly_shape.size(); ++h) {
    out << "hourly_shape_" << h << "," << hourly_shape[h] << "\n";
  }
}

std::optional<CalibrationTable> CalibrationTable::load_csv(std::istream& in) {
  CalibrationTable t;
  bool saw_version = false;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) return std::nullopt;
    const std::string key = line.substr(0, comma);
    const std::string value = line.substr(comma + 1);
    double v = 0.0;
    try {
      v = std::stod(value);
    } catch (...) {
      return std::nullopt;
    }
    if (key == "version") {
      t.version = static_cast<int>(v);
      saw_version = true;
    } else if (key == "duty_gain") {
      t.duty_gain = v;
    } else if (key == "shed_compliance") {
      t.shed_compliance = v;
    } else if (key == "rebound_fraction") {
      t.rebound_fraction = v;
    } else if (key == "rebound_tau_us") {
      t.rebound_tau = sim::microseconds(static_cast<sim::Ticks>(v));
    } else if (key == "tariff_elasticity") {
      t.tariff_elasticity = v;
    } else if (key.rfind("hourly_shape_", 0) == 0) {
      const std::size_t h = std::stoul(key.substr(13));
      if (h >= t.hourly_shape.size()) return std::nullopt;
      t.hourly_shape[h] = v;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_version || t.version != CalibrationTable::kVersion) {
    return std::nullopt;
  }
  return t;
}

void Calibrator::add(const metrics::TimeSeries& observed,
                     const metrics::TimeSeries& predicted) {
  const std::size_t n = std::min(observed.size(), predicted.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto h = static_cast<std::size_t>(
        observed.time_of(i).since_epoch().hours_f());
    observed_[h % 24] += observed.at(i);
    predicted_[h % 24] += predicted.at(i);
  }
  ++samples_;
}

CalibrationTable Calibrator::fit(const CalibrationTable& base) const {
  CalibrationTable t = base;
  t.version = CalibrationTable::kVersion;
  // Global gain: total observed energy over total predicted. Hourly
  // shape: per-hour ratio normalized by the global gain, so the shape
  // carries only the hour-of-day structure.
  double obs_total = 0.0;
  double pred_total = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    obs_total += observed_[h];
    pred_total += predicted_[h];
  }
  t.duty_gain = pred_total > 0.0 ? obs_total / pred_total : 1.0;
  for (std::size_t h = 0; h < 24; ++h) {
    t.hourly_shape[h] =
        (predicted_[h] > 0.0 && t.duty_gain > 0.0)
            ? (observed_[h] / predicted_[h]) / t.duty_gain
            : 1.0;
  }
  return t;
}

}  // namespace han::fidelity
