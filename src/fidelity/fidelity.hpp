// han::fidelity — tiered premise fidelity for million-premise fleets.
//
// Every premise today is a full HAN simulation (radio medium, CSMA,
// per-device events) — faithful at paper scale, physically impossible
// at the ROADMAP's million-premise north star. This subsystem lets the
// fleet engine run each premise at one of three fidelities behind one
// PremiseBackend interface (see backend.hpp):
//
//   kFull        today's HAN network simulation, unchanged. A fleet
//                whose every premise is full-fidelity is byte-identical
//                to the pre-fidelity engine.
//   kDevice      duty-cycle state machines stepped directly with
//                perfect views — no radio, no CSMA, no CP rounds.
//   kStatistical a calibrated closed-form surrogate (demand bookkeeping
//                x duty factor x fitted calibration table + shed/
//                rebound/tariff response). O(1) per sample.
//
// A FidelityPolicy assigns a tier to every premise deterministically
// from the fleet seed, stratified per feeder so each feeder keeps a
// full-fidelity stratum to trust (and to calibrate against).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fidelity/calibration.hpp"
#include "sim/random.hpp"

namespace han::fidelity {

enum class FidelityTier : std::uint8_t { kFull, kDevice, kStatistical };

[[nodiscard]] std::string_view to_string(FidelityTier t) noexcept;

/// Per-premise tier assignment for one fleet run.
struct FidelityPolicy {
  /// Tier the non-full premises run at.
  FidelityTier surrogate = FidelityTier::kStatistical;
  /// Fraction of each feeder's premises kept at full fidelity.
  /// 1.0 (the default) keeps every premise full — the pre-fidelity
  /// engine exactly, with zero policy RNG drawn.
  double full_fraction = 1.0;
  /// Floor on full-fidelity premises per feeder (stratified sampling:
  /// every feeder keeps a trustworthy stratum even under tiny
  /// fractions). Ignored when full_fraction >= 1.
  std::size_t min_full_per_feeder = 1;
  /// Statistical-tier parameters (see calibration.hpp).
  CalibrationTable calibration = CalibrationTable::defaults();

  /// True when every premise runs full fidelity (the byte-identical
  /// fast path: no tier table is built at all).
  [[nodiscard]] bool all_full() const noexcept { return full_fraction >= 1.0; }
};

/// Builds the per-premise tier table for `policy`: premises of each
/// feeder are ranked by index and every feeder's stratum is sampled
/// systematically — member rank r is full iff
/// floor((r+1)*f + phase_k) > floor(r*f + phase_k), with phase_k drawn
/// from seed stream ("fidelity", k) — then the lowest ranks are
/// promoted until min_full_per_feeder is met (capped at the feeder
/// size). Deterministic in (seed, feeder assignment, policy); drawing
/// the phase from its own named stream never perturbs premise draws.
[[nodiscard]] std::vector<FidelityTier> assign_tiers(
    const FidelityPolicy& policy, std::uint64_t seed,
    const std::vector<std::size_t>& feeder_of_premise,
    std::size_t feeder_count);

/// Parses a --fidelity flag value: "full", "device", "stat" (every
/// premise on that tier) or "mixed:P" (fraction P in [0,1] full, the
/// rest statistical). Returns nullopt on anything else.
[[nodiscard]] std::optional<FidelityPolicy> policy_from_flag(
    std::string_view value);

/// Human-readable policy summary for banners/logs (e.g. "full",
/// "stat", "mixed:0.10 (full+stat)").
[[nodiscard]] std::string to_string(const FidelityPolicy& policy);

}  // namespace han::fidelity
