// han::sim — strong time types for the discrete-event kernel.
//
// All simulated time is measured in integer microseconds ("ticks").
// We use dedicated wrapper types instead of raw int64_t so that a
// Duration can never be accidentally used where a TimePoint is
// expected, and vice versa (Core Guidelines I.4: make interfaces
// precisely and strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace han::sim {

/// Number of simulated microseconds; the kernel's base unit.
using Ticks = std::int64_t;

class Duration;

/// A span of simulated time. Value type; totally ordered; may be negative
/// (e.g. as the result of subtracting two time points).
class Duration {
 public:
  constexpr Duration() noexcept = default;
  constexpr explicit Duration(Ticks us) noexcept : us_(us) {}

  /// Raw value in microseconds.
  [[nodiscard]] constexpr Ticks us() const noexcept { return us_; }
  /// Value converted to coarser units (integer division truncates).
  [[nodiscard]] constexpr Ticks ms() const noexcept { return us_ / 1000; }
  [[nodiscard]] constexpr Ticks sec() const noexcept { return us_ / 1'000'000; }
  [[nodiscard]] constexpr Ticks min() const noexcept { return us_ / 60'000'000; }

  /// Value in fractional seconds / minutes / hours (for reporting).
  [[nodiscard]] constexpr double seconds_f() const noexcept {
    return static_cast<double>(us_) / 1e6;
  }
  [[nodiscard]] constexpr double minutes_f() const noexcept {
    return static_cast<double>(us_) / 60e6;
  }
  [[nodiscard]] constexpr double hours_f() const noexcept {
    return static_cast<double>(us_) / 3600e6;
  }

  constexpr auto operator<=>(const Duration&) const noexcept = default;

  constexpr Duration& operator+=(Duration d) noexcept {
    us_ += d.us_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) noexcept {
    us_ -= d.us_;
    return *this;
  }
  constexpr Duration& operator*=(Ticks k) noexcept {
    us_ *= k;
    return *this;
  }

  [[nodiscard]] constexpr Duration operator-() const noexcept {
    return Duration{-us_};
  }

  [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() noexcept {
    return Duration{std::numeric_limits<Ticks>::max()};
  }

  /// Human-readable rendering, e.g. "2.000s", "15.0min".
  [[nodiscard]] std::string to_string() const;

 private:
  Ticks us_ = 0;
};

[[nodiscard]] constexpr Duration operator+(Duration a, Duration b) noexcept {
  return Duration{a.us() + b.us()};
}
[[nodiscard]] constexpr Duration operator-(Duration a, Duration b) noexcept {
  return Duration{a.us() - b.us()};
}
[[nodiscard]] constexpr Duration operator*(Duration a, Ticks k) noexcept {
  return Duration{a.us() * k};
}
[[nodiscard]] constexpr Duration operator*(Ticks k, Duration a) noexcept {
  return Duration{a.us() * k};
}
[[nodiscard]] constexpr Duration operator/(Duration a, Ticks k) noexcept {
  return Duration{a.us() / k};
}
/// Integral ratio of two durations (how many b fit into a).
[[nodiscard]] constexpr Ticks operator/(Duration a, Duration b) noexcept {
  return a.us() / b.us();
}
/// Remainder of a modulo b; used for phase computations inside periods.
[[nodiscard]] constexpr Duration operator%(Duration a, Duration b) noexcept {
  return Duration{a.us() % b.us()};
}

// Named constructors (free functions so call sites read naturally:
// `schedule_after(seconds(2))`).
[[nodiscard]] constexpr Duration microseconds(Ticks v) noexcept {
  return Duration{v};
}
[[nodiscard]] constexpr Duration milliseconds(Ticks v) noexcept {
  return Duration{v * 1000};
}
[[nodiscard]] constexpr Duration seconds(Ticks v) noexcept {
  return Duration{v * 1'000'000};
}
[[nodiscard]] constexpr Duration minutes(Ticks v) noexcept {
  return Duration{v * 60'000'000};
}
[[nodiscard]] constexpr Duration hours(Ticks v) noexcept {
  return Duration{v * 3'600'000'000LL};
}
/// Fractional-second constructor (rounds to the nearest microsecond).
[[nodiscard]] constexpr Duration seconds_f(double v) noexcept {
  return Duration{static_cast<Ticks>(v * 1e6 + (v >= 0 ? 0.5 : -0.5))};
}

/// An absolute instant on the simulated clock. Epoch = simulation start.
class TimePoint {
 public:
  constexpr TimePoint() noexcept = default;
  constexpr explicit TimePoint(Ticks us) noexcept : us_(us) {}

  [[nodiscard]] constexpr Ticks us() const noexcept { return us_; }
  [[nodiscard]] constexpr Duration since_epoch() const noexcept {
    return Duration{us_};
  }

  constexpr auto operator<=>(const TimePoint&) const noexcept = default;

  [[nodiscard]] static constexpr TimePoint epoch() noexcept {
    return TimePoint{0};
  }
  [[nodiscard]] static constexpr TimePoint max() noexcept {
    return TimePoint{std::numeric_limits<Ticks>::max()};
  }

  [[nodiscard]] std::string to_string() const;

 private:
  Ticks us_ = 0;
};

[[nodiscard]] constexpr TimePoint operator+(TimePoint t, Duration d) noexcept {
  return TimePoint{t.us() + d.us()};
}
[[nodiscard]] constexpr TimePoint operator+(Duration d, TimePoint t) noexcept {
  return t + d;
}
[[nodiscard]] constexpr TimePoint operator-(TimePoint t, Duration d) noexcept {
  return TimePoint{t.us() - d.us()};
}
[[nodiscard]] constexpr Duration operator-(TimePoint a, TimePoint b) noexcept {
  return Duration{a.us() - b.us()};
}

/// Phase of `t` inside a repeating period anchored at the epoch.
/// Used by the coordinated scheduler to map "now" into the maxDCP ring.
[[nodiscard]] constexpr Duration phase_in_period(TimePoint t,
                                                 Duration period) noexcept {
  return t.since_epoch() % period;
}

/// Start of the period window containing `t` (anchored at the epoch).
[[nodiscard]] constexpr TimePoint period_start(TimePoint t,
                                               Duration period) noexcept {
  return TimePoint{(t.us() / period.us()) * period.us()};
}

}  // namespace han::sim
