#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace han::sim {

EventId EventQueue::schedule(TimePoint at, EventFn fn) {
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Node{at, seq, std::move(fn)});
  slot_of_[seq] = heap_.size() - 1;
  sift_up(heap_.size() - 1);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  auto it = slot_of_.find(id.value);
  if (it == slot_of_.end()) return false;
  remove_at(it->second);
  return true;
}

TimePoint EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  assert(!heap_.empty());
  Fired out{heap_.front().time, EventId{heap_.front().seq},
            std::move(heap_.front().fn)};
  remove_at(0);
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  slot_of_.clear();
}

void EventQueue::move_to(std::size_t dst, Node&& n) {
  slot_of_[n.seq] = dst;
  heap_[dst] = std::move(n);
}

void EventQueue::sift_up(std::size_t i) {
  Node moving = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(moving, heap_[parent])) break;
    move_to(i, std::move(heap_[parent]));
    i = parent;
  }
  move_to(i, std::move(moving));
}

void EventQueue::sift_down(std::size_t i) {
  Node moving = std::move(heap_[i]);
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && less(heap_[child + 1], heap_[child])) ++child;
    if (!less(heap_[child], moving)) break;
    move_to(i, std::move(heap_[child]));
    i = child;
  }
  move_to(i, std::move(moving));
}

void EventQueue::remove_at(std::size_t i) {
  assert(i < heap_.size());
  slot_of_.erase(heap_[i].seq);
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    Node tail = std::move(heap_[last]);
    heap_.pop_back();
    move_to(i, std::move(tail));
    // The replacement may need to move either direction.
    if (i > 0 && less(heap_[i], heap_[(i - 1) / 2])) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  } else {
    heap_.pop_back();
  }
}

}  // namespace han::sim
