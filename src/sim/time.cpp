#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace han::sim {

std::string Duration::to_string() const {
  char buf[64];
  const double a = std::abs(static_cast<double>(us_));
  if (a >= 3600e6) {
    std::snprintf(buf, sizeof buf, "%.2fh", static_cast<double>(us_) / 3600e6);
  } else if (a >= 60e6) {
    std::snprintf(buf, sizeof buf, "%.1fmin", static_cast<double>(us_) / 60e6);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(us_) / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(us_) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  return "t+" + since_epoch().to_string();
}

}  // namespace han::sim
