// han::sim — structured trace recording.
//
// A TraceRecorder collects (time, category, key, value) samples during a
// run. It is the bridge between the simulation and the metrics layer:
// components emit raw samples, benches and tests pull the series they
// need. Categories are interned to keep recording cheap.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace han::sim {

/// One recorded sample.
struct TraceSample {
  TimePoint time;
  double value = 0.0;
};

/// Append-only recorder of named numeric time series.
class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// Records `value` for series `name` at time `at`.
  void record(std::string_view name, TimePoint at, double value);

  /// True if a series with this name exists.
  [[nodiscard]] bool has_series(std::string_view name) const;

  /// Samples of a series in recording order (empty if unknown).
  [[nodiscard]] const std::vector<TraceSample>& series(
      std::string_view name) const;

  /// All series names, lexicographically sorted (the storage order, so
  /// the list is deterministic and ready for serialization).
  [[nodiscard]] std::vector<std::string> series_names() const;

  /// Total number of samples across all series.
  [[nodiscard]] std::size_t total_samples() const noexcept { return total_; }

  void clear();

 private:
  /// Ordered map: series iterate in name order, so anything serialized
  /// from a full walk (trace export, name listings) is deterministic by
  /// construction. std::less<> enables string_view lookups without
  /// materializing a std::string per record() call.
  std::map<std::string, std::vector<TraceSample>, std::less<>> series_;
  std::size_t total_ = 0;
  static const std::vector<TraceSample> kEmpty;
};

}  // namespace han::sim
