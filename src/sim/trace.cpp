#include "sim/trace.hpp"

namespace han::sim {

const std::vector<TraceSample> TraceRecorder::kEmpty{};

void TraceRecorder::record(std::string_view name, TimePoint at, double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(std::string(name), std::vector<TraceSample>{}).first;
  }
  it->second.push_back(TraceSample{at, value});
  ++total_;
}

bool TraceRecorder::has_series(std::string_view name) const {
  return series_.find(name) != series_.end();
}

const std::vector<TraceSample>& TraceRecorder::series(
    std::string_view name) const {
  auto it = series_.find(name);
  return it == series_.end() ? kEmpty : it->second;
}

std::vector<std::string> TraceRecorder::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, _] : series_) names.push_back(name);
  return names;
}

void TraceRecorder::clear() {
  series_.clear();
  total_ = 0;
}

}  // namespace han::sim
