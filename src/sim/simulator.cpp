#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace han::sim {

struct Simulator::PeriodicHandle::State {
  Simulator* sim = nullptr;
  Duration period{};
  EventFn fn;
  EventId pending{};
  bool cancelled = false;

  // The scheduled lambda keeps the state alive via its captured
  // shared_ptr; no self-reference is stored, so cancelled handles are
  // freed as soon as the pending event is removed.
  static void arm(const std::shared_ptr<State>& self, TimePoint at) {
    self->pending = self->sim->schedule_at(at, [self]() {
      if (self->cancelled) return;
      // Re-arm first so the callback may itself cancel the handle.
      arm(self, self->sim->now() + self->period);
      self->fn();
    });
  }
};

void Simulator::PeriodicHandle::cancel() {
  if (!state) return;
  state->cancelled = true;
  if (state->pending.valid()) {
    state->sim->cancel(state->pending);
    state->pending = EventId{};
  }
}

bool Simulator::PeriodicHandle::active() const noexcept {
  return state && !state->cancelled;
}

EventId Simulator::schedule_at(TimePoint at, EventFn fn) {
  if (at < now_) {
    throw std::logic_error("Simulator::schedule_at: time is in the past");
  }
  return queue_.schedule(at, std::move(fn));
}

EventId Simulator::schedule_after(Duration delay, EventFn fn) {
  if (delay < Duration::zero()) {
    throw std::logic_error("Simulator::schedule_after: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(fn));
}

Simulator::PeriodicHandle Simulator::schedule_every(Duration period,
                                                    EventFn fn) {
  return schedule_every(now_ + period, period, std::move(fn));
}

Simulator::PeriodicHandle Simulator::schedule_every(TimePoint first,
                                                    Duration period,
                                                    EventFn fn) {
  if (period <= Duration::zero()) {
    throw std::logic_error("Simulator::schedule_every: period must be > 0");
  }
  auto state = std::make_shared<PeriodicHandle::State>();
  state->sim = this;
  state->period = period;
  state->fn = std::move(fn);
  PeriodicHandle::State::arm(state, first);
  PeriodicHandle h;
  h.state = std::move(state);
  return h;
}

void Simulator::fire_one() {
  auto fired = queue_.pop();
  assert(fired.time >= now_);
  now_ = fired.time;
  ++executed_;
  fired.fn();
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) fire_one();
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    fire_one();
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  fire_one();
  return true;
}

}  // namespace han::sim
