// han::sim — deterministic random number generation.
//
// We deliberately avoid <random>'s distribution objects: their output is
// implementation-defined, which would make simulations differ between
// standard libraries. The generator is xoshiro256** (public domain,
// Blackman & Vigna) and every distribution is implemented here, so a
// (seed, stream) pair yields identical results on every platform.
//
// Streams: a simulation derives independent named sub-generators from the
// root seed (e.g. "workload", "channel", "node/7") via SplitMix64 hashing,
// so adding a new consumer of randomness never perturbs existing ones.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace han::sim {

/// SplitMix64 step; used for seeding and string hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with hand-rolled, platform-stable distributions.
class Rng {
 public:
  /// Seeds the generator; all four state words are derived via SplitMix64,
  /// so any seed (including 0) is valid.
  explicit Rng(std::uint64_t seed = 0xC0FFEE'5EED'1234ULL) noexcept;

  /// Derives an independent generator for the named stream. Deterministic:
  /// same parent seed + same name => same stream.
  [[nodiscard]] Rng stream(std::string_view name) const noexcept;
  /// Derives an independent generator for an indexed stream (e.g. per node).
  [[nodiscard]] Rng stream(std::string_view name, std::uint64_t index) const noexcept;

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64() noexcept;

  /// Uniform real on [0, 1).
  double uniform() noexcept;
  /// Uniform real on [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer on [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential with mean `mean` (> 0). Inter-arrival times of a Poisson
  /// process with rate 1/mean.
  double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean) noexcept;

  /// Uniformly chosen index in [0, n). Precondition: n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      using std::swap;
      swap(v[i], v[index(i + 1)]);
    }
  }

  /// The seed this generator was constructed from (diagnostics).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace han::sim
