#include "sim/logging.hpp"

#include <cstdio>

namespace han::sim {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger::Logger()
    : sink_([](std::string_view line) {
        std::fwrite(line.data(), 1, line.size(), stderr);
        std::fputc('\n', stderr);
      }) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](std::string_view line) {
      std::fwrite(line.data(), 1, line.size(), stderr);
      std::fputc('\n', stderr);
    };
  }
}

void Logger::write(LogLevel level, TimePoint at, std::string_view component,
                   std::string_view message) {
  std::string line;
  line.reserve(component.size() + message.size() + 32);
  line += '[';
  line += to_string(level);
  line += "] ";
  line += at.to_string();
  line += ' ';
  line += component;
  line += ": ";
  line += message;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink_(line);
  }
  lines_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace han::sim
