#include "sim/random.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace han::sim {
namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a over the stream name; mixed into the seed for stream derivation.
[[nodiscard]] constexpr std::uint64_t hash_name(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng Rng::stream(std::string_view name) const noexcept {
  std::uint64_t mix = seed_ ^ hash_name(name);
  return Rng{splitmix64(mix)};
}

Rng Rng::stream(std::string_view name, std::uint64_t index) const noexcept {
  std::uint64_t mix = seed_ ^ hash_name(name) ^ (index * 0x9E3779B97F4A7C15ULL);
  return Rng{splitmix64(mix)};
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // Guard against log(0): uniform() is in [0,1), so 1-u is in (0,1].
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  // Knuth's multiplication method.
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

std::size_t Rng::index(std::size_t n) noexcept {
  assert(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace han::sim
