// han::sim — minimal levelled logger for the simulation kernel.
//
// The logger is a process-wide singleton with a configurable level and
// sink. Log lines carry the simulated timestamp supplied by the caller
// (the kernel has no global "current simulator", so the time is passed
// explicitly). Formatting uses printf-style varargs kept type-safe via a
// small variadic template over streamable values.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace han::sim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Global logging configuration. Thread-safe: each simulator is
/// single-threaded, but the fleet engine runs many simulators
/// concurrently, so the level check is atomic (lock-free fast path)
/// and sink invocation is serialized under a mutex.
class Logger {
 public:
  using Sink = std::function<void(std::string_view line)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= this->level();
  }

  /// Replaces the output sink (pass nullptr to restore stderr).
  void set_sink(Sink sink);

  void write(LogLevel level, TimePoint at, std::string_view component,
             std::string_view message);

  /// Number of lines emitted since construction (used by tests).
  [[nodiscard]] std::uint64_t lines_emitted() const noexcept {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  Logger();
  std::atomic<LogLevel> level_ = LogLevel::kWarn;
  std::mutex mutex_;  // guards sink_ (replacement and invocation)
  Sink sink_;
  std::atomic<std::uint64_t> lines_ = 0;
};

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

/// Logs `parts...` (stream-concatenated) if `level` is enabled.
template <typename... Parts>
void log(LogLevel level, TimePoint at, std::string_view component,
         const Parts&... parts) {
  Logger& lg = Logger::instance();
  if (!lg.enabled(level)) return;
  std::ostringstream os;
  detail::append_all(os, parts...);
  lg.write(level, at, component, os.str());
}

}  // namespace han::sim
