// han::sim — minimal levelled logger for the simulation kernel.
//
// The logger is a process-wide singleton with a configurable level and
// sink. Log lines carry the simulated timestamp supplied by the caller
// (the kernel has no global "current simulator", so the time is passed
// explicitly). Formatting uses printf-style varargs kept type-safe via a
// small variadic template over streamable values.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace han::sim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Global logging configuration. Thread-compatible (the simulator is
/// single-threaded); the default sink writes to stderr.
class Logger {
 public:
  using Sink = std::function<void(std::string_view line)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_;
  }

  /// Replaces the output sink (pass nullptr to restore stderr).
  void set_sink(Sink sink);

  void write(LogLevel level, TimePoint at, std::string_view component,
             std::string_view message);

  /// Number of lines emitted since construction (used by tests).
  [[nodiscard]] std::uint64_t lines_emitted() const noexcept { return lines_; }

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  std::uint64_t lines_ = 0;
};

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

/// Logs `parts...` (stream-concatenated) if `level` is enabled.
template <typename... Parts>
void log(LogLevel level, TimePoint at, std::string_view component,
         const Parts&... parts) {
  Logger& lg = Logger::instance();
  if (!lg.enabled(level)) return;
  std::ostringstream os;
  detail::append_all(os, parts...);
  lg.write(level, at, component, os.str());
}

}  // namespace han::sim
