// han::sim — cancellable priority queue of timed events.
//
// A binary min-heap keyed on (time, sequence-number). The sequence number
// makes ordering of same-time events deterministic (FIFO), which in turn
// makes whole simulations bit-reproducible. Events can be cancelled in
// O(log n) via the EventId returned at scheduling time; the heap keeps a
// handle->slot index for that.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace han::sim {

/// Opaque handle identifying a scheduled event. Never reused within one
/// EventQueue instance.
struct EventId {
  std::uint64_t value = 0;

  [[nodiscard]] constexpr bool valid() const noexcept { return value != 0; }
  constexpr bool operator==(const EventId&) const noexcept = default;
};

/// Callback type executed when an event fires.
using EventFn = std::function<void()>;

/// Min-heap of (TimePoint, callback) with stable same-time ordering and
/// O(log n) cancellation. Not thread-safe: the simulation kernel is
/// single-threaded by design.
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `fn` to fire at absolute time `at`. Returns a handle that
  /// can be used with cancel().
  EventId schedule(TimePoint at, EventFn fn);

  /// Cancels a pending event. Returns true if the event existed and was
  /// removed; false if it already fired, was already cancelled, or the
  /// handle is invalid. Safe to call from inside event callbacks.
  bool cancel(EventId id);

  /// True if `id` is still scheduled (not yet fired or cancelled).
  [[nodiscard]] bool pending(EventId id) const {
    return slot_of_.find(id.value) != slot_of_.end();
  }

  /// True if no events are pending.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Fire time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest event. Precondition: !empty().
  struct Fired {
    TimePoint time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

  /// Removes all pending events.
  void clear();

  /// Total number of events ever scheduled (diagnostics).
  [[nodiscard]] std::uint64_t total_scheduled() const noexcept {
    return next_seq_ - 1;
  }

 private:
  struct Node {
    TimePoint time;
    std::uint64_t seq = 0;  // also the EventId value
    EventFn fn;
  };

  [[nodiscard]] static bool less(const Node& a, const Node& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void move_to(std::size_t dst, Node&& n);
  void remove_at(std::size_t i);

  std::vector<Node> heap_;
  /// seq -> heap index. Hash order never escapes: accessed only via
  /// find/erase/insert, firing order is decided by the heap alone.
  // lint:allow(unordered-container): lookup-only cancellation index, never iterated
  std::unordered_map<std::uint64_t, std::size_t> slot_of_;
  std::uint64_t next_seq_ = 1;  // 0 is the invalid EventId
};

/// Re-armable one-shot deadline over an EventQueue — the registration
/// plumbing an event-driven controller uses to declare "look at me
/// again at T". Arming replaces any still-pending schedule (a
/// controller has one next deadline, not a backlog), cancelling is
/// idempotent, and a fired event leaves the timer disarmed. The timer
/// does not own the queue; it must not outlive it.
class Timer {
 public:
  explicit Timer(EventQueue& queue) : queue_(&queue) {}

  /// Schedules `fn` at `at`, replacing any pending schedule.
  void arm(TimePoint at, EventFn fn) {
    cancel();
    id_ = queue_->schedule(at, std::move(fn));
    at_ = at;
  }

  /// Cancels the pending schedule, if any.
  void cancel() {
    if (id_.valid()) queue_->cancel(id_);
    id_ = EventId{};
  }

  /// True while the scheduled event has neither fired nor been
  /// cancelled.
  [[nodiscard]] bool armed() const { return id_.valid() && queue_->pending(id_); }

  /// Fire time of the pending schedule (meaningful only while armed()).
  [[nodiscard]] TimePoint at() const noexcept { return at_; }

 private:
  EventQueue* queue_;
  EventId id_{};
  TimePoint at_{};
};

}  // namespace han::sim
