// han::sim — single-threaded discrete-event simulator.
//
// The simulator owns the event queue and the simulated clock. Components
// schedule callbacks at absolute or relative times; run() / run_until()
// drains events in timestamp order, advancing the clock discontinuously.
// Periodic activities are expressed with schedule_every(), which
// reschedules itself and can be stopped via the returned handle.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace han::sim {

/// Discrete-event simulation kernel.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Advances only inside run()/run_until()/step().
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at`. `at` must not be in the past.
  EventId schedule_at(TimePoint at, EventFn fn);

  /// Schedules `fn` after a relative delay (>= 0).
  EventId schedule_after(Duration delay, EventFn fn);

  /// Schedules `fn` every `period` (> 0), first firing at now+period
  /// (or at `first` if given). The callback keeps firing until the
  /// returned handle is cancelled or the simulation ends.
  struct PeriodicHandle {
    /// Stops future firings. Safe to call multiple times.
    void cancel();
    [[nodiscard]] bool active() const noexcept;

   private:
    friend class Simulator;
    struct State;
    std::shared_ptr<State> state;
  };
  PeriodicHandle schedule_every(Duration period, EventFn fn);
  PeriodicHandle schedule_every(TimePoint first, Duration period, EventFn fn);

  /// Cancels a one-shot event scheduled via schedule_at/schedule_after.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty or stop() is called.
  void run();

  /// Runs until simulated time `deadline` (inclusive: events exactly at
  /// the deadline fire). On return, now() == deadline unless the run was
  /// stopped or the queue drained earlier.
  void run_until(TimePoint deadline);

  /// Executes exactly one event if one is pending; returns whether an
  /// event fired.
  bool step();

  /// Requests run()/run_until() to return after the current event.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t events_pending() const noexcept {
    return queue_.size();
  }

 private:
  void fire_one();

  EventQueue queue_;
  TimePoint now_ = TimePoint::epoch();
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace han::sim
