#include "metrics/timeseries.hpp"

namespace han::metrics {

TimeSeries TimeSeries::downsample(std::size_t factor) const {
  if (factor <= 1) return *this;
  TimeSeries out(start_, interval_ * static_cast<sim::Ticks>(factor));
  for (std::size_t i = 0; i < values_.size(); i += factor) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t j = i; j < values_.size() && j < i + factor; ++j) {
      sum += values_[j];
      ++n;
    }
    out.append(sum / static_cast<double>(n));
  }
  return out;
}

}  // namespace han::metrics
