// han::metrics — CSV export of time series and tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/timeseries.hpp"

namespace han::metrics {

/// Writes aligned series as CSV: time_min,<name0>,<name1>,...
/// All series must share start/interval; shorter ones pad with blanks.
void write_csv(std::ostream& os, const std::vector<std::string>& names,
               const std::vector<const TimeSeries*>& series);

/// Renders a fixed-width text table (benches print paper-style rows).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for bench output).
[[nodiscard]] std::string fmt(double v, int precision = 2);

}  // namespace han::metrics
