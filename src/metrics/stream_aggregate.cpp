#include "metrics/stream_aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace han::metrics {

StreamAggregate::StreamAggregate(std::size_t members)
    : contributions_(members, 0.0) {}

void StreamAggregate::enable_thermal(const ThermalParams& params) {
  if (primed_) {
    throw std::logic_error(
        "StreamAggregate: enable_thermal before the first commit");
  }
  if (params.capacity_kw <= 0.0) {
    throw std::invalid_argument(
        "StreamAggregate: thermal capacity_kw must be > 0");
  }
  if (params.tau <= sim::Duration::zero()) {
    throw std::invalid_argument("StreamAggregate: thermal tau must be > 0");
  }
  thermal_ = true;
  thermal_state_ = HotspotTracker(params);
}

void StreamAggregate::add_band(const ThresholdBand& band) {
  if (primed_) {
    throw std::logic_error("StreamAggregate: add_band before the first commit");
  }
  if (band.quantity == BandQuantity::kTemperaturePu && !thermal_) {
    throw std::logic_error(
        "StreamAggregate: temperature band needs enable_thermal first");
  }
  bands_.push_back(BandState{band, false});
}

const std::vector<Crossing>& StreamAggregate::commit(sim::TimePoint t) {
  if (primed_ && t < last_t_) {
    throw std::invalid_argument("StreamAggregate: commits must not go back");
  }
  crossings_.clear();

  // Fresh sum in member index order — bit-identical to the
  // rebuild-the-aggregate-per-barrier pattern this class replaces.
  double total = 0.0;
  for (const double kw : contributions_) total += kw;

  if (thermal_) {
    // The shared tracker uses the same interval convention as every
    // consumer: (last, t] is attributed to the sample observed at t,
    // and the priming commit carries no interval.
    const double dt_min = primed_ ? (t - last_t_).minutes_f() : 0.0;
    thermal_state_.observe(dt_min, total);
  }

  const bool was_primed = primed_;
  total_kw_ = total;
  last_t_ = t;
  primed_ = true;
  ++commits_;

  for (BandState& b : bands_) {
    const double value = b.band.quantity == BandQuantity::kLoadKw
                             ? total_kw_
                             : thermal_state_.temperature_pu();
    const bool now_high = high(b.band, value);
    if (was_primed && now_high != b.high) {
      crossings_.push_back(Crossing{
          b.band.id,
          now_high ? CrossDirection::kRising : CrossDirection::kFalling, t,
          value});
    }
    b.high = now_high;
  }
  return crossings_;
}

sim::TimePoint StreamAggregate::predict_thermal_crossing(
    double level_pu) const {
  if (!thermal_ || !primed_) return sim::TimePoint::max();
  const double dt_min = thermal_state_.minutes_to_reach(level_pu, total_kw_);
  if (!std::isfinite(dt_min)) return sim::TimePoint::max();
  return last_t_ + sim::seconds_f(dt_min * 60.0);
}

}  // namespace han::metrics
