// han::metrics — divergence accounting between two load series.
//
// The fidelity subsystem trades per-premise exactness for scale; what
// it must NOT trade silently is the feeder-level aggregate. These
// helpers quantify how far a surrogate run's series sits from the
// full-fidelity reference — the numbers the calibration harness pins
// per preset and EXPERIMENTS.md records.
#pragma once

#include "metrics/timeseries.hpp"

namespace han::metrics {

/// How far `candidate` diverges from `reference` (compared sample-wise
/// over the overlapping prefix; energies over each full series).
struct Divergence {
  /// |energy(candidate) - energy(reference)| / energy(reference).
  double energy_rel_err = 0.0;
  /// |peak(candidate) - peak(reference)| / peak(reference).
  double peak_rel_err = 0.0;
  /// Mean absolute sample error over the mean reference level
  /// (a scale-free MAPE that tolerates near-zero samples).
  double mape = 0.0;
  /// Root-mean-square sample error (kW).
  double rmse = 0.0;
  /// Samples compared.
  std::size_t samples = 0;
};

[[nodiscard]] Divergence divergence(const TimeSeries& reference,
                                    const TimeSeries& candidate);

}  // namespace han::metrics
