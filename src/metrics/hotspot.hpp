// han::metrics — first-order hotspot thermal state of a transformer
// bank, with overload accounting.
//
// What kills a distribution transformer is not one bad minute but
// sustained hotspot temperature, so the state is driven by the square
// of per-unit loading (copper loss ~ I^2): in steady state at
// utilization u the temperature settles at u^2, and excursions charge
// up / decay with the configured time constant. This is the single
// integrator behind both grid::FeederModel (the polled controller's
// view) and metrics::StreamAggregate (the event-driven monitor's view)
// — shared so the two can never drift apart bit-wise; the event-driven
// equivalence guarantees depend on that.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/time.hpp"

namespace han::metrics {

/// Thermal-model parameters.
struct ThermalParams {
  /// Nameplate rating (kW); must be > 0 to observe.
  double capacity_kw = 0.0;
  /// First-order hotspot time constant. Distribution transformers are
  /// tens of minutes to hours; 30 min keeps scenario runs responsive.
  sim::Duration tau = sim::minutes(30);
  /// Per-unit temperature above which insulation-loss minutes accrue
  /// (1.0 == the steady-state temperature at exactly rated load).
  double overload_temp_pu = 1.0;
};

/// Streaming thermal/overload state. Feed it load samples in order via
/// observe(); the caller supplies the elapsed minutes since its
/// previous sample (ignored on the priming call, which carries no
/// interval and settles the state at u^2).
class HotspotTracker {
 public:
  HotspotTracker() = default;
  explicit HotspotTracker(const ThermalParams& params) : params_(params) {}

  /// Advances the state across `dt_min` minutes under `load_kw`
  /// (attributing the whole interval to this sample, the convention
  /// every consumer shares) and records the new sample.
  void observe(double dt_min, double load_kw) {
    const double u = load_kw / params_.capacity_kw;
    if (primed_) {
      const double alpha = 1.0 - std::exp(-dt_min / params_.tau.minutes_f());
      temp_pu_ += alpha * (u * u - temp_pu_);
      if (load_kw > params_.capacity_kw) overload_minutes_ += dt_min;
      if (temp_pu_ > params_.overload_temp_pu) hot_minutes_ += dt_min;
    } else {
      // First observation primes the state at its steady-state value.
      temp_pu_ = u * u;
      primed_ = true;
    }
    peak_temp_pu_ = std::max(peak_temp_pu_, temp_pu_);
    peak_load_kw_ = std::max(peak_load_kw_, load_kw);
  }

  /// Minutes until the state reaches `level_pu` if `load_kw` holds,
  /// in either direction; +infinity when the trajectory never gets
  /// there (or the state is unprimed). The trajectory
  /// temp(dt) = ss + (temp - ss) e^(-dt/tau) reaches the level iff it
  /// lies strictly between the current state and the settling point
  /// ss = u^2.
  [[nodiscard]] double minutes_to_reach(double level_pu,
                                        double load_kw) const {
    constexpr double kNever = std::numeric_limits<double>::infinity();
    if (!primed_) return kNever;
    const double u = load_kw / params_.capacity_kw;
    const double ss = u * u;
    const double from = ss - temp_pu_;
    const double to = ss - level_pu;
    if (from == 0.0 || to == 0.0) return kNever;
    if ((from > 0.0) != (to > 0.0)) return kNever;
    const double ratio = from / to;  // > 1 exactly when the level is crossed
    if (ratio <= 1.0) return kNever;
    return params_.tau.minutes_f() * std::log(ratio);
  }

  [[nodiscard]] const ThermalParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] bool primed() const noexcept { return primed_; }
  /// Per-unit hotspot temperature (steady state: utilization^2).
  [[nodiscard]] double temperature_pu() const noexcept { return temp_pu_; }
  [[nodiscard]] double peak_temperature_pu() const noexcept {
    return peak_temp_pu_;
  }
  [[nodiscard]] double peak_load_kw() const noexcept { return peak_load_kw_; }
  /// Accounted minutes with the raw load strictly above capacity.
  [[nodiscard]] double overload_minutes() const noexcept {
    return overload_minutes_;
  }
  /// Accounted minutes with the thermal state strictly above the
  /// configured overload level.
  [[nodiscard]] double hot_minutes() const noexcept { return hot_minutes_; }

 private:
  ThermalParams params_{};
  bool primed_ = false;
  double temp_pu_ = 0.0;
  double peak_temp_pu_ = 0.0;
  double peak_load_kw_ = 0.0;
  double overload_minutes_ = 0.0;
  double hot_minutes_ = 0.0;
};

}  // namespace han::metrics
