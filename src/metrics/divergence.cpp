#include "metrics/divergence.hpp"

#include <algorithm>
#include <cmath>

namespace han::metrics {

namespace {

double series_energy(const TimeSeries& s) {
  double sum = 0.0;
  for (const double v : s.values()) sum += v;
  return sum;
}

double rel_err(double candidate, double reference) {
  if (reference == 0.0) return candidate == 0.0 ? 0.0 : 1.0;
  return std::abs(candidate - reference) / std::abs(reference);
}

}  // namespace

Divergence divergence(const TimeSeries& reference,
                      const TimeSeries& candidate) {
  Divergence d;
  d.energy_rel_err =
      rel_err(series_energy(candidate), series_energy(reference));
  d.peak_rel_err = rel_err(candidate.empty() ? 0.0 : candidate.peak(),
                           reference.empty() ? 0.0 : reference.peak());
  d.samples = std::min(reference.size(), candidate.size());
  if (d.samples == 0) return d;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double ref_sum = 0.0;
  for (std::size_t i = 0; i < d.samples; ++i) {
    const double e = candidate.at(i) - reference.at(i);
    abs_sum += std::abs(e);
    sq_sum += e * e;
    ref_sum += std::abs(reference.at(i));
  }
  const double n = static_cast<double>(d.samples);
  d.mape = ref_sum > 0.0 ? abs_sum / ref_sum : 0.0;
  d.rmse = std::sqrt(sq_sum / n);
  return d;
}

}  // namespace han::metrics
