#include "metrics/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace han::metrics {

void write_csv(std::ostream& os, const std::vector<std::string>& names,
               const std::vector<const TimeSeries*>& series) {
  os << "time_min";
  for (const std::string& n : names) os << ',' << n;
  os << '\n';
  std::size_t rows = 0;
  for (const TimeSeries* s : series) rows = std::max(rows, s->size());
  for (std::size_t i = 0; i < rows; ++i) {
    double t_min = 0.0;
    for (const TimeSeries* s : series) {
      if (i < s->size()) {
        t_min = s->time_of(i).since_epoch().minutes_f();
        break;
      }
    }
    os << fmt(t_min, 2);
    for (const TimeSeries* s : series) {
      os << ',';
      if (i < s->size()) os << fmt(s->at(i), 4);
    }
    os << '\n';
  }
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cell;
    }
    os << '\n';
  };
  print_row(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.emplace_back(width[c], '-');
  }
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace han::metrics
