// han::metrics — streaming aggregate of many member loads with
// registered threshold bands.
//
// The grid control plane used to rebuild each feeder's index-ordered
// aggregate at every lockstep barrier and hand it to the controller
// unconditionally, whether or not anything changed. StreamAggregate is
// the observation side of the event-driven control plane: it holds one
// contribution per member, commits the total at observation times, and
// reports *threshold crossings* — the moments a consumer actually needs
// to look. Bands watch either the committed load or an optional
// first-order thermal state (the same hotspot model the feeder
// transformer uses: steady state = utilization^2, configurable time
// constant), and the thermal state's smooth trajectory lets the
// aggregate predict when it will cross a level if the load holds —
// which is how a sleeping controller gets woken *at* a thermal trigger
// instead of polling for it.
//
// Determinism: commit() recomputes the total as a fresh sum in member
// index order, bit-identical to the rebuild-per-barrier pattern it
// replaces, so polled-mode outputs are preserved byte-for-byte and
// event-mode runs are reproducible at any executor width (all updates
// happen on the control thread between barriers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "metrics/hotspot.hpp"
#include "sim/time.hpp"

namespace han::metrics {

/// Direction of a threshold crossing: into the band's high state or out
/// of it.
enum class CrossDirection : std::uint8_t { kRising, kFalling };

/// Quantity a band watches.
enum class BandQuantity : std::uint8_t { kLoadKw, kTemperaturePu };

/// One registered threshold. `inclusive` picks the comparison that
/// defines the high state — `value >= level` when true, `value > level`
/// when false — so a consumer whose own predicate is "at or above"
/// vs "strictly above" sees a crossing exactly when its predicate
/// flips, including at floating-point equality.
struct ThresholdBand {
  int id = 0;
  BandQuantity quantity = BandQuantity::kLoadKw;
  double level = 0.0;
  bool inclusive = true;
};

/// One emitted crossing event.
struct Crossing {
  int band = 0;
  CrossDirection direction = CrossDirection::kRising;
  sim::TimePoint at;
  /// The watched quantity's committed value after the crossing.
  double value = 0.0;

  bool operator==(const Crossing&) const = default;
};

class StreamAggregate {
 public:
  /// Aggregates `members` contributions (all start at 0 kW).
  explicit StreamAggregate(std::size_t members);

  /// Enables thermal tracking (and load/thermal overload accounting).
  /// Must be called before the first commit.
  void enable_thermal(const ThermalParams& params);

  /// Registers a band. Must be called before the first commit; bands on
  /// kTemperaturePu require enable_thermal().
  void add_band(const ThresholdBand& band);

  [[nodiscard]] std::size_t member_count() const noexcept {
    return contributions_.size();
  }

  /// Stages member `pos`'s instantaneous contribution; takes effect at
  /// the next commit.
  void update(std::size_t pos, double kw) { contributions_.at(pos) = kw; }

  /// Re-homes the aggregate onto a different member list (tie-switch
  /// premise migration). Contributions are zeroed — the engine
  /// restages every member before each commit anyway — while bands,
  /// the thermal state and all accounting carry across: the load step
  /// the migration causes integrates from the next commit exactly
  /// like any organic step.
  void resize_members(std::size_t members) {
    contributions_.assign(members, 0.0);
  }

  /// Commits the staged contributions at time `t` (non-decreasing):
  /// recomputes the total in member index order, advances the thermal
  /// state across (last commit, t], and returns the crossings this
  /// commit produced (empty on the priming commit — band states
  /// initialize from the first total). The returned reference is valid
  /// until the next commit.
  const std::vector<Crossing>& commit(sim::TimePoint t);

  /// Committed total (0 before the first commit).
  [[nodiscard]] double total_kw() const noexcept { return total_kw_; }
  [[nodiscard]] std::size_t commits() const noexcept { return commits_; }

  // --- Thermal state / accounting (enable_thermal only) ---------------
  // The integrator is the shared HotspotTracker — the same math
  // grid::FeederModel runs, so the monitor's temperature is
  // interchangeable with a transformer model fed the same samples.
  [[nodiscard]] bool thermal_enabled() const noexcept { return thermal_; }
  [[nodiscard]] double temperature_pu() const noexcept {
    return thermal_state_.temperature_pu();
  }
  [[nodiscard]] double peak_temperature_pu() const noexcept {
    return thermal_state_.peak_temperature_pu();
  }
  [[nodiscard]] double peak_load_kw() const noexcept {
    return thermal_state_.peak_load_kw();
  }
  /// Committed minutes with the total strictly above capacity.
  [[nodiscard]] double overload_minutes() const noexcept {
    return thermal_state_.overload_minutes();
  }
  /// Committed minutes with the thermal state strictly above the
  /// configured overload level.
  [[nodiscard]] double hot_minutes() const noexcept {
    return thermal_state_.hot_minutes();
  }

  /// Predicted time the thermal state crosses `level_pu` if the
  /// committed load holds, in either direction; TimePoint::max() when
  /// the trajectory never reaches it (or thermal is unprimed). The
  /// event-driven engine schedules a barrier there so a thermal trigger
  /// wakes the controller on time instead of being discovered late.
  [[nodiscard]] sim::TimePoint predict_thermal_crossing(
      double level_pu) const;

 private:
  struct BandState {
    ThresholdBand band;
    bool high = false;
  };

  [[nodiscard]] bool high(const ThresholdBand& band,
                          double value) const noexcept {
    return band.inclusive ? value >= band.level : value > band.level;
  }

  std::vector<double> contributions_;
  std::vector<BandState> bands_;
  std::vector<Crossing> crossings_;

  bool thermal_ = false;
  HotspotTracker thermal_state_;

  bool primed_ = false;
  sim::TimePoint last_t_;
  double total_kw_ = 0.0;
  std::size_t commits_ = 0;
};

}  // namespace han::metrics
