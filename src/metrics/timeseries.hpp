// han::metrics — uniformly sampled time series.
#pragma once

#include <vector>

#include "metrics/stats.hpp"
#include "sim/time.hpp"

namespace han::metrics {

/// Values sampled every `interval` starting at `start`.
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(sim::TimePoint start, sim::Duration interval)
      : start_(start), interval_(interval) {}

  void append(double v) { values_.push_back(v); }

  [[nodiscard]] sim::TimePoint start() const noexcept { return start_; }
  [[nodiscard]] sim::Duration interval() const noexcept { return interval_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] double at(std::size_t i) const { return values_.at(i); }
  [[nodiscard]] sim::TimePoint time_of(std::size_t i) const {
    return start_ + interval_ * static_cast<sim::Ticks>(i);
  }

  [[nodiscard]] RunningStats stats() const {
    RunningStats s;
    for (double v : values_) s.add(v);
    return s;
  }
  [[nodiscard]] double peak() const { return stats().max(); }
  [[nodiscard]] double mean() const { return stats().mean(); }
  [[nodiscard]] double stddev() const { return stats().stddev(); }
  /// Largest jump between consecutive samples.
  [[nodiscard]] double max_step() const {
    return metrics::max_step(values_);
  }

  /// Down-samples by averaging `factor` consecutive samples (the tail
  /// partial bucket is averaged over its actual size).
  [[nodiscard]] TimeSeries downsample(std::size_t factor) const;

 private:
  sim::TimePoint start_;
  sim::Duration interval_ = sim::seconds(1);
  std::vector<double> values_;
};

}  // namespace han::metrics
