// han::metrics — streaming and batch statistics.
#pragma once

#include <cstdint>
#include <vector>

namespace han::metrics {

/// Welford online accumulator: numerically stable mean/variance plus
/// min/max, O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (the paper reports load deviation over the full
  /// trace, not a sample estimate).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel Welford).
  void merge(const RunningStats& other) noexcept;

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a copy of `values` (linear interpolation, p in [0,100]).
/// Returns 0 for empty input.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Largest absolute difference between consecutive values ("max step");
/// the paper's "sudden changes in the overall system".
[[nodiscard]] double max_step(const std::vector<double>& values) noexcept;

}  // namespace han::metrics
