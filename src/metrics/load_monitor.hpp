// han::metrics — periodic sampling of the total system load.
#pragma once

#include <functional>

#include "metrics/timeseries.hpp"
#include "sim/simulator.hpp"

namespace han::metrics {

/// Samples a caller-provided load function on a fixed interval into a
/// TimeSeries (paper figures use 1-minute sampling over 350 minutes).
class LoadMonitor {
 public:
  using LoadFn = std::function<double()>;

  LoadMonitor(sim::Simulator& sim, LoadFn load_fn,
              sim::Duration interval = sim::minutes(1))
      : sim_(sim), load_fn_(std::move(load_fn)), interval_(interval) {}

  /// Starts sampling; the first sample is taken at `first`.
  void start(sim::TimePoint first) {
    series_ = TimeSeries(first, interval_);
    sim_.schedule_at(first, [this]() { sample(); });
    handle_ = sim_.schedule_every(first + interval_, interval_,
                                  [this]() { sample(); });
  }

  void stop() { handle_.cancel(); }

  [[nodiscard]] const TimeSeries& series() const noexcept { return series_; }

 private:
  void sample() { series_.append(load_fn_()); }

  sim::Simulator& sim_;
  LoadFn load_fn_;
  sim::Duration interval_;
  TimeSeries series_;
  sim::Simulator::PeriodicHandle handle_;
};

}  // namespace han::metrics
