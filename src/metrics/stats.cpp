#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

namespace han::metrics {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double max_step(const std::vector<double>& values) noexcept {
  double best = 0.0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    best = std::max(best, std::abs(values[i] - values[i - 1]));
  }
  return best;
}

}  // namespace han::metrics
