// han::telemetry — tiny argv helper for valued command-line flags.
//
// The examples and bench binaries all peel their own flags off argv
// before handing the rest to positional parsing (or to
// benchmark::Initialize, which rejects flags it does not know). This
// helper centralizes the one pattern they share — `--flag value` and
// `--flag=value` — and, unlike the ad-hoc loops it replaces, makes a
// dangling `--flag` with no value an explicit error instead of
// silently leaving the flag behind.
#pragma once

#include <cstring>
#include <string>
#include <string_view>

namespace han::telemetry {

/// Result of peeling one valued flag out of argv.
struct FlagParse {
  std::string value;     ///< The flag's value ("" when absent/error).
  bool present = false;  ///< The flag appeared (possibly malformed).
  bool error = false;    ///< Dangling `--flag` (no value) or `--flag=`.
};

/// Removes every occurrence of `--<name> value` / `--<name>=value` from
/// argv (compacting it in place and shrinking argc) and returns the
/// LAST occurrence's value. A trailing `--<name>` with no value, or an
/// empty `--<name>=`, is removed too but flags the parse as an error —
/// callers should reject the command line rather than guess.
inline FlagParse take_value_flag(int& argc, char** argv,
                                 std::string_view name) {
  FlagParse out;
  const std::string eq_form = std::string(name) + "=";
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (name == argv[r]) {
      out.present = true;
      if (r + 1 < argc) {
        out.value = argv[++r];
        out.error = out.value.empty();
      } else {
        out.error = true;  // dangling flag: nothing left to consume
      }
    } else if (std::strncmp(argv[r], eq_form.c_str(), eq_form.size()) == 0) {
      out.present = true;
      out.value = argv[r] + eq_form.size();
      out.error = out.value.empty();
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return out;
}

}  // namespace han::telemetry
