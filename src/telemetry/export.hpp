// han::telemetry — serialization of a Collector: the versioned run
// manifest and the Chrome trace-event timeline.
//
// Manifest layout (schema kManifestVersion; field order is fixed so
// deterministic sections diff byte-for-byte):
//
//   {
//     "telemetry_version": 1,
//     "run":      { ... metadata: preset, seed, threads, git, ... },
//     "counters": { ... DETERMINISTIC simulation counters ... },
//     "phases":        { "<phase>": {"calls","total_ms","max_ms"}, ... },
//     "nested_phases": { ... phases overlapping the ones above ... },
//     "executor": { "parallel_for_calls", "tasks", "steals" }
//   }
//
// "counters" (and everything in it) is byte-identical across executor
// widths and is the section the CI perf gate (ci/check_bench.py
// --manifest) pins; "run" carries width/host facts, and "phases"/
// "executor" are wall-clock/scheduling measurements — advisory only.
//
// The trace exporter renders the Collector's sim::TraceRecorder
// samples as a Chrome trace-event file loadable in chrome://tracing or
// https://ui.perfetto.dev: "phase/<name>" series become duration ("X")
// events on the wall-clock process lane, every other series becomes
// instant ("i") events on the simulated-time process lane (series
// named "<cat>/<name>/f<K>" land on thread lane K). Events are emitted
// strictly ordered by timestamp.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/telemetry.hpp"

namespace han::telemetry {

/// Writes the run manifest JSON. Returns the stream.
std::ostream& write_manifest(const Collector& collector, std::ostream& out);

/// The manifest's "counters" object alone (the deterministic section),
/// exactly as write_manifest renders it — what determinism tests and
/// the CI gate compare.
[[nodiscard]] std::string counters_json(const Collector& collector);

/// Writes the Chrome trace-event file. Returns the stream.
std::ostream& write_chrome_trace(const Collector& collector,
                                 std::ostream& out);

/// Minimal JSON well-formedness check (objects, arrays, strings,
/// numbers, booleans, null; rejects trailing garbage). Exists so tests
/// can validate manifests and traces without an external parser.
[[nodiscard]] bool json_is_valid(std::string_view text) noexcept;

}  // namespace han::telemetry
