#include "telemetry/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace han::telemetry {

namespace {

/// JSON string escaping (quotes, backslashes, control characters —
/// ample for the identifier-shaped keys telemetry uses).
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void write_counters_object(const Collector& c, std::ostream& out,
                           std::string_view indent) {
  const auto& counters = c.counters();
  out << "{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << indent << "  \""
        << escape(counters[i].first) << "\": " << counters[i].second;
  }
  if (!counters.empty()) out << "\n" << indent;
  out << "}";
}

void write_phase_group(const Collector& c, std::ostream& out, bool exclusive) {
  bool first = true;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    if (p == Phase::kRunTotal) continue;
    if (phase_is_exclusive(p) != exclusive) continue;
    const PhaseStats s = c.phase(p);
    if (s.calls == 0) continue;
    out << (first ? "\n" : ",\n") << "    \"" << phase_name(p)
        << "\": {\"calls\": " << s.calls
        << ", \"total_ms\": " << num(static_cast<double>(s.total_ns) / 1e6)
        << ", \"max_ms\": " << num(static_cast<double>(s.max_ns) / 1e6)
        << "}";
    first = false;
  }
  if (!first) out << "\n  ";
}

}  // namespace

std::string counters_json(const Collector& collector) {
  std::ostringstream out;
  write_counters_object(collector, out, "  ");
  return out.str();
}

std::ostream& write_manifest(const Collector& collector, std::ostream& out) {
  out << "{\n  \"telemetry_version\": " << kManifestVersion << ",\n";

  out << "  \"run\": {";
  const auto& meta = collector.meta();
  for (std::size_t i = 0; i < meta.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << escape(meta[i].first)
        << "\": ";
    if (collector.meta_is_numeric(meta[i].first)) {
      out << meta[i].second;
    } else {
      out << "\"" << escape(meta[i].second) << "\"";
    }
  }
  if (!meta.empty()) out << "\n  ";
  out << "},\n";

  out << "  \"counters\": ";
  write_counters_object(collector, out, "  ");
  out << ",\n";

  out << "  \"phases\": {";
  write_phase_group(collector, out, /*exclusive=*/true);
  out << "},\n";
  out << "  \"nested_phases\": {";
  write_phase_group(collector, out, /*exclusive=*/false);
  out << "},\n";

  const PhaseStats total = collector.phase(Phase::kRunTotal);
  out << "  \"run_total\": {\"calls\": " << total.calls << ", \"total_ms\": "
      << num(static_cast<double>(total.total_ns) / 1e6) << "},\n";

  const ExecutorActivity act = collector.executor_activity();
  out << "  \"executor\": {\"parallel_for_calls\": " << act.parallel_for_calls
      << ", \"tasks\": " << act.tasks << ", \"steals\": " << act.steals
      << "}\n";
  out << "}\n";
  return out;
}

std::ostream& write_chrome_trace(const Collector& collector,
                                 std::ostream& out) {
  struct Event {
    sim::Ticks ts = 0;
    std::size_t seq = 0;  // tie-break: deterministic series order
    std::string json;
  };
  std::vector<Event> events;

  // series_names() is lexicographically sorted (TraceRecorder stores
  // series in an ordered map), so the per-series seq tie-break below is
  // deterministic without re-sorting here.
  const std::vector<std::string> names = collector.trace().series_names();
  std::size_t seq = 0;
  for (const std::string& name : names) {
    // "<cat>/<event>/f<K>" → category, event name, thread lane K;
    // "phase/<name>" → wall-lane duration event.
    const std::size_t slash = name.find('/');
    const std::string cat = name.substr(0, slash);
    std::string rest =
        slash == std::string::npos ? name : name.substr(slash + 1);
    long tid = 0;
    const std::size_t lane = rest.rfind("/f");
    if (lane != std::string::npos) {
      char* end = nullptr;
      const long parsed = std::strtol(rest.c_str() + lane + 2, &end, 10);
      if (end != nullptr && *end == '\0') {
        tid = parsed;
        rest.resize(lane);
      }
    }
    const bool is_phase = cat == "phase";
    for (const sim::TraceSample& s : collector.trace().series(name)) {
      Event ev;
      ev.ts = s.time.us();
      ev.seq = seq++;
      std::ostringstream j;
      if (is_phase) {
        j << "{\"name\": \"" << escape(rest) << "\", \"cat\": \"phase\", "
          << "\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": " << ev.ts
          << ", \"dur\": " << num(s.value) << "}";
      } else {
        j << "{\"name\": \"" << escape(rest) << "\", \"cat\": \""
          << escape(cat) << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, "
          << "\"tid\": " << tid << ", \"ts\": " << ev.ts
          << ", \"args\": {\"value\": " << num(s.value) << "}}";
      }
      ev.json = j.str();
      events.push_back(std::move(ev));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.seq < b.seq;
                   });

  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  // Process-name metadata first (no timestamps of their own).
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
         "\"args\": {\"name\": \"engine wall clock (us)\"}},\n";
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"simulated time (us, lanes = feeders)\"}}";
  for (const Event& ev : events) {
    out << ",\n" << ev.json;
  }
  out << "\n]}\n";
  return out;
}

namespace {

/// Minimal recursive-descent JSON checker.
struct JsonChecker {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        const char e = text[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return false;
            }
            ++pos;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos;
    if (eat('-')) {
    }
    if (!eat('0')) {
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return false;
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (eat('.')) {
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return false;
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return false;
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    return pos > start;
  }
  bool value() {
    if (++depth > 256) return false;
    skip_ws();
    bool ok = false;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      ++pos;
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          if (!string()) break;
          skip_ws();
          if (!eat(':')) break;
          if (!value()) break;
          skip_ws();
          if (eat('}')) {
            ok = true;
            break;
          }
          if (!eat(',')) break;
        }
      }
    } else if (text[pos] == '[') {
      ++pos;
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        for (;;) {
          if (!value()) break;
          skip_ws();
          if (eat(']')) {
            ok = true;
            break;
          }
          if (!eat(',')) break;
        }
      }
    } else if (text[pos] == '"') {
      ok = string();
    } else if (text[pos] == 't') {
      ok = literal("true");
    } else if (text[pos] == 'f') {
      ok = literal("false");
    } else if (text[pos] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_is_valid(std::string_view text) noexcept {
  JsonChecker checker{text};
  if (!checker.value()) return false;
  checker.skip_ws();
  return checker.pos == text.size();
}

}  // namespace han::telemetry
