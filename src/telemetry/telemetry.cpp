#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace han::telemetry {

namespace {

constexpr std::string_view kPhaseNames[] = {
    "boot",
    "barrier_advance",
    "barrier_account",
    "barrier_apply",
    "barrier_commit",
    "barrier_observe",
    "barrier_plan",
    "barrier_join_wait",
    "collect",
    "aggregate",
    "boot_spec",
    "boot_backend",
    "executor_dispatch",
    "tier_full_advance",
    "tier_device_advance",
    "tier_stat_advance",
    "transfer_planning",
    "run_total",
};
static_assert(sizeof(kPhaseNames) / sizeof(kPhaseNames[0]) ==
              static_cast<std::size_t>(Phase::kCount));

}  // namespace

std::string_view phase_name(Phase p) noexcept {
  return kPhaseNames[static_cast<std::size_t>(p)];
}

bool phase_is_exclusive(Phase p) noexcept {
  return p <= Phase::kAggregate;
}

std::uint64_t Collector::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Collector::record_span(Phase p, std::uint64_t ns) noexcept {
  AtomicPhase& ph = phases_[static_cast<std::size_t>(p)];
  ph.calls.fetch_add(1, std::memory_order_relaxed);
  ph.total_ns.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t prev = ph.max_ns.load(std::memory_order_relaxed);
  while (prev < ns && !ph.max_ns.compare_exchange_weak(
                          prev, ns, std::memory_order_relaxed)) {
  }
}

PhaseStats Collector::phase(Phase p) const noexcept {
  const AtomicPhase& ph = phases_[static_cast<std::size_t>(p)];
  PhaseStats out;
  out.calls = ph.calls.load(std::memory_order_relaxed);
  out.total_ns = ph.total_ns.load(std::memory_order_relaxed);
  out.max_ns = ph.max_ns.load(std::memory_order_relaxed);
  return out;
}

void Collector::count(std::string_view name, std::uint64_t delta) {
  for (auto& [key, value] : counters_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  counters_.emplace_back(std::string(name), delta);
}

void Collector::set_counter(std::string_view name, std::uint64_t value) {
  for (auto& [key, existing] : counters_) {
    if (key == name) {
      existing = value;
      return;
    }
  }
  counters_.emplace_back(std::string(name), value);
}

std::uint64_t Collector::counter(std::string_view name) const noexcept {
  for (const auto& [key, value] : counters_) {
    if (key == name) return value;
  }
  return 0;
}

void Collector::set_meta(std::string_view key, std::string_view value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  meta_.emplace_back(std::string(key), std::string(value));
}

void Collector::set_meta_num(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  set_meta(key, buf);
  if (std::find(numeric_meta_keys_.begin(), numeric_meta_keys_.end(), key) ==
      numeric_meta_keys_.end()) {
    numeric_meta_keys_.emplace_back(key);
  }
}

bool Collector::meta_is_numeric(std::string_view key) const noexcept {
  return std::find(numeric_meta_keys_.begin(), numeric_meta_keys_.end(),
                   key) != numeric_meta_keys_.end();
}

ExecutorActivity Collector::executor_activity() const noexcept {
  ExecutorActivity out;
  out.parallel_for_calls = activity_calls_.load(std::memory_order_relaxed);
  out.tasks = activity_tasks_.load(std::memory_order_relaxed);
  out.steals = activity_steals_.load(std::memory_order_relaxed);
  return out;
}

void Collector::enable_tracing() {
  tracing_ = true;
  if (trace_epoch_ns_ == 0) trace_epoch_ns_ = now_ns();
}

void Collector::trace_phase(Phase p, std::uint64_t start_ns,
                            std::uint64_t dur_ns) {
  if (!tracing_) return;
  const std::uint64_t offset_ns =
      start_ns >= trace_epoch_ns_ ? start_ns - trace_epoch_ns_ : 0;
  std::string series("phase/");
  series += phase_name(p);
  trace_.record(series,
                sim::TimePoint{static_cast<sim::Ticks>(offset_ns / 1000)},
                static_cast<double>(dur_ns) / 1000.0);
}

void Collector::trace_instant(std::string_view name, sim::TimePoint at,
                              double value) {
  if (!tracing_) return;
  trace_.record(name, at, value);
}

std::string_view git_describe() noexcept {
#ifdef HAN_GIT_DESCRIBE
  return HAN_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace han::telemetry
