// han::telemetry — run-level observability for the fleet engine.
//
// Three pillars, all opt-in and all off by default:
//
//   * Phase profiling — RAII Spans around the engine's wall-clock
//     phases (boot, each barrier sub-phase, collect/aggregate, executor
//     dispatch, per-fidelity-tier advance), aggregated into per-phase
//     totals/call counts/max latency. The disabled path is a null
//     Collector pointer: constructing a Span then costs one branch and
//     never reads a clock (measured in bench_micro).
//   * Structured counters + run metadata — an insertion-ordered
//     Registry of named monotonic counters (barriers, wakes, signals,
//     transfers, …) plus run metadata, serialized to a versioned JSON
//     manifest (see export.hpp). Counters are DETERMINISTIC: they are
//     only ever written from the engine's control plane (the submitter
//     thread) and count simulation facts, so the counters section is
//     byte-identical across executor widths. Wall-clock numbers live
//     in separate sections that the CI perf gate treats as advisory.
//   * Trace export — spans and simulation events recorded into the
//     existing sim::TraceRecorder plumbing and rendered as a Chrome
//     trace-event file (chrome://tracing / Perfetto) by export.hpp.
//
// Threading contract: record_span() and the executor-activity hooks
// are thread-safe (relaxed atomics; profiling data is inherently
// non-deterministic anyway). Counters, metadata and trace recording
// must only be touched from one thread at a time — the engine calls
// them from the control plane between parallel sections.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace han::telemetry {

/// Manifest schema version (bumped on any breaking field change).
inline constexpr int kManifestVersion = 1;

/// The engine's instrumented wall-clock phases. "Exclusive" phases
/// partition the run's wall clock (they never nest in each other), so
/// their totals should sum to ~the end-to-end runtime; "nested" phases
/// overlap an exclusive one (per-tier advance time runs inside
/// barrier_advance, executor dispatch inside whatever submitted it)
/// and are reported separately so the partition stays meaningful.
enum class Phase : std::uint8_t {
  // --- exclusive (disjoint slices of the run) -------------------------
  kBoot,            // spec/trace construction + backend creation
  kBarrierAdvance,  // premises advancing to the barrier
  kBarrierAccount,  // transfer energy accounting
  kBarrierApply,    // tie-switch actuations + re-homing
  kBarrierCommit,   // staging + committing the feeder aggregates
  kBarrierObserve,  // controller observation + signal fan-out
  kBarrierPlan,     // transfer planning from the committed aggregates
  kBarrierJoinWait,  // control plane blocked on a shard's join node
  kCollect,         // premise result collection (finish())
  kAggregate,       // sequential feeder aggregation
  // --- nested (overlap the exclusive phases) --------------------------
  kBootSpec,        // per-premise spec/trace construction (inside kBoot)
  kBootBackend,     // per-premise backend creation (inside kBoot)
  kExecutorDispatch,  // parallel_for submit-to-retire (inside callers)
  kTierFullAdvance,   // per-tier advance_to time (inside kBarrierAdvance)
  kTierDeviceAdvance,
  kTierStatAdvance,
  kTransferPlanning,  // Substation::plan_transfers (inside kBarrierPlan)
  // --- the whole run (reference for the partition check) --------------
  kRunTotal,
  kCount,
};

[[nodiscard]] std::string_view phase_name(Phase p) noexcept;

/// True for phases that partition the run wall clock (see Phase).
[[nodiscard]] bool phase_is_exclusive(Phase p) noexcept;

/// Aggregated profile of one phase.
struct PhaseStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Executor activity counters (non-deterministic: scheduling facts).
struct ExecutorActivity {
  std::uint64_t parallel_for_calls = 0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
};

/// One run's telemetry sink. Create one per instrumented run, thread a
/// pointer to it through the engine, and serialize it afterwards with
/// export.hpp. A null Collector pointer everywhere is the disabled
/// mode and costs one branch per would-be span.
class Collector {
 public:
  Collector() = default;
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Monotonic wall clock in nanoseconds (std::chrono::steady_clock).
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  // --- phase profiling (thread-safe) ----------------------------------
  void record_span(Phase p, std::uint64_t ns) noexcept;
  [[nodiscard]] PhaseStats phase(Phase p) const noexcept;

  // --- counters (control-plane thread only; deterministic) ------------
  /// Adds `delta` to counter `name`, creating it at 0 first. Counters
  /// iterate in first-touch order, so serialization is deterministic.
  void count(std::string_view name, std::uint64_t delta = 1);
  /// Sets counter `name` (last write wins; creates in order as count).
  void set_counter(std::string_view name, std::uint64_t value);
  /// Current value (0 when the counter was never touched).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
  counters() const noexcept {
    return counters_;
  }

  // --- run metadata (control-plane thread only) -----------------------
  /// String metadata (JSON-quoted in the manifest), insertion order.
  void set_meta(std::string_view key, std::string_view value);
  /// Numeric metadata (unquoted in the manifest), insertion order.
  void set_meta_num(std::string_view key, double value);
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  meta() const noexcept {
    return meta_;
  }
  /// True when `key`'s stored value should be written unquoted.
  [[nodiscard]] bool meta_is_numeric(std::string_view key) const noexcept;

  // --- executor activity (thread-safe; non-deterministic) -------------
  void count_parallel_for() noexcept {
    activity_calls_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_executor_activity(std::uint64_t tasks,
                             std::uint64_t steals) noexcept {
    activity_tasks_.fetch_add(tasks, std::memory_order_relaxed);
    activity_steals_.fetch_add(steals, std::memory_order_relaxed);
  }
  [[nodiscard]] ExecutorActivity executor_activity() const noexcept;

  // --- trace recording (control-plane thread only; opt-in) ------------
  /// Arms trace-event recording; spans and instants are dropped until
  /// this is called (aggregate profiling always runs).
  void enable_tracing();
  [[nodiscard]] bool tracing() const noexcept { return tracing_; }
  /// Marks "now" as the wall origin of the trace timeline (call at run
  /// start; enable_tracing() also sets it if unset).
  void set_trace_epoch_ns(std::uint64_t ns) noexcept { trace_epoch_ns_ = ns; }
  [[nodiscard]] std::uint64_t trace_epoch_ns() const noexcept {
    return trace_epoch_ns_;
  }
  /// Records a completed span on the wall-clock lane (no-op unless
  /// tracing). Series name "phase/<name>"; sample time = start offset
  /// in us since the trace epoch; value = duration in us.
  void trace_phase(Phase p, std::uint64_t start_ns, std::uint64_t dur_ns);
  /// Records an instant event on the simulated-time lane (no-op unless
  /// tracing), e.g. "sim/crossing/f0" at the crossing's sim time.
  void trace_instant(std::string_view name, sim::TimePoint at, double value);
  /// The raw recorded samples (export.hpp renders these).
  [[nodiscard]] const sim::TraceRecorder& trace() const noexcept {
    return trace_;
  }

 private:
  struct AtomicPhase {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
  };

  AtomicPhase phases_[static_cast<std::size_t>(Phase::kCount)];
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::string> numeric_meta_keys_;
  std::atomic<std::uint64_t> activity_calls_{0};
  std::atomic<std::uint64_t> activity_tasks_{0};
  std::atomic<std::uint64_t> activity_steals_{0};
  bool tracing_ = false;
  std::uint64_t trace_epoch_ns_ = 0;
  sim::TraceRecorder trace_;
};

/// RAII span: times the enclosing scope into collector->phase(p). With
/// a null collector the constructor stores two words and never touches
/// a clock — the disabled fast path the engine leaves in place
/// permanently. kTrace additionally records the span as a trace event
/// (caller must be the control-plane thread; aggregate-only spans may
/// run on any thread).
class Span {
 public:
  enum class Emit : std::uint8_t { kAggregate, kTrace };

  explicit Span(Collector* collector, Phase p,
                Emit emit = Emit::kAggregate) noexcept
      : collector_(collector), phase_(p), emit_(emit) {
    if (collector_ != nullptr) start_ns_ = Collector::now_ns();
  }
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early (idempotent; the destructor then no-ops).
  void finish() noexcept {
    if (collector_ == nullptr) return;
    const std::uint64_t dur = Collector::now_ns() - start_ns_;
    collector_->record_span(phase_, dur);
    if (emit_ == Emit::kTrace && collector_->tracing()) {
      collector_->trace_phase(phase_, start_ns_, dur);
    }
    collector_ = nullptr;
  }

 private:
  Collector* collector_;
  Phase phase_;
  Emit emit_;
  std::uint64_t start_ns_ = 0;
};

/// `git describe` of the built tree (CMake configure-time capture;
/// "unknown" when built outside a git checkout).
[[nodiscard]] std::string_view git_describe() noexcept;

}  // namespace han::telemetry
