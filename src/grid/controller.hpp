// han::grid — the demand-response head end.
//
// Watches the aggregate feeder load and emits typed GridSignals:
//
//   * DR_SHED when the transformer is persistently over its trigger
//     (raw utilization or accumulated thermal stress) — carries the
//     target kW to get back under, a duty-cycle period stretch sized
//     to the deficit, and a lifetime after which premises auto-expire;
//   * ALL_CLEAR when the load has stayed safely below the clear
//     threshold long enough (or the shed expired cold);
//   * TARIFF_CHANGE at time-of-use window boundaries.
//
// The state machine is hold-time based (idle -> arming -> shedding ->
// cooldown) so one noisy sample can neither fire nor cancel a shed.
// Everything is a pure function of the observed series, which is what
// keeps closed-loop fleet runs byte-identical at any thread count.
//
// Two front ends drive the same decision core:
//
//   * observe(t, load) — the polled interface: one call per control
//     interval, thermal state integrated by the controller's own
//     FeederModel. This is the PR 2/3 code path, byte-for-byte.
//   * on_crossing / on_timer — the event-driven interface: the
//     controller is woken only when a registered threshold band
//     crosses (register_bands installs them on the feeder's
//     StreamAggregate) or when a deadline it declared via
//     next_deadline() comes due (shed expiry, clear hold, cooldown
//     end, trigger hold, tariff boundary). Observations carry the
//     monitor's thermal state, which integrates every barrier rather
//     than only controller wakes.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/feeder.hpp"
#include "grid/signal.hpp"
#include "metrics/stream_aggregate.hpp"

namespace han::grid {

/// One time-of-use tariff window, on a 24 h ring anchored at the epoch.
/// day_start > day_end wraps midnight (22:00-02:00). Time of day
/// outside every window is TariffTier::kStandard.
struct TariffWindow {
  sim::Duration day_start = sim::hours(17);
  sim::Duration day_end = sim::hours(21);
  TariffTier tier = TariffTier::kPeak;
};

/// Controller tuning.
struct DrConfig {
  /// Master switch for shed emission (tariff signals are independent).
  bool shed_enabled = true;
  /// Shed triggers: raw load at/above this fraction of capacity...
  double trigger_utilization = 1.0;
  /// ...or accumulated thermal stress at/above this per-unit temp.
  double trigger_temp_pu = 1.05;
  /// Either trigger must hold this long before the shed fires.
  sim::Duration trigger_hold = sim::minutes(3);
  /// Shed target: get the load back under this fraction of capacity.
  double target_utilization = 0.9;
  /// Lifetime stamped on each DR_SHED; premises auto-expire after it.
  sim::Duration shed_duration = sim::minutes(45);
  /// Cap on the duty-cycle period stretch a shed may request.
  sim::Ticks max_stretch = 4;
  /// All-clear: load below this fraction of capacity...
  double clear_utilization = 0.85;
  /// ...sustained this long ends the shed early.
  sim::Duration clear_hold = sim::minutes(10);
  /// No new shed fires for this long after the previous one ended.
  sim::Duration cooldown = sim::minutes(15);
  /// Time-of-use schedule (empty = flat tariff, no tariff signals).
  std::vector<TariffWindow> tariff_windows;
};

/// Controller-side outcome counters (grid metrics).
struct DrStats {
  std::uint64_t shed_signals = 0;
  std::uint64_t all_clear_signals = 0;
  std::uint64_t tariff_signals = 0;
  /// Simulated minutes with a shed in force.
  double shed_active_minutes = 0.0;
  /// Integral of max(0, load - target) over shed-active time: demand
  /// the sheds asked for but never got (kW-minutes).
  double unserved_shed_kw_minutes = 0.0;
  /// Sum over sheds of the time from emission until the load first
  /// reached target (sheds that never got there count their full span).
  double total_shed_latency_minutes = 0.0;
  std::uint64_t sheds_reaching_target = 0;

  /// Mean shortfall while shedding, kW (0 when no shed ran).
  [[nodiscard]] double mean_unserved_shed_kw() const noexcept {
    return shed_active_minutes > 0.0
               ? unserved_shed_kw_minutes / shed_active_minutes
               : 0.0;
  }
  /// Mean emission-to-target latency per shed, minutes.
  [[nodiscard]] double mean_shed_latency_minutes() const noexcept {
    return shed_signals > 0
               ? total_shed_latency_minutes /
                     static_cast<double>(shed_signals)
               : 0.0;
  }
};

/// One observation of the feeder aggregate handed to the decision core.
/// temp_pu is the hotspot thermal state at `t`: the controller's own
/// FeederModel under the polled front end, the streaming monitor's
/// tracker under the event-driven one.
struct Observation {
  sim::TimePoint t;
  double load_kw = 0.0;
  double temp_pu = 0.0;
};

/// Band ids register_bands() installs on a feeder's StreamAggregate.
enum DrBandId : int {
  /// Load at/above the shed trigger level.
  kDrBandTrigger = 0,
  /// Load strictly above the all-clear level (falling = relief starts).
  kDrBandClear = 1,
  /// Load strictly above the shed target (falling = target reached).
  kDrBandTarget = 2,
  /// Thermal state at/above the thermal trigger.
  kDrBandThermal = 3,
};

class DemandResponseController {
 public:
  DemandResponseController(FeederConfig feeder, DrConfig config);

  /// Polled front end: feeds one aggregate load sample at simulated
  /// time `t` (samples must be in non-decreasing time order). Returns
  /// the signals emitted at this instant — usually none.
  [[nodiscard]] std::vector<GridSignal> observe(sim::TimePoint t,
                                                double load_kw);

  /// Event-driven front end: called when a registered band crossed at
  /// the observation barrier. Same decision core as observe(), but the
  /// thermal state comes from the observation (the monitor's tracker).
  [[nodiscard]] std::vector<GridSignal> on_crossing(const Observation& obs);
  /// Event-driven front end: called when a deadline declared via
  /// next_deadline() came due.
  [[nodiscard]] std::vector<GridSignal> on_timer(const Observation& obs);

  /// When this controller next needs an observation regardless of
  /// crossings: trigger-hold end while arming, shed expiry and any
  /// running clear hold while shedding, cooldown end, and the next
  /// tariff boundary — TimePoint::max() when none is pending. A
  /// crossing wake may change the answer; re-query after every wake.
  [[nodiscard]] sim::TimePoint next_deadline() const;

  /// Next time-of-use boundary strictly after `after` under the
  /// configured schedule (TimePoint::max() with no windows).
  [[nodiscard]] sim::TimePoint next_tariff_boundary(
      sim::TimePoint after) const noexcept;

  /// The premise set this controller serves changed at `t` (tie-switch
  /// transfer, either direction): the next observed aggregate will
  /// step discontinuously for non-organic reasons. Any partial
  /// trigger-hold or all-clear hold built against the old membership
  /// is forgotten — a shed or early all-clear must re-earn its hold
  /// minutes against the post-transfer aggregate, which is how DR and
  /// the tie switches avoid fighting over the same load step. Active
  /// sheds and running cooldowns stand: those are commitments already
  /// made to the premises.
  void on_membership_change(sim::TimePoint t);

  /// Installs this controller's threshold bands (DrBandId) on the
  /// feeder's streaming aggregate: trigger/clear/target load levels
  /// plus the thermal trigger. No-op when sheds are disabled — the
  /// controller then only ever needs tariff-boundary timers. The
  /// aggregate must already have thermal tracking enabled.
  void register_bands(metrics::StreamAggregate& aggregate) const;

  [[nodiscard]] const FeederModel& feeder() const noexcept { return feeder_; }
  [[nodiscard]] const DrConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DrStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool shed_active() const noexcept {
    return phase_ == Phase::kShedding;
  }
  /// Event-driven wake counters (both zero under the polled front end).
  [[nodiscard]] std::uint64_t crossing_wakes() const noexcept {
    return crossing_wakes_;
  }
  [[nodiscard]] std::uint64_t timer_wakes() const noexcept {
    return timer_wakes_;
  }
  /// Tariff tier in force at time-of-day `t` under the configured
  /// schedule (kStandard outside every window).
  [[nodiscard]] TariffTier tier_at(sim::TimePoint t) const noexcept;

 private:
  enum class Phase : std::uint8_t { kIdle, kArming, kShedding, kCooldown };

  /// The pure decision core both front ends feed: advances the tariff
  /// tracking and the shed state machine on one observation and
  /// returns the emitted signals.
  [[nodiscard]] std::vector<GridSignal> decide(const Observation& obs);

  [[nodiscard]] GridSignal make_shed(sim::TimePoint t, double load_kw);
  void close_shed_latency(sim::TimePoint t);
  /// Forgets any accumulated all-clear hold. Every shed entry — fresh
  /// or a rollover at shed_until_ — must call this, or a clear hold
  /// started under the previous shed could all-clear the new one almost
  /// immediately.
  void reset_clear_tracking(sim::TimePoint t);
  /// Emits a shed / all-clear into `out` and advances the phase state.
  void emit_shed(sim::TimePoint t, double load_kw,
                 std::vector<GridSignal>& out);
  void emit_all_clear(sim::TimePoint t, std::vector<GridSignal>& out);

  FeederModel feeder_;
  DrConfig config_;
  DrStats stats_;
  Phase phase_ = Phase::kIdle;
  std::uint32_t next_id_ = 0;
  sim::TimePoint armed_since_;
  sim::TimePoint shed_emitted_;
  sim::TimePoint shed_until_;
  sim::TimePoint clear_since_;
  bool clear_pending_ = false;
  bool latency_open_ = false;
  sim::TimePoint cooldown_until_;
  double shed_target_kw_ = 0.0;
  bool have_last_ = false;
  sim::TimePoint last_t_;
  TariffTier last_tier_ = TariffTier::kStandard;
  std::uint64_t crossing_wakes_ = 0;
  std::uint64_t timer_wakes_ = 0;
};

}  // namespace han::grid
