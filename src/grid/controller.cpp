#include "grid/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace han::grid {

DemandResponseController::DemandResponseController(FeederConfig feeder,
                                                   DrConfig config)
    : feeder_(feeder), config_(std::move(config)) {
  if (config_.target_utilization <= 0.0) {
    throw std::invalid_argument(
        "DemandResponseController: target_utilization must be > 0");
  }
  if (config_.max_stretch < 1) {
    throw std::invalid_argument(
        "DemandResponseController: max_stretch must be >= 1");
  }
  if (config_.shed_duration <= sim::Duration::zero()) {
    throw std::invalid_argument(
        "DemandResponseController: shed_duration must be > 0");
  }
}

TariffTier DemandResponseController::tier_at(sim::TimePoint t) const noexcept {
  const sim::Duration tod = sim::phase_in_period(t, sim::hours(24));
  for (const TariffWindow& w : config_.tariff_windows) {
    // A window with day_start > day_end wraps midnight (e.g. a
    // 22:00-02:00 off-peak night).
    const bool inside = w.day_start <= w.day_end
                            ? tod >= w.day_start && tod < w.day_end
                            : tod >= w.day_start || tod < w.day_end;
    if (inside) return w.tier;
  }
  return TariffTier::kStandard;
}

GridSignal DemandResponseController::make_shed(sim::TimePoint t,
                                               double load_kw) {
  const double target = config_.target_utilization * feeder_.config().capacity_kw;
  GridSignal s;
  s.id = next_id_++;
  s.kind = SignalKind::kDrShed;
  s.at = t;
  s.target_kw = target;
  s.shed_kw = std::max(0.0, load_kw - target);
  // Stretching maxDCP by k cuts the coordinated steady load to ~1/k, so
  // the deficit ratio is the natural stretch — at least 2 (a shed that
  // changes nothing is noise), capped by config (which may legitimately
  // cap below 2, so the floor must never exceed the cap).
  const auto want = static_cast<sim::Ticks>(
      std::ceil(load_kw / std::max(target, 1e-9)));
  const sim::Ticks floor = std::min<sim::Ticks>(2, config_.max_stretch);
  s.period_stretch = std::clamp(want, floor, config_.max_stretch);
  s.duration = config_.shed_duration;
  return s;
}

void DemandResponseController::close_shed_latency(sim::TimePoint t) {
  if (!latency_open_) return;
  stats_.total_shed_latency_minutes += (t - shed_emitted_).minutes_f();
  latency_open_ = false;
}

void DemandResponseController::reset_clear_tracking(sim::TimePoint t) {
  clear_pending_ = false;
  clear_since_ = t;
}

void DemandResponseController::emit_shed(sim::TimePoint t, double load_kw,
                                         std::vector<GridSignal>& out) {
  const GridSignal s = make_shed(t, load_kw);
  shed_emitted_ = t;
  shed_until_ = t + s.duration;
  shed_target_kw_ = s.target_kw;
  latency_open_ = true;
  // Rolling into a new shed at shed_until_ reuses this path, so a
  // clear hold accumulated under the expiring shed dies here — the
  // fresh shed must earn its own clear_hold minutes before an early
  // all-clear.
  reset_clear_tracking(t);
  out.push_back(s);
  ++stats_.shed_signals;
  phase_ = Phase::kShedding;
}

void DemandResponseController::emit_all_clear(sim::TimePoint t,
                                              std::vector<GridSignal>& out) {
  GridSignal s;
  s.id = next_id_++;
  s.kind = SignalKind::kAllClear;
  s.at = t;
  out.push_back(s);
  ++stats_.all_clear_signals;
  reset_clear_tracking(t);
  phase_ = Phase::kCooldown;
  cooldown_until_ = t + config_.cooldown;
}

std::vector<GridSignal> DemandResponseController::observe(sim::TimePoint t,
                                                          double load_kw) {
  if (have_last_ && t < last_t_) {
    throw std::invalid_argument(
        "DemandResponseController: observations must not go back");
  }
  const double dt_min = have_last_ ? (t - last_t_).minutes_f() : 0.0;
  feeder_.observe(t, load_kw);

  std::vector<GridSignal> out;

  // --- Time-of-use tariff ---------------------------------------------
  if (!config_.tariff_windows.empty()) {
    const TariffTier tier = tier_at(t);
    if (tier != last_tier_) {
      GridSignal s;
      s.id = next_id_++;
      s.kind = SignalKind::kTariffChange;
      s.at = t;
      s.tier = tier;
      out.push_back(s);
      ++stats_.tariff_signals;
      last_tier_ = tier;
    }
  }

  // --- Shed state machine ---------------------------------------------
  const double cap = feeder_.config().capacity_kw;
  const bool hot = load_kw >= config_.trigger_utilization * cap ||
                   feeder_.temperature_pu() >= config_.trigger_temp_pu;

  if (config_.shed_enabled) {
    switch (phase_) {
      case Phase::kIdle:
        if (hot) {
          phase_ = Phase::kArming;
          armed_since_ = t;
        }
        break;

      case Phase::kArming:
        if (!hot) {
          phase_ = Phase::kIdle;
        } else if (t - armed_since_ >= config_.trigger_hold) {
          emit_shed(t, load_kw, out);
        }
        break;

      case Phase::kShedding: {
        stats_.shed_active_minutes += dt_min;
        stats_.unserved_shed_kw_minutes +=
            std::max(0.0, load_kw - shed_target_kw_) * dt_min;
        if (latency_open_ && load_kw <= shed_target_kw_) {
          close_shed_latency(t);
          ++stats_.sheds_reaching_target;
        }

        const bool below_clear = load_kw <= config_.clear_utilization * cap;
        if (below_clear && !clear_pending_) {
          clear_pending_ = true;
          clear_since_ = t;
        } else if (!below_clear) {
          clear_pending_ = false;
        }

        if (clear_pending_ && t - clear_since_ >= config_.clear_hold) {
          // Sustained relief: end the shed early.
          close_shed_latency(t);
          emit_all_clear(t, out);
        } else if (t >= shed_until_) {
          close_shed_latency(t);
          if (hot) {
            // Still stressed at expiry: roll straight into a new shed
            // so the premise-side stretch never lapses mid-event.
            emit_shed(t, load_kw, out);
          } else {
            emit_all_clear(t, out);
          }
        }
        break;
      }

      case Phase::kCooldown:
        if (t >= cooldown_until_) {
          phase_ = hot ? Phase::kArming : Phase::kIdle;
          if (hot) armed_since_ = t;
        }
        break;
    }
  }

  have_last_ = true;
  last_t_ = t;
  return out;
}

}  // namespace han::grid
