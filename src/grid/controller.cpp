#include "grid/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace han::grid {

DemandResponseController::DemandResponseController(FeederConfig feeder,
                                                   DrConfig config)
    : feeder_(feeder), config_(std::move(config)) {
  if (config_.target_utilization <= 0.0) {
    throw std::invalid_argument(
        "DemandResponseController: target_utilization must be > 0");
  }
  if (config_.max_stretch < 1) {
    throw std::invalid_argument(
        "DemandResponseController: max_stretch must be >= 1");
  }
  if (config_.shed_duration <= sim::Duration::zero()) {
    throw std::invalid_argument(
        "DemandResponseController: shed_duration must be > 0");
  }
}

TariffTier DemandResponseController::tier_at(sim::TimePoint t) const noexcept {
  const sim::Duration tod = sim::phase_in_period(t, sim::hours(24));
  for (const TariffWindow& w : config_.tariff_windows) {
    // A window with day_start > day_end wraps midnight (e.g. a
    // 22:00-02:00 off-peak night).
    const bool inside = w.day_start <= w.day_end
                            ? tod >= w.day_start && tod < w.day_end
                            : tod >= w.day_start || tod < w.day_end;
    if (inside) return w.tier;
  }
  return TariffTier::kStandard;
}

sim::TimePoint DemandResponseController::next_tariff_boundary(
    sim::TimePoint after) const noexcept {
  if (config_.tariff_windows.empty()) return sim::TimePoint::max();
  const sim::Duration day = sim::hours(24);
  const sim::Duration tod = sim::phase_in_period(after, day);
  sim::Duration best = sim::Duration::max();
  for (const TariffWindow& w : config_.tariff_windows) {
    for (const sim::Duration edge : {w.day_start, w.day_end}) {
      // Ring distance to the edge; a zero distance means "this edge,
      // tomorrow" (strictly after).
      sim::Duration delta = (edge - tod + day) % day;
      if (delta == sim::Duration::zero()) delta = day;
      best = std::min(best, delta);
    }
  }
  return after + best;
}

sim::TimePoint DemandResponseController::next_deadline() const {
  sim::TimePoint next =
      next_tariff_boundary(have_last_ ? last_t_ : sim::TimePoint::epoch());
  if (config_.shed_enabled) {
    switch (phase_) {
      case Phase::kIdle:
        break;
      case Phase::kArming:
        next = std::min(next, armed_since_ + config_.trigger_hold);
        break;
      case Phase::kShedding:
        next = std::min(next, shed_until_);
        if (clear_pending_) {
          next = std::min(next, clear_since_ + config_.clear_hold);
        }
        break;
      case Phase::kCooldown:
        next = std::min(next, cooldown_until_);
        break;
    }
  }
  return next;
}

void DemandResponseController::on_membership_change(sim::TimePoint t) {
  if (phase_ == Phase::kArming) phase_ = Phase::kIdle;
  if (phase_ == Phase::kShedding) reset_clear_tracking(t);
}

void DemandResponseController::register_bands(
    metrics::StreamAggregate& aggregate) const {
  if (!config_.shed_enabled) return;
  const double cap = feeder_.config().capacity_kw;
  // Inclusivity mirrors the decision core's comparisons exactly:
  // hot is load >= trigger, relief/target are load <= level.
  aggregate.add_band({kDrBandTrigger, metrics::BandQuantity::kLoadKw,
                      config_.trigger_utilization * cap,
                      /*inclusive=*/true});
  aggregate.add_band({kDrBandClear, metrics::BandQuantity::kLoadKw,
                      config_.clear_utilization * cap,
                      /*inclusive=*/false});
  aggregate.add_band({kDrBandTarget, metrics::BandQuantity::kLoadKw,
                      config_.target_utilization * cap,
                      /*inclusive=*/false});
  aggregate.add_band({kDrBandThermal, metrics::BandQuantity::kTemperaturePu,
                      config_.trigger_temp_pu, /*inclusive=*/true});
}

GridSignal DemandResponseController::make_shed(sim::TimePoint t,
                                               double load_kw) {
  const double target = config_.target_utilization * feeder_.config().capacity_kw;
  GridSignal s;
  s.id = next_id_++;
  s.kind = SignalKind::kDrShed;
  s.at = t;
  s.target_kw = target;
  s.shed_kw = std::max(0.0, load_kw - target);
  // Stretching maxDCP by k cuts the coordinated steady load to ~1/k, so
  // the deficit ratio is the natural stretch — at least 2 (a shed that
  // changes nothing is noise), capped by config (which may legitimately
  // cap below 2, so the floor must never exceed the cap).
  const auto want = static_cast<sim::Ticks>(
      std::ceil(load_kw / std::max(target, 1e-9)));
  const sim::Ticks floor = std::min<sim::Ticks>(2, config_.max_stretch);
  s.period_stretch = std::clamp(want, floor, config_.max_stretch);
  s.duration = config_.shed_duration;
  return s;
}

void DemandResponseController::close_shed_latency(sim::TimePoint t) {
  if (!latency_open_) return;
  stats_.total_shed_latency_minutes += (t - shed_emitted_).minutes_f();
  latency_open_ = false;
}

void DemandResponseController::reset_clear_tracking(sim::TimePoint t) {
  clear_pending_ = false;
  clear_since_ = t;
}

void DemandResponseController::emit_shed(sim::TimePoint t, double load_kw,
                                         std::vector<GridSignal>& out) {
  const GridSignal s = make_shed(t, load_kw);
  shed_emitted_ = t;
  shed_until_ = t + s.duration;
  shed_target_kw_ = s.target_kw;
  latency_open_ = true;
  // Rolling into a new shed at shed_until_ reuses this path, so a
  // clear hold accumulated under the expiring shed dies here — the
  // fresh shed must earn its own clear_hold minutes before an early
  // all-clear.
  reset_clear_tracking(t);
  out.push_back(s);
  ++stats_.shed_signals;
  phase_ = Phase::kShedding;
}

void DemandResponseController::emit_all_clear(sim::TimePoint t,
                                              std::vector<GridSignal>& out) {
  GridSignal s;
  s.id = next_id_++;
  s.kind = SignalKind::kAllClear;
  s.at = t;
  out.push_back(s);
  ++stats_.all_clear_signals;
  reset_clear_tracking(t);
  phase_ = Phase::kCooldown;
  cooldown_until_ = t + config_.cooldown;
}

std::vector<GridSignal> DemandResponseController::observe(sim::TimePoint t,
                                                          double load_kw) {
  if (have_last_ && t < last_t_) {
    throw std::invalid_argument(
        "DemandResponseController: observations must not go back");
  }
  feeder_.observe(t, load_kw);
  return decide(Observation{t, load_kw, feeder_.temperature_pu()});
}

std::vector<GridSignal> DemandResponseController::on_crossing(
    const Observation& obs) {
  ++crossing_wakes_;
  feeder_.observe(obs.t, obs.load_kw);
  return decide(obs);
}

std::vector<GridSignal> DemandResponseController::on_timer(
    const Observation& obs) {
  ++timer_wakes_;
  feeder_.observe(obs.t, obs.load_kw);
  return decide(obs);
}

std::vector<GridSignal> DemandResponseController::decide(
    const Observation& obs) {
  // Backwards time was already rejected by whichever front end fed us:
  // observe() checks explicitly, and on_crossing/on_timer route the
  // sample through feeder_.observe() first, which enforces the same
  // ordering against the same last-seen instant.
  const sim::TimePoint t = obs.t;
  const double load_kw = obs.load_kw;
  const double dt_min = have_last_ ? (t - last_t_).minutes_f() : 0.0;

  std::vector<GridSignal> out;

  // --- Time-of-use tariff ---------------------------------------------
  if (!config_.tariff_windows.empty()) {
    const TariffTier tier = tier_at(t);
    if (tier != last_tier_) {
      GridSignal s;
      s.id = next_id_++;
      s.kind = SignalKind::kTariffChange;
      s.at = t;
      s.tier = tier;
      out.push_back(s);
      ++stats_.tariff_signals;
      last_tier_ = tier;
    }
  }

  // --- Shed state machine ---------------------------------------------
  const double cap = feeder_.config().capacity_kw;
  const bool hot = load_kw >= config_.trigger_utilization * cap ||
                   obs.temp_pu >= config_.trigger_temp_pu;

  if (config_.shed_enabled) {
    switch (phase_) {
      case Phase::kIdle:
        if (hot) {
          phase_ = Phase::kArming;
          armed_since_ = t;
        }
        break;

      case Phase::kArming:
        if (!hot) {
          phase_ = Phase::kIdle;
        } else if (t - armed_since_ >= config_.trigger_hold) {
          emit_shed(t, load_kw, out);
        }
        break;

      case Phase::kShedding: {
        stats_.shed_active_minutes += dt_min;
        stats_.unserved_shed_kw_minutes +=
            std::max(0.0, load_kw - shed_target_kw_) * dt_min;
        if (latency_open_ && load_kw <= shed_target_kw_) {
          close_shed_latency(t);
          ++stats_.sheds_reaching_target;
        }

        const bool below_clear = load_kw <= config_.clear_utilization * cap;
        if (below_clear && !clear_pending_) {
          clear_pending_ = true;
          clear_since_ = t;
        } else if (!below_clear) {
          clear_pending_ = false;
        }

        if (clear_pending_ && t - clear_since_ >= config_.clear_hold) {
          // Sustained relief: end the shed early.
          close_shed_latency(t);
          emit_all_clear(t, out);
        } else if (t >= shed_until_) {
          close_shed_latency(t);
          if (hot) {
            // Still stressed at expiry: roll straight into a new shed
            // so the premise-side stretch never lapses mid-event.
            emit_shed(t, load_kw, out);
          } else {
            emit_all_clear(t, out);
          }
        }
        break;
      }

      case Phase::kCooldown:
        if (t >= cooldown_until_) {
          phase_ = hot ? Phase::kArming : Phase::kIdle;
          if (hot) armed_since_ = t;
        }
        break;
    }
  }

  have_last_ = true;
  last_t_ = t;
  return out;
}

}  // namespace han::grid
