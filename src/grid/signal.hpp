// han::grid — typed signals the grid sends back to premises.
//
// The fleet layer made the feeder observable; this layer makes it
// *actionable*. A GridSignal is what a utility's demand-response head
// end would broadcast over AMI: "shed down to this target for this
// long", "the evening tariff tier just started", "all clear". Premises
// receive signals through a SignalBus (per-premise latency, opt-in
// compliance) and — if they run the DR-aware coordinated scheduler —
// stretch their duty-cycle envelope while a shed is active. The
// uncoordinated baseline ignores every signal, preserving the paper's
// with/without comparison.
//
// This header is intentionally dependency-light (sim/time only) so that
// core can consume signals without pulling in the controller.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace han::grid {

enum class SignalKind : std::uint8_t {
  /// Reduce aggregate load: premises stretch maxDCP by period_stretch
  /// until `at + duration` (or an earlier all-clear).
  kDrShed,
  /// The shed ended early: restore the normal duty-cycle envelope.
  kAllClear,
  /// Time-of-use tariff tier changed. Premises respond: a tariff_defer
  /// HAN parks discretionary requests until the peak window ends, and
  /// the statistical tier applies its calibrated price elasticity.
  kTariffChange,
};

enum class TariffTier : std::uint8_t { kOffPeak, kStandard, kPeak };

[[nodiscard]] std::string_view to_string(SignalKind k) noexcept;
[[nodiscard]] std::string_view to_string(TariffTier t) noexcept;

/// One broadcast from the grid head end.
struct GridSignal {
  /// Emission sequence number (unique per controller run; feeders under
  /// one substation each number their own emissions from 0, so (feeder,
  /// id) is the substation-wide key).
  std::uint32_t id = 0;
  /// Feeder shard the emitting controller serves (0 in single-feeder
  /// deployments; stamped by the Substation). Premises drop signals
  /// from a foreign feeder — the routing guard of the sharded grid.
  std::uint32_t feeder = 0;
  SignalKind kind = SignalKind::kDrShed;
  /// Emission time at the controller.
  sim::TimePoint at;
  /// kDrShed: feeder load the controller wants to get back under (kW).
  double target_kw = 0.0;
  /// kDrShed: reduction requested at emission time (kW).
  double shed_kw = 0.0;
  /// kDrShed: maxDCP multiplier complying premises apply (>= 1;
  /// integer so stretched slot windows stay aligned with the base
  /// epoch ring).
  sim::Ticks period_stretch = 1;
  /// kDrShed: shed lifetime; premises auto-expire the stretch at
  /// `at + duration` even if the all-clear is lost.
  sim::Duration duration = sim::Duration::zero();
  /// kTariffChange: the tier now in force.
  TariffTier tier = TariffTier::kStandard;

  bool operator==(const GridSignal&) const = default;
};

}  // namespace han::grid
