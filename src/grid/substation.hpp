// han::grid — the substation above a sharded fleet of feeders.
//
// One feeder caps how many premises a single control loop can serve; a
// real distribution network hangs K feeders off a substation bank and
// controls each independently. The Substation owns K shards — each a
// (FeederModel, DemandResponseController, SignalBus) triple serving a
// disjoint premise list — plus its own transformer-bank model watching
// the summed load, which is where inter-feeder effects (coincident
// substation peak vs the sum of per-feeder peaks) become observable.
//
// Control stays feeder-local: each controller sees only its shard's
// aggregate, and its signals reach only its shard's premises (stamped
// with the feeder id so a premise can drop misrouted traffic). With one
// shard holding every premise the Substation is byte-identical to the
// plain single-feeder control loop — the K=1 equivalence guarantee the
// fleet tests pin.
#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

#include "grid/bus.hpp"
#include "grid/controller.hpp"
#include "grid/feeder.hpp"
#include "sim/random.hpp"

namespace han::grid {

/// Substation-bank parameters. Unset fields inherit from the feeders:
/// capacity defaults to the sum of feeder capacities, and the thermal
/// shape to feeder 0's (so a one-feeder substation measures exactly
/// what its feeder measures).
struct SubstationConfig {
  /// Bank rating (kW); <= 0 derives the sum of feeder capacities.
  double capacity_kw = 0.0;
  /// Hotspot time constant; <= 0 inherits feeder 0's.
  sim::Duration thermal_tau = sim::Duration::zero();
  /// Per-unit hot-minute threshold; <= 0 inherits feeder 0's.
  double overload_temp_pu = 0.0;
};

/// Construction inputs of one feeder shard.
struct FeederPlan {
  FeederConfig feeder;
  DrConfig dr;
  BusConfig bus;
  /// Global premise ids served by this feeder, ascending. May be empty
  /// (an unpopulated feeder still exists on the pole).
  std::vector<std::size_t> premises;
};

class Substation {
 public:
  /// Builds the K shards. `bus_rng` is the shared root every shard's
  /// SignalBus draws per-global-premise subscriptions from — a premise
  /// keeps its latency/opt-in draws however the fleet is sharded.
  Substation(SubstationConfig config, std::vector<FeederPlan> plans,
             const sim::Rng& bus_rng);

  [[nodiscard]] std::size_t feeder_count() const noexcept {
    return shards_.size();
  }
  /// Total premises across all shards.
  [[nodiscard]] std::size_t premise_count() const noexcept;

  [[nodiscard]] const std::vector<std::size_t>& premises(
      std::size_t feeder) const {
    return shards_.at(feeder).premises;
  }
  [[nodiscard]] DemandResponseController& controller(std::size_t feeder) {
    return shards_.at(feeder).controller;
  }
  [[nodiscard]] const DemandResponseController& controller(
      std::size_t feeder) const {
    return shards_.at(feeder).controller;
  }
  [[nodiscard]] SignalBus& bus(std::size_t feeder) {
    return shards_.at(feeder).bus;
  }
  [[nodiscard]] const SignalBus& bus(std::size_t feeder) const {
    return shards_.at(feeder).bus;
  }
  /// Substation-level transformer bank (observes the summed load).
  [[nodiscard]] const FeederModel& transformer() const noexcept {
    return transformer_;
  }

  /// Feeds feeder `feeder`'s aggregate at `t` to its controller and
  /// returns the emitted signals, each stamped with the feeder id.
  /// Publish them through bus(feeder) to reach that shard's premises.
  [[nodiscard]] std::vector<GridSignal> observe_feeder(std::size_t feeder,
                                                       sim::TimePoint t,
                                                       double load_kw);

  /// Event-driven routing: hands a crossing-triggered observation of
  /// feeder `feeder`'s aggregate to that shard's controller, stamping
  /// the emitted signals with the feeder id (publish through
  /// bus(feeder), exactly as with observe_feeder).
  [[nodiscard]] std::vector<GridSignal> on_crossing(std::size_t feeder,
                                                    const Observation& obs);
  /// Event-driven routing: same for a deadline-triggered observation.
  [[nodiscard]] std::vector<GridSignal> on_timer(std::size_t feeder,
                                                 const Observation& obs);
  /// Feeds the substation total (the sum of the per-feeder aggregates)
  /// to the bank model; call once per control barrier, after the
  /// feeders.
  void observe_total(sim::TimePoint t, double load_kw);

  /// Substation-wide signal/compliance log. One feeder: the shard's
  /// bus log verbatim (the single-feeder byte-compatibility artifact).
  /// Several: one header with a leading `feeder` column, rows grouped
  /// by feeder in publish order. Deterministic either way.
  void write_log_csv(std::ostream& os) const;

 private:
  struct Shard {
    DemandResponseController controller;
    SignalBus bus;
    std::vector<std::size_t> premises;
  };

  std::vector<Shard> shards_;
  FeederModel transformer_;
};

}  // namespace han::grid
