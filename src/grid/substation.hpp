// han::grid — the substation above a sharded fleet of feeders.
//
// One feeder caps how many premises a single control loop can serve; a
// real distribution network hangs K feeders off a substation bank and
// controls each independently. The Substation owns K shards — each a
// (FeederModel, DemandResponseController, SignalBus) triple serving a
// disjoint premise list — plus its own transformer-bank model watching
// the summed load, which is where inter-feeder effects (coincident
// substation peak vs the sum of per-feeder peaks) become observable.
//
// Control stays feeder-local: each controller sees only its shard's
// aggregate, and its signals reach only its shard's premises (stamped
// with the feeder id so a premise can drop misrouted traffic). With one
// shard holding every premise the Substation is byte-identical to the
// plain single-feeder control loop — the K=1 equivalence guarantee the
// fleet tests pin.
//
// With a TieConfig the substation stops being a passive accountant:
// normally-open tie switches join adjacent feeders, and when one
// feeder runs persistently over its transfer-trigger band while a tied
// neighbor has headroom, the substation closes the tie and re-homes a
// bounded slice of the overloaded feeder's premises onto the
// neighbor's bank (bus membership migrates by global premise id, so
// every subscription draw survives the move). Actuation is delayed by
// the mechanical switch latency, the transfer is held for a minimum
// time, and give-back is hysteretic — the donor must be able to carry
// the returned load strictly below the trigger — so the switch cannot
// ping-pong premises between two busy feeders.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grid/bus.hpp"
#include "grid/controller.hpp"
#include "grid/feeder.hpp"
#include "sim/random.hpp"

namespace han::telemetry {
class Collector;
}  // namespace han::telemetry

namespace han::grid {

/// Substation-bank parameters. Unset fields inherit from the feeders:
/// capacity defaults to the sum of feeder capacities, and the thermal
/// shape to feeder 0's (so a one-feeder substation measures exactly
/// what its feeder measures).
struct SubstationConfig {
  /// Bank rating (kW); <= 0 derives the sum of feeder capacities.
  double capacity_kw = 0.0;
  /// Hotspot time constant; <= 0 inherits feeder 0's.
  sim::Duration thermal_tau = sim::Duration::zero();
  /// Per-unit hot-minute threshold; <= 0 inherits feeder 0's.
  double overload_temp_pu = 0.0;
};

/// Tie-switch topology and inter-feeder transfer tuning. Disabled by
/// default: every guarantee of the passive substation (byte-identical
/// logs, K=1 collapse) is preserved until `enabled` flips.
struct TieConfig {
  bool enabled = false;
  /// Tie switches as unordered feeder pairs. Empty derives a ring over
  /// the K feeders (k — k+1 mod K; a single tie for K == 2, none for
  /// K == 1).
  std::vector<std::pair<std::size_t, std::size_t>> ties;
  /// Donor utilization at/above which a transfer is considered (the
  /// transfer-trigger band).
  double trigger_utilization = 1.0;
  /// A transfer aims the donor back down to this utilization.
  double donor_target_utilization = 0.9;
  /// The receiver must stay at/below this utilization with the moved
  /// load added — the headroom test.
  double receiver_cap_utilization = 0.9;
  /// Hard ceiling on the load moved per operation, as a fraction of
  /// the donor's current load (a premise that does not fit whole
  /// under the ceiling is skipped in favor of smaller ones).
  double max_transfer_fraction = 0.3;
  /// Decision-to-actuation delay of the mechanical tie switch.
  sim::Duration switch_latency = sim::minutes(1);
  /// Minimum time a transfer stays in place before give-back is
  /// considered.
  sim::Duration hold_time = sim::minutes(30);
  /// Give-back requires the donor to carry the returned load at/below
  /// this utilization. Must sit strictly below trigger_utilization
  /// (enforced at construction) — the gap is the hysteresis that
  /// stops the switch ping-ponging.
  double give_back_utilization = 0.8;
};

/// Tie-switch operation counters.
struct TieStats {
  /// Actuations of any tie switch (transfers + give-backs).
  std::uint64_t switch_operations = 0;
  std::uint64_t transfers = 0;
  std::uint64_t give_backs = 0;
  /// Premises moved across a tie, both directions summed.
  std::uint64_t premise_moves = 0;
};

/// One actuated tie-switch operation: `premises` moved from feeder
/// `from` to feeder `to` at `at`. For a give-back, `to` is the
/// premises' home feeder and `from` the neighbor that had borrowed
/// them.
struct TieEvent {
  sim::TimePoint at;
  std::size_t from = 0;
  std::size_t to = 0;
  bool give_back = false;
  /// Global premise ids moved, ascending.
  std::vector<std::size_t> premises;
  /// Instantaneous load the operation moved, at decision time (kW).
  double moved_kw = 0.0;

  bool operator==(const TieEvent&) const = default;
};

/// One lent premise set currently living on a neighbor's bank.
struct ActiveTransfer {
  std::size_t from = 0;  ///< Home (donor) feeder.
  std::size_t to = 0;    ///< Feeder currently serving the premises.
  std::vector<std::size_t> premises;
  sim::TimePoint since;
  sim::TimePoint hold_until;
  /// A give-back has been decided and awaits its switch latency.
  bool give_back_pending = false;
};

/// Construction inputs of one feeder shard.
struct FeederPlan {
  FeederConfig feeder;
  DrConfig dr;
  BusConfig bus;
  /// Global premise ids served by this feeder, ascending. May be empty
  /// (an unpopulated feeder still exists on the pole).
  std::vector<std::size_t> premises;
};

class Substation {
 public:
  /// Builds the K shards. `bus_rng` is the shared root every shard's
  /// SignalBus draws per-global-premise subscriptions from — a premise
  /// keeps its latency/opt-in draws however the fleet is sharded.
  /// `tie` closes the loop between feeders; the default keeps every
  /// tie switch absent (the pre-transfer behavior, bit-for-bit).
  Substation(SubstationConfig config, std::vector<FeederPlan> plans,
             const sim::Rng& bus_rng, TieConfig tie = {});

  [[nodiscard]] std::size_t feeder_count() const noexcept {
    return shards_.size();
  }
  /// Total premises across all shards.
  [[nodiscard]] std::size_t premise_count() const noexcept;

  [[nodiscard]] const std::vector<std::size_t>& premises(
      std::size_t feeder) const {
    return shards_.at(feeder).premises;
  }
  [[nodiscard]] DemandResponseController& controller(std::size_t feeder) {
    return shards_.at(feeder).controller;
  }
  [[nodiscard]] const DemandResponseController& controller(
      std::size_t feeder) const {
    return shards_.at(feeder).controller;
  }
  [[nodiscard]] SignalBus& bus(std::size_t feeder) {
    return shards_.at(feeder).bus;
  }
  [[nodiscard]] const SignalBus& bus(std::size_t feeder) const {
    return shards_.at(feeder).bus;
  }
  /// Substation-level transformer bank (observes the summed load).
  [[nodiscard]] const FeederModel& transformer() const noexcept {
    return transformer_;
  }

  /// Feeds feeder `feeder`'s aggregate at `t` to its controller and
  /// returns the emitted signals, each stamped with the feeder id.
  /// Publish them through bus(feeder) to reach that shard's premises.
  [[nodiscard]] std::vector<GridSignal> observe_feeder(std::size_t feeder,
                                                       sim::TimePoint t,
                                                       double load_kw);

  /// Event-driven routing: hands a crossing-triggered observation of
  /// feeder `feeder`'s aggregate to that shard's controller, stamping
  /// the emitted signals with the feeder id (publish through
  /// bus(feeder), exactly as with observe_feeder).
  [[nodiscard]] std::vector<GridSignal> on_crossing(std::size_t feeder,
                                                    const Observation& obs);
  /// Event-driven routing: same for a deadline-triggered observation.
  [[nodiscard]] std::vector<GridSignal> on_timer(std::size_t feeder,
                                                 const Observation& obs);
  /// Feeds the substation total (the sum of the per-feeder aggregates)
  /// to the bank model; call once per control barrier, after the
  /// feeders.
  void observe_total(sim::TimePoint t, double load_kw);

  /// Substation-wide signal/compliance log. One feeder: the shard's
  /// bus log verbatim (the single-feeder byte-compatibility artifact).
  /// Several: one header with a leading `feeder` column, rows grouped
  /// by feeder in publish order. Deterministic either way.
  void write_log_csv(std::ostream& os) const;

  // --- Tie switches / inter-feeder load transfer ----------------------
  [[nodiscard]] const TieConfig& tie_config() const noexcept { return tie_; }
  [[nodiscard]] const TieStats& tie_stats() const noexcept {
    return tie_stats_;
  }
  /// Every actuated operation, in actuation order.
  [[nodiscard]] const std::vector<TieEvent>& tie_log() const noexcept {
    return tie_log_;
  }
  /// Lent premise sets currently living away from home.
  [[nodiscard]] const std::vector<ActiveTransfer>& active_transfers()
      const noexcept {
    return active_;
  }
  /// Feeder the premise was constructed on.
  [[nodiscard]] std::size_t home_feeder(std::size_t premise) const;
  /// Feeder currently serving the premise (== home when not lent).
  [[nodiscard]] std::size_t serving_feeder(std::size_t premise) const;

  /// Decides new transfers and give-backs from this barrier's committed
  /// per-feeder aggregates. `premise_load_kw` maps a global premise id
  /// to its instantaneous contribution (used to bound the moved load
  /// and to pick which premises travel: biggest contributors first, so
  /// the fewest switches move the most relief). Decisions actuate after
  /// the switch latency — apply_due_transfers() lands them. Pure
  /// bookkeeping when ties are disabled or K == 1.
  void plan_transfers(
      sim::TimePoint t, const std::vector<double>& feeder_load_kw,
      const std::function<double(std::size_t)>& premise_load_kw);

  /// Actuates every planned operation whose switch latency has elapsed
  /// by `t`: migrates the premises between shard member lists and
  /// buses (subscriptions move wholesale, so every per-premise draw
  /// survives), updates the serving map and counters, and returns the
  /// applied events so the engine can mirror the move (monitor
  /// membership, premise-side feeder stamp).
  std::vector<TieEvent> apply_due_transfers(sim::TimePoint t);

  /// Earliest instant the tie state machine needs a barrier
  /// regardless of load: a planned operation's actuation time (even
  /// when already due — the caller's barrier clamp turns it into "the
  /// next barrier", matching where polled actuates it) or an active
  /// transfer's hold expiry strictly after `after` (give-back becomes
  /// legal there). A hold that already expired is NOT a deadline —
  /// once give-back is merely waiting on the donor's load to recover,
  /// the observe_cap bounds the re-check cadence exactly as it does
  /// for DR load triggers. TimePoint::max() when nothing is pending.
  [[nodiscard]] sim::TimePoint next_tie_deadline(
      sim::TimePoint after) const noexcept;

  /// Attaches (nullptr detaches) a telemetry sink: plan_transfers then
  /// charges its decision time to Phase::kTransferPlanning. The sink is
  /// only touched from the control-plane thread, like everything else
  /// in this class.
  void set_telemetry(telemetry::Collector* collector) noexcept {
    telemetry_ = collector;
  }

 private:
  struct Shard {
    DemandResponseController controller;
    SignalBus bus;
    std::vector<std::size_t> premises;
  };

  [[nodiscard]] double capacity_of(std::size_t feeder) const {
    return shards_[feeder].controller.feeder().config().capacity_kw;
  }
  /// Feeders tied to `feeder` (ascending), from the configured pairs or
  /// the derived ring.
  [[nodiscard]] std::vector<std::size_t> tied_neighbors(
      std::size_t feeder) const;

  std::vector<Shard> shards_;
  FeederModel transformer_;

  TieConfig tie_;
  TieStats tie_stats_;
  std::vector<TieEvent> tie_log_;
  /// Planned operations awaiting their switch latency, decision order.
  std::vector<TieEvent> pending_;
  std::vector<ActiveTransfer> active_;
  /// Global premise id -> home / current feeder (lookup only — never
  /// iterated, so the unordered container cannot perturb determinism;
  /// transfer planning walks the deterministic shard member lists).
  // lint:allow(unordered-container): lookup-only id->feeder index, never iterated
  std::unordered_map<std::size_t, std::size_t> home_;
  // lint:allow(unordered-container): lookup-only id->feeder index, never iterated
  std::unordered_map<std::size_t, std::size_t> serving_;
  telemetry::Collector* telemetry_ = nullptr;
};

}  // namespace han::grid
