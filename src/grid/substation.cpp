#include "grid/substation.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace han::grid {

namespace {

/// Resolves the substation bank config against the feeder plans:
/// capacity defaults to the sum of feeder ratings, thermal shape to
/// feeder 0's.
FeederConfig resolve_bank(const SubstationConfig& config,
                          const std::vector<FeederPlan>& plans) {
  if (plans.empty()) {
    throw std::invalid_argument("Substation: needs at least one feeder");
  }
  FeederConfig bank;
  bank.capacity_kw = config.capacity_kw;
  if (bank.capacity_kw <= 0.0) {
    bank.capacity_kw = 0.0;
    for (const FeederPlan& p : plans) bank.capacity_kw += p.feeder.capacity_kw;
  }
  bank.thermal_tau = config.thermal_tau > sim::Duration::zero()
                         ? config.thermal_tau
                         : plans.front().feeder.thermal_tau;
  bank.overload_temp_pu = config.overload_temp_pu > 0.0
                              ? config.overload_temp_pu
                              : plans.front().feeder.overload_temp_pu;
  return bank;
}

}  // namespace

Substation::Substation(SubstationConfig config, std::vector<FeederPlan> plans,
                       const sim::Rng& bus_rng)
    : transformer_(resolve_bank(config, plans)) {
  shards_.reserve(plans.size());
  for (FeederPlan& p : plans) {
    for (std::size_t i = 1; i < p.premises.size(); ++i) {
      if (p.premises[i - 1] >= p.premises[i]) {
        throw std::invalid_argument(
            "Substation: feeder premise ids must be ascending");
      }
    }
    shards_.push_back(Shard{
        DemandResponseController(p.feeder, std::move(p.dr)),
        SignalBus(p.bus, p.premises, bus_rng),
        std::move(p.premises),
    });
  }
}

std::size_t Substation::premise_count() const noexcept {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.premises.size();
  return n;
}

std::vector<GridSignal> Substation::observe_feeder(std::size_t feeder,
                                                   sim::TimePoint t,
                                                   double load_kw) {
  std::vector<GridSignal> out = shards_.at(feeder).controller.observe(t, load_kw);
  for (GridSignal& s : out) s.feeder = static_cast<std::uint32_t>(feeder);
  return out;
}

std::vector<GridSignal> Substation::on_crossing(std::size_t feeder,
                                                const Observation& obs) {
  std::vector<GridSignal> out = shards_.at(feeder).controller.on_crossing(obs);
  for (GridSignal& s : out) s.feeder = static_cast<std::uint32_t>(feeder);
  return out;
}

std::vector<GridSignal> Substation::on_timer(std::size_t feeder,
                                             const Observation& obs) {
  std::vector<GridSignal> out = shards_.at(feeder).controller.on_timer(obs);
  for (GridSignal& s : out) s.feeder = static_cast<std::uint32_t>(feeder);
  return out;
}

void Substation::observe_total(sim::TimePoint t, double load_kw) {
  transformer_.observe(t, load_kw);
}

void Substation::write_log_csv(std::ostream& os) const {
  if (shards_.size() == 1) {
    // Byte-for-byte the single-feeder format the PR 2 determinism
    // artifacts compare against.
    shards_.front().bus.write_log_csv(os);
    return;
  }
  os << "feeder,signal_id,kind,emit_min,target_kw,shed_kw,stretch,"
        "duration_min,tier,premise,deliver_min,complied\n";
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    std::string prefix = std::to_string(k);
    prefix.push_back(',');
    shards_[k].bus.write_log_rows(os, prefix);
  }
}

}  // namespace han::grid
