#include "grid/substation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace han::grid {

namespace {

/// Resolves the substation bank config against the feeder plans:
/// capacity defaults to the sum of feeder ratings, thermal shape to
/// feeder 0's.
FeederConfig resolve_bank(const SubstationConfig& config,
                          const std::vector<FeederPlan>& plans) {
  if (plans.empty()) {
    throw std::invalid_argument("Substation: needs at least one feeder");
  }
  FeederConfig bank;
  bank.capacity_kw = config.capacity_kw;
  if (bank.capacity_kw <= 0.0) {
    bank.capacity_kw = 0.0;
    for (const FeederPlan& p : plans) bank.capacity_kw += p.feeder.capacity_kw;
  }
  bank.thermal_tau = config.thermal_tau > sim::Duration::zero()
                         ? config.thermal_tau
                         : plans.front().feeder.thermal_tau;
  bank.overload_temp_pu = config.overload_temp_pu > 0.0
                              ? config.overload_temp_pu
                              : plans.front().feeder.overload_temp_pu;
  return bank;
}

}  // namespace

Substation::Substation(SubstationConfig config, std::vector<FeederPlan> plans,
                       const sim::Rng& bus_rng, TieConfig tie)
    : transformer_(resolve_bank(config, plans)), tie_(std::move(tie)) {
  shards_.reserve(plans.size());
  for (FeederPlan& p : plans) {
    for (std::size_t i = 1; i < p.premises.size(); ++i) {
      if (p.premises[i - 1] >= p.premises[i]) {
        throw std::invalid_argument(
            "Substation: feeder premise ids must be ascending");
      }
    }
    shards_.push_back(Shard{
        DemandResponseController(p.feeder, std::move(p.dr)),
        SignalBus(p.bus, p.premises, bus_rng),
        std::move(p.premises),
    });
  }
  if (tie_.enabled) {
    for (const auto& [a, b] : tie_.ties) {
      if (a >= shards_.size() || b >= shards_.size() || a == b) {
        throw std::invalid_argument("Substation: bad tie pair");
      }
    }
    if (tie_.max_transfer_fraction <= 0.0 ||
        tie_.trigger_utilization <= 0.0 ||
        tie_.switch_latency < sim::Duration::zero() ||
        tie_.hold_time < sim::Duration::zero()) {
      throw std::invalid_argument("Substation: bad tie config");
    }
    if (tie_.give_back_utilization >= tie_.trigger_utilization) {
      // The gap between the bands IS the hysteresis: without it a
      // donor still over trigger after the hold would reclaim its
      // premises and re-trigger at the next barrier, ping-ponging the
      // switch every hold_time.
      throw std::invalid_argument(
          "Substation: give_back_utilization must sit below "
          "trigger_utilization");
    }
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      for (const std::size_t p : shards_[k].premises) {
        home_.emplace(p, k);
        serving_.emplace(p, k);
      }
    }
  }
}

std::size_t Substation::home_feeder(std::size_t premise) const {
  const auto it = home_.find(premise);
  if (it == home_.end()) {
    throw std::out_of_range("Substation: unknown premise");
  }
  return it->second;
}

std::size_t Substation::serving_feeder(std::size_t premise) const {
  const auto it = serving_.find(premise);
  if (it == serving_.end()) {
    throw std::out_of_range("Substation: unknown premise");
  }
  return it->second;
}

std::vector<std::size_t> Substation::tied_neighbors(std::size_t feeder) const {
  std::vector<std::size_t> out;
  const std::size_t k = shards_.size();
  if (tie_.ties.empty()) {
    // Derived ring: k-1 and k+1 mod K (one tie for K == 2).
    if (k >= 2) {
      out.push_back((feeder + 1) % k);
      if (k > 2) out.push_back((feeder + k - 1) % k);
    }
  } else {
    for (const auto& [a, b] : tie_.ties) {
      if (a == feeder) out.push_back(b);
      if (b == feeder) out.push_back(a);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Substation::plan_transfers(
    sim::TimePoint t, const std::vector<double>& feeder_load_kw,
    const std::function<double(std::size_t)>& premise_load_kw) {
  if (!tie_.enabled || shards_.size() < 2) return;
  const telemetry::Span plan_span(telemetry_,
                                  telemetry::Phase::kTransferPlanning);
  if (feeder_load_kw.size() != shards_.size()) {
    throw std::invalid_argument(
        "Substation::plan_transfers: one load per feeder");
  }

  // Role bookkeeping. A feeder with a PENDING operation (either side)
  // is frozen outright: its load still reflects the pre-actuation
  // membership, so planning against it would double-commit the same
  // kilowatts (or even the same premises). Once a transfer is ACTIVE
  // its effect is in the observed loads, so a donor may lend again
  // (a deeply overloaded shard needs several bites) and a receiver
  // may receive again — but the roles never mix: a borrower cannot
  // donate and a lender cannot borrow, which is what keeps borrowed
  // premises from being re-lent and two feeders from trading load in
  // a cycle.
  std::vector<char> frozen(shards_.size(), 0);
  std::vector<char> lender(shards_.size(), 0);
  std::vector<char> borrower(shards_.size(), 0);
  for (const TieEvent& ev : pending_) {
    frozen[ev.from] = frozen[ev.to] = 1;
  }
  for (const ActiveTransfer& a : active_) {
    lender[a.from] = 1;
    borrower[a.to] = 1;
  }

  // --- Give-backs first: recovery frees capacity for new transfers.
  for (ActiveTransfer& a : active_) {
    // Defer while either end has an operation in flight: the pending
    // actuation is about to change the loads this decision reads.
    if (a.give_back_pending || frozen[a.from] || frozen[a.to]) continue;
    double moved = 0.0;
    for (const std::size_t p : a.premises) moved += premise_load_kw(p);
    const double donor_with_return = feeder_load_kw[a.from] + moved;
    // Normal give-back once the hold expired, with hysteresis: the
    // donor must carry the returned load at/below the give-back band,
    // which sits strictly below the trigger band.
    const bool donor_recovered =
        t >= a.hold_until &&
        donor_with_return <=
            tie_.give_back_utilization * capacity_of(a.from);
    // Emergency give-back, hold or no hold: the borrowed premises now
    // push the RECEIVER over its own trigger band. Holding load on a
    // failing bank is strictly worse than returning it, provided the
    // donor can take it back without immediately re-triggering (if
    // both ends are over trigger there is no good move and the
    // transfer stands). The hold exists to stop churn, not to pin
    // load on the hotter side.
    const bool receiver_distress =
        feeder_load_kw[a.to] >=
            tie_.trigger_utilization * capacity_of(a.to) &&
        donor_with_return < tie_.trigger_utilization * capacity_of(a.from);
    if (!donor_recovered && !receiver_distress) continue;
    TieEvent ev;
    ev.at = t + tie_.switch_latency;
    ev.from = a.to;
    ev.to = a.from;
    ev.give_back = true;
    ev.premises = a.premises;
    ev.moved_kw = moved;
    pending_.push_back(std::move(ev));
    a.give_back_pending = true;
    // The return is now in flight: both ends are frozen for the
    // new-transfer scan below, like any other pending actuation.
    frozen[a.from] = frozen[a.to] = 1;
  }

  // --- New transfers, donors in ascending feeder order.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (frozen[k] || borrower[k]) continue;
    const double cap_k = capacity_of(k);
    if (feeder_load_kw[k] < tie_.trigger_utilization * cap_k) continue;

    // Receiver: the tied neighbor with the most headroom under its cap
    // (ties break toward the lower feeder id via the ascending scan).
    std::size_t best = shards_.size();
    double best_headroom = 0.0;
    for (const std::size_t n : tied_neighbors(k)) {
      if (frozen[n] || lender[n]) continue;
      const double headroom =
          tie_.receiver_cap_utilization * capacity_of(n) - feeder_load_kw[n];
      if (headroom > best_headroom) {
        best = n;
        best_headroom = headroom;
      }
    }
    if (best == shards_.size()) continue;

    const double budget = std::min(
        {feeder_load_kw[k] - tie_.donor_target_utilization * cap_k,
         tie_.max_transfer_fraction * feeder_load_kw[k], best_headroom});
    if (budget <= 0.0) continue;

    // Biggest contributors first (ids break ties), so the fewest
    // premises carry the most relief. The budget — receiver headroom
    // included — is a hard wall: a premise that does not fit whole is
    // skipped and a smaller one may still top the batch up, so the
    // moved load can never exceed the configured fraction of the
    // donor's load (or the receiver's headroom).
    struct Candidate {
      std::size_t premise;
      double kw;
    };
    std::vector<Candidate> candidates;
    for (const std::size_t p : shards_[k].premises) {
      // Only home premises travel — a borrowed premise is never
      // re-lent (and an uninvolved donor holds no borrowed premises).
      if (home_.at(p) != k) continue;
      const double kw = premise_load_kw(p);
      if (kw > 0.0) candidates.push_back({p, kw});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.kw != b.kw) return a.kw > b.kw;
                return a.premise < b.premise;
              });
    TieEvent ev;
    double moved = 0.0;
    for (const Candidate& c : candidates) {
      if (moved + c.kw > budget) continue;
      ev.premises.push_back(c.premise);
      moved += c.kw;
    }
    if (ev.premises.empty()) continue;
    std::sort(ev.premises.begin(), ev.premises.end());
    ev.at = t + tie_.switch_latency;
    ev.from = k;
    ev.to = best;
    ev.moved_kw = moved;
    frozen[k] = frozen[best] = 1;
    pending_.push_back(std::move(ev));
  }
}

std::vector<TieEvent> Substation::apply_due_transfers(sim::TimePoint t) {
  std::vector<TieEvent> out;
  if (pending_.empty()) return out;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    TieEvent& ev = pending_[i];
    if (ev.at > t) {
      if (kept != i) pending_[kept] = std::move(ev);
      ++kept;
      continue;
    }
    // Stamp the actual actuation instant — in polled mode the first
    // barrier at/after the scheduled time, in event mode the barrier
    // the tie deadline itself forced.
    ev.at = t;
    for (const std::size_t p : ev.premises) {
      std::vector<std::size_t>& from = shards_[ev.from].premises;
      from.erase(std::lower_bound(from.begin(), from.end(), p));
      std::vector<std::size_t>& to = shards_[ev.to].premises;
      to.insert(std::lower_bound(to.begin(), to.end(), p), p);
      shards_[ev.to].bus.add_member(p, shards_[ev.from].bus.remove_member(p));
      serving_[p] = ev.to;
    }
    ++tie_stats_.switch_operations;
    tie_stats_.premise_moves += ev.premises.size();
    if (ev.give_back) {
      ++tie_stats_.give_backs;
      active_.erase(std::find_if(active_.begin(), active_.end(),
                                 [&ev](const ActiveTransfer& a) {
                                   return a.give_back_pending &&
                                          a.to == ev.from &&
                                          a.from == ev.to &&
                                          a.premises == ev.premises;
                                 }));
    } else {
      ++tie_stats_.transfers;
      ActiveTransfer a;
      a.from = ev.from;
      a.to = ev.to;
      a.premises = ev.premises;
      a.since = t;
      a.hold_until = t + tie_.hold_time;
      active_.push_back(std::move(a));
    }
    tie_log_.push_back(ev);
    out.push_back(std::move(ev));
  }
  pending_.resize(kept);
  return out;
}

sim::TimePoint Substation::next_tie_deadline(
    sim::TimePoint after) const noexcept {
  sim::TimePoint next = sim::TimePoint::max();
  // Pending actuations are reported even when already due (a
  // zero-latency switch planned at this barrier): the engine clamps
  // barriers to at least one control interval ahead, so a past-due op
  // forces the NEXT barrier — exactly where the polled loop would
  // land it — and is consumed there.
  for (const TieEvent& ev : pending_) next = std::min(next, ev.at);
  for (const ActiveTransfer& a : active_) {
    // A hold expiry is only a deadline while the give-back decision is
    // still open, and only until it passes.
    if (!a.give_back_pending && a.hold_until > after) {
      next = std::min(next, a.hold_until);
    }
  }
  return next;
}

std::size_t Substation::premise_count() const noexcept {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.premises.size();
  return n;
}

std::vector<GridSignal> Substation::observe_feeder(std::size_t feeder,
                                                   sim::TimePoint t,
                                                   double load_kw) {
  std::vector<GridSignal> out = shards_.at(feeder).controller.observe(t, load_kw);
  for (GridSignal& s : out) s.feeder = static_cast<std::uint32_t>(feeder);
  return out;
}

std::vector<GridSignal> Substation::on_crossing(std::size_t feeder,
                                                const Observation& obs) {
  std::vector<GridSignal> out = shards_.at(feeder).controller.on_crossing(obs);
  for (GridSignal& s : out) s.feeder = static_cast<std::uint32_t>(feeder);
  return out;
}

std::vector<GridSignal> Substation::on_timer(std::size_t feeder,
                                             const Observation& obs) {
  std::vector<GridSignal> out = shards_.at(feeder).controller.on_timer(obs);
  for (GridSignal& s : out) s.feeder = static_cast<std::uint32_t>(feeder);
  return out;
}

void Substation::observe_total(sim::TimePoint t, double load_kw) {
  transformer_.observe(t, load_kw);
}

void Substation::write_log_csv(std::ostream& os) const {
  if (shards_.size() == 1) {
    // Byte-for-byte the single-feeder format the PR 2 determinism
    // artifacts compare against.
    shards_.front().bus.write_log_csv(os);
    return;
  }
  os << "feeder,signal_id,kind,emit_min,target_kw,shed_kw,stretch,"
        "duration_min,tier,premise,deliver_min,complied\n";
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    std::string prefix = std::to_string(k);
    prefix.push_back(',');
    shards_[k].bus.write_log_rows(os, prefix);
  }
}

}  // namespace han::grid
