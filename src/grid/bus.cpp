#include "grid/bus.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/csv.hpp"

namespace han::grid {

namespace {

std::vector<std::size_t> iota_ids(std::size_t n) {
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

}  // namespace

SignalBus::SignalBus(BusConfig config, std::size_t premise_count,
                     sim::Rng rng)
    : SignalBus(config, iota_ids(premise_count), rng) {
  if (premise_count == 0) {
    throw std::invalid_argument("SignalBus: premise_count must be > 0");
  }
}

SignalBus::SignalBus(BusConfig config, std::vector<std::size_t> premise_ids,
                     const sim::Rng& rng)
    : ids_(std::move(premise_ids)) {
  if (config.min_latency < sim::Duration::zero() ||
      config.max_latency < config.min_latency) {
    throw std::invalid_argument("SignalBus: bad latency range");
  }
  subscribers_.reserve(ids_.size());
  for (const std::size_t id : ids_) {
    // Keyed by the GLOBAL premise id, so re-sharding the fleet never
    // changes a premise's latency or enrollment.
    sim::Rng draw = rng.stream("premise", id);
    Subscriber s;
    s.latency = sim::microseconds(draw.uniform_int(
        config.min_latency.us(), config.max_latency.us()));
    // Last draw, like the adoption draw in make_spec: bernoulli(0)/(1)
    // consume nothing, so changing opt_in never perturbs the latencies.
    s.opted_in = draw.bernoulli(config.opt_in);
    subscribers_.push_back(s);
  }
}

Subscriber SignalBus::remove_member(std::size_t premise_id) {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), premise_id);
  if (it == ids_.end() || *it != premise_id) {
    throw std::invalid_argument("SignalBus: premise is not a member");
  }
  const auto pos = static_cast<std::size_t>(it - ids_.begin());
  const Subscriber sub = subscribers_[pos];
  ids_.erase(it);
  subscribers_.erase(subscribers_.begin() +
                     static_cast<std::ptrdiff_t>(pos));
  return sub;
}

void SignalBus::add_member(std::size_t premise_id,
                           const Subscriber& subscriber) {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), premise_id);
  if (it != ids_.end() && *it == premise_id) {
    throw std::invalid_argument("SignalBus: premise is already a member");
  }
  const auto pos = static_cast<std::size_t>(it - ids_.begin());
  ids_.insert(it, premise_id);
  subscribers_.insert(subscribers_.begin() + static_cast<std::ptrdiff_t>(pos),
                      subscriber);
}

std::size_t SignalBus::opted_in_count() const noexcept {
  std::size_t n = 0;
  for (const Subscriber& s : subscribers_) {
    if (s.opted_in) ++n;
  }
  return n;
}

const std::vector<Delivery>& SignalBus::publish(const GridSignal& signal) {
  signals_.push_back(signal);
  last_published_.clear();
  last_published_.reserve(subscribers_.size());
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    const Subscriber& sub = subscribers_[i];
    Delivery d;
    d.signal_id = signal.id;
    d.premise = ids_[i];
    d.deliver_at = signal.at + sub.latency;
    d.complied = sub.opted_in && sub.can_comply;
    last_published_.push_back(d);
    log_.push_back(d);
  }
  return last_published_;
}

void SignalBus::write_log_csv(std::ostream& os) const {
  os << "signal_id,kind,emit_min,target_kw,shed_kw,stretch,duration_min,"
        "tier,premise,deliver_min,complied\n";
  write_log_rows(os, {});
}

void SignalBus::write_log_rows(std::ostream& os,
                               std::string_view row_prefix) const {
  for (const Delivery& d : log_) {
    // Ids are the controller's emission sequence, which need not be
    // dense in what a caller chose to publish — look the signal up.
    const GridSignal* sp = nullptr;
    for (const GridSignal& cand : signals_) {
      if (cand.id == d.signal_id) {
        sp = &cand;
        break;
      }
    }
    if (sp == nullptr) continue;
    const GridSignal& s = *sp;
    os << row_prefix << d.signal_id << ',' << to_string(s.kind) << ','
       << metrics::fmt(s.at.since_epoch().minutes_f(), 3) << ','
       << metrics::fmt(s.target_kw, 3) << ',' << metrics::fmt(s.shed_kw, 3)
       << ',' << s.period_stretch << ','
       << metrics::fmt(s.duration.minutes_f(), 1) << ',' << to_string(s.tier)
       << ',' << d.premise << ','
       << metrics::fmt(d.deliver_at.since_epoch().minutes_f(), 3) << ','
       << (d.complied ? 1 : 0) << '\n';
  }
}

}  // namespace han::grid
