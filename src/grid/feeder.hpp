// han::grid — transformer-bank feeder model.
//
// What kills a distribution transformer is not one bad minute but
// sustained hotspot temperature, so the model tracks a first-order
// thermal state driven by the square of per-unit loading (copper loss
// ~ I^2): in steady state at utilization u the temperature settles at
// u^2, and excursions above rating charge up with the configured time
// constant and decay the same way. The controller watches both the raw
// headroom (capacity - load) and this accumulated stress, which is what
// makes it react to *persistent* overload instead of chattering on
// every surge sample. The integration itself lives in the shared
// metrics::HotspotTracker, which the event-driven monitor also runs —
// one implementation, so the two views can never drift apart bit-wise.
#pragma once

#include <cstddef>

#include "metrics/hotspot.hpp"
#include "sim/time.hpp"

namespace han::grid {

/// Transformer bank parameters.
struct FeederConfig {
  /// Nameplate rating of the bank (kW). Must be > 0 to observe().
  double capacity_kw = 0.0;
  /// First-order hotspot time constant. Distribution transformers are
  /// tens of minutes to hours; 30 min keeps scenario runs responsive.
  sim::Duration thermal_tau = sim::minutes(30);
  /// Per-unit temperature above which insulation-loss minutes accrue
  /// (1.0 == the steady-state temperature at exactly rated load).
  double overload_temp_pu = 1.0;
};

/// Streaming thermal/overload state of one feeder transformer bank.
/// Feed it the aggregate load in simulated-time order via observe().
class FeederModel {
 public:
  explicit FeederModel(FeederConfig config);

  [[nodiscard]] const FeederConfig& config() const noexcept {
    return config_;
  }

  /// Advances the thermal state to `t` under the load seen since the
  /// previous observation and records the new sample. Observations must
  /// be in non-decreasing time order.
  void observe(sim::TimePoint t, double load_kw);

  /// capacity - last observed load (negative while overloaded).
  [[nodiscard]] double headroom_kw() const noexcept {
    return config_.capacity_kw - last_load_kw_;
  }
  /// Last observed load / capacity.
  [[nodiscard]] double utilization() const noexcept {
    return last_load_kw_ / config_.capacity_kw;
  }
  /// Per-unit hotspot temperature (steady state: utilization^2).
  [[nodiscard]] double temperature_pu() const noexcept {
    return state_.temperature_pu();
  }

  /// Simulated minutes the raw load exceeded capacity.
  [[nodiscard]] double overload_minutes() const noexcept {
    return state_.overload_minutes();
  }
  /// Simulated minutes the thermal state exceeded overload_temp_pu.
  [[nodiscard]] double hot_minutes() const noexcept {
    return state_.hot_minutes();
  }
  /// Highest per-unit temperature reached so far.
  [[nodiscard]] double peak_temperature_pu() const noexcept {
    return state_.peak_temperature_pu();
  }
  [[nodiscard]] double peak_load_kw() const noexcept {
    return state_.peak_load_kw();
  }
  [[nodiscard]] std::size_t observations() const noexcept {
    return observations_;
  }

 private:
  FeederConfig config_;
  metrics::HotspotTracker state_;
  sim::TimePoint last_t_;
  double last_load_kw_ = 0.0;
  std::size_t observations_ = 0;
};

}  // namespace han::grid
