#include "grid/signal.hpp"

namespace han::grid {

std::string_view to_string(SignalKind k) noexcept {
  switch (k) {
    case SignalKind::kDrShed:
      return "dr_shed";
    case SignalKind::kAllClear:
      return "all_clear";
    case SignalKind::kTariffChange:
      return "tariff_change";
  }
  return "?";
}

std::string_view to_string(TariffTier t) noexcept {
  switch (t) {
    case TariffTier::kOffPeak:
      return "off_peak";
    case TariffTier::kStandard:
      return "standard";
    case TariffTier::kPeak:
      return "peak";
  }
  return "?";
}

}  // namespace han::grid
