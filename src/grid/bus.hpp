// han::grid — signal delivery from the head end to premises.
//
// Real DR dispatch is neither instant nor universal: AMI backhaul and
// gateway polling add seconds-to-minutes of latency, and premises only
// act if the customer opted into the program. The SignalBus models both
// per premise, drawn deterministically from its own RNG (an independent
// stream of the fleet seed, so enabling the grid layer never perturbs
// the premise draws), and keeps the full delivery/compliance log — the
// artifact the determinism tests compare byte-for-byte across thread
// counts.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "grid/signal.hpp"
#include "sim/random.hpp"

namespace han::grid {

/// Delivery-model parameters.
struct BusConfig {
  /// Per-premise delivery latency, uniform on [min_latency, max_latency].
  sim::Duration min_latency = sim::seconds(2);
  sim::Duration max_latency = sim::seconds(45);
  /// Probability a premise enrolled in the DR program.
  double opt_in = 1.0;
};

/// One premise's standing subscription.
struct Subscriber {
  sim::Duration latency = sim::Duration::zero();
  bool opted_in = true;
  /// Whether the premise runs a policy that can act on a shed (the
  /// engine sets this: coordinated premises only — the uncoordinated
  /// baseline ignores signals by design).
  bool can_comply = true;
};

/// One (signal, premise) delivery record.
struct Delivery {
  std::uint32_t signal_id = 0;
  std::size_t premise = 0;
  sim::TimePoint deliver_at;
  /// opted_in && can_comply: the premise will act on a shed/all-clear.
  /// Tariff changes are informational and reach every premise
  /// regardless; for them this flag just records DR enrollment.
  bool complied = false;

  bool operator==(const Delivery&) const = default;
};

class SignalBus {
 public:
  /// Draws each premise's latency and opt-in from `rng` sub-streams.
  SignalBus(BusConfig config, std::size_t premise_count, sim::Rng rng);

  [[nodiscard]] std::size_t premise_count() const noexcept {
    return subscribers_.size();
  }
  [[nodiscard]] const Subscriber& subscriber(std::size_t premise) const {
    return subscribers_.at(premise);
  }
  /// Engine hook: premises that cannot act (uncoordinated baseline).
  void set_can_comply(std::size_t premise, bool can_comply) {
    subscribers_.at(premise).can_comply = can_comply;
  }
  [[nodiscard]] std::size_t opted_in_count() const noexcept;

  /// Fans `signal` out to every premise in index order, appending to the
  /// log. Returns the deliveries of this signal (same order).
  const std::vector<Delivery>& publish(const GridSignal& signal);

  /// Every signal published so far, in emission order.
  [[nodiscard]] const std::vector<GridSignal>& signals() const noexcept {
    return signals_;
  }
  /// Flat (signal x premise) delivery log, in publish order.
  [[nodiscard]] const std::vector<Delivery>& log() const noexcept {
    return log_;
  }

  /// Writes the signal/compliance log as CSV — one row per delivery,
  /// joined with its signal's fields. Deterministic formatting; the
  /// thread-independence tests compare this output byte-for-byte.
  void write_log_csv(std::ostream& os) const;

 private:
  std::vector<Subscriber> subscribers_;
  std::vector<GridSignal> signals_;
  std::vector<Delivery> log_;
  std::vector<Delivery> last_published_;
};

}  // namespace han::grid
