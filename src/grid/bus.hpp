// han::grid — signal delivery from the head end to premises.
//
// Real DR dispatch is neither instant nor universal: AMI backhaul and
// gateway polling add seconds-to-minutes of latency, and premises only
// act if the customer opted into the program. The SignalBus models both
// per premise, drawn deterministically from its own RNG (an independent
// stream of the fleet seed, so enabling the grid layer never perturbs
// the premise draws), and keeps the full delivery/compliance log — the
// artifact the determinism tests compare byte-for-byte across thread
// counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "grid/signal.hpp"
#include "sim/random.hpp"

namespace han::grid {

/// Delivery-model parameters.
struct BusConfig {
  /// Per-premise delivery latency, uniform on [min_latency, max_latency].
  sim::Duration min_latency = sim::seconds(2);
  sim::Duration max_latency = sim::seconds(45);
  /// Probability a premise enrolled in the DR program.
  double opt_in = 1.0;
};

/// One premise's standing subscription.
struct Subscriber {
  sim::Duration latency = sim::Duration::zero();
  bool opted_in = true;
  /// Whether the premise runs a policy that can act on a shed (the
  /// engine sets this: coordinated premises only — the uncoordinated
  /// baseline ignores signals by design).
  bool can_comply = true;
};

/// One (signal, premise) delivery record.
struct Delivery {
  std::uint32_t signal_id = 0;
  std::size_t premise = 0;
  sim::TimePoint deliver_at;
  /// opted_in && can_comply: the premise will act on a shed/all-clear.
  /// Tariff changes are informational and reach every premise
  /// regardless; for them this flag just records DR enrollment.
  bool complied = false;

  bool operator==(const Delivery&) const = default;
};

class SignalBus {
 public:
  /// Serves premises 0..premise_count-1. Draws each premise's latency
  /// and opt-in from `rng` sub-streams.
  SignalBus(BusConfig config, std::size_t premise_count, sim::Rng rng);

  /// Serves an explicit member list (one feeder's shard of a larger
  /// fleet). `premise_ids` are global premise indices, and each
  /// subscriber's latency/opt-in is drawn from `rng`'s per-GLOBAL-id
  /// sub-stream — so a premise keeps the same draws however the fleet
  /// is sharded, and a single shard holding every premise reproduces
  /// the premise_count constructor exactly. May be empty (a feeder with
  /// no customers publishes into the void).
  SignalBus(BusConfig config, std::vector<std::size_t> premise_ids,
            const sim::Rng& rng);

  /// Members served by this bus (== premise count for the whole-fleet
  /// constructor).
  [[nodiscard]] std::size_t premise_count() const noexcept {
    return subscribers_.size();
  }
  /// Global premise id of member `pos`.
  [[nodiscard]] std::size_t premise_id(std::size_t pos) const {
    return ids_.at(pos);
  }
  /// Subscriber at member position `pos` (== global id for the
  /// whole-fleet constructor).
  [[nodiscard]] const Subscriber& subscriber(std::size_t pos) const {
    return subscribers_.at(pos);
  }
  /// Engine hook: premises that cannot act (uncoordinated baseline).
  /// `pos` is the member position, not the global id.
  void set_can_comply(std::size_t pos, bool can_comply) {
    subscribers_.at(pos).can_comply = can_comply;
  }
  [[nodiscard]] std::size_t opted_in_count() const noexcept;

  /// Tie-switch migration: removes global premise `premise_id` from
  /// this bus and returns its subscription (latency / opt-in /
  /// can_comply), so the receiving feeder's bus can carry the
  /// premise's draws over verbatim. Throws if the premise is not a
  /// member. Past log entries stand — they record deliveries that
  /// happened.
  Subscriber remove_member(std::size_t premise_id);
  /// Adds `premise_id` with an existing subscription, keeping the
  /// member list ascending by global id. Throws on a duplicate.
  void add_member(std::size_t premise_id, const Subscriber& subscriber);

  /// Fans `signal` out to every premise in index order, appending to the
  /// log. Returns the deliveries of this signal (same order).
  const std::vector<Delivery>& publish(const GridSignal& signal);

  /// Every signal published so far, in emission order.
  [[nodiscard]] const std::vector<GridSignal>& signals() const noexcept {
    return signals_;
  }
  /// Flat (signal x premise) delivery log, in publish order.
  [[nodiscard]] const std::vector<Delivery>& log() const noexcept {
    return log_;
  }

  /// Writes the signal/compliance log as CSV — one row per delivery,
  /// joined with its signal's fields. Deterministic formatting; the
  /// thread-independence tests compare this output byte-for-byte.
  void write_log_csv(std::ostream& os) const;

  /// Data rows only (no header), each prefixed with `row_prefix` — the
  /// Substation uses this to join per-feeder logs under one header with
  /// a leading feeder column.
  void write_log_rows(std::ostream& os, std::string_view row_prefix) const;

 private:
  std::vector<std::size_t> ids_;  // global premise id per member position
  std::vector<Subscriber> subscribers_;
  std::vector<GridSignal> signals_;
  std::vector<Delivery> log_;
  std::vector<Delivery> last_published_;
};

}  // namespace han::grid
