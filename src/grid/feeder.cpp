#include "grid/feeder.hpp"

#include <stdexcept>

namespace han::grid {

FeederModel::FeederModel(FeederConfig config)
    : config_(config),
      state_(metrics::ThermalParams{config.capacity_kw, config.thermal_tau,
                                    config.overload_temp_pu}) {
  if (config_.capacity_kw <= 0.0) {
    throw std::invalid_argument("FeederModel: capacity_kw must be > 0");
  }
  if (config_.thermal_tau <= sim::Duration::zero()) {
    throw std::invalid_argument("FeederModel: thermal_tau must be > 0");
  }
}

void FeederModel::observe(sim::TimePoint t, double load_kw) {
  // The interval (last_t, t] is attributed to the load observed at t
  // (the same per-sample convention as fleet::feeder_metrics). Note the
  // priming observation carries no interval, so feed a sample at the
  // window start if the full span must be accounted.
  if (state_.primed() && t < last_t_) {
    throw std::invalid_argument("FeederModel: observations must not go back");
  }
  const double dt_min = state_.primed() ? (t - last_t_).minutes_f() : 0.0;
  state_.observe(dt_min, load_kw);
  last_t_ = t;
  last_load_kw_ = load_kw;
  ++observations_;
}

}  // namespace han::grid
