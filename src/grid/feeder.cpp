#include "grid/feeder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace han::grid {

FeederModel::FeederModel(FeederConfig config) : config_(config) {
  if (config_.capacity_kw <= 0.0) {
    throw std::invalid_argument("FeederModel: capacity_kw must be > 0");
  }
  if (config_.thermal_tau <= sim::Duration::zero()) {
    throw std::invalid_argument("FeederModel: thermal_tau must be > 0");
  }
}

void FeederModel::observe(sim::TimePoint t, double load_kw) {
  // The interval (last_t, t] is attributed to the load observed at t
  // (the same per-sample convention as fleet::feeder_metrics). Note the
  // priming observation carries no interval, so feed a sample at the
  // window start if the full span must be accounted.
  if (primed_ && t < last_t_) {
    throw std::invalid_argument("FeederModel: observations must not go back");
  }
  const double u = load_kw / config_.capacity_kw;
  if (primed_) {
    const double dt_min = (t - last_t_).minutes_f();
    const double alpha =
        1.0 - std::exp(-dt_min / config_.thermal_tau.minutes_f());
    temp_pu_ += alpha * (u * u - temp_pu_);
    if (load_kw > config_.capacity_kw) overload_minutes_ += dt_min;
    if (temp_pu_ > config_.overload_temp_pu) hot_minutes_ += dt_min;
  } else {
    // First observation primes the state at its steady-state value.
    temp_pu_ = u * u;
    primed_ = true;
  }
  last_t_ = t;
  last_load_kw_ = load_kw;
  peak_temp_pu_ = std::max(peak_temp_pu_, temp_pu_);
  peak_load_kw_ = std::max(peak_load_kw_, load_kw);
  ++observations_;
}

}  // namespace han::grid
