#include "sched/uncoordinated.hpp"

namespace han::sched {

bool UncoordinatedScheduler::free_running_on(sim::TimePoint now,
                                             sim::TimePoint anchor,
                                             sim::Duration min_dcd,
                                             sim::Duration max_dcp) noexcept {
  if (now < anchor) return false;
  const sim::Duration phase = (now - anchor) % max_dcp;
  return phase < min_dcd;
}

Plan UncoordinatedScheduler::plan(const GlobalView& view) const {
  Plan out(view.devices.size(), false);
  for (std::size_t i = 0; i < view.devices.size(); ++i) {
    const DeviceStatus& d = view.devices[i];
    if (!d.has_demand || d.demand_until <= view.now) continue;
    out[i] = free_running_on(view.now, d.demand_since, d.min_dcd, d.max_dcp);
  }
  return out;
}

}  // namespace han::sched
