// han::sched — the paper's baseline: no inter-device coordination.
//
// Each device free-runs its own duty cycle the moment its demand starts:
// ON for minDCD, OFF for (maxDCP - minDCD), repeating, anchored at its
// own demand_since. Because arrivals are random, ON bursts of different
// devices stack on top of each other, producing the tall jagged load
// profile of Fig. 2(a) "w/o coordination".
#pragma once

#include "sched/scheduler.hpp"

namespace han::sched {

class UncoordinatedScheduler final : public Scheduler {
 public:
  [[nodiscard]] Plan plan(const GlobalView& view) const override;
  [[nodiscard]] std::string_view name() const override {
    return "uncoordinated";
  }

  /// ON/OFF position of a free-running duty cycle anchored at `anchor`.
  [[nodiscard]] static bool free_running_on(sim::TimePoint now,
                                            sim::TimePoint anchor,
                                            sim::Duration min_dcd,
                                            sim::Duration max_dcp) noexcept;
};

}  // namespace han::sched
