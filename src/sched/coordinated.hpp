// han::sched — the paper's collaborative duty-cycle coordination (§II).
//
// Slot-ledger staggering. The maxDCP period is divided into K = maxDCP /
// minDCD phase slots of width minDCD, anchored at the epoch that ST time
// sync gives every node for free. When a device's demand starts, its own
// DI claims a slot — the least occupied one in its current view, tie
// broken toward the slot whose window opens soonest — and publishes the
// claim inside the device's shared record (the "slot ledger"). The claim
// never moves while demand lasts, so no other device's ON phase is ever
// disturbed by arrivals or departures.
//
// A device is ON exactly while the ring phase lies inside its claimed
// slot. Properties (each one is a test):
//   * every active device runs >= one minDCD burst per maxDCP window;
//   * bursts run staggered ("one by one"), so the concurrent ON count
//     stays near n/K — with the paper's 15/30-minute constraints the
//     steady load is half of the uncoordinated worst case (all n ON);
//   * a new request changes the load by one device at a time;
//   * claims are made only by the owning DI, so a stale view can only
//     skew slot balance, never cause two nodes to disagree about who
//     runs — consistency needs no election and no coordinator.
//
// Heterogeneous constraints: each device's ring uses its own (minDCD,
// maxDCP); occupancy counting treats slot indices modulo the claimant's
// own K, which reduces exactly to the paper's scheme when constraints
// are uniform.
#pragma once

#include <optional>

#include "sched/scheduler.hpp"

namespace han::sched {

class CoordinatedScheduler final : public Scheduler {
 public:
  /// `dr_aware` opts the policy into demand-response pressure: while
  /// GlobalView::grid carries an active shed, every device's maxDCP is
  /// treated as stretched by the shed's period multiplier (see
  /// effective_max_dcp), which thins the burst cadence — same minDCD
  /// bursts, longer period — and cuts the premise's steady load to
  /// ~1/stretch. Off by default: a non-enrolled premise schedules
  /// exactly as the paper describes.
  explicit CoordinatedScheduler(bool dr_aware = false) noexcept
      : dr_aware_(dr_aware) {}

  [[nodiscard]] Plan plan(const GlobalView& view) const override;
  [[nodiscard]] std::string_view name() const override {
    return "coordinated";
  }
  [[nodiscard]] bool epoch_aligned() const noexcept override { return true; }
  [[nodiscard]] bool dr_aware() const noexcept override { return dr_aware_; }

  /// True while the ring phase of `now` is inside `slot`'s window.
  [[nodiscard]] static bool slot_window_on(sim::TimePoint now,
                                           std::uint8_t slot,
                                           sim::Duration min_dcd,
                                           sim::Duration max_dcp) noexcept;

  /// Claims a slot for `self` given the current `view`: least occupied,
  /// ties broken toward the slot whose window opens soonest after
  /// view.now, then toward the lower index. Deterministic; only the
  /// owning DI calls this, exactly once per demand period. With
  /// `apply_grid`, constraints are resolved through view.grid (the
  /// DR-aware path), so claims during a shed spread over the stretched
  /// slot ring.
  [[nodiscard]] static std::uint8_t pick_slot(const GlobalView& view,
                                              const DeviceStatus& self,
                                              bool apply_grid = false);

  /// Absolute time at which `slot`'s window next opens at or after
  /// `now` (== now when the phase is exactly at the window start).
  [[nodiscard]] static sim::TimePoint next_window_opening(
      sim::TimePoint now, std::uint8_t slot, sim::Duration min_dcd,
      sim::Duration max_dcp) noexcept;

  /// Occupancy histogram of claimed slots among active devices, sized
  /// `k_slots` (indices modulo k_slots). A claimant is counted only if
  /// it will actually run in its slot's next occurrence: either its
  /// burst is still pending, or its demand outlives the next opening —
  /// devices that already ran and are about to expire don't block a
  /// slot for newcomers.
  [[nodiscard]] static std::vector<std::size_t> slot_occupancy(
      const GlobalView& view, std::size_t k_slots, bool apply_grid = false);

  /// Departures skew the slot balance over time; this computes the one
  /// rebalancing move for this round, if any: the lowest-id active,
  /// currently-OFF device in the most crowded slot migrates to the least
  /// crowded slot when the difference is >= 2. Exactly one mover per
  /// round — every node computes the same answer from the same view, so
  /// migration cannot thrash. Returns (mover id, new slot).
  struct Rebalance {
    net::NodeId mover = net::kInvalidNode;
    std::uint8_t new_slot = kNoSlot;
  };
  [[nodiscard]] static std::optional<Rebalance> rebalance_move(
      const GlobalView& view, std::size_t k_slots, bool apply_grid = false);

  /// Steady-state concurrent ON count for `active` homogeneous devices
  /// under balanced claims (the analytical staircase level).
  [[nodiscard]] static std::size_t steady_on_count(
      std::size_t active, sim::Duration min_dcd,
      sim::Duration max_dcp) noexcept;

 private:
  bool dr_aware_ = false;
};

}  // namespace han::sched
