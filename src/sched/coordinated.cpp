#include "sched/coordinated.hpp"

#include <algorithm>

namespace han::sched {

bool CoordinatedScheduler::slot_window_on(sim::TimePoint now,
                                          std::uint8_t slot,
                                          sim::Duration min_dcd,
                                          sim::Duration max_dcp) noexcept {
  if (slot == kNoSlot) return false;
  const sim::Ticks k = max_dcp / min_dcd;  // >= 1 by construction
  const sim::Ticks s = static_cast<sim::Ticks>(slot) % k;
  const sim::Duration phase = sim::phase_in_period(now, max_dcp);
  const sim::Duration slot_start = min_dcd * s;
  return phase >= slot_start && phase < slot_start + min_dcd;
}

sim::TimePoint CoordinatedScheduler::next_window_opening(
    sim::TimePoint now, std::uint8_t slot, sim::Duration min_dcd,
    sim::Duration max_dcp) noexcept {
  const sim::Ticks k = max_dcp / min_dcd;
  const sim::Ticks s = static_cast<sim::Ticks>(slot) % k;
  const sim::Duration phase = sim::phase_in_period(now, max_dcp);
  const sim::Duration slot_start = min_dcd * s;
  sim::Duration wait = slot_start - phase;
  if (wait < sim::Duration::zero()) wait += max_dcp;
  return now + wait;
}

std::vector<std::size_t> CoordinatedScheduler::slot_occupancy(
    const GlobalView& view, std::size_t k_slots, bool apply_grid) {
  std::vector<std::size_t> occ(k_slots, 0);
  if (k_slots == 0) return occ;
  for (const DeviceStatus& d : view.devices) {
    if (!d.has_demand || d.demand_until <= view.now) continue;
    if (!d.slot_assigned()) continue;
    const sim::Duration dcp =
        apply_grid ? effective_max_dcp(d.max_dcp, view.grid) : d.max_dcp;
    const bool will_run =
        d.burst_pending ||
        d.demand_until >
            next_window_opening(view.now, d.slot, d.min_dcd, dcp);
    if (will_run) occ[d.slot % k_slots] += 1;
  }
  return occ;
}

std::uint8_t CoordinatedScheduler::pick_slot(const GlobalView& view,
                                             const DeviceStatus& self,
                                             bool apply_grid) {
  const sim::Duration self_dcp =
      apply_grid ? effective_max_dcp(self.max_dcp, view.grid) : self.max_dcp;
  const sim::Ticks k_ticks = self_dcp / self.min_dcd;
  const auto k = static_cast<std::size_t>(std::max<sim::Ticks>(k_ticks, 1));
  const std::vector<std::size_t> occ = slot_occupancy(view, k, apply_grid);

  const sim::Duration phase = sim::phase_in_period(view.now, self_dcp);

  std::size_t best = 0;
  bool have_best = false;
  sim::Duration best_wait = sim::Duration::zero();
  for (std::size_t s = 0; s < k; ++s) {
    // Wait until slot s's window next *opens*. A window that is already
    // open counts as its next opening one period later, so ties push new
    // arrivals into the upcoming slot — requests run one by one and the
    // first burst is always a full minDCD.
    const sim::Duration slot_start =
        self.min_dcd * static_cast<sim::Ticks>(s);
    sim::Duration wait = slot_start - phase;
    if (wait < sim::Duration::zero()) wait += self_dcp;
    if (!have_best || occ[s] < occ[best] ||
        (occ[s] == occ[best] && wait < best_wait)) {
      best = s;
      best_wait = wait;
      have_best = true;
    }
  }
  return static_cast<std::uint8_t>(best);
}

std::optional<CoordinatedScheduler::Rebalance>
CoordinatedScheduler::rebalance_move(const GlobalView& view,
                                     std::size_t k_slots, bool apply_grid) {
  if (k_slots < 2) return std::nullopt;
  const std::vector<std::size_t> occ =
      slot_occupancy(view, k_slots, apply_grid);
  std::size_t hi = 0;
  std::size_t lo = 0;
  for (std::size_t s = 1; s < k_slots; ++s) {
    if (occ[s] > occ[hi]) hi = s;
    if (occ[s] < occ[lo]) lo = s;
  }
  if (occ[hi] < occ[lo] + 2) return std::nullopt;

  // Lowest-id active OFF device currently claiming the crowded slot
  // whose demand still covers the target slot's next opening — moving a
  // device must never cost it its burst.
  const DeviceStatus* mover = nullptr;
  for (const DeviceStatus& d : view.devices) {
    if (!d.has_demand || d.demand_until <= view.now) continue;
    if (!d.slot_assigned() || d.slot % k_slots != hi) continue;
    if (d.relay_on) continue;  // never interrupt a burst
    const sim::Duration dcp =
        apply_grid ? effective_max_dcp(d.max_dcp, view.grid) : d.max_dcp;
    const sim::TimePoint target_opening = next_window_opening(
        view.now, static_cast<std::uint8_t>(lo), d.min_dcd, dcp);
    if (d.demand_until <= target_opening) continue;
    if (mover == nullptr || d.id < mover->id) mover = &d;
  }
  if (mover == nullptr) return std::nullopt;
  return Rebalance{mover->id, static_cast<std::uint8_t>(lo)};
}

Plan CoordinatedScheduler::plan(const GlobalView& view) const {
  Plan out(view.devices.size(), false);
  for (std::size_t i = 0; i < view.devices.size(); ++i) {
    const DeviceStatus& d = view.devices[i];
    if (!d.has_demand || d.demand_until <= view.now) continue;
    const sim::Duration dcp =
        dr_aware_ ? effective_max_dcp(d.max_dcp, view.grid) : d.max_dcp;
    out[i] = slot_window_on(view.now, d.slot, d.min_dcd, dcp);
  }
  return out;
}

std::size_t CoordinatedScheduler::steady_on_count(
    std::size_t active, sim::Duration min_dcd,
    sim::Duration max_dcp) noexcept {
  if (active == 0) return 0;
  const auto k = static_cast<std::size_t>(max_dcp / min_dcd);
  return (active + k - 1) / k;
}

}  // namespace han::sched
