// han::sched — the shared state schedulers plan from.
//
// After every CP round each DI holds one DeviceStatus per appliance,
// decoded from the MiniCast records. A GlobalView is that table plus
// "now". Schedulers are pure functions of a GlobalView, which is what
// makes the decentralized design work: identical view => identical plan
// at every node, with no election and no coordinator.
#pragma once

#include <algorithm>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace han::sched {

/// Marker for "no schedule slot assigned".
inline constexpr std::uint8_t kNoSlot = 0xFF;

/// Grid-side demand-response pressure, stamped onto every view by the
/// premise runtime (HanNetwork). It is NOT shared over the CP: all DIs
/// of a premise hang off the same grid gateway, so the field is
/// consistent across the premise by construction. DR-aware schedulers
/// stretch each device's duty-cycle period by `period_stretch` while a
/// shed is active; everything else ignores it.
struct GridPressure {
  bool shed_active = false;
  /// maxDCP multiplier while shedding (>= 1; integer keeps stretched
  /// slot windows aligned with the base epoch ring).
  sim::Ticks period_stretch = 1;

  bool operator==(const GridPressure&) const = default;
};

/// `max_dcp` as a DR-aware scheduler sees it under `grid`: stretched by
/// the shed's period multiplier while a shed is active, unchanged
/// otherwise. Stretching lowers the duty factor minDCD/maxDCP — each
/// device still gets one full minDCD burst per (stretched) period, just
/// less often, which is exactly the lever a shed pulls.
[[nodiscard]] constexpr sim::Duration effective_max_dcp(
    sim::Duration max_dcp, const GridPressure& grid) noexcept {
  if (!grid.shed_active || grid.period_stretch <= 1) return max_dcp;
  return max_dcp * grid.period_stretch;
}

/// Everything a scheduler needs to know about one Type-2 device.
struct DeviceStatus {
  net::NodeId id = net::kInvalidNode;
  bool has_demand = false;
  bool relay_on = false;
  /// When the current demand began (valid while has_demand).
  sim::TimePoint demand_since;
  /// When the current demand expires.
  sim::TimePoint demand_until;
  sim::Duration min_dcd = sim::minutes(15);
  sim::Duration max_dcp = sim::minutes(30);
  double rated_kw = 1.0;
  /// True while the device still owes its demand a full minDCD burst
  /// (used to weigh slot occupancy by who actually needs to run).
  bool burst_pending = false;
  /// Phase slot this device's DI claimed in the maxDCP ring (the "slot
  /// ledger"); kNoSlot until the owning DI assigns one at demand start.
  /// Only the owning DI ever writes it — everyone else just reads.
  std::uint8_t slot = kNoSlot;

  [[nodiscard]] bool slot_assigned() const noexcept {
    return slot != kNoSlot;
  }

  bool operator==(const DeviceStatus&) const = default;
};

/// One node's snapshot of the whole system.
struct GlobalView {
  sim::TimePoint now;
  std::vector<DeviceStatus> devices;  // any order; schedulers sort copies
  /// Premise-local demand-response state (see GridPressure).
  GridPressure grid;

  /// Devices with unexpired demand, FIFO-ordered by (demand_since, id).
  [[nodiscard]] std::vector<DeviceStatus> active_fifo() const {
    std::vector<DeviceStatus> act;
    act.reserve(devices.size());
    for (const DeviceStatus& d : devices) {
      if (d.has_demand && d.demand_until > now) act.push_back(d);
    }
    std::sort(act.begin(), act.end(),
              [](const DeviceStatus& a, const DeviceStatus& b) {
                if (a.demand_since != b.demand_since) {
                  return a.demand_since < b.demand_since;
                }
                return a.id < b.id;
              });
    return act;
  }

  /// Sum of rated power over devices whose relay is currently on.
  [[nodiscard]] double load_kw() const {
    double kw = 0.0;
    for (const DeviceStatus& d : devices) {
      if (d.relay_on) kw += d.rated_kw;
    }
    return kw;
  }
};

/// A plan maps device -> desired relay state for the next round.
/// Indexed by position in GlobalView::devices.
using Plan = std::vector<bool>;

}  // namespace han::sched
