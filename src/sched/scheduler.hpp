// han::sched — scheduler interface.
#pragma once

#include <string_view>

#include "sched/view.hpp"

namespace han::sched {

/// A load-management policy. Implementations must be pure functions of
/// the view (no hidden mutable state): every DI runs its own instance on
/// its own view, and consistency of the resulting global schedule is
/// exactly the determinism of plan().
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Desired relay state for every entry of `view.devices` (same order).
  [[nodiscard]] virtual Plan plan(const GlobalView& view) const = 0;

  /// Human-readable policy name (benches/reports).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when ON windows are anchored at the shared epoch ring (the
  /// coordinated policy). The DI then enforces at most one burst start
  /// per maxDCP ring period; policies anchored at per-device times
  /// (the uncoordinated baseline) must not be gated that way.
  [[nodiscard]] virtual bool epoch_aligned() const noexcept { return false; }

  /// True when the policy reacts to GlobalView::grid (demand-response
  /// pressure). The DI then resolves slot claims and window openings
  /// with the stretched duty-cycle envelope. The uncoordinated baseline
  /// always returns false — it ignores grid signals by design,
  /// preserving the paper's with/without comparison.
  [[nodiscard]] virtual bool dr_aware() const noexcept { return false; }
};

}  // namespace han::sched
