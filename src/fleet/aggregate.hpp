// han::fleet — feeder-level aggregation of per-premise load series.
//
// The distribution feeder sees the *sum* of the premises it serves; the
// quantities that matter to the utility are therefore properties of the
// summed series, not of any single home: the coincident peak (what the
// transformer must actually carry), the peak-to-average ratio (how
// badly capacity is sized for the worst minute), the diversity factor
// (how much staggering across homes buys relative to every home peaking
// at once), and how many minutes the transformer spends above rating.
#pragma once

#include <cstddef>
#include <vector>

#include "metrics/timeseries.hpp"
#include "sim/time.hpp"

namespace han::fleet {

/// What the feeder transformer experiences over one scenario run.
struct FeederMetrics {
  std::size_t premises = 0;
  /// Max of the summed load — the demand the feeder must actually carry.
  double coincident_peak_kw = 0.0;
  /// Sum of each premise's individual peak (the non-coincident demand).
  double sum_premise_peaks_kw = 0.0;
  /// sum_premise_peaks / coincident_peak; >= 1, higher = more staggering.
  double diversity_factor = 1.0;
  double mean_kw = 0.0;
  /// coincident_peak / mean (PAR).
  double peak_to_average = 0.0;
  /// Largest jump between consecutive feeder samples.
  double max_step_kw = 0.0;
  /// Energy delivered over the horizon.
  double energy_mwh = 0.0;
  double transformer_capacity_kw = 0.0;
  /// Simulated minutes the feeder load exceeds the transformer rating.
  double overload_minutes = 0.0;
};

/// One feeder's slice of a sharded fleet: the summed load of its member
/// premises and the feeder-level metrics against its capacity share.
/// Single-feeder fleets have exactly one shard covering every premise.
struct FeederShard {
  std::size_t feeder = 0;
  /// Member premise count (a shard may be empty under heavy skew).
  std::size_t premises = 0;
  metrics::TimeSeries load;
  FeederMetrics metrics;
};

/// What the substation bank sees above K feeders. The interesting
/// inter-feeder quantity is the diversity between shards: feeders do
/// not peak at the same minute, so the substation's coincident peak
/// sits below the sum of per-feeder peaks.
struct SubstationMetrics {
  std::size_t feeders = 0;
  double capacity_kw = 0.0;
  /// Max of the substation (whole-fleet) series.
  double coincident_peak_kw = 0.0;
  /// Per-feeder coincident peaks, summed (each shard's worst minute,
  /// as if they all aligned).
  double sum_feeder_peaks_kw = 0.0;
  /// sum_feeder_peaks / coincident_peak; >= 1, higher = more
  /// inter-feeder staggering. 1.0 for a single feeder by construction.
  double inter_feeder_diversity = 1.0;
  /// Simulated minutes the summed load exceeds the substation rating.
  double overload_minutes = 0.0;

  // --- Tie-switch traffic (run_grid fills these from the substation's
  // transfer state machine; all zero with transfers disabled) ----------
  /// Actuations of any tie switch (transfers + give-backs).
  std::uint64_t tie_switch_operations = 0;
  std::uint64_t tie_transfers = 0;
  std::uint64_t tie_give_backs = 0;
  /// Premises moved across a tie, both directions summed.
  std::uint64_t premises_transferred = 0;
  /// Energy served to premises while away from their home feeder (kWh).
  double transferred_energy_kwh = 0.0;
};

/// Rolls per-feeder shards up into the substation view. `total` is the
/// whole-fleet series (the sum of the shard series); `capacity_kw` <= 0
/// disables overload accounting.
[[nodiscard]] SubstationMetrics substation_metrics(
    const metrics::TimeSeries& total, const std::vector<FeederShard>& shards,
    double capacity_kw);

/// Element-wise sum of premise series. All non-empty series must share
/// start and interval (the fleet engine samples every premise on one
/// grid); shorter series are zero-padded to the longest, and empty
/// series contribute nothing (they neither constrain the grid nor
/// appear in the sum). Empty input yields an empty series.
[[nodiscard]] metrics::TimeSeries sum_series(
    const std::vector<const metrics::TimeSeries*>& series);

/// Resamples to a coarser grid by averaging whole buckets: `interval`
/// must be a positive integer multiple of s.interval(). The tail
/// partial bucket is averaged over its actual size.
[[nodiscard]] metrics::TimeSeries resample(const metrics::TimeSeries& s,
                                           sim::Duration interval);

/// Derives feeder metrics from the summed series. `sum_premise_peaks_kw`
/// comes from the per-premise results (it cannot be recovered from the
/// sum); `transformer_capacity_kw` <= 0 disables overload accounting.
[[nodiscard]] FeederMetrics feeder_metrics(
    const metrics::TimeSeries& feeder_load, double transformer_capacity_kw,
    double sum_premise_peaks_kw, std::size_t premises);

}  // namespace han::fleet
