// han::fleet — named neighborhood scenario presets.
//
// A scenario is a curated FleetConfig: it fixes the premise profile,
// workload shape and transformer sizing so that benches, examples and
// CI all speak the same vocabulary ("evening_peak at 100 premises").
// The premise count and seed stay free parameters.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "fleet/engine.hpp"

namespace han::fleet {

enum class ScenarioKind : std::uint8_t {
  /// Clustered arrival surge 17:00-21:00 on top of a light background;
  /// full coordination adoption. The classic feeder stress case.
  kEveningPeak,
  /// Sustained near-continuous AC demand all day: high request rate,
  /// long exponential service, bigger homes, hotter base load.
  kHeatWave,
  /// evening_peak workload but only half the homes run the coordinated
  /// scheduler — measures what partial deployment buys the feeder.
  kMixedAdoption,
  /// Small premises, moderate uniform workload, short horizon — the
  /// thread-scaling benchmark diet.
  kScaleSweep,
  /// heat_wave with the grid layer closed-loop: the DR controller
  /// watches the transformer and sheds (duty-period stretch) when it
  /// runs persistently hot. The flagship demand-response scenario.
  kDrHeatWave,
  /// evening_peak plus a time-of-use tariff schedule (off-peak night,
  /// peak 17:00-21:00); sheds only on genuine overload.
  kTariffEvening,
  /// Sustained demand against an undersized transformer: the shed
  /// target is barely reachable, so the controller must keep rolling
  /// short sheds back-to-back (exercises unserved-shed accounting).
  kRollingShed,
  /// heat_wave sharded across 4 unbalanced feeders under one
  /// substation: each feeder runs its own DR controller and signal
  /// bus, and the substation bank accounts the inter-feeder
  /// coincidence (sum of shard peaks vs the substation peak).
  kMultiFeeder,
  /// multi_feeder with the substation tie switches enabled: an
  /// overloaded feeder's premises are re-homed onto a tied neighbor
  /// with headroom (switch latency, transfer hold, hysteretic
  /// give-back). With transfers muted this is multi_feeder exactly.
  kTieSwitch,
};

struct ScenarioInfo {
  ScenarioKind kind;
  std::string_view name;
  std::string_view description;
};

[[nodiscard]] std::string_view to_string(ScenarioKind kind) noexcept;

/// All registered scenarios, in declaration order.
[[nodiscard]] const std::vector<ScenarioInfo>& scenarios();

/// Looks a scenario up by its registry name (e.g. "evening_peak").
[[nodiscard]] std::optional<ScenarioKind> scenario_from_name(
    std::string_view name) noexcept;

/// Builds the preset FleetConfig for `kind` with the given premise
/// count and seed.
[[nodiscard]] FleetConfig make_scenario(ScenarioKind kind,
                                        std::size_t premise_count,
                                        std::uint64_t seed = 1);

}  // namespace han::fleet
