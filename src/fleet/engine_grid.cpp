// FleetEngine::run_grid — the closed control loop between the feeder
// and the premise schedulers.
//
// run() simulates every premise start-to-finish and only then looks at
// the feeder; here the premises advance in lockstep control intervals
// so the DemandResponseController can watch the aggregate *while it
// forms* and steer it. Between barriers each premise is still a
// thread-confined single-threaded simulation (the executor provides the
// happens-before edges at the barrier), the aggregate is summed in
// premise-index order, and the controller runs sequentially on the
// submitter thread — which together make the whole closed loop,
// including the signal/compliance log, byte-identical for any executor
// width.
#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "core/han_network.hpp"
#include "fleet/engine.hpp"
#include "metrics/load_monitor.hpp"

namespace han::fleet {

namespace {

/// Everything one premise needs between barriers. Thread-confined: a
/// runtime is only ever touched inside its own parallel_for task (or on
/// the submitter thread between barriers).
struct PremiseRuntime {
  PremiseSpec spec;
  sim::Simulator sim;
  std::unique_ptr<core::HanNetwork> net;
  std::unique_ptr<metrics::LoadMonitor> monitor;
  /// Instantaneous contribution (Type-2 + diurnal base) at the last
  /// barrier, read by the controller.
  double inst_kw = 0.0;
  /// Signals addressed to this premise, FIFO by delivery time.
  std::vector<std::pair<sim::TimePoint, grid::GridSignal>> pending;
  std::size_t pending_next = 0;
};

}  // namespace

GridFleetResult FleetEngine::run_grid(Executor& executor) const {
  const GridOptions& g = config_.grid;

  grid::FeederConfig feeder = g.feeder;
  if (feeder.capacity_kw <= 0.0) feeder.capacity_kw = resolved_capacity_kw();
  grid::DrConfig dr = g.dr;
  if (!g.enabled) {
    // Open loop: keep the feeder model as a passive observer.
    dr.shed_enabled = false;
    dr.tariff_windows.clear();
  }
  grid::DemandResponseController controller(feeder, dr);
  grid::SignalBus bus(g.bus, config_.premise_count,
                      sim::Rng(config_.seed).stream("grid-bus"));

  // --- Boot every premise (parallel; construction is the pricey part).
  std::vector<std::unique_ptr<PremiseRuntime>> runtimes(
      config_.premise_count);
  executor.parallel_for(
      config_.premise_count, [this, &runtimes](std::size_t i) {
        auto rt = std::make_unique<PremiseRuntime>();
        rt->spec = make_spec(i);
        // DR enrollment is a no-op until a signal is actually applied,
        // so flipping it here cannot perturb the signal-free baseline.
        rt->spec.experiment.han.dr_aware = true;
        rt->net = std::make_unique<core::HanNetwork>(
            rt->sim, rt->spec.experiment.han);
        rt->net->inject_requests(rt->spec.trace);
        core::HanNetwork* net = rt->net.get();
        rt->monitor = std::make_unique<metrics::LoadMonitor>(
            rt->sim, [net]() { return net->total_load_kw(); },
            rt->spec.experiment.sample_interval);
        rt->net->start(sim::TimePoint::epoch() + sim::milliseconds(10));
        rt->monitor->start(sim::TimePoint::epoch() +
                           rt->spec.experiment.cp_boot);
        runtimes[i] = std::move(rt);
      });

  // Only coordinated premises can act on a shed; the uncoordinated
  // baseline ignores signals by design.
  for (std::size_t i = 0; i < runtimes.size(); ++i) {
    bus.set_can_comply(i, runtimes[i]->spec.experiment.han.scheduler ==
                              core::SchedulerKind::kCoordinated);
  }

  // Feeds one aggregate sample to the controller and fans the emitted
  // signals out to the premises that will apply them: sheds land only
  // at premises that opted in and can act; a tariff tier applies to
  // every customer regardless of DR enrollment (it is informational at
  // the premise).
  const auto observe_and_fan_out = [&](sim::TimePoint at,
                                       double aggregate_kw) {
    for (const grid::GridSignal& s : controller.observe(at, aggregate_kw)) {
      for (const grid::Delivery& d : bus.publish(s)) {
        const bool applies =
            s.kind == grid::SignalKind::kTariffChange || d.complied;
        if (applies) {
          runtimes[d.premise]->pending.emplace_back(d.deliver_at, s);
        }
      }
    }
  };

  // --- Lockstep control loop.
  const sim::TimePoint end = sim::TimePoint::epoch() + config_.horizon;
  sim::TimePoint t = sim::TimePoint::epoch();
  // Prime the controller at the epoch (Type-2 load is zero before the
  // CP boots, so the aggregate is the diurnal base): the feeder model's
  // priming sample carries no interval, and anchoring it here makes the
  // overload/thermal accounting cover the whole (0, horizon] span. It
  // also emits the initial tariff tier at t=0 when a window covers
  // midnight.
  {
    double base_kw = 0.0;
    for (const auto& rt : runtimes) {
      base_kw += diurnal_base_kw(rt->spec, t);
    }
    observe_and_fan_out(t, base_kw);
  }
  while (t < end) {
    t = std::min(t + g.control_interval, end);
    executor.parallel_for(
        config_.premise_count, [&runtimes, t](std::size_t i) {
          PremiseRuntime& rt = *runtimes[i];
          // Land signals due inside this interval as simulation events
          // at their exact delivery times (deliver_at >= rt.sim.now()
          // because signals are emitted at barrier times and latency is
          // non-negative).
          while (rt.pending_next < rt.pending.size() &&
                 rt.pending[rt.pending_next].first <= t) {
            const auto& [at, signal] = rt.pending[rt.pending_next];
            ++rt.pending_next;
            core::HanNetwork* net = rt.net.get();
            const grid::GridSignal sig = signal;
            rt.sim.schedule_at(
                at, [net, sig]() { net->apply_grid_signal(sig); });
          }
          rt.sim.run_until(t);
          rt.inst_kw = rt.net->total_load_kw() +
                       diurnal_base_kw(rt.spec, t);
        });

    // Sequential from here: sum in index order, observe, fan out.
    double aggregate_kw = 0.0;
    for (const auto& rt : runtimes) aggregate_kw += rt->inst_kw;
    observe_and_fan_out(t, aggregate_kw);
  }

  // --- Collect premise results (parallel) and aggregate (sequential).
  GridFleetResult out;
  out.fleet.premises.resize(config_.premise_count);
  executor.parallel_for(
      config_.premise_count, [&runtimes, &out](std::size_t i) {
        PremiseRuntime& rt = *runtimes[i];
        rt.monitor->stop();
        out.fleet.premises[i] = assemble_premise_result(
            rt.spec, rt.monitor->series(), rt.net->stats());
      });
  finish_aggregate(out.fleet);

  out.dr = controller.stats();
  out.overload_minutes = controller.feeder().overload_minutes();
  out.hot_minutes = controller.feeder().hot_minutes();
  out.peak_temperature_pu = controller.feeder().peak_temperature_pu();
  out.opted_in_premises = bus.opted_in_count();
  for (std::size_t i = 0; i < runtimes.size(); ++i) {
    if (bus.subscriber(i).opted_in && bus.subscriber(i).can_comply) {
      ++out.complying_premises;
    }
  }
  out.signals = bus.signals();
  out.deliveries = bus.log();
  std::ostringstream log;
  bus.write_log_csv(log);
  out.signal_log_csv = log.str();
  out.comfort_gap_violations = out.fleet.service_gap_violations;
  return out;
}

GridFleetResult FleetEngine::run_grid(std::size_t threads) const {
  Executor executor(threads);
  return run_grid(executor);
}

}  // namespace han::fleet
