// FleetEngine::run_grid — the closed control loop between the feeders
// and the premise schedulers.
//
// run() simulates every premise start-to-finish and only then looks at
// the feeder; here the premises advance between control barriers so
// each feeder's DemandResponseController can watch its shard's
// aggregate *while it forms* and steer it. The fleet is partitioned
// across K feeders under one grid::Substation: every barrier stages
// each shard's contributions into its metrics::StreamAggregate (summed
// in premise-index order), routes the committed total to that shard's
// controller, and fans the emitted signals out through that shard's
// bus only — a premise never hears another feeder's head end. The
// substation bank model observes the summed total for inter-feeder
// accounting.
//
// Two barrier schedulers drive the same plumbing (GridOptions::
// control_mode):
//
//   * polled — a barrier every control_interval and every controller
//     woken at each one. Byte-identical to the fixed-interval engine
//     this mode preserves.
//   * event_driven — premises free-run until the earliest pending
//     controller deadline (registered on a sim::EventQueue via
//     sim::Timer), the monitor's predicted thermal crossing, or the
//     observe_cap safety net, with every barrier snapped up to the
//     control_interval grid. A controller is woken only when one of
//     its threshold bands crossed at the barrier or a deadline it
//     declared came due, shrinking barrier count from
//     horizon/control_interval to O(number of control decisions).
//
// Between barriers each premise is still a thread-confined
// single-threaded simulation (the executor provides the happens-before
// edges at the barrier), and the whole control plane — barrier
// placement included — runs sequentially on the submitter thread in
// feeder order, which together make the closed loop, including every
// per-feeder signal/compliance log, byte-identical for any executor
// width in both modes. With feeder_count == 1 the sharded path
// degenerates to exactly the single-feeder loop: one shard holding
// every premise, capacity share 1.0, substation == feeder.
//
// Tie switches (GridOptions::tie) hook into both schedulers at the
// barriers: actuations due at a barrier re-home the moved premises
// across the whole plane (shard member lists and buses inside the
// Substation; monitor membership, the premise-side feeder stamp and
// in-flight signal queues here) BEFORE the commit, so the controllers
// observe the post-transfer aggregates; new transfers are planned from
// the committed aggregates AFTER the controllers ran. Every tie step
// is a no-op with transfers disabled, which is what keeps the
// transfer-free outputs byte-identical to the pre-tie engine.
//
// Premises live behind the fidelity::PremiseBackend interface
// (FleetConfig::fidelity picks each premise's tier): the loop below
// only ever queues signals, advances to barriers, reads inst_kw() and
// migrates/finishes through that surface, so full-fidelity HAN sims
// and the cheap device/statistical surrogates are interchangeable
// premise-by-premise. With the default all-full policy every backend
// is the verbatim PremiseRuntime port and the outputs stay
// byte-identical to the pre-fidelity engine.
#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fidelity/backend.hpp"
#include "fleet/engine.hpp"
#include "metrics/stream_aggregate.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/telemetry.hpp"

namespace han::fleet {

namespace {

/// Rounds `t` up to the next multiple of `interval` past the epoch, so
/// adaptive barriers stay on the polled observation grid.
sim::TimePoint snap_up(sim::TimePoint t, sim::Duration interval) {
  const sim::Ticks rem = t.us() % interval.us();
  return rem == 0 ? t : sim::TimePoint{t.us() + (interval.us() - rem)};
}

/// Telemetry phase charged for a premise advancing at `tier`.
telemetry::Phase tier_phase(fidelity::FidelityTier tier) noexcept {
  switch (tier) {
    case fidelity::FidelityTier::kFull:
      return telemetry::Phase::kTierFullAdvance;
    case fidelity::FidelityTier::kDevice:
      return telemetry::Phase::kTierDeviceAdvance;
    case fidelity::FidelityTier::kStatistical:
      break;
  }
  return telemetry::Phase::kTierStatAdvance;
}

/// Trace-lane series name "sim/<event>/f<K>" (simulated-time instants).
std::string sim_series(const char* event, std::size_t feeder) {
  std::string name("sim/");
  name += event;
  name += "/f";
  name += std::to_string(feeder);
  return name;
}

/// One barrier's in-flight premise-advance graph: the run handle plus
/// one join node per feeder shard (joins[k] retires when every premise
/// homed on feeder k has reached the barrier).
struct AdvancePlan {
  Executor::GraphRun run;
  std::vector<Executor::TaskId> joins;
};

}  // namespace

GridFleetResult FleetEngine::run_grid(Executor& executor) const {
  return run_grid(executor, nullptr);
}

GridFleetResult FleetEngine::run_grid(Executor& executor,
                                      telemetry::Collector* tel) const {
  telemetry::Span run_total(tel, telemetry::Phase::kRunTotal);
  if (tel != nullptr) {
    tel->set_trace_epoch_ns(telemetry::Collector::now_ns());
  }
  const ExecutorTelemetryScope executor_scope(executor, tel);
  const GridOptions& g = config_.grid;
  const std::size_t feeders = config_.feeder_count;
  const bool event_driven = g.control_mode == ControlMode::kEventDriven;

  const double fleet_capacity_kw =
      g.feeder.capacity_kw > 0.0 ? g.feeder.capacity_kw
                                 : resolved_capacity_kw();
  /// Feeder k's effective controller tuning: the per-feeder override
  /// when engaged, the shared config otherwise — and muted entirely in
  /// open-loop runs, where every feeder model is a passive observer.
  const auto dr_for = [&g](std::size_t k) {
    grid::DrConfig dr = k < g.feeder_dr.size() && g.feeder_dr[k]
                            ? *g.feeder_dr[k]
                            : g.dr;
    if (!g.enabled) {
      dr.shed_enabled = false;
      dr.tariff_windows.clear();
    }
    return dr;
  };

  // --- Boot every premise (parallel; construction is the pricey part).
  // Each index gets the backend its fidelity tier dictates; the spec is
  // finalized BEFORE construction so every tier sees identical inputs.
  std::vector<std::unique_ptr<fidelity::PremiseBackend>> backends(
      config_.premise_count);
  {
    telemetry::Span boot(tel, telemetry::Phase::kBoot,
                         telemetry::Span::Emit::kTrace);
    if (tel == nullptr) {
      executor.parallel_for(
          config_.premise_count, [this, &g, &backends](std::size_t i) {
            PremiseSpec spec = make_spec(i);
            // DR enrollment is a no-op until a signal is actually
            // applied, so flipping it here cannot perturb the
            // signal-free baseline.
            spec.experiment.han.dr_aware = true;
            spec.experiment.han.tariff_defer = g.premise_tariff_defer;
            backends[i] = fidelity::make_backend(
                tier_of(i), std::move(spec), config_.fidelity.calibration);
          });
    } else {
      // Instrumented twin of the loop above: splits boot into the
      // spec/trace draw and the backend construction per premise.
      executor.parallel_for(
          config_.premise_count, [this, &g, &backends, tel](std::size_t i) {
            const std::uint64_t t0 = telemetry::Collector::now_ns();
            PremiseSpec spec = make_spec(i);
            spec.experiment.han.dr_aware = true;
            spec.experiment.han.tariff_defer = g.premise_tariff_defer;
            const std::uint64_t t1 = telemetry::Collector::now_ns();
            backends[i] = fidelity::make_backend(
                tier_of(i), std::move(spec), config_.fidelity.calibration);
            tel->record_span(telemetry::Phase::kBootSpec, t1 - t0);
            tel->record_span(telemetry::Phase::kBootBackend,
                             telemetry::Collector::now_ns() - t1);
          });
    }
  }

  // --- Shard the fleet and raise the substation control plane.
  // Membership is rebuilt in index order from the (deterministic) spec
  // assignment, so shard aggregates sum in the same order everywhere.
  std::vector<grid::FeederPlan> plans(feeders);
  for (std::size_t k = 0; k < feeders; ++k) {
    plans[k].feeder = g.feeder;
    plans[k].feeder.capacity_kw =
        fleet_capacity_kw * feeder_capacity_share(k);
    plans[k].dr = dr_for(k);
    plans[k].bus = g.bus;
  }
  for (std::size_t i = 0; i < backends.size(); ++i) {
    plans[backends[i]->spec().feeder].premises.push_back(i);
  }

  grid::SubstationConfig bank = g.substation;
  if (bank.capacity_kw <= 0.0) bank.capacity_kw = fleet_capacity_kw;
  // Ties engage only when the grid layer is closed-loop and there is a
  // neighbor to transfer to; the config is muted otherwise so the
  // open-loop baseline and single-feeder runs stay transfer-free.
  grid::TieConfig tie = g.tie;
  tie.enabled = tie.enabled && g.enabled && feeders > 1;
  const bool tie_enabled = tie.enabled;
  grid::Substation substation(bank, std::move(plans),
                              sim::Rng(config_.seed).stream("grid-bus"),
                              std::move(tie));
  substation.set_telemetry(tel);

  // Only coordinated premises can act on a shed; the uncoordinated
  // baseline ignores signals by design.
  for (std::size_t k = 0; k < feeders; ++k) {
    const std::vector<std::size_t>& members = substation.premises(k);
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      substation.bus(k).set_can_comply(
          pos, backends[members[pos]]->spec().experiment.han.scheduler ==
                   core::SchedulerKind::kCoordinated);
    }
  }

  // Per-feeder streaming aggregates: the observation side of the
  // control plane. Both modes commit through them (the committed total
  // is the same index-ordered sum the controllers always saw); the
  // event mode additionally arms their threshold bands and thermal
  // tracking, which is what turns samples into crossings.
  std::vector<metrics::StreamAggregate> monitors;
  monitors.reserve(feeders);
  for (std::size_t k = 0; k < feeders; ++k) {
    monitors.emplace_back(substation.premises(k).size());
    if (event_driven) {
      const grid::FeederConfig& fc = substation.controller(k).feeder().config();
      monitors[k].enable_thermal(
          {fc.capacity_kw, fc.thermal_tau, fc.overload_temp_pu});
      substation.controller(k).register_bands(monitors[k]);
    }
  }

  // Fans a batch of emitted signals out to the shard's premises that
  // will apply them: sheds land only at premises that opted in and can
  // act; a tariff tier applies to every customer on the feeder
  // regardless of DR enrollment (it is informational at the premise).
  const auto fan_out = [&](std::size_t k,
                           const std::vector<grid::GridSignal>& signals) {
    for (const grid::GridSignal& s : signals) {
      for (const grid::Delivery& d : substation.bus(k).publish(s)) {
        const bool applies =
            s.kind == grid::SignalKind::kTariffChange || d.complied;
        if (applies) {
          backends[d.premise]->queue_signal(d.deliver_at, s);
        }
      }
    }
  };

  // Stages feeder k's member contributions and commits at `at`;
  // returns the crossings (empty in polled mode — no bands).
  const auto commit_feeder = [&](std::size_t k, sim::TimePoint at,
                                 const auto& load_of)
      -> const std::vector<metrics::Crossing>& {
    metrics::StreamAggregate& agg = monitors[k];
    const std::vector<std::size_t>& members = substation.premises(k);
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      agg.update(pos, load_of(members[pos]));
    }
    return agg.commit(at);
  };

  // Builds and submits the per-shard advance graph for the barrier at
  // `t`: feeder k's member list is cut into `grain`-sized chunk tasks
  // carrying affinity k, all gated by one bodiless join node per
  // feeder, so the control plane can start feeder k's commit the
  // moment k's own premises reach the barrier instead of stalling on
  // the whole fleet. Each backend lands its queued signals at their
  // exact delivery times inside the interval (deliver_at >= the
  // backend's clock because signals are emitted at barrier times and
  // latency is non-negative). Chunked dispatch: at cheap-tier fleet
  // scale the per-index task overhead would dominate the (tiny)
  // per-premise step. Member lists are stable for the whole graph (tie
  // re-homing runs on the control plane after the joins), so tasks
  // hold plain pointers into the substation's shard vectors.
  const std::size_t grain = executor.suggested_grain(config_.premise_count);
  const auto submit_advance = [&](sim::TimePoint t) {
    Executor::TaskGraph graph;
    AdvancePlan plan;
    plan.joins.reserve(feeders);
    std::vector<Executor::TaskId> chunks;
    for (std::size_t k = 0; k < feeders; ++k) {
      const std::vector<std::size_t>* members = &substation.premises(k);
      chunks.clear();
      for (std::size_t begin = 0; begin < members->size(); begin += grain) {
        const std::size_t end_i = std::min(members->size(), begin + grain);
        if (tel == nullptr) {
          chunks.push_back(graph.add(
              [&backends, members, begin, end_i, t]() {
                for (std::size_t pos = begin; pos < end_i; ++pos) {
                  backends[(*members)[pos]]->advance_to(t);
                }
              },
              k));
        } else {
          // Instrumented twin: charges each premise's step to its
          // tier's nested phase (who is eating the barrier — the full
          // sims or the surrogates?).
          chunks.push_back(graph.add(
              [&backends, members, begin, end_i, t, tel]() {
                for (std::size_t pos = begin; pos < end_i; ++pos) {
                  const std::uint64_t t0 = telemetry::Collector::now_ns();
                  backends[(*members)[pos]]->advance_to(t);
                  tel->record_span(
                      tier_phase(backends[(*members)[pos]]->tier()),
                      telemetry::Collector::now_ns() - t0);
                }
              },
              k));
        }
      }
      plan.joins.push_back(graph.add_join(chunks));
    }
    if (tel != nullptr) tel->count("graph_submissions");
    plan.run = executor.submit_graph(std::move(graph));
    return plan;
  };

  // --- Tie-switch plumbing. Each helper is a no-op with ties disabled.
  std::vector<double> energy_lent_kwh(feeders, 0.0);
  std::vector<double> energy_borrowed_kwh(feeders, 0.0);

  // Integrates the borrowed premises' contributions over the barrier
  // interval that just elapsed (right-edge load over (t - dt, t]),
  // BEFORE actuations at t move anyone — membership during the
  // interval is the membership the interval started with.
  const auto account_transfers = [&](sim::Duration dt) {
    if (!tie_enabled || dt <= sim::Duration::zero()) return;
    for (const grid::ActiveTransfer& a : substation.active_transfers()) {
      double kw = 0.0;
      for (const std::size_t p : a.premises) kw += backends[p]->inst_kw();
      const double kwh = kw * dt.hours_f();
      energy_lent_kwh[a.from] += kwh;
      energy_borrowed_kwh[a.to] += kwh;
    }
  };

  // Actuates every switch operation due at `t` and re-homes the moved
  // premises across the engine's side of the plane: the monitor
  // membership, the premise-side feeder stamp, and the premise's
  // in-flight signal queue — undelivered signals from the old head end
  // are dropped (the switch re-registers the premise with the new
  // one; a signal applied after the move would count as misrouted).
  // Controllers on both ends forget partial holds: the step they are
  // about to observe is the switch, not organic load movement.
  const auto apply_tie_ops = [&](sim::TimePoint t) -> std::vector<grid::TieEvent> {
    if (!tie_enabled) return {};
    std::vector<grid::TieEvent> events = substation.apply_due_transfers(t);
    if (tel != nullptr && tel->tracing()) {
      for (const grid::TieEvent& ev : events) {
        tel->trace_instant(
            sim_series(ev.give_back ? "give_back" : "transfer", ev.to), t,
            static_cast<double>(ev.premises.size()));
      }
    }
    for (const grid::TieEvent& ev : events) {
      for (const std::size_t p : ev.premises) {
        // Tariff tiers travel with the feeder, not the premise: the
        // new head end only broadcasts at window boundaries, so the
        // migrated premise adopts its current tier on the way in.
        backends[p]->migrate_to_feeder(
            ev.to, substation.controller(ev.to).tier_at(t));
      }
      substation.controller(ev.from).on_membership_change(t);
      substation.controller(ev.to).on_membership_change(t);
    }
    if (!events.empty()) {
      // Contributions are restaged in full before every commit, so
      // resizing to the new member counts is the whole re-home.
      for (std::size_t k = 0; k < feeders; ++k) {
        monitors[k].resize_members(substation.premises(k).size());
      }
    }
    return events;
  };

  // Plans new transfers / give-backs from this barrier's committed
  // aggregates; call after the controllers observed.
  const auto plan_tie = [&](sim::TimePoint t, const auto& load_of) {
    if (!tie_enabled) return;
    std::vector<double> loads(feeders);
    for (std::size_t k = 0; k < feeders; ++k) loads[k] = monitors[k].total_kw();
    substation.plan_transfers(
        t, loads, [&load_of](std::size_t p) { return load_of(p); });
  };

  const sim::TimePoint end = sim::TimePoint::epoch() + config_.horizon;
  std::uint64_t barriers = 0;

  if (!event_driven) {
    // --- Polled: fixed-interval lockstep. One control barrier:
    // per-feeder aggregates (index order within the shard), each
    // routed to its own head end, then the substation total. With a
    // plan in flight, feeder k's slice of the control plane first
    // waits on k's OWN join node — feeders whose premises already
    // arrived commit while slower shards are still advancing.
    const auto control_step = [&](sim::TimePoint at, const auto& load_of,
                                  AdvancePlan* plan) {
      double total_kw = 0.0;
      for (std::size_t k = 0; k < feeders; ++k) {
        if (plan != nullptr) {
          telemetry::Span join_span(tel,
                                    telemetry::Phase::kBarrierJoinWait);
          plan->run.wait(plan->joins[k]);
          join_span.finish();
          if (tel != nullptr) tel->count("join_waits");
        }
        // Per-feeder spans keep the call order byte-identical to the
        // uninstrumented loop while still splitting commit from
        // observe/fan-out in the aggregate profile.
        telemetry::Span commit_span(tel, telemetry::Phase::kBarrierCommit);
        commit_feeder(k, at, load_of);
        const double aggregate_kw = monitors[k].total_kw();
        commit_span.finish();
        telemetry::Span observe_span(tel, telemetry::Phase::kBarrierObserve);
        fan_out(k, substation.observe_feeder(k, at, aggregate_kw));
        total_kw += aggregate_kw;
      }
      {
        telemetry::Span observe_span(tel, telemetry::Phase::kBarrierObserve);
        substation.observe_total(at, total_kw);
      }
      {
        telemetry::Span plan_span(tel, telemetry::Phase::kBarrierPlan);
        plan_tie(at, load_of);
      }
      ++barriers;
    };

    sim::TimePoint t = sim::TimePoint::epoch();
    // Prime every feeder model AND the substation bank at the epoch
    // (Type-2 load is zero before the CP boots, so each aggregate is
    // the shard's diurnal base): a FeederModel's priming sample
    // carries no interval, and anchoring all of them here makes every
    // feeder's overload/thermal accounting cover the whole
    // (0, horizon] span. It also emits the initial tariff tier at t=0
    // when a window covers midnight.
    control_step(t,
                 [&backends, t](std::size_t i) {
                   return diurnal_base_kw(backends[i]->spec(), t);
                 },
                 nullptr);
    while (t < end) {
      const sim::TimePoint prev = t;
      t = std::min(t + g.control_interval, end);
      AdvancePlan plan;
      {
        telemetry::Span advance_span(tel, telemetry::Phase::kBarrierAdvance,
                                     telemetry::Span::Emit::kTrace);
        plan = submit_advance(t);
      }
      if (tie_enabled) {
        // Transfer accounting and re-homing read premises across shard
        // boundaries, so the tied loop still needs the whole fleet at
        // the barrier before the control plane runs.
        telemetry::Span join_span(tel, telemetry::Phase::kBarrierJoinWait);
        plan.run.wait_all();
        join_span.finish();
        if (tel != nullptr) tel->count("join_waits");
      }
      // Sequential from here: the whole control plane in feeder order.
      {
        telemetry::Span account_span(tel, telemetry::Phase::kBarrierAccount);
        account_transfers(t - prev);
      }
      {
        telemetry::Span apply_span(tel, telemetry::Phase::kBarrierApply);
        apply_tie_ops(t);
      }
      control_step(t,
                   [&backends](std::size_t i) {
                     return backends[i]->inst_kw();
                   },
                   tie_enabled ? nullptr : &plan);
      // All joins have been waited on, so this returns immediately; it
      // exists to surface the first premise exception, exactly as the
      // old fleet-wide parallel_for did.
      plan.run.wait_all();
    }
  } else {
    // --- Event-driven: threshold-triggered observation. Controller
    // deadlines live as re-armable timers on one event queue; barriers
    // land at the earliest of (any deadline, any predicted thermal
    // crossing, the observe_cap safety net), snapped up to the
    // control_interval grid so every observation instant is one the
    // polled mode would also have taken.
    sim::EventQueue timers;
    std::vector<sim::Timer> deadline;
    std::vector<sim::Timer> thermal;
    deadline.reserve(feeders);
    thermal.reserve(feeders);
    for (std::size_t k = 0; k < feeders; ++k) {
      deadline.emplace_back(timers);
      thermal.emplace_back(timers);
    }
    std::vector<char> deadline_due(feeders, 0);

    // Re-arms feeder k's declared deadline after a wake changed its
    // controller state.
    const auto rearm_deadline = [&](std::size_t k) {
      const sim::TimePoint at = substation.controller(k).next_deadline();
      if (at < sim::TimePoint::max()) {
        deadline[k].arm(at, [&deadline_due, k]() { deadline_due[k] = 1; });
      } else {
        deadline[k].cancel();
      }
    };
    // Re-arms feeder k's predicted thermal-trigger crossing from the
    // monitor's committed state. The timer only forces a barrier; the
    // crossing itself (if the prediction still holds) is detected by
    // the temperature band at that barrier's commit.
    const auto rearm_thermal = [&](std::size_t k) {
      const grid::DrConfig& dr = substation.controller(k).config();
      if (!dr.shed_enabled) return;
      const sim::TimePoint at =
          monitors[k].predict_thermal_crossing(dr.trigger_temp_pu);
      if (at < sim::TimePoint::max()) {
        thermal[k].arm(at, []() {});
      } else {
        thermal[k].cancel();
      }
    };

    // Prime at the epoch with the same observation the polled loop
    // takes: every controller is woken once (initial tariff tier,
    // full-span accounting anchor), every band takes its initial
    // state, and the first deadlines are armed.
    sim::TimePoint t = sim::TimePoint::epoch();
    {
      const auto prime_load = [&backends, t](std::size_t i) {
        return diurnal_base_kw(backends[i]->spec(), t);
      };
      double total_kw = 0.0;
      for (std::size_t k = 0; k < feeders; ++k) {
        commit_feeder(k, t, prime_load);
        const grid::Observation obs{t, monitors[k].total_kw(),
                                    monitors[k].temperature_pu()};
        if (tel != nullptr) tel->count("wakes_timer");
        fan_out(k, substation.on_timer(k, obs));
        total_kw += obs.load_kw;
        rearm_deadline(k);
        rearm_thermal(k);
      }
      substation.observe_total(t, total_kw);
      plan_tie(t, prime_load);
      ++barriers;
    }

    const sim::Duration interval = g.control_interval;
    // Safety caps in whole intervals (at least one). The relaxed cap
    // is the classic observe_cap; the near cap kicks in while any
    // feeder sits close to its shed trigger band, where a long blind
    // window would coarsen shed-onset accounting (the crossing is only
    // detected at the next barrier, however late that lands).
    const auto cap_intervals = [&interval](sim::Duration d) {
      return interval *
             std::max<sim::Ticks>(
                 1, (d.us() + interval.us() - 1) / interval.us());
    };
    const sim::Duration cap_far = cap_intervals(g.observe_cap);
    const sim::Duration cap_near = cap_intervals(g.observe_cap_near);

    // True when any shed-enabled feeder's last committed state is
    // within observe_cap_near_fraction of its trigger (utilization or
    // thermal). A feeder whose shed is already active is skipped: its
    // expiry/all-clear deadlines are armed, so the onset crossing the
    // near cap exists to catch has already been caught, and a heat-wave
    // plateau would otherwise hold "near" true for the whole shed.
    // Reads only control-plane state from the previous barrier's
    // commit, so the chosen cap — and with it the barrier schedule —
    // is deterministic across executor widths.
    const auto near_trigger = [&]() {
      if (!g.adaptive_observe_cap || !g.enabled) return false;
      for (std::size_t k = 0; k < feeders; ++k) {
        const grid::DrConfig& dr = substation.controller(k).config();
        if (!dr.shed_enabled) continue;
        if (substation.controller(k).shed_active()) continue;
        const double capacity_kw =
            substation.controller(k).feeder().config().capacity_kw;
        if (capacity_kw > 0.0 &&
            monitors[k].total_kw() / capacity_kw >=
                g.observe_cap_near_fraction * dr.trigger_utilization) {
          return true;
        }
        if (monitors[k].temperature_pu() >=
            g.observe_cap_near_fraction * dr.trigger_temp_pu) {
          return true;
        }
      }
      return false;
    };

    while (t < end) {
      sim::TimePoint next = t + (near_trigger() ? cap_near : cap_far);
      if (!timers.empty()) next = std::min(next, timers.next_time());
      if (tie_enabled) {
        // A planned actuation or a hold expiry forces a barrier just
        // like a controller deadline — actuations land at the same
        // instants the polled loop would land them.
        next = std::min(next, substation.next_tie_deadline(t));
      }
      next = snap_up(next, interval);
      next = std::max(next, t + interval);  // timers never stall a barrier
      next = std::min(next, end);
      const sim::TimePoint prev = t;
      t = next;
      AdvancePlan plan;
      {
        telemetry::Span advance_span(tel, telemetry::Phase::kBarrierAdvance,
                                     telemetry::Span::Emit::kTrace);
        plan = submit_advance(t);
      }
      ++barriers;
      // Fire everything due: callbacks mark which feeders' deadlines
      // came due at (or before) this barrier. Pure control-plane
      // state, so it overlaps the premises still in flight.
      while (!timers.empty() && timers.next_time() <= t) timers.pop().fn();

      if (tie_enabled) {
        // Same cross-shard constraint as the polled loop: accounting
        // and re-homing need every shard at the barrier.
        telemetry::Span join_span(tel, telemetry::Phase::kBarrierJoinWait);
        plan.run.wait_all();
        join_span.finish();
        if (tel != nullptr) tel->count("join_waits");
      }
      {
        telemetry::Span account_span(tel, telemetry::Phase::kBarrierAccount);
        account_transfers(t - prev);
      }
      telemetry::Span apply_span(tel, telemetry::Phase::kBarrierApply);
      const std::vector<grid::TieEvent> tie_events = apply_tie_ops(t);
      apply_span.finish();

      // The horizon-end barrier wakes every controller, mirroring the
      // polled loop's final control step: a controller mid-shed with
      // its next deadline past the horizon would otherwise never
      // account the tail of its last wake into the DR time integrals.
      const bool final_barrier = t == end;
      const auto inst_load = [&backends](std::size_t i) {
        return backends[i]->inst_kw();
      };
      double total_kw = 0.0;
      for (std::size_t k = 0; k < feeders; ++k) {
        if (!tie_enabled) {
          telemetry::Span join_span(tel,
                                    telemetry::Phase::kBarrierJoinWait);
          plan.run.wait(plan.joins[k]);
          join_span.finish();
          if (tel != nullptr) tel->count("join_waits");
        }
        telemetry::Span commit_span(tel, telemetry::Phase::kBarrierCommit);
        const std::vector<metrics::Crossing>& crossings =
            commit_feeder(k, t, inst_load);
        total_kw += monitors[k].total_kw();
        const grid::Observation obs{t, monitors[k].total_kw(),
                                    monitors[k].temperature_pu()};
        commit_span.finish();
        telemetry::Span observe_span(tel, telemetry::Phase::kBarrierObserve);
        const bool crossed = !crossings.empty();
        if (crossed) {
          if (tel != nullptr) {
            tel->count("wakes_crossing");
            if (tel->tracing()) {
              tel->trace_instant(sim_series("crossing", k), t, obs.load_kw);
            }
          }
          fan_out(k, substation.on_crossing(k, obs));
        } else if (deadline_due[k] || final_barrier) {
          if (tel != nullptr) {
            tel->count("wakes_timer");
            if (tel->tracing()) {
              tel->trace_instant(sim_series("wake", k), t, obs.load_kw);
            }
          }
          fan_out(k, substation.on_timer(k, obs));
        }
        if (crossed || deadline_due[k]) rearm_deadline(k);
        deadline_due[k] = 0;
        rearm_thermal(k);
      }
      // A migration may have emptied a controller's armed/clear state
      // without waking it: refresh both ends' declared deadlines.
      for (const grid::TieEvent& ev : tie_events) {
        rearm_deadline(ev.from);
        rearm_deadline(ev.to);
      }
      {
        telemetry::Span observe_span(tel, telemetry::Phase::kBarrierObserve);
        substation.observe_total(t, total_kw);
      }
      telemetry::Span plan_span(tel, telemetry::Phase::kBarrierPlan);
      plan_tie(t, inst_load);
      plan_span.finish();
      // Returns immediately (every join was waited on); surfaces the
      // first premise exception like the old fleet-wide join did.
      plan.run.wait_all();
    }
  }

  // --- Collect premise results (parallel) and aggregate (sequential).
  GridFleetResult out;
  out.fleet.premises.resize(config_.premise_count);
  {
    telemetry::Span collect_span(tel, telemetry::Phase::kCollect,
                                 telemetry::Span::Emit::kTrace);
    executor.parallel_for(
        config_.premise_count, [&backends, &out](std::size_t i) {
          out.fleet.premises[i] = backends[i]->finish();
        });
  }
  telemetry::Span aggregate_span(tel, telemetry::Phase::kAggregate,
                                 telemetry::Span::Emit::kTrace);
  finish_aggregate(out.fleet);
  aggregate_span.finish();

  out.control_barriers = barriers;
  out.feeders.resize(feeders);
  for (std::size_t k = 0; k < feeders; ++k) {
    FeederOutcome& fo = out.feeders[k];
    const grid::DemandResponseController& c = substation.controller(k);
    const grid::SignalBus& bus = substation.bus(k);
    fo.feeder = k;
    fo.premises = substation.premises(k).size();
    fo.capacity_kw = c.feeder().config().capacity_kw;
    fo.dr = c.stats();
    fo.controller_wakes = c.feeder().observations();
    if (event_driven) {
      // The monitor committed at every barrier; the controller's own
      // model only saw its wakes. Report the finer accounting.
      fo.overload_minutes = monitors[k].overload_minutes();
      fo.hot_minutes = monitors[k].hot_minutes();
      fo.peak_temperature_pu = monitors[k].peak_temperature_pu();
      fo.peak_load_kw = monitors[k].peak_load_kw();
    } else {
      fo.overload_minutes = c.feeder().overload_minutes();
      fo.hot_minutes = c.feeder().hot_minutes();
      fo.peak_temperature_pu = c.feeder().peak_temperature_pu();
      fo.peak_load_kw = c.feeder().peak_load_kw();
    }
    fo.energy_lent_kwh = energy_lent_kwh[k];
    fo.energy_borrowed_kwh = energy_borrowed_kwh[k];
    fo.opted_in_premises = bus.opted_in_count();
    for (std::size_t pos = 0; pos < bus.premise_count(); ++pos) {
      if (bus.subscriber(pos).opted_in && bus.subscriber(pos).can_comply) {
        ++fo.complying_premises;
      }
    }
    fo.signals = bus.signals();
    fo.deliveries = bus.log();
    std::ostringstream feeder_log;
    bus.write_log_csv(feeder_log);
    fo.signal_log_csv = feeder_log.str();

    // Fleet-wide roll-ups.
    out.dr.shed_signals += fo.dr.shed_signals;
    out.dr.all_clear_signals += fo.dr.all_clear_signals;
    out.dr.tariff_signals += fo.dr.tariff_signals;
    out.dr.shed_active_minutes += fo.dr.shed_active_minutes;
    out.dr.unserved_shed_kw_minutes += fo.dr.unserved_shed_kw_minutes;
    out.dr.total_shed_latency_minutes += fo.dr.total_shed_latency_minutes;
    out.dr.sheds_reaching_target += fo.dr.sheds_reaching_target;
    out.controller_wakes += fo.controller_wakes;
    out.opted_in_premises += fo.opted_in_premises;
    out.complying_premises += fo.complying_premises;
    out.signals.insert(out.signals.end(), fo.signals.begin(),
                       fo.signals.end());
    out.deliveries.insert(out.deliveries.end(), fo.deliveries.begin(),
                          fo.deliveries.end());
  }

  // Tie-switch roll-ups: the actuation log, per-feeder lending
  // counters, and the substation totals.
  out.transfers = substation.tie_log();
  for (const grid::TieEvent& ev : out.transfers) {
    if (ev.give_back) continue;
    ++out.feeders[ev.from].transfers_out;
    ++out.feeders[ev.to].transfers_in;
    out.feeders[ev.from].premises_lent += ev.premises.size();
    out.feeders[ev.to].premises_borrowed += ev.premises.size();
  }
  const grid::TieStats& ties = substation.tie_stats();
  out.fleet.substation.tie_switch_operations = ties.switch_operations;
  out.fleet.substation.tie_transfers = ties.transfers;
  out.fleet.substation.tie_give_backs = ties.give_backs;
  out.fleet.substation.premises_transferred = ties.premise_moves;
  for (const double kwh : energy_lent_kwh) {
    out.fleet.substation.transferred_energy_kwh += kwh;
  }

  out.overload_minutes = substation.transformer().overload_minutes();
  out.hot_minutes = substation.transformer().hot_minutes();
  out.peak_temperature_pu = substation.transformer().peak_temperature_pu();
  out.substation_capacity_kw = substation.transformer().config().capacity_kw;
  std::ostringstream log;
  substation.write_log_csv(log);
  out.signal_log_csv = log.str();
  out.comfort_gap_violations = out.fleet.service_gap_violations;

  if (tel != nullptr) {
    // Mirror the result into the deterministic counter registry: every
    // value below is a simulation fact (byte-identical across executor
    // widths), so the manifest's "counters" section doubles as a
    // machine-checkable behavior snapshot.
    std::uint64_t misrouted = 0;
    std::uint64_t deferrals = 0;
    for (const PremiseResult& p : out.fleet.premises) {
      misrouted += p.network.grid_signals_misrouted;
      deferrals += p.network.tariff_deferrals;
    }
    std::size_t full = 0;
    std::size_t device = 0;
    std::size_t stat = 0;
    for (std::size_t i = 0; i < config_.premise_count; ++i) {
      switch (tier_of(i)) {
        case fidelity::FidelityTier::kFull: ++full; break;
        case fidelity::FidelityTier::kDevice: ++device; break;
        case fidelity::FidelityTier::kStatistical: ++stat; break;
      }
    }
    tel->set_counter("premises", config_.premise_count);
    tel->set_counter("feeders", feeders);
    tel->set_counter("premises_full", full);
    tel->set_counter("premises_device", device);
    tel->set_counter("premises_stat", stat);
    tel->set_counter("control_barriers", out.control_barriers);
    tel->set_counter("controller_wakes", out.controller_wakes);
    tel->set_counter("signals_emitted", out.signals.size());
    tel->set_counter("shed_signals", out.dr.shed_signals);
    tel->set_counter("all_clear_signals", out.dr.all_clear_signals);
    tel->set_counter("tariff_signals", out.dr.tariff_signals);
    tel->set_counter("signals_delivered", out.deliveries.size());
    tel->set_counter("signals_misrouted", misrouted);
    tel->set_counter("tariff_deferrals", deferrals);
    tel->set_counter("opted_in_premises", out.opted_in_premises);
    tel->set_counter("complying_premises", out.complying_premises);
    tel->set_counter("tie_switch_operations", ties.switch_operations);
    tel->set_counter("tie_transfers", ties.transfers);
    tel->set_counter("tie_give_backs", ties.give_backs);
    tel->set_counter("premises_transferred", ties.premise_moves);
    tel->set_counter("total_requests", out.fleet.total_requests);
    tel->set_counter("comfort_gap_violations", out.comfort_gap_violations);
  }
  return out;
}

GridFleetResult FleetEngine::run_grid(std::size_t threads) const {
  Executor executor(threads);
  return run_grid(executor);
}

}  // namespace han::fleet
