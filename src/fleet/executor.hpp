// han::fleet — task-graph executor for premise-parallel simulation.
//
// Premise simulations are embarrassingly parallel but wildly uneven in
// cost (device counts, workload intensity and horizon all vary per
// home), and the closed-loop engine synchronizes them at control
// barriers. A fleet-wide join would make every feeder's control
// decision wait for the slowest premise anywhere; instead the engine
// submits a dependency graph — premise tasks carrying a feeder
// affinity, plus one join node per feeder shard — and each feeder's
// control plane waits only on ITS shard's join.
//
// Scheduling machinery: one bounded lockless MPMC ring per worker
// (per-cell sequence numbers, CAS enqueue/dequeue). A worker pops its
// own ring first and steals from the other rings when dry; a blocked
// submitter helps by executing pending tasks itself, which also makes
// arbitrarily large graphs safe against ring overflow (a push that
// finds every ring full runs the task inline). Mutex/condvar are used
// only to park idle workers and waiting submitters — never on the
// task hot path.
//
// Determinism contract: the executor guarantees every node runs
// exactly once, after all its dependencies, but in an unspecified
// order on unspecified threads. Callers that need deterministic
// output must make tasks independent (per-task RNG streams), write
// results into per-index slots, and keep every ordered decision on
// the submitting thread (the engine's sequential control plane).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace han::telemetry {
class Collector;
}  // namespace han::telemetry

namespace han::fleet {

namespace detail {
struct GraphState;
}  // namespace detail

/// Fixed-size worker pool scheduling dependency graphs of tasks over
/// lockless per-worker rings. Thread-safe for concurrent submissions
/// from any number of threads; each submission is tracked by its own
/// GraphRun handle.
class Executor {
 public:
  /// Node id inside one TaskGraph (dense, starting at 0).
  using TaskId = std::size_t;

  /// Affinity wildcard: the task may start on any worker (round-robin
  /// placement; work stealing rebalances either way).
  static constexpr std::size_t kAnyWorker = static_cast<std::size_t>(-1);

  /// A dependency graph under construction. Build nodes with add()
  /// (leaf tasks) and add_join() (nodes gated on earlier nodes), then
  /// hand the graph to Executor::submit_graph. Dependencies must point
  /// at already-created nodes, so a TaskGraph is a DAG by construction.
  class TaskGraph {
   public:
    /// Adds a leaf task. `affinity` hints the worker ring the task is
    /// first queued on (feeder shard id in the engine); kAnyWorker
    /// deals round-robin. Returns the node's id.
    TaskId add(std::function<void()> fn, std::size_t affinity = kAnyWorker);

    /// Adds a node that becomes runnable only after every node in
    /// `deps` has retired. With an empty `fn` the node is a pure join
    /// marker: it retires the instant its last dependency does and
    /// counts as no executed task. With a body it is a continuation
    /// and runs like any task once unblocked.
    TaskId add_join(std::vector<TaskId> deps,
                    std::function<void()> fn = nullptr,
                    std::size_t affinity = kAnyWorker);

    /// Number of nodes added so far.
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

    /// Pre-sizes the node table (parallel_for knows its n up front).
    void reserve(std::size_t nodes) { nodes_.reserve(nodes); }

   private:
    friend class Executor;
    friend struct detail::GraphState;
    struct Node {
      std::function<void()> fn;
      std::vector<TaskId> deps;
      std::size_t affinity = kAnyWorker;
    };
    std::vector<Node> nodes_;
  };

  /// Handle to one submitted graph. wait()/wait_all() block until the
  /// named node (or the whole graph) retires, executing pending tasks
  /// from the pool while they wait, so a submitter can never deadlock
  /// the pool it is waiting on. The destructor waits for the whole
  /// graph (tasks reference caller-owned state), swallowing errors;
  /// call wait_all() first to observe task exceptions.
  class GraphRun {
   public:
    GraphRun() noexcept = default;
    ~GraphRun();

    GraphRun(GraphRun&& other) noexcept = default;
    GraphRun& operator=(GraphRun&& other) noexcept;
    GraphRun(const GraphRun&) = delete;
    GraphRun& operator=(const GraphRun&) = delete;

    /// True once `node` has retired (its body ran; for a pure join,
    /// all its dependencies retired).
    [[nodiscard]] bool done(TaskId node) const noexcept;

    /// Blocks until `node` retires, helping execute pending tasks.
    /// Does not rethrow task exceptions (wait_all does).
    void wait(TaskId node);

    /// Blocks until every node retired, then rethrows the first task
    /// exception (in completion order), if any.
    void wait_all();

   private:
    friend class Executor;
    explicit GraphRun(std::shared_ptr<detail::GraphState> state) noexcept
        : state_(std::move(state)) {}
    std::shared_ptr<detail::GraphState> state_;
  };

  /// Spawns `threads` workers (0 = std::thread::hardware_concurrency,
  /// at least 1). Workers live until destruction. Every GraphRun must
  /// be destroyed before its Executor.
  explicit Executor(std::size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept;

  /// Submits `graph` for execution and returns its run handle. Root
  /// nodes are queued immediately; dependent nodes as their
  /// dependencies retire. Safe to call from multiple threads at once
  /// (the rings are MPMC), including from inside another graph's task.
  [[nodiscard]] GraphRun submit_graph(TaskGraph&& graph);

  /// Runs fn(0) .. fn(n-1) across the workers and blocks until all
  /// complete. If any task throws, the first exception (in completion
  /// order) is rethrown after the remaining tasks finish. Thin adapter
  /// over submit_graph: one leaf node per index, one wait_all.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Range-chunked variant: runs fn(begin, end) over contiguous blocks
  /// of `grain` indices (the tail block is shorter). One task per
  /// block instead of one per index — at 100k+ cheap-tier premises per
  /// barrier the per-task dispatch otherwise dominates the work.
  /// Degenerate inputs are guarded here, not by caller discipline:
  /// n == 0 runs nothing, grain == 0 is clamped to 1, grain > n runs
  /// one block [0, n). Callers must keep per-index outputs
  /// independent; block boundaries carry no ordering guarantee.
  void parallel_for_ranges(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// A block size balancing dispatch overhead against steal
  /// granularity: ~8 blocks per worker, capped at 1024 indices.
  [[nodiscard]] std::size_t suggested_grain(std::size_t n) const noexcept;

  /// Attaches (or, with nullptr, detaches) a telemetry sink. While
  /// attached, every parallel_for records a kExecutorDispatch span,
  /// and every graph flushes its task/steal activity when its
  /// submitter finishes waiting. Call only between submissions —
  /// typically via ExecutorTelemetryScope for one engine run.
  void set_telemetry(telemetry::Collector* collector) noexcept;

 private:
  friend struct detail::GraphState;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII attach/detach of a telemetry sink to an Executor for the
/// duration of one engine run (detaches even on exception so a dead
/// Collector is never left wired into a long-lived executor).
class ExecutorTelemetryScope {
 public:
  ExecutorTelemetryScope(Executor& executor,
                         telemetry::Collector* collector) noexcept
      : executor_(executor) {
    executor_.set_telemetry(collector);
  }
  ~ExecutorTelemetryScope() { executor_.set_telemetry(nullptr); }

  ExecutorTelemetryScope(const ExecutorTelemetryScope&) = delete;
  ExecutorTelemetryScope& operator=(const ExecutorTelemetryScope&) = delete;

 private:
  Executor& executor_;
};

}  // namespace han::fleet
