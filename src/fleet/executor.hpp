// han::fleet — work-stealing executor for premise-parallel simulation.
//
// Premise simulations are embarrassingly parallel but wildly uneven in
// cost (device counts, workload intensity and horizon all vary per
// home), so a static partition of premises over threads leaves workers
// idle behind the largest homes. The executor keeps one task deque per
// worker: a worker pops its own deque from the front and, when empty,
// steals from the back of a victim's deque, so load balances itself.
//
// Determinism contract: the executor guarantees every index is executed
// exactly once, but in an unspecified order on unspecified threads.
// Callers that need deterministic output must make tasks independent
// (per-task RNG streams) and write results into per-index slots.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace han::telemetry {
class Collector;
}  // namespace han::telemetry

namespace han::fleet {

/// Fixed-size worker pool with per-worker deques and work stealing.
/// Thread-safe for sequential parallel_for calls from one submitter
/// thread; concurrent submissions are serialized internally.
class Executor {
 public:
  /// Spawns `threads` workers (0 = std::thread::hardware_concurrency,
  /// at least 1). Workers live until destruction.
  explicit Executor(std::size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept;

  /// Runs fn(0) .. fn(n-1) across the workers and blocks until all
  /// complete. If any task throws, the first exception (in completion
  /// order) is rethrown after the remaining tasks finish.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Range-chunked variant: runs fn(begin, end) over contiguous blocks
  /// of `grain` indices (the tail block is shorter). One task per
  /// block instead of one per index — at 100k+ cheap-tier premises per
  /// barrier the per-task dispatch otherwise dominates the work.
  /// Callers must keep per-index outputs independent; block boundaries
  /// carry no ordering guarantee.
  void parallel_for_ranges(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// A block size balancing dispatch overhead against steal
  /// granularity: ~8 blocks per worker, capped at 1024 indices.
  [[nodiscard]] std::size_t suggested_grain(std::size_t n) const noexcept;

  /// Attaches (or, with nullptr, detaches) a telemetry sink. While
  /// attached, every parallel_for records a kExecutorDispatch span plus
  /// per-job task/steal activity. Call only between jobs — typically
  /// via ExecutorTelemetryScope for the duration of one engine run.
  void set_telemetry(telemetry::Collector* collector) noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII attach/detach of a telemetry sink to an Executor for the
/// duration of one engine run (detaches even on exception so a dead
/// Collector is never left wired into a long-lived executor).
class ExecutorTelemetryScope {
 public:
  ExecutorTelemetryScope(Executor& executor,
                         telemetry::Collector* collector) noexcept
      : executor_(executor) {
    executor_.set_telemetry(collector);
  }
  ~ExecutorTelemetryScope() { executor_.set_telemetry(nullptr); }

  ExecutorTelemetryScope(const ExecutorTelemetryScope&) = delete;
  ExecutorTelemetryScope& operator=(const ExecutorTelemetryScope&) = delete;

 private:
  Executor& executor_;
};

}  // namespace han::fleet
