#include "fleet/executor.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace han::fleet {

struct Executor::Impl {
  struct Shard {
    std::mutex mutex;
    std::deque<std::size_t> tasks;
  };

  /// One parallel_for invocation. Heap-allocated and shared with the
  /// workers so a worker still scanning for steals can outlive the
  /// submitter's wait without touching freed shards.
  struct Job {
    explicit Job(std::size_t worker_count) : shards(worker_count) {}

    const std::function<void(std::size_t)>* fn = nullptr;
    std::vector<Shard> shards;
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  explicit Impl(std::size_t threads) {
    workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers.emplace_back([this, i]() { worker_loop(i); });
    }
  }

  ~Impl() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
    }
    wake_cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  void worker_loop(std::size_t wid) {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      wake_cv.wait(lock, [this]() { return shutdown || job != nullptr; });
      if (shutdown) return;
      const std::shared_ptr<Job> j = job;
      lock.unlock();
      run_tasks(*j, wid);
      lock.lock();
      // No runnable task found anywhere. If the job is still in flight
      // (its last tasks are executing on other workers), sleep until it
      // is retired rather than spinning over empty shards.
      if (job == j) {
        wake_cv.wait(lock,
                     [this, &j]() { return shutdown || job != j; });
      }
    }
  }

  void run_tasks(Job& j, std::size_t wid) {
    const std::size_t w = j.shards.size();
    telemetry::Collector* const tel =
        telemetry.load(std::memory_order_relaxed);
    std::uint64_t tasks_run = 0;
    std::uint64_t steals = 0;
    for (;;) {
      std::size_t index = 0;
      bool found = false;
      {  // Own deque: LIFO-free front pop (indices were dealt round-robin).
        Shard& own = j.shards[wid];
        const std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
          index = own.tasks.front();
          own.tasks.pop_front();
          found = true;
        }
      }
      if (!found) {  // Steal from the back of the first non-empty victim.
        for (std::size_t off = 1; off < w && !found; ++off) {
          Shard& victim = j.shards[(wid + off) % w];
          const std::lock_guard<std::mutex> lock(victim.mutex);
          if (!victim.tasks.empty()) {
            index = victim.tasks.back();
            victim.tasks.pop_back();
            found = true;
          }
        }
        if (found) ++steals;
      }
      if (!found) {
        // One flush per worker per job keeps the hot loop free of
        // shared-counter contention.
        if (tel != nullptr && tasks_run != 0) {
          tel->add_executor_activity(tasks_run, steals);
        }
        return;
      }
      ++tasks_run;

      try {
        (*j.fn)(index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(j.error_mutex);
        if (!j.error) j.error = std::current_exception();
      }
      if (j.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task: retire the job and release submitter + idle workers.
        {
          const std::lock_guard<std::mutex> lock(mutex);
          job = nullptr;
        }
        done_cv.notify_all();
        wake_cv.notify_all();
      }
    }
  }

  std::vector<std::thread> workers;
  std::mutex mutex;                  // guards job / shutdown
  std::condition_variable wake_cv;   // workers wait for a job
  std::condition_variable done_cv;   // submitters wait for retirement
  std::mutex submit_mutex;           // serializes parallel_for callers
  std::shared_ptr<Job> job;
  bool shutdown = false;
  /// Atomic so workers mid-steal-scan may read it while a submitter
  /// swaps sinks between jobs; set_telemetry's contract (call between
  /// jobs) keeps the value stable for the span of any one job.
  std::atomic<telemetry::Collector*> telemetry{nullptr};
};

namespace {

std::size_t resolve_thread_count(std::size_t threads) {
  // A wildly large request is a caller bug (e.g. a negative count pushed
  // through size_t); fail loudly instead of dying inside std::vector.
  constexpr std::size_t kMaxThreads = 4096;
  if (threads > kMaxThreads) {
    throw std::invalid_argument("Executor: thread count too large");
  }
  if (threads > 0) return threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

Executor::Executor(std::size_t threads)
    : impl_(std::make_unique<Impl>(resolve_thread_count(threads))) {}

Executor::~Executor() = default;

std::size_t Executor::thread_count() const noexcept {
  return impl_->workers.size();
}

void Executor::set_telemetry(telemetry::Collector* collector) noexcept {
  impl_->telemetry.store(collector, std::memory_order_relaxed);
}

void Executor::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  telemetry::Collector* const tel =
      impl_->telemetry.load(std::memory_order_relaxed);
  if (tel != nullptr) tel->count_parallel_for();
  telemetry::Span dispatch(tel, telemetry::Phase::kExecutorDispatch);
  const std::lock_guard<std::mutex> submit(impl_->submit_mutex);

  auto j = std::make_shared<Impl::Job>(impl_->workers.size());
  j->fn = &fn;
  j->remaining.store(n, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    j->shards[i % j->shards.size()].tasks.push_back(i);
  }

  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->job = j;
  impl_->wake_cv.notify_all();
  impl_->done_cv.wait(lock, [this]() { return impl_->job == nullptr; });
  lock.unlock();

  if (j->error) std::rethrow_exception(j->error);
}

void Executor::parallel_for_ranges(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t blocks = (n + grain - 1) / grain;
  parallel_for(blocks, [n, grain, &fn](std::size_t b) {
    const std::size_t begin = b * grain;
    fn(begin, std::min(n, begin + grain));
  });
}

std::size_t Executor::suggested_grain(std::size_t n) const noexcept {
  const std::size_t workers = std::max<std::size_t>(1, thread_count());
  return std::clamp<std::size_t>(n / (workers * 8), 1, 1024);
}

}  // namespace han::fleet
