#include "fleet/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace han::fleet {

namespace detail {

// A scheduled unit: node `node` of graph `graph`, held by value in the
// ring cells. The raw pointer is safe because GraphState::self (dropped
// only when the last node retires) and the submitter's GraphRun both
// hold shared ownership, so a graph outlives every queued task.
struct QueuedTask {
  GraphState* graph = nullptr;
  std::uint32_t node = 0;
};

// Bounded lockless MPMC ring (per-cell sequence numbers): each cell's
// sequence encodes whether it is ready for the next push or the next
// pop, so producers and consumers synchronize on one CAS over their
// position counter plus one release store per cell — no locks, no
// per-operation allocation. A full ring rejects the push (the caller
// falls back to another ring or runs the task inline), so the queue
// never blocks and never grows.
class TaskRing {
 public:
  // 4096 slots/worker: deep enough that chunked premise graphs at
  // engine grain sizes never spill, small enough that a pool of rings
  // stays cache-resident. Must be a power of two for the mask.
  static constexpr std::size_t kCapacity = 4096;

  TaskRing() {
    for (std::size_t i = 0; i < kCapacity; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  TaskRing(const TaskRing&) = delete;
  TaskRing& operator=(const TaskRing&) = delete;

  // False when the ring is full (caller must place the task elsewhere).
  bool push(QueuedTask task) noexcept {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & kMask];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.task = task;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full: a whole lap of consumers is outstanding
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  // False when the ring is empty.
  bool pop(QueuedTask& out) noexcept {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & kMask];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          out = cell.task;
          cell.seq.store(pos + kMask + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  static constexpr std::size_t kMask = kCapacity - 1;
  static_assert((kCapacity & kMask) == 0, "capacity must be a power of two");

  struct Cell {
    std::atomic<std::size_t> seq{0};
    QueuedTask task;
  };

  Cell cells_[kCapacity];
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

// Runtime state of one submitted graph. The node/state vectors are
// sized once at submit and never move afterwards, so workers index
// them freely while only the atomics mutate.
struct GraphState {
  struct NodeState {
    std::atomic<std::size_t> pending{0};  // unretired dependencies
    std::atomic<bool> done{false};
  };

  explicit GraphState(std::vector<Executor::TaskGraph::Node>&& graph_nodes)
      : nodes(std::move(graph_nodes)), states(nodes.size()) {}

  std::vector<Executor::TaskGraph::Node> nodes;
  std::vector<NodeState> states;
  // dependents[i] = nodes unblocked (in part) by node i retiring.
  std::vector<std::vector<std::uint32_t>> dependents;
  std::atomic<std::size_t> unfinished{0};

  // First task exception wins (completion order); rethrown by the
  // submitter in wait_all().
  std::mutex error_mutex;
  std::exception_ptr error;

  // Sleep channel for threads blocked in wait()/wait_all() once they
  // run out of tasks to help with. `waiters` gates the notify so the
  // uncontended retire path never touches the mutex.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::atomic<int> waiters{0};

  // Scheduling-activity tallies, flushed into `tel` exactly once by
  // the submitter thread (wait_all or GraphRun destruction).
  telemetry::Collector* tel = nullptr;
  std::atomic<std::uint64_t> tasks_run{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<bool> flushed{false};

  // Keeps the graph alive until its last node retires even if the
  // GraphRun handle is destroyed mid-flight; the thread that retires
  // the final node drops it after the last notify.
  std::shared_ptr<GraphState> self;

  Executor::Impl* impl = nullptr;
};

}  // namespace detail

namespace {

std::size_t resolve_thread_count(std::size_t threads) {
  // A wildly large request is a caller bug (e.g. a negative count pushed
  // through size_t); fail loudly instead of dying inside std::vector.
  constexpr std::size_t kMaxThreads = 4096;
  if (threads > kMaxThreads) {
    throw std::invalid_argument("Executor: thread count too large");
  }
  if (threads > 0) return threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

// One-shot flush of a graph's scheduling tallies into its collector.
// Runs on the submitter thread; idempotent via the exchange so the
// GraphRun destructor after a wait_all() doesn't double-count.
void flush_activity(detail::GraphState& g) {
  if (g.tel == nullptr) return;
  if (g.flushed.exchange(true, std::memory_order_acq_rel)) return;
  const std::uint64_t tasks = g.tasks_run.load(std::memory_order_relaxed);
  if (tasks != 0) {
    g.tel->add_executor_activity(tasks,
                                 g.steals.load(std::memory_order_relaxed));
  }
}

}  // namespace

struct Executor::Impl {
  explicit Impl(std::size_t threads)
      : width(resolve_thread_count(threads)),
        rings(std::make_unique<detail::TaskRing[]>(width)) {
    workers.reserve(width);
    for (std::size_t w = 0; w < width; ++w) {
      workers.emplace_back([this, w]() { worker_loop(w); });
    }
  }

  ~Impl() {
    {
      const std::lock_guard<std::mutex> lock(sleep_mutex);
      shutdown.store(true, std::memory_order_seq_cst);
    }
    sleep_cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  // --- task intake ----------------------------------------------------

  // Queues `task`, preferring ring `hint` (affinity or round-robin
  // deal). When every ring is full the task runs on the calling thread
  // instead: progress stays guaranteed and memory bounded, and since a
  // queued task never depends on an unqueued one, inline execution
  // cannot deadlock.
  void dispatch(detail::QueuedTask task, std::size_t hint) {
    const std::size_t start = hint % width;
    for (std::size_t off = 0; off < width; ++off) {
      if (rings[(start + off) % width].push(task)) {
        wake_workers();
        return;
      }
    }
    execute(task, /*stolen=*/false);
  }

  std::size_t next_hint() noexcept {
    return deal_rr.fetch_add(1, std::memory_order_relaxed);
  }

  // --- execution ------------------------------------------------------

  // Runs one node's body and retires it. `stolen` is true when the
  // task was popped from a ring other than the executing worker's own.
  void execute(const detail::QueuedTask& task, bool stolen) {
    detail::GraphState& g = *task.graph;
    const auto& node = g.nodes[task.node];
    if (node.fn) {
      try {
        node.fn();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(g.error_mutex);
        if (!g.error) g.error = std::current_exception();
      }
      if (g.tel != nullptr) {
        g.tasks_run.fetch_add(1, std::memory_order_relaxed);
        if (stolen) g.steals.fetch_add(1, std::memory_order_relaxed);
      }
    }
    retire(g, task.node);
  }

  // Marks the node done, cascades to its dependents, and releases the
  // graph when this was the last node. Bodiless joins retire inline
  // (recursively) rather than round-tripping through a ring; bodied
  // dependents are queued with their own affinity. `g` may be
  // destroyed by the time this returns.
  void retire(detail::GraphState& g, std::uint32_t node) {
    g.states[node].done.store(true, std::memory_order_seq_cst);
    if (g.waiters.load(std::memory_order_seq_cst) > 0) {
      { const std::lock_guard<std::mutex> lock(g.done_mutex); }
      g.done_cv.notify_all();
    }
    for (const std::uint32_t dep : g.dependents[node]) {
      if (g.states[dep].pending.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        if (!g.nodes[dep].fn) {
          retire(g, dep);
        } else {
          const std::size_t aff = g.nodes[dep].affinity;
          dispatch({&g, dep}, aff == kAnyWorker ? next_hint() : aff);
        }
      }
    }
    if (g.unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last node: wake waiters unconditionally (wait_all predicates
      // watch `unfinished`), then drop the graph's self-reference.
      { const std::lock_guard<std::mutex> lock(g.done_mutex); }
      g.done_cv.notify_all();
      const std::shared_ptr<detail::GraphState> release = std::move(g.self);
    }
  }

  // Pops and runs one task on behalf of worker `wid` (own ring first,
  // then steal). Returns false when every ring came up empty.
  bool run_one(std::size_t wid) {
    detail::QueuedTask task;
    if (rings[wid].pop(task)) {
      execute(task, /*stolen=*/false);
      return true;
    }
    for (std::size_t off = 1; off < width; ++off) {
      if (rings[(wid + off) % width].pop(task)) {
        execute(task, /*stolen=*/true);
        return true;
      }
    }
    return false;
  }

  // Same, for non-worker threads helping while they wait. No home
  // ring, so scan from a rotating start; helped tasks count as plain
  // tasks, not steals (the submitter is doing its own graph's work).
  bool help_one() {
    const std::size_t start =
        help_rr.fetch_add(1, std::memory_order_relaxed) % width;
    detail::QueuedTask task;
    for (std::size_t off = 0; off < width; ++off) {
      if (rings[(start + off) % width].pop(task)) {
        execute(task, /*stolen=*/false);
        return true;
      }
    }
    return false;
  }

  // Blocks until `pred()` holds, helping execute queued tasks while
  // any are available and parking on the graph's condvar otherwise.
  // The pre-wait recheck under the mutex plus the seq_cst done-store /
  // waiters-load pairing in retire() closes the missed-wakeup window.
  template <typename Pred>
  void wait_helping(detail::GraphState& g, Pred pred) {
    for (;;) {
      if (pred()) return;
      if (help_one()) continue;
      std::unique_lock<std::mutex> lock(g.done_mutex);
      if (pred()) return;
      g.waiters.fetch_add(1, std::memory_order_seq_cst);
      g.done_cv.wait(lock, pred);
      g.waiters.fetch_sub(1, std::memory_order_seq_cst);
      return;
    }
  }

  // --- worker parking -------------------------------------------------

  void wake_workers() {
    work_epoch.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers.load(std::memory_order_seq_cst) > 0) {
      { const std::lock_guard<std::mutex> lock(sleep_mutex); }
      sleep_cv.notify_all();
    }
  }

  void worker_loop(std::size_t wid) {
    for (;;) {
      // Snapshot the epoch BEFORE scanning: a push landing after the
      // scan bumps the epoch, so the wait predicate sees a changed
      // epoch and skips the sleep (no missed wakeup).
      const std::uint64_t epoch = work_epoch.load(std::memory_order_seq_cst);
      if (run_one(wid)) continue;
      if (shutdown.load(std::memory_order_seq_cst)) return;
      std::unique_lock<std::mutex> lock(sleep_mutex);
      sleepers.fetch_add(1, std::memory_order_seq_cst);
      sleep_cv.wait(lock, [this, epoch]() {
        return shutdown.load(std::memory_order_seq_cst) ||
               work_epoch.load(std::memory_order_seq_cst) != epoch;
      });
      sleepers.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  const std::size_t width;
  std::unique_ptr<detail::TaskRing[]> rings;
  std::vector<std::thread> workers;

  std::atomic<std::size_t> deal_rr{0};  // round-robin placement of roots
  std::atomic<std::size_t> help_rr{0};  // rotating start for helpers

  std::atomic<std::uint64_t> work_epoch{0};
  std::atomic<int> sleepers{0};
  std::atomic<bool> shutdown{false};
  std::mutex sleep_mutex;
  std::condition_variable sleep_cv;

  /// Atomic so submit_graph may read it while another thread swaps
  /// sinks between runs; set_telemetry's contract (call between
  /// submissions) keeps the value stable for any one graph.
  std::atomic<telemetry::Collector*> telemetry{nullptr};
};

// --- TaskGraph --------------------------------------------------------

Executor::TaskId Executor::TaskGraph::add(std::function<void()> fn,
                                          std::size_t affinity) {
  const TaskId id = nodes_.size();
  nodes_.push_back(Node{std::move(fn), {}, affinity});
  return id;
}

Executor::TaskId Executor::TaskGraph::add_join(std::vector<TaskId> deps,
                                               std::function<void()> fn,
                                               std::size_t affinity) {
  const TaskId id = nodes_.size();
  for (const TaskId dep : deps) {
    // Forward references are impossible by construction (ids are handed
    // out densely), so this catches typos and stale ids from another
    // graph before they corrupt the pending counts.
    if (dep >= id) {
      throw std::invalid_argument("TaskGraph: node " + std::to_string(id) +
                                  " depends on nonexistent node " +
                                  std::to_string(dep));
    }
  }
  nodes_.push_back(Node{std::move(fn), std::move(deps), affinity});
  return id;
}

// --- GraphRun ---------------------------------------------------------

Executor::GraphRun::~GraphRun() {
  if (!state_) return;
  state_->impl->wait_helping(*state_, [g = state_.get()]() {
    return g->unfinished.load(std::memory_order_seq_cst) == 0;
  });
  flush_activity(*state_);
}

Executor::GraphRun& Executor::GraphRun::operator=(GraphRun&& other) noexcept {
  if (this != &other) {
    if (state_) {
      state_->impl->wait_helping(*state_, [g = state_.get()]() {
        return g->unfinished.load(std::memory_order_seq_cst) == 0;
      });
      flush_activity(*state_);
    }
    state_ = std::move(other.state_);
  }
  return *this;
}

bool Executor::GraphRun::done(TaskId node) const noexcept {
  return state_ != nullptr &&
         state_->states[node].done.load(std::memory_order_seq_cst);
}

void Executor::GraphRun::wait(TaskId node) {
  if (!state_) return;
  state_->impl->wait_helping(*state_, [g = state_.get(), node]() {
    return g->states[node].done.load(std::memory_order_seq_cst);
  });
}

void Executor::GraphRun::wait_all() {
  if (!state_) return;
  state_->impl->wait_helping(*state_, [g = state_.get()]() {
    return g->unfinished.load(std::memory_order_seq_cst) == 0;
  });
  flush_activity(*state_);
  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(state_->error_mutex);
    error = state_->error;
  }
  if (error) std::rethrow_exception(error);
}

// --- Executor ---------------------------------------------------------

Executor::Executor(std::size_t threads)
    : impl_(std::make_unique<Impl>(threads)) {}

Executor::~Executor() = default;

std::size_t Executor::thread_count() const noexcept { return impl_->width; }

void Executor::set_telemetry(telemetry::Collector* collector) noexcept {
  impl_->telemetry.store(collector, std::memory_order_release);
}

Executor::GraphRun Executor::submit_graph(TaskGraph&& graph) {
  auto state = std::make_shared<detail::GraphState>(std::move(graph.nodes_));
  detail::GraphState& g = *state;
  g.impl = impl_.get();
  g.tel = impl_->telemetry.load(std::memory_order_acquire);
  const std::size_t n = g.nodes.size();
  if (n == 0) return GraphRun(std::move(state));

  g.unfinished.store(n, std::memory_order_relaxed);
  g.dependents.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& deps = g.nodes[i].deps;
    g.states[i].pending.store(deps.size(), std::memory_order_relaxed);
    for (const TaskId dep : deps) {
      g.dependents[dep].push_back(static_cast<std::uint32_t>(i));
    }
  }
  g.self = state;

  // Queue the roots. Retirements may start cascading concurrently with
  // this loop — safe, because everything workers touch was initialized
  // above and the GraphRun's shared_ptr keeps the graph alive even if
  // the last node retires (and releases `self`) before we return.
  for (std::size_t i = 0; i < n; ++i) {
    if (!g.nodes[i].deps.empty()) continue;
    if (!g.nodes[i].fn) {
      // Dependency-free pure join: nothing to run, retire in place.
      impl_->retire(g, static_cast<std::uint32_t>(i));
      continue;
    }
    const std::size_t aff = g.nodes[i].affinity;
    impl_->dispatch({&g, static_cast<std::uint32_t>(i)},
                    aff == kAnyWorker ? impl_->next_hint() : aff);
  }
  return GraphRun(std::move(state));
}

void Executor::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  telemetry::Collector* const tel =
      impl_->telemetry.load(std::memory_order_acquire);
  if (tel != nullptr) tel->count_parallel_for();
  telemetry::Span dispatch(tel, telemetry::Phase::kExecutorDispatch);

  TaskGraph graph;
  graph.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    graph.add([&fn, i]() { fn(i); });
  }
  GraphRun run = submit_graph(std::move(graph));
  run.wait_all();
}

void Executor::parallel_for_ranges(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;         // no blocks: fn is never called
  if (grain == 0) grain = 1;  // a zero grain would loop forever
  if (grain > n) grain = n;   // one block covering exactly [0, n)
  const std::size_t blocks = (n + grain - 1) / grain;
  parallel_for(blocks, [n, grain, &fn](std::size_t b) {
    const std::size_t begin = b * grain;
    fn(begin, std::min(n, begin + grain));
  });
}

std::size_t Executor::suggested_grain(std::size_t n) const noexcept {
  return std::clamp<std::size_t>(n / (impl_->width * 8), 1, 1024);
}

}  // namespace han::fleet
