#include "fleet/scenario.hpp"

namespace han::fleet {

std::string_view to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kEveningPeak:
      return "evening_peak";
    case ScenarioKind::kHeatWave:
      return "heat_wave";
    case ScenarioKind::kMixedAdoption:
      return "mixed_adoption";
    case ScenarioKind::kScaleSweep:
      return "scale_sweep";
    case ScenarioKind::kDrHeatWave:
      return "dr_heat_wave";
    case ScenarioKind::kTariffEvening:
      return "tariff_evening";
    case ScenarioKind::kRollingShed:
      return "rolling_shed";
    case ScenarioKind::kMultiFeeder:
      return "multi_feeder";
    case ScenarioKind::kTieSwitch:
      return "tie_switch";
  }
  return "?";
}

const std::vector<ScenarioInfo>& scenarios() {
  static const std::vector<ScenarioInfo> kScenarios{
      {ScenarioKind::kEveningPeak, "evening_peak",
       "17:00-21:00 clustered arrival surge, full coordination"},
      {ScenarioKind::kHeatWave, "heat_wave",
       "sustained all-day AC demand, larger homes, hot base load"},
      {ScenarioKind::kMixedAdoption, "mixed_adoption",
       "evening peak with 50% coordinated / 50% uncoordinated homes"},
      {ScenarioKind::kScaleSweep, "scale_sweep",
       "small premises, short horizon; scaling diet (pairs with "
       "--fidelity=stat for 100k+ fleets)"},
      {ScenarioKind::kDrHeatWave, "dr_heat_wave",
       "heat wave with closed-loop demand-response sheds (run_grid)"},
      {ScenarioKind::kTariffEvening, "tariff_evening",
       "evening peak with time-of-use tariff signals (run_grid)"},
      {ScenarioKind::kRollingShed, "rolling_shed",
       "undersized transformer; back-to-back rolling sheds (run_grid)"},
      {ScenarioKind::kMultiFeeder, "multi_feeder",
       "heat wave sharded across 4 skewed feeders under a substation"},
      {ScenarioKind::kTieSwitch, "tie_switch",
       "multi_feeder with tie-switch load transfer between feeders"},
  };
  return kScenarios;
}

std::optional<ScenarioKind> scenario_from_name(std::string_view name) noexcept {
  for (const ScenarioInfo& s : scenarios()) {
    if (s.name == name) return s.kind;
  }
  return std::nullopt;
}

namespace {

/// 17:00-21:00 clustered surge on a light background (evening_peak and
/// its derivatives).
void apply_evening_peak(FleetConfig& cfg, std::size_t premise_count) {
  cfg.horizon = sim::hours(24);
  cfg.profile.surge = true;
  cfg.profile.surge_start = sim::hours(17);
  cfg.profile.surge_end = sim::hours(21);
  cfg.profile.surge_clusters_per_hour = 2.0;
  cfg.profile.surge_cluster_size = 6;
  cfg.profile.base_rate_per_device_hour = 0.1;
  cfg.profile.coordination_adoption = 1.0;
  // Sized for the diversified evening load, not the stacked worst
  // case: overload minutes measure how often stacking still wins.
  cfg.transformer_capacity_kw = 1.8 * static_cast<double>(premise_count);
}

/// Sustained all-day AC demand in bigger, hotter homes (heat_wave and
/// its derivatives).
void apply_heat_wave(FleetConfig& cfg, std::size_t premise_count) {
  cfg.horizon = sim::hours(24);
  cfg.profile.min_devices = 6;
  cfg.profile.max_devices = 16;
  cfg.profile.base_rate_per_device_hour = 1.0;
  cfg.profile.mean_service = sim::minutes(45);
  cfg.profile.service_model = appliance::ServiceModel::kExponential;
  cfg.profile.min_base_kw = 0.3;
  cfg.profile.max_base_kw = 0.7;
  cfg.profile.base_swing = 0.3;
  cfg.profile.coordination_adoption = 1.0;
  // Above the all-day mean (~4.4 kW/premise) but below the evening
  // crest, so overload minutes discriminate rather than saturate.
  cfg.transformer_capacity_kw = 4.75 * static_cast<double>(premise_count);
}

/// Four deliberately unbalanced feeders (weight 1 : 1.35 : 1.82 :
/// 2.46) over the heat-wave fleet, so the small shards run cool while
/// the big ones shed — the per-feeder DR comparison the substation
/// layer exists for (multi_feeder and tie_switch).
void apply_multi_feeder(FleetConfig& cfg, std::size_t premise_count) {
  apply_heat_wave(cfg, premise_count);
  cfg.feeder_count = 4;
  cfg.feeder_skew = 0.35;
  cfg.grid.enabled = true;
  cfg.grid.dr.trigger_utilization = 1.0;
  cfg.grid.dr.trigger_temp_pu = 1.05;
  cfg.grid.dr.trigger_hold = sim::minutes(5);
  cfg.grid.dr.target_utilization = 0.9;
  cfg.grid.dr.shed_duration = sim::minutes(45);
  cfg.grid.dr.max_stretch = 3;
  cfg.grid.dr.clear_utilization = 0.85;
  cfg.grid.dr.clear_hold = sim::minutes(10);
  cfg.grid.dr.cooldown = sim::minutes(20);
  cfg.grid.bus.opt_in = 0.9;
}

}  // namespace

FleetConfig make_scenario(ScenarioKind kind, std::size_t premise_count,
                          std::uint64_t seed) {
  FleetConfig cfg;
  cfg.premise_count = premise_count;
  cfg.seed = seed;

  switch (kind) {
    case ScenarioKind::kEveningPeak:
      apply_evening_peak(cfg, premise_count);
      break;

    case ScenarioKind::kHeatWave:
      apply_heat_wave(cfg, premise_count);
      break;

    case ScenarioKind::kMixedAdoption:
      apply_evening_peak(cfg, premise_count);
      cfg.profile.coordination_adoption = 0.5;
      break;

    case ScenarioKind::kScaleSweep:
      cfg.horizon = sim::hours(6);
      cfg.profile.min_devices = 4;
      cfg.profile.max_devices = 8;
      cfg.profile.base_rate_per_device_hour = 0.3;
      cfg.profile.coordination_adoption = 1.0;
      cfg.transformer_capacity_kw =
          2.0 * static_cast<double>(premise_count);
      break;

    case ScenarioKind::kDrHeatWave:
      apply_heat_wave(cfg, premise_count);
      cfg.grid.enabled = true;
      cfg.grid.dr.trigger_utilization = 1.0;
      cfg.grid.dr.trigger_temp_pu = 1.05;
      cfg.grid.dr.trigger_hold = sim::minutes(5);
      cfg.grid.dr.target_utilization = 0.9;
      cfg.grid.dr.shed_duration = sim::minutes(45);
      cfg.grid.dr.max_stretch = 3;
      cfg.grid.dr.clear_utilization = 0.85;
      cfg.grid.dr.clear_hold = sim::minutes(10);
      cfg.grid.dr.cooldown = sim::minutes(20);
      cfg.grid.bus.opt_in = 0.9;
      break;

    case ScenarioKind::kTariffEvening:
      apply_evening_peak(cfg, premise_count);
      cfg.grid.enabled = true;
      // Tariff signals drive this scenario; sheds fire only on genuine
      // overload of the evening-sized transformer.
      cfg.grid.dr.tariff_windows = {
          {sim::hours(0), sim::hours(6), grid::TariffTier::kOffPeak},
          {sim::hours(17), sim::hours(21), grid::TariffTier::kPeak},
      };
      cfg.grid.dr.trigger_utilization = 1.0;
      cfg.grid.dr.trigger_hold = sim::minutes(5);
      cfg.grid.dr.target_utilization = 0.92;
      cfg.grid.dr.shed_duration = sim::minutes(30);
      cfg.grid.dr.max_stretch = 2;
      break;

    case ScenarioKind::kRollingShed:
      apply_heat_wave(cfg, premise_count);
      cfg.grid.enabled = true;
      // Undersized bank: roughly the all-day mean, so relief from one
      // shed never lasts and the controller must keep rolling.
      cfg.transformer_capacity_kw =
          4.4 * static_cast<double>(premise_count);
      cfg.grid.dr.trigger_utilization = 0.98;
      cfg.grid.dr.trigger_hold = sim::minutes(3);
      cfg.grid.dr.target_utilization = 0.9;
      cfg.grid.dr.shed_duration = sim::minutes(20);
      cfg.grid.dr.max_stretch = 4;
      cfg.grid.dr.clear_utilization = 0.8;
      cfg.grid.dr.clear_hold = sim::minutes(15);
      cfg.grid.dr.cooldown = sim::minutes(10);
      break;

    case ScenarioKind::kMultiFeeder:
      apply_multi_feeder(cfg, premise_count);
      break;

    case ScenarioKind::kTieSwitch:
      apply_multi_feeder(cfg, premise_count);
      // Ring ties over the K feeders. The trigger matches the DR shed
      // trigger, so a feeder that would arm a shed first asks a
      // neighbor to carry some of its premises; give-back needs the
      // donor comfortably cool with the load returned (0.8 vs the 1.0
      // trigger — the anti-ping-pong hysteresis).
      cfg.grid.tie.enabled = true;
      cfg.grid.tie.trigger_utilization = 1.0;
      cfg.grid.tie.donor_target_utilization = 0.9;
      cfg.grid.tie.receiver_cap_utilization = 0.9;
      cfg.grid.tie.max_transfer_fraction = 0.3;
      cfg.grid.tie.switch_latency = sim::minutes(1);
      cfg.grid.tie.hold_time = sim::minutes(30);
      cfg.grid.tie.give_back_utilization = 0.8;
      break;
  }
  return cfg;
}

}  // namespace han::fleet
