#include "fleet/scenario.hpp"

namespace han::fleet {

std::string_view to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kEveningPeak:
      return "evening_peak";
    case ScenarioKind::kHeatWave:
      return "heat_wave";
    case ScenarioKind::kMixedAdoption:
      return "mixed_adoption";
    case ScenarioKind::kScaleSweep:
      return "scale_sweep";
  }
  return "?";
}

const std::vector<ScenarioInfo>& scenarios() {
  static const std::vector<ScenarioInfo> kScenarios{
      {ScenarioKind::kEveningPeak, "evening_peak",
       "17:00-21:00 clustered arrival surge, full coordination"},
      {ScenarioKind::kHeatWave, "heat_wave",
       "sustained all-day AC demand, larger homes, hot base load"},
      {ScenarioKind::kMixedAdoption, "mixed_adoption",
       "evening peak with 50% coordinated / 50% uncoordinated homes"},
      {ScenarioKind::kScaleSweep, "scale_sweep",
       "small premises, short horizon; thread-scaling benchmark diet"},
  };
  return kScenarios;
}

std::optional<ScenarioKind> scenario_from_name(std::string_view name) noexcept {
  for (const ScenarioInfo& s : scenarios()) {
    if (s.name == name) return s.kind;
  }
  return std::nullopt;
}

FleetConfig make_scenario(ScenarioKind kind, std::size_t premise_count,
                          std::uint64_t seed) {
  FleetConfig cfg;
  cfg.premise_count = premise_count;
  cfg.seed = seed;

  switch (kind) {
    case ScenarioKind::kEveningPeak:
      cfg.horizon = sim::hours(24);
      cfg.profile.surge = true;
      cfg.profile.surge_start = sim::hours(17);
      cfg.profile.surge_end = sim::hours(21);
      cfg.profile.surge_clusters_per_hour = 2.0;
      cfg.profile.surge_cluster_size = 6;
      cfg.profile.base_rate_per_device_hour = 0.1;
      cfg.profile.coordination_adoption = 1.0;
      // Sized for the diversified evening load, not the stacked worst
      // case: overload minutes measure how often stacking still wins.
      cfg.transformer_capacity_kw =
          1.8 * static_cast<double>(premise_count);
      break;

    case ScenarioKind::kHeatWave:
      cfg.horizon = sim::hours(24);
      cfg.profile.min_devices = 6;
      cfg.profile.max_devices = 16;
      cfg.profile.base_rate_per_device_hour = 1.0;
      cfg.profile.mean_service = sim::minutes(45);
      cfg.profile.service_model = appliance::ServiceModel::kExponential;
      cfg.profile.min_base_kw = 0.3;
      cfg.profile.max_base_kw = 0.7;
      cfg.profile.base_swing = 0.3;
      cfg.profile.coordination_adoption = 1.0;
      // Above the all-day mean (~4.4 kW/premise) but below the evening
      // crest, so overload minutes discriminate rather than saturate.
      cfg.transformer_capacity_kw =
          4.75 * static_cast<double>(premise_count);
      break;

    case ScenarioKind::kMixedAdoption:
      cfg.horizon = sim::hours(24);
      cfg.profile.surge = true;
      cfg.profile.surge_start = sim::hours(17);
      cfg.profile.surge_end = sim::hours(21);
      cfg.profile.surge_clusters_per_hour = 2.0;
      cfg.profile.surge_cluster_size = 6;
      cfg.profile.base_rate_per_device_hour = 0.1;
      cfg.profile.coordination_adoption = 0.5;
      cfg.transformer_capacity_kw =
          1.8 * static_cast<double>(premise_count);
      break;

    case ScenarioKind::kScaleSweep:
      cfg.horizon = sim::hours(6);
      cfg.profile.min_devices = 4;
      cfg.profile.max_devices = 8;
      cfg.profile.base_rate_per_device_hour = 0.3;
      cfg.profile.coordination_adoption = 1.0;
      cfg.transformer_capacity_kw =
          2.0 * static_cast<double>(premise_count);
      break;
  }
  return cfg;
}

}  // namespace han::fleet
