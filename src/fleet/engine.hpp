// han::fleet — neighborhood fleet engine.
//
// The paper coordinates duty cycles inside ONE customer premise; the
// fleet engine simulates MANY independent premises at once and measures
// what the shared distribution feeder sees. Each premise is a complete
// HanNetwork (own Simulator, own topology, own scheduler, own workload)
// drawn deterministically from the fleet seed, so a fleet run is
// reproducible bit-for-bit regardless of how many threads execute it:
//
//   FleetConfig (seed) --make_spec(i)--> PremiseSpec (pure function)
//   PremiseSpec --run_premise--> PremiseResult (thread-confined sim)
//   PremiseResult[] --sum/aggregate--> feeder series + FeederMetrics
//
// Premise heterogeneity: device count, topology, appliance rating,
// scheduler kind (coordination adoption fraction) and workload are all
// drawn from per-premise RNG streams. Type-1 (non-deferrable) base load
// is modeled as a deterministic diurnal profile added to the sampled
// Type-2 series — it is not controllable, so simulating it adds nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "appliance/workload.hpp"
#include "core/experiment.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/executor.hpp"

namespace han::fleet {

/// Default premise topology pool: every generator-backed kind except
/// flocklab26 (which pins the device count to 26). Out-of-line so the
/// defaulted profile copy does not trip GCC's initializer-list
/// -Wmaybe-uninitialized false positive.
[[nodiscard]] std::vector<core::TopologyKind> default_fleet_topologies();

/// Distributions each premise is drawn from.
struct PremiseProfile {
  /// Device count, uniform on [min_devices, max_devices].
  std::size_t min_devices = 4;
  std::size_t max_devices = 12;
  /// Topology drawn uniformly from this set (flocklab26 is excluded by
  /// default: it pins the device count to 26).
  std::vector<core::TopologyKind> topologies = default_fleet_topologies();
  /// Per-device rating, uniform on [min_rated_kw, max_rated_kw].
  double min_rated_kw = 0.8;
  double max_rated_kw = 1.5;
  /// Probability a premise runs the coordinated scheduler; the rest run
  /// the uncoordinated baseline (partial deployment adoption).
  double coordination_adoption = 1.0;
  appliance::DutyCycleConstraints constraints{};

  // --- Workload shape ---------------------------------------------------
  /// Background Poisson request rate, per device per hour (the premise
  /// rate scales with its size).
  double base_rate_per_device_hour = 0.15;
  sim::Duration mean_service = sim::minutes(30);
  appliance::ServiceModel service_model = appliance::ServiceModel::kFixed;
  /// Optional demand surge: clustered near-simultaneous requests inside
  /// [surge_start, surge_end) (a family coming home; a heat spike).
  bool surge = false;
  sim::Duration surge_start = sim::hours(17);
  sim::Duration surge_end = sim::hours(21);
  double surge_clusters_per_hour = 2.0;
  std::size_t surge_cluster_size = 6;
  sim::Duration surge_spread = sim::minutes(5);

  // --- Type-1 (non-deferrable) base load --------------------------------
  /// Daily-mean base load, uniform on [min_base_kw, max_base_kw].
  double min_base_kw = 0.2;
  double max_base_kw = 0.5;
  /// Relative diurnal swing in [0, 1]: the profile is
  /// base * (1 + swing * cos(2*pi*(h - 19)/24)), peaking at 19:00.
  double base_swing = 0.5;
};

/// One neighborhood run.
struct FleetConfig {
  std::size_t premise_count = 100;
  std::uint64_t seed = 1;
  sim::Duration horizon = sim::hours(24);
  sim::Duration sample_interval = sim::minutes(1);
  /// CP round period per premise. Fleet runs use the calibrated abstract
  /// CP; 10 s rounds are ample for 15-minute duty-cycle granularity.
  sim::Duration round_period = sim::seconds(10);
  double abstract_reliability = 0.999;
  /// Feeder transformer rating; <= 0 derives 2 kW per premise.
  double transformer_capacity_kw = 0.0;
  PremiseProfile profile;
};

/// Fully resolved inputs of one premise: pure function of (seed, index).
struct PremiseSpec {
  std::size_t index = 0;
  core::ExperimentConfig experiment;
  std::vector<appliance::Request> trace;
  double base_kw = 0.0;
  double base_swing = 0.0;
};

/// Output of one premise simulation.
struct PremiseResult {
  std::size_t index = 0;
  std::size_t device_count = 0;
  core::SchedulerKind scheduler = core::SchedulerKind::kCoordinated;
  double peak_kw = 0.0;
  double mean_kw = 0.0;
  std::uint64_t requests = 0;
  core::NetworkStats network;
  metrics::TimeSeries load;  // Type-2 + diurnal base, fleet sample grid
};

/// Output of one fleet run. `premises` is ordered by index, so equality
/// of two FleetResults is independent of executor thread count.
struct FleetResult {
  std::vector<PremiseResult> premises;
  metrics::TimeSeries feeder_load;
  FeederMetrics feeder;
  std::size_t coordinated_premises = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t min_dcd_violations = 0;
  std::uint64_t service_gap_violations = 0;
};

/// Runs N independent premises concurrently and aggregates the feeder
/// view. Deterministic in config.seed for any executor width.
class FleetEngine {
 public:
  explicit FleetEngine(FleetConfig config);

  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

  /// Deterministically draws premise `index`'s full configuration and
  /// request trace from the fleet seed (exposed for tests).
  [[nodiscard]] PremiseSpec make_spec(std::size_t index) const;

  /// Simulates one premise. Creates the Simulator/HanNetwork in the
  /// calling thread; specs are value types, so this is thread-confined.
  [[nodiscard]] static PremiseResult run_premise(const PremiseSpec& spec);

  /// Runs the whole fleet on `executor`.
  [[nodiscard]] FleetResult run(Executor& executor) const;
  /// Convenience: runs on a temporary executor with `threads` workers
  /// (0 = hardware concurrency).
  [[nodiscard]] FleetResult run(std::size_t threads = 0) const;

 private:
  FleetConfig config_;
};

}  // namespace han::fleet
