// han::fleet — neighborhood fleet engine.
//
// The paper coordinates duty cycles inside ONE customer premise; the
// fleet engine simulates MANY independent premises at once and measures
// what the shared distribution feeder sees. Each premise is a complete
// HanNetwork (own Simulator, own topology, own scheduler, own workload)
// drawn deterministically from the fleet seed, so a fleet run is
// reproducible bit-for-bit regardless of how many threads execute it:
//
//   FleetConfig (seed) --make_spec(i)--> PremiseSpec (pure function)
//   PremiseSpec --run_premise--> PremiseResult (thread-confined sim)
//   PremiseResult[] --sum/aggregate--> feeder series + FeederMetrics
//
// Premise heterogeneity: device count, topology, appliance rating,
// scheduler kind (coordination adoption fraction) and workload are all
// drawn from per-premise RNG streams. Type-1 (non-deferrable) base load
// is modeled as a deterministic diurnal profile added to the sampled
// Type-2 series — it is not controllable, so simulating it adds nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "appliance/workload.hpp"
#include "core/experiment.hpp"
#include "fidelity/fidelity.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/executor.hpp"
#include "grid/bus.hpp"
#include "grid/controller.hpp"
#include "grid/substation.hpp"

namespace han::telemetry {
class Collector;
}  // namespace han::telemetry

namespace han::fleet {

/// Default premise topology pool: every generator-backed kind except
/// flocklab26 (which pins the device count to 26). Out-of-line so the
/// defaulted profile copy does not trip GCC's initializer-list
/// -Wmaybe-uninitialized false positive.
[[nodiscard]] std::vector<core::TopologyKind> default_fleet_topologies();

/// Distributions each premise is drawn from.
struct PremiseProfile {
  /// Device count, uniform on [min_devices, max_devices].
  std::size_t min_devices = 4;
  std::size_t max_devices = 12;
  /// Topology drawn uniformly from this set (flocklab26 is excluded by
  /// default: it pins the device count to 26).
  std::vector<core::TopologyKind> topologies = default_fleet_topologies();
  /// Per-device rating, uniform on [min_rated_kw, max_rated_kw].
  double min_rated_kw = 0.8;
  double max_rated_kw = 1.5;
  /// Probability a premise runs the coordinated scheduler; the rest run
  /// the uncoordinated baseline (partial deployment adoption).
  double coordination_adoption = 1.0;
  appliance::DutyCycleConstraints constraints{};

  // --- Workload shape ---------------------------------------------------
  /// Background Poisson request rate, per device per hour (the premise
  /// rate scales with its size).
  double base_rate_per_device_hour = 0.15;
  sim::Duration mean_service = sim::minutes(30);
  appliance::ServiceModel service_model = appliance::ServiceModel::kFixed;
  /// Optional demand surge: clustered near-simultaneous requests inside
  /// [surge_start, surge_end) (a family coming home; a heat spike).
  bool surge = false;
  sim::Duration surge_start = sim::hours(17);
  sim::Duration surge_end = sim::hours(21);
  double surge_clusters_per_hour = 2.0;
  std::size_t surge_cluster_size = 6;
  sim::Duration surge_spread = sim::minutes(5);

  // --- Type-1 (non-deferrable) base load --------------------------------
  /// Daily-mean base load, uniform on [min_base_kw, max_base_kw].
  double min_base_kw = 0.2;
  double max_base_kw = 0.5;
  /// Relative diurnal swing in [0, 1]: the profile is
  /// base * (1 + swing * cos(2*pi*(h - 19)/24)), peaking at 19:00.
  double base_swing = 0.5;
};

/// How run_grid drives the control plane.
enum class ControlMode : std::uint8_t {
  /// Fixed-interval lockstep: every premise advances in
  /// control_interval barriers and every controller observes at each
  /// one. The PR 2/3 behavior — outputs are byte-identical to it.
  kPolled,
  /// Threshold-triggered observation: barriers land only at controller
  /// deadlines (shed expiry, hold ends, cooldown end, tariff
  /// boundaries), predicted thermal crossings, and the observe_cap
  /// safety net — and a controller is woken only when one of its
  /// threshold bands crossed or a deadline it declared came due.
  /// Barrier count drops from horizon/control_interval to roughly the
  /// number of control decisions; the trade is that load transients
  /// fully contained between barriers go unobserved.
  kEventDriven,
};

/// Grid-layer (closed-loop) options for a fleet run — see run_grid().
struct GridOptions {
  /// Master switch: with false, run_grid() still runs the lockstep loop
  /// and tracks feeder thermal metrics, but the controller never emits
  /// a signal — the open-loop counterfactual the DR metrics compare
  /// against (and it reproduces run() exactly).
  bool enabled = false;
  /// Demand-response controller tuning.
  grid::DrConfig dr;
  /// Signal delivery model (per-premise latency, opt-in).
  grid::BusConfig bus;
  /// Transformer thermal model; capacity_kw <= 0 inherits the resolved
  /// FleetConfig::transformer_capacity_kw. Either way the capacity is
  /// the FLEET total: with several feeders each shard receives its
  /// planned share (see FleetConfig::feeder_skew).
  grid::FeederConfig feeder;
  /// Substation bank above the feeders; unset fields inherit (capacity:
  /// the fleet total; thermal shape: the feeder config's).
  grid::SubstationConfig substation;
  /// How often each feeder's controller observes its aggregate (the
  /// closed-loop barrier period of run_grid). Under event_driven this
  /// is the observation *grid*: adaptive barriers still land on
  /// multiples of it, so any crossing the event mode sees is one the
  /// polled mode would have seen at the same instant.
  sim::Duration control_interval = sim::minutes(1);
  /// Control-plane driving mode (see ControlMode).
  ControlMode control_mode = ControlMode::kPolled;
  /// event_driven only: the longest premises may free-run without a
  /// control barrier (the safety cap on observation gaps). Rounded up
  /// to a whole number of control intervals.
  sim::Duration observe_cap = sim::minutes(15);
  /// event_driven only: shrink the observation cap to observe_cap_near
  /// while any shed-enabled feeder's committed load or temperature
  /// sits within observe_cap_near_fraction of its shed trigger. A
  /// feeder drifting toward a trigger is sampled finely (so the shed
  /// lands close to the polled instant), an idle fleet keeps the
  /// relaxed observe_cap and its barrier savings. Deterministic: the
  /// choice reads only the previous barrier's committed aggregates.
  bool adaptive_observe_cap = true;
  /// The tightened cap used while near a trigger band. Rounded up to a
  /// whole number of control intervals; must be > 0.
  sim::Duration observe_cap_near = sim::minutes(3);
  /// How close (as a fraction of the trigger threshold) a feeder's
  /// utilization or temperature must get before the near cap engages.
  /// Must be in (0, 1]; 1.0 arms it only at the trigger itself.
  double observe_cap_near_fraction = 0.9;
  /// Per-feeder DrConfig overrides keyed by feeder id: feeder k runs
  /// feeder_dr[k] when engaged, the shared `dr` otherwise (and when k
  /// is past the vector's end). Small volatile shards typically want
  /// longer holds than big surgical ones. Ignored, like `dr`, when the
  /// grid layer is disabled.
  std::vector<std::optional<grid::DrConfig>> feeder_dr;
  /// Substation tie switches (inter-feeder load transfer). Takes
  /// effect only with the grid layer enabled and feeder_count > 1;
  /// disabled ties leave every output byte-identical to the
  /// transfer-free engine.
  grid::TieConfig tie;
  /// Premise-side tariff response: premises defer discretionary
  /// requests out of peak-tariff windows (full and device tiers; the
  /// statistical tier's elasticity hook responds regardless). Off by
  /// default — the tariff signal stays informational, preserving the
  /// pre-fidelity outputs byte-for-byte.
  bool premise_tariff_defer = false;
};

/// One neighborhood run.
struct FleetConfig {
  std::size_t premise_count = 100;
  std::uint64_t seed = 1;
  sim::Duration horizon = sim::hours(24);
  sim::Duration sample_interval = sim::minutes(1);
  /// CP round period per premise. Fleet runs use the calibrated abstract
  /// CP; 10 s rounds are ample for 15-minute duty-cycle granularity.
  sim::Duration round_period = sim::seconds(10);
  double abstract_reliability = 0.999;
  /// Feeder transformer rating for the WHOLE fleet; <= 0 derives 2 kW
  /// per premise. Sharded fleets split it across feeders by planned
  /// weight (see feeder_skew).
  double transformer_capacity_kw = 0.0;
  /// Number of feeders the premises are sharded across (>= 1). Each
  /// feeder gets its own transformer model and — under run_grid — its
  /// own DR controller and signal bus beneath one substation.
  std::size_t feeder_count = 1;
  /// Shard-size skew in [0, inf): feeder k's planned weight is
  /// (1 + feeder_skew)^k, so 0 plans equal shards and larger values
  /// deliberately unbalance them toward the later feeders. Premise
  /// assignment draws against these weights from a per-premise RNG
  /// stream — a pure function of (seed, index, feeder_count, skew)
  /// that never perturbs the other premise draws. Capacity shares
  /// follow the planned weights (feeders are sized for expected
  /// demand), so an unlucky empty shard still has a rated transformer.
  double feeder_skew = 0.0;
  PremiseProfile profile;
  /// Closed-loop grid layer (run_grid only; run() ignores it).
  GridOptions grid;
  /// Per-premise fidelity tiers (see fidelity/fidelity.hpp). The
  /// default policy keeps every premise at full fidelity — the
  /// pre-fidelity engine byte-for-byte.
  fidelity::FidelityPolicy fidelity;
};

/// Fully resolved inputs of one premise: pure function of (seed, index).
struct PremiseSpec {
  std::size_t index = 0;
  /// Feeder shard this premise hangs off (always 0 when
  /// FleetConfig::feeder_count == 1).
  std::size_t feeder = 0;
  core::ExperimentConfig experiment;
  std::vector<appliance::Request> trace;
  double base_kw = 0.0;
  double base_swing = 0.0;
};

/// Output of one premise simulation.
struct PremiseResult {
  std::size_t index = 0;
  std::size_t feeder = 0;
  std::size_t device_count = 0;
  core::SchedulerKind scheduler = core::SchedulerKind::kCoordinated;
  double peak_kw = 0.0;
  double mean_kw = 0.0;
  std::uint64_t requests = 0;
  core::NetworkStats network;
  metrics::TimeSeries load;  // Type-2 + diurnal base, fleet sample grid
};

/// Output of one fleet run. `premises` is ordered by index, so equality
/// of two FleetResults is independent of executor thread count.
struct FleetResult {
  std::vector<PremiseResult> premises;
  metrics::TimeSeries feeder_load;
  FeederMetrics feeder;
  /// Per-feeder slices (one entry per feeder, feeder order; a single
  /// shard covering everything when feeder_count == 1).
  std::vector<FeederShard> shards;
  /// Inter-feeder roll-up over `shards` against the fleet capacity.
  SubstationMetrics substation;
  std::size_t coordinated_premises = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t min_dcd_violations = 0;
  std::uint64_t service_gap_violations = 0;
};

/// Closed-loop outcome of one feeder shard under run_grid.
struct FeederOutcome {
  std::size_t feeder = 0;
  /// Premises on this feeder at the end of the run — with transfers
  /// active at the horizon this differs from the planned shard size.
  std::size_t premises = 0;
  /// This shard's capacity share of the fleet transformer rating.
  double capacity_kw = 0.0;
  /// This feeder's controller counters.
  grid::DrStats dr;
  /// Thermal outcome of this feeder's control-loop transformer model.
  double overload_minutes = 0.0;
  double hot_minutes = 0.0;
  double peak_temperature_pu = 0.0;
  double peak_load_kw = 0.0;
  std::size_t opted_in_premises = 0;
  std::size_t complying_premises = 0;
  /// Observations this feeder's controller processed. Polled: one per
  /// barrier. Event-driven: only crossing/deadline wakes + the prime —
  /// the gap to the barrier count is work the controller skipped.
  std::uint64_t controller_wakes = 0;
  /// This feeder's signals in emission order (ids are per feeder).
  std::vector<grid::GridSignal> signals;
  /// This feeder's (signal x premise) delivery log; premise fields are
  /// global indices.
  std::vector<grid::Delivery> deliveries;
  /// This feeder's log as CSV (single-feeder format) — byte-identical
  /// at any executor width.
  std::string signal_log_csv;

  // --- Tie-switch traffic (all zero with transfers disabled) ----------
  /// Transfer operations that lent this feeder's premises out / that
  /// borrowed foreign premises onto it (give-backs are the return leg
  /// and are not counted again).
  std::uint64_t transfers_out = 0;
  std::uint64_t transfers_in = 0;
  /// Premises lent out / borrowed in across those operations.
  std::uint64_t premises_lent = 0;
  std::uint64_t premises_borrowed = 0;
  /// Energy of this feeder's home premises served by neighbors, and of
  /// foreign premises this bank served, over borrowed time (kWh).
  double energy_lent_kwh = 0.0;
  double energy_borrowed_kwh = 0.0;
};

/// Output of one closed-loop (grid-layer) fleet run.
struct GridFleetResult {
  /// Same shape as a plain run — premise series, feeder aggregation.
  FleetResult fleet;
  /// Per-feeder closed-loop outcomes (one entry per feeder).
  std::vector<FeederOutcome> feeders;
  /// Controller-side counters summed across feeders: sheds, all-clears,
  /// tariff changes, unserved-shed kW, shed latency.
  grid::DrStats dr;
  /// Thermal outcome of the substation bank model watching the summed
  /// load (identical to feeders[0]'s with a single feeder).
  double overload_minutes = 0.0;
  double hot_minutes = 0.0;
  double peak_temperature_pu = 0.0;
  double substation_capacity_kw = 0.0;
  /// Control barriers the run used (global lockstep synchronization
  /// points, including the priming barrier at the epoch). Polled:
  /// horizon / control_interval + 1; event_driven: O(control
  /// decisions) plus the observe_cap safety net.
  std::uint64_t control_barriers = 0;
  /// Controller observations summed across feeders (see
  /// FeederOutcome::controller_wakes).
  std::uint64_t controller_wakes = 0;
  /// Premises enrolled in the DR program (drawn by the SignalBus).
  std::size_t opted_in_premises = 0;
  /// Enrolled premises that can actually act (coordinated scheduler).
  std::size_t complying_premises = 0;
  /// Every signal emitted, concatenated in feeder order (emission order
  /// within a feeder; ids are per feeder).
  std::vector<grid::GridSignal> signals;
  /// Flat (signal x premise) delivery/compliance log, feeder order.
  std::vector<grid::Delivery> deliveries;
  /// Every actuated tie-switch operation in actuation order (empty
  /// with transfers disabled). Replaying it from the planned shard
  /// assignment reconstructs the serving-feeder timeline of every
  /// premise — the invariant harness leans on that.
  std::vector<grid::TieEvent> transfers;
  /// The substation log rendered as CSV — the byte-comparable
  /// determinism artifact (identical for any executor width; verbatim
  /// the single bus log when feeder_count == 1).
  std::string signal_log_csv;
  /// The run's total service-gap violations, surfaced as the comfort
  /// cost of DR: gaps are audited against the *base* maxDCP even while
  /// a shed stretches the envelope, so sheds legitimately raise this
  /// (the coordinated policy keeps it at zero without DR).
  std::uint64_t comfort_gap_violations = 0;
};

/// Runs N independent premises concurrently and aggregates the feeder
/// view. Deterministic in config.seed for any executor width.
class FleetEngine {
 public:
  explicit FleetEngine(FleetConfig config);

  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

  /// Deterministically draws premise `index`'s full configuration and
  /// request trace from the fleet seed (exposed for tests).
  [[nodiscard]] PremiseSpec make_spec(std::size_t index) const;

  /// Feeder shard premise `index` is assigned to: a pure function of
  /// (seed, index, feeder_count, feeder_skew) drawn from the premise's
  /// own "feeder" stream, so the assignment never perturbs any other
  /// premise draw and is stable at any executor width.
  [[nodiscard]] std::size_t feeder_of(std::size_t index) const;

  /// Planned capacity share of feeder `k` as a fraction of the fleet
  /// rating: (1 + skew)^k normalized. Exactly 1.0 when feeder_count
  /// == 1 (the K=1 equivalence guarantee depends on it).
  [[nodiscard]] double feeder_capacity_share(std::size_t k) const;

  /// Fidelity tier premise `index` runs at under config().fidelity —
  /// kFull for every premise under the default (all-full) policy. The
  /// tier table is stratified per feeder and deterministic in the
  /// fleet seed (see fidelity::assign_tiers).
  [[nodiscard]] fidelity::FidelityTier tier_of(std::size_t index) const;

  /// Simulates one premise. Creates the Simulator/HanNetwork in the
  /// calling thread; specs are value types, so this is thread-confined.
  [[nodiscard]] static PremiseResult run_premise(const PremiseSpec& spec);

  /// Builds a PremiseResult from a sampled Type-2 series: overlays the
  /// diurnal base and fills the summary fields (shared by run_premise,
  /// the grid loop and every fidelity backend).
  [[nodiscard]] static PremiseResult assemble_premise_result(
      const PremiseSpec& spec, const metrics::TimeSeries& type2_load,
      const core::NetworkStats& network);

  /// Runs the whole fleet on `executor`. With a non-null `telemetry`
  /// sink the run is profiled into it (phase spans, deterministic
  /// counters, optional trace events — see telemetry/telemetry.hpp);
  /// the simulation outputs are byte-identical either way.
  [[nodiscard]] FleetResult run(Executor& executor,
                                telemetry::Collector* telemetry) const;
  [[nodiscard]] FleetResult run(Executor& executor) const;
  /// Convenience: runs on a temporary executor with `threads` workers
  /// (0 = hardware concurrency).
  [[nodiscard]] FleetResult run(std::size_t threads = 0) const;

  /// Closed-loop run: premises advance between control barriers; at a
  /// barrier each feeder's aggregate (summed in index order) reaches
  /// its DemandResponseController and the emitted signals fan out
  /// through the SignalBus to complying premises, landing as
  /// simulation events at each premise's delivery time. Under
  /// ControlMode::kPolled barriers sit at every control_interval
  /// (byte-identical to the pre-event-plane engine); under
  /// kEventDriven they adapt to controller deadlines and threshold
  /// crossings (see ControlMode). Parallelism is premise-granular and
  /// thread-confined between barriers either way, so the result —
  /// including the signal/compliance log — is byte-identical for any
  /// executor width. With config.grid.enabled == false this reproduces
  /// run() exactly (plus thermal metrics). A non-null `telemetry` sink
  /// profiles the run (boot/barrier-sub-phase spans, per-tier advance
  /// time, deterministic counters mirroring this result, optional
  /// trace) without perturbing any output byte.
  [[nodiscard]] GridFleetResult run_grid(Executor& executor,
                                         telemetry::Collector* telemetry)
      const;
  [[nodiscard]] GridFleetResult run_grid(Executor& executor) const;
  [[nodiscard]] GridFleetResult run_grid(std::size_t threads = 0) const;

  /// Diurnal Type-1 base load of `spec` at time `t` (exposed for the
  /// grid loop and tests).
  [[nodiscard]] static double diurnal_base_kw(const PremiseSpec& spec,
                                              sim::TimePoint t);

 private:
  /// Runs premise `index` open-loop at its assigned tier (run() path).
  [[nodiscard]] PremiseResult run_premise_at_tier(std::size_t index) const;
  /// Sequential, index-ordered feeder aggregation over out.premises.
  void finish_aggregate(FleetResult& out) const;
  [[nodiscard]] double resolved_capacity_kw() const;

  FleetConfig config_;
  /// Planned feeder weights (1 + skew)^k and their sum — a pure
  /// function of the config, cached so per-premise assignment does not
  /// recompute the geometric series.
  std::vector<double> feeder_weights_;
  double feeder_weight_total_ = 0.0;
  /// Per-premise tier table; empty under the default all-full policy
  /// (no fidelity RNG is drawn at all on that path).
  std::vector<fidelity::FidelityTier> tiers_;
};

}  // namespace han::fleet
