#include "fleet/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fidelity/backend.hpp"
#include "telemetry/telemetry.hpp"

namespace han::fleet {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Telemetry phase charged for a premise advancing at `tier`.
telemetry::Phase tier_phase(fidelity::FidelityTier tier) noexcept {
  switch (tier) {
    case fidelity::FidelityTier::kFull:
      return telemetry::Phase::kTierFullAdvance;
    case fidelity::FidelityTier::kDevice:
      return telemetry::Phase::kTierDeviceAdvance;
    case fidelity::FidelityTier::kStatistical:
      break;
  }
  return telemetry::Phase::kTierStatAdvance;
}

/// Diurnal Type-1 base-load factor at simulated time `t`: peaks at
/// 19:00, troughs at 07:00, unit daily mean.
double diurnal_factor(sim::TimePoint t, double swing) {
  const double h = t.since_epoch().hours_f();
  return 1.0 + swing * std::cos(2.0 * kPi * (h - 19.0) / 24.0);
}

}  // namespace

double FleetEngine::diurnal_base_kw(const PremiseSpec& spec,
                                    sim::TimePoint t) {
  return spec.base_kw * diurnal_factor(t, spec.base_swing);
}

std::vector<core::TopologyKind> default_fleet_topologies() {
  return {core::TopologyKind::kLine, core::TopologyKind::kRing,
          core::TopologyKind::kGrid, core::TopologyKind::kRandom};
}

FleetEngine::FleetEngine(FleetConfig config) : config_(std::move(config)) {
  if (config_.premise_count == 0) {
    throw std::invalid_argument("FleetEngine: premise_count must be > 0");
  }
  const PremiseProfile& p = config_.profile;
  if (p.min_devices == 0 || p.max_devices < p.min_devices) {
    throw std::invalid_argument("FleetEngine: bad device-count range");
  }
  if (p.topologies.empty()) {
    throw std::invalid_argument("FleetEngine: profile.topologies empty");
  }
  if (p.min_rated_kw < 0.0 || p.max_rated_kw < p.min_rated_kw) {
    throw std::invalid_argument("FleetEngine: bad rated-kW range");
  }
  if (p.min_base_kw < 0.0 || p.max_base_kw < p.min_base_kw) {
    throw std::invalid_argument("FleetEngine: bad base-load range");
  }
  if (config_.grid.control_interval <= sim::Duration::zero()) {
    throw std::invalid_argument(
        "FleetEngine: grid.control_interval must be > 0");
  }
  if (config_.grid.observe_cap <= sim::Duration::zero()) {
    throw std::invalid_argument("FleetEngine: grid.observe_cap must be > 0");
  }
  if (config_.grid.observe_cap_near <= sim::Duration::zero()) {
    throw std::invalid_argument(
        "FleetEngine: grid.observe_cap_near must be > 0");
  }
  if (!(config_.grid.observe_cap_near_fraction > 0.0) ||
      !(config_.grid.observe_cap_near_fraction <= 1.0)) {
    throw std::invalid_argument(
        "FleetEngine: grid.observe_cap_near_fraction must be in (0, 1]");
  }
  if (config_.feeder_count == 0) {
    throw std::invalid_argument("FleetEngine: feeder_count must be >= 1");
  }
  if (!(config_.feeder_skew >= 0.0) ||
      !std::isfinite(config_.feeder_skew)) {
    throw std::invalid_argument(
        "FleetEngine: feeder_skew must be finite and >= 0");
  }
  feeder_weights_.reserve(config_.feeder_count);
  for (std::size_t k = 0; k < config_.feeder_count; ++k) {
    feeder_weights_.push_back(
        std::pow(1.0 + config_.feeder_skew, static_cast<double>(k)));
    feeder_weight_total_ += feeder_weights_.back();
  }
  if (!config_.fidelity.all_full()) {
    std::vector<std::size_t> feeder_of_premise(config_.premise_count);
    for (std::size_t i = 0; i < config_.premise_count; ++i) {
      feeder_of_premise[i] = feeder_of(i);
    }
    tiers_ = fidelity::assign_tiers(config_.fidelity, config_.seed,
                                    feeder_of_premise,
                                    config_.feeder_count);
  }
}

fidelity::FidelityTier FleetEngine::tier_of(std::size_t index) const {
  return tiers_.empty() ? fidelity::FidelityTier::kFull : tiers_.at(index);
}

std::size_t FleetEngine::feeder_of(std::size_t index) const {
  if (config_.feeder_count <= 1) return 0;
  // A fresh named sub-stream of the premise stream: drawing it cannot
  // perturb the draws make_spec already consumes.
  sim::Rng draw =
      sim::Rng(config_.seed).stream("premise", index).stream("feeder");
  const double u = draw.uniform();
  double cum = 0.0;
  for (std::size_t k = 0; k < feeder_weights_.size(); ++k) {
    cum += feeder_weights_[k];
    if (u * feeder_weight_total_ < cum) return k;
  }
  return feeder_weights_.size() - 1;
}

double FleetEngine::feeder_capacity_share(std::size_t k) const {
  if (config_.feeder_count <= 1) return 1.0;
  return feeder_weights_.at(k) / feeder_weight_total_;
}

PremiseSpec FleetEngine::make_spec(std::size_t index) const {
  const PremiseProfile& p = config_.profile;
  const sim::Rng rng = sim::Rng(config_.seed).stream("premise", index);
  sim::Rng draw = rng.stream("draw");

  PremiseSpec spec;
  spec.index = index;
  spec.feeder = feeder_of(index);

  const auto devices = static_cast<std::size_t>(draw.uniform_int(
      static_cast<std::int64_t>(p.min_devices),
      static_cast<std::int64_t>(p.max_devices)));
  const core::TopologyKind topology = p.topologies[draw.index(p.topologies.size())];
  const double rated_kw = draw.uniform(p.min_rated_kw, p.max_rated_kw);
  spec.base_kw = draw.uniform(p.min_base_kw, p.max_base_kw);
  spec.base_swing = p.base_swing;
  // Last draw on this stream: bernoulli(0)/bernoulli(1) consume nothing,
  // so changing the adoption fraction never perturbs the other draws.
  const bool coordinated = draw.bernoulli(p.coordination_adoption);

  core::ExperimentConfig& cfg = spec.experiment;
  cfg.han.device_count = devices;
  cfg.han.topology_kind = topology;
  cfg.han.scheduler = coordinated ? core::SchedulerKind::kCoordinated
                                  : core::SchedulerKind::kUncoordinated;
  cfg.han.fidelity = core::CpFidelity::kAbstract;
  cfg.han.abstract_reliability = config_.abstract_reliability;
  cfg.han.minicast.round_period = config_.round_period;
  cfg.han.rated_kw = rated_kw;
  cfg.han.constraints = p.constraints;
  cfg.han.seed = rng.stream("han").next_u64();
  cfg.han.feeder = static_cast<std::uint32_t>(spec.feeder);
  cfg.sample_interval = config_.sample_interval;

  appliance::WorkloadParams wp;
  wp.rate_per_hour = p.base_rate_per_device_hour * static_cast<double>(devices);
  wp.device_count = devices;
  wp.horizon = config_.horizon;
  wp.mean_service = p.mean_service;
  wp.service_model = p.service_model;
  wp.warmup = cfg.cp_boot;
  cfg.workload = wp;

  spec.trace = appliance::WorkloadGenerator::generate(wp, rng.stream("workload"));

  if (p.surge && p.surge_end > p.surge_start) {
    appliance::WorkloadParams sw = wp;
    sw.warmup = sim::Duration::zero();
    sw.horizon = p.surge_end - p.surge_start;
    appliance::ClusterParams cl;
    cl.clusters_per_hour = p.surge_clusters_per_hour;
    cl.cluster_size = std::min(p.surge_cluster_size, devices);
    cl.spread = p.surge_spread;
    std::vector<appliance::Request> surge =
        appliance::WorkloadGenerator::generate_clustered(sw, cl,
                                                         rng.stream("surge"));
    for (appliance::Request& r : surge) {
      r.at = r.at + p.surge_start;  // shift into the surge window
      // Drop requests past the horizon (a surge window may outlast a
      // short run); they would never execute but would still be counted.
      if (r.at.since_epoch() > config_.horizon) continue;
      spec.trace.push_back(r);
    }
    std::sort(spec.trace.begin(), spec.trace.end(),
              [](const appliance::Request& a, const appliance::Request& b) {
                return a.at < b.at;
              });
  }
  return spec;
}

PremiseResult FleetEngine::assemble_premise_result(
    const PremiseSpec& spec, const metrics::TimeSeries& type2_load,
    const core::NetworkStats& network) {
  PremiseResult out;
  out.index = spec.index;
  out.feeder = spec.feeder;
  out.device_count = spec.experiment.han.device_count;
  out.scheduler = spec.experiment.han.scheduler;
  out.requests = spec.trace.size();
  out.network = network;

  // Overlay the deterministic diurnal Type-1 base load on the sampled
  // Type-2 series.
  out.load = metrics::TimeSeries(type2_load.start(), type2_load.interval());
  for (std::size_t i = 0; i < type2_load.size(); ++i) {
    out.load.append(type2_load.at(i) +
                    diurnal_base_kw(spec, type2_load.time_of(i)));
  }
  const metrics::RunningStats s = out.load.stats();
  out.peak_kw = s.max();
  out.mean_kw = s.mean();
  return out;
}

PremiseResult FleetEngine::run_premise(const PremiseSpec& spec) {
  const core::ExperimentResult r =
      core::run_experiment(spec.experiment, spec.trace);
  return assemble_premise_result(spec, r.load, r.network);
}

PremiseResult FleetEngine::run_premise_at_tier(std::size_t index) const {
  const fidelity::FidelityTier tier = tier_of(index);
  if (tier == fidelity::FidelityTier::kFull) {
    return run_premise(make_spec(index));
  }
  // Open-loop surrogate: no signals ever arrive, so one advance to the
  // horizon samples the whole series.
  std::unique_ptr<fidelity::PremiseBackend> backend = fidelity::make_backend(
      tier, make_spec(index), config_.fidelity.calibration);
  backend->advance_to(sim::TimePoint::epoch() + config_.horizon);
  return backend->finish();
}

double FleetEngine::resolved_capacity_kw() const {
  return config_.transformer_capacity_kw > 0.0
             ? config_.transformer_capacity_kw
             : 2.0 * static_cast<double>(config_.premise_count);
}

void FleetEngine::finish_aggregate(FleetResult& out) const {
  // Aggregation is sequential over index order, so the result is
  // independent of which thread ran which premise.
  std::vector<const metrics::TimeSeries*> series;
  series.reserve(out.premises.size());
  double sum_peaks = 0.0;
  for (const PremiseResult& p : out.premises) {
    series.push_back(&p.load);
    sum_peaks += p.peak_kw;
    if (p.scheduler == core::SchedulerKind::kCoordinated) {
      ++out.coordinated_premises;
    }
    out.total_requests += p.requests;
    out.min_dcd_violations += p.network.min_dcd_violations;
    out.service_gap_violations += p.network.service_gap_violations;
  }
  out.feeder_load = sum_series(series);
  const double capacity = resolved_capacity_kw();
  out.feeder = feeder_metrics(out.feeder_load, capacity, sum_peaks,
                              config_.premise_count);

  // Per-feeder shards + the substation roll-up (still index order
  // within each shard, so shard series are executor-independent too).
  const std::size_t feeders = config_.feeder_count;
  out.shards.resize(feeders);
  std::vector<std::vector<const metrics::TimeSeries*>> shard_series(feeders);
  std::vector<double> shard_peaks(feeders, 0.0);
  for (const PremiseResult& p : out.premises) {
    shard_series[p.feeder].push_back(&p.load);
    shard_peaks[p.feeder] += p.peak_kw;
  }
  for (std::size_t k = 0; k < feeders; ++k) {
    FeederShard& shard = out.shards[k];
    shard.feeder = k;
    shard.premises = shard_series[k].size();
    shard.load = sum_series(shard_series[k]);
    shard.metrics =
        feeder_metrics(shard.load, capacity * feeder_capacity_share(k),
                       shard_peaks[k], shard.premises);
  }
  out.substation = substation_metrics(out.feeder_load, out.shards, capacity);
}

FleetResult FleetEngine::run(Executor& executor) const {
  return run(executor, nullptr);
}

FleetResult FleetEngine::run(Executor& executor,
                             telemetry::Collector* tel) const {
  telemetry::Span total(tel, telemetry::Phase::kRunTotal);
  if (tel != nullptr) {
    tel->set_trace_epoch_ns(telemetry::Collector::now_ns());
  }
  const ExecutorTelemetryScope executor_scope(executor, tel);

  FleetResult out;
  out.premises.resize(config_.premise_count);
  {
    // Open loop has a single "advance to the horizon" barrier; the
    // disabled path is the exact pre-telemetry loop.
    telemetry::Span advance(tel, telemetry::Phase::kBarrierAdvance,
                            telemetry::Span::Emit::kTrace);
    if (tel == nullptr) {
      executor.parallel_for(config_.premise_count,
                            [this, &out](std::size_t i) {
                              out.premises[i] = run_premise_at_tier(i);
                            });
    } else {
      executor.parallel_for(
          config_.premise_count, [this, &out, tel](std::size_t i) {
            const std::uint64_t t0 = telemetry::Collector::now_ns();
            out.premises[i] = run_premise_at_tier(i);
            tel->record_span(tier_phase(tier_of(i)),
                             telemetry::Collector::now_ns() - t0);
          });
    }
  }
  {
    telemetry::Span aggregate(tel, telemetry::Phase::kAggregate,
                              telemetry::Span::Emit::kTrace);
    finish_aggregate(out);
  }

  if (tel != nullptr) {
    std::size_t full = 0;
    std::size_t device = 0;
    std::size_t stat = 0;
    for (std::size_t i = 0; i < config_.premise_count; ++i) {
      switch (tier_of(i)) {
        case fidelity::FidelityTier::kFull: ++full; break;
        case fidelity::FidelityTier::kDevice: ++device; break;
        case fidelity::FidelityTier::kStatistical: ++stat; break;
      }
    }
    tel->set_counter("premises", config_.premise_count);
    tel->set_counter("feeders", config_.feeder_count);
    tel->set_counter("premises_full", full);
    tel->set_counter("premises_device", device);
    tel->set_counter("premises_stat", stat);
    tel->set_counter("coordinated_premises", out.coordinated_premises);
    tel->set_counter("total_requests", out.total_requests);
    tel->set_counter("min_dcd_violations", out.min_dcd_violations);
    tel->set_counter("service_gap_violations", out.service_gap_violations);
  }
  return out;
}

FleetResult FleetEngine::run(std::size_t threads) const {
  Executor executor(threads);
  return run(executor);
}

}  // namespace han::fleet
