#include "fleet/aggregate.hpp"

#include <algorithm>
#include <stdexcept>

namespace han::fleet {

namespace {

/// Simulated minutes `load` spends above `capacity_kw` (0 when the
/// capacity is unset) — the one overload-accounting rule shared by the
/// feeder and substation metrics.
double overload_minutes_above(const metrics::TimeSeries& load,
                              double capacity_kw) {
  if (capacity_kw <= 0.0 || load.empty()) return 0.0;
  std::size_t over = 0;
  for (double v : load.values()) {
    if (v > capacity_kw) ++over;
  }
  return static_cast<double>(over) * load.interval().minutes_f();
}

}  // namespace

metrics::TimeSeries sum_series(
    const std::vector<const metrics::TimeSeries*>& series) {
  metrics::TimeSeries out;
  std::size_t longest = 0;
  for (const metrics::TimeSeries* s : series) {
    if (s == nullptr) throw std::invalid_argument("sum_series: null series");
    longest = std::max(longest, s->size());
  }
  if (longest == 0) return out;

  // Empty series contribute nothing, so they must not constrain the
  // grid either (a default-constructed TimeSeries has a meaningless
  // start/interval). Anchor on the first non-empty series.
  const metrics::TimeSeries* first = nullptr;
  for (const metrics::TimeSeries* s : series) {
    if (s->empty()) continue;
    if (first == nullptr) {
      first = s;
    } else if (s->start() != first->start() ||
               s->interval() != first->interval()) {
      throw std::invalid_argument(
          "sum_series: series must share start and interval");
    }
  }

  std::vector<double> sums(longest, 0.0);
  for (const metrics::TimeSeries* s : series) {
    const std::vector<double>& v = s->values();
    for (std::size_t i = 0; i < v.size(); ++i) sums[i] += v[i];
  }

  out = metrics::TimeSeries(first->start(), first->interval());
  for (double v : sums) out.append(v);
  return out;
}

metrics::TimeSeries resample(const metrics::TimeSeries& s,
                             sim::Duration interval) {
  if (interval <= sim::Duration::zero() ||
      s.interval() <= sim::Duration::zero() ||
      interval.us() % s.interval().us() != 0) {
    throw std::invalid_argument(
        "resample: interval must be a positive multiple of the source");
  }
  // Exact division is guaranteed by the modulo check, so downsample's
  // output interval (source * factor) is the requested one.
  return s.downsample(static_cast<std::size_t>(interval / s.interval()));
}

SubstationMetrics substation_metrics(const metrics::TimeSeries& total,
                                     const std::vector<FeederShard>& shards,
                                     double capacity_kw) {
  SubstationMetrics m;
  m.feeders = shards.size();
  m.capacity_kw = capacity_kw;
  for (const FeederShard& s : shards) {
    m.sum_feeder_peaks_kw += s.metrics.coincident_peak_kw;
  }
  if (total.empty()) return m;
  m.coincident_peak_kw = total.stats().max();
  if (m.coincident_peak_kw > 0.0) {
    m.inter_feeder_diversity = m.sum_feeder_peaks_kw / m.coincident_peak_kw;
  }
  m.overload_minutes = overload_minutes_above(total, capacity_kw);
  return m;
}

FeederMetrics feeder_metrics(const metrics::TimeSeries& feeder_load,
                             double transformer_capacity_kw,
                             double sum_premise_peaks_kw,
                             std::size_t premises) {
  FeederMetrics m;
  m.premises = premises;
  m.sum_premise_peaks_kw = sum_premise_peaks_kw;
  m.transformer_capacity_kw = transformer_capacity_kw;
  if (feeder_load.empty()) return m;

  const metrics::RunningStats s = feeder_load.stats();
  m.coincident_peak_kw = s.max();
  m.mean_kw = s.mean();
  m.max_step_kw = feeder_load.max_step();
  if (m.coincident_peak_kw > 0.0) {
    m.diversity_factor = sum_premise_peaks_kw / m.coincident_peak_kw;
  }
  if (m.mean_kw > 0.0) {
    m.peak_to_average = m.coincident_peak_kw / m.mean_kw;
  }

  const double interval_hours = feeder_load.interval().hours_f();
  m.energy_mwh = s.sum() * interval_hours / 1000.0;
  m.overload_minutes = overload_minutes_above(feeder_load,
                                              transformer_capacity_kw);
  return m;
}

}  // namespace han::fleet
