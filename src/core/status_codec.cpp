#include "core/status_codec.hpp"

#include <algorithm>

namespace han::core {
namespace {

constexpr std::uint32_t kMaxU24 = 0xFFFFFF;

std::uint32_t clamp_u24_seconds(sim::TimePoint t) noexcept {
  const sim::Ticks s = t.since_epoch().sec();
  if (s < 0) return 0;
  return static_cast<std::uint32_t>(
      std::min<sim::Ticks>(s, static_cast<sim::Ticks>(kMaxU24)));
}

std::uint8_t clamp_u8_minutes(sim::Duration d) noexcept {
  const sim::Ticks m = d.min();
  return static_cast<std::uint8_t>(std::clamp<sim::Ticks>(m, 0, 255));
}

void put_u24(std::array<std::uint8_t, st::kRecordBytes>& a, std::size_t at,
             std::uint32_t v) noexcept {
  a[at] = static_cast<std::uint8_t>(v);
  a[at + 1] = static_cast<std::uint8_t>(v >> 8);
  a[at + 2] = static_cast<std::uint8_t>(v >> 16);
}

std::uint32_t get_u24(const std::array<std::uint8_t, st::kRecordBytes>& a,
                      std::size_t at) noexcept {
  return static_cast<std::uint32_t>(a[at]) |
         static_cast<std::uint32_t>(a[at + 1]) << 8 |
         static_cast<std::uint32_t>(a[at + 2]) << 16;
}

}  // namespace

std::array<std::uint8_t, st::kRecordBytes> encode_status(
    const sched::DeviceStatus& status) {
  std::array<std::uint8_t, st::kRecordBytes> out{};
  out[0] = static_cast<std::uint8_t>((status.has_demand ? 0x01 : 0x00) |
                                     (status.relay_on ? 0x02 : 0x00) |
                                     (status.burst_pending ? 0x04 : 0x00));
  put_u24(out, 1, clamp_u24_seconds(status.demand_since));
  put_u24(out, 4, clamp_u24_seconds(status.demand_until));
  out[7] = clamp_u8_minutes(status.min_dcd);
  out[8] = clamp_u8_minutes(status.max_dcp);
  const double tenth_kw = status.rated_kw * 10.0;
  out[9] = static_cast<std::uint8_t>(
      std::clamp(tenth_kw + 0.5, 0.0, 255.0));
  out[10] = status.slot;
  out[11] = 0;
  return out;
}

sched::DeviceStatus decode_status(
    net::NodeId origin,
    const std::array<std::uint8_t, st::kRecordBytes>& data) {
  sched::DeviceStatus s;
  s.id = origin;
  s.has_demand = (data[0] & 0x01) != 0;
  s.relay_on = (data[0] & 0x02) != 0;
  s.burst_pending = (data[0] & 0x04) != 0;
  s.demand_since =
      sim::TimePoint::epoch() + sim::seconds(get_u24(data, 1));
  s.demand_until =
      sim::TimePoint::epoch() + sim::seconds(get_u24(data, 4));
  s.min_dcd = sim::minutes(data[7]);
  s.max_dcp = sim::minutes(data[8]);
  s.rated_kw = static_cast<double>(data[9]) / 10.0;
  s.slot = data[10];
  return s;
}

bool is_encodable(const sched::DeviceStatus& status) noexcept {
  const auto sec_ok = [](sim::TimePoint t) {
    const sim::Ticks s = t.since_epoch().sec();
    return s >= 0 && s <= static_cast<sim::Ticks>(kMaxU24) &&
           t.since_epoch().us() % 1'000'000 == 0;
  };
  const auto min_ok = [](sim::Duration d) {
    return d.min() >= 0 && d.min() <= 255 && d.us() % 60'000'000 == 0;
  };
  const double tenth = status.rated_kw * 10.0;
  return sec_ok(status.demand_since) && sec_ok(status.demand_until) &&
         min_ok(status.min_dcd) && min_ok(status.max_dcp) && tenth >= 0 &&
         tenth <= 255.0 &&
         tenth == static_cast<double>(static_cast<int>(tenth));
}

}  // namespace han::core
