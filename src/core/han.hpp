// han — public facade.
//
// #include "core/han.hpp" pulls in the whole library. Quickstart:
//
//   han::core::ExperimentConfig cfg = han::core::paper_config(
//       han::appliance::ArrivalScenario::kHigh,
//       han::core::SchedulerKind::kCoordinated);
//   han::core::ExperimentResult r = han::core::run_experiment(cfg);
//   std::cout << "peak " << r.peak_kw << " kW\n";
//
// Layering (see DESIGN.md):
//   sim        discrete-event kernel, deterministic RNG
//   net        802.15.4 radio, channel, medium, topologies
//   st         Glossy floods, MiniCast (CP), collection, clock sync
//   appliance  Type-1/2 models, duty-cycle constraints, thermal, workload
//   sched      coordinated (paper) & uncoordinated (baseline) policies
//   metrics    stats, time series, load monitor, CSV/tables
//   core       Device Interface, network assembly, experiment runner
//   grid       feeder thermal model, demand-response controller, signals
//   fleet      multi-premise parallel simulation, feeder aggregation,
//              closed-loop grid runs
#pragma once

#include "appliance/appliance.hpp"
#include "appliance/duty_cycle.hpp"
#include "appliance/thermal.hpp"
#include "appliance/workload.hpp"
#include "core/device_interface.hpp"
#include "core/experiment.hpp"
#include "core/han_network.hpp"
#include "core/status_codec.hpp"
#include "fidelity/backend.hpp"
#include "fidelity/calibration.hpp"
#include "fidelity/fidelity.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/engine.hpp"
#include "fleet/executor.hpp"
#include "fleet/scenario.hpp"
#include "grid/bus.hpp"
#include "grid/controller.hpp"
#include "grid/feeder.hpp"
#include "grid/signal.hpp"
#include "metrics/csv.hpp"
#include "metrics/divergence.hpp"
#include "metrics/hotspot.hpp"
#include "metrics/load_monitor.hpp"
#include "metrics/stats.hpp"
#include "metrics/stream_aggregate.hpp"
#include "metrics/timeseries.hpp"
#include "net/channel.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"
#include "sched/coordinated.hpp"
#include "sched/scheduler.hpp"
#include "sched/uncoordinated.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "st/collection.hpp"
#include "st/flood.hpp"
#include "st/minicast.hpp"
