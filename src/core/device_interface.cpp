#include "core/device_interface.hpp"

#include <algorithm>

#include "sched/coordinated.hpp"

namespace han::core {

DeviceInterface::DeviceInterface(sim::Simulator& sim,
                                 appliance::Type2Appliance appliance,
                                 const sched::Scheduler& scheduler,
                                 DiOptions options)
    : sim_(sim),
      appliance_(std::move(appliance)),
      scheduler_(scheduler),
      options_(options) {}

void DeviceInterface::add_demand(sim::Duration service) {
  const bool was_active = appliance_.active(sim_.now());
  appliance_.add_demand(sim_.now(), service);
  if (!was_active) {
    last_burst_touch_.reset();
    // The burst-per-period gate is scoped to one demand: a fresh demand
    // is owed a burst even if the previous demand's burst happened to
    // run in the same maxDCP ring period.
    last_burst_period_.reset();
  }
}

sched::DeviceStatus DeviceInterface::own_status() const {
  const sim::TimePoint now = sim_.now();
  sched::DeviceStatus s;
  s.id = appliance_.info().id;
  s.has_demand = appliance_.active(now);
  s.relay_on = appliance_.relay_on();
  s.demand_since = appliance_.demand_since();
  s.demand_until = appliance_.demand_until();
  s.min_dcd = appliance_.constraints().min_dcd();
  s.max_dcp = appliance_.constraints().max_dcp();
  s.rated_kw = appliance_.info().rated_kw;
  s.burst_pending = appliance_.burst_pending(now);
  s.slot = claimed_slot_;
  return s;
}

void DeviceInterface::manage_slot_claim(const sched::GlobalView& view) {
  const sim::TimePoint now = sim_.now();
  const bool active = appliance_.active(now);
  if (!active) {
    claimed_slot_ = sched::kNoSlot;  // release on demand expiry
    own_window_from_.reset();
    return;
  }
  // A DR-aware policy resolves claims and window openings with the
  // stretched duty-cycle envelope while a shed is active, so the claim
  // the DI records agrees with the windows the scheduler will grant.
  const bool dr = scheduler_.dr_aware();
  const sim::Duration eff_dcp =
      dr ? sched::effective_max_dcp(appliance_.constraints().max_dcp(),
                                    view.grid)
         : appliance_.constraints().max_dcp();
  const auto window_of = [&](std::uint8_t slot) {
    return sched::CoordinatedScheduler::next_window_opening(
        now, slot, appliance_.constraints().min_dcd(), eff_dcp);
  };
  if (claimed_slot_ != sched::kNoSlot) {
    // The envelope may have shrunk since the claim (an all-clear ending
    // a shed early): a window-from gate computed under the stretched
    // ring would keep suppressing bursts for up to (stretch-1)*maxDCP
    // after the envelope is back to normal. Tightening to the current
    // envelope's next opening repairs that; under an unchanged envelope
    // the recomputed opening is never earlier, so this is a no-op.
    if (own_window_from_ && now < *own_window_from_) {
      own_window_from_ = std::min(*own_window_from_, window_of(claimed_slot_));
    }
    // Sticky while demand lasts — unless rebalancing is enabled and this
    // DI is the round's single designated mover (see rebalance_move).
    if (options_.enable_rebalance) {
      const auto k_ticks = eff_dcp / appliance_.constraints().min_dcd();
      const auto move = sched::CoordinatedScheduler::rebalance_move(
          view, static_cast<std::size_t>(k_ticks), dr);
      if (move && move->mover == id() && !appliance_.relay_on()) {
        claimed_slot_ = move->new_slot;
        own_window_from_ = window_of(claimed_slot_);
      }
    }
    return;
  }
  claimed_slot_ =
      sched::CoordinatedScheduler::pick_slot(view, own_status(), dr);
  own_window_from_ = window_of(claimed_slot_);
}

void DeviceInterface::on_round_complete(const sched::GlobalView& view,
                                        bool complete_view) {
  const sim::TimePoint now = sim_.now();
  ++stats_.rounds_processed;
  if (!complete_view) ++stats_.stale_view_rounds;

  // Claim/release our schedule slot from the shared view (occupancy of
  // everyone else's published claims).
  manage_slot_claim(view);

  // Plan from the view, but with our own entry replaced by our fresh
  // local status: our record in the view is one round old and would lag
  // a slot claim made this round.
  sched::GlobalView local = view;
  bool found = false;
  for (sched::DeviceStatus& d : local.devices) {
    if (d.id == id()) {
      d = own_status();
      found = true;
      break;
    }
  }
  if (!found) local.devices.push_back(own_status());

  bool desired = appliance_.relay_on();
  const sched::Plan plan = scheduler_.plan(local);
  for (std::size_t i = 0; i < local.devices.size(); ++i) {
    if (local.devices[i].id == id()) {
      desired = plan[i];
      break;
    }
  }

  const bool active = appliance_.active(now);
  const sim::Ticks period =
      now.us() / appliance_.constraints().max_dcp().us();

  // Demand gate: never power a device nobody asked for.
  if (!active) desired = false;

  // One burst start per maxDCP period: a slot migration or a claim into
  // an already-open window must not run the device twice in one period.
  // Only meaningful for epoch-anchored policies (see Scheduler).
  if (desired && !appliance_.relay_on() && scheduler_.epoch_aligned() &&
      last_burst_period_ == period) {
    desired = false;
  }

  // Window alignment: a fresh claim never starts inside the remainder
  // of an already-open window — it waits for the opening it was
  // scheduled for, keeping bursts window-aligned across the system.
  if (desired && !appliance_.relay_on() && scheduler_.epoch_aligned() &&
      own_window_from_ && now < *own_window_from_) {
    desired = false;
  }

  // minDCD latch: finish the burst in progress before obeying an OFF.
  if (appliance_.relay_on() && !desired) {
    const sim::Duration burst = now - appliance_.relay_since();
    if (burst < appliance_.constraints().min_dcd()) {
      desired = true;
      ++stats_.latch_saves;
    }
  }

  if (desired != appliance_.relay_on()) {
    appliance_.set_relay(desired, now);
    ++stats_.plan_switches;
    // Only a burst *start* claims the period: spillover across the
    // boundary must not eat the next period's burst of a long demand.
    if (desired) last_burst_period_ = period;
  }
  if (appliance_.relay_on()) last_burst_touch_ = now;

  audit_service_gap(now);
}

void DeviceInterface::audit_service_gap(sim::TimePoint now) {
  if (!appliance_.active(now) || appliance_.relay_on()) return;
  const sim::TimePoint reference =
      last_burst_touch_.value_or(appliance_.demand_since());
  if (now - reference > appliance_.constraints().max_dcp()) {
    ++stats_.service_gap_violations;
    // Restart the window so one long gap counts once per maxDCP.
    last_burst_touch_ = now;
  }
}

}  // namespace han::core
