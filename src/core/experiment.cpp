#include "core/experiment.hpp"

#include "metrics/load_monitor.hpp"

namespace han::core {

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // Workload is drawn from the same root seed, independent streams.
  const sim::Rng root(config.han.seed);
  appliance::WorkloadParams wp = config.workload;
  if (wp.warmup == sim::Duration::zero()) wp.warmup = config.cp_boot;
  return run_experiment(
      config, appliance::WorkloadGenerator::generate(wp, root.stream("workload")));
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const std::vector<appliance::Request>& trace) {
  sim::Simulator sim;
  HanNetwork net(sim, config.han);
  net.inject_requests(trace);

  metrics::LoadMonitor monitor(
      sim, [&net]() { return net.total_load_kw(); }, config.sample_interval);

  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  monitor.start(sim::TimePoint::epoch() + config.cp_boot);

  sim.run_until(sim::TimePoint::epoch() + config.workload.horizon);
  monitor.stop();

  ExperimentResult result;
  result.load = monitor.series();
  const metrics::RunningStats s = result.load.stats();
  result.peak_kw = s.max();
  result.mean_kw = s.mean();
  result.std_kw = s.stddev();
  result.max_step_kw = result.load.max_step();
  result.requests = trace.size();
  result.network = net.stats();
  result.events_executed = sim.events_executed();
  return result;
}

ReplicatedResult run_replicated(ExperimentConfig config, std::size_t seeds) {
  ReplicatedResult agg;
  double coverage_sum = 0.0;
  for (std::size_t i = 0; i < seeds; ++i) {
    config.han.seed = config.han.seed + (i == 0 ? 0 : 1);
    const ExperimentResult r = run_experiment(config);
    agg.peak_kw.add(r.peak_kw);
    agg.mean_kw.add(r.mean_kw);
    agg.std_kw.add(r.std_kw);
    agg.max_step_kw.add(r.max_step_kw);
    agg.total_requests += r.requests;
    agg.min_dcd_violations += r.network.min_dcd_violations;
    agg.service_gap_violations += r.network.service_gap_violations;
    coverage_sum += r.network.cp_mean_coverage;
  }
  if (seeds > 0) {
    agg.cp_mean_coverage = coverage_sum / static_cast<double>(seeds);
  }
  return agg;
}

ExperimentConfig paper_config(appliance::ArrivalScenario scenario,
                              SchedulerKind scheduler, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.han.device_count = 26;
  cfg.han.topology_kind = TopologyKind::kFlockLab26;
  cfg.han.scheduler = scheduler;
  cfg.han.fidelity = CpFidelity::kPacketLevel;
  cfg.han.rated_kw = 1.0;
  cfg.han.constraints =
      appliance::DutyCycleConstraints(sim::minutes(15), sim::minutes(30));
  cfg.han.seed = seed;
  cfg.workload.rate_per_hour = appliance::scenario_rate_per_hour(scenario);
  cfg.workload.device_count = 26;
  cfg.workload.horizon = sim::minutes(350);
  cfg.workload.mean_service = sim::minutes(30);  // one duty cycle/request
  cfg.workload.service_model = appliance::ServiceModel::kFixed;
  return cfg;
}

}  // namespace han::core
