// han::core — whole-deployment assembly.
//
// A HanNetwork wires together, for one customer premise:
//   topology -> channel -> medium -> one radio per DI  (PHY substrate)
//   MiniCast engine (CP)  or  the abstract CP model
//   one DeviceInterface per Type-2 appliance (EP)
//   optional Type-1 appliances (metered base load)
//
// Two communication-plane fidelities:
//   * kPacketLevel — every flood is simulated at slot granularity over
//     the SINR/capture medium (the default; used for all paper figures);
//   * kAbstract    — per-round Bernoulli record delivery with a given
//     reliability; orders of magnitude faster, used for wide parameter
//     sweeps (the reliability default is what packet-level runs measure
//     on the flocklab26 preset).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "appliance/appliance.hpp"
#include "appliance/workload.hpp"
#include "core/device_interface.hpp"
#include "grid/signal.hpp"
#include "net/channel.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"
#include "sched/coordinated.hpp"
#include "sched/uncoordinated.hpp"
#include "st/minicast.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace han::core {

enum class SchedulerKind : std::uint8_t { kCoordinated, kUncoordinated };
enum class CpFidelity : std::uint8_t { kPacketLevel, kAbstract };
enum class TopologyKind : std::uint8_t {
  kFlockLab26,  // the 26-node office preset (device_count must be 26)
  kGrid,
  kLine,
  kRing,
  kRandom,
  kCustom,
};

[[nodiscard]] std::string_view to_string(SchedulerKind k) noexcept;

/// Deployment configuration.
struct HanConfig {
  std::size_t device_count = 26;
  TopologyKind topology_kind = TopologyKind::kFlockLab26;
  std::optional<net::Topology> custom_topology;  // for kCustom
  net::ChannelParams channel;
  st::MiniCastParams minicast;
  SchedulerKind scheduler = SchedulerKind::kCoordinated;
  CpFidelity fidelity = CpFidelity::kPacketLevel;
  /// Per-(holder, origin, round) record delivery probability in
  /// kAbstract mode. 0.999 matches packet-level flocklab26 measurements.
  double abstract_reliability = 0.999;
  /// Paper: every device consumes 1 kW.
  double rated_kw = 1.0;
  /// Paper: minDCD 15 min, maxDCP 30 min for all devices.
  appliance::DutyCycleConstraints constraints{};
  /// DI behaviour toggles (rebalancing etc.).
  DiOptions di;
  /// Demand-response enrollment: a DR-aware coordinated scheduler
  /// stretches the duty-cycle envelope while a grid shed (applied via
  /// apply_grid_signal) is active. No effect on the uncoordinated
  /// baseline, and none on coordinated premises that never receive a
  /// signal.
  bool dr_aware = false;
  /// Premise-side tariff response: Type-2 requests arriving while the
  /// signalled tier is kPeak are parked at the gateway and injected
  /// the moment the premise leaves the peak tier (tariff broadcast or
  /// migration adopt). Off by default — the tier is then purely
  /// informational and recorded only.
  bool tariff_defer = false;
  /// Feeder shard this premise hangs off (0 in single-feeder
  /// deployments). apply_grid_signal drops signals stamped with a
  /// different feeder id — the premise-side guard of sharded routing.
  std::uint32_t feeder = 0;
  std::uint64_t seed = 1;
};

/// Aggregated runtime statistics across all DIs.
struct NetworkStats {
  std::uint64_t requests_injected = 0;
  std::uint64_t min_dcd_violations = 0;
  std::uint64_t service_gap_violations = 0;
  std::uint64_t stale_view_rounds = 0;
  std::uint64_t plan_switches = 0;
  std::uint64_t grid_signals_applied = 0;
  /// Signals dropped because they were stamped for another feeder (a
  /// routing bug upstream if it ever goes nonzero under the fleet
  /// engine).
  std::uint64_t grid_signals_misrouted = 0;
  /// Requests parked at the gateway under HanConfig::tariff_defer
  /// because they arrived during a peak tariff window.
  std::uint64_t tariff_deferrals = 0;
  double cp_mean_coverage = 1.0;
  double mean_radio_duty = 0.0;   // 0 in abstract mode
  double total_radio_mah = 0.0;   // 0 in abstract mode
};

/// One simulated premise.
class HanNetwork {
 public:
  HanNetwork(sim::Simulator& sim, HanConfig config);
  ~HanNetwork();

  HanNetwork(const HanNetwork&) = delete;
  HanNetwork& operator=(const HanNetwork&) = delete;

  /// Boots the CP; the first round starts at `first_round`.
  void start(sim::TimePoint first_round);

  /// Schedules a user request for injection at its arrival time.
  void inject_request(const appliance::Request& request);
  void inject_requests(const std::vector<appliance::Request>& requests);

  /// Registers a Type-1 appliance; returns its index.
  std::size_t add_type1(appliance::ApplianceInfo info);
  /// Schedules a Type-1 usage session.
  void inject_type1_session(sim::TimePoint at, std::size_t index,
                            sim::Duration duration);

  /// Instantaneous total load (Type-2 + Type-1), kW.
  [[nodiscard]] double total_load_kw() const;

  /// Applies a grid signal at the premise gateway (the fleet engine
  /// schedules this at the signal's per-premise delivery time). A DR
  /// shed raises premise-wide GridPressure for the signal's duration
  /// (auto-expiring even if the all-clear is lost); an all-clear lifts
  /// it early; a tariff change is recorded only. The pressure is
  /// stamped onto every scheduling view — only a dr_aware coordinated
  /// scheduler acts on it.
  void apply_grid_signal(const grid::GridSignal& signal);
  /// Re-homes the premise onto another feeder (tie-switch transfer):
  /// the misroute guard now accepts the new head end's signals and
  /// drops the old one's. An active shed keeps running to its
  /// stamped expiry — the stretch is a premise-side commitment.
  void set_feeder(std::uint32_t feeder) noexcept { config_.feeder = feeder; }
  /// Adopts the serving feeder's tariff tier on migration: tariff
  /// changes are only broadcast at window boundaries, so without this
  /// a transferred premise would keep its old head end's tier (and
  /// disagree with every neighbor) until the next boundary. Leaving
  /// the peak tier (by broadcast or adoption) releases any requests
  /// parked under HanConfig::tariff_defer.
  void set_tariff_tier(grid::TariffTier tier);
  /// Demand-response pressure in force right now.
  [[nodiscard]] sched::GridPressure grid_pressure() const;
  /// Last tariff tier signalled to this premise.
  [[nodiscard]] grid::TariffTier tariff_tier() const noexcept {
    return tariff_tier_;
  }

  [[nodiscard]] std::size_t device_count() const noexcept {
    return dis_.size();
  }
  [[nodiscard]] DeviceInterface& di(net::NodeId id) { return *dis_.at(id); }
  [[nodiscard]] const DeviceInterface& di(net::NodeId id) const {
    return *dis_.at(id);
  }

  [[nodiscard]] const net::Topology& topology() const noexcept {
    return topology_;
  }
  /// Packet-level CP engine; nullptr in abstract mode.
  [[nodiscard]] const st::MiniCastEngine* minicast() const noexcept {
    return minicast_.get();
  }
  /// Fault injection (packet-level mode only).
  void set_node_failed(net::NodeId id, bool failed);
  /// Independent per-reception drop probability at the PHY
  /// (packet-level mode only; no-op in abstract mode).
  void set_forced_drop_rate(double p);

  [[nodiscard]] NetworkStats stats() const;
  [[nodiscard]] const HanConfig& config() const noexcept { return config_; }
  [[nodiscard]] const sched::Scheduler& scheduler() const noexcept {
    return *scheduler_;
  }

 private:
  void build_packet_cp();
  void build_abstract_cp();
  void dispatch_round(net::NodeId id, std::uint64_t round,
                      const st::RecordStore& view);
  void abstract_round();

  sim::Simulator& sim_;
  HanConfig config_;
  sim::Rng rng_;
  net::Topology topology_;
  std::unique_ptr<sched::Scheduler> scheduler_;

  // Packet-level substrate (empty in abstract mode).
  std::unique_ptr<net::Channel> channel_;
  std::unique_ptr<net::Medium> medium_;
  std::vector<std::unique_ptr<net::Radio>> radios_;
  std::unique_ptr<st::MiniCastEngine> minicast_;

  // Abstract CP state: per-holder last-known status of every origin.
  std::vector<std::vector<sched::DeviceStatus>> abstract_views_;
  std::vector<std::vector<bool>> abstract_known_;
  sim::Rng abstract_rng_;
  sim::Simulator::PeriodicHandle abstract_rounds_;
  std::uint64_t abstract_round_index_ = 0;
  double abstract_coverage_sum_ = 0.0;

  std::vector<std::unique_ptr<DeviceInterface>> dis_;
  std::vector<appliance::Type1Appliance> type1_;
  std::uint64_t requests_injected_ = 0;
  std::uint64_t grid_signals_misrouted_ = 0;

  /// Requests parked during a peak window (tariff_defer only), in
  /// arrival order; drained whenever the premise leaves the peak tier.
  std::vector<std::pair<std::size_t, sim::Duration>> parked_requests_;
  std::uint64_t tariff_deferrals_ = 0;

  // Grid / demand-response state (premise-wide; see apply_grid_signal).
  sim::Ticks shed_stretch_ = 1;
  sim::TimePoint shed_until_ = sim::TimePoint::epoch();
  grid::TariffTier tariff_tier_ = grid::TariffTier::kStandard;
  std::uint64_t grid_signals_applied_ = 0;
};

/// Topology construction used by HanConfig (exposed for tests).
[[nodiscard]] net::Topology make_topology(TopologyKind kind, std::size_t n,
                                          sim::Rng& rng);

}  // namespace han::core
