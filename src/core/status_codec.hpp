// han::core — DeviceStatus <-> 10-byte ST record codec.
//
// The MiniCast record payload budget is st::kRecordBytes (12 bytes);
// this codec packs a Type-2 device's status into it:
//
//   byte 0      flags: bit0 has_demand, bit1 relay_on, bit2 burst_pending
//   bytes 1-3   demand_since, seconds since epoch (u24, ~194 days)
//   bytes 4-6   demand_until, seconds since epoch (u24)
//   byte 7      minDCD in minutes (u8)
//   byte 8      maxDCP in minutes (u8)
//   byte 9      rated power in 0.1 kW units (u8, <= 25.5 kW)
//   byte 10     claimed schedule slot (0xFF = none) — the slot ledger
//   byte 11     reserved (zero)
//
// Second-level timestamps are ample: scheduling decisions act on
// 15-minute bursts. Encoding is exact for the supported ranges and
// encode/decode round-trips (property-tested).
#pragma once

#include <array>
#include <cstdint>

#include "sched/view.hpp"
#include "st/record.hpp"

namespace han::core {

/// Packs `status` into a record payload. Values outside the supported
/// ranges are clamped (and flagged by is_encodable()).
[[nodiscard]] std::array<std::uint8_t, st::kRecordBytes> encode_status(
    const sched::DeviceStatus& status);

/// Decodes a record payload produced by encode_status. The device id is
/// taken from `origin` (it is not stored in the payload).
[[nodiscard]] sched::DeviceStatus decode_status(
    net::NodeId origin,
    const std::array<std::uint8_t, st::kRecordBytes>& data);

/// True when `status` fits the wire ranges without clamping.
[[nodiscard]] bool is_encodable(const sched::DeviceStatus& status) noexcept;

}  // namespace han::core
