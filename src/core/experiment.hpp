// han::core — figure-grade experiment runner.
//
// One call = one run of the paper's setup: build a HanNetwork, generate
// and inject the request workload, sample the total load every minute,
// and summarize exactly the quantities Fig. 2 reports (peak, average,
// standard deviation) plus the audit counters that establish validity
// (constraint violations, CP coverage, radio cost).
#pragma once

#include <cstdint>
#include <vector>

#include "appliance/workload.hpp"
#include "core/han_network.hpp"
#include "metrics/stats.hpp"
#include "metrics/timeseries.hpp"

namespace han::core {

/// Everything one run needs.
struct ExperimentConfig {
  HanConfig han;
  appliance::WorkloadParams workload;
  /// Load sampling interval (paper figures: 1 minute).
  sim::Duration sample_interval = sim::minutes(1);
  /// CP boot time before the workload/monitoring window opens.
  sim::Duration cp_boot = sim::seconds(4);
};

/// Summary of one run.
struct ExperimentResult {
  metrics::TimeSeries load;        // total kW, sampled
  double peak_kw = 0.0;
  double mean_kw = 0.0;
  double std_kw = 0.0;
  double max_step_kw = 0.0;        // largest jump between samples
  std::uint64_t requests = 0;
  NetworkStats network;
  std::uint64_t events_executed = 0;
};

/// Runs one experiment (deterministic in config.han.seed).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Runs one experiment over a caller-supplied request trace instead of
/// generating one from config.workload (rate/service fields are ignored;
/// the horizon still bounds the run). This is the fleet path: premise
/// construction stays cheaply repeatable while workload shaping (evening
/// windows, clustered bursts, partial adoption) happens outside core.
[[nodiscard]] ExperimentResult run_experiment(
    const ExperimentConfig& config,
    const std::vector<appliance::Request>& trace);

/// Peak/mean/stddev distributions over `seeds` independent replicas
/// (seeds config.han.seed, +1, +2, ...).
struct ReplicatedResult {
  metrics::RunningStats peak_kw;
  metrics::RunningStats mean_kw;
  metrics::RunningStats std_kw;
  metrics::RunningStats max_step_kw;
  std::uint64_t total_requests = 0;
  std::uint64_t min_dcd_violations = 0;
  std::uint64_t service_gap_violations = 0;
  double cp_mean_coverage = 1.0;
};

[[nodiscard]] ReplicatedResult run_replicated(ExperimentConfig config,
                                              std::size_t seeds);

/// Paper-default configuration: 26 x 1 kW Type-2 devices on the
/// flocklab26 preset, minDCD 15 min / maxDCP 30 min, 2 s MiniCast,
/// 350-minute horizon, given arrival scenario and strategy.
[[nodiscard]] ExperimentConfig paper_config(
    appliance::ArrivalScenario scenario, SchedulerKind scheduler,
    std::uint64_t seed = 1);

}  // namespace han::core
