#include "core/han_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/status_codec.hpp"

namespace han::core {

std::string_view to_string(SchedulerKind k) noexcept {
  switch (k) {
    case SchedulerKind::kCoordinated:
      return "coordinated";
    case SchedulerKind::kUncoordinated:
      return "uncoordinated";
  }
  return "?";
}

net::Topology make_topology(TopologyKind kind, std::size_t n, sim::Rng& rng) {
  switch (kind) {
    case TopologyKind::kFlockLab26: {
      if (n != 26) {
        throw std::invalid_argument(
            "flocklab26 topology requires device_count == 26");
      }
      return net::Topology::flocklab26();
    }
    case TopologyKind::kGrid: {
      const auto cols = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(n))));
      const std::size_t rows = (n + cols - 1) / cols;
      net::Topology full = net::Topology::grid(cols, rows, 10.0);
      std::vector<net::Point> pts(full.positions().begin(),
                                  full.positions().begin() +
                                      static_cast<std::ptrdiff_t>(n));
      return net::Topology{std::move(pts)};
    }
    case TopologyKind::kLine:
      return net::Topology::line(n, 10.0);
    case TopologyKind::kRing:
      return net::Topology::ring(
          n, static_cast<double>(n) * 10.0 / (2.0 * 3.14159265358979));
    case TopologyKind::kRandom: {
      sim::Rng topo_rng = rng.stream("topology");
      return net::Topology::random_uniform(n, 60.0, 35.0, topo_rng);
    }
    case TopologyKind::kCustom:
      throw std::invalid_argument(
          "kCustom requires HanConfig::custom_topology");
  }
  throw std::invalid_argument("unknown TopologyKind");
}

HanNetwork::HanNetwork(sim::Simulator& sim, HanConfig config)
    : sim_(sim),
      config_(std::move(config)),
      rng_(config_.seed),
      abstract_rng_(rng_.stream("abstract-cp")) {
  if (config_.device_count == 0) {
    throw std::invalid_argument("HanNetwork: device_count must be > 0");
  }
  if (config_.topology_kind == TopologyKind::kCustom) {
    if (!config_.custom_topology ||
        config_.custom_topology->size() != config_.device_count) {
      throw std::invalid_argument(
          "HanNetwork: custom topology missing or size mismatch");
    }
    topology_ = *config_.custom_topology;
  } else {
    topology_ = make_topology(config_.topology_kind, config_.device_count,
                              rng_);
  }

  switch (config_.scheduler) {
    case SchedulerKind::kCoordinated:
      scheduler_ =
          std::make_unique<sched::CoordinatedScheduler>(config_.dr_aware);
      break;
    case SchedulerKind::kUncoordinated:
      scheduler_ = std::make_unique<sched::UncoordinatedScheduler>();
      break;
  }

  for (std::size_t i = 0; i < config_.device_count; ++i) {
    appliance::ApplianceInfo info;
    info.id = static_cast<net::NodeId>(i);
    info.name = "type2-" + std::to_string(i);
    info.rated_kw = config_.rated_kw;
    dis_.push_back(std::make_unique<DeviceInterface>(
        sim_, appliance::Type2Appliance(info, config_.constraints),
        *scheduler_, config_.di));
  }

  if (config_.fidelity == CpFidelity::kPacketLevel) {
    build_packet_cp();
  } else {
    build_abstract_cp();
  }
}

HanNetwork::~HanNetwork() {
  if (minicast_) minicast_->stop();
  abstract_rounds_.cancel();
}

void HanNetwork::build_packet_cp() {
  channel_ = std::make_unique<net::Channel>(topology_, config_.channel, rng_);
  medium_ = std::make_unique<net::Medium>(sim_, *channel_,
                                          rng_.stream("medium"));
  std::vector<net::Radio*> raw;
  raw.reserve(config_.device_count);
  for (std::size_t i = 0; i < config_.device_count; ++i) {
    radios_.push_back(std::make_unique<net::Radio>(
        sim_, *medium_, static_cast<net::NodeId>(i)));
    raw.push_back(radios_.back().get());
  }
  minicast_ = std::make_unique<st::MiniCastEngine>(
      sim_, std::move(raw), config_.minicast, rng_.stream("minicast"));
  minicast_->set_keep_history(false);
  minicast_->set_refresh_handler(
      [this](net::NodeId id, std::uint64_t) {
        return encode_status(dis_[id]->own_status());
      });
  minicast_->set_round_complete_handler(
      [this](net::NodeId id, std::uint64_t round,
             const st::RecordStore& view) {
        dispatch_round(id, round, view);
      });
}

void HanNetwork::build_abstract_cp() {
  abstract_views_.assign(config_.device_count,
                         std::vector<sched::DeviceStatus>(
                             config_.device_count));
  abstract_known_.assign(config_.device_count,
                         std::vector<bool>(config_.device_count, false));
}

void HanNetwork::start(sim::TimePoint first_round) {
  if (minicast_) {
    minicast_->start(first_round);
  } else {
    sim_.schedule_at(first_round, [this]() { abstract_round(); });
    abstract_rounds_ = sim_.schedule_every(
        first_round + config_.minicast.round_period,
        config_.minicast.round_period, [this]() { abstract_round(); });
  }
}

void HanNetwork::dispatch_round(net::NodeId id, std::uint64_t round,
                                const st::RecordStore& view) {
  sched::GlobalView gv;
  gv.now = sim_.now();
  gv.grid = grid_pressure();
  gv.devices.reserve(config_.device_count);
  bool complete = true;
  const auto want = static_cast<std::uint32_t>(round + 1);
  for (std::size_t origin = 0; origin < config_.device_count; ++origin) {
    const st::Record* rec = view.find(static_cast<net::NodeId>(origin));
    if (rec == nullptr) {
      complete = false;
      continue;
    }
    if (rec->version < want) complete = false;
    gv.devices.push_back(
        decode_status(static_cast<net::NodeId>(origin), rec->data));
  }
  dis_[id]->on_round_complete(gv, complete);
}

void HanNetwork::abstract_round() {
  const std::size_t n = config_.device_count;
  // Refresh: snapshot every node's own status once.
  std::vector<sched::DeviceStatus> fresh;
  fresh.reserve(n);
  for (std::size_t i = 0; i < n; ++i) fresh.push_back(dis_[i]->own_status());

  std::size_t covered = 0;
  for (std::size_t holder = 0; holder < n; ++holder) {
    for (std::size_t origin = 0; origin < n; ++origin) {
      const bool delivered =
          holder == origin ||
          abstract_rng_.bernoulli(config_.abstract_reliability);
      if (delivered) {
        abstract_views_[holder][origin] = fresh[origin];
        abstract_known_[holder][origin] = true;
        if (holder != origin) ++covered;
      }
    }
  }
  if (n > 1) {
    abstract_coverage_sum_ +=
        static_cast<double>(covered) / static_cast<double>(n * (n - 1));
  } else {
    abstract_coverage_sum_ += 1.0;
  }
  ++abstract_round_index_;

  const sched::GridPressure pressure = grid_pressure();
  for (std::size_t holder = 0; holder < n; ++holder) {
    sched::GlobalView gv;
    gv.now = sim_.now();
    gv.grid = pressure;
    bool complete = true;
    for (std::size_t origin = 0; origin < n; ++origin) {
      if (!abstract_known_[holder][origin]) {
        complete = false;
        continue;
      }
      gv.devices.push_back(abstract_views_[holder][origin]);
    }
    dis_[holder]->on_round_complete(gv, complete);
  }
}

void HanNetwork::inject_request(const appliance::Request& request) {
  if (request.device >= dis_.size()) {
    throw std::out_of_range("inject_request: unknown device");
  }
  ++requests_injected_;
  sim_.schedule_at(request.at, [this, request]() {
    if (config_.tariff_defer && tariff_tier_ == grid::TariffTier::kPeak) {
      // Discretionary demand arriving mid-peak parks at the gateway
      // until the tier drops; it still counts as injected.
      ++tariff_deferrals_;
      parked_requests_.emplace_back(request.device, request.service);
      return;
    }
    dis_[request.device]->add_demand(request.service);
  });
}

void HanNetwork::inject_requests(
    const std::vector<appliance::Request>& requests) {
  for (const appliance::Request& r : requests) inject_request(r);
}

std::size_t HanNetwork::add_type1(appliance::ApplianceInfo info) {
  type1_.emplace_back(std::move(info));
  return type1_.size() - 1;
}

void HanNetwork::inject_type1_session(sim::TimePoint at, std::size_t index,
                                      sim::Duration duration) {
  if (index >= type1_.size()) {
    throw std::out_of_range("inject_type1_session: unknown appliance");
  }
  sim_.schedule_at(at, [this, index, duration]() {
    type1_[index].start_session(sim_.now(), duration);
  });
}

void HanNetwork::apply_grid_signal(const grid::GridSignal& signal) {
  if (signal.feeder != config_.feeder) {
    // Addressed to another shard's premises: the fleet engine never
    // routes these here, but a premise must not act on one that leaks.
    ++grid_signals_misrouted_;
    return;
  }
  ++grid_signals_applied_;
  switch (signal.kind) {
    case grid::SignalKind::kDrShed:
      shed_stretch_ = std::max<sim::Ticks>(signal.period_stretch, 1);
      // The shed runs its full length from *delivery*: a premise that
      // heard about it late still sheds for the advertised duration.
      shed_until_ = sim_.now() + signal.duration;
      break;
    case grid::SignalKind::kAllClear:
      shed_until_ = sim_.now();
      break;
    case grid::SignalKind::kTariffChange:
      set_tariff_tier(signal.tier);
      break;
  }
}

void HanNetwork::set_tariff_tier(grid::TariffTier tier) {
  tariff_tier_ = tier;
  if (tier == grid::TariffTier::kPeak || parked_requests_.empty()) return;
  // Leaving peak: everything parked lands now, in arrival order. Swap
  // first so a re-entrant peak signal cannot double-release.
  std::vector<std::pair<std::size_t, sim::Duration>> parked;
  parked.swap(parked_requests_);
  for (const auto& [device, service] : parked) {
    dis_[device]->add_demand(service);
  }
}

sched::GridPressure HanNetwork::grid_pressure() const {
  sched::GridPressure p;
  if (sim_.now() < shed_until_ && shed_stretch_ > 1) {
    p.shed_active = true;
    p.period_stretch = shed_stretch_;
  }
  return p;
}

double HanNetwork::total_load_kw() const {
  double kw = 0.0;
  for (const auto& di : dis_) kw += di->load_kw();
  for (const auto& t1 : type1_) kw += t1.load_kw(sim_.now());
  return kw;
}

void HanNetwork::set_node_failed(net::NodeId id, bool failed) {
  if (minicast_) minicast_->set_node_failed(id, failed);
}

void HanNetwork::set_forced_drop_rate(double p) {
  if (medium_) medium_->set_forced_drop_rate(p);
}

NetworkStats HanNetwork::stats() const {
  NetworkStats s;
  s.requests_injected = requests_injected_;
  s.grid_signals_applied = grid_signals_applied_;
  s.grid_signals_misrouted = grid_signals_misrouted_;
  s.tariff_deferrals = tariff_deferrals_;
  for (const auto& di : dis_) {
    s.min_dcd_violations += di->appliance().min_dcd_violations();
    s.service_gap_violations += di->stats().service_gap_violations;
    s.stale_view_rounds += di->stats().stale_view_rounds;
    s.plan_switches += di->stats().plan_switches;
  }
  if (minicast_) {
    s.cp_mean_coverage = minicast_->stats().mean_coverage();
    double duty = 0.0;
    double mah = 0.0;
    for (const auto& r : radios_) {
      duty += r->energy().duty_cycle();
      mah += r->energy().total_mah();
    }
    s.mean_radio_duty = duty / static_cast<double>(radios_.size());
    s.total_radio_mah = mah;
  } else if (abstract_round_index_ > 0) {
    s.cp_mean_coverage =
        abstract_coverage_sum_ / static_cast<double>(abstract_round_index_);
  }
  return s;
}

}  // namespace han::core
