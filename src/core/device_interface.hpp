// han::core — the Device Interface (DI).
//
// One DI sits between an electrical appliance and the grid outlet
// (paper §II, ref [6]): it owns the appliance's relay, shares the
// appliance's status over the CP, and at every round boundary runs the
// scheduling policy on its local view to decide the relay state for the
// next period — the Execution Plane.
//
// Two safety layers sit between the plan and the relay:
//   * minDCD latch: a burst in progress is never cut short, even if the
//     plan (computed from a possibly-stale view) says OFF;
//   * demand gate: a device with no demand is never switched ON.
//
// The DI also audits service quality: a maxDCP window that passes with
// demand but without a burst is counted in service_gap_violations().
#pragma once

#include <cstdint>
#include <optional>

#include "appliance/appliance.hpp"
#include "sched/scheduler.hpp"
#include "sched/view.hpp"
#include "st/record.hpp"
#include "sim/simulator.hpp"

namespace han::core {

/// Per-DI runtime statistics.
struct DiStats {
  std::uint64_t rounds_processed = 0;
  std::uint64_t plan_switches = 0;        // relay toggles commanded
  std::uint64_t latch_saves = 0;          // OFF suppressed by minDCD latch
  std::uint64_t service_gap_violations = 0;
  std::uint64_t stale_view_rounds = 0;    // rounds with missing records
};

/// DI behaviour toggles.
struct DiOptions {
  /// Allow slot migrations via CoordinatedScheduler::rebalance_move.
  /// Off by default: migration shaves ~1 device off the peak but can
  /// defer bursts near demand expiry (measured in bench_abl_rebalance).
  bool enable_rebalance = false;
};

/// Device Interface runtime for one Type-2 appliance.
class DeviceInterface {
 public:
  /// `scheduler` must outlive the DI and is shared by all DIs of a
  /// deployment (it is stateless/pure).
  DeviceInterface(sim::Simulator& sim, appliance::Type2Appliance appliance,
                  const sched::Scheduler& scheduler, DiOptions options = {});

  [[nodiscard]] net::NodeId id() const noexcept {
    return appliance_.info().id;
  }
  [[nodiscard]] const appliance::Type2Appliance& appliance() const noexcept {
    return appliance_;
  }
  [[nodiscard]] appliance::Type2Appliance& appliance() noexcept {
    return appliance_;
  }

  /// User request: gives the appliance demand for `service`.
  void add_demand(sim::Duration service);

  /// Own status as shared over the CP (called by the refresh hook).
  /// Includes the claimed schedule slot (the slot-ledger entry).
  [[nodiscard]] sched::DeviceStatus own_status() const;

  /// Slot this DI has claimed for the current demand period
  /// (sched::kNoSlot when idle or not yet claimed).
  [[nodiscard]] std::uint8_t claimed_slot() const noexcept {
    return claimed_slot_;
  }

  /// EP step: runs the policy on `view` and actuates the relay.
  /// `complete_view` is false when records were missing (stats only).
  void on_round_complete(const sched::GlobalView& view, bool complete_view);

  /// Instantaneous electrical load of the attached appliance.
  [[nodiscard]] double load_kw() const {
    return appliance_.load_kw(sim_.now());
  }

  [[nodiscard]] const DiStats& stats() const noexcept { return stats_; }

 private:
  void audit_service_gap(sim::TimePoint now);

  void manage_slot_claim(const sched::GlobalView& view);

  sim::Simulator& sim_;
  appliance::Type2Appliance appliance_;
  const sched::Scheduler& scheduler_;
  DiOptions options_;
  DiStats stats_;
  /// End of the last completed/ongoing burst (service-gap audit datum).
  std::optional<sim::TimePoint> last_burst_touch_;
  std::uint8_t claimed_slot_ = 0xFF;  // sched::kNoSlot
  /// maxDCP ring period in which the current/last burst ran; gates
  /// actuation to at most one burst start per period (slot migrations
  /// or claims into an open window must not double-run a device).
  std::optional<sim::Ticks> last_burst_period_;
  /// First window opening the current claim is scheduled for; the relay
  /// must not start earlier even if the claimed slot's window is
  /// already open at claim time (bursts stay window-aligned).
  std::optional<sim::TimePoint> own_window_from_;
};

}  // namespace han::core
