#include "net/topology.hpp"

#include <algorithm>
#include <cstddef>
#include <numbers>
#include <queue>

namespace han::net {

double Topology::extent() const {
  if (positions_.empty()) return 0.0;
  double min_x = positions_[0].x, max_x = positions_[0].x;
  double min_y = positions_[0].y, max_y = positions_[0].y;
  for (const Point& p : positions_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  return distance({min_x, min_y}, {max_x, max_y});
}

Topology Topology::line(std::size_t n, double spacing) {
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i) * spacing, 0.0});
  }
  return Topology{std::move(pts)};
}

Topology Topology::grid(std::size_t cols, std::size_t rows, double spacing) {
  std::vector<Point> pts;
  pts.reserve(cols * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      pts.push_back({static_cast<double>(c) * spacing,
                     static_cast<double>(r) * spacing});
    }
  }
  return Topology{std::move(pts)};
}

Topology Topology::ring(std::size_t n, double radius) {
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    pts.push_back({radius * std::cos(theta), radius * std::sin(theta)});
  }
  return Topology{std::move(pts)};
}

Topology Topology::random_uniform(std::size_t n, double width, double height,
                                  sim::Rng& rng) {
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, width), rng.uniform(0.0, height)});
  }
  return Topology{std::move(pts)};
}

Topology Topology::flocklab26() {
  // Office floor ~55 m x 30 m. Two corridors (y = 8 and y = 22) with rooms
  // on both sides; nodes are in rooms and a few in corridors, mimicking
  // the multi-hop, wall-attenuated FlockLab deployment. Node 0 is the
  // "entrance" node (commonly used as flood initiator in ST papers).
  return Topology{{
      {2.0, 6.0},    // 0  entrance office
      {8.0, 4.0},    // 1
      {14.0, 6.5},   // 2
      {20.0, 4.0},   // 3
      {26.0, 6.0},   // 4
      {32.0, 4.5},   // 5
      {38.0, 6.0},   // 6
      {44.0, 4.0},   // 7
      {50.0, 6.5},   // 8  far end, south corridor
      {5.0, 11.0},   // 9  south corridor
      {19.0, 11.5},  // 10 south corridor
      {35.0, 11.0},  // 11 south corridor
      {49.0, 11.5},  // 12 south corridor
      {3.0, 16.0},   // 13 mid rooms
      {11.0, 15.0},  // 14
      {18.0, 16.5},  // 15
      {27.0, 15.5},  // 16
      {36.0, 16.0},  // 17
      {45.0, 15.0},  // 18
      {52.0, 16.5},  // 19
      {7.0, 21.0},   // 20 north corridor
      {23.0, 21.5},  // 21 north corridor
      {41.0, 21.0},  // 22 north corridor
      {13.0, 26.0},  // 23 north rooms
      {30.0, 27.0},  // 24
      {47.0, 26.0},  // 25
  }};
}

std::vector<std::vector<bool>> Topology::adjacency_within(double range) const {
  const std::size_t n = size();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (distance(positions_[a], positions_[b]) <= range) {
        adj[a][b] = adj[b][a] = true;
      }
    }
  }
  return adj;
}

std::vector<std::size_t> Topology::hop_counts(
    const std::vector<std::vector<bool>>& adj, NodeId source) {
  const std::size_t n = adj.size();
  std::vector<std::size_t> dist(n, SIZE_MAX);
  std::queue<std::size_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v = 0; v < n; ++v) {
      if (adj[u][v] && dist[v] == SIZE_MAX) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::size_t Topology::diameter(const std::vector<std::vector<bool>>& adj) {
  std::size_t best = 0;
  for (std::size_t s = 0; s < adj.size(); ++s) {
    const auto d = hop_counts(adj, static_cast<NodeId>(s));
    for (std::size_t v : d) {
      if (v == SIZE_MAX) return SIZE_MAX;
      best = std::max(best, v);
    }
  }
  return best;
}

bool Topology::is_connected(const std::vector<std::vector<bool>>& adj) {
  if (adj.empty()) return true;
  const auto d = hop_counts(adj, 0);
  return std::none_of(d.begin(), d.end(),
                      [](std::size_t v) { return v == SIZE_MAX; });
}

}  // namespace han::net
