#include "net/csma.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace han::net {
namespace {

constexpr std::uint8_t kFlagAck = 0x01;
constexpr std::size_t kHeaderBytes = 6;  // dst(2) src(2) seq(1) flags(1)

}  // namespace

CsmaMac::CsmaMac(sim::Simulator& sim, Radio& radio, CsmaParams params,
                 sim::Rng rng)
    : sim_(sim),
      radio_(radio),
      params_(params),
      rng_(rng),
      be_(params.mac_min_be) {
  radio_.set_receive_handler(
      [this](const Frame& f, const RxInfo& i) { on_radio_rx(f, i); });
  radio_.set_tx_done_handler([this]() { on_tx_done(); });
  radio_.listen();
}

void CsmaMac::send(NodeId dst, std::vector<std::uint8_t> payload,
                   DoneFn done) {
  assert(payload.size() + kHeaderBytes <= kMaxFrameBytes);
  ++stats_.enqueued;
  if (queue_.size() >= params_.queue_limit) {
    ++stats_.drops_queue;
    if (done) done(false);
    return;
  }
  Outgoing out;
  out.dst = dst;
  out.seq = next_seq_++;
  out.payload = std::move(payload);
  out.done = std::move(done);
  queue_.push_back(std::move(out));
  try_dequeue();
}

void CsmaMac::try_dequeue() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  start_attempt();
}

void CsmaMac::start_attempt() {
  nb_ = 0;
  be_ = params_.mac_min_be;
  backoff_then_cca();
}

void CsmaMac::backoff_then_cca() {
  const auto slots = rng_.uniform_int(0, (1 << be_) - 1);
  sim_.schedule_after(params_.backoff_unit * slots, [this]() {
    if (!busy_) return;
    // CCA via the shared medium (energy detect); the radio keeps
    // listening during backoff, as in real MACs.
    if (radio_.medium().channel_busy(radio_.id(),
                                     params_.cca_threshold_dbm)) {
      ++nb_;
      be_ = std::min(be_ + 1, params_.mac_max_be);
      if (nb_ > params_.max_csma_backoffs) {
        ++stats_.drops_cca;
        finish_current(false);
      } else {
        backoff_then_cca();
      }
      return;
    }
    transmit_current();
  });
}

void CsmaMac::transmit_current() {
  if (radio_.state() == Radio::State::kTx) {
    // Our own ACK is on the air; retry shortly.
    sim_.schedule_after(params_.backoff_unit,
                        [this]() { transmit_current(); });
    return;
  }
  const Outgoing& cur = queue_.front();
  Frame f;
  f.kind = FrameKind::kUnicast;
  f.source = radio_.id();
  ByteWriter w;
  w.u16(cur.dst);
  w.u16(radio_.id());
  w.u8(cur.seq);
  w.u8(0);
  for (std::uint8_t b : cur.payload) w.u8(b);
  f.payload = std::move(w).take();
  ++stats_.tx_data_frames;
  tx_is_ack_ = false;
  radio_.transmit(std::move(f));
}

void CsmaMac::on_tx_done() {
  if (tx_is_ack_) {
    tx_is_ack_ = false;
    return;
  }
  if (!busy_) return;
  awaiting_ack_ = true;
  ack_timer_ = sim_.schedule_after(params_.ack_timeout,
                                   [this]() { on_ack_timeout(); });
}

void CsmaMac::on_ack_timeout() {
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  Outgoing& cur = queue_.front();
  if (cur.retries < params_.max_frame_retries) {
    ++cur.retries;
    start_attempt();
  } else {
    ++stats_.drops_retries;
    finish_current(false);
  }
}

void CsmaMac::on_radio_rx(const Frame& frame, const RxInfo&) {
  if (frame.kind != FrameKind::kUnicast || frame.payload.size() < kHeaderBytes) {
    return;
  }
  ByteReader r(frame.payload);
  const NodeId dst = r.u16();
  const NodeId src = r.u16();
  const std::uint8_t seq = r.u8();
  const std::uint8_t flags = r.u8();
  if (dst != radio_.id()) return;  // overheard

  if ((flags & kFlagAck) != 0) {
    if (awaiting_ack_ && !queue_.empty() && src == queue_.front().dst &&
        seq == queue_.front().seq) {
      awaiting_ack_ = false;
      sim_.cancel(ack_timer_);
      finish_current(true);
    }
    return;
  }

  ++stats_.rx_data_frames;
  send_ack(src, seq);

  if (last_seq_from_.size() <= src) last_seq_from_.resize(src + 1, -1);
  if (last_seq_from_[src] == seq) {
    ++stats_.rx_duplicates;  // retransmission of an already-ACKed frame
    return;
  }
  last_seq_from_[src] = seq;
  if (on_receive_) {
    on_receive_(src, {frame.payload.begin() +
                          static_cast<std::ptrdiff_t>(kHeaderBytes),
                      frame.payload.end()});
  }
}

void CsmaMac::send_ack(NodeId dst, std::uint8_t seq) {
  // ACK after one turnaround (SIFS), without CSMA, per 802.15.4.
  sim_.schedule_after(kTurnaround, [this, dst, seq]() {
    if (radio_.state() == Radio::State::kTx) return;  // best effort
    Frame f;
    f.kind = FrameKind::kUnicast;
    f.source = radio_.id();
    ByteWriter w;
    w.u16(dst);
    w.u16(radio_.id());
    w.u8(seq);
    w.u8(kFlagAck);
    f.payload = std::move(w).take();
    ++stats_.tx_ack_frames;
    tx_is_ack_ = true;
    radio_.transmit(std::move(f));
  });
}

void CsmaMac::finish_current(bool ok) {
  assert(busy_ && !queue_.empty());
  if (ok) ++stats_.sent_ok;
  Outgoing cur = std::move(queue_.front());
  queue_.pop_front();
  busy_ = false;
  if (cur.done) cur.done(ok);
  try_dequeue();
}

}  // namespace han::net
