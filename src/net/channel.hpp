// han::net — radio propagation and link quality model.
//
// Log-distance path loss with static per-link log-normal shadowing,
// plus the 802.15.4 2.4 GHz O-QPSK/DSSS bit-error model of Zuniga &
// Krishnamachari ("Analyzing the transitional region in low power
// wireless links", SECON'04), which is the standard way to turn SINR
// into a packet reception ratio for CC2420-class radios.
//
// Shadowing is drawn once per (unordered) link at construction and held
// fixed, modelling walls/furniture of the office deployment; this keeps
// runs deterministic and links symmetric.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"

namespace han::net {

/// Tunable propagation parameters. Defaults approximate an indoor office
/// at 2.4 GHz with CC2420-class radios.
struct ChannelParams {
  double path_loss_exponent = 4.0;   // obstructed indoor (walls, furniture)
  double reference_loss_db = 46.0;   // PL(d0) at d0 = 1 m
  double reference_distance_m = 1.0;
  double shadowing_sigma_db = 3.0;   // per-link, static
  /// Effective noise floor including receiver implementation loss; puts
  /// the reception cliff near the CC2420's -95 dBm sensitivity.
  double noise_floor_dbm = -98.0;
  double tx_power_dbm = 0.0;         // CC2420 maximum
  /// Extra loss applied beyond this distance to emulate outer walls;
  /// keeps the far corners of a floor from hearing each other directly.
  double hard_range_m = 1e9;
  double hard_range_extra_loss_db = 40.0;
};

/// dBm <-> mW conversions.
[[nodiscard]] double dbm_to_mw(double dbm) noexcept;
[[nodiscard]] double mw_to_dbm(double mw) noexcept;

/// Immutable per-deployment channel: pairwise attenuation plus the
/// SINR -> PRR link model.
class Channel {
 public:
  /// Draws the static shadowing for every link from `rng` ("channel"
  /// stream recommended).
  Channel(const Topology& topo, const ChannelParams& params, sim::Rng& rng);

  [[nodiscard]] const ChannelParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Received power at `rx` for a transmission by `tx` at `tx_dbm`.
  [[nodiscard]] double rx_power_dbm(NodeId tx, NodeId rx,
                                    double tx_dbm) const;

  /// Path loss (dB) on the (tx, rx) link, shadowing included.
  [[nodiscard]] double path_loss_db(NodeId tx, NodeId rx) const;

  /// Packet reception ratio for a signal at `signal_dbm` against
  /// `interference_mw` (linear mW, excluding noise) for a PSDU of
  /// `psdu_bytes` bytes.
  [[nodiscard]] double prr(double signal_dbm, double interference_mw,
                           std::size_t psdu_bytes) const;

  /// Bit error rate at the given SINR (dB) for 802.15.4 O-QPSK/DSSS.
  [[nodiscard]] static double ber_oqpsk(double sinr_db) noexcept;

  /// Convenience: single-transmitter PRR with no interference.
  [[nodiscard]] double link_prr(NodeId tx, NodeId rx,
                                std::size_t psdu_bytes) const;

  /// True if the link delivers >= `threshold` PRR for a typical frame
  /// (used to derive the connectivity graph for analysis/tests).
  [[nodiscard]] bool usable_link(NodeId tx, NodeId rx,
                                 double threshold = 0.9,
                                 std::size_t psdu_bytes = 64) const;

  /// Connectivity matrix under usable_link().
  [[nodiscard]] std::vector<std::vector<bool>> connectivity(
      double threshold = 0.9, std::size_t psdu_bytes = 64) const;

 private:
  [[nodiscard]] std::size_t link_index(NodeId a, NodeId b) const noexcept;

  std::size_t n_ = 0;
  ChannelParams params_;
  std::vector<double> distance_m_;     // n*n, symmetric
  std::vector<double> shadowing_db_;   // n*n, symmetric, 0 on diagonal
};

}  // namespace han::net
