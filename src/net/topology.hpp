// han::net — node placement and connectivity analysis.
//
// A Topology is the set of node positions of one deployment plus helpers
// to reason about connectivity once a Channel assigns per-link gains.
// Builders cover canonical shapes (line/grid/ring/random geometric) and
// `flocklab26()`, a 26-node office-floor preset standing in for the
// FlockLab testbed used in the paper (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "net/geometry.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"

namespace han::net {

/// Immutable set of node positions.
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::vector<Point> positions)
      : positions_(std::move(positions)) {}

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] Point position(NodeId id) const { return positions_.at(id); }
  [[nodiscard]] const std::vector<Point>& positions() const noexcept {
    return positions_;
  }

  [[nodiscard]] double distance_between(NodeId a, NodeId b) const {
    return distance(positions_.at(a), positions_.at(b));
  }

  /// Bounding box diagonal, metres (deployment extent).
  [[nodiscard]] double extent() const;

  // --- Builders -----------------------------------------------------------

  /// `n` nodes on a line with the given spacing (metres).
  [[nodiscard]] static Topology line(std::size_t n, double spacing);

  /// `cols` x `rows` grid with the given spacing.
  [[nodiscard]] static Topology grid(std::size_t cols, std::size_t rows,
                                     double spacing);

  /// `n` nodes on a circle of the given radius.
  [[nodiscard]] static Topology ring(std::size_t n, double radius);

  /// `n` nodes placed uniformly at random in a width x height rectangle.
  [[nodiscard]] static Topology random_uniform(std::size_t n, double width,
                                               double height, sim::Rng& rng);

  /// 26-node office-floor preset standing in for the FlockLab testbed:
  /// rooms along two corridors over a ~55 m x 30 m floor, giving a
  /// 3-4 hop network under the default channel model.
  [[nodiscard]] static Topology flocklab26();

  // --- Connectivity analysis ----------------------------------------------

  /// Adjacency under a boolean link predicate `connected(a, b)`.
  using LinkPredicate = bool (*)(const Topology&, NodeId, NodeId, double);

  /// Symmetric adjacency matrix for "distance <= range".
  [[nodiscard]] std::vector<std::vector<bool>> adjacency_within(
      double range) const;

  /// BFS hop distance from `source` given an adjacency matrix.
  /// Unreachable nodes get hop count SIZE_MAX.
  [[nodiscard]] static std::vector<std::size_t> hop_counts(
      const std::vector<std::vector<bool>>& adj, NodeId source);

  /// Network diameter in hops (max over all pairs); SIZE_MAX when
  /// disconnected.
  [[nodiscard]] static std::size_t diameter(
      const std::vector<std::vector<bool>>& adj);

  /// True if the graph is connected.
  [[nodiscard]] static bool is_connected(
      const std::vector<std::vector<bool>>& adj);

 private:
  std::vector<Point> positions_;
};

}  // namespace han::net
