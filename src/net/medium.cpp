#include "net/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace han::net {

namespace {
/// History entries older than this relative to "now" can never overlap a
/// new transmission (max frame airtime is ~4.3 ms) and are pruned.
constexpr sim::Duration kHistoryHorizon = sim::milliseconds(20);
}  // namespace

Medium::Medium(sim::Simulator& sim, const Channel& channel, sim::Rng rng)
    : sim_(sim),
      channel_(channel),
      rng_(rng),
      ci_window_(sim::Duration{1}) {
  // The Glossy CI window is 0.5 us; we round to 1 tick (1 us) — slot-level
  // synchronization in the flood engine guarantees sub-tick alignment.
  radios_.resize(channel.node_count(), nullptr);
  rx_busy_until_.resize(channel.node_count(), sim::TimePoint::epoch());
}

void Medium::attach(Radio& radio) {
  assert(radio.id() < radios_.size());
  assert(radios_[radio.id()] == nullptr && "duplicate NodeId");
  radios_[radio.id()] = &radio;
}

void Medium::detach(Radio& radio) noexcept {
  if (radio.id() < radios_.size() && radios_[radio.id()] == &radio) {
    radios_[radio.id()] = nullptr;
  }
}

void Medium::begin_tx(Radio& src, Frame frame, sim::Duration airtime) {
  ++stats_.transmissions;
  frame.source = frame.source == kInvalidNode ? src.id() : frame.source;
  ActiveTx tx;
  tx.src = src.id();
  tx.frame = std::move(frame);
  tx.start = sim_.now();
  tx.end = sim_.now() + airtime;
  const std::uint64_t key = next_tx_key_++;
  history_.push_back(std::move(tx));
  tx_keys_.push_back(key);
  sim_.schedule_at(history_.back().end, [this, key]() { finish_tx(key); });
}

void Medium::finish_tx(std::uint64_t tx_key) {
  const auto it = std::find(tx_keys_.begin(), tx_keys_.end(), tx_key);
  if (it == tx_keys_.end()) return;  // pruned (should not happen)
  const std::size_t idx = static_cast<std::size_t>(it - tx_keys_.begin());
  const NodeId src = history_[idx].src;
  if (!history_[idx].evaluated) evaluate_group(idx);
  prune_history();
  // Return the transmitter to Listen (single event for PHY + radio).
  if (src < radios_.size() && radios_[src] != nullptr) {
    radios_[src]->handle_tx_end();
  }
}

void Medium::evaluate_group(std::size_t primary_idx) {
  ActiveTx& primary = history_[primary_idx];

  // Collect the constructive-interference group: identical content,
  // starts within the CI window of the primary.
  std::vector<std::size_t> group;
  sim::TimePoint group_start = primary.start;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    ActiveTx& cand = history_[i];
    if (cand.evaluated) continue;
    const sim::Duration skew = cand.start >= primary.start
                                   ? cand.start - primary.start
                                   : primary.start - cand.start;
    if (skew <= ci_window_ && cand.frame.same_content(primary.frame)) {
      group.push_back(i);
      group_start = std::min(group_start, cand.start);
      cand.evaluated = true;
    }
  }
  assert(!group.empty());

  const sim::TimePoint group_end = primary.end;

  // Interference set: any non-group transmission overlapping the group.
  std::vector<std::size_t> interferers;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const ActiveTx& cand = history_[i];
    const bool in_group =
        std::find(group.begin(), group.end(), i) != group.end();
    if (in_group) continue;
    if (cand.start < group_end && cand.end > group_start) {
      interferers.push_back(i);
    }
  }

  auto is_group_source = [&](NodeId id) {
    return std::any_of(group.begin(), group.end(),
                       [&](std::size_t g) { return history_[g].src == id; });
  };

  for (NodeId rx = 0; rx < radios_.size(); ++rx) {
    Radio* radio = radios_[rx];
    if (radio == nullptr) continue;
    if (is_group_source(rx)) continue;
    // Receiver must have been listening for the whole frame.
    if (radio->state() != Radio::State::kListen) continue;
    if (radio->listening_since() > group_start) continue;
    // Receiver already locked onto another frame in this window?
    if (rx_busy_until_[rx] > group_start) {
      ++stats_.receiver_busy;
      continue;
    }

    double signal_mw = 0.0;
    double strongest_mw = 0.0;
    for (std::size_t g : group) {
      const double p = dbm_to_mw(channel_.rx_power_dbm(
          history_[g].src, rx, channel_.params().tx_power_dbm));
      signal_mw += p;
      strongest_mw = std::max(strongest_mw, p);
    }
    // Non-coherent combining gain saturates (see set_ci_max_gain_db).
    signal_mw = std::min(signal_mw,
                         strongest_mw * std::pow(10.0, ci_max_gain_db_ / 10.0));
    double interference_mw = 0.0;
    for (std::size_t i : interferers) {
      if (history_[i].src == rx) continue;
      interference_mw += dbm_to_mw(channel_.rx_power_dbm(
          history_[i].src, rx, channel_.params().tx_power_dbm));
    }

    const double signal_dbm = mw_to_dbm(signal_mw);
    double prr = channel_.prr(signal_dbm, interference_mw,
                              primary.frame.psdu_bytes());
    // Capture limit: against non-identical concurrent frames the
    // receiver needs a minimum SIR to synchronize at all.
    if (interference_mw > 0.0 &&
        signal_dbm - mw_to_dbm(interference_mw) < capture_threshold_db_) {
      prr = 0.0;
    }
    if (group.size() > 1 && ci_decode_penalty_ > 0.0) {
      prr *= 1.0 - ci_decode_penalty_;
    }
    if (forced_drop_rate_ > 0.0) prr *= 1.0 - forced_drop_rate_;

    if (rng_.bernoulli(prr)) {
      rx_busy_until_[rx] = group_end;
      RxInfo info;
      info.rssi_dbm = signal_dbm;
      info.sfd_time = group_start;
      info.combined_transmitters = group.size();
      ++stats_.deliveries;
      if (group.size() > 1) ++stats_.ci_combined;
      radio->deliver(primary.frame, info);
    } else {
      ++stats_.reception_failures;
    }
  }
}

bool Medium::channel_busy(NodeId listener, double cca_threshold_dbm,
                          sim::Duration ifs) const {
  double inflight_mw = 0.0;
  const sim::TimePoint now = sim_.now();
  for (const ActiveTx& tx : history_) {
    if (tx.src == listener) continue;
    if (tx.end <= now) {
      // Ended recently? The IFS rule keeps the channel reserved so the
      // receiver's turnaround + ACK fit before anyone else starts.
      if (tx.end + ifs > now &&
          channel_.rx_power_dbm(tx.src, listener,
                                channel_.params().tx_power_dbm) >
              cca_threshold_dbm) {
        return true;
      }
      continue;
    }
    inflight_mw += dbm_to_mw(channel_.rx_power_dbm(
        tx.src, listener, channel_.params().tx_power_dbm));
  }
  return mw_to_dbm(inflight_mw) > cca_threshold_dbm;
}

void Medium::prune_history() {
  const sim::TimePoint horizon = sim_.now() - kHistoryHorizon;
  std::size_t w = 0;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const bool keep = history_[i].end >= horizon || !history_[i].evaluated;
    if (keep) {
      if (w != i) {
        history_[w] = std::move(history_[i]);
        tx_keys_[w] = tx_keys_[i];
      }
      ++w;
    }
  }
  history_.resize(w);
  tx_keys_.resize(w);
}

}  // namespace han::net
