#include "net/routing.hpp"

#include <queue>

namespace han::net {

RoutingTree RoutingTree::shortest_path(const Channel& channel, NodeId sink,
                                       double prr_threshold) {
  const std::size_t n = channel.node_count();
  RoutingTree tree;
  tree.sink_ = sink;
  tree.parent_.assign(n, kInvalidNode);
  tree.hops_.assign(n, SIZE_MAX);

  std::queue<NodeId> frontier;
  tree.hops_[sink] = 0;
  frontier.push(sink);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    // Ascending id order makes parent choice deterministic.
    for (NodeId v = 0; v < n; ++v) {
      if (tree.hops_[v] != SIZE_MAX) continue;
      if (!channel.usable_link(u, v, prr_threshold)) continue;
      tree.hops_[v] = tree.hops_[u] + 1;
      tree.parent_[v] = u;
      frontier.push(v);
    }
  }
  return tree;
}

std::vector<NodeId> RoutingTree::children(NodeId node) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < parent_.size(); ++v) {
    if (parent_[v] == node) out.push_back(v);
  }
  return out;
}

std::size_t RoutingTree::depth() const {
  std::size_t best = 0;
  for (std::size_t h : hops_) {
    if (h != SIZE_MAX) best = std::max(best, h);
  }
  return best;
}

std::vector<std::size_t> RoutingTree::subtree_sizes() const {
  const std::size_t n = parent_.size();
  std::vector<std::size_t> sizes(n, 0);
  // Accumulate along parent chains; O(n * depth), fine for HAN scale.
  for (NodeId v = 0; v < n; ++v) {
    if (!reachable(v) || v == sink_) continue;
    NodeId p = parent_[v];
    while (p != kInvalidNode) {
      ++sizes[p];
      if (p == sink_) break;
      p = parent_[p];
    }
  }
  return sizes;
}

}  // namespace han::net
