// han::net — shared identifiers for the network layer.
#pragma once

#include <cstdint>
#include <limits>

namespace han::net {

/// Index of a node (Device Interface) within one HAN deployment.
using NodeId = std::uint16_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace han::net
