// han::net — shortest-path routing tree for the asynchronous baseline.
//
// The traditional (AT) HAN realization the paper argues against routes
// all traffic through a collection tree rooted at the controller. This
// builds that tree over the channel's usable-link graph (BFS = minimum
// hop count; ties broken toward the lower node id, deterministically).
#pragma once

#include <vector>

#include "net/channel.hpp"
#include "net/types.hpp"

namespace han::net {

/// A sink-rooted spanning tree over usable links.
class RoutingTree {
 public:
  /// Builds the minimum-hop tree toward `sink` using links with PRR >=
  /// `prr_threshold` for a typical frame.
  [[nodiscard]] static RoutingTree shortest_path(const Channel& channel,
                                                 NodeId sink,
                                                 double prr_threshold = 0.9);

  [[nodiscard]] NodeId sink() const noexcept { return sink_; }
  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  /// Next hop toward the sink (kInvalidNode for the sink itself and for
  /// unreachable nodes).
  [[nodiscard]] NodeId parent(NodeId node) const { return parent_.at(node); }

  /// Hop count to the sink (SIZE_MAX when unreachable).
  [[nodiscard]] std::size_t hops(NodeId node) const { return hops_.at(node); }

  [[nodiscard]] bool reachable(NodeId node) const {
    return hops_.at(node) != SIZE_MAX;
  }

  /// Children of `node` in the tree (order: ascending id).
  [[nodiscard]] std::vector<NodeId> children(NodeId node) const;

  /// Depth of the whole tree (max hops over reachable nodes).
  [[nodiscard]] std::size_t depth() const;

  /// Number of descendants routed through each node (the sink's value
  /// is n-1): the congestion profile of the tree.
  [[nodiscard]] std::vector<std::size_t> subtree_sizes() const;

 private:
  NodeId sink_ = kInvalidNode;
  std::vector<NodeId> parent_;
  std::vector<std::size_t> hops_;
};

}  // namespace han::net
