// han::net — 802.15.4 radio model (CC2420-class).
//
// Each node owns one Radio. The radio is a three-state machine
// (Off / Listen / Tx) with datasheet-derived timing and current draw.
// Transmissions are arbitrated by the shared Medium, which calls back
// into deliver() when a frame is successfully received.
//
// Timing at 250 kbit/s: 32 us per byte; every frame is preceded by a
// 6-byte synchronization header (4 preamble + SFD + length); RX<->TX
// turnaround is 192 us (12 symbol periods).
#pragma once

#include <functional>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace han::net {

class Medium;

/// Per-byte airtime at 250 kbit/s.
inline constexpr sim::Duration kByteAirtime = sim::microseconds(32);
/// Synchronization header (preamble + SFD + PHR) length in bytes.
inline constexpr std::size_t kShrBytes = 6;
/// RX->TX / TX->RX turnaround.
inline constexpr sim::Duration kTurnaround = sim::microseconds(192);

/// Airtime of a frame with the given PSDU length (header included).
[[nodiscard]] constexpr sim::Duration frame_airtime(
    std::size_t psdu_bytes) noexcept {
  return kByteAirtime * static_cast<sim::Ticks>(psdu_bytes + kShrBytes);
}

/// Reception metadata handed to the receive callback.
struct RxInfo {
  double rssi_dbm = -100.0;   // combined signal power at the antenna
  sim::TimePoint sfd_time;    // when the frame's header started
  std::size_t combined_transmitters = 1;  // CI group size that was decoded
};

/// CC2420-like current draw per state, used by the energy meter.
struct RadioPower {
  double off_ma = 0.001;
  double listen_ma = 18.8;
  double tx_ma = 17.4;
  double supply_volts = 3.0;
};

/// Cumulative radio energy bookkeeping.
class EnergyMeter {
 public:
  explicit EnergyMeter(RadioPower power = {}) : power_(power) {}

  /// Accounts `dt` spent in the given state.
  void accumulate(int state_index, sim::Duration dt) noexcept;

  /// Total charge consumed, milliamp-hours.
  [[nodiscard]] double total_mah() const noexcept;
  /// Total energy consumed, millijoules.
  [[nodiscard]] double total_mj() const noexcept;
  /// Time spent per state (0=Off, 1=Listen, 2=Tx).
  [[nodiscard]] sim::Duration time_in(int state_index) const noexcept;
  /// Radio duty cycle: fraction of accounted time not spent Off.
  [[nodiscard]] double duty_cycle() const noexcept;

 private:
  RadioPower power_;
  sim::Duration in_state_[3] = {};
};

/// The radio state machine.
class Radio {
 public:
  enum class State { kOff = 0, kListen = 1, kTx = 2 };

  using ReceiveHandler = std::function<void(const Frame&, const RxInfo&)>;
  using TxDoneHandler = std::function<void()>;

  Radio(sim::Simulator& sim, Medium& medium, NodeId id,
        RadioPower power = {});
  ~Radio();

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] State state() const noexcept { return state_; }
  /// The shared medium this radio is attached to (CCA queries etc.).
  [[nodiscard]] Medium& medium() noexcept { return medium_; }
  [[nodiscard]] const Medium& medium() const noexcept { return medium_; }

  void set_receive_handler(ReceiveHandler fn) { on_receive_ = std::move(fn); }
  void set_tx_done_handler(TxDoneHandler fn) { on_tx_done_ = std::move(fn); }

  /// Powers the radio down. Aborts nothing: illegal during TX (asserted).
  void turn_off();

  /// Enters listen (RX) state. No-op if already listening.
  void listen();

  /// Starts transmitting `frame` immediately (the caller is responsible
  /// for turnaround spacing; the ST slot structure provides it). Illegal
  /// while already transmitting. After the frame's airtime the radio
  /// returns to Listen and the tx-done handler fires.
  void transmit(Frame frame);

  /// Time at which the current listen period began (valid in Listen).
  [[nodiscard]] sim::TimePoint listening_since() const noexcept {
    return listen_since_;
  }

  /// Called by the Medium on successful reception.
  void deliver(const Frame& frame, const RxInfo& info);

  /// Called by the Medium when this radio's transmission ends: returns
  /// to Listen and fires the tx-done handler.
  void handle_tx_end();

  [[nodiscard]] const EnergyMeter& energy() const noexcept { return energy_; }

  /// Number of frames handed to the receive callback.
  [[nodiscard]] std::uint64_t frames_received() const noexcept {
    return frames_received_;
  }
  /// Number of frames transmitted.
  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_;
  }

 private:
  void enter_state(State next);

  sim::Simulator& sim_;
  Medium& medium_;
  NodeId id_;
  State state_ = State::kOff;
  sim::TimePoint state_since_;
  sim::TimePoint listen_since_;
  EnergyMeter energy_;
  ReceiveHandler on_receive_;
  TxDoneHandler on_tx_done_;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_sent_ = 0;
};

}  // namespace han::net
