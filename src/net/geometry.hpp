// han::net — 2-D geometry primitives for node placement.
#pragma once

#include <cmath>

namespace han::net {

/// A point (or displacement) on the deployment plane, in metres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr bool operator==(const Point&) const noexcept = default;
};

[[nodiscard]] constexpr Point operator+(Point a, Point b) noexcept {
  return {a.x + b.x, a.y + b.y};
}
[[nodiscard]] constexpr Point operator-(Point a, Point b) noexcept {
  return {a.x - b.x, a.y - b.y};
}
[[nodiscard]] constexpr Point operator*(Point a, double k) noexcept {
  return {a.x * k, a.y * k};
}

/// Euclidean distance between two points, metres.
[[nodiscard]] inline double distance(Point a, Point b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace han::net
