#include "net/radio.hpp"

#include <cassert>
#include <utility>

#include "net/medium.hpp"

namespace han::net {

void EnergyMeter::accumulate(int state_index, sim::Duration dt) noexcept {
  assert(state_index >= 0 && state_index < 3);
  in_state_[state_index] += dt;
}

double EnergyMeter::total_mah() const noexcept {
  const double hours[3] = {in_state_[0].seconds_f() / 3600.0,
                           in_state_[1].seconds_f() / 3600.0,
                           in_state_[2].seconds_f() / 3600.0};
  return hours[0] * power_.off_ma + hours[1] * power_.listen_ma +
         hours[2] * power_.tx_ma;
}

double EnergyMeter::total_mj() const noexcept {
  return total_mah() * 3600.0 * power_.supply_volts;
}

sim::Duration EnergyMeter::time_in(int state_index) const noexcept {
  assert(state_index >= 0 && state_index < 3);
  return in_state_[state_index];
}

double EnergyMeter::duty_cycle() const noexcept {
  const auto total = in_state_[0] + in_state_[1] + in_state_[2];
  if (total <= sim::Duration::zero()) return 0.0;
  return (in_state_[1] + in_state_[2]).seconds_f() / total.seconds_f();
}

Radio::Radio(sim::Simulator& sim, Medium& medium, NodeId id, RadioPower power)
    : sim_(sim),
      medium_(medium),
      id_(id),
      state_since_(sim.now()),
      energy_(power) {
  medium_.attach(*this);
}

Radio::~Radio() { medium_.detach(*this); }

void Radio::enter_state(State next) {
  energy_.accumulate(static_cast<int>(state_),
                     sim_.now() - state_since_);
  state_ = next;
  state_since_ = sim_.now();
  if (next == State::kListen) listen_since_ = sim_.now();
}

void Radio::turn_off() {
  assert(state_ != State::kTx && "cannot power down mid-transmission");
  if (state_ != State::kOff) enter_state(State::kOff);
}

void Radio::listen() {
  if (state_ == State::kListen) return;
  assert(state_ != State::kTx && "TX completes via its own end event");
  enter_state(State::kListen);
}

void Radio::transmit(Frame frame) {
  assert(state_ != State::kTx && "already transmitting");
  enter_state(State::kTx);
  ++frames_sent_;
  const sim::Duration airtime = frame_airtime(frame.psdu_bytes());
  // The medium's tx-finish event calls handle_tx_end(); one event
  // serves both PHY delivery and our own state transition.
  medium_.begin_tx(*this, std::move(frame), airtime);
}

void Radio::handle_tx_end() {
  assert(state_ == State::kTx);
  enter_state(State::kListen);
  if (on_tx_done_) on_tx_done_();
}

void Radio::deliver(const Frame& frame, const RxInfo& info) {
  assert(state_ == State::kListen);
  ++frames_received_;
  if (on_receive_) on_receive_(frame, info);
}

}  // namespace han::net
