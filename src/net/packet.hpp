// han::net — frames and byte-level serialization.
//
// A Frame models one 802.15.4 PHY-layer packet: up to 127 payload bytes
// plus metadata the simulator needs (source, a protocol tag, a logical
// content hash used by the constructive-interference model). ByteWriter /
// ByteReader provide bounds-checked little-endian (de)serialization used
// by the ST protocols to pack appliance records.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace han::net {

/// Maximum 802.15.4 PHY payload (PSDU) in bytes.
inline constexpr std::size_t kMaxFrameBytes = 127;

/// Protocol discriminator carried in the first payload byte by
/// convention; the simulator also keeps it out-of-band for dispatch.
enum class FrameKind : std::uint8_t {
  kGlossyFlood = 1,    // ST flood slot (sync + payload)
  kMiniCastChunk = 2,  // aggregated record chunk
  kCollection = 3,     // many-to-one data collection
  kUnicast = 4,        // asynchronous (CSMA-style) unicast, centralized mode
};

/// One over-the-air frame.
struct Frame {
  FrameKind kind = FrameKind::kGlossyFlood;
  NodeId source = kInvalidNode;  // original initiator (not last relayer)
  std::vector<std::uint8_t> payload;

  /// Total PSDU length: payload + MAC header/footer approximation.
  /// We charge 11 bytes of MAC overhead (FCF 2, seq 1, PAN 2, dst 2,
  /// src 2, FCS 2), matching typical ST implementations on CC2420.
  [[nodiscard]] std::size_t psdu_bytes() const noexcept {
    return payload.size() + 11;
  }

  /// Content identity for the constructive-interference model: two
  /// concurrent transmissions combine only if their bytes are identical.
  [[nodiscard]] bool same_content(const Frame& other) const noexcept {
    return kind == other.kind && payload == other.payload;
  }
};

/// Bounds-checked little-endian serializer.
class ByteWriter {
 public:
  explicit ByteWriter(std::size_t capacity = kMaxFrameBytes)
      : capacity_(capacity) {
    buf_.reserve(capacity);
  }

  void u8(std::uint8_t v) { append(&v, 1); }
  void u16(std::uint16_t v) {
    std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                         static_cast<std::uint8_t>(v >> 8)};
    append(b, 2);
  }
  void u32(std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    append(b, 4);
  }
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    append(b, 8);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return capacity_ - buf_.size();
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }

 private:
  void append(const std::uint8_t* p, std::size_t n) {
    if (buf_.size() + n > capacity_) {
      throw std::length_error("ByteWriter: frame capacity exceeded");
    }
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buf_;
  std::size_t capacity_;
};

/// Bounds-checked little-endian deserializer.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : buf_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : buf_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(buf_[pos_]) |
        static_cast<std::uint16_t>(buf_[pos_ + 1]) << 8);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > size_) {
      throw std::out_of_range("ByteReader: truncated frame");
    }
  }

  const std::uint8_t* buf_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace han::net
