// han::net — the shared wireless medium.
//
// The Medium arbitrates all transmissions of one deployment. When a
// transmission ends it decides, per listening radio, whether the frame
// was received, applying:
//
//  * log-distance path loss + shadowing (Channel),
//  * constructive interference: concurrent transmissions of *identical*
//    content whose starts fall within the CI window (0.5 us, per the
//    Glossy literature) combine non-coherently (powers add) and are
//    decoded as one signal;
//  * capture: non-identical overlapping transmissions contribute to the
//    interference term of the SINR; a receiver decodes at most one frame
//    per busy period (first successfully-decoded group wins).
//
// Reception outcomes are Bernoulli draws from the SINR->PRR link model,
// using a dedicated deterministic RNG stream.
#pragma once

#include <cstdint>
#include <vector>

#include "net/channel.hpp"
#include "net/packet.hpp"
#include "net/radio.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace han::net {

/// Statistics the medium keeps about PHY-layer outcomes.
struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;         // successful frame receptions
  std::uint64_t reception_failures = 0; // listening but PRR draw failed
  std::uint64_t receiver_busy = 0;      // lost because locked on another frame
  std::uint64_t ci_combined = 0;        // deliveries decoded from >1 TX
};

/// Shared medium for one deployment.
class Medium {
 public:
  /// `rng` should be the deployment's "medium" stream; the Channel is
  /// owned elsewhere and must outlive the Medium.
  Medium(sim::Simulator& sim, const Channel& channel, sim::Rng rng);

  /// Radios register themselves at construction (called by Radio).
  void attach(Radio& radio);
  void detach(Radio& radio) noexcept;

  /// Called by Radio::transmit. `airtime` covers header + PSDU.
  void begin_tx(Radio& src, Frame frame, sim::Duration airtime);

  /// Width of the constructive-interference window.
  [[nodiscard]] sim::Duration ci_window() const noexcept { return ci_window_; }
  void set_ci_window(sim::Duration w) noexcept { ci_window_ = w; }

  /// Probability that a CI-combined decode fails for reasons the SINR
  /// model does not capture (residual carrier-frequency offset etc.).
  /// Applied per reception in addition to the PRR draw.
  void set_ci_decode_penalty(double p) noexcept { ci_decode_penalty_ = p; }

  /// Cap on the power gain from non-coherent CI combining relative to
  /// the strongest transmitter (measurements on Glossy-class systems
  /// report 0-3 dB; summing many relays unbounded would be unphysical).
  void set_ci_max_gain_db(double db) noexcept { ci_max_gain_db_ = db; }

  /// Minimum signal-to-interference ratio for a frame to be decodable
  /// against non-identical concurrent frames (co-channel rejection of
  /// CC2420-class receivers is ~3 dB). Noise is handled by the BER
  /// model; this models the capture/synchronization limit.
  void set_capture_threshold_db(double db) noexcept {
    capture_threshold_db_ = db;
  }

  /// Forces an additional independent drop probability on every
  /// reception (fault injection for robustness experiments).
  void set_forced_drop_rate(double p) noexcept { forced_drop_rate_ = p; }

  [[nodiscard]] const MediumStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Channel& channel() const noexcept { return channel_; }

  /// Clear-channel assessment at `listener`: true when the summed power
  /// of in-flight transmissions exceeds `cca_threshold_dbm` (energy
  /// detect, CCA mode 1), or when audible activity ended less than
  /// `ifs` ago (the 802.15.4 interframe-spacing rule — this is what
  /// keeps contenders out of the turnaround gap in which ACKs start).
  /// Used by the CSMA/CA MAC.
  [[nodiscard]] bool channel_busy(
      NodeId listener, double cca_threshold_dbm = -87.0,
      sim::Duration ifs = sim::microseconds(640)) const;

 private:
  struct ActiveTx {
    NodeId src = kInvalidNode;
    Frame frame;
    sim::TimePoint start;
    sim::TimePoint end;
    bool evaluated = false;  // set once its CI group has been delivered
  };

  void finish_tx(std::uint64_t tx_key);
  void evaluate_group(std::size_t primary_idx);
  void prune_history();

  sim::Simulator& sim_;
  const Channel& channel_;
  sim::Rng rng_;
  std::vector<Radio*> radios_;        // indexed by NodeId
  std::vector<ActiveTx> history_;     // recent + active transmissions
  std::vector<sim::TimePoint> rx_busy_until_;  // per receiver decode lock
  std::uint64_t next_tx_key_ = 1;
  std::vector<std::uint64_t> tx_keys_;  // parallel to history_
  sim::Duration ci_window_ = sim::Duration{0};  // set in ctor (0.5 us)
  double ci_decode_penalty_ = 0.0;
  double ci_max_gain_db_ = 3.0;
  double capture_threshold_db_ = 3.0;
  double forced_drop_rate_ = 0.0;
  MediumStats stats_;
};

}  // namespace han::net
