// han::net — unslotted CSMA/CA MAC with acknowledgements (802.15.4).
//
// The asynchronous-transmission substrate of the paper's §I comparison.
// One CsmaMac per node, on top of the same Radio/Medium as the ST
// stack: random exponential backoff, energy-detect CCA, unicast frames
// with MAC-level ACKs and bounded retransmissions. Frames to other
// destinations are overheard by the radio but filtered here.
//
// Wire format of a kUnicast PSDU payload:
//   [dst u16][src u16][seq u8][flags u8 (bit0 = ACK)][payload ...]
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/medium.hpp"
#include "net/radio.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace han::net {

/// 802.15.4 unslotted CSMA/CA constants (defaults per the standard).
struct CsmaParams {
  int mac_min_be = 3;
  int mac_max_be = 5;
  int max_csma_backoffs = 4;
  int max_frame_retries = 3;
  /// aUnitBackoffPeriod: 20 symbols.
  sim::Duration backoff_unit = sim::microseconds(320);
  /// Wait for the ACK: turnaround (192 us) + our 17-byte ACK PSDU
  /// airtime (736 us) + margin. (The standard's 864 us assumes 5-byte
  /// imm-ACKs; ours carry full addressing.)
  sim::Duration ack_timeout = sim::microseconds(1200);
  double cca_threshold_dbm = -87.0;
  /// Bound on the transmit queue; overflow counts as a drop.
  std::size_t queue_limit = 64;
};

/// MAC-layer statistics.
struct CsmaStats {
  std::uint64_t enqueued = 0;
  std::uint64_t sent_ok = 0;         // ACKed
  std::uint64_t drops_retries = 0;   // retry budget exhausted
  std::uint64_t drops_cca = 0;       // channel-access failure
  std::uint64_t drops_queue = 0;     // queue overflow
  std::uint64_t tx_data_frames = 0;  // incl. retransmissions
  std::uint64_t tx_ack_frames = 0;
  std::uint64_t rx_data_frames = 0;
  std::uint64_t rx_duplicates = 0;
};

/// Unslotted CSMA/CA MAC entity for one node.
class CsmaMac {
 public:
  using ReceiveFn =
      std::function<void(NodeId src, const std::vector<std::uint8_t>&)>;
  using DoneFn = std::function<void(bool delivered)>;

  CsmaMac(sim::Simulator& sim, Radio& radio, CsmaParams params,
          sim::Rng rng);

  CsmaMac(const CsmaMac&) = delete;
  CsmaMac& operator=(const CsmaMac&) = delete;

  void set_receive_handler(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// Enqueues a unicast. `done` fires with the delivery outcome (ACKed
  /// or dropped). Payload is capped by the PSDU budget minus 6 header
  /// bytes.
  void send(NodeId dst, std::vector<std::uint8_t> payload, DoneFn done = {});

  [[nodiscard]] const CsmaStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] NodeId id() const noexcept { return radio_.id(); }

 private:
  struct Outgoing {
    NodeId dst;
    std::uint8_t seq;
    std::vector<std::uint8_t> payload;
    DoneFn done;
    int retries = 0;
  };

  void try_dequeue();
  void start_attempt();
  void backoff_then_cca();
  void transmit_current();
  void on_tx_done();
  void on_ack_timeout();
  void on_radio_rx(const Frame& frame, const RxInfo& info);
  void send_ack(NodeId dst, std::uint8_t seq);
  void finish_current(bool ok);

  sim::Simulator& sim_;
  Radio& radio_;
  CsmaParams params_;
  sim::Rng rng_;
  ReceiveFn on_receive_;
  std::deque<Outgoing> queue_;
  bool busy_ = false;          // an attempt is in progress
  bool awaiting_ack_ = false;
  bool tx_is_ack_ = false;     // current radio TX carries an ACK
  int be_ = 3;
  int nb_ = 0;                 // backoff attempts this transmission
  std::uint8_t next_seq_ = 0;
  sim::EventId ack_timer_{};
  // Duplicate rejection: last seq seen per source.
  std::vector<int> last_seq_from_;
  CsmaStats stats_;
};

}  // namespace han::net
