#include "net/channel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace han::net {

double dbm_to_mw(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }

double mw_to_dbm(double mw) noexcept {
  // Clamp to avoid -inf for a zero signal; -300 dBm is "nothing".
  return mw <= 1e-30 ? -300.0 : 10.0 * std::log10(mw);
}

Channel::Channel(const Topology& topo, const ChannelParams& params,
                 sim::Rng& rng)
    : n_(topo.size()), params_(params) {
  distance_m_.assign(n_ * n_, 0.0);
  shadowing_db_.assign(n_ * n_, 0.0);
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      const double d = topo.distance_between(static_cast<NodeId>(a),
                                             static_cast<NodeId>(b));
      const double sh = rng.normal(0.0, params_.shadowing_sigma_db);
      distance_m_[a * n_ + b] = distance_m_[b * n_ + a] = d;
      shadowing_db_[a * n_ + b] = shadowing_db_[b * n_ + a] = sh;
    }
  }
}

std::size_t Channel::link_index(NodeId a, NodeId b) const noexcept {
  return static_cast<std::size_t>(a) * n_ + static_cast<std::size_t>(b);
}

double Channel::path_loss_db(NodeId tx, NodeId rx) const {
  assert(tx < n_ && rx < n_);
  if (tx == rx) return 0.0;
  const double d =
      std::max(distance_m_[link_index(tx, rx)], params_.reference_distance_m);
  double pl = params_.reference_loss_db +
              10.0 * params_.path_loss_exponent *
                  std::log10(d / params_.reference_distance_m) +
              shadowing_db_[link_index(tx, rx)];
  if (d > params_.hard_range_m) pl += params_.hard_range_extra_loss_db;
  return pl;
}

double Channel::rx_power_dbm(NodeId tx, NodeId rx, double tx_dbm) const {
  return tx_dbm - path_loss_db(tx, rx);
}

double Channel::ber_oqpsk(double sinr_db) noexcept {
  // Zuniga & Krishnamachari: BER for 802.15.4 O-QPSK with DSSS,
  //   BER = (8/15) * (1/16) * sum_{k=2}^{16} (-1)^k C(16,k) exp(20*SNR*(1/k - 1))
  // with SNR linear. Clamp extremes for numeric stability.
  if (sinr_db > 12.0) return 0.0;
  if (sinr_db < -12.0) return 0.5;
  const double snr = std::pow(10.0, sinr_db / 10.0);
  static constexpr double kBinom16[17] = {
      1,    16,   120,  560,  1820, 4368, 8008, 11440, 12870,
      11440, 8008, 4368, 1820, 560,  120,  16,   1};
  double acc = 0.0;
  for (int k = 2; k <= 16; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    acc += sign * kBinom16[k] * std::exp(20.0 * snr * (1.0 / k - 1.0));
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * acc;
  return std::clamp(ber, 0.0, 0.5);
}

double Channel::prr(double signal_dbm, double interference_mw,
                    std::size_t psdu_bytes) const {
  const double noise_mw = dbm_to_mw(params_.noise_floor_dbm);
  const double sinr_db =
      signal_dbm - mw_to_dbm(noise_mw + interference_mw);
  const double ber = ber_oqpsk(sinr_db);
  if (ber >= 0.5) return 0.0;
  // Independent bit errors over the PSDU plus the 6-byte synchronization
  // header (whose loss also kills the frame).
  const double bits = 8.0 * static_cast<double>(psdu_bytes + 6);
  return std::pow(1.0 - ber, bits);
}

double Channel::link_prr(NodeId tx, NodeId rx, std::size_t psdu_bytes) const {
  if (tx == rx) return 0.0;
  return prr(rx_power_dbm(tx, rx, params_.tx_power_dbm), 0.0, psdu_bytes);
}

bool Channel::usable_link(NodeId tx, NodeId rx, double threshold,
                          std::size_t psdu_bytes) const {
  return tx != rx && link_prr(tx, rx, psdu_bytes) >= threshold;
}

std::vector<std::vector<bool>> Channel::connectivity(
    double threshold, std::size_t psdu_bytes) const {
  std::vector<std::vector<bool>> adj(n_, std::vector<bool>(n_, false));
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = 0; b < n_; ++b) {
      if (a != b) {
        adj[a][b] = usable_link(static_cast<NodeId>(a), static_cast<NodeId>(b),
                                threshold, psdu_bytes);
      }
    }
  }
  return adj;
}

}  // namespace han::net
