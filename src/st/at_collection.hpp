// han::st — the traditional asynchronous-transmission (AT) control
// plane the paper argues against (§I).
//
// A centralized HAN over CSMA/CA: status records flow hop-by-hop up a
// shortest-path tree to the controller (store-and-forward unicasts with
// MAC ACKs), and the controller's command flows back down the tree.
// Every message contends for the channel, so the root's neighborhood
// is the bottleneck: as the update period shrinks or the network grows,
// queues build, retries burn airtime, and coverage collapses — exactly
// the dynamic the paper contrasts with ST rounds (bench_abl_at).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/csma.hpp"
#include "net/routing.hpp"
#include "st/record.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace han::st {

/// AT control-plane parameters.
struct AtCollectionParams {
  sim::Duration round_period = sim::seconds(2);
  net::CsmaParams mac;
  net::NodeId sink = 0;
  /// Link-quality floor for the routing tree.
  double prr_threshold = 0.9;
  /// Uplink sends are jittered over this span to avoid a synchronized
  /// collision storm at the round edge.
  sim::Duration uplink_jitter = sim::milliseconds(500);
  /// Disseminate a controller command down the tree each round.
  bool disseminate_command = true;
  std::size_t command_bytes = 32;
};

/// Cumulative AT statistics.
struct AtStats {
  std::uint64_t rounds = 0;
  double uplink_coverage_sum = 0.0;
  double downlink_coverage_sum = 0.0;
  /// Mean time for a record to reach the sink (over delivered records).
  sim::Duration uplink_latency_sum = sim::Duration::zero();
  std::uint64_t uplink_deliveries = 0;
  // Aggregated MAC counters (all nodes).
  std::uint64_t mac_drops = 0;
  std::uint64_t mac_tx_frames = 0;

  [[nodiscard]] double mean_uplink() const noexcept {
    return rounds == 0 ? 1.0
                       : uplink_coverage_sum / static_cast<double>(rounds);
  }
  [[nodiscard]] double mean_downlink() const noexcept {
    return rounds == 0 ? 1.0
                       : downlink_coverage_sum / static_cast<double>(rounds);
  }
  [[nodiscard]] sim::Duration mean_uplink_latency() const noexcept {
    return uplink_deliveries == 0
               ? sim::Duration::zero()
               : uplink_latency_sum /
                     static_cast<sim::Ticks>(uplink_deliveries);
  }
};

/// Periodic collect-then-command engine over CSMA/CA unicast routing.
class AtCollectionEngine {
 public:
  using RefreshFn = std::function<std::array<std::uint8_t, kRecordBytes>(
      net::NodeId id, std::uint64_t round)>;
  using BuildCommandFn = std::function<std::vector<std::uint8_t>(
      std::uint64_t round, const RecordStore& sink_view)>;
  using CommandFn = std::function<void(net::NodeId id, std::uint64_t round,
                                       const std::vector<std::uint8_t>&)>;

  AtCollectionEngine(sim::Simulator& sim, std::vector<net::Radio*> radios,
                     const net::Channel& channel,
                     const AtCollectionParams& params, sim::Rng rng);

  AtCollectionEngine(const AtCollectionEngine&) = delete;
  AtCollectionEngine& operator=(const AtCollectionEngine&) = delete;

  void set_refresh_handler(RefreshFn fn) { refresh_ = std::move(fn); }
  void set_build_command_handler(BuildCommandFn fn) {
    build_command_ = std::move(fn);
  }
  void set_command_handler(CommandFn fn) { command_ = std::move(fn); }

  void start(sim::TimePoint first_round_start);
  void stop();

  [[nodiscard]] const AtStats& stats() const;
  [[nodiscard]] const RecordStore& sink_view() const {
    return nodes_.at(params_.sink).store;
  }
  [[nodiscard]] const net::RoutingTree& routing() const noexcept {
    return tree_;
  }
  /// Current MAC queue depth at the tree root's children (congestion
  /// probe used by the bottleneck bench).
  [[nodiscard]] std::size_t max_queue_depth() const;

 private:
  struct NodeState {
    std::unique_ptr<net::CsmaMac> mac;
    RecordStore store;
    bool got_command = false;

    explicit NodeState(std::size_t n) : store(n) {}
  };

  void begin_round();
  void end_round();
  void send_upstream(net::NodeId from, const Record& rec);
  void forward_command(net::NodeId from,
                       const std::vector<std::uint8_t>& msg);
  void on_mac_receive(net::NodeId me, net::NodeId src,
                      const std::vector<std::uint8_t>& msg);

  sim::Simulator& sim_;
  AtCollectionParams params_;
  sim::Rng rng_;
  net::RoutingTree tree_;
  std::vector<NodeState> nodes_;
  RefreshFn refresh_;
  BuildCommandFn build_command_;
  CommandFn command_;
  std::uint64_t round_ = 0;
  sim::TimePoint round_start_;
  sim::EventId next_round_event_{};
  bool running_ = false;
  mutable AtStats stats_;
};

}  // namespace han::st
