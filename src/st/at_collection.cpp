#include "st/at_collection.hpp"

#include <algorithm>
#include <stdexcept>

namespace han::st {
namespace {

constexpr std::uint8_t kMsgRecord = 1;
constexpr std::uint8_t kMsgCommand = 2;

std::vector<std::uint8_t> encode_record_msg(const Record& rec) {
  net::ByteWriter w;
  w.u8(kMsgRecord);
  write_record(w, rec);
  return std::move(w).take();
}

}  // namespace

AtCollectionEngine::AtCollectionEngine(sim::Simulator& sim,
                                       std::vector<net::Radio*> radios,
                                       const net::Channel& channel,
                                       const AtCollectionParams& params,
                                       sim::Rng rng)
    : sim_(sim),
      params_(params),
      rng_(rng),
      tree_(net::RoutingTree::shortest_path(channel, params.sink,
                                            params.prr_threshold)) {
  if (radios.empty()) {
    throw std::invalid_argument("AtCollectionEngine: no radios");
  }
  if (params_.sink >= radios.size()) {
    throw std::invalid_argument("AtCollectionEngine: sink out of range");
  }
  nodes_.reserve(radios.size());
  for (std::size_t i = 0; i < radios.size(); ++i) {
    NodeState st(radios.size());
    st.mac = std::make_unique<net::CsmaMac>(sim_, *radios[i], params_.mac,
                                            rng_.stream("mac", i));
    const auto id = static_cast<net::NodeId>(i);
    st.mac->set_receive_handler(
        [this, id](net::NodeId src, const std::vector<std::uint8_t>& msg) {
          on_mac_receive(id, src, msg);
        });
    nodes_.push_back(std::move(st));
  }
}

void AtCollectionEngine::start(sim::TimePoint first_round_start) {
  running_ = true;
  next_round_event_ =
      sim_.schedule_at(first_round_start, [this]() { begin_round(); });
}

void AtCollectionEngine::stop() {
  running_ = false;
  if (next_round_event_.valid()) {
    sim_.cancel(next_round_event_);
    next_round_event_ = sim::EventId{};
  }
}

void AtCollectionEngine::begin_round() {
  if (!running_) return;
  round_start_ = sim_.now();

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeState& st = nodes_[i];
    st.got_command = false;
    const auto id = static_cast<net::NodeId>(i);

    Record own;
    own.origin = id;
    own.version = static_cast<std::uint32_t>(round_ + 1);
    if (refresh_) own.data = refresh_(id, round_);
    st.store.merge(own);

    if (id == params_.sink || !tree_.reachable(id)) continue;
    // Jittered uplink send.
    const sim::Duration jitter = sim::Duration{rng_.uniform_int(
        0, std::max<sim::Ticks>(params_.uplink_jitter.us(), 1))};
    sim_.schedule_after(jitter, [this, id, own]() {
      send_upstream(id, own);
    });
  }

  if (params_.disseminate_command) {
    // The controller pushes its command mid-round (after most records
    // should have arrived).
    sim_.schedule_after(params_.round_period / 2, [this]() {
      if (!running_) return;
      std::vector<std::uint8_t> cmd;
      if (build_command_) {
        cmd = build_command_(round_, nodes_[params_.sink].store);
      }
      cmd.resize(params_.command_bytes, 0);
      net::ByteWriter w;
      w.u8(kMsgCommand);
      w.u32(static_cast<std::uint32_t>(round_));
      for (std::uint8_t b : cmd) w.u8(b);
      const std::vector<std::uint8_t> msg = std::move(w).take();
      nodes_[params_.sink].got_command = true;
      forward_command(params_.sink, msg);
    });
  }

  sim_.schedule_at(round_start_ + params_.round_period -
                       sim::milliseconds(1),
                   [this]() { end_round(); });
}

void AtCollectionEngine::send_upstream(net::NodeId from, const Record& rec) {
  const net::NodeId parent = tree_.parent(from);
  if (parent == net::kInvalidNode) return;
  // One application-level retry on MAC failure (channel-access failure
  // or retry exhaustion), as a real collection layer would do.
  nodes_[from].mac->send(parent, encode_record_msg(rec),
                         [this, from, rec](bool ok) {
                           if (ok || !running_) return;
                           sim_.schedule_after(
                               sim::milliseconds(50), [this, from, rec]() {
                                 const net::NodeId p = tree_.parent(from);
                                 if (p == net::kInvalidNode) return;
                                 nodes_[from].mac->send(
                                     p, encode_record_msg(rec));
                               });
                         });
}

void AtCollectionEngine::forward_command(
    net::NodeId from, const std::vector<std::uint8_t>& msg) {
  for (net::NodeId child : tree_.children(from)) {
    nodes_[from].mac->send(child, msg, [this, from, child, msg](bool ok) {
      if (ok || !running_) return;
      sim_.schedule_after(sim::milliseconds(50), [this, from, child, msg]() {
        nodes_[from].mac->send(child, msg);
      });
    });
  }
}

void AtCollectionEngine::on_mac_receive(
    net::NodeId me, net::NodeId /*src*/,
    const std::vector<std::uint8_t>& msg) {
  if (msg.empty()) return;
  if (msg[0] == kMsgRecord) {
    net::ByteReader r(msg.data() + 1, msg.size() - 1);
    const Record rec = read_record(r);
    if (me == params_.sink) {
      if (nodes_[me].store.merge(rec)) {
        stats_.uplink_latency_sum += sim_.now() - round_start_;
        ++stats_.uplink_deliveries;
      }
      return;
    }
    nodes_[me].store.merge(rec);
    send_upstream(me, rec);  // store-and-forward toward the root
    return;
  }
  if (msg[0] == kMsgCommand) {
    if (nodes_[me].got_command) return;  // already forwarded this round
    nodes_[me].got_command = true;
    if (command_) {
      net::ByteReader r(msg.data() + 1, msg.size() - 1);
      const std::uint32_t cmd_round = r.u32();
      command_(me, cmd_round,
               {msg.begin() + 5, msg.end()});
    }
    forward_command(me, msg);
  }
}

void AtCollectionEngine::end_round() {
  const auto want = static_cast<std::uint32_t>(round_ + 1);
  std::size_t fresh = 0;
  std::size_t got_cmd = 0;
  const NodeState& sink = nodes_[params_.sink];
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i == params_.sink) continue;
    const Record* rec = sink.store.find(static_cast<net::NodeId>(i));
    if (rec != nullptr && rec->version >= want) ++fresh;
    if (nodes_[i].got_command) ++got_cmd;
  }
  ++stats_.rounds;
  const double others = static_cast<double>(nodes_.size() - 1);
  stats_.uplink_coverage_sum += static_cast<double>(fresh) / others;
  stats_.downlink_coverage_sum += static_cast<double>(got_cmd) / others;

  ++round_;
  if (running_) {
    next_round_event_ = sim_.schedule_at(
        round_start_ + params_.round_period, [this]() { begin_round(); });
  }
}

const AtStats& AtCollectionEngine::stats() const {
  stats_.mac_drops = 0;
  stats_.mac_tx_frames = 0;
  for (const NodeState& st : nodes_) {
    const net::CsmaStats& m = st.mac->stats();
    stats_.mac_drops += m.drops_retries + m.drops_cca + m.drops_queue;
    stats_.mac_tx_frames += m.tx_data_frames + m.tx_ack_frames;
  }
  return stats_;
}

std::size_t AtCollectionEngine::max_queue_depth() const {
  std::size_t best = 0;
  for (const NodeState& st : nodes_) {
    best = std::max(best, st.mac->queue_depth());
  }
  return best;
}

}  // namespace han::st
