#include "st/record.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace han::st {

void write_record(net::ByteWriter& w, const Record& rec) {
  w.u16(rec.origin);
  w.u32(rec.version);
  for (std::uint8_t b : rec.data) w.u8(b);
}

Record read_record(net::ByteReader& r) {
  Record rec;
  rec.origin = r.u16();
  rec.version = r.u32();
  for (auto& b : rec.data) b = r.u8();
  return rec;
}

RecordStore::RecordStore(std::size_t node_count) : records_(node_count) {}

bool RecordStore::merge(const Record& rec) {
  if (rec.origin >= records_.size()) return false;
  Entry& e = records_[rec.origin];
  if (e.valid && e.record.version >= rec.version) return false;
  if (!e.valid) ++known_;
  e.record = rec;
  e.valid = true;
  return true;
}

const Record* RecordStore::find(net::NodeId origin) const {
  if (origin >= records_.size() || !records_[origin].valid) return nullptr;
  return &records_[origin].record;
}

std::vector<Record> RecordStore::snapshot() const {
  std::vector<Record> out;
  out.reserve(known_);
  for (const Entry& e : records_) {
    if (e.valid) out.push_back(e.record);
  }
  return out;
}

std::vector<Record> RecordStore::select_for_broadcast(net::NodeId self,
                                                      std::size_t max_count,
                                                      std::uint64_t now_slot) {
  std::vector<Record> out;
  if (max_count == 0) return out;

  if (const Record* own = find(self); own != nullptr) {
    out.push_back(*own);
    records_[self].last_broadcast = now_slot;
  }

  // Other origins, least recently broadcast first; origin id breaks ties
  // deterministically.
  std::vector<net::NodeId> order;
  order.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].valid && i != self) {
      order.push_back(static_cast<net::NodeId>(i));
    }
  }
  std::sort(order.begin(), order.end(), [this](net::NodeId a, net::NodeId b) {
    const Entry& ea = records_[a];
    const Entry& eb = records_[b];
    if (ea.last_broadcast != eb.last_broadcast) {
      return ea.last_broadcast < eb.last_broadcast;
    }
    return a < b;
  });

  for (net::NodeId id : order) {
    if (out.size() >= max_count) break;
    out.push_back(records_[id].record);
    records_[id].last_broadcast = now_slot;
  }
  return out;
}

void RecordStore::clear() {
  for (Entry& e : records_) e = Entry{};
  known_ = 0;
}

std::vector<std::uint8_t> pack_records(const std::vector<Record>& records) {
  assert(records.size() <= records_per_frame());
  net::ByteWriter w(net::kMaxFrameBytes);
  w.u8(static_cast<std::uint8_t>(records.size()));
  for (const Record& r : records) write_record(w, r);
  return std::move(w).take();
}

std::vector<Record> unpack_records(const std::vector<std::uint8_t>& payload) {
  net::ByteReader r(payload);
  const std::size_t count = r.u8();
  if (count > records_per_frame()) {
    throw std::invalid_argument("unpack_records: impossible record count");
  }
  std::vector<Record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(read_record(r));
  return out;
}

}  // namespace han::st
