#include "st/flood.hpp"

#include <cassert>
#include <utility>

namespace han::st {

GlossyNode::GlossyNode(sim::Simulator& sim, net::Radio& radio,
                       FloodParams params)
    : sim_(sim), radio_(radio), params_(params) {
  radio_.set_receive_handler(
      [this](const net::Frame& f, const net::RxInfo& i) { on_rx(f, i); });
}

net::Frame GlossyNode::make_flood_frame(net::FrameKind kind,
                                        net::NodeId source,
                                        const std::vector<std::uint8_t>& inner) {
  net::Frame f;
  f.kind = kind;
  f.source = source;
  f.payload.reserve(inner.size() + 1);
  f.payload.push_back(0);  // relay counter, rewritten per slot
  f.payload.insert(f.payload.end(), inner.begin(), inner.end());
  return f;
}

std::vector<std::uint8_t> GlossyNode::inner_payload(const net::Frame& frame) {
  assert(!frame.payload.empty());
  return {frame.payload.begin() + 1, frame.payload.end()};
}

void GlossyNode::arm_initiator(sim::TimePoint slot0, net::Frame frame,
                               CompleteFn done) {
  assert(!armed_);
  armed_ = true;
  is_initiator_ = true;
  slot0_ = slot0;
  content_ = std::move(frame);
  inner_ = inner_payload(content_);
  have_content_ = true;
  psdu_bytes_ = content_.psdu_bytes();
  slot_len_ = params_.slot_length(psdu_bytes_);
  first_rx_slot_ = -1;
  tx_done_ = 0;
  done_ = std::move(done);

  radio_.listen();
  schedule_transmissions_from(0);
  end_event_ = sim_.schedule_at(
      slot0_ + params_.flood_length(psdu_bytes_), [this]() { finish(); });
}

void GlossyNode::arm_receiver(sim::TimePoint slot0, std::size_t psdu_bytes,
                              CompleteFn done) {
  assert(!armed_);
  armed_ = true;
  is_initiator_ = false;
  slot0_ = slot0;
  psdu_bytes_ = psdu_bytes;
  slot_len_ = params_.slot_length(psdu_bytes);
  have_content_ = false;
  first_rx_slot_ = -1;
  tx_done_ = 0;
  done_ = std::move(done);

  // If armed in the past or the future, the radio simply starts listening
  // now; a late node (clock drift) misses early slots but can still catch
  // a later relay and resynchronize from its relay counter.
  radio_.listen();
  end_event_ = sim_.schedule_at(
      slot0_ + params_.flood_length(psdu_bytes), [this]() { finish(); });
}

void GlossyNode::abort() {
  if (!armed_) return;
  for (sim::EventId id : pending_) sim_.cancel(id);
  pending_.clear();
  sim_.cancel(end_event_);
  armed_ = false;
  have_content_ = false;
  done_ = nullptr;
}

void GlossyNode::on_rx(const net::Frame& frame, const net::RxInfo& info) {
  if (!armed_ || have_content_) return;
  if (frame.payload.empty() || frame.psdu_bytes() != psdu_bytes_) return;
  const int counter = frame.payload[0];
  if (counter >= params_.max_slots) return;

  // Resynchronize: the frame's header started exactly counter slots
  // after the flood's slot 0.
  slot0_ = info.sfd_time - slot_len_ * counter;
  first_rx_slot_ = counter;
  content_ = frame;
  inner_ = inner_payload(frame);
  have_content_ = true;
  schedule_transmissions_from(counter + 1);
}

void GlossyNode::schedule_transmissions_from(int first_tx_slot) {
  // Transmit in alternating slots (tx, rx, tx, ...) as in Glossy.
  int scheduled = 0;
  for (int slot = first_tx_slot;
       slot < params_.max_slots && scheduled < params_.n_tx;
       slot += 2, ++scheduled) {
    const sim::TimePoint at = slot0_ + slot_len_ * slot;
    if (at < sim_.now()) continue;  // late reception; skip past slots
    const int s = slot;
    pending_.push_back(sim_.schedule_at(at, [this, s]() {
      transmit_in_slot(s);
    }));
  }
}

void GlossyNode::transmit_in_slot(int slot) {
  if (!armed_ || !have_content_) return;
  if (radio_.state() == net::Radio::State::kTx) return;  // defensive
  net::Frame f = content_;
  f.payload[0] = static_cast<std::uint8_t>(slot);
  ++tx_done_;
  radio_.transmit(std::move(f));
}

void GlossyNode::finish() {
  assert(armed_);
  for (sim::EventId id : pending_) sim_.cancel(id);
  pending_.clear();
  armed_ = false;

  FloodResult result;
  result.initiator = is_initiator_;
  result.received = have_content_;
  result.first_rx_slot = first_rx_slot_;
  result.tx_count = tx_done_;
  if (have_content_) {
    result.payload = content_;
    result.payload.payload[0] = 0;  // normalize the counter byte
  }
  have_content_ = false;

  // Leave the radio listening; the layer above decides on duty cycling.
  if (done_) {
    CompleteFn done = std::move(done_);
    done_ = nullptr;
    done(result);
  }
}

}  // namespace han::st
