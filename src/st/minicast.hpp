// han::st — MiniCast: many-to-many data sharing over ST floods.
//
// Implements the Communication Plane of the paper: every round_period
// (2 s by default) the network runs one MiniCast round — a TDMA sequence
// of Glossy floods, one per node, where the slot-s initiator is node s.
// Each flood carries an aggregated chunk of up to records_per_frame()
// versioned records (its own plus the least-recently-rebroadcast ones it
// knows), so after one round every node has the freshest record of every
// other node with high probability, even across multiple hops.
//
// At the end of each round the engine hands every node its local view
// (RecordStore) — the application (the load scheduler) runs on top of
// exactly that, and nothing else: there is no central collection point.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/medium.hpp"
#include "net/radio.hpp"
#include "st/flood.hpp"
#include "st/record.hpp"
#include "st/sync.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace han::st {

/// MiniCast tuning parameters.
struct MiniCastParams {
  sim::Duration round_period = sim::seconds(2);
  FloodParams flood{.n_tx = 3, .max_slots = 12,
                    .processing = sim::microseconds(200)};
  /// Gap between consecutive flood slots (radio turnaround + guard).
  sim::Duration slot_guard = sim::milliseconds(2);
  /// Magnitude bound of per-node crystal error; actual drift is drawn
  /// uniformly from [-max_drift_ppm, +max_drift_ppm].
  double max_drift_ppm = 40.0;
  /// Radios sleep between a node's relevant slots when true (LPL-style
  /// duty cycling of the CP itself).
  bool sleep_between_rounds = true;
};

/// Per-round dissemination quality metrics.
struct RoundStats {
  std::uint64_t round = 0;
  /// Fraction of (node, origin) pairs whose record is the current
  /// version after the round; 1.0 = perfect all-to-all sharing.
  double coverage = 0.0;
  /// Number of nodes holding every node's current record.
  std::size_t complete_nodes = 0;
  std::uint64_t floods_received = 0;
  std::uint64_t floods_missed = 0;
};

/// Cumulative engine statistics.
struct MiniCastStats {
  std::uint64_t rounds = 0;
  double coverage_sum = 0.0;
  double min_coverage = 1.0;
  std::uint64_t floods_received = 0;
  std::uint64_t floods_missed = 0;

  [[nodiscard]] double mean_coverage() const noexcept {
    return rounds == 0 ? 1.0 : coverage_sum / static_cast<double>(rounds);
  }
};

/// Runs the CP for one deployment. Owns per-node protocol state; the
/// radios (and below them the medium/channel) are owned by the caller.
class MiniCastEngine {
 public:
  /// Refreshes node `id`'s own record content at the start of round
  /// `round`. The engine assigns the version (the round number + 1).
  using RefreshFn = std::function<std::array<std::uint8_t, kRecordBytes>(
      net::NodeId id, std::uint64_t round)>;

  /// Called per node when a round completes, with the node's own view.
  using RoundCompleteFn = std::function<void(
      net::NodeId id, std::uint64_t round, const RecordStore& view)>;

  MiniCastEngine(sim::Simulator& sim, std::vector<net::Radio*> radios,
                 const MiniCastParams& params, sim::Rng rng);

  MiniCastEngine(const MiniCastEngine&) = delete;
  MiniCastEngine& operator=(const MiniCastEngine&) = delete;

  void set_refresh_handler(RefreshFn fn) { refresh_ = std::move(fn); }
  void set_round_complete_handler(RoundCompleteFn fn) {
    round_complete_ = std::move(fn);
  }

  /// Starts periodic rounds; the first begins at `first_round_start`.
  void start(sim::TimePoint first_round_start);
  /// Stops after the current round.
  void stop();

  /// Marks a node dead/alive (fault injection). Dead nodes neither
  /// initiate nor relay; the network must route around them.
  void set_node_failed(net::NodeId id, bool failed);

  /// Duration of one full round of slots (must fit in round_period).
  [[nodiscard]] sim::Duration round_active_duration() const;

  [[nodiscard]] const MiniCastParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const RecordStore& view_of(net::NodeId id) const;
  [[nodiscard]] const MiniCastStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<RoundStats>& round_history() const noexcept {
    return round_history_;
  }
  /// Keep only aggregate stats, not per-round history (long runs).
  void set_keep_history(bool keep) noexcept { keep_history_ = keep; }

  /// Fixed on-air chunk payload size (records + count byte, padded).
  [[nodiscard]] static constexpr std::size_t chunk_inner_bytes() noexcept {
    return 1 + records_per_frame() * kRecordWireBytes;
  }
  /// PSDU of a chunk flood frame (inner + relay counter + MAC overhead).
  [[nodiscard]] static constexpr std::size_t chunk_psdu_bytes() noexcept {
    return chunk_inner_bytes() + 1 + 11;
  }

 private:
  struct NodeState {
    net::Radio* radio = nullptr;
    std::unique_ptr<GlossyNode> glossy;
    RecordStore store;
    DriftClock clock;
    bool failed = false;
    std::uint64_t floods_received = 0;
    std::uint64_t floods_missed = 0;

    NodeState(std::size_t n) : store(n) {}
  };

  void begin_round();
  void begin_slot(std::size_t slot);
  void end_round();
  [[nodiscard]] sim::Duration slot_duration() const;

  sim::Simulator& sim_;
  MiniCastParams params_;
  sim::Rng rng_;
  std::vector<NodeState> nodes_;
  RefreshFn refresh_;
  RoundCompleteFn round_complete_;
  std::uint64_t round_ = 0;
  sim::TimePoint round_start_;
  sim::EventId next_round_event_{};
  bool running_ = false;
  bool keep_history_ = true;
  MiniCastStats stats_;
  std::vector<RoundStats> round_history_;
  RoundStats current_;
};

}  // namespace han::st
