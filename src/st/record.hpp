// han::st — versioned per-origin records shared by MiniCast.
//
// MiniCast disseminates one small, fixed-size record per node. Records
// are opaque to the ST layer (the application packs appliance status
// into them) and carry a monotonically increasing version so that stale
// copies received via gossip never overwrite fresher ones.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"

namespace han::st {

/// Application payload bytes per record. 12 bytes carry the appliance
/// status record incl. its published schedule slot (see
/// core::StatusCodec) while letting six records fit into one frame.
inline constexpr std::size_t kRecordBytes = 12;

/// One shared record.
struct Record {
  net::NodeId origin = net::kInvalidNode;
  std::uint32_t version = 0;
  std::array<std::uint8_t, kRecordBytes> data{};

  bool operator==(const Record&) const = default;
};

/// Serialized size of one record on the air.
inline constexpr std::size_t kRecordWireBytes = 2 + 4 + kRecordBytes;

/// Appends `rec` to `w`.
void write_record(net::ByteWriter& w, const Record& rec);
/// Reads one record from `r`.
[[nodiscard]] Record read_record(net::ByteReader& r);

/// Per-node table of the freshest known record from every origin.
///
/// Also tracks, per origin, when the local node last re-broadcast the
/// record; MiniCast's aggregation policy uses this to pick which records
/// to piggyback so that gossip coverage is uniform.
class RecordStore {
 public:
  explicit RecordStore(std::size_t node_count);

  /// Inserts/updates iff `rec.version` is newer than the stored copy.
  /// Returns true when the table changed.
  bool merge(const Record& rec);

  /// Freshest known record from `origin`, if any.
  [[nodiscard]] const Record* find(net::NodeId origin) const;

  /// All known records, ordered by origin id (deterministic).
  [[nodiscard]] std::vector<Record> snapshot() const;

  /// Number of distinct origins known.
  [[nodiscard]] std::size_t known_count() const noexcept { return known_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return records_.size();
  }

  /// Picks up to `max_count` records to piggyback on a transmission,
  /// least-recently-broadcast first (always including `self` first if
  /// known). `now_slot` is a monotonically increasing broadcast epoch.
  [[nodiscard]] std::vector<Record> select_for_broadcast(
      net::NodeId self, std::size_t max_count, std::uint64_t now_slot);

  void clear();

 private:
  struct Entry {
    Record record;
    bool valid = false;
    std::uint64_t last_broadcast = 0;
  };
  std::vector<Entry> records_;  // indexed by origin
  std::size_t known_ = 0;
};

/// Packs `records` into a MiniCast chunk payload (count byte + records).
[[nodiscard]] std::vector<std::uint8_t> pack_records(
    const std::vector<Record>& records);

/// Unpacks a MiniCast chunk payload. Throws on malformed input.
[[nodiscard]] std::vector<Record> unpack_records(
    const std::vector<std::uint8_t>& payload);

/// Records that fit in one flood frame given the PSDU budget:
/// 127 payload bytes - 1 relay counter - 1 count byte.
[[nodiscard]] constexpr std::size_t records_per_frame() noexcept {
  return (net::kMaxFrameBytes - 2) / kRecordWireBytes;
}

}  // namespace han::st
