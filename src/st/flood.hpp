// han::st — Glossy-style synchronous-transmission flood.
//
// One flood disseminates a single frame from an initiator to the whole
// network. Time is divided into slots of fixed length (frame airtime +
// a processing gap). The initiator transmits in slot 0; every node that
// first receives the frame in slot s retransmits it in slots s+1, s+3,
// ... up to n_tx transmissions. Because all nodes that received in the
// same slot saw the *same* reception end instant, their relays start
// within the constructive-interference window and combine at the next
// hop (see net::Medium).
//
// The relay counter embedded in the frame equals the slot index of the
// transmission, which lets receivers recover the flood's slot-0 time and
// stay aligned — this is also how real Glossy implementations obtain
// network-wide time synchronization.
#pragma once

#include <functional>
#include <optional>

#include "net/packet.hpp"
#include "net/radio.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace han::st {

/// Flood tuning parameters.
struct FloodParams {
  /// Transmissions per participating node (initiator included).
  int n_tx = 3;
  /// Flood length in slots; the flood ends unconditionally after this.
  int max_slots = 16;
  /// Software/turnaround gap between a slot's reception end and the
  /// relay transmission (must exceed net::kTurnaround).
  sim::Duration processing = sim::microseconds(200);

  /// Slot length for a given PSDU size.
  [[nodiscard]] sim::Duration slot_length(std::size_t psdu_bytes) const {
    return net::frame_airtime(psdu_bytes) + processing;
  }
  /// Whole-flood duration for a given PSDU size.
  [[nodiscard]] sim::Duration flood_length(std::size_t psdu_bytes) const {
    return slot_length(psdu_bytes) * max_slots;
  }
};

/// Per-node outcome of one flood.
struct FloodResult {
  bool initiator = false;
  bool received = false;   // true for the initiator as well
  int first_rx_slot = -1;  // slot of first reception (hop-distance proxy)
  int tx_count = 0;
  net::Frame payload;      // valid when received
};

/// Per-node flood state machine. A GlossyNode is re-armed for every
/// flood (slot) it participates in; between floods it is idle and the
/// radio can be turned off by the caller.
class GlossyNode {
 public:
  using CompleteFn = std::function<void(const FloodResult&)>;

  GlossyNode(sim::Simulator& sim, net::Radio& radio, FloodParams params);

  GlossyNode(const GlossyNode&) = delete;
  GlossyNode& operator=(const GlossyNode&) = delete;

  /// Arms this node as the flood initiator. `slot0` is the absolute time
  /// of the first transmission; the payload PSDU size defines the slot
  /// length for the whole flood (all relays carry identical bytes).
  void arm_initiator(sim::TimePoint slot0, net::Frame frame, CompleteFn done);

  /// Arms this node as a receiver/relay. `psdu_bytes` must match the
  /// initiator's frame size (TDMA slot plans fix the frame size).
  void arm_receiver(sim::TimePoint slot0, std::size_t psdu_bytes,
                    CompleteFn done);

  /// Cancels a pending flood (result reported as not received).
  void abort();

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] const FloodParams& params() const noexcept { return params_; }

  /// Builds the on-air frame for a flood: [relay_counter u8][inner...].
  [[nodiscard]] static net::Frame make_flood_frame(
      net::FrameKind kind, net::NodeId source,
      const std::vector<std::uint8_t>& inner);

  /// Extracts the inner payload (drops the relay counter byte).
  [[nodiscard]] static std::vector<std::uint8_t> inner_payload(
      const net::Frame& frame);

 private:
  void on_rx(const net::Frame& frame, const net::RxInfo& info);
  void schedule_transmissions_from(int first_tx_slot);
  void transmit_in_slot(int slot);
  void finish();

  sim::Simulator& sim_;
  net::Radio& radio_;
  FloodParams params_;

  bool armed_ = false;
  bool is_initiator_ = false;
  sim::TimePoint slot0_;       // local estimate of the flood start
  std::size_t psdu_bytes_ = 0;
  sim::Duration slot_len_{};
  net::Frame content_;         // frame being flooded (without counter byte)
  std::vector<std::uint8_t> inner_;
  bool have_content_ = false;
  int first_rx_slot_ = -1;
  int tx_done_ = 0;
  std::vector<sim::EventId> pending_;
  sim::EventId end_event_{};
  CompleteFn done_;
};

}  // namespace han::st
