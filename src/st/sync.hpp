// han::st — per-node clock drift model.
//
// TelosB-class nodes keep time with a 32 kHz crystal whose frequency
// error is tens of ppm. Between CP rounds a node's notion of "round
// start" therefore drifts away from the network's; receiving any flood
// resynchronizes it (Glossy-style sync recovers slot 0 to sub-slot
// accuracy from the relay counter). We model exactly that: a linear
// offset that grows from the last resync and collapses on reception.
#pragma once

#include <cmath>

#include "sim/time.hpp"

namespace han::st {

/// Linear-drift clock with explicit resync points.
class DriftClock {
 public:
  DriftClock() = default;
  /// `drift_ppm` may be negative (slow crystal).
  explicit DriftClock(double drift_ppm) : drift_ppm_(drift_ppm) {}

  /// Offset of the local clock from global time at global instant `now`:
  /// positive offset means the node acts late.
  [[nodiscard]] sim::Duration offset(sim::TimePoint now) const {
    const double elapsed_us =
        static_cast<double>((now - last_sync_).us());
    return sim::Duration{
        residual_.us() +
        static_cast<sim::Ticks>(std::llround(drift_ppm_ * 1e-6 * elapsed_us))};
  }

  /// Converts a global deadline into the instant at which this node will
  /// actually act on it.
  [[nodiscard]] sim::TimePoint local_fire_time(sim::TimePoint global) const {
    return global + offset(global);
  }

  /// Records a resynchronization at global time `now` with the given
  /// residual error (zero for ST slot-level sync).
  void resync(sim::TimePoint now,
              sim::Duration residual = sim::Duration::zero()) {
    last_sync_ = now;
    residual_ = residual;
  }

  [[nodiscard]] double drift_ppm() const noexcept { return drift_ppm_; }
  [[nodiscard]] sim::TimePoint last_sync() const noexcept {
    return last_sync_;
  }

 private:
  double drift_ppm_ = 0.0;
  sim::TimePoint last_sync_ = sim::TimePoint::epoch();
  sim::Duration residual_ = sim::Duration::zero();
};

}  // namespace han::st
