#include "st/collection.hpp"

#include "st/minicast.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace han::st {

CollectionEngine::CollectionEngine(sim::Simulator& sim,
                                   std::vector<net::Radio*> radios,
                                   const CollectionParams& params,
                                   sim::Rng rng)
    : sim_(sim), params_(params), rng_(rng) {
  if (radios.empty()) {
    throw std::invalid_argument("CollectionEngine: no radios");
  }
  if (params_.sink >= radios.size()) {
    throw std::invalid_argument("CollectionEngine: sink id out of range");
  }
  nodes_.reserve(radios.size());
  for (std::size_t i = 0; i < radios.size(); ++i) {
    assert(radios[i] != nullptr);
    NodeState st(radios.size());
    st.radio = radios[i];
    st.glossy = std::make_unique<GlossyNode>(sim_, *radios[i], params_.flood);
    nodes_.push_back(std::move(st));
  }
}

sim::Duration CollectionEngine::slot_duration() const {
  const std::size_t psdu =
      std::max(MiniCastEngine::chunk_psdu_bytes(), command_psdu());
  return params_.flood.flood_length(psdu) + params_.slot_guard;
}

std::size_t CollectionEngine::command_psdu() const {
  return params_.command_bytes + 1 + 11;
}

sim::Duration CollectionEngine::round_active_duration() const {
  // N uplink slots + 1 downlink slot.
  return slot_duration() * static_cast<sim::Ticks>(nodes_.size() + 1);
}

void CollectionEngine::start(sim::TimePoint first_round_start) {
  if (round_active_duration() + params_.slot_guard > params_.round_period) {
    throw std::invalid_argument(
        "CollectionEngine: slots do not fit into round_period");
  }
  running_ = true;
  sim_.schedule_at(first_round_start, [this]() { begin_round(); });
}

void CollectionEngine::stop() { running_ = false; }

void CollectionEngine::set_node_failed(net::NodeId id, bool failed) {
  NodeState& st = nodes_.at(id);
  st.failed = failed;
  if (failed) {
    if (st.glossy->armed()) st.glossy->abort();
    if (st.radio->state() != net::Radio::State::kTx) st.radio->turn_off();
  }
}

void CollectionEngine::begin_round() {
  if (!running_) return;
  round_start_ = sim_.now();

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeState& st = nodes_[i];
    st.got_command = false;
    if (st.failed) continue;
    Record own;
    own.origin = static_cast<net::NodeId>(i);
    own.version = static_cast<std::uint32_t>(round_ + 1);
    if (refresh_) own.data = refresh_(static_cast<net::NodeId>(i), round_);
    st.store.merge(own);
  }

  const sim::Duration slot_dur = slot_duration();
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    sim_.schedule_at(round_start_ + slot_dur * static_cast<sim::Ticks>(s),
                     [this, s]() { begin_uplink_slot(s); });
  }
  sim_.schedule_at(
      round_start_ + slot_dur * static_cast<sim::Ticks>(nodes_.size()),
      [this]() { begin_downlink_slot(); });
  sim_.schedule_at(
      round_start_ + round_active_duration() + params_.slot_guard,
      [this]() { end_round(); });
}

void CollectionEngine::begin_uplink_slot(std::size_t slot) {
  const sim::TimePoint slot0 = sim_.now() + params_.slot_guard;
  const net::NodeId initiator = static_cast<net::NodeId>(slot);
  const std::size_t psdu = MiniCastEngine::chunk_psdu_bytes();

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].failed) continue;
    const net::NodeId id = static_cast<net::NodeId>(i);

    // Scheduled (not invoked inline) so the previous slot's same-time
    // flood-end events complete before re-arming; see MiniCastEngine.
    sim_.schedule_after(sim::Duration::zero(), [this, id, initiator, slot0,
                                                slot]() {
      NodeState& node = nodes_[id];
      if (node.failed) return;
      if (node.glossy->armed()) node.glossy->abort();

      auto on_done = [this, id](const FloodResult& result) {
        NodeState& n = nodes_[id];
        if (result.received && !result.initiator) {
          for (const Record& rec :
               unpack_records(GlossyNode::inner_payload(result.payload))) {
            if (rec.origin != net::kInvalidNode) n.store.merge(rec);
          }
        }
        if (n.radio->state() == net::Radio::State::kListen) {
          n.radio->turn_off();
        }
      };

      if (id == initiator) {
        std::vector<Record> recs = node.store.select_for_broadcast(
            id, records_per_frame(), round_ * (nodes_.size() + 1) + slot + 1);
        std::vector<std::uint8_t> inner = pack_records(recs);
        inner.resize(1 + records_per_frame() * kRecordWireBytes, 0);
        net::Frame frame = GlossyNode::make_flood_frame(
            net::FrameKind::kCollection, id, inner);
        node.glossy->arm_initiator(slot0, std::move(frame),
                                   std::move(on_done));
      } else {
        node.glossy->arm_receiver(slot0, MiniCastEngine::chunk_psdu_bytes(),
                                  std::move(on_done));
      }
    });
  }
  (void)psdu;
}

void CollectionEngine::begin_downlink_slot() {
  const sim::TimePoint slot0 = sim_.now() + params_.slot_guard;
  NodeState& sink_node = nodes_[params_.sink];
  if (sink_node.failed) return;  // headless system: no command this round

  std::vector<std::uint8_t> cmd;
  if (build_command_) cmd = build_command_(round_, sink_node.store);
  if (cmd.size() > params_.command_bytes) {
    throw std::length_error("CollectionEngine: command too large");
  }
  cmd.resize(params_.command_bytes, 0);

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].failed) continue;
    const net::NodeId id = static_cast<net::NodeId>(i);

    sim_.schedule_after(sim::Duration::zero(), [this, id, slot0, cmd]() {
      NodeState& node = nodes_[id];
      if (node.failed) return;
      if (node.glossy->armed()) node.glossy->abort();

      auto on_done = [this, id](const FloodResult& result) {
        NodeState& n = nodes_[id];
        if (result.received) {
          n.got_command = true;
          if (!result.initiator && command_) {
            command_(id, round_, GlossyNode::inner_payload(result.payload));
          }
        }
        if (n.radio->state() == net::Radio::State::kListen) {
          n.radio->turn_off();
        }
      };

      if (id == params_.sink) {
        net::Frame frame = GlossyNode::make_flood_frame(
            net::FrameKind::kCollection, id, cmd);
        node.glossy->arm_initiator(slot0, std::move(frame),
                                   std::move(on_done));
      } else {
        node.glossy->arm_receiver(slot0, command_psdu(), std::move(on_done));
      }
    });
  }
}

void CollectionEngine::end_round() {
  const std::uint32_t want = static_cast<std::uint32_t>(round_ + 1);
  std::size_t alive = 0;
  std::size_t at_sink = 0;
  std::size_t got_cmd = 0;
  const NodeState& sink = nodes_[params_.sink];
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeState& st = nodes_[i];
    if (st.failed) continue;
    ++alive;
    const Record* rec = sink.store.find(static_cast<net::NodeId>(i));
    if (!sink.failed && rec != nullptr && rec->version >= want) ++at_sink;
    if (st.got_command) ++got_cmd;
  }
  ++stats_.rounds;
  if (alive > 0) {
    stats_.uplink_coverage_sum +=
        static_cast<double>(at_sink) / static_cast<double>(alive);
    stats_.downlink_coverage_sum +=
        static_cast<double>(got_cmd) / static_cast<double>(alive);
  }

  ++round_;
  if (running_) {
    sim_.schedule_at(round_start_ + params_.round_period,
                     [this]() { begin_round(); });
  }
}

}  // namespace han::st
