// han::st — many-to-one collection + command dissemination.
//
// A centralized-controller realization over the same ST substrate,
// modelled on the many-to-one protocol of Saha et al. (INFOCOM'17,
// ref [8] of the paper). Each round:
//   1. N TDMA flood slots aggregate every node's record toward the sink
//      (nodes relay and merge, so aggregation is network-coded upward);
//   2. the sink computes a command (e.g. a central schedule) from its
//      view and floods it in one final slot.
//
// This engine exists for the comparison experiments (DESIGN.md Abl-5):
// it shares the radio substrate with MiniCast but reintroduces the
// single point of failure and the extra downlink latency the paper's
// decentralized design avoids.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/radio.hpp"
#include "st/flood.hpp"
#include "st/record.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace han::st {

/// Collection engine parameters.
struct CollectionParams {
  sim::Duration round_period = sim::seconds(2);
  FloodParams flood{.n_tx = 3, .max_slots = 12,
                    .processing = sim::microseconds(200)};
  sim::Duration slot_guard = sim::milliseconds(2);
  net::NodeId sink = 0;
  /// Maximum command payload bytes carried by the downlink flood.
  std::size_t command_bytes = 100;
};

/// Cumulative statistics.
struct CollectionStats {
  std::uint64_t rounds = 0;
  /// Fraction of alive nodes whose current record reached the sink.
  double uplink_coverage_sum = 0.0;
  /// Fraction of alive nodes that received the sink's command.
  double downlink_coverage_sum = 0.0;

  [[nodiscard]] double mean_uplink() const noexcept {
    return rounds == 0 ? 1.0
                       : uplink_coverage_sum / static_cast<double>(rounds);
  }
  [[nodiscard]] double mean_downlink() const noexcept {
    return rounds == 0 ? 1.0
                       : downlink_coverage_sum / static_cast<double>(rounds);
  }
};

/// Periodic collect-then-command engine with a designated sink.
class CollectionEngine {
 public:
  using RefreshFn = std::function<std::array<std::uint8_t, kRecordBytes>(
      net::NodeId id, std::uint64_t round)>;
  /// Sink-side: builds the command payload from the sink's view.
  using BuildCommandFn = std::function<std::vector<std::uint8_t>(
      std::uint64_t round, const RecordStore& sink_view)>;
  /// Node-side: delivers the command (only on nodes that received it).
  using CommandFn = std::function<void(net::NodeId id, std::uint64_t round,
                                       const std::vector<std::uint8_t>&)>;

  CollectionEngine(sim::Simulator& sim, std::vector<net::Radio*> radios,
                   const CollectionParams& params, sim::Rng rng);

  CollectionEngine(const CollectionEngine&) = delete;
  CollectionEngine& operator=(const CollectionEngine&) = delete;

  void set_refresh_handler(RefreshFn fn) { refresh_ = std::move(fn); }
  void set_build_command_handler(BuildCommandFn fn) {
    build_command_ = std::move(fn);
  }
  void set_command_handler(CommandFn fn) { command_ = std::move(fn); }

  void start(sim::TimePoint first_round_start);
  void stop();

  /// Fault injection; failing the sink stalls the whole system — the
  /// single-point-of-failure experiment.
  void set_node_failed(net::NodeId id, bool failed);

  [[nodiscard]] sim::Duration round_active_duration() const;
  [[nodiscard]] const CollectionStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const RecordStore& sink_view() const {
    return nodes_.at(params_.sink).store;
  }

 private:
  struct NodeState {
    net::Radio* radio = nullptr;
    std::unique_ptr<GlossyNode> glossy;
    RecordStore store;
    bool failed = false;
    bool got_command = false;

    explicit NodeState(std::size_t n) : store(n) {}
  };

  void begin_round();
  void begin_uplink_slot(std::size_t slot);
  void begin_downlink_slot();
  void end_round();
  [[nodiscard]] sim::Duration slot_duration() const;
  [[nodiscard]] std::size_t command_psdu() const;

  sim::Simulator& sim_;
  CollectionParams params_;
  sim::Rng rng_;
  std::vector<NodeState> nodes_;
  RefreshFn refresh_;
  BuildCommandFn build_command_;
  CommandFn command_;
  std::uint64_t round_ = 0;
  sim::TimePoint round_start_;
  bool running_ = false;
  CollectionStats stats_;
};

}  // namespace han::st
