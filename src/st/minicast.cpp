#include "st/minicast.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace han::st {

MiniCastEngine::MiniCastEngine(sim::Simulator& sim,
                               std::vector<net::Radio*> radios,
                               const MiniCastParams& params, sim::Rng rng)
    : sim_(sim), params_(params), rng_(rng) {
  if (radios.empty()) {
    throw std::invalid_argument("MiniCastEngine: no radios");
  }
  nodes_.reserve(radios.size());
  for (std::size_t i = 0; i < radios.size(); ++i) {
    assert(radios[i] != nullptr);
    NodeState st(radios.size());
    st.radio = radios[i];
    st.glossy =
        std::make_unique<GlossyNode>(sim_, *radios[i], params_.flood);
    st.clock = DriftClock(
        rng_.stream("drift", i).uniform(-params_.max_drift_ppm,
                                        params_.max_drift_ppm));
    nodes_.push_back(std::move(st));
  }
}

sim::Duration MiniCastEngine::slot_duration() const {
  return params_.flood.flood_length(chunk_psdu_bytes()) + params_.slot_guard;
}

sim::Duration MiniCastEngine::round_active_duration() const {
  return slot_duration() * static_cast<sim::Ticks>(nodes_.size());
}

const RecordStore& MiniCastEngine::view_of(net::NodeId id) const {
  return nodes_.at(id).store;
}

void MiniCastEngine::start(sim::TimePoint first_round_start) {
  if (round_active_duration() + params_.slot_guard > params_.round_period) {
    throw std::invalid_argument(
        "MiniCastEngine: slots (" +
        round_active_duration().to_string() +
        ") do not fit into the round period (" +
        params_.round_period.to_string() +
        "); increase round_period or reduce max_slots");
  }
  running_ = true;
  next_round_event_ =
      sim_.schedule_at(first_round_start, [this]() { begin_round(); });
}

void MiniCastEngine::stop() {
  running_ = false;
  if (next_round_event_.valid()) {
    sim_.cancel(next_round_event_);
    next_round_event_ = sim::EventId{};
  }
}

void MiniCastEngine::set_node_failed(net::NodeId id, bool failed) {
  NodeState& st = nodes_.at(id);
  st.failed = failed;
  if (failed) {
    if (st.glossy->armed()) st.glossy->abort();
    if (st.radio->state() != net::Radio::State::kTx) st.radio->turn_off();
  }
}

void MiniCastEngine::begin_round() {
  if (!running_) return;
  round_start_ = sim_.now();
  current_ = RoundStats{};
  current_.round = round_;

  // Refresh every alive node's own record; version = round + 1 so that
  // freshness checks are trivial and identical at all nodes.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeState& st = nodes_[i];
    if (st.failed) continue;
    Record own;
    own.origin = static_cast<net::NodeId>(i);
    own.version = static_cast<std::uint32_t>(round_ + 1);
    if (refresh_) {
      own.data = refresh_(static_cast<net::NodeId>(i), round_);
    }
    st.store.merge(own);
  }

  const sim::Duration slot_dur = slot_duration();
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    sim_.schedule_at(round_start_ + slot_dur * static_cast<sim::Ticks>(s),
                     [this, s]() { begin_slot(s); });
  }
  // The guard margin keeps end_round strictly after the last flood's end
  // event even under worst-case clock drift.
  sim_.schedule_at(round_start_ + round_active_duration() + params_.slot_guard,
                   [this]() { end_round(); });
}

void MiniCastEngine::begin_slot(std::size_t slot) {
  // Global flood start for this slot; each node acts at its local
  // perception of it (clock drift), and GlossyNode tolerates lateness.
  const sim::TimePoint slot0 = sim_.now() + params_.slot_guard;
  const net::NodeId initiator = static_cast<net::NodeId>(slot);

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeState& st = nodes_[i];
    if (st.failed) continue;

    sim::TimePoint local = st.clock.local_fire_time(slot0);
    if (local < sim_.now()) local = sim_.now();
    const net::NodeId id = static_cast<net::NodeId>(i);
    const bool is_initiator = (id == initiator);

    // The arm event is scheduled *after* any already-queued same-time
    // events, so the previous slot's flood-end callback (which reports
    // the result) always runs before we re-arm; abort() below only hits
    // floods genuinely stuck past their window (extreme drift).
    sim_.schedule_at(local, [this, id, is_initiator, local, slot]() {
      NodeState& node = nodes_[id];
      if (node.failed) return;
      if (node.glossy->armed()) node.glossy->abort();
      auto on_done = [this, id](const FloodResult& result) {
        NodeState& n = nodes_[id];
        if (result.received) {
          ++n.floods_received;
          ++current_.floods_received;
          if (!result.initiator) {
            for (const Record& rec :
                 unpack_records(GlossyNode::inner_payload(result.payload))) {
              if (rec.origin != net::kInvalidNode) n.store.merge(rec);
            }
            n.clock.resync(sim_.now());
          }
        } else {
          ++n.floods_missed;
          ++current_.floods_missed;
        }
        if (params_.sleep_between_rounds &&
            n.radio->state() == net::Radio::State::kListen) {
          n.radio->turn_off();
        }
      };

      if (is_initiator) {
        std::vector<Record> recs = node.store.select_for_broadcast(
            id, records_per_frame(),
            round_ * nodes_.size() + slot + 1);
        std::vector<std::uint8_t> inner = pack_records(recs);
        inner.resize(chunk_inner_bytes(), 0);
        net::Frame frame = GlossyNode::make_flood_frame(
            net::FrameKind::kMiniCastChunk, id, inner);
        node.glossy->arm_initiator(local, std::move(frame),
                                   std::move(on_done));
      } else {
        node.glossy->arm_receiver(local, chunk_psdu_bytes(),
                                  std::move(on_done));
      }
    });
  }
}

void MiniCastEngine::end_round() {
  // Dissemination quality: a (holder, origin) pair is covered when the
  // holder has the origin's *current* record version.
  const std::uint32_t want = static_cast<std::uint32_t>(round_ + 1);
  std::size_t alive = 0;
  std::size_t covered = 0;
  std::size_t pairs = 0;
  for (const NodeState& st : nodes_) {
    if (!st.failed) ++alive;
  }
  for (std::size_t holder = 0; holder < nodes_.size(); ++holder) {
    const NodeState& hs = nodes_[holder];
    if (hs.failed) continue;
    std::size_t holder_covered = 0;
    for (std::size_t origin = 0; origin < nodes_.size(); ++origin) {
      if (nodes_[origin].failed || origin == holder) continue;
      ++pairs;
      const Record* rec = hs.store.find(static_cast<net::NodeId>(origin));
      if (rec != nullptr && rec->version >= want) {
        ++covered;
        ++holder_covered;
      }
    }
    if (alive > 0 && holder_covered == alive - 1) ++current_.complete_nodes;
  }
  current_.coverage =
      pairs == 0 ? 1.0
                 : static_cast<double>(covered) / static_cast<double>(pairs);

  ++stats_.rounds;
  stats_.coverage_sum += current_.coverage;
  stats_.min_coverage = std::min(stats_.min_coverage, current_.coverage);
  stats_.floods_received += current_.floods_received;
  stats_.floods_missed += current_.floods_missed;
  if (keep_history_) round_history_.push_back(current_);

  if (round_complete_) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].failed) continue;
      round_complete_(static_cast<net::NodeId>(i), round_, nodes_[i].store);
    }
  }

  ++round_;
  if (running_) {
    next_round_event_ = sim_.schedule_at(round_start_ + params_.round_period,
                                         [this]() { begin_round(); });
  }
}

}  // namespace han::st
