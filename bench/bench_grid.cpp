// bench_grid — cost and effect of closing the grid control loop.
//
// Prints a DR efficacy table (dr_heat_wave open vs closed loop: overload
// minutes, sheds, unserved kW, wall clock — the lockstep-barrier
// overhead is the price of the closed loop), the multi_feeder shard
// sweep, and a polled-vs-event-driven control-plane sweep (barrier
// count, controller wakes, wall clock) across premise counts and K
// feeders, then runs google-benchmark timings over a small fleet:
// plain run() vs run_grid() disabled (pure lockstep overhead) vs
// run_grid() enabled (overhead + control).
//
// Also prints a fidelity-tier throughput sweep (open-loop premises/sec
// at full / device / statistical fidelity plus each cheap tier's feeder
// energy divergence from full — the numbers EXPERIMENTS.md records).
//
// Pass `--json out.json` to also write the headline metrics as JSON
// (CI archives BENCH_grid.json and diffs fresh runs against it with
// ci/check_bench.py). Pass `--telemetry out.json` to write the closed
// dr_heat_wave run's telemetry manifest (phase profile + counters).
//
// Environment knobs (CI smoke runs use tiny values):
//   HAN_GRID_PREMISES   fleet size for the efficacy table (default 100)
//   HAN_GRID_THREADS    executor width for the table (default 0 = hw)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace han;
using bench::env_size;

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_efficacy_table(bench::JsonReport& report,
                          telemetry::Collector* tel) {
  const std::size_t premises = env_size("HAN_GRID_PREMISES", 100);
  const std::size_t threads = env_size("HAN_GRID_THREADS", 0);

  std::printf(
      "\n================================================================\n"
      "grid layer — dr_heat_wave open vs closed loop\n"
      "(paper: Debadarshini & Saha, ICDCS'22; see EXPERIMENTS.md)\n"
      "CP fidelity: abstract (fleet runs always use the calibrated "
      "abstract CP)\n"
      "================================================================\n");
  std::printf("premises: %zu, horizon: 24 h, seed 1\n\n", premises);

  fleet::FleetConfig closed =
      fleet::make_scenario(fleet::ScenarioKind::kDrHeatWave, premises, 1);
  fleet::FleetConfig open = closed;
  open.grid.enabled = false;
  fleet::Executor executor(threads);

  if (tel != nullptr) {
    tel->set_meta("binary", "bench_grid");
    tel->set_meta("scenario", "dr_heat_wave");
    tel->set_meta_num("premises", static_cast<double>(premises));
    tel->set_meta_num("seed", 1);
    tel->set_meta_num("threads",
                      static_cast<double>(executor.thread_count()));
    tel->set_meta("control_mode", "polled");
    tel->set_meta("git", telemetry::git_describe());
  }

  const auto t0 = std::chrono::steady_clock::now();
  const fleet::GridFleetResult off =
      fleet::FleetEngine(open).run_grid(executor);
  const double off_s = wall_seconds(t0);
  const auto t1 = std::chrono::steady_clock::now();
  const fleet::GridFleetResult on =
      fleet::FleetEngine(closed).run_grid(executor, tel);
  const double on_s = wall_seconds(t1);

  metrics::TextTable table({"metric", "open loop", "closed loop"});
  table.add_row({"overload minutes",
                 metrics::fmt(off.fleet.feeder.overload_minutes, 1),
                 metrics::fmt(on.fleet.feeder.overload_minutes, 1)});
  table.add_row({"hot minutes", metrics::fmt(off.hot_minutes, 1),
                 metrics::fmt(on.hot_minutes, 1)});
  table.add_row({"coincident peak (kW)",
                 metrics::fmt(off.fleet.feeder.coincident_peak_kw),
                 metrics::fmt(on.fleet.feeder.coincident_peak_kw)});
  table.add_row({"shed signals", "0",
                 std::to_string(on.dr.shed_signals)});
  table.add_row({"mean unserved shed (kW)", "-",
                 metrics::fmt(on.dr.mean_unserved_shed_kw())});
  table.add_row({"mean shed latency (min)", "-",
                 metrics::fmt(on.dr.mean_shed_latency_minutes())});
  table.add_row({"wall (s)", metrics::fmt(off_s, 3),
                 metrics::fmt(on_s, 3)});
  table.print(std::cout);
  std::printf("\noverload minutes avoided: %.1f (%.0f%% reduction)\n",
              off.fleet.feeder.overload_minutes -
                  on.fleet.feeder.overload_minutes,
              bench::reduction_pct(off.fleet.feeder.overload_minutes,
                                   on.fleet.feeder.overload_minutes));

  report.set("dr_heat_wave", "premises", static_cast<double>(premises));
  report.set("dr_heat_wave", "open_overload_minutes",
             off.fleet.feeder.overload_minutes);
  report.set("dr_heat_wave", "closed_overload_minutes",
             on.fleet.feeder.overload_minutes);
  report.set("dr_heat_wave", "shed_signals",
             static_cast<double>(on.dr.shed_signals));
  report.set("dr_heat_wave", "control_barriers",
             static_cast<double>(on.control_barriers));
  report.set("dr_heat_wave", "controller_wakes",
             static_cast<double>(on.controller_wakes));
  report.set("dr_heat_wave", "signals_delivered",
             static_cast<double>(on.deliveries.size()));
  report.set("dr_heat_wave", "open_wall_s", off_s);
  report.set("dr_heat_wave", "closed_wall_s", on_s);
}

void print_fidelity_sweep(bench::JsonReport& report) {
  const std::size_t premises = env_size("HAN_GRID_PREMISES", 100);
  const std::size_t threads = env_size("HAN_GRID_THREADS", 0);

  std::printf(
      "\n================================================================\n"
      "fidelity tiers — open-loop throughput per tier (scale_sweep)\n"
      "full = HAN simulation, device = duty-cycle state machines,\n"
      "stat = calibrated surrogate; divergence is feeder aggregate\n"
      "energy vs the full run (see README 'Fidelity tiers')\n"
      "================================================================\n");
  std::printf("premises: %zu, horizon: 6 h, seed 1\n\n", premises);

  fleet::Executor executor(threads);
  const fleet::FleetConfig base =
      fleet::make_scenario(fleet::ScenarioKind::kScaleSweep, premises, 1);

  metrics::TextTable table({"tier", "wall (s)", "premises/s",
                            "energy rel err vs full"});
  metrics::TimeSeries full_load;
  for (const char* flag : {"full", "device", "stat"}) {
    fleet::FleetConfig cfg = base;
    cfg.fidelity = *fidelity::policy_from_flag(flag);
    const fleet::FleetEngine engine(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const fleet::FleetResult r = engine.run(executor);
    const double secs = wall_seconds(t0);
    double rel_err = 0.0;
    if (std::string(flag) == "full") {
      full_load = r.feeder_load;
    } else {
      rel_err = metrics::divergence(full_load, r.feeder_load).energy_rel_err;
    }
    const double rate =
        secs > 0.0 ? static_cast<double>(premises) / secs : 0.0;
    table.add_row({flag, metrics::fmt(secs, 3), metrics::fmt(rate, 1),
                   std::string(flag) == "full" ? "-"
                                               : metrics::fmt(rel_err, 4)});
    const std::string section = std::string("fidelity_") + flag;
    report.set(section, "premises", static_cast<double>(premises));
    report.set(section, "wall_s", secs);
    report.set(section, "premises_per_sec", rate);
    report.set(section, "energy_rel_err_vs_full", rel_err);
  }
  table.print(std::cout);
  std::printf(
      "\ncheap tiers trade per-premise exactness for scale; the feeder\n"
      "aggregate stays pinned by tests/fidelity/test_calibration.cpp.\n");
}

void print_shard_sweep(bench::JsonReport& report) {
  const std::size_t premises = env_size("HAN_GRID_PREMISES", 100);
  const std::size_t threads = env_size("HAN_GRID_THREADS", 0);

  std::printf(
      "\n================================================================\n"
      "substation layer — multi_feeder shard sweep (K feeders)\n"
      "same premises/seed, resharded; capacity shares follow the planned\n"
      "skew weights; each K runs twice: tie switches open (multi_feeder)\n"
      "and closed (tie_switch transfers); see EXPERIMENTS.md\n"
      "================================================================\n");
  std::printf("premises: %zu, horizon: 24 h, seed 1, skew 0.35\n\n",
              premises);

  // Peak/diversity columns report the UNTIED run (comparable with the
  // PR 3/PR 4 sweeps); the (tie) columns are the tied counterpart.
  metrics::TextTable table({"K", "peak kW (no tie)", "div (no tie)",
                            "feeder ovl min", "feeder ovl (tie)",
                            "xfer ops", "xfer kWh", "sheds", "sheds (tie)",
                            "wall s", "wall s (tie)"});
  fleet::Executor executor(threads);
  // Parse the presets once; each row only reshards them (the per-row
  // re-parse used to hide in this loop).
  const fleet::FleetConfig base =
      fleet::make_scenario(fleet::ScenarioKind::kMultiFeeder, premises, 1);
  const fleet::FleetConfig tied =
      fleet::make_scenario(fleet::ScenarioKind::kTieSwitch, premises, 1);
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    fleet::FleetConfig cfg = base;
    cfg.feeder_count = k;
    fleet::FleetConfig tie_cfg = tied;
    tie_cfg.feeder_count = k;
    // A local collector per untied run exposes the per-shard join-wait
    // cost of the task-graph barrier (feeder k's control decision waits
    // only on k's own join node) plus the deterministic graph counters.
    telemetry::Collector join_tel;
    const auto t0 = std::chrono::steady_clock::now();
    const fleet::GridFleetResult r =
        fleet::FleetEngine(cfg).run_grid(executor, &join_tel);
    const double secs = wall_seconds(t0);
    const auto t1 = std::chrono::steady_clock::now();
    const fleet::GridFleetResult rt =
        fleet::FleetEngine(tie_cfg).run_grid(executor);
    const double tie_secs = wall_seconds(t1);
    const auto shard_totals = [](const fleet::GridFleetResult& res) {
      std::pair<double, std::uint64_t> out{0.0, 0};
      for (const fleet::FeederOutcome& fo : res.feeders) {
        out.first += fo.overload_minutes;
        out.second += fo.dr.shed_signals;
      }
      return out;
    };
    const auto [feeder_overload, sheds] = shard_totals(r);
    const auto [tie_overload, tie_sheds] = shard_totals(rt);
    const std::string section = "shard_sweep_k" + std::to_string(k);
    report.set(section, "peak_kw", r.fleet.substation.coincident_peak_kw);
    report.set(section, "feeder_overload_min", feeder_overload);
    report.set(section, "tie_overload_min", tie_overload);
    report.set(section, "tie_switch_operations",
               static_cast<double>(
                   rt.fleet.substation.tie_switch_operations));
    report.set(section, "sheds", static_cast<double>(sheds));
    report.set(section, "tie_sheds", static_cast<double>(tie_sheds));
    report.set(section, "wall_s", secs);
    report.set(section, "tie_wall_s", tie_secs);
    // Counters are deterministic (control-plane facts); the span total
    // is a timing key ("wall") so check_bench only warns on its drift.
    const std::string join_section = "join_wait_k" + std::to_string(k);
    report.set(join_section, "join_waits",
               static_cast<double>(join_tel.counter("join_waits")));
    report.set(join_section, "graph_submissions",
               static_cast<double>(join_tel.counter("graph_submissions")));
    report.set(join_section, "join_wait_wall_ms",
               static_cast<double>(
                   join_tel.phase(telemetry::Phase::kBarrierJoinWait)
                       .total_ns) /
                   1e6);
    table.add_row({std::to_string(k),
                   metrics::fmt(r.fleet.substation.coincident_peak_kw, 1),
                   metrics::fmt(r.fleet.substation.inter_feeder_diversity, 4),
                   metrics::fmt(feeder_overload, 1),
                   metrics::fmt(tie_overload, 1),
                   std::to_string(
                       rt.fleet.substation.tie_switch_operations),
                   metrics::fmt(rt.fleet.substation.transferred_energy_kwh, 1),
                   std::to_string(sheds), std::to_string(tie_sheds),
                   metrics::fmt(secs, 3), metrics::fmt(tie_secs, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\ninter-feeder diversity = sum of per-feeder peaks / substation "
      "peak:\nfeeders do not crest together, so the bank rides below the "
      "sum of its\nshards' worst minutes (1.0 by construction at K=1). "
      "The (tie) columns\nare the same run with the substation tie "
      "switches closed: overloaded\nshards lend premises to neighbors "
      "with headroom.\n");
}

void print_event_sweep(bench::JsonReport& report) {
  const std::size_t premises = env_size("HAN_GRID_PREMISES", 100);
  const std::size_t threads = env_size("HAN_GRID_THREADS", 0);

  std::printf(
      "\n================================================================\n"
      "control plane — polled vs event-driven (multi_feeder preset)\n"
      "barriers: lockstep synchronization points; wakes: controller\n"
      "observations. Same seed; see EXPERIMENTS.md\n"
      "================================================================\n");

  metrics::TextTable table({"premises", "K", "barriers p", "barriers e",
                            "reduction", "wakes p", "wakes e", "sheds p/e",
                            "wall p (s)", "wall e (s)"});
  fleet::Executor executor(threads);
  std::vector<std::size_t> premise_counts{premises};
  if (premises / 2 > 0 && premises / 2 != premises) {
    premise_counts.insert(premise_counts.begin(), premises / 2);
  }
  for (const std::size_t p : premise_counts) {
    // One parse per premise count (capacity scales with the fleet);
    // rows only reshard and flip the control mode.
    const fleet::FleetConfig base =
        fleet::make_scenario(fleet::ScenarioKind::kMultiFeeder, p, 1);
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
      fleet::FleetConfig polled = base;
      polled.feeder_count = k;
      fleet::FleetConfig event = polled;
      event.grid.control_mode = fleet::ControlMode::kEventDriven;

      const auto t0 = std::chrono::steady_clock::now();
      const fleet::GridFleetResult rp =
          fleet::FleetEngine(polled).run_grid(executor);
      const double polled_s = wall_seconds(t0);
      const auto t1 = std::chrono::steady_clock::now();
      const fleet::GridFleetResult re =
          fleet::FleetEngine(event).run_grid(executor);
      const double event_s = wall_seconds(t1);

      const double reduction =
          re.control_barriers > 0
              ? static_cast<double>(rp.control_barriers) /
                    static_cast<double>(re.control_barriers)
              : 0.0;
      const std::string section =
          "event_sweep_p" + std::to_string(p) + "_k" + std::to_string(k);
      report.set(section, "barriers_polled",
                 static_cast<double>(rp.control_barriers));
      report.set(section, "barriers_event",
                 static_cast<double>(re.control_barriers));
      report.set(section, "wakes_polled",
                 static_cast<double>(rp.controller_wakes));
      report.set(section, "wakes_event",
                 static_cast<double>(re.controller_wakes));
      report.set(section, "sheds_polled",
                 static_cast<double>(rp.dr.shed_signals));
      report.set(section, "sheds_event",
                 static_cast<double>(re.dr.shed_signals));
      report.set(section, "wall_polled_s", polled_s);
      report.set(section, "wall_event_s", event_s);
      table.add_row({std::to_string(p), std::to_string(k),
                     std::to_string(rp.control_barriers),
                     std::to_string(re.control_barriers),
                     metrics::fmt(reduction, 1) + "x",
                     std::to_string(rp.controller_wakes),
                     std::to_string(re.controller_wakes),
                     std::to_string(rp.dr.shed_signals) + "/" +
                         std::to_string(re.dr.shed_signals),
                     metrics::fmt(polled_s, 3), metrics::fmt(event_s, 3)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\npolled wakes every controller at every barrier; event-driven\n"
      "wakes only on threshold crossings and declared deadlines, and\n"
      "premises free-run between them (observe_cap safety net).\n");
}

/// Small fleet shared by the google-benchmark timings.
fleet::FleetConfig bench_fleet_config(bool grid_enabled) {
  fleet::FleetConfig cfg =
      fleet::make_scenario(fleet::ScenarioKind::kDrHeatWave,
                           /*premise_count=*/12, /*seed=*/1);
  cfg.horizon = sim::hours(4);
  cfg.round_period = sim::seconds(30);
  cfg.grid.enabled = grid_enabled;
  return cfg;
}

void BM_FleetPlainRun(benchmark::State& state) {
  const fleet::FleetEngine engine(bench_fleet_config(false));
  fleet::Executor executor(2);
  for (auto _ : state) {
    const fleet::FleetResult r = engine.run(executor);
    benchmark::DoNotOptimize(r.feeder.coincident_peak_kw);
  }
}
BENCHMARK(BM_FleetPlainRun)->Unit(benchmark::kMillisecond);

void BM_FleetLockstepOpenLoop(benchmark::State& state) {
  const fleet::FleetEngine engine(bench_fleet_config(false));
  fleet::Executor executor(2);
  for (auto _ : state) {
    const fleet::GridFleetResult r = engine.run_grid(executor);
    benchmark::DoNotOptimize(r.fleet.feeder.coincident_peak_kw);
  }
}
BENCHMARK(BM_FleetLockstepOpenLoop)->Unit(benchmark::kMillisecond);

void BM_FleetClosedLoop(benchmark::State& state) {
  const fleet::FleetEngine engine(bench_fleet_config(true));
  fleet::Executor executor(2);
  for (auto _ : state) {
    const fleet::GridFleetResult r = engine.run_grid(executor);
    benchmark::DoNotOptimize(r.dr.shed_signals);
  }
}
BENCHMARK(BM_FleetClosedLoop)->Unit(benchmark::kMillisecond);

void BM_ControllerObserve(benchmark::State& state) {
  grid::FeederConfig feeder;
  feeder.capacity_kw = 100.0;
  grid::DrConfig dr;
  for (auto _ : state) {
    grid::DemandResponseController c(feeder, dr);
    sim::TimePoint t = sim::TimePoint::epoch();
    for (int i = 0; i < 1440; ++i) {
      t = t + sim::minutes(1);
      const auto signals = c.observe(t, i % 7 == 0 ? 110.0 : 80.0);
      benchmark::DoNotOptimize(signals.size());
    }
  }
}
BENCHMARK(BM_ControllerObserve)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = han::bench::take_json_flag(argc, argv);
  const std::string telemetry_path =
      han::bench::take_path_flag(argc, argv, "--telemetry");
  han::telemetry::Collector collector;
  han::telemetry::Collector* const tel =
      telemetry_path.empty() ? nullptr : &collector;
  han::bench::JsonReport report;
  print_efficacy_table(report, tel);
  print_shard_sweep(report);
  print_event_sweep(report);
  print_fidelity_sweep(report);
  if (!json_path.empty() && !report.write(json_path)) return 1;
  if (tel != nullptr) {
    std::ofstream manifest(telemetry_path);
    if (!manifest) {
      std::fprintf(stderr, "cannot write %s\n", telemetry_path.c_str());
      return 1;
    }
    han::telemetry::write_manifest(collector, manifest);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
