// Ablation 2: minDCD/maxDCP sensitivity. The duty factor minDCD/maxDCP
// sets K = maxDCP/minDCD, the number of serial phase slots — and with
// it the best-case peak divisor of the coordinated schedule.
//
// Abstract CP (the sweep is about scheduling, not radio).
#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace han;

void reproduce() {
  bench::print_header("Ablation 2", "duty-cycle constraint sweep");

  struct Pair {
    int dcd_min;
    int dcp_min;
  };
  metrics::TextTable t({"minDCD_min", "maxDCP_min", "K", "peak_wo_kw",
                        "peak_with_kw", "reduction_pct", "std_reduction_pct"});
  for (const Pair p : {Pair{5, 30}, Pair{10, 30}, Pair{15, 30}, Pair{15, 45},
                       Pair{15, 60}, Pair{30, 60}}) {
    const appliance::DutyCycleConstraints c(sim::minutes(p.dcd_min),
                                            sim::minutes(p.dcp_min));
    auto make = [&](core::SchedulerKind k) {
      core::ExperimentConfig cfg =
          core::paper_config(appliance::ArrivalScenario::kHigh, k);
      cfg.han.fidelity = core::CpFidelity::kAbstract;
      cfg.han.constraints = c;
      return core::run_experiment(cfg);
    };
    const auto without = make(core::SchedulerKind::kUncoordinated);
    const auto with = make(core::SchedulerKind::kCoordinated);
    t.add_row(metrics::fmt(p.dcd_min, 0),
              {static_cast<double>(p.dcp_min),
               static_cast<double>(c.serial_slots()), without.peak_kw,
               with.peak_kw,
               bench::reduction_pct(without.peak_kw, with.peak_kw),
               bench::reduction_pct(without.std_kw, with.std_kw)});
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf(
      "\nExpected shape: larger K (smaller duty factor) gives coordination\n"
      "more slots to stagger into and a larger best-case reduction; at\n"
      "K=1 (minDCD=maxDCP) the strategies coincide.\n");
}

void BM_PlanCost(benchmark::State& state) {
  // Pure scheduler cost as device count grows.
  const auto n = static_cast<std::size_t>(state.range(0));
  sched::CoordinatedScheduler s;
  sched::GlobalView v;
  v.now = sim::TimePoint::epoch() + sim::minutes(7);
  for (std::size_t i = 0; i < n; ++i) {
    sched::DeviceStatus d;
    d.id = static_cast<net::NodeId>(i);
    d.has_demand = true;
    d.demand_since = sim::TimePoint::epoch();
    d.demand_until = sim::TimePoint::epoch() + sim::hours(2);
    d.slot = static_cast<std::uint8_t>(i % 2);
    v.devices.push_back(d);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.plan(v));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlanCost)->RangeMultiplier(4)->Range(8, 512)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
