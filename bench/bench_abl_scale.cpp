// Ablation 3: scalability in the number of devices. The request rate is
// scaled proportionally (30/h per 26 devices) so per-device load is
// constant; topology switches to a grid for n != 26.
//
// Abstract CP for the sweep; note that at the PHY the MiniCast round
// grows linearly in n (one TDMA slot per node), so the CP period must
// grow past 26 nodes — the round-fit check enforces this and the
// required period is printed per n.
#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace han;

void reproduce() {
  bench::print_header("Ablation 3", "device-count scaling");

  metrics::TextTable t({"devices", "rate_per_h", "peak_wo_kw", "peak_with_kw",
                        "reduction_pct", "min_cp_period_s"});
  for (std::size_t n : {8u, 16u, 26u, 52u, 104u}) {
    const double rate = 30.0 * static_cast<double>(n) / 26.0;
    auto make = [&](core::SchedulerKind k) {
      core::ExperimentConfig cfg =
          core::paper_config(appliance::ArrivalScenario::kHigh, k);
      cfg.han.fidelity = core::CpFidelity::kAbstract;
      cfg.han.device_count = n;
      cfg.han.topology_kind =
          n == 26 ? core::TopologyKind::kFlockLab26 : core::TopologyKind::kGrid;
      cfg.workload.device_count = n;
      cfg.workload.rate_per_hour = rate;
      return core::run_experiment(cfg);
    };
    const auto without = make(core::SchedulerKind::kUncoordinated);
    const auto with = make(core::SchedulerKind::kCoordinated);

    // PHY-side requirement: one flood slot per node per round.
    const st::MiniCastParams mc;
    const sim::Duration slot =
        mc.flood.flood_length(st::MiniCastEngine::chunk_psdu_bytes()) +
        mc.slot_guard;
    const double min_period_s =
        (slot * static_cast<sim::Ticks>(n) + mc.slot_guard).seconds_f();

    t.add_row(metrics::fmt(static_cast<double>(n), 0),
              {rate, without.peak_kw, with.peak_kw,
               bench::reduction_pct(without.peak_kw, with.peak_kw),
               min_period_s});
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf(
      "\nExpected shape: the relative peak reduction is roughly constant\n"
      "in n (it is a per-window statistical effect), while the CP's\n"
      "minimum period grows linearly — the protocol-level scalability\n"
      "limit of one TDMA flood slot per node.\n");
}

void BM_ScaleExperiment(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::ExperimentConfig cfg = core::paper_config(
      appliance::ArrivalScenario::kHigh, core::SchedulerKind::kCoordinated);
  cfg.han.fidelity = core::CpFidelity::kAbstract;
  cfg.han.device_count = n;
  cfg.han.topology_kind = core::TopologyKind::kGrid;
  cfg.workload.device_count = n;
  cfg.workload.horizon = sim::minutes(60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_experiment(cfg).peak_kw);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScaleExperiment)->Arg(8)->Arg(26)->Arg(104)->Complexity()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
