// bench_fleet — scaling of the neighborhood fleet engine.
//
// Prints two scaling tables for scale_sweep fleet runs:
//   * wall clock vs executor threads at a fixed fleet size (same seed,
//     so every row computes the identical FleetResult);
//   * wall clock vs premise count at a fixed thread count — the size
//     axis stays meaningful on single-core CI machines where the
//     thread axis degenerates to speedup 1x.
// Then runs google-benchmark timings over a small fleet.
//
// Pass `--json out.json` to also write the headline metrics as JSON
// (CI archives BENCH_fleet.json and diffs fresh runs against it with
// ci/check_bench.py). Pass `--telemetry out.json` to write the
// telemetry manifest of the size table's full-size run.
//
// Environment knobs (CI smoke runs use tiny values):
//   HAN_FLEET_PREMISES   fleet size for the thread table and the
//                        largest row of the size table (default 200)
//   HAN_FLEET_MAX_THREADS  widest row of the thread table (default 8)
//   HAN_FLEET_SWEEP_THREADS  thread count of the size table (default 1)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace han;
using bench::env_size;

void print_scaling_table(bench::JsonReport& report) {
  const std::size_t premises = env_size("HAN_FLEET_PREMISES", 200);
  const std::size_t max_threads = env_size("HAN_FLEET_MAX_THREADS", 8);

  std::printf(
      "\n================================================================\n"
      "fleet scaling — scale_sweep wall clock vs threads\n"
      "(paper: Debadarshini & Saha, ICDCS'22; see EXPERIMENTS.md)\n"
      "CP fidelity: abstract (fleet runs always use the calibrated "
      "abstract CP)\n"
      "================================================================\n");
  std::printf("premises: %zu, horizon: 6 h, seed 1\n\n", premises);

  metrics::TextTable table(
      {"threads", "wall (s)", "speedup", "coincident peak (kW)"});
  double base_seconds = 0.0;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    const fleet::FleetEngine engine(fleet::make_scenario(
        fleet::ScenarioKind::kScaleSweep, premises, /*seed=*/1));
    fleet::Executor executor(threads);
    const auto t0 = std::chrono::steady_clock::now();
    const fleet::FleetResult result = engine.run(executor);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    if (threads == 1) base_seconds = seconds;
    table.add_row({std::to_string(threads), metrics::fmt(seconds, 3),
                   metrics::fmt(seconds > 0 ? base_seconds / seconds : 0.0),
                   metrics::fmt(result.feeder.coincident_peak_kw)});
    report.set("thread_scaling",
               "wall_s_t" + std::to_string(threads), seconds);
    if (threads == 1) {
      // Deterministic behavior pin: every row recomputes this value,
      // and the committed snapshot fails the CI gate if it moves.
      report.set("thread_scaling", "peak_kw",
                 result.feeder.coincident_peak_kw);
    }
  }
  report.set("thread_scaling", "premises", static_cast<double>(premises));
  table.print(std::cout);
  std::printf("\n(identical peak on every row = thread-count independence)\n");
}

void print_premise_sweep_table(bench::JsonReport& report,
                               telemetry::Collector* tel) {
  const std::size_t max_premises = env_size("HAN_FLEET_PREMISES", 200);
  const std::size_t threads = env_size("HAN_FLEET_SWEEP_THREADS", 1);

  std::printf(
      "\n================================================================\n"
      "fleet scaling — scale_sweep wall clock vs premise count\n"
      "(%zu thread(s); per-premise cost should stay ~flat)\n"
      "================================================================\n\n",
      threads);

  metrics::TextTable table({"premises", "wall (s)", "ms / premise",
                            "coincident peak (kW)"});
  // Quarter, half, full — smallest first so caches warm on the cheap row.
  for (std::size_t divisor : {4u, 2u, 1u}) {
    const std::size_t premises =
        std::max<std::size_t>(1, max_premises / divisor);
    const fleet::FleetEngine engine(fleet::make_scenario(
        fleet::ScenarioKind::kScaleSweep, premises, /*seed=*/1));
    fleet::Executor executor(threads);
    // The full-size row carries the telemetry manifest (when asked).
    telemetry::Collector* const row_tel = divisor == 1 ? tel : nullptr;
    if (row_tel != nullptr) {
      row_tel->set_meta("binary", "bench_fleet");
      row_tel->set_meta("scenario", "scale_sweep");
      row_tel->set_meta_num("premises", static_cast<double>(premises));
      row_tel->set_meta_num("seed", 1);
      row_tel->set_meta_num("threads", static_cast<double>(threads));
      row_tel->set_meta("git", telemetry::git_describe());
    }
    const auto t0 = std::chrono::steady_clock::now();
    const fleet::FleetResult result = engine.run(executor, row_tel);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    table.add_row(
        {std::to_string(premises), metrics::fmt(seconds, 3),
         metrics::fmt(1000.0 * seconds / static_cast<double>(premises), 2),
         metrics::fmt(result.feeder.coincident_peak_kw)});
    report.set("premise_scaling",
               "wall_s_p" + std::to_string(premises), seconds);
    report.set("premise_scaling",
               "peak_kw_p" + std::to_string(premises),
               result.feeder.coincident_peak_kw);
  }
  table.print(std::cout);
}

void BM_FleetScaleSweep(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const fleet::FleetEngine engine(fleet::make_scenario(
      fleet::ScenarioKind::kScaleSweep, /*premise_count=*/16, /*seed=*/1));
  fleet::Executor executor(threads);
  double peak = 0.0;
  for (auto _ : state) {
    const fleet::FleetResult r = engine.run(executor);
    peak = r.feeder.coincident_peak_kw;
    benchmark::DoNotOptimize(peak);
  }
  state.counters["coincident_peak_kw"] = peak;
}
BENCHMARK(BM_FleetScaleSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = han::bench::take_json_flag(argc, argv);
  const std::string telemetry_path =
      han::bench::take_path_flag(argc, argv, "--telemetry");
  han::telemetry::Collector collector;
  han::bench::JsonReport report;
  print_scaling_table(report);
  print_premise_sweep_table(report,
                            telemetry_path.empty() ? nullptr : &collector);
  if (!json_path.empty() && !report.write(json_path)) return 1;
  if (!telemetry_path.empty()) {
    std::ofstream manifest(telemetry_path);
    if (!manifest) {
      std::fprintf(stderr, "cannot write %s\n", telemetry_path.c_str());
      return 1;
    }
    han::telemetry::write_manifest(collector, manifest);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
