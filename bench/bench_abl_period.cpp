// Ablation 1: MiniCast round period. Shorter periods react faster to new
// requests but cost radio energy; the paper fixes 2 s. The 26-slot round
// needs ~1.4 s of airtime, so 2 s is near the minimum for 26 nodes.
//
// Packet-level, 60-minute horizon (scheduling metrics are stable well
// before 350 min; the CP cost per round is what is being measured).
#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace han;

void reproduce() {
  bench::print_header("Ablation 1", "CP (MiniCast) period sweep");

  metrics::TextTable t({"period_s", "radio_duty_pct", "radio_mah",
                        "cp_coverage", "peak_kw", "std_kw", "gaps"});
  for (int period_s : {2, 4, 8}) {
    core::ExperimentConfig cfg = core::paper_config(
        appliance::ArrivalScenario::kHigh, core::SchedulerKind::kCoordinated);
    cfg.workload.horizon = sim::minutes(60);
    cfg.han.minicast.round_period = sim::seconds(period_s);
    const auto r = core::run_experiment(cfg);
    t.add_row(metrics::fmt(period_s, 0),
              {100.0 * r.network.mean_radio_duty, r.network.total_radio_mah,
               r.network.cp_mean_coverage, r.peak_kw, r.std_kw,
               static_cast<double>(r.network.service_gap_violations)});
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf(
      "\nExpected shape: radio duty and charge scale ~1/period while\n"
      "scheduling quality is unchanged (decisions act on 15-minute\n"
      "windows, so even 8 s rounds are far inside the control deadband).\n");
}

void BM_MiniCastRound(benchmark::State& state) {
  // Wall-clock cost of simulating CP rounds at packet level.
  sim::Simulator sim;
  core::HanConfig hc;
  hc.device_count = 26;
  hc.topology_kind = core::TopologyKind::kFlockLab26;
  hc.channel.shadowing_sigma_db = 0.0;
  core::HanNetwork net(sim, hc);
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  for (auto _ : state) {
    sim.run_until(sim.now() + sim::seconds(2));
    benchmark::DoNotOptimize(net.minicast()->stats().rounds);
  }
  state.counters["coverage"] = net.minicast()->stats().mean_coverage();
}
BENCHMARK(BM_MiniCastRound)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
