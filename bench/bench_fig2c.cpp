// Figure 2(c): average load and its standard deviation (the error bars)
// vs arrival rate, with vs without coordination.
#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace han;
using appliance::ArrivalScenario;

void reproduce_figure() {
  bench::print_header("Figure 2(c)", "average load ± deviation vs rate");

  metrics::TextTable t({"rate_per_hour", "avg_wo_kw", "std_wo_kw",
                        "avg_with_kw", "std_with_kw", "std_reduction_pct"});
  for (ArrivalScenario s : {ArrivalScenario::kLow, ArrivalScenario::kModerate,
                            ArrivalScenario::kHigh}) {
    const auto without = core::run_experiment(
        bench::figure_config(s, core::SchedulerKind::kUncoordinated));
    const auto with = core::run_experiment(
        bench::figure_config(s, core::SchedulerKind::kCoordinated));
    t.add_row(metrics::fmt(appliance::scenario_rate_per_hour(s), 0),
              {without.mean_kw, without.std_kw, with.mean_kw, with.std_kw,
               bench::reduction_pct(without.std_kw, with.std_kw)});
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf(
      "\nExpected shape: averages match between strategies (coordination\n"
      "shifts load, it does not shed it); the deviation drops, most at\n"
      "the high rate (paper: up to 58%%).\n");
}

void BM_Fig2cReplicated(benchmark::State& state) {
  core::ExperimentConfig cfg = core::paper_config(
      appliance::ArrivalScenario::kHigh, core::SchedulerKind::kCoordinated,
      1);
  cfg.han.fidelity = core::CpFidelity::kAbstract;
  cfg.workload.horizon = sim::minutes(60);
  for (auto _ : state) {
    const auto rep = core::run_replicated(cfg, 3);
    benchmark::DoNotOptimize(rep.std_kw.mean());
  }
}
BENCHMARK(BM_Fig2cReplicated)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce_figure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
