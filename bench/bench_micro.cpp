// Microbenchmarks of the library's hot paths: event queue, RNG,
// channel model, codec, scheduler, record store, and the telemetry
// span (the disabled null-sink path must stay ~free — the engine
// leaves spans in place permanently).
#include <benchmark/benchmark.h>

#include "core/status_codec.hpp"
#include "net/channel.hpp"
#include "net/topology.hpp"
#include "sched/coordinated.hpp"
#include "sched/uncoordinated.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "st/record.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace han;

void BM_EventQueueScheduleCancel(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(1);
  std::vector<sim::EventId> live;
  for (auto _ : state) {
    const auto id = q.schedule(
        sim::TimePoint{static_cast<sim::Ticks>(rng.uniform_int(0, 1 << 20))},
        [] {});
    live.push_back(id);
    if (live.size() > 1024) {
      q.cancel(live[rng.index(live.size())]);
      if (!q.empty()) q.pop();
      live.clear();
    }
  }
}
BENCHMARK(BM_EventQueueScheduleCancel);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

void BM_RngExponential(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(2.0));
}
BENCHMARK(BM_RngExponential);

void BM_ChannelPrr(benchmark::State& state) {
  sim::Rng rng(1);
  const net::Topology t = net::Topology::flocklab26();
  const net::Channel ch(t, net::ChannelParams{}, rng);
  double s = -91.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.prr(s, 1e-9, 125));
    s = s < -99.0 ? -91.0 : s - 0.001;
  }
}
BENCHMARK(BM_ChannelPrr);

void BM_StatusCodecRoundTrip(benchmark::State& state) {
  sched::DeviceStatus st;
  st.id = 7;
  st.has_demand = true;
  st.demand_since = sim::TimePoint::epoch() + sim::minutes(100);
  st.demand_until = sim::TimePoint::epoch() + sim::minutes(130);
  st.slot = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::decode_status(7, core::encode_status(st)));
  }
}
BENCHMARK(BM_StatusCodecRoundTrip);

sched::GlobalView make_view(std::size_t n) {
  sched::GlobalView v;
  v.now = sim::TimePoint::epoch() + sim::minutes(17);
  for (std::size_t i = 0; i < n; ++i) {
    sched::DeviceStatus d;
    d.id = static_cast<net::NodeId>(i);
    d.has_demand = i % 3 != 0;
    d.demand_since = sim::TimePoint::epoch() + sim::minutes(5);
    d.demand_until = sim::TimePoint::epoch() + sim::minutes(65);
    d.slot = static_cast<std::uint8_t>(i % 2);
    v.devices.push_back(d);
  }
  return v;
}

void BM_CoordinatedPlan(benchmark::State& state) {
  const sched::CoordinatedScheduler s;
  const auto v = make_view(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(s.plan(v));
}
BENCHMARK(BM_CoordinatedPlan)->Arg(26)->Arg(104)->Arg(512);

void BM_UncoordinatedPlan(benchmark::State& state) {
  const sched::UncoordinatedScheduler s;
  const auto v = make_view(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(s.plan(v));
}
BENCHMARK(BM_UncoordinatedPlan)->Arg(26)->Arg(104)->Arg(512);

void BM_PickSlot(benchmark::State& state) {
  const auto v = make_view(26);
  sched::DeviceStatus self;
  self.id = 25;
  self.demand_since = v.now;
  self.demand_until = v.now + sim::minutes(30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::CoordinatedScheduler::pick_slot(v, self));
  }
}
BENCHMARK(BM_PickSlot);

void BM_RecordStoreMergeSelect(benchmark::State& state) {
  st::RecordStore store(26);
  sim::Rng rng(1);
  std::uint32_t version = 1;
  for (auto _ : state) {
    st::Record r;
    r.origin = static_cast<net::NodeId>(rng.index(26));
    r.version = version++;
    store.merge(r);
    benchmark::DoNotOptimize(
        store.select_for_broadcast(0, st::records_per_frame(), version));
  }
}
BENCHMARK(BM_RecordStoreMergeSelect);

// Baseline for the telemetry span comparisons: the cheapest thing a
// span could possibly do is nothing at all.
void BM_TelemetrySpanBaseline(benchmark::State& state) {
  for (auto _ : state) {
    int sink = 0;
    benchmark::DoNotOptimize(&sink);
  }
}
BENCHMARK(BM_TelemetrySpanBaseline);

// Disabled path: a null collector must cost one branch, no clock read.
// The engine constructs these spans unconditionally on the barrier hot
// path, so this number is the permanent per-phase tax of telemetry.
void BM_TelemetrySpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    telemetry::Span span(nullptr, telemetry::Phase::kBarrierCommit);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TelemetrySpanDisabled);

// Enabled path: two clock reads plus relaxed atomic accumulation.
void BM_TelemetrySpanEnabled(benchmark::State& state) {
  telemetry::Collector collector;
  for (auto _ : state) {
    telemetry::Span span(&collector, telemetry::Phase::kBarrierCommit);
    benchmark::DoNotOptimize(&span);
  }
  benchmark::DoNotOptimize(
      collector.phase(telemetry::Phase::kBarrierCommit).calls);
}
BENCHMARK(BM_TelemetrySpanEnabled);

// Named-counter bump, the other per-event telemetry primitive used on
// the control plane (event-mode wake accounting).
void BM_TelemetryCount(benchmark::State& state) {
  telemetry::Collector collector;
  for (auto _ : state) collector.count("wakes_timer");
  benchmark::DoNotOptimize(collector.counter("wakes_timer"));
}
BENCHMARK(BM_TelemetryCount);

}  // namespace

BENCHMARK_MAIN();
