// Figure 2(b): peak load vs arrival rate {4, 18, 30}/hour, with vs
// without coordination.
#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace han;
using appliance::ArrivalScenario;

void reproduce_figure() {
  bench::print_header("Figure 2(b)", "peak load vs arrival rate");

  metrics::TextTable t({"rate_per_hour", "peak_wo_kw", "peak_with_kw",
                        "reduction_pct"});
  for (ArrivalScenario s : {ArrivalScenario::kLow, ArrivalScenario::kModerate,
                            ArrivalScenario::kHigh}) {
    const auto without = core::run_experiment(
        bench::figure_config(s, core::SchedulerKind::kUncoordinated));
    const auto with = core::run_experiment(
        bench::figure_config(s, core::SchedulerKind::kCoordinated));
    t.add_row(metrics::fmt(appliance::scenario_rate_per_hour(s), 0),
              {without.peak_kw, with.peak_kw,
               bench::reduction_pct(without.peak_kw, with.peak_kw)});
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf(
      "\nExpected shape: reduction grows with the arrival rate (paper\n"
      "reports up to 50%% at 30 requests/hour; the Poisson workload\n"
      "reaches ~half of the theoretical bound — see bench_abl_cluster\n"
      "for the synchronized-arrival regime where the bound is met).\n");
}

void BM_Fig2bSweep(benchmark::State& state) {
  const auto scenario = static_cast<ArrivalScenario>(state.range(0));
  core::ExperimentConfig cfg = core::paper_config(
      scenario, core::SchedulerKind::kCoordinated, 1);
  cfg.han.fidelity = core::CpFidelity::kAbstract;
  cfg.workload.horizon = sim::minutes(60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_experiment(cfg).peak_kw);
  }
}
BENCHMARK(BM_Fig2bSweep)
    ->Arg(static_cast<int>(ArrivalScenario::kLow))
    ->Arg(static_cast<int>(ArrivalScenario::kModerate))
    ->Arg(static_cast<int>(ArrivalScenario::kHigh))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce_figure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
