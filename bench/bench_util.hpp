// Shared helpers for the benchmark/reproduction binaries.
//
// Every bench binary prints its paper-style table/series first (the
// reproduction artifact recorded in EXPERIMENTS.md) and then runs its
// registered google-benchmark timings.
//
// Set HAN_BENCH_FAST=1 to switch the figure reproductions from the
// packet-level CP to the calibrated abstract CP (orders of magnitude
// faster; same scheduling behaviour — see DESIGN.md).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/han.hpp"
#include "telemetry/flags.hpp"

namespace han::bench {

/// Machine-readable counterpart of the printed tables: one level of
/// nesting ({"section": {"key": number}}), insertion-ordered. CI
/// archives the file (BENCH_grid.json) next to the human logs so perf
/// regressions diff as JSON, not as table scraping.
class JsonReport {
 public:
  void set(const std::string& section, const std::string& key,
           double value) {
    for (auto& [name, entries] : sections_) {
      if (name == section) {
        entries.emplace_back(key, value);
        return;
      }
    }
    sections_.push_back({section, {{key, value}}});
  }

  /// Writes the report; false (with a stderr note) on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write JSON report to %s\n", path.c_str());
      return false;
    }
    out << "{\n";
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      out << "  \"" << sections_[s].first << "\": {\n";
      const auto& entries = sections_[s].second;
      for (std::size_t e = 0; e < entries.size(); ++e) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", entries[e].second);
        out << "    \"" << entries[e].first << "\": " << buf
            << (e + 1 < entries.size() ? "," : "") << "\n";
      }
      out << "  }" << (s + 1 < sections_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    return out.good();
  }

 private:
  std::vector<std::pair<
      std::string, std::vector<std::pair<std::string, double>>>>
      sections_;
};

/// Peels one "--<name> path" / "--<name>=path" flag from argv — before
/// benchmark::Initialize, which rejects flags it does not know — and
/// returns the path ("" when absent). A dangling flag with no value
/// exits loudly: the old parser left a trailing `--json` in argv for
/// benchmark::Initialize to reject with an unrelated error.
inline std::string take_path_flag(int& argc, char** argv,
                                  const char* name) {
  const telemetry::FlagParse parsed =
      telemetry::take_value_flag(argc, argv, name);
  if (parsed.error) {
    std::fprintf(stderr, "%s requires a filename (%s out.json or %s=out.json)\n",
                 name, name, name);
    std::exit(2);
  }
  return parsed.value;
}

/// Peels "--json out.json" / "--json=out.json" from argv.
inline std::string take_json_flag(int& argc, char** argv) {
  return take_path_flag(argc, argv, "--json");
}

/// True when HAN_BENCH_FAST=1: use the abstract CP for reproductions.
inline bool fast_mode() {
  const char* v = std::getenv("HAN_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

/// Positive size from an environment knob; unset/unparsable/non-positive
/// values fall back (the CI smoke runs use tiny values).
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Paper configuration with the fidelity chosen by fast_mode().
inline core::ExperimentConfig figure_config(
    appliance::ArrivalScenario scenario, core::SchedulerKind scheduler,
    std::uint64_t seed = 1) {
  core::ExperimentConfig cfg = core::paper_config(scenario, scheduler, seed);
  if (fast_mode()) cfg.han.fidelity = core::CpFidelity::kAbstract;
  return cfg;
}

/// Percentage reduction of `with` relative to `without`.
inline double reduction_pct(double without, double with) {
  return without <= 0.0 ? 0.0 : 100.0 * (without - with) / without;
}

inline void print_header(const char* figure, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("(paper: Debadarshini & Saha, ICDCS'22; see EXPERIMENTS.md)\n");
  std::printf("CP fidelity: %s\n",
              fast_mode() ? "abstract (HAN_BENCH_FAST=1)" : "packet-level");
  std::printf("================================================================\n");
}

/// Times one short abstract-CP experiment per iteration so that every
/// bench binary also exercises google-benchmark's measurement path.
inline void run_experiment_benchmark(benchmark::State& state,
                                     core::SchedulerKind kind) {
  core::ExperimentConfig cfg =
      core::paper_config(appliance::ArrivalScenario::kHigh, kind, 1);
  cfg.han.fidelity = core::CpFidelity::kAbstract;
  cfg.workload.horizon = sim::minutes(60);
  double peak = 0.0;
  for (auto _ : state) {
    const core::ExperimentResult r = core::run_experiment(cfg);
    peak = r.peak_kw;
    benchmark::DoNotOptimize(peak);
  }
  state.counters["peak_kw"] = peak;
}

}  // namespace han::bench
