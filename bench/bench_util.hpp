// Shared helpers for the benchmark/reproduction binaries.
//
// Every bench binary prints its paper-style table/series first (the
// reproduction artifact recorded in EXPERIMENTS.md) and then runs its
// registered google-benchmark timings.
//
// Set HAN_BENCH_FAST=1 to switch the figure reproductions from the
// packet-level CP to the calibrated abstract CP (orders of magnitude
// faster; same scheduling behaviour — see DESIGN.md).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/han.hpp"

namespace han::bench {

/// True when HAN_BENCH_FAST=1: use the abstract CP for reproductions.
inline bool fast_mode() {
  const char* v = std::getenv("HAN_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

/// Positive size from an environment knob; unset/unparsable/non-positive
/// values fall back (the CI smoke runs use tiny values).
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Paper configuration with the fidelity chosen by fast_mode().
inline core::ExperimentConfig figure_config(
    appliance::ArrivalScenario scenario, core::SchedulerKind scheduler,
    std::uint64_t seed = 1) {
  core::ExperimentConfig cfg = core::paper_config(scenario, scheduler, seed);
  if (fast_mode()) cfg.han.fidelity = core::CpFidelity::kAbstract;
  return cfg;
}

/// Percentage reduction of `with` relative to `without`.
inline double reduction_pct(double without, double with) {
  return without <= 0.0 ? 0.0 : 100.0 * (without - with) / without;
}

inline void print_header(const char* figure, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("(paper: Debadarshini & Saha, ICDCS'22; see EXPERIMENTS.md)\n");
  std::printf("CP fidelity: %s\n",
              fast_mode() ? "abstract (HAN_BENCH_FAST=1)" : "packet-level");
  std::printf("================================================================\n");
}

/// Times one short abstract-CP experiment per iteration so that every
/// bench binary also exercises google-benchmark's measurement path.
inline void run_experiment_benchmark(benchmark::State& state,
                                     core::SchedulerKind kind) {
  core::ExperimentConfig cfg =
      core::paper_config(appliance::ArrivalScenario::kHigh, kind, 1);
  cfg.han.fidelity = core::CpFidelity::kAbstract;
  cfg.workload.horizon = sim::minutes(60);
  double peak = 0.0;
  for (auto _ : state) {
    const core::ExperimentResult r = core::run_experiment(cfg);
    peak = r.peak_kw;
    benchmark::DoNotOptimize(peak);
  }
  state.counters["peak_kw"] = peak;
}

}  // namespace han::bench
