// Ablation 6: slot rebalancing on/off. Migrating claims out of crowded
// slots shaves the peak slightly, at the cost of occasionally deferring
// bursts near demand expiry (service gaps). Off by default; this bench
// quantifies the trade-off (DESIGN.md §6).
#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace han;

void reproduce() {
  bench::print_header("Ablation 6", "slot rebalancing trade-off");

  metrics::TextTable t({"rebalance", "peak_kw", "std_kw", "mean_kw", "gaps",
                        "plan_switches"});
  for (bool rebalance : {false, true}) {
    metrics::RunningStats peak, stddev, mean, gaps, switches;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      core::ExperimentConfig cfg = core::paper_config(
          appliance::ArrivalScenario::kHigh,
          core::SchedulerKind::kCoordinated, seed);
      cfg.han.fidelity = core::CpFidelity::kAbstract;
      cfg.han.di.enable_rebalance = rebalance;
      const auto r = core::run_experiment(cfg);
      peak.add(r.peak_kw);
      stddev.add(r.std_kw);
      mean.add(r.mean_kw);
      gaps.add(static_cast<double>(r.network.service_gap_violations));
      switches.add(static_cast<double>(r.network.plan_switches));
    }
    t.add_row(rebalance ? "on" : "off",
              {peak.mean(), stddev.mean(), mean.mean(), gaps.mean(),
               switches.mean()});
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf(
      "\nExpected shape: rebalancing trims ~0.5-1 kW of peak but shows\n"
      "nonzero service gaps — why it ships disabled.\n");
}

void BM_RebalanceOn(benchmark::State& state) {
  core::ExperimentConfig cfg = core::paper_config(
      appliance::ArrivalScenario::kHigh, core::SchedulerKind::kCoordinated);
  cfg.han.fidelity = core::CpFidelity::kAbstract;
  cfg.han.di.enable_rebalance = state.range(0) != 0;
  cfg.workload.horizon = sim::minutes(60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_experiment(cfg).peak_kw);
  }
}
BENCHMARK(BM_RebalanceOn)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
