// Figure 2(a): total system load over 350 minutes, high arrival rate
// (30 requests/hour), with vs without coordination.
//
// Prints the two 1-minute-sampled load series as CSV (the exact data
// behind the figure) followed by the summary the caption reports.
#include "bench_util.hpp"

#include <iostream>

#include "metrics/csv.hpp"

namespace {

using namespace han;

void reproduce_figure() {
  bench::print_header("Figure 2(a)",
                      "load vs time, 350 min, 30 requests/hour");

  const auto without = core::run_experiment(bench::figure_config(
      appliance::ArrivalScenario::kHigh, core::SchedulerKind::kUncoordinated));
  const auto with = core::run_experiment(bench::figure_config(
      appliance::ArrivalScenario::kHigh, core::SchedulerKind::kCoordinated));

  std::printf("\n--- load series (kW, 1-minute samples) ---\n");
  metrics::write_csv(std::cout, {"with_coordination", "wo_coordination"},
                     {&with.load, &without.load});

  std::printf("\n--- summary ---\n");
  metrics::TextTable t({"strategy", "peak_kw", "mean_kw", "std_kw",
                        "max_step_kw", "cp_coverage"});
  t.add_row("w/o coordination",
            {without.peak_kw, without.mean_kw, without.std_kw,
             without.max_step_kw, without.network.cp_mean_coverage});
  t.add_row("with coordination",
            {with.peak_kw, with.mean_kw, with.std_kw, with.max_step_kw,
             with.network.cp_mean_coverage});
  t.print(std::cout);
  std::printf("peak reduction: %.1f%%   (paper: up to 50%%)\n",
              bench::reduction_pct(without.peak_kw, with.peak_kw));
  std::printf("stddev reduction: %.1f%%  (paper: up to 58%%)\n",
              bench::reduction_pct(without.std_kw, with.std_kw));
}

void BM_Fig2aCoordinated(benchmark::State& state) {
  bench::run_experiment_benchmark(state, core::SchedulerKind::kCoordinated);
}
void BM_Fig2aUncoordinated(benchmark::State& state) {
  bench::run_experiment_benchmark(state,
                                  core::SchedulerKind::kUncoordinated);
}
BENCHMARK(BM_Fig2aCoordinated)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig2aUncoordinated)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce_figure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
