// Ablation 8: the traditional asynchronous-transmission (AT/CSMA)
// control plane vs the paper's ST control plane.
//
// §I of the paper: "frequent and fast communication between the
// electrical appliances and the central controller becomes a
// significant problem which acts as a bottleneck... As the number of
// devices increases, such difficulties also increase in proportion."
// This bench measures exactly that: per-round status coverage and
// latency of CSMA tree collection as the update period shrinks and as
// the network grows, against MiniCast's fixed-airtime rounds.
#include "bench_util.hpp"

#include <iostream>
#include <memory>

#include "st/at_collection.hpp"

namespace {

using namespace han;

struct Stack {
  sim::Simulator sim;
  net::Topology topo;
  sim::Rng rng;
  std::unique_ptr<net::Channel> channel;
  std::unique_ptr<net::Medium> medium;
  std::vector<std::unique_ptr<net::Radio>> radios;
  std::vector<net::Radio*> raw;

  Stack(net::Topology t, std::uint64_t seed) : topo(std::move(t)), rng(seed) {
    net::ChannelParams cp;
    cp.shadowing_sigma_db = 0.0;
    channel = std::make_unique<net::Channel>(topo, cp, rng);
    medium = std::make_unique<net::Medium>(sim, *channel,
                                           rng.stream("medium"));
    for (std::size_t i = 0; i < topo.size(); ++i) {
      radios.push_back(std::make_unique<net::Radio>(
          sim, *medium, static_cast<net::NodeId>(i)));
      raw.push_back(radios.back().get());
    }
  }
};

struct Row {
  double uplink = 0.0;
  double latency_ms = 0.0;
  double frames = 0.0;
  double drops = 0.0;
};

Row run_at(net::Topology topo, sim::Duration period, sim::Duration horizon) {
  Stack s(std::move(topo), 1);
  st::AtCollectionParams p;
  p.round_period = period;
  p.disseminate_command = false;  // isolate the uplink bottleneck
  p.uplink_jitter = period / 4;
  st::AtCollectionEngine engine(s.sim, s.raw, *s.channel, p,
                                s.rng.stream("at"));
  engine.start(s.sim.now() + sim::milliseconds(10));
  s.sim.run_until(s.sim.now() + horizon);
  engine.stop();
  Row r;
  r.uplink = engine.stats().mean_uplink();
  r.latency_ms =
      static_cast<double>(engine.stats().mean_uplink_latency().ms());
  r.frames = static_cast<double>(engine.stats().mac_tx_frames);
  r.drops = static_cast<double>(engine.stats().mac_drops);
  return r;
}

Row run_st(net::Topology topo, sim::Duration period, sim::Duration horizon) {
  Stack s(std::move(topo), 1);
  st::MiniCastParams p;
  p.round_period = period;
  st::MiniCastEngine engine(s.sim, s.raw, p, s.rng.stream("mc"));
  engine.start(s.sim.now() + sim::milliseconds(10));
  s.sim.run_until(s.sim.now() + horizon);
  engine.stop();
  Row r;
  r.uplink = engine.stats().mean_coverage();
  // ST latency = one full round of slots (all-to-all, not just uplink).
  r.latency_ms =
      static_cast<double>(engine.round_active_duration().ms());
  r.frames = static_cast<double>(s.medium->stats().transmissions);
  r.drops = 0.0;
  return r;
}

void reproduce() {
  bench::print_header("Ablation 8", "AT (CSMA tree) vs ST control plane");

  const sim::Duration horizon = sim::seconds(60);

  std::printf("\n--- update-period sweep, 26 nodes (60 s) ---\n");
  metrics::TextTable t({"period_s", "AT_coverage", "AT_latency_ms",
                        "AT_frames", "AT_drops", "ST_coverage",
                        "ST_round_ms"});
  for (double period_s : {8.0, 4.0, 2.0, 1.0, 0.5}) {
    const auto period = sim::seconds_f(period_s);
    const Row at = run_at(net::Topology::flocklab26(), period, horizon);
    Row st_row;
    st_row.uplink = -1.0;
    st_row.latency_ms = 0.0;
    const bool st_fits =
        period_s >= 1.5;  // 26 flood slots need ~1.4 s of airtime
    if (st_fits) st_row = run_st(net::Topology::flocklab26(), period, horizon);
    t.add_row(metrics::fmt(period_s, 1),
              {at.uplink, at.latency_ms, at.frames, at.drops,
               st_fits ? st_row.uplink : -1.0,
               st_fits ? st_row.latency_ms : -1.0});
  }
  t.print(std::cout);

  std::printf("\n--- size sweep at a 2 s period (60 s; grid topology) ---\n");
  metrics::TextTable g({"nodes", "AT_coverage", "AT_latency_ms", "AT_drops"});
  for (std::size_t n : {9u, 16u, 25u, 49u}) {
    const auto side = static_cast<std::size_t>(std::sqrt(n));
    const Row at = run_at(net::Topology::grid(side, side, 9.0),
                          sim::seconds(2), horizon);
    g.add_row(metrics::fmt(static_cast<double>(n), 0),
              {at.uplink, at.latency_ms, at.drops});
  }
  g.print(std::cout);
  std::printf(
      "\nExpected shape: AT coverage and latency degrade as the period\n"
      "shrinks or the network grows (funnel contention at the root);\n"
      "ST coverage stays ~1.0 at fixed, deterministic round airtime —\n"
      "the paper's §I bottleneck argument, quantified. (-1 = period\n"
      "infeasible for ST's 26 TDMA slots.)\n");
}

void BM_AtRound(benchmark::State& state) {
  for (auto _ : state) {
    const Row r = run_at(net::Topology::flocklab26(), sim::seconds(2),
                         sim::seconds(10));
    benchmark::DoNotOptimize(r.uplink);
  }
}
BENCHMARK(BM_AtRound)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
