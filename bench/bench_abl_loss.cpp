// Ablation 4: robustness to communication loss. The CP's reliability is
// swept (abstract Bernoulli delivery) and, at packet level, an
// independent forced drop rate is injected at the PHY. The design
// property under test: stale views may skew slot balance but can never
// produce minDCD violations, and service stays intact until the CP is
// essentially dead.
#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace han;

void reproduce() {
  bench::print_header("Ablation 4", "CP reliability / packet loss");

  std::printf("\n--- abstract CP reliability sweep (350 min, high rate) ---\n");
  metrics::TextTable t({"reliability", "peak_kw", "std_kw", "stale_rounds",
                        "gaps", "minDCD_violations"});
  for (double rel : {1.0, 0.99, 0.9, 0.7, 0.5, 0.2}) {
    core::ExperimentConfig cfg = core::paper_config(
        appliance::ArrivalScenario::kHigh, core::SchedulerKind::kCoordinated);
    cfg.han.fidelity = core::CpFidelity::kAbstract;
    cfg.han.abstract_reliability = rel;
    const auto r = core::run_experiment(cfg);
    t.add_row(metrics::fmt(rel, 2),
              {r.peak_kw, r.std_kw,
               static_cast<double>(r.network.stale_view_rounds),
               static_cast<double>(r.network.service_gap_violations),
               static_cast<double>(r.network.min_dcd_violations)});
  }
  t.print(std::cout);

  std::printf("\n--- packet-level forced drop sweep (60 min) ---\n");
  metrics::TextTable p({"forced_drop", "cp_coverage", "peak_kw", "gaps",
                        "minDCD_violations"});
  for (double drop : {0.0, 0.3, 0.6, 0.9}) {
    core::ExperimentConfig cfg = core::paper_config(
        appliance::ArrivalScenario::kHigh, core::SchedulerKind::kCoordinated);
    cfg.workload.horizon = sim::minutes(60);
    sim::Simulator sim;
    core::HanNetwork net(sim, cfg.han);
    // Reach the medium through the network's packet substrate.
    const sim::Rng root(cfg.han.seed);
    auto wp = cfg.workload;
    wp.warmup = cfg.cp_boot;
    net.inject_requests(
        appliance::WorkloadGenerator::generate(wp, root.stream("workload")));
    metrics::LoadMonitor mon(sim, [&net] { return net.total_load_kw(); },
                             sim::minutes(1));
    // Forced drop applies to every reception independently.
    // (const_cast-free: the medium is owned by the network; we use the
    // config-level knob instead.)
    net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
    mon.start(sim::TimePoint::epoch() + cfg.cp_boot);
    net.set_forced_drop_rate(drop);
    sim.run_until(sim::TimePoint::epoch() + wp.horizon);
    const auto st = net.stats();
    p.add_row(metrics::fmt(drop, 1),
              {st.cp_mean_coverage, mon.series().peak(),
               static_cast<double>(st.service_gap_violations),
               static_cast<double>(st.min_dcd_violations)});
  }
  p.print(std::cout);
  std::printf(
      "\nExpected shape: coverage degrades gracefully (ST redundancy\n"
      "absorbs <=30%% loss outright); minDCD violations stay at zero at\n"
      "every loss level — consistency never depends on delivery.\n");
}

void BM_LossyExperiment(benchmark::State& state) {
  core::ExperimentConfig cfg = core::paper_config(
      appliance::ArrivalScenario::kHigh, core::SchedulerKind::kCoordinated);
  cfg.han.fidelity = core::CpFidelity::kAbstract;
  cfg.han.abstract_reliability =
      static_cast<double>(state.range(0)) / 100.0;
  cfg.workload.horizon = sim::minutes(60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_experiment(cfg).peak_kw);
  }
}
BENCHMARK(BM_LossyExperiment)->Arg(100)->Arg(90)->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
