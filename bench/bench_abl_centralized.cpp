// Ablation 7: decentralized MiniCast CP vs a centralized realization
// (many-to-one collection + command flood, the INFOCOM'17-style stack a
// central scheduler would need). Quantifies the paper's §I argument:
// comparable airtime cost, but a single point of failure and a longer
// control loop.
#include "bench_util.hpp"

#include <iostream>
#include <memory>

namespace {

using namespace han;

struct Stack {
  sim::Simulator sim;
  net::Topology topo = net::Topology::flocklab26();
  sim::Rng rng;
  std::unique_ptr<net::Channel> channel;
  std::unique_ptr<net::Medium> medium;
  std::vector<std::unique_ptr<net::Radio>> radios;
  std::vector<net::Radio*> raw;

  explicit Stack(std::uint64_t seed) : rng(seed) {
    net::ChannelParams cp;
    cp.shadowing_sigma_db = 0.0;
    channel = std::make_unique<net::Channel>(topo, cp, rng);
    medium = std::make_unique<net::Medium>(sim, *channel,
                                           rng.stream("medium"));
    for (std::size_t i = 0; i < topo.size(); ++i) {
      radios.push_back(std::make_unique<net::Radio>(
          sim, *medium, static_cast<net::NodeId>(i)));
      raw.push_back(radios.back().get());
    }
  }
};

void reproduce() {
  bench::print_header("Ablation 7", "decentralized ST vs centralized ST");

  metrics::TextTable t({"architecture", "round_airtime_s", "coverage",
                        "coverage_after_node0_fails", "transmissions"});

  {  // Decentralized: MiniCast.
    Stack s(1);
    st::MiniCastParams p;
    st::MiniCastEngine engine(s.sim, s.raw, p, s.rng.stream("mc"));
    engine.start(s.sim.now() + sim::milliseconds(10));
    s.sim.run_until(s.sim.now() + sim::seconds(20));
    const double cov = engine.stats().mean_coverage();
    engine.set_node_failed(0, true);  // "controller" node dies
    const double before_rounds = static_cast<double>(engine.stats().rounds);
    s.sim.run_until(s.sim.now() + sim::seconds(20));
    const double cov_after =
        (engine.stats().coverage_sum - cov * before_rounds) /
        (static_cast<double>(engine.stats().rounds) - before_rounds);
    engine.stop();
    t.add_row("MiniCast (paper)",
              {engine.round_active_duration().seconds_f(), cov, cov_after,
               static_cast<double>(s.medium->stats().transmissions)});
  }

  {  // Centralized: collection to node 0 + command flood back.
    Stack s(1);
    st::CollectionParams p;
    p.round_period = sim::seconds(4);  // N+1 slots need more airtime
    st::CollectionEngine engine(s.sim, s.raw, p, s.rng.stream("col"));
    engine.set_build_command_handler(
        [](std::uint64_t, const st::RecordStore&) {
          return std::vector<std::uint8_t>{0x01};
        });
    engine.start(s.sim.now() + sim::milliseconds(10));
    s.sim.run_until(s.sim.now() + sim::seconds(40));
    const double up = engine.stats().mean_uplink();
    const double down_rounds = static_cast<double>(engine.stats().rounds);
    const double down_sum_before =
        engine.stats().downlink_coverage_sum;
    engine.set_node_failed(0, true);  // the sink dies
    s.sim.run_until(s.sim.now() + sim::seconds(40));
    const double down_after =
        (engine.stats().downlink_coverage_sum - down_sum_before) /
        (static_cast<double>(engine.stats().rounds) - down_rounds);
    engine.stop();
    t.add_row("collect+command (centralized)",
              {engine.round_active_duration().seconds_f(), up, down_after,
               static_cast<double>(s.medium->stats().transmissions)});
  }

  std::printf("\n");
  t.print(std::cout);
  std::printf(
      "\nExpected shape: the centralized round needs one extra slot and a\n"
      "second dissemination hop before devices can act; when the sink\n"
      "fails its coverage collapses to ~0 while MiniCast keeps running —\n"
      "the paper's single-point-of-failure argument, quantified.\n");
}

void BM_MiniCastVsCollection(benchmark::State& state) {
  const bool centralized = state.range(0) != 0;
  for (auto _ : state) {
    Stack s(1);
    if (centralized) {
      st::CollectionParams p;
      p.round_period = sim::seconds(4);
      st::CollectionEngine engine(s.sim, s.raw, p, s.rng.stream("col"));
      engine.start(s.sim.now() + sim::milliseconds(10));
      s.sim.run_until(s.sim.now() + sim::seconds(8));
      engine.stop();
      benchmark::DoNotOptimize(engine.stats().rounds);
    } else {
      st::MiniCastEngine engine(s.sim, s.raw, st::MiniCastParams{},
                                s.rng.stream("mc"));
      engine.start(s.sim.now() + sim::milliseconds(10));
      s.sim.run_until(s.sim.now() + sim::seconds(8));
      engine.stop();
      benchmark::DoNotOptimize(engine.stats().rounds);
    }
  }
}
BENCHMARK(BM_MiniCastVsCollection)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
