// Ablation 5: synchronized (clustered) arrivals — the regime behind the
// paper's "up to 50% peak / up to 58% deviation" claims.
//
// When many requests arrive near-simultaneously (everyone comes home at
// 6 pm), the uncoordinated baseline stacks all bursts: the peak equals
// the cluster size. The coordinated scheduler splits each cluster
// across the K phase slots, halving the peak at K=2 — the theoretical
// bound the paper's "up to" numbers refer to.
#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace han;

core::ExperimentResult run_clustered(core::SchedulerKind kind,
                                     std::size_t cluster_size,
                                     std::uint64_t seed) {
  core::ExperimentConfig cfg =
      core::paper_config(appliance::ArrivalScenario::kHigh, kind, seed);
  cfg.han.fidelity = core::CpFidelity::kAbstract;

  // Replace the Poisson trace with a clustered one of equal offered load.
  sim::Simulator sim;
  core::HanNetwork net(sim, cfg.han);
  appliance::ClusterParams cp;
  cp.cluster_size = cluster_size;
  cp.clusters_per_hour = 30.0 / static_cast<double>(cluster_size);
  auto wp = cfg.workload;
  wp.warmup = cfg.cp_boot;
  const sim::Rng root(seed);
  net.inject_requests(appliance::WorkloadGenerator::generate_clustered(
      wp, cp, root.stream("workload")));
  metrics::LoadMonitor mon(sim, [&net] { return net.total_load_kw(); },
                           sim::minutes(1));
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  mon.start(sim::TimePoint::epoch() + cfg.cp_boot);
  sim.run_until(sim::TimePoint::epoch() + wp.horizon);

  core::ExperimentResult r;
  r.load = mon.series();
  const metrics::RunningStats s = r.load.stats();
  r.peak_kw = s.max();
  r.mean_kw = s.mean();
  r.std_kw = s.stddev();
  r.network = net.stats();
  return r;
}

void reproduce() {
  bench::print_header("Ablation 5",
                      "clustered arrivals (the 'up to' regime)");

  metrics::TextTable t({"cluster_size", "peak_wo_kw", "peak_with_kw",
                        "peak_red_pct", "std_wo_kw", "std_with_kw",
                        "std_red_pct"});
  for (std::size_t size : {6u, 10u, 16u, 22u}) {
    metrics::RunningStats po, pw, so, sw;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto without =
          run_clustered(core::SchedulerKind::kUncoordinated, size, seed);
      const auto with =
          run_clustered(core::SchedulerKind::kCoordinated, size, seed);
      po.add(without.peak_kw);
      pw.add(with.peak_kw);
      so.add(without.std_kw);
      sw.add(with.std_kw);
    }
    t.add_row(metrics::fmt(static_cast<double>(size), 0),
              {po.mean(), pw.mean(),
               bench::reduction_pct(po.mean(), pw.mean()), so.mean(),
               sw.mean(), bench::reduction_pct(so.mean(), sw.mean())});
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf(
      "\nExpected shape: with large synchronized clusters the peak\n"
      "reduction approaches the K=2 bound of 50%% and the deviation\n"
      "reduction the paper's 58%% — the 'up to' numbers of the abstract.\n");
}

void BM_ClusteredRun(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_clustered(core::SchedulerKind::kCoordinated, 10, 1).peak_kw);
  }
}
BENCHMARK(BM_ClusteredRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reproduce();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
