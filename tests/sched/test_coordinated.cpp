// Coordinated scheduler: slot windows, claims, occupancy, rebalancing,
// and the paper's structural properties (staggering, small steps,
// determinism across replicas).
#include <gtest/gtest.h>

#include "sched/coordinated.hpp"

namespace han::sched {
namespace {

using sim::TimePoint;

TimePoint at_min(sim::Ticks m) { return TimePoint::epoch() + sim::minutes(m); }

DeviceStatus dev(net::NodeId id, sim::Ticks since_min, sim::Ticks until_min,
                 std::uint8_t slot = kNoSlot, bool pending = true) {
  DeviceStatus d;
  d.id = id;
  d.has_demand = true;
  d.demand_since = at_min(since_min);
  d.demand_until = at_min(until_min);
  d.slot = slot;
  d.burst_pending = pending;
  return d;
}

TEST(Coordinated, SlotWindowPhases) {
  const auto on = [](sim::Ticks now_min, std::uint8_t slot) {
    return CoordinatedScheduler::slot_window_on(
        at_min(now_min), slot, sim::minutes(15), sim::minutes(30));
  };
  EXPECT_TRUE(on(0, 0));
  EXPECT_TRUE(on(14, 0));
  EXPECT_FALSE(on(15, 0));
  EXPECT_FALSE(on(0, 1));
  EXPECT_TRUE(on(15, 1));
  EXPECT_TRUE(on(29, 1));
  EXPECT_TRUE(on(30, 0));  // periodic
  EXPECT_FALSE(on(10, kNoSlot));
}

TEST(Coordinated, NextWindowOpening) {
  const auto next = [](sim::Ticks now_min, std::uint8_t slot) {
    return CoordinatedScheduler::next_window_opening(
               at_min(now_min), slot, sim::minutes(15), sim::minutes(30))
        .since_epoch()
        .min();
  };
  EXPECT_EQ(next(0, 0), 0);    // exactly at the opening
  EXPECT_EQ(next(1, 0), 30);   // open window: next occurrence
  EXPECT_EQ(next(1, 1), 15);
  EXPECT_EQ(next(16, 0), 30);
  EXPECT_EQ(next(16, 1), 45);  // its own window just opened
}

TEST(Coordinated, PickSlotPrefersLeastOccupied) {
  GlobalView v;
  v.now = at_min(2);
  v.devices = {dev(0, 0, 60, 0), dev(1, 0, 60, 0), dev(2, 0, 60, 1)};
  DeviceStatus self = dev(3, 2, 32);
  EXPECT_EQ(CoordinatedScheduler::pick_slot(v, self), 1);
}

TEST(Coordinated, PickSlotTieBreaksToSoonestOpening) {
  GlobalView v;
  v.now = at_min(2);  // slot 0 open; slot 1 opens at 15, slot 0 again at 30
  DeviceStatus self = dev(3, 2, 32);
  EXPECT_EQ(CoordinatedScheduler::pick_slot(v, self), 1);
  v.now = at_min(16);  // slot 1 open; slot 0 opens at 30, slot 1 at 45
  EXPECT_EQ(CoordinatedScheduler::pick_slot(v, self), 0);
}

TEST(Coordinated, OccupancyCountsOnlyFutureRunners) {
  GlobalView v;
  v.now = at_min(2);
  // Device 0: pending burst => counted.
  // Device 1: burst done, demand ends before its slot's next opening
  //           (slot 0 reopens at 30, demand ends at 29) => not counted.
  // Device 2: burst done but demand covers next opening => counted.
  v.devices = {dev(0, 0, 30, 0, true), dev(1, 0, 29, 0, false),
               dev(2, 0, 60, 0, false)};
  const auto occ = CoordinatedScheduler::slot_occupancy(v, 2);
  EXPECT_EQ(occ[0], 2u);
  EXPECT_EQ(occ[1], 0u);
}

TEST(Coordinated, PlanActivatesOnlyClaimedWindows) {
  CoordinatedScheduler s;
  GlobalView v;
  v.now = at_min(16);  // slot 1 live
  v.devices = {dev(0, 0, 60, 0), dev(1, 0, 60, 1), dev(2, 0, 60)};
  const Plan p = s.plan(v);
  EXPECT_FALSE(p[0]);  // slot 0: not its window
  EXPECT_TRUE(p[1]);   // slot 1: live window
  EXPECT_FALSE(p[2]);  // unassigned: waits for claim
}

TEST(Coordinated, PlanIsDeterministicAcrossReplicas) {
  // The decentralization property: same view => same plan, regardless of
  // device ordering in the vector.
  CoordinatedScheduler s;
  GlobalView v1, v2;
  v1.now = v2.now = at_min(47);
  for (net::NodeId i = 0; i < 10; ++i) {
    v1.devices.push_back(dev(i, i, 60, static_cast<std::uint8_t>(i % 2)));
  }
  v2.devices.assign(v1.devices.rbegin(), v1.devices.rend());
  const Plan p1 = s.plan(v1);
  const Plan p2 = s.plan(v2);
  for (std::size_t i = 0; i < v1.devices.size(); ++i) {
    const net::NodeId id = v1.devices[i].id;
    for (std::size_t j = 0; j < v2.devices.size(); ++j) {
      if (v2.devices[j].id == id) {
        EXPECT_EQ(p1[i], p2[j]) << "device " << id;
      }
    }
  }
}

TEST(Coordinated, StaggeringBoundsConcurrentOn) {
  // With balanced claims, at most ceil(n/K) devices are ON at any time.
  CoordinatedScheduler s;
  for (sim::Ticks t = 0; t < 60; t += 1) {
    GlobalView v;
    v.now = at_min(t);
    for (net::NodeId i = 0; i < 12; ++i) {
      v.devices.push_back(dev(i, 0, 120, static_cast<std::uint8_t>(i % 2)));
    }
    const Plan p = s.plan(v);
    int on = 0;
    for (bool b : p) on += b;
    EXPECT_LE(on, 6);
    EXPECT_GE(on, 6);  // exactly one slot live at a time
  }
}

TEST(Coordinated, EveryActiveDeviceRunsOncePerPeriod) {
  // Structural guarantee: over one maxDCP, each claimed device's window
  // occurs exactly once.
  CoordinatedScheduler s;
  std::vector<int> on_minutes(8, 0);
  for (sim::Ticks t = 0; t < 30; ++t) {
    GlobalView v;
    v.now = at_min(t);
    for (net::NodeId i = 0; i < 8; ++i) {
      v.devices.push_back(dev(i, 0, 120, static_cast<std::uint8_t>(i % 2)));
    }
    const Plan p = s.plan(v);
    for (std::size_t i = 0; i < p.size(); ++i) on_minutes[i] += p[i];
  }
  for (int m : on_minutes) EXPECT_EQ(m, 15);
}

TEST(Coordinated, SteadyOnCount) {
  const auto k1530 = [](std::size_t n) {
    return CoordinatedScheduler::steady_on_count(n, sim::minutes(15),
                                                 sim::minutes(30));
  };
  EXPECT_EQ(k1530(0), 0u);
  EXPECT_EQ(k1530(1), 1u);
  EXPECT_EQ(k1530(2), 1u);
  EXPECT_EQ(k1530(26), 13u);
  EXPECT_EQ(CoordinatedScheduler::steady_on_count(9, sim::minutes(10),
                                                  sim::minutes(30)),
            3u);
}

TEST(Coordinated, RebalanceMovesFromCrowdedSlot) {
  GlobalView v;
  v.now = at_min(2);
  v.devices = {dev(0, 0, 90, 0), dev(1, 0, 90, 0), dev(2, 0, 90, 0)};
  const auto move = CoordinatedScheduler::rebalance_move(v, 2);
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->mover, 0);  // lowest id in the crowded slot
  EXPECT_EQ(move->new_slot, 1);
}

TEST(Coordinated, RebalanceRespectsHysteresis) {
  GlobalView v;
  v.now = at_min(2);
  v.devices = {dev(0, 0, 90, 0), dev(1, 0, 90, 1), dev(2, 0, 90, 0)};
  // Occupancy 2 vs 1: difference < 2 => no move.
  EXPECT_FALSE(CoordinatedScheduler::rebalance_move(v, 2).has_value());
}

TEST(Coordinated, RebalanceNeverInterruptsBurst) {
  GlobalView v;
  v.now = at_min(2);
  auto d0 = dev(0, 0, 90, 0);
  d0.relay_on = true;
  auto d1 = dev(1, 0, 90, 0);
  d1.relay_on = true;
  v.devices = {d0, d1, dev(2, 0, 90, 0)};
  const auto move = CoordinatedScheduler::rebalance_move(v, 2);
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->mover, 2);  // only the OFF device may move
}

TEST(Coordinated, RebalanceNeverCostsABurst) {
  GlobalView v;
  v.now = at_min(2);
  // All three crowd slot 0, but their demands end before slot 1's next
  // opening (15): moving any of them would lose its burst.
  v.devices = {dev(0, 0, 14, 0), dev(1, 0, 14, 0), dev(2, 0, 14, 0)};
  EXPECT_FALSE(CoordinatedScheduler::rebalance_move(v, 2).has_value());
}

TEST(Coordinated, IsEpochAligned) {
  EXPECT_TRUE(CoordinatedScheduler{}.epoch_aligned());
  EXPECT_EQ(CoordinatedScheduler{}.name(), "coordinated");
}

// Heterogeneous constraints: a 10/30 device uses K=3 slots.
TEST(Coordinated, HeterogeneousConstraints) {
  const auto on = [](sim::Ticks now_min, std::uint8_t slot) {
    return CoordinatedScheduler::slot_window_on(
        at_min(now_min), slot, sim::minutes(10), sim::minutes(30));
  };
  EXPECT_TRUE(on(5, 0));
  EXPECT_FALSE(on(5, 1));
  EXPECT_TRUE(on(15, 1));
  EXPECT_TRUE(on(25, 2));
  EXPECT_TRUE(on(35, 0));
}

}  // namespace
}  // namespace han::sched
