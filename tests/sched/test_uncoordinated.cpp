// Uncoordinated baseline: free-running duty cycles anchored at demand.
#include <gtest/gtest.h>

#include "sched/uncoordinated.hpp"

namespace han::sched {
namespace {

using sim::TimePoint;

TimePoint at_min(sim::Ticks m) { return TimePoint::epoch() + sim::minutes(m); }

DeviceStatus dev(net::NodeId id, sim::Ticks since_min, sim::Ticks until_min) {
  DeviceStatus d;
  d.id = id;
  d.has_demand = true;
  d.demand_since = at_min(since_min);
  d.demand_until = at_min(until_min);
  return d;
}

TEST(Uncoordinated, FreeRunningPhase) {
  const auto on = [](sim::Ticks now_min, sim::Ticks anchor_min) {
    return UncoordinatedScheduler::free_running_on(
        at_min(now_min), at_min(anchor_min), sim::minutes(15),
        sim::minutes(30));
  };
  EXPECT_TRUE(on(0, 0));
  EXPECT_TRUE(on(14, 0));
  EXPECT_FALSE(on(15, 0));
  EXPECT_FALSE(on(29, 0));
  EXPECT_TRUE(on(30, 0));   // second period
  EXPECT_TRUE(on(17, 10));  // anchored at 10: ON within [10,25)
  EXPECT_FALSE(on(5, 10));  // before the anchor
}

TEST(Uncoordinated, PlanTurnsOnFreshDemand) {
  UncoordinatedScheduler s;
  GlobalView v;
  v.now = at_min(5);
  v.devices = {dev(0, 5, 35), dev(1, 0, 30)};
  const Plan p = s.plan(v);
  EXPECT_TRUE(p[0]);   // 0 min into its cycle
  EXPECT_TRUE(p[1]);   // 5 min into its cycle
}

TEST(Uncoordinated, PlanTurnsOffAfterMinDcd) {
  UncoordinatedScheduler s;
  GlobalView v;
  v.now = at_min(20);
  v.devices = {dev(0, 0, 30)};
  EXPECT_FALSE(s.plan(v)[0]);  // 20 min in: OFF phase
}

TEST(Uncoordinated, ExpiredDemandStaysOff) {
  UncoordinatedScheduler s;
  GlobalView v;
  v.now = at_min(40);
  v.devices = {dev(0, 0, 30)};
  EXPECT_FALSE(s.plan(v)[0]);
}

TEST(Uncoordinated, IdleDeviceStaysOff) {
  UncoordinatedScheduler s;
  GlobalView v;
  v.now = at_min(5);
  DeviceStatus d;
  d.id = 0;
  d.has_demand = false;
  v.devices = {d};
  EXPECT_FALSE(s.plan(v)[0]);
}

TEST(Uncoordinated, SimultaneousArrivalsStack) {
  // The failure mode coordination fixes: n simultaneous requests are all
  // ON together.
  UncoordinatedScheduler s;
  GlobalView v;
  v.now = at_min(10);
  for (net::NodeId i = 0; i < 10; ++i) v.devices.push_back(dev(i, 10, 40));
  const Plan p = s.plan(v);
  int on = 0;
  for (bool b : p) on += b;
  EXPECT_EQ(on, 10);
}

TEST(Uncoordinated, NotEpochAligned) {
  EXPECT_FALSE(UncoordinatedScheduler{}.epoch_aligned());
  EXPECT_EQ(UncoordinatedScheduler{}.name(), "uncoordinated");
}

}  // namespace
}  // namespace han::sched
