// DR-aware coordinated scheduling: effective_max_dcp, stretched slot
// windows under grid pressure, baseline immunity.
#include <gtest/gtest.h>

#include "sched/coordinated.hpp"
#include "sched/uncoordinated.hpp"

namespace han::sched {
namespace {

DeviceStatus device(net::NodeId id, std::uint8_t slot,
                    sim::TimePoint now) {
  DeviceStatus d;
  d.id = id;
  d.has_demand = true;
  d.demand_since = now - sim::minutes(1);
  d.demand_until = now + sim::hours(4);
  d.min_dcd = sim::minutes(15);
  d.max_dcp = sim::minutes(30);
  d.slot = slot;
  d.burst_pending = true;
  return d;
}

TEST(DrEnvelope, EffectiveMaxDcpStretchesOnlyDuringShed) {
  const sim::Duration base = sim::minutes(30);
  GridPressure idle;
  EXPECT_EQ(effective_max_dcp(base, idle), base);

  GridPressure shed;
  shed.shed_active = true;
  shed.period_stretch = 2;
  EXPECT_EQ(effective_max_dcp(base, shed), sim::minutes(60));

  GridPressure unit;
  unit.shed_active = true;
  unit.period_stretch = 1;
  EXPECT_EQ(effective_max_dcp(base, unit), base);
}

TEST(DrEnvelope, DrAwarePlanThinsTheBurstCadence) {
  // Two devices in slots 0 and 1 of the 15/30 ring. At phase 20 min of
  // the base ring, slot 1 is ON. Under a 2x shed the ring is 60 min and
  // phase 20 lies in slot 1's window [15, 30) — but at phase 50 the
  // base ring would run slot 1 again while the stretched ring (slot 3's
  // window) must not.
  const sim::TimePoint t50 = sim::TimePoint::epoch() + sim::minutes(50);
  GlobalView view;
  view.now = t50;
  view.devices = {device(0, 0, t50), device(1, 1, t50)};

  const CoordinatedScheduler plain;
  const CoordinatedScheduler aware(/*dr_aware=*/true);

  // No shed: identical plans (phase 20 of base ring => slot 1 ON).
  Plan p = plain.plan(view);
  Plan a = aware.plan(view);
  EXPECT_EQ(p, a);
  EXPECT_FALSE(p[0]);
  EXPECT_TRUE(p[1]);

  // Shed active: the DR-aware policy maps phase 50 into the stretched
  // 60-minute ring, where neither claimed slot's window is open.
  view.grid.shed_active = true;
  view.grid.period_stretch = 2;
  a = aware.plan(view);
  EXPECT_FALSE(a[0]);
  EXPECT_FALSE(a[1]);

  // A dr_aware=false coordinated policy ignores the pressure entirely.
  p = plain.plan(view);
  EXPECT_FALSE(p[0]);
  EXPECT_TRUE(p[1]);
}

TEST(DrEnvelope, StretchedWindowsStillGrantEverySlotOnce) {
  // Sweep one stretched period: each of the two claimed slots must be
  // ON for exactly one minDCD span of the 60-minute ring.
  const CoordinatedScheduler aware(/*dr_aware=*/true);
  int on_minutes_0 = 0;
  int on_minutes_1 = 0;
  for (int m = 0; m < 60; ++m) {
    const sim::TimePoint t =
        sim::TimePoint::epoch() + sim::minutes(m);
    GlobalView view;
    view.now = t;
    view.grid.shed_active = true;
    view.grid.period_stretch = 2;
    view.devices = {device(0, 0, t), device(1, 1, t)};
    const Plan plan = aware.plan(view);
    on_minutes_0 += plan[0] ? 1 : 0;
    on_minutes_1 += plan[1] ? 1 : 0;
    // Staggering survives the stretch: never both ON.
    EXPECT_FALSE(plan[0] && plan[1]) << m;
  }
  EXPECT_EQ(on_minutes_0, 15);
  EXPECT_EQ(on_minutes_1, 15);
}

TEST(DrEnvelope, PickSlotSpreadsOverStretchedRing) {
  // Base ring has K=2; a 2x shed opens K=4. Occupy slots 0 and 1 —
  // a DR-aware claim must land in the stretched-only slots {2, 3},
  // while a grid-blind claim can only see {0, 1}.
  const sim::TimePoint t = sim::TimePoint::epoch();
  GlobalView view;
  view.now = t;
  view.grid.shed_active = true;
  view.grid.period_stretch = 2;
  view.devices = {device(0, 0, t), device(1, 1, t)};

  DeviceStatus self = device(2, kNoSlot, t);
  const std::uint8_t aware_slot =
      CoordinatedScheduler::pick_slot(view, self, /*apply_grid=*/true);
  EXPECT_TRUE(aware_slot == 2 || aware_slot == 3) << int(aware_slot);

  const std::uint8_t blind_slot =
      CoordinatedScheduler::pick_slot(view, self, /*apply_grid=*/false);
  EXPECT_LT(blind_slot, 2);
}

TEST(DrEnvelope, UncoordinatedBaselineIsNotDrAware) {
  const UncoordinatedScheduler baseline;
  EXPECT_FALSE(baseline.dr_aware());
  const CoordinatedScheduler plain;
  EXPECT_FALSE(plain.dr_aware());
  const CoordinatedScheduler aware(true);
  EXPECT_TRUE(aware.dr_aware());
}

}  // namespace
}  // namespace han::sched
