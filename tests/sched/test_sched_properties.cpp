// Randomized property tests on the schedulers themselves: determinism,
// order independence, occupancy bounds, and window structure, over
// generated views.
#include <gtest/gtest.h>

#include "sched/coordinated.hpp"
#include "sched/uncoordinated.hpp"
#include "sim/random.hpp"

namespace han::sched {
namespace {

GlobalView random_view(sim::Rng& rng, std::size_t n) {
  GlobalView v;
  v.now = sim::TimePoint::epoch() +
          sim::seconds(rng.uniform_int(0, 6 * 3600));
  for (std::size_t i = 0; i < n; ++i) {
    DeviceStatus d;
    d.id = static_cast<net::NodeId>(i);
    d.has_demand = rng.bernoulli(0.7);
    const sim::TimePoint since =
        v.now - sim::seconds(rng.uniform_int(0, 1800));
    d.demand_since = since;
    d.demand_until =
        since + sim::minutes(30 * rng.uniform_int(1, 3));
    d.relay_on = rng.bernoulli(0.3);
    d.burst_pending = rng.bernoulli(0.5);
    d.slot = rng.bernoulli(0.8)
                 ? static_cast<std::uint8_t>(rng.uniform_int(0, 1))
                 : kNoSlot;
    v.devices.push_back(d);
  }
  return v;
}

class SchedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedFuzz, PlanIsPureAndOrderIndependent) {
  sim::Rng rng(GetParam());
  const CoordinatedScheduler co;
  const UncoordinatedScheduler un;
  for (int iter = 0; iter < 50; ++iter) {
    GlobalView v = random_view(rng, 16);
    const Plan p1 = co.plan(v);
    const Plan p2 = co.plan(v);
    EXPECT_EQ(p1, p2) << "plan must be a pure function";

    GlobalView shuffled = v;
    std::reverse(shuffled.devices.begin(), shuffled.devices.end());
    const Plan ps = co.plan(shuffled);
    for (std::size_t i = 0; i < v.devices.size(); ++i) {
      EXPECT_EQ(p1[i], ps[v.devices.size() - 1 - i])
          << "device order must not matter";
    }
    EXPECT_EQ(un.plan(v), un.plan(v));
  }
}

TEST_P(SchedFuzz, NoPlanPowersExpiredOrIdleDevices) {
  sim::Rng rng(GetParam());
  const CoordinatedScheduler co;
  const UncoordinatedScheduler un;
  for (int iter = 0; iter < 50; ++iter) {
    const GlobalView v = random_view(rng, 16);
    for (const Scheduler* s :
         std::initializer_list<const Scheduler*>{&co, &un}) {
      const Plan p = s->plan(v);
      for (std::size_t i = 0; i < v.devices.size(); ++i) {
        const DeviceStatus& d = v.devices[i];
        if (!d.has_demand || d.demand_until <= v.now) {
          EXPECT_FALSE(p[i]) << s->name() << " powered idle device "
                             << d.id;
        }
      }
    }
  }
}

TEST_P(SchedFuzz, CoordinatedOnImpliesOwnWindow) {
  sim::Rng rng(GetParam());
  const CoordinatedScheduler co;
  for (int iter = 0; iter < 50; ++iter) {
    const GlobalView v = random_view(rng, 16);
    const Plan p = co.plan(v);
    for (std::size_t i = 0; i < v.devices.size(); ++i) {
      if (!p[i]) continue;
      const DeviceStatus& d = v.devices[i];
      EXPECT_TRUE(CoordinatedScheduler::slot_window_on(
          v.now, d.slot, d.min_dcd, d.max_dcp));
    }
  }
}

TEST_P(SchedFuzz, PickSlotAlwaysValidAndDeterministic) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const GlobalView v = random_view(rng, 16);
    DeviceStatus self;
    self.id = 99;
    self.has_demand = true;
    self.demand_since = v.now;
    self.demand_until = v.now + sim::minutes(30);
    const std::uint8_t s1 = CoordinatedScheduler::pick_slot(v, self);
    const std::uint8_t s2 = CoordinatedScheduler::pick_slot(v, self);
    EXPECT_EQ(s1, s2);
    EXPECT_LT(s1, 2);  // K = 2 for the default constraints
  }
}

TEST_P(SchedFuzz, PickSlotNeverExceedsMinOccupancyPlusOne) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const GlobalView v = random_view(rng, 16);
    DeviceStatus self;
    self.id = 99;
    self.has_demand = true;
    self.demand_since = v.now;
    self.demand_until = v.now + sim::minutes(30);
    const std::uint8_t chosen = CoordinatedScheduler::pick_slot(v, self);
    const auto occ = CoordinatedScheduler::slot_occupancy(v, 2);
    const std::size_t min_occ = std::min(occ[0], occ[1]);
    EXPECT_EQ(occ[chosen], min_occ)
        << "greedy claim must target a least-occupied slot";
  }
}

TEST_P(SchedFuzz, NextWindowOpeningIsConsistent) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    const sim::TimePoint now =
        sim::TimePoint::epoch() + sim::seconds(rng.uniform_int(0, 36000));
    const auto slot = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    const sim::TimePoint open = CoordinatedScheduler::next_window_opening(
        now, slot, sim::minutes(15), sim::minutes(30));
    EXPECT_GE(open, now);
    EXPECT_LT((open - now).us(), sim::minutes(30).us());
    // At the opening instant the window must be on.
    EXPECT_TRUE(CoordinatedScheduler::slot_window_on(
        open, slot, sim::minutes(15), sim::minutes(30)));
  }
}

TEST_P(SchedFuzz, RebalanceMoveIsConsistentAcrossReplicas) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const GlobalView v = random_view(rng, 16);
    const auto m1 = CoordinatedScheduler::rebalance_move(v, 2);
    const auto m2 = CoordinatedScheduler::rebalance_move(v, 2);
    ASSERT_EQ(m1.has_value(), m2.has_value());
    if (m1) {
      EXPECT_EQ(m1->mover, m2->mover);
      EXPECT_EQ(m1->new_slot, m2->new_slot);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace han::sched
