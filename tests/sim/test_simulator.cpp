// Simulator: clock advancement, run modes, periodic events, stop().
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace han::sim {
namespace {

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Ticks> seen;
  sim.schedule_after(seconds(2), [&] { seen.push_back(sim.now().us()); });
  sim.schedule_after(seconds(1), [&] { seen.push_back(sim.now().us()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<Ticks>{1'000'000, 2'000'000}));
}

TEST(Simulator, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  sim.schedule_after(seconds(1), [] {});
  sim.run_until(TimePoint::epoch() + seconds(10));
  EXPECT_EQ(sim.now(), TimePoint::epoch() + seconds(10));
}

TEST(Simulator, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(TimePoint::epoch() + seconds(5), [&] { fired = true; });
  sim.run_until(TimePoint::epoch() + seconds(5));
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(TimePoint::epoch() + seconds(6), [&] { fired = true; });
  sim.run_until(TimePoint::epoch() + seconds(5));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_after(seconds(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::epoch() + seconds(1), [] {}),
               std::logic_error);
  EXPECT_THROW(sim.schedule_after(seconds(-1), [] {}), std::logic_error);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sim.schedule_after(seconds(1), recurse);
  };
  sim.schedule_after(seconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + seconds(5));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_after(seconds(i), [&] {
      if (++fired == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.events_pending(), 7u);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(seconds(1), [&] { ++fired; });
  sim.schedule_after(seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PeriodicFiresAtFixedInterval) {
  Simulator sim;
  std::vector<Ticks> times;
  auto handle = sim.schedule_every(seconds(2), [&] {
    times.push_back(sim.now().us());
  });
  sim.run_until(TimePoint::epoch() + seconds(9));
  handle.cancel();
  EXPECT_EQ(times, (std::vector<Ticks>{2'000'000, 4'000'000, 6'000'000,
                                       8'000'000}));
}

TEST(Simulator, PeriodicCancelStopsFiring) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_every(seconds(1), [&] { ++fired; });
  sim.run_until(TimePoint::epoch() + seconds(3));
  handle.cancel();
  EXPECT_FALSE(handle.active());
  sim.run_until(TimePoint::epoch() + seconds(10));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, PeriodicCanCancelItself) {
  Simulator sim;
  int fired = 0;
  Simulator::PeriodicHandle handle;
  handle = sim.schedule_every(seconds(1), [&] {
    if (++fired == 2) handle.cancel();
  });
  sim.run_until(TimePoint::epoch() + seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PeriodicWithExplicitFirstFiring) {
  Simulator sim;
  std::vector<Ticks> times;
  sim.schedule_every(TimePoint::epoch() + seconds(5), seconds(3),
                     [&] { times.push_back(sim.now().us()); });
  sim.run_until(TimePoint::epoch() + seconds(12));
  EXPECT_EQ(times, (std::vector<Ticks>{5'000'000, 8'000'000, 11'000'000}));
}

TEST(Simulator, PeriodicRejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_every(Duration::zero(), [] {}),
               std::logic_error);
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_after(seconds(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, CancelOneShotEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace han::sim
