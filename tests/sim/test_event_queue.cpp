// EventQueue: ordering, stability, cancellation, heap integrity.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace han::sim {
namespace {

TimePoint at(Ticks us) { return TimePoint{us}; }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(at(30), [&] { fired.push_back(3); });
  q.schedule(at(10), [&] { fired.push_back(1); });
  q.schedule(at(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    q.schedule(at(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(at(10), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(at(10), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.schedule(at(10), [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{12345}));
}

TEST(EventQueue, CancelMiddlePreservesOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(at(10), [&] { fired.push_back(1); });
  const EventId mid = q.schedule(at(20), [&] { fired.push_back(2); });
  q.schedule(at(30), [&] { fired.push_back(3); });
  q.schedule(at(40), [&] { fired.push_back(4); });
  EXPECT_TRUE(q.cancel(mid));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 4}));
}

TEST(EventQueue, NextTimeTracksEarliest) {
  EventQueue q;
  q.schedule(at(50), [] {});
  EXPECT_EQ(q.next_time(), at(50));
  const EventId early = q.schedule(at(5), [] {});
  EXPECT_EQ(q.next_time(), at(5));
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at(50));
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule(at(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// Randomized heap-integrity check: interleaved schedule/cancel/pop must
// always yield a non-decreasing fire-time sequence.
class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, RandomOpsKeepHeapOrdered) {
  Rng rng(GetParam());
  EventQueue q;
  std::vector<EventId> live;
  Ticks last_popped = -1;
  Ticks clock = 0;
  for (int op = 0; op < 4000; ++op) {
    const double r = rng.uniform();
    if (r < 0.55) {
      const Ticks t = clock + rng.uniform_int(0, 1000);
      live.push_back(q.schedule(at(t), [] {}));
    } else if (r < 0.75 && !live.empty()) {
      const std::size_t i = rng.index(live.size());
      q.cancel(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (!q.empty()) {
      const auto fired = q.pop();
      EXPECT_GE(fired.time.us(), last_popped);
      last_popped = fired.time.us();
      clock = fired.time.us();
    }
  }
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time.us(), last_popped);
    last_popped = fired.time.us();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1, 2, 3, 7, 11, 13, 42, 99));

}  // namespace
}  // namespace han::sim
