// EventQueue: ordering, stability, cancellation, heap integrity.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace han::sim {
namespace {

TimePoint at(Ticks us) { return TimePoint{us}; }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(at(30), [&] { fired.push_back(3); });
  q.schedule(at(10), [&] { fired.push_back(1); });
  q.schedule(at(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    q.schedule(at(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(at(10), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(at(10), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.schedule(at(10), [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{12345}));
}

TEST(EventQueue, CancelMiddlePreservesOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(at(10), [&] { fired.push_back(1); });
  const EventId mid = q.schedule(at(20), [&] { fired.push_back(2); });
  q.schedule(at(30), [&] { fired.push_back(3); });
  q.schedule(at(40), [&] { fired.push_back(4); });
  EXPECT_TRUE(q.cancel(mid));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 4}));
}

TEST(EventQueue, NextTimeTracksEarliest) {
  EventQueue q;
  q.schedule(at(50), [] {});
  EXPECT_EQ(q.next_time(), at(50));
  const EventId early = q.schedule(at(5), [] {});
  EXPECT_EQ(q.next_time(), at(5));
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at(50));
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule(at(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// Randomized heap-integrity check: interleaved schedule/cancel/pop must
// always yield a non-decreasing fire-time sequence.
class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, RandomOpsKeepHeapOrdered) {
  Rng rng(GetParam());
  EventQueue q;
  std::vector<EventId> live;
  Ticks last_popped = -1;
  Ticks clock = 0;
  for (int op = 0; op < 4000; ++op) {
    const double r = rng.uniform();
    if (r < 0.55) {
      const Ticks t = clock + rng.uniform_int(0, 1000);
      live.push_back(q.schedule(at(t), [] {}));
    } else if (r < 0.75 && !live.empty()) {
      const std::size_t i = rng.index(live.size());
      q.cancel(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (!q.empty()) {
      const auto fired = q.pop();
      EXPECT_GE(fired.time.us(), last_popped);
      last_popped = fired.time.us();
      clock = fired.time.us();
    }
  }
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time.us(), last_popped);
    last_popped = fired.time.us();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1, 2, 3, 7, 11, 13, 42, 99));

TEST(Timer, ArmReplacesPendingSchedule) {
  EventQueue q;
  Timer timer(q);
  int fired = 0;
  timer.arm(at(100), [&] { fired += 1; });
  EXPECT_TRUE(timer.armed());
  EXPECT_EQ(timer.at(), at(100));
  // Re-arming earlier discards the first schedule entirely.
  timer.arm(at(50), [&] { fired += 10; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(timer.at(), at(50));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, CancelIsIdempotentAndFiringDisarms) {
  EventQueue q;
  Timer timer(q);
  timer.cancel();  // never armed: no-op
  EXPECT_FALSE(timer.armed());
  timer.arm(at(10), [] {});
  timer.cancel();
  timer.cancel();
  EXPECT_FALSE(timer.armed());
  EXPECT_TRUE(q.empty());

  timer.arm(at(20), [] {});
  q.pop().fn();
  EXPECT_FALSE(timer.armed());  // fired, not pending
  // Re-arming after a fire works.
  timer.arm(at(30), [] {});
  EXPECT_TRUE(timer.armed());
}

TEST(Timer, CoincidingTimersFireInArmOrder) {
  EventQueue q;
  Timer a(q);
  Timer b(q);
  std::vector<int> order;
  a.arm(at(40), [&] { order.push_back(1); });
  b.arm(at(40), [&] { order.push_back(2); });
  EXPECT_EQ(q.next_time(), at(40));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PendingTracksLifecycle) {
  EventQueue q;
  const EventId id = q.schedule(at(5), [] {});
  EXPECT_TRUE(q.pending(id));
  q.pop();
  EXPECT_FALSE(q.pending(id));
  const EventId id2 = q.schedule(at(6), [] {});
  q.cancel(id2);
  EXPECT_FALSE(q.pending(id2));
  EXPECT_FALSE(q.pending(EventId{}));
}

}  // namespace
}  // namespace han::sim
