// Rng: determinism, stream independence, distribution sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hpp"

namespace han::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NamedStreamsAreDeterministic) {
  const Rng root(7);
  Rng s1 = root.stream("workload");
  Rng s2 = root.stream("workload");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
}

TEST(Rng, NamedStreamsAreIndependent) {
  const Rng root(7);
  Rng a = root.stream("alpha");
  Rng b = root.stream("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedStreamsAreIndependent) {
  const Rng root(7);
  Rng a = root.stream("node", 0);
  Rng b = root.stream("node", 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliMeanMatches) {
  Rng rng(5);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(3.5));
  }
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 3.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(5);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.index(5)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace han::sim
