// Strong time types: arithmetic, conversions, period/phase helpers.
#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace han::sim {
namespace {

TEST(Time, DurationConstructors) {
  EXPECT_EQ(microseconds(5).us(), 5);
  EXPECT_EQ(milliseconds(3).us(), 3000);
  EXPECT_EQ(seconds(2).us(), 2'000'000);
  EXPECT_EQ(minutes(1).us(), 60'000'000);
  EXPECT_EQ(hours(1).us(), 3'600'000'000LL);
  EXPECT_EQ(seconds_f(1.5).us(), 1'500'000);
  EXPECT_EQ(seconds_f(-1.5).us(), -1'500'000);
}

TEST(Time, DurationUnitViews) {
  const Duration d = minutes(90);
  EXPECT_EQ(d.ms(), 90 * 60 * 1000);
  EXPECT_EQ(d.sec(), 5400);
  EXPECT_EQ(d.min(), 90);
  EXPECT_DOUBLE_EQ(d.hours_f(), 1.5);
  EXPECT_DOUBLE_EQ(d.minutes_f(), 90.0);
  EXPECT_DOUBLE_EQ(d.seconds_f(), 5400.0);
}

TEST(Time, DurationArithmetic) {
  EXPECT_EQ(seconds(3) + seconds(2), seconds(5));
  EXPECT_EQ(seconds(3) - seconds(5), seconds(-2));
  EXPECT_EQ(seconds(3) * 4, seconds(12));
  EXPECT_EQ(4 * seconds(3), seconds(12));
  EXPECT_EQ(seconds(10) / 2, seconds(5));
  EXPECT_EQ(minutes(45) / minutes(15), 3);
  EXPECT_EQ(minutes(50) % minutes(15), minutes(5));
  EXPECT_EQ(-seconds(7), seconds(-7));
}

TEST(Time, DurationCompoundAssignment) {
  Duration d = seconds(1);
  d += seconds(2);
  EXPECT_EQ(d, seconds(3));
  d -= seconds(4);
  EXPECT_EQ(d, seconds(-1));
  d *= -6;
  EXPECT_EQ(d, seconds(6));
}

TEST(Time, DurationOrdering) {
  EXPECT_LT(seconds(1), seconds(2));
  EXPECT_GT(minutes(1), seconds(59));
  EXPECT_LE(Duration::zero(), microseconds(0));
  EXPECT_LT(Duration::zero(), Duration::max());
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t = TimePoint::epoch() + minutes(10);
  EXPECT_EQ(t.us(), minutes(10).us());
  EXPECT_EQ((t + seconds(30)) - t, seconds(30));
  EXPECT_EQ(t - minutes(10), TimePoint::epoch());
  EXPECT_EQ(t.since_epoch(), minutes(10));
}

TEST(Time, PhaseInPeriod) {
  const Duration period = minutes(30);
  EXPECT_EQ(phase_in_period(TimePoint::epoch(), period), Duration::zero());
  EXPECT_EQ(phase_in_period(TimePoint::epoch() + minutes(45), period),
            minutes(15));
  EXPECT_EQ(phase_in_period(TimePoint::epoch() + minutes(60), period),
            Duration::zero());
}

TEST(Time, PeriodStart) {
  const Duration period = minutes(30);
  EXPECT_EQ(period_start(TimePoint::epoch() + minutes(44), period),
            TimePoint::epoch() + minutes(30));
  EXPECT_EQ(period_start(TimePoint::epoch() + minutes(30), period),
            TimePoint::epoch() + minutes(30));
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(microseconds(12).to_string(), "12us");
  EXPECT_EQ(milliseconds(2).to_string(), "2.000ms");
  EXPECT_EQ(seconds(2).to_string(), "2.000s");
  EXPECT_EQ(minutes(15).to_string(), "15.0min");
  EXPECT_EQ(hours(2).to_string(), "2.00h");
  EXPECT_EQ((TimePoint::epoch() + seconds(1)).to_string(), "t+1.000s");
}

}  // namespace
}  // namespace han::sim
