// TraceRecorder and Logger basics.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/logging.hpp"
#include "sim/trace.hpp"

namespace han::sim {
namespace {

TEST(Trace, RecordsSeriesInOrder) {
  TraceRecorder tr;
  tr.record("load", TimePoint{10}, 1.0);
  tr.record("load", TimePoint{20}, 2.5);
  ASSERT_TRUE(tr.has_series("load"));
  const auto& s = tr.series("load");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].time, TimePoint{10});
  EXPECT_DOUBLE_EQ(s[1].value, 2.5);
}

TEST(Trace, UnknownSeriesIsEmpty) {
  TraceRecorder tr;
  EXPECT_FALSE(tr.has_series("nope"));
  EXPECT_TRUE(tr.series("nope").empty());
}

TEST(Trace, SeriesNamesAndTotals) {
  TraceRecorder tr;
  tr.record("a", TimePoint{1}, 1);
  tr.record("b", TimePoint{1}, 2);
  tr.record("a", TimePoint{2}, 3);
  EXPECT_EQ(tr.total_samples(), 3u);
  auto names = tr.series_names();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  tr.clear();
  EXPECT_EQ(tr.total_samples(), 0u);
  EXPECT_FALSE(tr.has_series("a"));
}

TEST(Logging, LevelFiltering) {
  Logger& lg = Logger::instance();
  std::vector<std::string> lines;
  lg.set_sink([&](std::string_view l) { lines.emplace_back(l); });
  lg.set_level(LogLevel::kWarn);
  log(LogLevel::kDebug, TimePoint{0}, "test", "hidden");
  log(LogLevel::kWarn, TimePoint{0}, "test", "shown ", 42);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("shown 42"), std::string::npos);
  EXPECT_NE(lines[0].find("[WARN]"), std::string::npos);
  lg.set_sink(nullptr);
  lg.set_level(LogLevel::kOff);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace han::sim
