// han::telemetry — collector semantics, manifest/trace export, and the
// engine-facing guarantees the ISSUE pins: deterministic counters are
// byte-identical across executor widths and mirror GridFleetResult
// exactly, instrumented runs leave every simulation output unchanged,
// and the exclusive phases partition the run's wall clock.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace han::telemetry {
namespace {

// --------------------------------------------------------------------
// Collector unit tests
// --------------------------------------------------------------------

TEST(Collector, RecordSpanAggregatesExactly) {
  Collector c;
  c.record_span(Phase::kBarrierCommit, 100);
  c.record_span(Phase::kBarrierCommit, 250);
  c.record_span(Phase::kBarrierCommit, 50);
  const PhaseStats s = c.phase(Phase::kBarrierCommit);
  EXPECT_EQ(s.calls, 3u);
  EXPECT_EQ(s.total_ns, 400u);
  EXPECT_EQ(s.max_ns, 250u);
  // Untouched phases stay zero.
  EXPECT_EQ(c.phase(Phase::kBoot).calls, 0u);
}

TEST(Collector, NullSpanRecordsNothing) {
  {
    Span span(nullptr, Phase::kBarrierCommit);
    span.finish();  // idempotent on the null path too
  }
  // Enabled span records exactly once even with finish() + destructor.
  Collector c;
  {
    Span span(&c, Phase::kAggregate);
    span.finish();
  }
  EXPECT_EQ(c.phase(Phase::kAggregate).calls, 1u);
}

TEST(Collector, DisabledSpanIsCheap) {
  // The engine leaves spans on the barrier hot path unconditionally,
  // so the null-collector constructor must never read a clock. Bound:
  // 1e6 disabled spans in well under the time 1e6 clock reads take.
  // The limit is deliberately generous (debug builds, CI noise) —
  // bench_micro carries the precise numbers.
  constexpr int kIters = 1000000;
  const std::uint64_t t0 = Collector::now_ns();
  for (int i = 0; i < kIters; ++i) {
    Span span(nullptr, Phase::kBarrierCommit);
    // The span is dead here; the optimizer may drop it entirely, which
    // is exactly the production behavior being pinned.
  }
  const std::uint64_t disabled_ns = Collector::now_ns() - t0;
  EXPECT_LT(disabled_ns / kIters, 200u) << "null span too slow";
}

TEST(Collector, CountersAreInsertionOrderedAndLastWriteWins) {
  Collector c;
  c.count("beta");
  c.count("alpha", 5);
  c.count("beta", 2);
  c.set_counter("gamma", 7);
  c.set_counter("alpha", 9);
  ASSERT_EQ(c.counters().size(), 3u);
  EXPECT_EQ(c.counters()[0].first, "beta");
  EXPECT_EQ(c.counters()[1].first, "alpha");
  EXPECT_EQ(c.counters()[2].first, "gamma");
  EXPECT_EQ(c.counter("beta"), 3u);
  EXPECT_EQ(c.counter("alpha"), 9u);
  EXPECT_EQ(c.counter("gamma"), 7u);
  EXPECT_EQ(c.counter("never_touched"), 0u);
}

TEST(Collector, MetaTracksNumericKeys) {
  Collector c;
  c.set_meta("binary", "test");
  c.set_meta_num("seed", 42);
  EXPECT_FALSE(c.meta_is_numeric("binary"));
  EXPECT_TRUE(c.meta_is_numeric("seed"));
  ASSERT_EQ(c.meta().size(), 2u);
  EXPECT_EQ(c.meta()[0].first, "binary");
}

TEST(Collector, PhasePartitionIsComplete) {
  // Every phase before kRunTotal is classified, kRunTotal is neither
  // exclusive nor nested-only, and every phase has a distinct name.
  std::vector<std::string_view> names;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    names.push_back(phase_name(p));
    EXPECT_FALSE(phase_name(p).empty());
  }
  EXPECT_FALSE(phase_is_exclusive(Phase::kRunTotal));
  EXPECT_FALSE(phase_is_exclusive(Phase::kExecutorDispatch));
  EXPECT_TRUE(phase_is_exclusive(Phase::kBarrierAdvance));
  EXPECT_TRUE(phase_is_exclusive(Phase::kAggregate));
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(Export, JsonValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_is_valid("{}"));
  EXPECT_TRUE(json_is_valid(R"({"a": [1, 2.5, -3e4], "b": {"c": null}})"));
  EXPECT_TRUE(json_is_valid(R"(["x", true, false])"));
  EXPECT_FALSE(json_is_valid(""));
  EXPECT_FALSE(json_is_valid("{"));
  EXPECT_FALSE(json_is_valid("{} trailing"));
  EXPECT_FALSE(json_is_valid(R"({"a": })"));
  EXPECT_FALSE(json_is_valid(R"({"a": 1,})"));
}

// --------------------------------------------------------------------
// Engine-facing guarantees
// --------------------------------------------------------------------

/// dr_heat_wave shrunk to test size (mirrors test_fleet_grid.cpp).
fleet::FleetConfig tiny_dr_heat_wave(fleet::ControlMode mode,
                                     std::uint64_t seed = 1) {
  fleet::FleetConfig cfg =
      fleet::make_scenario(fleet::ScenarioKind::kDrHeatWave, 6, seed);
  cfg.horizon = sim::hours(8);
  cfg.round_period = sim::seconds(30);
  cfg.grid.control_mode = mode;
  return cfg;
}

std::string run_counters(const fleet::FleetConfig& cfg, std::size_t threads,
                         std::string* signal_log = nullptr) {
  const fleet::FleetEngine engine(cfg);
  fleet::Executor executor(threads);
  Collector collector;
  const fleet::GridFleetResult result =
      engine.run_grid(executor, &collector);
  if (signal_log != nullptr) *signal_log = result.signal_log_csv;
  return counters_json(collector);
}

TEST(EngineTelemetry, GridCountersByteIdenticalAcrossWidths) {
  for (const auto mode :
       {fleet::ControlMode::kPolled, fleet::ControlMode::kEventDriven}) {
    const fleet::FleetConfig cfg = tiny_dr_heat_wave(mode);
    std::string log1, log4;
    const std::string one = run_counters(cfg, 1, &log1);
    const std::string four = run_counters(cfg, 4, &log4);
    EXPECT_EQ(one, four) << "counter drift across executor widths";
    EXPECT_EQ(log1, log4);
    EXPECT_FALSE(one.empty());
  }
}

TEST(EngineTelemetry, GridCountersMirrorResultExactly) {
  const fleet::FleetConfig cfg =
      tiny_dr_heat_wave(fleet::ControlMode::kEventDriven);
  const fleet::FleetEngine engine(cfg);
  fleet::Executor executor(2);
  Collector c;
  const fleet::GridFleetResult r = engine.run_grid(executor, &c);

  EXPECT_EQ(c.counter("premises"), cfg.premise_count);
  EXPECT_EQ(c.counter("feeders"), cfg.feeder_count);
  EXPECT_EQ(c.counter("control_barriers"), r.control_barriers);
  EXPECT_EQ(c.counter("controller_wakes"), r.controller_wakes);
  EXPECT_EQ(c.counter("signals_emitted"), r.signals.size());
  EXPECT_EQ(c.counter("shed_signals"), r.dr.shed_signals);
  EXPECT_EQ(c.counter("all_clear_signals"), r.dr.all_clear_signals);
  EXPECT_EQ(c.counter("tariff_signals"), r.dr.tariff_signals);
  EXPECT_EQ(c.counter("signals_delivered"), r.deliveries.size());
  EXPECT_EQ(c.counter("opted_in_premises"), r.opted_in_premises);
  EXPECT_EQ(c.counter("complying_premises"), r.complying_premises);
  EXPECT_EQ(c.counter("total_requests"), r.fleet.total_requests);
  EXPECT_EQ(c.counter("comfort_gap_violations"), r.comfort_gap_violations);
  // Event mode decomposes wakes into crossings + timers (+1 prime per
  // feeder, charged to the timer side).
  EXPECT_EQ(c.counter("wakes_crossing") + c.counter("wakes_timer"),
            r.controller_wakes);
  // A DR heat wave must actually shed, or this test pins nothing.
  EXPECT_GT(r.dr.shed_signals, 0u);
}

TEST(EngineTelemetry, OpenLoopCountersMirrorResult) {
  fleet::FleetConfig cfg =
      fleet::make_scenario(fleet::ScenarioKind::kScaleSweep, 8, 1);
  cfg.horizon = sim::hours(6);
  const fleet::FleetEngine engine(cfg);
  fleet::Executor executor(2);
  Collector c;
  const fleet::FleetResult r = engine.run(executor, &c);
  EXPECT_EQ(c.counter("premises"), cfg.premise_count);
  EXPECT_EQ(c.counter("coordinated_premises"), r.coordinated_premises);
  EXPECT_EQ(c.counter("total_requests"), r.total_requests);
  EXPECT_EQ(c.counter("premises_full"), cfg.premise_count);
  // All-full default policy: the tier split is degenerate.
  EXPECT_EQ(c.counter("premises_device"), 0u);
  EXPECT_EQ(c.counter("premises_stat"), 0u);
}

TEST(EngineTelemetry, InstrumentedRunLeavesOutputsUnchanged) {
  const fleet::FleetConfig cfg =
      tiny_dr_heat_wave(fleet::ControlMode::kPolled);
  const fleet::FleetEngine engine(cfg);
  fleet::Executor executor(2);
  const fleet::GridFleetResult plain = engine.run_grid(executor);
  Collector c;
  c.enable_tracing();  // the most invasive configuration
  const fleet::GridFleetResult instrumented = engine.run_grid(executor, &c);
  EXPECT_EQ(plain.signal_log_csv, instrumented.signal_log_csv);
  EXPECT_EQ(plain.control_barriers, instrumented.control_barriers);
  EXPECT_EQ(plain.fleet.feeder_load.values(),
            instrumented.fleet.feeder_load.values());
}

TEST(EngineTelemetry, ManifestIsValidVersionedJson) {
  const fleet::FleetConfig cfg =
      tiny_dr_heat_wave(fleet::ControlMode::kPolled);
  const fleet::FleetEngine engine(cfg);
  fleet::Executor executor(2);
  Collector c;
  c.set_meta("binary", "test_telemetry");
  c.set_meta_num("seed", 1);
  (void)engine.run_grid(executor, &c);

  std::ostringstream out;
  write_manifest(c, out);
  const std::string manifest = out.str();
  EXPECT_TRUE(json_is_valid(manifest)) << manifest;
  EXPECT_NE(manifest.find("\"telemetry_version\": 1"), std::string::npos);
  EXPECT_NE(manifest.find("\"counters\""), std::string::npos);
  EXPECT_NE(manifest.find("\"phases\""), std::string::npos);
  EXPECT_NE(manifest.find("\"nested_phases\""), std::string::npos);
  EXPECT_NE(manifest.find("\"executor\""), std::string::npos);
  EXPECT_NE(manifest.find("\"run_total\""), std::string::npos);
  // The counters section embeds verbatim.
  EXPECT_NE(manifest.find(counters_json(c)), std::string::npos);
}

TEST(EngineTelemetry, ExclusivePhasesPartitionTheRun) {
  const fleet::FleetConfig cfg =
      tiny_dr_heat_wave(fleet::ControlMode::kPolled);
  const fleet::FleetEngine engine(cfg);
  fleet::Executor executor(1);
  Collector c;
  (void)engine.run_grid(executor, &c);

  const std::uint64_t run_total = c.phase(Phase::kRunTotal).total_ns;
  ASSERT_GT(run_total, 0u);
  std::uint64_t exclusive = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    if (phase_is_exclusive(p)) exclusive += c.phase(p).total_ns;
  }
  // The exclusive slices must cover the run without exceeding it (5%
  // slack for clock granularity at the span edges; the uncovered
  // remainder is loop bookkeeping between spans).
  EXPECT_LE(exclusive, run_total + run_total / 20);
  EXPECT_GE(exclusive, run_total / 2)
      << "exclusive phases cover too little of the run";
}

TEST(EngineTelemetry, ExecutorActivityIsRecorded) {
  const fleet::FleetConfig cfg =
      tiny_dr_heat_wave(fleet::ControlMode::kPolled);
  const fleet::FleetEngine engine(cfg);
  fleet::Executor executor(2);
  Collector c;
  (void)engine.run_grid(executor, &c);
  const ExecutorActivity activity = c.executor_activity();
  EXPECT_GT(activity.parallel_for_calls, 0u);
  EXPECT_GT(activity.tasks, 0u);
  EXPECT_GT(c.phase(Phase::kExecutorDispatch).calls, 0u);
}

TEST(EngineTelemetry, ChromeTraceIsValidAndTimeOrdered) {
  const fleet::FleetConfig cfg =
      tiny_dr_heat_wave(fleet::ControlMode::kEventDriven);
  const fleet::FleetEngine engine(cfg);
  fleet::Executor executor(2);
  Collector c;
  c.enable_tracing();
  (void)engine.run_grid(executor, &c);

  std::ostringstream out;
  write_chrome_trace(c, out);
  const std::string trace = out.str();
  EXPECT_TRUE(json_is_valid(trace));
  // Expected lanes: wall-clock phase spans ("X" on pid 0) + sim-time
  // wake instants ("i" on pid 1; event mode records controller wakes).
  EXPECT_NE(trace.find("\"name\": \"boot\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"barrier_advance\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"wake\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\": \"phase\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\": \"sim\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"M\""), std::string::npos);

  // The exporter emits all data events globally sorted by timestamp
  // (metadata events carry no "ts" key, so this scan skips them).
  double last_ts = -1.0;
  std::size_t events = 0;
  std::size_t pos = 0;
  while ((pos = trace.find("\"ts\": ", pos)) != std::string::npos) {
    const double ts = std::stod(trace.substr(pos + 6));
    EXPECT_GE(ts, last_ts) << "trace events not time-ordered";
    last_ts = ts;
    ++events;
    pos += 6;
  }
  EXPECT_GT(events, 2u) << "trace has no data events";
}

}  // namespace
}  // namespace han::telemetry
