// telemetry::take_value_flag — the shared argv peeler behind
// --json/--telemetry/--trace. The old ad-hoc loop in bench_util.hpp
// left a dangling `--json` behind for benchmark::Initialize to choke
// on; these tests pin the repaired contract for both spellings.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "telemetry/flags.hpp"

namespace han::telemetry {
namespace {

/// argv builder: owns the strings, hands out mutable char* like main().
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
    argc_ = static_cast<int>(ptrs_.size());
  }
  int& argc() { return argc_; }
  char** argv() { return ptrs_.data(); }
  /// Remaining args after peeling (skipping argv[0]).
  std::vector<std::string> rest() const {
    std::vector<std::string> out;
    for (int i = 1; i < argc_; ++i) out.emplace_back(ptrs_[i]);
    return out;
  }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
  int argc_ = 0;
};

TEST(Flags, SeparateValueForm) {
  Argv a({"prog", "--json", "out.json", "pos"});
  const FlagParse p = take_value_flag(a.argc(), a.argv(), "--json");
  EXPECT_TRUE(p.present);
  EXPECT_FALSE(p.error);
  EXPECT_EQ(p.value, "out.json");
  EXPECT_EQ(a.rest(), std::vector<std::string>({"pos"}));
}

TEST(Flags, EqualsValueForm) {
  Argv a({"prog", "pos1", "--json=out.json", "pos2"});
  const FlagParse p = take_value_flag(a.argc(), a.argv(), "--json");
  EXPECT_TRUE(p.present);
  EXPECT_FALSE(p.error);
  EXPECT_EQ(p.value, "out.json");
  EXPECT_EQ(a.rest(), std::vector<std::string>({"pos1", "pos2"}));
}

TEST(Flags, AbsentFlag) {
  Argv a({"prog", "pos1", "pos2"});
  const FlagParse p = take_value_flag(a.argc(), a.argv(), "--json");
  EXPECT_FALSE(p.present);
  EXPECT_FALSE(p.error);
  EXPECT_EQ(p.value, "");
  EXPECT_EQ(a.rest(), std::vector<std::string>({"pos1", "pos2"}));
}

TEST(Flags, DanglingFlagIsErrorAndRemoved) {
  // The regression this helper exists for: a trailing `--json` with no
  // value must be reported as an error AND removed from argv (the old
  // bench_util loop left it in place for benchmark::Initialize).
  Argv a({"prog", "pos", "--json"});
  const FlagParse p = take_value_flag(a.argc(), a.argv(), "--json");
  EXPECT_TRUE(p.present);
  EXPECT_TRUE(p.error);
  EXPECT_EQ(a.rest(), std::vector<std::string>({"pos"}));
}

TEST(Flags, EmptyEqualsValueIsError) {
  Argv a({"prog", "--json="});
  const FlagParse p = take_value_flag(a.argc(), a.argv(), "--json");
  EXPECT_TRUE(p.present);
  EXPECT_TRUE(p.error);
  EXPECT_TRUE(a.rest().empty());
}

TEST(Flags, LastOccurrenceWins) {
  Argv a({"prog", "--json", "first.json", "--json=second.json"});
  const FlagParse p = take_value_flag(a.argc(), a.argv(), "--json");
  EXPECT_TRUE(p.present);
  EXPECT_FALSE(p.error);
  EXPECT_EQ(p.value, "second.json");
  EXPECT_TRUE(a.rest().empty());
}

TEST(Flags, DistinctFlagsPeelIndependently) {
  Argv a({"prog", "--telemetry=m.json", "--trace", "t.json", "pos"});
  const FlagParse tel = take_value_flag(a.argc(), a.argv(), "--telemetry");
  const FlagParse trace = take_value_flag(a.argc(), a.argv(), "--trace");
  EXPECT_EQ(tel.value, "m.json");
  EXPECT_EQ(trace.value, "t.json");
  EXPECT_EQ(a.rest(), std::vector<std::string>({"pos"}));
}

TEST(Flags, PrefixDoesNotMatchOtherFlags) {
  // `--jsonx` must not be consumed by `--json` (strncmp pitfall).
  Argv a({"prog", "--jsonx=keep", "pos"});
  const FlagParse p = take_value_flag(a.argc(), a.argv(), "--json");
  EXPECT_FALSE(p.present);
  EXPECT_EQ(a.rest(), std::vector<std::string>({"--jsonx=keep", "pos"}));
}

}  // namespace
}  // namespace han::telemetry
