// MiniCast engine tests: all-to-all dissemination quality, periodicity,
// aggregation policy, fault tolerance, and drift resilience.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"
#include "st/minicast.hpp"

namespace han {
namespace {

using net::ChannelParams;
using net::NodeId;
using net::Radio;
using net::Topology;
using st::MiniCastEngine;
using st::MiniCastParams;
using st::Record;

class MiniCastRig {
 public:
  explicit MiniCastRig(Topology topo, MiniCastParams params = {},
                       std::uint64_t seed = 1,
                       ChannelParams cp = ChannelParams{})
      : topo_(std::move(topo)),
        rng_(seed),
        channel_(topo_, cp, rng_),
        medium_(sim_, channel_, rng_.stream("medium")) {
    std::vector<Radio*> raw;
    for (std::size_t i = 0; i < topo_.size(); ++i) {
      radios_.push_back(
          std::make_unique<Radio>(sim_, medium_, static_cast<NodeId>(i)));
      raw.push_back(radios_.back().get());
    }
    engine_ = std::make_unique<MiniCastEngine>(sim_, raw, params,
                                               rng_.stream("minicast"));
  }

  void run_rounds(std::uint64_t rounds,
                  sim::Duration period = sim::seconds(2)) {
    const sim::TimePoint t0 = sim_.now() + sim::milliseconds(10);
    engine_->start(t0);
    // Stop after the last observed round's end_round but before the next
    // round begins (active duration < period is validated by start()).
    sim_.run_until(t0 + period * static_cast<sim::Ticks>(rounds - 1) +
                   engine_->round_active_duration() + sim::milliseconds(100));
    engine_->stop();
  }

  sim::Simulator sim_;
  Topology topo_;
  sim::Rng rng_;
  net::Channel channel_;
  net::Medium medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::unique_ptr<MiniCastEngine> engine_;
};

ChannelParams clean_channel() {
  ChannelParams cp;
  cp.shadowing_sigma_db = 0.0;
  return cp;
}

TEST(MiniCast, RoundFitsInDefaultPeriod) {
  MiniCastRig rig(Topology::flocklab26());
  EXPECT_LE(rig.engine_->round_active_duration().us(),
            sim::seconds(2).us());
}

TEST(MiniCast, RejectsImpossiblePeriod) {
  MiniCastParams p;
  p.round_period = sim::milliseconds(100);  // 26 flood slots cannot fit
  MiniCastRig rig(Topology::flocklab26(), p);
  EXPECT_THROW(rig.engine_->start(sim::TimePoint::epoch()),
               std::invalid_argument);
}

TEST(MiniCast, FullCoverageOnCleanFlocklab26) {
  MiniCastRig rig(Topology::flocklab26(), MiniCastParams{}, 11,
                  clean_channel());
  rig.run_rounds(3);
  ASSERT_GE(rig.engine_->stats().rounds, 3u);
  EXPECT_GE(rig.engine_->stats().mean_coverage(), 0.99);
}

TEST(MiniCast, EveryNodeLearnsEveryRecord) {
  MiniCastRig rig(Topology::flocklab26(), MiniCastParams{}, 5,
                  clean_channel());
  rig.engine_->set_refresh_handler(
      [](NodeId id, std::uint64_t) {
        std::array<std::uint8_t, st::kRecordBytes> d{};
        d[0] = static_cast<std::uint8_t>(id * 3 + 1);
        return d;
      });
  rig.run_rounds(2);
  for (NodeId holder = 0; holder < 26; ++holder) {
    const st::RecordStore& view = rig.engine_->view_of(holder);
    for (NodeId origin = 0; origin < 26; ++origin) {
      const Record* rec = view.find(origin);
      ASSERT_NE(rec, nullptr) << holder << " missing " << origin;
      EXPECT_EQ(rec->data[0], static_cast<std::uint8_t>(origin * 3 + 1));
    }
  }
}

TEST(MiniCast, PeriodicRoundsAdvance) {
  MiniCastRig rig(Topology::line(4, 10.0), MiniCastParams{}, 2,
                  clean_channel());
  rig.run_rounds(5);
  EXPECT_EQ(rig.engine_->stats().rounds, 5u);
  ASSERT_EQ(rig.engine_->round_history().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.engine_->round_history()[i].round, i);
  }
}

TEST(MiniCast, RoundCompleteFiresPerAliveNode) {
  MiniCastRig rig(Topology::line(5, 10.0), MiniCastParams{}, 2,
                  clean_channel());
  std::vector<int> calls(5, 0);
  rig.engine_->set_round_complete_handler(
      [&](NodeId id, std::uint64_t, const st::RecordStore&) {
        calls[id]++;
      });
  rig.run_rounds(3);
  for (int c : calls) EXPECT_EQ(c, 3);
}

TEST(MiniCast, FreshRecordsWinOverStale) {
  // Versions rise every round; after two rounds every view must hold
  // version >= round for every origin (no stale overwrite).
  MiniCastRig rig(Topology::flocklab26(), MiniCastParams{}, 9,
                  clean_channel());
  rig.run_rounds(4);
  for (NodeId holder = 0; holder < 26; ++holder) {
    const st::RecordStore& view = rig.engine_->view_of(holder);
    for (NodeId origin = 0; origin < 26; ++origin) {
      const Record* rec = view.find(origin);
      ASSERT_NE(rec, nullptr);
      EXPECT_GE(rec->version, 3u);
    }
  }
}

TEST(MiniCast, SurvivesSingleNodeFailure) {
  MiniCastRig rig(Topology::flocklab26(), MiniCastParams{}, 4,
                  clean_channel());
  rig.engine_->set_node_failed(13, true);
  rig.run_rounds(3);
  // Coverage among alive nodes stays high: no single point of failure.
  EXPECT_GE(rig.engine_->stats().mean_coverage(), 0.95);
}

TEST(MiniCast, SurvivesRotatingFailures) {
  MiniCastRig rig(Topology::flocklab26(), MiniCastParams{}, 4,
                  clean_channel());
  rig.engine_->set_node_failed(3, true);
  rig.run_rounds(1);
  rig.engine_->set_node_failed(3, false);
  rig.engine_->set_node_failed(20, true);
  rig.engine_->start(rig.sim_.now() + sim::milliseconds(10));
  rig.sim_.run_until(rig.sim_.now() + sim::seconds(4));
  EXPECT_GE(rig.engine_->stats().mean_coverage(), 0.90);
}

TEST(MiniCast, DriftedClocksStillConverge) {
  MiniCastParams p;
  p.max_drift_ppm = 80.0;  // worse than typical crystals
  MiniCastRig rig(Topology::flocklab26(), p, 21, clean_channel());
  rig.run_rounds(3);
  EXPECT_GE(rig.engine_->stats().mean_coverage(), 0.98);
}

TEST(MiniCast, ModerateForcedLossFullyAbsorbed) {
  // 30 % independent per-reception loss is what n_tx retransmissions and
  // gossip aggregation are designed to hide: coverage stays essentially
  // perfect — this robustness is the reason the paper picks ST.
  MiniCastRig rig(Topology::flocklab26(), MiniCastParams{}, 17,
                  clean_channel());
  rig.medium_.set_forced_drop_rate(0.3);
  rig.run_rounds(3);
  EXPECT_GE(rig.engine_->stats().mean_coverage(), 0.95);
}

TEST(MiniCast, ExtremeForcedLossDegradesGracefully) {
  MiniCastRig harsh(Topology::flocklab26(), MiniCastParams{}, 17,
                    clean_channel());
  harsh.medium_.set_forced_drop_rate(0.95);
  harsh.run_rounds(3);
  const double harsh_cov = harsh.engine_->stats().mean_coverage();
  EXPECT_GT(harsh_cov, 0.01) << "network must not collapse outright";
  EXPECT_LT(harsh_cov, 0.95) << "95% loss must be visible in coverage";

  MiniCastRig mild(Topology::flocklab26(), MiniCastParams{}, 17,
                   clean_channel());
  mild.medium_.set_forced_drop_rate(0.5);
  mild.run_rounds(3);
  EXPECT_GT(mild.engine_->stats().mean_coverage(), harsh_cov)
      << "coverage must be monotone in loss rate";
}

TEST(MiniCast, ChunkSizingConstants) {
  EXPECT_LE(MiniCastEngine::chunk_psdu_bytes(), net::kMaxFrameBytes + 11u);
  EXPECT_GE(st::records_per_frame(), 5u);
}

TEST(MiniCast, RadiosSleepBetweenRounds) {
  MiniCastParams p;
  p.sleep_between_rounds = true;
  MiniCastRig rig(Topology::line(3, 10.0), p, 2, clean_channel());
  rig.run_rounds(2);
  // With 2 s periods and ~170 ms of activity, radio duty cycle must be
  // well below 50 %.
  for (auto& r : rig.radios_) {
    if (r->state() != net::Radio::State::kOff) r->turn_off();
    EXPECT_LT(r->energy().duty_cycle(), 0.5);
  }
}

}  // namespace
}  // namespace han
