// Glossy flood engine tests: dissemination over multi-hop topologies,
// slot/hop accounting, CI combining, and abort semantics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"
#include "st/flood.hpp"

namespace han {
namespace {

using net::Channel;
using net::ChannelParams;
using net::Frame;
using net::Medium;
using net::NodeId;
using net::Radio;
using net::Topology;
using st::FloodParams;
using st::FloodResult;
using st::GlossyNode;

/// Test fixture wiring a full PHY + flood stack over a given topology.
class FloodRig {
 public:
  FloodRig(Topology topo, ChannelParams cp, FloodParams fp,
           std::uint64_t seed = 1)
      : topo_(std::move(topo)),
        rng_(seed),
        channel_(topo_, cp, rng_),
        medium_(sim_, channel_, rng_.stream("medium")) {
    for (std::size_t i = 0; i < topo_.size(); ++i) {
      radios_.push_back(
          std::make_unique<Radio>(sim_, medium_, static_cast<NodeId>(i)));
      glossy_.push_back(
          std::make_unique<GlossyNode>(sim_, *radios_.back(), fp));
    }
    results_.resize(topo_.size());
  }

  /// Runs one flood from `initiator` with the given inner payload.
  void run_flood(NodeId initiator, std::vector<std::uint8_t> inner) {
    const sim::TimePoint slot0 = sim_.now() + sim::milliseconds(1);
    Frame f = GlossyNode::make_flood_frame(net::FrameKind::kGlossyFlood,
                                           initiator, inner);
    const std::size_t psdu = f.psdu_bytes();
    for (std::size_t i = 0; i < glossy_.size(); ++i) {
      auto done = [this, i](const FloodResult& r) { results_[i] = r; };
      if (i == initiator) {
        glossy_[i]->arm_initiator(slot0, std::move(f), done);
      } else {
        glossy_[i]->arm_receiver(slot0, psdu, done);
      }
    }
    sim_.run();
  }

  [[nodiscard]] std::size_t received_count() const {
    std::size_t n = 0;
    for (const auto& r : results_) n += r.received ? 1 : 0;
    return n;
  }

  sim::Simulator sim_;
  Topology topo_;
  sim::Rng rng_;
  Channel channel_;
  Medium medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<GlossyNode>> glossy_;
  std::vector<FloodResult> results_;
};

ChannelParams clean_channel() {
  ChannelParams cp;
  cp.shadowing_sigma_db = 0.0;  // deterministic links for structural tests
  return cp;
}

TEST(Flood, SingleHopPairDelivers) {
  FloodRig rig(Topology::line(2, 5.0), clean_channel(), FloodParams{});
  rig.run_flood(0, {0xAB, 0xCD});
  ASSERT_TRUE(rig.results_[1].received);
  EXPECT_EQ(rig.results_[1].first_rx_slot, 0);
  EXPECT_EQ(GlossyNode::inner_payload(rig.results_[1].payload),
            (std::vector<std::uint8_t>{0xAB, 0xCD}));
}

TEST(Flood, InitiatorReportsItself) {
  FloodRig rig(Topology::line(2, 5.0), clean_channel(), FloodParams{});
  rig.run_flood(0, {1});
  EXPECT_TRUE(rig.results_[0].initiator);
  EXPECT_TRUE(rig.results_[0].received);
  EXPECT_EQ(rig.results_[0].tx_count, FloodParams{}.n_tx);
}

TEST(Flood, MultiHopLineReachesFarEnd) {
  // 8 nodes, 12 m spacing: ~84 m end to end, several hops with the
  // default channel (usable range is roughly 25-35 m).
  FloodParams fp;
  fp.max_slots = 16;
  FloodRig rig(Topology::line(8, 12.0), clean_channel(), fp);
  rig.run_flood(0, {42});
  EXPECT_EQ(rig.received_count(), 8u);
  // Hop distance (first_rx_slot) must be non-decreasing-ish along the
  // line: the far node cannot hear slot 0 directly.
  EXPECT_GT(rig.results_[7].first_rx_slot, 0);
}

TEST(Flood, RelayCounterGivesHopDistance) {
  FloodParams fp;
  fp.max_slots = 16;
  FloodRig rig(Topology::line(5, 14.0), clean_channel(), fp);
  rig.run_flood(0, {7});
  for (std::size_t i = 1; i < 5; ++i) {
    ASSERT_TRUE(rig.results_[i].received) << "node " << i;
    EXPECT_GE(rig.results_[i].first_rx_slot, 0);
    EXPECT_LT(rig.results_[i].first_rx_slot, fp.max_slots);
  }
  // Monotone non-decreasing hop counts along a line.
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_GE(rig.results_[i].first_rx_slot, rig.results_[i - 1].first_rx_slot);
  }
}

TEST(Flood, ConstructiveInterferenceCombinesRelays) {
  // A 3x3 grid ensures several nodes relay in the same slot; the medium
  // must register CI-combined deliveries rather than collisions.
  FloodParams fp;
  fp.max_slots = 12;
  FloodRig rig(Topology::grid(3, 3, 10.0), clean_channel(), fp);
  rig.run_flood(0, {9});
  EXPECT_EQ(rig.received_count(), 9u);
  EXPECT_GT(rig.medium_.stats().ci_combined, 0u);
}

TEST(Flood, Flocklab26FullCoverage) {
  FloodParams fp;
  fp.max_slots = 12;
  FloodRig rig(Topology::flocklab26(), clean_channel(), fp, 7);
  rig.run_flood(0, {1, 2, 3});
  EXPECT_EQ(rig.received_count(), 26u);
}

TEST(Flood, Flocklab26IsMultiHop) {
  FloodParams fp;
  fp.max_slots = 12;
  FloodRig rig(Topology::flocklab26(), clean_channel(), fp, 7);
  rig.run_flood(0, {1});
  int max_slot = 0;
  for (const auto& r : rig.results_) {
    max_slot = std::max(max_slot, r.first_rx_slot);
  }
  EXPECT_GE(max_slot, 2) << "expected at least 3 hops on the office floor";
}

TEST(Flood, EachNodeTransmitsAtMostNTx) {
  FloodParams fp;
  fp.n_tx = 2;
  fp.max_slots = 12;
  FloodRig rig(Topology::grid(4, 2, 10.0), clean_channel(), fp);
  rig.run_flood(0, {5});
  for (const auto& r : rig.results_) {
    EXPECT_LE(r.tx_count, fp.n_tx);
  }
}

TEST(Flood, AbortSuppressesCompletion) {
  FloodRig rig(Topology::line(2, 5.0), clean_channel(), FloodParams{});
  bool fired = false;
  rig.glossy_[1]->arm_receiver(rig.sim_.now() + sim::milliseconds(1), 30,
                               [&](const FloodResult&) { fired = true; });
  rig.glossy_[1]->abort();
  rig.sim_.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(rig.glossy_[1]->armed());
}

TEST(Flood, DisconnectedNodeDoesNotReceive) {
  // Two nodes 500 m apart cannot communicate.
  ChannelParams cp = clean_channel();
  FloodRig rig(Topology::line(2, 500.0), cp, FloodParams{});
  rig.run_flood(0, {1});
  EXPECT_FALSE(rig.results_[1].received);
  EXPECT_EQ(rig.results_[1].first_rx_slot, -1);
}

TEST(Flood, LateReceiverCatchesLaterSlot) {
  // Node 1 arms 1.5 slots late (clock drift) but still catches a later
  // relay because the initiator transmits n_tx times.
  FloodParams fp;
  fp.n_tx = 3;
  fp.max_slots = 12;
  FloodRig rig(Topology::line(2, 5.0), clean_channel(), fp);
  const sim::TimePoint slot0 = rig.sim_.now() + sim::milliseconds(1);
  Frame f = GlossyNode::make_flood_frame(net::FrameKind::kGlossyFlood, 0,
                                         {0x55});
  const std::size_t psdu = f.psdu_bytes();
  const sim::Duration slot_len = fp.slot_length(psdu);
  FloodResult r0, r1;
  rig.glossy_[0]->arm_initiator(slot0, std::move(f),
                                [&](const FloodResult& r) { r0 = r; });
  // A drifted node arms mid-way through slot 1 — model by scheduling the
  // arm itself late (arming starts the radio immediately).
  const sim::TimePoint late = slot0 + slot_len + slot_len / 2;
  rig.sim_.schedule_at(late, [&, late]() {
    rig.glossy_[1]->arm_receiver(late, psdu,
                                 [&](const FloodResult& r) { r1 = r; });
  });
  rig.sim_.run();
  ASSERT_TRUE(r1.received);
  EXPECT_GE(r1.first_rx_slot, 2);
}

TEST(Flood, PayloadIdenticalAcrossAllReceivers) {
  FloodParams fp;
  fp.max_slots = 12;
  FloodRig rig(Topology::flocklab26(), clean_channel(), fp, 3);
  std::vector<std::uint8_t> inner;
  for (int i = 0; i < 40; ++i) inner.push_back(static_cast<std::uint8_t>(i));
  rig.run_flood(5, inner);
  for (std::size_t i = 0; i < rig.results_.size(); ++i) {
    ASSERT_TRUE(rig.results_[i].received) << "node " << i;
    EXPECT_EQ(GlossyNode::inner_payload(rig.results_[i].payload), inner);
    EXPECT_EQ(rig.results_[i].payload.source, 5);
  }
}

TEST(Flood, RadioEnergyAccountedDuringFlood) {
  FloodRig rig(Topology::line(2, 5.0), clean_channel(), FloodParams{});
  rig.run_flood(0, {1});
  // Initiator transmitted n_tx frames; meter must show TX time.
  rig.radios_[0]->turn_off();  // flush state accounting
  rig.radios_[1]->turn_off();
  EXPECT_GT(rig.radios_[0]->energy().time_in(2).us(), 0);
  EXPECT_GT(rig.radios_[1]->energy().time_in(1).us(), 0);
}

}  // namespace
}  // namespace han
