// CollectionEngine (many-to-one + command dissemination): sink coverage,
// command delivery, single-point-of-failure behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "net/channel.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"
#include "st/collection.hpp"

namespace han::st {
namespace {

using net::NodeId;
using net::Radio;
using net::Topology;

struct CollectionRig {
  explicit CollectionRig(Topology topo, CollectionParams params = {},
                         std::uint64_t seed = 1)
      : topo_(std::move(topo)),
        rng_(seed),
        channel_(topo_, clean(), rng_),
        medium_(sim_, channel_, rng_.stream("medium")) {
    std::vector<Radio*> raw;
    for (std::size_t i = 0; i < topo_.size(); ++i) {
      radios_.push_back(
          std::make_unique<Radio>(sim_, medium_, static_cast<NodeId>(i)));
      raw.push_back(radios_.back().get());
    }
    params.round_period = sim::seconds(4);  // N+1 slots need more room
    engine_ = std::make_unique<CollectionEngine>(sim_, raw, params,
                                                 rng_.stream("collection"));
  }

  static net::ChannelParams clean() {
    net::ChannelParams p;
    p.shadowing_sigma_db = 0.0;
    return p;
  }

  void run_rounds(std::uint64_t rounds) {
    const sim::TimePoint t0 = sim_.now() + sim::milliseconds(10);
    engine_->start(t0);
    sim_.run_until(t0 + sim::seconds(4) * static_cast<sim::Ticks>(rounds - 1) +
                   engine_->round_active_duration() + sim::milliseconds(100));
    engine_->stop();
  }

  sim::Simulator sim_;
  Topology topo_;
  sim::Rng rng_;
  net::Channel channel_;
  net::Medium medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::unique_ptr<CollectionEngine> engine_;
};

TEST(Collection, SinkCollectsAllRecords) {
  CollectionRig rig(Topology::flocklab26());
  rig.engine_->set_refresh_handler([](NodeId id, std::uint64_t) {
    std::array<std::uint8_t, kRecordBytes> d{};
    d[0] = static_cast<std::uint8_t>(id + 1);
    return d;
  });
  rig.run_rounds(2);
  EXPECT_GE(rig.engine_->stats().mean_uplink(), 0.95);
  for (NodeId i = 0; i < 26; ++i) {
    const Record* rec = rig.engine_->sink_view().find(i);
    ASSERT_NE(rec, nullptr) << "sink missing node " << i;
    EXPECT_EQ(rec->data[0], static_cast<std::uint8_t>(i + 1));
  }
}

TEST(Collection, CommandReachesAllNodes) {
  CollectionRig rig(Topology::flocklab26());
  std::vector<int> got(26, 0);
  rig.engine_->set_build_command_handler(
      [](std::uint64_t round, const RecordStore&) {
        return std::vector<std::uint8_t>{static_cast<std::uint8_t>(round + 1),
                                         0x42};
      });
  rig.engine_->set_command_handler(
      [&](NodeId id, std::uint64_t, const std::vector<std::uint8_t>& cmd) {
        ASSERT_GE(cmd.size(), 2u);
        EXPECT_EQ(cmd[1], 0x42);
        ++got[id];
      });
  rig.run_rounds(2);
  EXPECT_GE(rig.engine_->stats().mean_downlink(), 0.95);
  int reached = 0;
  for (NodeId i = 1; i < 26; ++i) reached += got[i] > 0;
  EXPECT_GE(reached, 24);
}

TEST(Collection, SinkFailureStallsSystem) {
  CollectionRig rig(Topology::flocklab26());
  int commands = 0;
  rig.engine_->set_build_command_handler(
      [](std::uint64_t, const RecordStore&) {
        return std::vector<std::uint8_t>{1};
      });
  rig.engine_->set_command_handler(
      [&](NodeId, std::uint64_t, const std::vector<std::uint8_t>&) {
        ++commands;
      });
  rig.engine_->set_node_failed(0, true);  // the sink
  rig.run_rounds(2);
  // The single point of failure: no commands at all.
  EXPECT_EQ(commands, 0);
  EXPECT_LT(rig.engine_->stats().mean_downlink(), 0.05);
}

TEST(Collection, NonSinkFailureTolerated) {
  CollectionRig rig(Topology::flocklab26());
  rig.engine_->set_build_command_handler(
      [](std::uint64_t, const RecordStore&) {
        return std::vector<std::uint8_t>{1};
      });
  rig.engine_->set_node_failed(13, true);
  rig.run_rounds(2);
  EXPECT_GE(rig.engine_->stats().mean_uplink(), 0.9);
  EXPECT_GE(rig.engine_->stats().mean_downlink(), 0.9);
}

TEST(Collection, RejectsBadConfig) {
  sim::Simulator sim;
  EXPECT_THROW(
      CollectionEngine(sim, {}, CollectionParams{}, sim::Rng(1)),
      std::invalid_argument);
}

TEST(Collection, OversizedCommandThrows) {
  CollectionRig rig(Topology::line(3, 10.0));
  rig.engine_->set_build_command_handler(
      [](std::uint64_t, const RecordStore&) {
        return std::vector<std::uint8_t>(200, 1);  // > command_bytes
      });
  rig.engine_->start(rig.sim_.now() + sim::milliseconds(10));
  EXPECT_THROW(rig.sim_.run_until(rig.sim_.now() + sim::seconds(4)),
               std::length_error);
}

}  // namespace
}  // namespace han::st
