// MiniCast dissemination quality across deployment shapes and seeds:
// the CP must deliver all-to-all coverage on any reasonable home/office
// layout, not just the flocklab26 preset.
#include <gtest/gtest.h>

#include <memory>

#include "net/channel.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"
#include "st/minicast.hpp"

namespace han::st {
namespace {

using net::NodeId;
using net::Radio;
using net::Topology;

enum class Shape { kLine, kGrid, kRing, kRandom, kFlockLab };

struct Case {
  Shape shape;
  std::uint64_t seed;
};

Topology make(Shape shape, sim::Rng& rng) {
  switch (shape) {
    case Shape::kLine:
      return Topology::line(10, 9.0);  // 81 m: several hops
    case Shape::kGrid:
      return Topology::grid(4, 4, 9.0);
    case Shape::kRing:
      return Topology::ring(12, 18.0);
    case Shape::kRandom: {
      sim::Rng topo = rng.stream("topo");
      return Topology::random_uniform(16, 45.0, 30.0, topo);
    }
    case Shape::kFlockLab:
      return Topology::flocklab26();
  }
  return Topology::line(2, 5.0);
}

class MiniCastTopoSweep : public ::testing::TestWithParam<Case> {};

TEST_P(MiniCastTopoSweep, CoverageHighOnConnectedDeployments) {
  const Case c = GetParam();
  sim::Rng rng(c.seed);
  const Topology topo = make(c.shape, rng);

  net::ChannelParams cp;
  cp.shadowing_sigma_db = 2.0;  // mild, keeps the graph connected
  net::Channel channel(topo, cp, rng);
  // Only meaningful when the drawn channel is connected; random layouts
  // with harsh shadowing may legitimately partition.
  if (!Topology::is_connected(channel.connectivity(0.5))) {
    GTEST_SKIP() << "disconnected draw";
  }

  sim::Simulator sim;
  net::Medium medium(sim, channel, rng.stream("medium"));
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<Radio*> raw;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    radios.push_back(
        std::make_unique<Radio>(sim, medium, static_cast<NodeId>(i)));
    raw.push_back(radios.back().get());
  }
  MiniCastEngine engine(sim, raw, MiniCastParams{}, rng.stream("mc"));
  engine.start(sim.now() + sim::milliseconds(10));
  sim.run_until(sim.now() + sim::seconds(6));  // 3 rounds
  engine.stop();

  EXPECT_GE(engine.stats().rounds, 3u);
  EXPECT_GE(engine.stats().mean_coverage(), 0.97)
      << "shape=" << static_cast<int>(c.shape) << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MiniCastTopoSweep,
    ::testing::Values(Case{Shape::kLine, 1}, Case{Shape::kLine, 2},
                      Case{Shape::kGrid, 1}, Case{Shape::kGrid, 2},
                      Case{Shape::kRing, 1}, Case{Shape::kRing, 2},
                      Case{Shape::kRandom, 1}, Case{Shape::kRandom, 2},
                      Case{Shape::kRandom, 3}, Case{Shape::kFlockLab, 1},
                      Case{Shape::kFlockLab, 2}, Case{Shape::kFlockLab, 3}));

}  // namespace
}  // namespace han::st
