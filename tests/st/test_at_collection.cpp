// AT (CSMA tree) collection engine: uplink/downlink coverage, latency,
// and the congestion bottleneck the paper's §I describes.
#include <gtest/gtest.h>

#include <memory>

#include "net/channel.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"
#include "st/at_collection.hpp"

namespace han::st {
namespace {

using net::NodeId;
using net::Radio;
using net::Topology;

struct AtRig {
  explicit AtRig(Topology topo, AtCollectionParams params = {},
                 std::uint64_t seed = 1)
      : topo_(std::move(topo)),
        rng_(seed),
        channel_(topo_, clean(), rng_),
        medium_(sim_, channel_, rng_.stream("medium")) {
    std::vector<Radio*> raw;
    for (std::size_t i = 0; i < topo_.size(); ++i) {
      radios_.push_back(
          std::make_unique<Radio>(sim_, medium_, static_cast<NodeId>(i)));
      raw.push_back(radios_.back().get());
    }
    engine_ = std::make_unique<AtCollectionEngine>(
        sim_, raw, channel_, params, rng_.stream("at"));
  }

  static net::ChannelParams clean() {
    net::ChannelParams p;
    p.shadowing_sigma_db = 0.0;
    return p;
  }

  void run_rounds(std::uint64_t rounds,
                  sim::Duration period = sim::seconds(2)) {
    engine_->start(sim_.now() + sim::milliseconds(10));
    sim_.run_until(sim_.now() + period * static_cast<sim::Ticks>(rounds) +
                   sim::milliseconds(20));
    engine_->stop();
  }

  sim::Simulator sim_;
  Topology topo_;
  sim::Rng rng_;
  net::Channel channel_;
  net::Medium medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::unique_ptr<AtCollectionEngine> engine_;
};

TEST(AtCollection, SmallNetworkCollectsEverything) {
  AtRig rig(Topology::line(4, 10.0));
  rig.engine_->set_refresh_handler([](NodeId id, std::uint64_t) {
    std::array<std::uint8_t, kRecordBytes> d{};
    d[0] = static_cast<std::uint8_t>(id + 10);
    return d;
  });
  rig.run_rounds(3);
  EXPECT_GE(rig.engine_->stats().mean_uplink(), 0.99);
  for (NodeId i = 1; i < 4; ++i) {
    const Record* rec = rig.engine_->sink_view().find(i);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->data[0], static_cast<std::uint8_t>(i + 10));
  }
}

TEST(AtCollection, CommandReachesLeaves) {
  AtRig rig(Topology::line(4, 10.0));
  std::vector<int> got(4, 0);
  rig.engine_->set_build_command_handler(
      [](std::uint64_t, const RecordStore&) {
        return std::vector<std::uint8_t>{0x77};
      });
  rig.engine_->set_command_handler(
      [&](NodeId id, std::uint64_t, const std::vector<std::uint8_t>& cmd) {
        EXPECT_EQ(cmd[0], 0x77);
        ++got[id];
      });
  rig.run_rounds(3);
  // AT delivery is inherently best-effort: one straggler crossing the
  // round boundary is normal (ST delivers 1.00 — see test_collection).
  EXPECT_GE(rig.engine_->stats().mean_downlink(), 0.85);
  for (NodeId i = 1; i < 4; ++i) EXPECT_GE(got[i], 2) << "node " << i;
}

TEST(AtCollection, Flocklab26MostlyCollects) {
  // 26 nodes at a 2 s period: the funnel is loaded but workable.
  AtRig rig(Topology::flocklab26());
  rig.run_rounds(4);
  EXPECT_GE(rig.engine_->stats().mean_uplink(), 0.8);
}

TEST(AtCollection, UplinkLatencyGrowsWithDepth) {
  AtRig shallow(Topology::line(3, 10.0));
  shallow.run_rounds(3);
  AtRig deep(Topology::line(8, 10.0));
  deep.run_rounds(3);
  EXPECT_GT(deep.engine_->stats().mean_uplink_latency().us(),
            shallow.engine_->stats().mean_uplink_latency().us());
}

TEST(AtCollection, FastRoundsCongestTheFunnel) {
  // Push the update period below what the CSMA funnel can carry for 26
  // nodes: coverage must degrade vs the comfortable period — the
  // bottleneck dynamic of the paper's §I.
  AtCollectionParams fast;
  fast.round_period = sim::milliseconds(250);
  AtRig rig_fast(Topology::flocklab26(), fast);
  rig_fast.run_rounds(16, sim::milliseconds(250));

  AtCollectionParams slow;
  slow.round_period = sim::seconds(4);
  AtRig rig_slow(Topology::flocklab26(), slow);
  rig_slow.run_rounds(2, sim::seconds(4));

  EXPECT_LT(rig_fast.engine_->stats().mean_uplink(),
            rig_slow.engine_->stats().mean_uplink());
  // And it burns more frames per delivered record (retries + forwarding).
  EXPECT_GT(rig_fast.engine_->stats().mac_drops +
                rig_fast.engine_->stats().mac_tx_frames,
            0u);
}

TEST(AtCollection, RoutingTreeExposed) {
  AtRig rig(Topology::flocklab26());
  EXPECT_EQ(rig.engine_->routing().sink(), 0);
  EXPECT_GE(rig.engine_->routing().depth(), 2u);
}

}  // namespace
}  // namespace han::st
