// DriftClock model.
#include <gtest/gtest.h>

#include "st/sync.hpp"

namespace han::st {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(DriftClock, ZeroDriftHasZeroOffset) {
  DriftClock c(0.0);
  EXPECT_EQ(c.offset(TimePoint{10'000'000}).us(), 0);
}

TEST(DriftClock, OffsetGrowsLinearly) {
  DriftClock c(40.0);  // 40 ppm fast-acting => acts late
  // After 2 s: 40e-6 * 2e6 us = 80 us.
  EXPECT_EQ(c.offset(TimePoint{2'000'000}).us(), 80);
  EXPECT_EQ(c.offset(TimePoint{4'000'000}).us(), 160);
}

TEST(DriftClock, NegativeDriftActsEarly) {
  DriftClock c(-20.0);
  EXPECT_EQ(c.offset(TimePoint{1'000'000}).us(), -20);
  EXPECT_LT(c.local_fire_time(TimePoint{1'000'000}),
            TimePoint{1'000'000});
}

TEST(DriftClock, ResyncCollapsesOffset) {
  DriftClock c(40.0);
  c.resync(TimePoint{10'000'000});
  EXPECT_EQ(c.offset(TimePoint{10'000'000}).us(), 0);
  EXPECT_EQ(c.offset(TimePoint{12'000'000}).us(), 80);
}

TEST(DriftClock, ResidualCarriesOver) {
  DriftClock c(0.0);
  c.resync(TimePoint{0}, Duration{50});
  EXPECT_EQ(c.offset(TimePoint{5'000'000}).us(), 50);
}

TEST(DriftClock, LocalFireTimeShiftsDeadline) {
  DriftClock c(100.0);
  const TimePoint deadline{1'000'000};
  EXPECT_EQ(c.local_fire_time(deadline), deadline + Duration{100});
}

}  // namespace
}  // namespace han::st
