// Record store and wire format: merge semantics, selection policy.
#include <gtest/gtest.h>

#include "st/record.hpp"

namespace han::st {
namespace {

Record make(net::NodeId origin, std::uint32_t version, std::uint8_t tag = 0) {
  Record r;
  r.origin = origin;
  r.version = version;
  r.data[0] = tag;
  return r;
}

TEST(Record, WireRoundTrip) {
  net::ByteWriter w;
  Record r = make(7, 42, 0xAB);
  r.data[kRecordBytes - 1] = 0xCD;
  write_record(w, r);
  EXPECT_EQ(w.size(), kRecordWireBytes);
  net::ByteReader rd(w.bytes());
  EXPECT_EQ(read_record(rd), r);
}

TEST(Record, PackUnpackRoundTrip) {
  std::vector<Record> recs{make(1, 10, 0x11), make(2, 20, 0x22),
                           make(3, 30, 0x33)};
  const auto payload = pack_records(recs);
  EXPECT_EQ(unpack_records(payload), recs);
}

TEST(Record, UnpackIgnoresPadding) {
  std::vector<Record> recs{make(5, 9)};
  auto payload = pack_records(recs);
  payload.resize(payload.size() + 40, 0);  // zero padding
  EXPECT_EQ(unpack_records(payload), recs);
}

TEST(Record, UnpackRejectsBogusCount) {
  std::vector<std::uint8_t> payload{255};
  EXPECT_THROW(unpack_records(payload), std::invalid_argument);
}

TEST(RecordStore, MergeKeepsFreshest) {
  RecordStore store(4);
  EXPECT_TRUE(store.merge(make(1, 5, 0xA)));
  EXPECT_FALSE(store.merge(make(1, 4, 0xB)));  // stale
  EXPECT_FALSE(store.merge(make(1, 5, 0xC)));  // equal version
  EXPECT_TRUE(store.merge(make(1, 6, 0xD)));
  EXPECT_EQ(store.find(1)->data[0], 0xD);
  EXPECT_EQ(store.known_count(), 1u);
}

TEST(RecordStore, RejectsOutOfRangeOrigin) {
  RecordStore store(4);
  EXPECT_FALSE(store.merge(make(9, 1)));
  EXPECT_EQ(store.find(3), nullptr);
}

TEST(RecordStore, SnapshotOrderedByOrigin) {
  RecordStore store(5);
  store.merge(make(3, 1));
  store.merge(make(0, 1));
  store.merge(make(4, 1));
  const auto snap = store.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].origin, 0);
  EXPECT_EQ(snap[1].origin, 3);
  EXPECT_EQ(snap[2].origin, 4);
}

TEST(RecordStore, SelectIncludesOwnFirst) {
  RecordStore store(6);
  for (net::NodeId i = 0; i < 6; ++i) store.merge(make(i, 1));
  const auto sel = store.select_for_broadcast(2, 3, 1);
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel[0].origin, 2);
}

TEST(RecordStore, SelectRotatesLeastRecentlyBroadcast) {
  RecordStore store(5);
  for (net::NodeId i = 0; i < 5; ++i) store.merge(make(i, 1));
  // First broadcast: own(0) + 1, 2 (lowest ids, never broadcast).
  auto s1 = store.select_for_broadcast(0, 3, 1);
  EXPECT_EQ(s1[1].origin, 1);
  EXPECT_EQ(s1[2].origin, 2);
  // Second: 3, 4 are now least recently broadcast.
  auto s2 = store.select_for_broadcast(0, 3, 2);
  EXPECT_EQ(s2[1].origin, 3);
  EXPECT_EQ(s2[2].origin, 4);
  // Third: 1, 2 again (round robin).
  auto s3 = store.select_for_broadcast(0, 3, 3);
  EXPECT_EQ(s3[1].origin, 1);
  EXPECT_EQ(s3[2].origin, 2);
}

TEST(RecordStore, SelectWithoutOwnRecord) {
  RecordStore store(4);
  store.merge(make(1, 1));
  const auto sel = store.select_for_broadcast(0, 3, 1);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].origin, 1);
}

TEST(RecordStore, ClearResets) {
  RecordStore store(3);
  store.merge(make(1, 1));
  store.clear();
  EXPECT_EQ(store.known_count(), 0u);
  EXPECT_EQ(store.find(1), nullptr);
}

TEST(Record, FrameBudgetConstants) {
  // 6 records of 18 wire bytes + count byte fit a 127-byte PSDU budget.
  EXPECT_EQ(kRecordWireBytes, 18u);
  EXPECT_GE(records_per_frame(), 6u);
  EXPECT_LE(1 + records_per_frame() * kRecordWireBytes, net::kMaxFrameBytes);
}

}  // namespace
}  // namespace han::st
