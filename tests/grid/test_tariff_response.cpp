// tariff_change is no longer a silent no-op at the premise.
//
// Two response paths, one per fidelity family:
//   * full/device tier — a tariff_defer HAN parks discretionary
//     requests that arrive during a peak-tariff window and releases
//     them, in arrival order, when the tier drops;
//   * statistical tier — the calibrated elasticity defers a fraction of
//     predicted load out of the peak window into the rebound pool.
// Plus the guarantee that old behaviour is the default: with
// tariff_defer off, a peak tier changes nothing.
#include <gtest/gtest.h>

#include "core/han_network.hpp"
#include "fidelity/statistical_backend.hpp"
#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"

namespace han {
namespace {

core::HanConfig defer_config(bool defer) {
  core::HanConfig c;
  c.device_count = 4;
  c.topology_kind = core::TopologyKind::kLine;
  c.fidelity = core::CpFidelity::kAbstract;
  c.dr_aware = true;
  c.tariff_defer = defer;
  return c;
}

grid::GridSignal tariff_signal(grid::TariffTier tier) {
  grid::GridSignal s;
  s.kind = grid::SignalKind::kTariffChange;
  s.tier = tier;
  return s;
}

TEST(TariffResponse, PeakWindowParksRequestsUntilTierDrops) {
  sim::Simulator sim;
  core::HanNetwork net(sim, defer_config(true));
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));

  net.apply_grid_signal(tariff_signal(grid::TariffTier::kPeak));

  appliance::Request r;
  r.at = sim::TimePoint::epoch() + sim::minutes(1);
  r.device = 2;
  r.service = sim::minutes(30);
  net.inject_request(r);

  // Well past the request's arrival: with the deferral the appliance
  // must not have seen any demand.
  sim.run_until(sim::TimePoint::epoch() + sim::minutes(5));
  EXPECT_FALSE(net.di(2).appliance().active(sim.now()));
  EXPECT_DOUBLE_EQ(net.total_load_kw(), 0.0);
  EXPECT_EQ(net.stats().requests_injected, 1u);
  EXPECT_EQ(net.stats().tariff_deferrals, 1u);

  // Tier drops: the parked request lands immediately.
  net.apply_grid_signal(tariff_signal(grid::TariffTier::kStandard));
  sim.run_until(sim::TimePoint::epoch() + sim::minutes(6));
  EXPECT_TRUE(net.di(2).appliance().active(sim.now()));
}

TEST(TariffResponse, DeferOffIsTheOldBehaviour) {
  sim::Simulator sim;
  core::HanNetwork net(sim, defer_config(false));
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));

  net.apply_grid_signal(tariff_signal(grid::TariffTier::kPeak));

  appliance::Request r;
  r.at = sim::TimePoint::epoch() + sim::minutes(1);
  r.device = 1;
  r.service = sim::minutes(30);
  net.inject_request(r);
  sim.run_until(sim::TimePoint::epoch() + sim::minutes(5));
  EXPECT_TRUE(net.di(1).appliance().active(sim.now()));
  EXPECT_EQ(net.stats().tariff_deferrals, 0u);
}

TEST(TariffResponse, ReleasePreservesArrivalOrder) {
  sim::Simulator sim;
  core::HanNetwork net(sim, defer_config(true));
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  net.apply_grid_signal(tariff_signal(grid::TariffTier::kPeak));

  for (net::NodeId d : {net::NodeId{3}, net::NodeId{0}}) {
    appliance::Request r;
    r.at = sim::TimePoint::epoch() + sim::minutes(1);
    r.device = d;
    r.service = sim::minutes(20);
    net.inject_request(r);
  }
  sim.run_until(sim::TimePoint::epoch() + sim::minutes(2));
  EXPECT_EQ(net.stats().tariff_deferrals, 2u);

  net.apply_grid_signal(tariff_signal(grid::TariffTier::kOffPeak));
  sim.run_until(sim::TimePoint::epoch() + sim::minutes(3));
  EXPECT_TRUE(net.di(3).appliance().active(sim.now()));
  EXPECT_TRUE(net.di(0).appliance().active(sim.now()));
  // A second (re-entrant) off-peak signal must not double-release.
  net.apply_grid_signal(tariff_signal(grid::TariffTier::kOffPeak));
  EXPECT_EQ(net.stats().requests_injected, 2u);
}

TEST(TariffResponse, StatisticalTierAppliesElasticityDuringPeak) {
  const fleet::FleetConfig cfg =
      fleet::make_scenario(fleet::ScenarioKind::kScaleSweep, 4, 1);
  const fleet::FleetEngine engine(cfg);
  fleet::PremiseSpec spec = engine.make_spec(0);
  spec.experiment.han.dr_aware = true;

  fidelity::CalibrationTable cal = fidelity::CalibrationTable::defaults();
  cal.tariff_elasticity = 0.4;

  // Twin backends over the same spec: one sees a peak window, the
  // other does not. During the window the elastic premise must predict
  // strictly less whenever the baseline is non-zero.
  fidelity::StatisticalBackend peak{fleet::PremiseSpec(spec), cal};
  fidelity::StatisticalBackend base{fleet::PremiseSpec(spec), cal};

  const sim::TimePoint t0 = sim::TimePoint::epoch() + sim::hours(1);
  grid::GridSignal s = tariff_signal(grid::TariffTier::kPeak);
  s.feeder = static_cast<std::uint32_t>(spec.feeder);
  peak.queue_signal(t0, s);

  const sim::TimePoint end = sim::TimePoint::epoch() + sim::hours(3);
  peak.advance_to(end);
  base.advance_to(end);
  EXPECT_EQ(peak.tariff_tier(), grid::TariffTier::kPeak);

  const auto& pv = peak.type2_series().values();
  const auto& bv = base.type2_series().values();
  ASSERT_EQ(pv.size(), bv.size());
  ASSERT_FALSE(bv.empty());
  bool saw_cut = false;
  double peak_kwh = 0.0, base_kwh = 0.0;
  const double dt_h = peak.type2_series().interval().seconds_f() / 3600.0;
  for (std::size_t i = 0; i < bv.size(); ++i) {
    peak_kwh += pv[i] * dt_h;
    base_kwh += bv[i] * dt_h;
    if (pv[i] < bv[i]) saw_cut = true;
  }
  EXPECT_TRUE(saw_cut) << "elasticity never reduced predicted load";
  ASSERT_GT(base_kwh, 0.0);
  EXPECT_LT(peak_kwh, base_kwh);
  // The cut is bounded by the elasticity itself: never more than 40%
  // of baseline energy leaves the window.
  EXPECT_GE(peak_kwh, base_kwh * (1.0 - cal.tariff_elasticity) - 1e-9);
}

TEST(TariffResponse, StatisticalPoolReleasesAfterPeakEnds) {
  const fleet::FleetConfig cfg =
      fleet::make_scenario(fleet::ScenarioKind::kScaleSweep, 4, 1);
  const fleet::FleetEngine engine(cfg);
  fleet::PremiseSpec spec = engine.make_spec(0);
  spec.experiment.han.dr_aware = true;

  fidelity::CalibrationTable cal = fidelity::CalibrationTable::defaults();
  cal.tariff_elasticity = 0.4;

  fidelity::StatisticalBackend windowed{fleet::PremiseSpec(spec), cal};
  fidelity::StatisticalBackend base{fleet::PremiseSpec(spec), cal};

  grid::GridSignal on = tariff_signal(grid::TariffTier::kPeak);
  on.feeder = static_cast<std::uint32_t>(spec.feeder);
  grid::GridSignal off = tariff_signal(grid::TariffTier::kStandard);
  off.feeder = on.feeder;
  windowed.queue_signal(sim::TimePoint::epoch() + sim::hours(1), on);
  windowed.queue_signal(sim::TimePoint::epoch() + sim::hours(2), off);

  const sim::TimePoint end = sim::TimePoint::epoch() + sim::hours(5);
  windowed.advance_to(end);
  base.advance_to(end);

  // After the window the deferred energy re-enters the series: some
  // post-window sample must exceed the baseline (the release), and the
  // run-total energies must be close (deferred, not destroyed).
  const auto& wv = windowed.type2_series().values();
  const auto& bv = base.type2_series().values();
  ASSERT_EQ(wv.size(), bv.size());
  const double dt_h = base.type2_series().interval().seconds_f() / 3600.0;
  bool saw_release = false;
  double w_kwh = 0.0, b_kwh = 0.0;
  for (std::size_t i = 0; i < bv.size(); ++i) {
    w_kwh += wv[i] * dt_h;
    b_kwh += bv[i] * dt_h;
    if (wv[i] > bv[i]) saw_release = true;
  }
  EXPECT_TRUE(saw_release) << "deferred energy never re-entered";
  ASSERT_GT(b_kwh, 0.0);
  // rebound pool drains exponentially; most energy must be recovered
  // by 3 h after the window.
  EXPECT_NEAR(w_kwh, b_kwh, 0.15 * b_kwh);
}

}  // namespace
}  // namespace han
