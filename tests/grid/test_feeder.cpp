// FeederModel: thermal accumulation, headroom, overload accounting.
#include <gtest/gtest.h>

#include <stdexcept>

#include "grid/feeder.hpp"

namespace han::grid {
namespace {

FeederConfig config(double capacity_kw = 100.0) {
  FeederConfig c;
  c.capacity_kw = capacity_kw;
  c.thermal_tau = sim::minutes(30);
  c.overload_temp_pu = 1.0;
  return c;
}

TEST(FeederModel, RejectsBadConfig) {
  FeederConfig no_capacity = config(0.0);
  EXPECT_THROW(FeederModel{no_capacity}, std::invalid_argument);
  FeederConfig bad_tau = config();
  bad_tau.thermal_tau = sim::Duration::zero();
  EXPECT_THROW(FeederModel{bad_tau}, std::invalid_argument);
}

TEST(FeederModel, FirstObservationPrimesSteadyState) {
  FeederModel f(config());
  f.observe(sim::TimePoint::epoch(), 80.0);
  EXPECT_DOUBLE_EQ(f.utilization(), 0.8);
  EXPECT_DOUBLE_EQ(f.temperature_pu(), 0.64);  // u^2
  EXPECT_DOUBLE_EQ(f.headroom_kw(), 20.0);
  EXPECT_DOUBLE_EQ(f.overload_minutes(), 0.0);
}

TEST(FeederModel, TemperatureConvergesToUtilizationSquared) {
  FeederModel f(config());
  sim::TimePoint t = sim::TimePoint::epoch();
  f.observe(t, 50.0);  // primes at 0.25
  // Hold 120 % load for 4 time constants: temp must close most of the
  // gap toward 1.44 monotonically.
  double prev = f.temperature_pu();
  for (int i = 0; i < 120; ++i) {
    t = t + sim::minutes(1);
    f.observe(t, 120.0);
    EXPECT_GE(f.temperature_pu(), prev);
    prev = f.temperature_pu();
  }
  EXPECT_GT(f.temperature_pu(), 1.35);
  EXPECT_LT(f.temperature_pu(), 1.44);
  EXPECT_DOUBLE_EQ(f.peak_temperature_pu(), f.temperature_pu());
}

TEST(FeederModel, TemperatureDecaysWhenLoadDrops) {
  FeederModel f(config());
  sim::TimePoint t = sim::TimePoint::epoch();
  f.observe(t, 120.0);  // primes hot (1.44)
  t = t + sim::minutes(60);
  f.observe(t, 40.0);
  EXPECT_LT(f.temperature_pu(), 1.44);
  EXPECT_GT(f.temperature_pu(), 0.16);  // still decaying toward 0.16
}

TEST(FeederModel, OverloadAndHotMinutesAccrue) {
  FeederModel f(config());
  sim::TimePoint t = sim::TimePoint::epoch();
  f.observe(t, 120.0);  // primes: temp 1.44 (> 1.0), no minutes yet
  for (int i = 0; i < 10; ++i) {
    t = t + sim::minutes(1);
    f.observe(t, 120.0);
  }
  EXPECT_DOUBLE_EQ(f.overload_minutes(), 10.0);
  EXPECT_DOUBLE_EQ(f.hot_minutes(), 10.0);
  // Load at exactly capacity is not an overload.
  t = t + sim::minutes(1);
  f.observe(t, 100.0);
  EXPECT_DOUBLE_EQ(f.overload_minutes(), 10.0);
}

TEST(FeederModel, RejectsTimeGoingBackwards) {
  FeederModel f(config());
  f.observe(sim::TimePoint::epoch() + sim::minutes(5), 10.0);
  EXPECT_THROW(f.observe(sim::TimePoint::epoch(), 10.0),
               std::invalid_argument);
}

TEST(FeederModel, PeakLoadTracked) {
  FeederModel f(config());
  sim::TimePoint t = sim::TimePoint::epoch();
  f.observe(t, 30.0);
  f.observe(t + sim::minutes(1), 90.0);
  f.observe(t + sim::minutes(2), 60.0);
  EXPECT_DOUBLE_EQ(f.peak_load_kw(), 90.0);
  EXPECT_EQ(f.observations(), 3u);
}

}  // namespace
}  // namespace han::grid
