// SignalBus: deterministic subscriber draws, delivery fan-out, log CSV.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "grid/bus.hpp"

namespace han::grid {
namespace {

BusConfig config() {
  BusConfig c;
  c.min_latency = sim::seconds(2);
  c.max_latency = sim::seconds(45);
  c.opt_in = 0.7;
  return c;
}

GridSignal shed_at(sim::TimePoint t, std::uint32_t id = 0) {
  GridSignal s;
  s.id = id;
  s.kind = SignalKind::kDrShed;
  s.at = t;
  s.target_kw = 90.0;
  s.shed_kw = 20.0;
  s.period_stretch = 2;
  s.duration = sim::minutes(30);
  return s;
}

TEST(SignalBus, RejectsBadConfig) {
  EXPECT_THROW(SignalBus(config(), 0, sim::Rng(1)), std::invalid_argument);
  BusConfig bad = config();
  bad.max_latency = sim::seconds(1);  // < min
  EXPECT_THROW(SignalBus(bad, 4, sim::Rng(1)), std::invalid_argument);
}

TEST(SignalBus, DrawsAreDeterministicInSeed) {
  const SignalBus a(config(), 32, sim::Rng(7));
  const SignalBus b(config(), 32, sim::Rng(7));
  const SignalBus c(config(), 32, sim::Rng(8));
  bool any_difference = false;
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(a.subscriber(i).latency, b.subscriber(i).latency) << i;
    EXPECT_EQ(a.subscriber(i).opted_in, b.subscriber(i).opted_in) << i;
    if (a.subscriber(i).latency != c.subscriber(i).latency) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SignalBus, LatenciesWithinBounds) {
  const SignalBus bus(config(), 64, sim::Rng(3));
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_GE(bus.subscriber(i).latency, sim::seconds(2));
    EXPECT_LE(bus.subscriber(i).latency, sim::seconds(45));
  }
}

TEST(SignalBus, OptInFractionRoughlyHonored) {
  const SignalBus bus(config(), 200, sim::Rng(5));
  const double frac =
      static_cast<double>(bus.opted_in_count()) / 200.0;
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.85);
}

TEST(SignalBus, ChangingOptInDoesNotPerturbLatencies) {
  BusConfig all = config();
  all.opt_in = 1.0;
  BusConfig none = config();
  none.opt_in = 0.0;
  const SignalBus a(all, 16, sim::Rng(9));
  const SignalBus b(none, 16, sim::Rng(9));
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.subscriber(i).latency, b.subscriber(i).latency) << i;
    EXPECT_TRUE(a.subscriber(i).opted_in);
    EXPECT_FALSE(b.subscriber(i).opted_in);
  }
}

TEST(SignalBus, PublishFansOutInPremiseOrder) {
  SignalBus bus(config(), 8, sim::Rng(2));
  const GridSignal s = shed_at(sim::TimePoint::epoch() + sim::minutes(5));
  const auto& deliveries = bus.publish(s);
  ASSERT_EQ(deliveries.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(deliveries[i].premise, i);
    EXPECT_EQ(deliveries[i].signal_id, s.id);
    EXPECT_EQ(deliveries[i].deliver_at,
              s.at + bus.subscriber(i).latency);
  }
  EXPECT_EQ(bus.signals().size(), 1u);
  EXPECT_EQ(bus.log().size(), 8u);
}

TEST(SignalBus, ComplianceNeedsOptInAndAbility) {
  BusConfig all = config();
  all.opt_in = 1.0;
  SignalBus bus(all, 4, sim::Rng(2));
  bus.set_can_comply(2, false);  // e.g. an uncoordinated premise
  const auto& deliveries =
      bus.publish(shed_at(sim::TimePoint::epoch()));
  EXPECT_TRUE(deliveries[0].complied);
  EXPECT_TRUE(deliveries[1].complied);
  EXPECT_FALSE(deliveries[2].complied);
  EXPECT_TRUE(deliveries[3].complied);
}

TEST(SignalBus, LogCsvIsStableAndComplete) {
  BusConfig all = config();
  all.opt_in = 1.0;
  SignalBus bus(all, 2, sim::Rng(4));
  (void)bus.publish(shed_at(sim::TimePoint::epoch() + sim::minutes(10), 0));
  GridSignal clear;
  clear.id = 1;
  clear.kind = SignalKind::kAllClear;
  clear.at = sim::TimePoint::epoch() + sim::minutes(40);
  (void)bus.publish(clear);

  std::ostringstream a;
  std::ostringstream b;
  bus.write_log_csv(a);
  bus.write_log_csv(b);
  EXPECT_EQ(a.str(), b.str());

  // Header + 2 signals x 2 premises.
  std::size_t lines = 0;
  for (char ch : a.str()) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(a.str().find("dr_shed"), std::string::npos);
  EXPECT_NE(a.str().find("all_clear"), std::string::npos);
}

}  // namespace
}  // namespace han::grid
