// Event-driven controller front end: declared deadlines per phase,
// deadline bookkeeping (each deadline fires exactly once, including
// coinciding ones), and the equivalence pin — when every crossing
// lands on an interval boundary the event-driven front end emits
// byte-for-byte the signals the polled front end emits, for every
// scenario preset's controller tuning.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fleet/scenario.hpp"
#include "grid/controller.hpp"
#include "metrics/stream_aggregate.hpp"

namespace han::grid {
namespace {

sim::TimePoint at_min(sim::Ticks m) {
  return sim::TimePoint::epoch() + sim::minutes(m);
}

/// Polled reference: one observation per minute.
std::vector<GridSignal> run_polled(const FeederConfig& f, const DrConfig& dr,
                                   const std::vector<double>& series) {
  DemandResponseController c(f, dr);
  std::vector<GridSignal> out;
  for (std::size_t m = 0; m < series.size(); ++m) {
    const auto emitted = c.observe(at_min(static_cast<sim::Ticks>(m)),
                                   series[m]);
    out.insert(out.end(), emitted.begin(), emitted.end());
  }
  return out;
}

struct EventRun {
  std::vector<GridSignal> signals;
  /// Minutes at which the controller was actually woken (prime
  /// included) — everything else it slept through.
  std::vector<sim::Ticks> wake_minutes;
};

/// Event-driven driver, mimicking the engine's wake rules over the
/// same minute series: the monitor commits every minute (so every
/// crossing lands on an interval boundary — the equivalence regime),
/// but the controller is woken only on crossings and due deadlines.
EventRun run_event(const FeederConfig& f, const DrConfig& dr,
                   const std::vector<double>& series) {
  DemandResponseController c(f, dr);
  metrics::StreamAggregate agg(1);
  agg.enable_thermal({f.capacity_kw, f.thermal_tau, f.overload_temp_pu});
  c.register_bands(agg);

  EventRun run;
  sim::TimePoint deadline = sim::TimePoint::max();
  for (std::size_t m = 0; m < series.size(); ++m) {
    const sim::TimePoint t = at_min(static_cast<sim::Ticks>(m));
    agg.update(0, series[m]);
    const auto& crossings = agg.commit(t);

    std::vector<GridSignal> emitted;
    const Observation obs{t, agg.total_kw(), agg.temperature_pu()};
    if (m == 0) {
      emitted = c.on_timer(obs);  // the priming observation
    } else if (!crossings.empty()) {
      emitted = c.on_crossing(obs);
    } else if (deadline <= t) {
      emitted = c.on_timer(obs);
    } else {
      continue;  // asleep
    }
    run.wake_minutes.push_back(static_cast<sim::Ticks>(m));
    run.signals.insert(run.signals.end(), emitted.begin(), emitted.end());
    deadline = c.next_deadline();
  }
  return run;
}

std::size_t wakes_at(const EventRun& run, sim::Ticks minute) {
  std::size_t n = 0;
  for (const sim::Ticks m : run.wake_minutes) n += m == minute ? 1 : 0;
  return n;
}

FeederConfig plain_feeder(double capacity_kw = 100.0) {
  FeederConfig f;
  f.capacity_kw = capacity_kw;
  return f;
}

/// Baseline tuning with the thermal trigger parked far away, so tests
/// exercise pure utilization logic unless they opt in.
DrConfig plain_dr() {
  DrConfig dr;
  dr.trigger_utilization = 1.0;
  dr.trigger_temp_pu = 1e9;
  dr.trigger_hold = sim::minutes(3);
  dr.target_utilization = 0.9;
  dr.shed_duration = sim::minutes(45);
  dr.clear_utilization = 0.85;
  dr.clear_hold = sim::minutes(10);
  dr.cooldown = sim::minutes(15);
  return dr;
}

void append(std::vector<double>& series, int minutes, double value) {
  series.insert(series.end(), static_cast<std::size_t>(minutes), value);
}

TEST(EventControl, NextDeadlineTracksThePhase) {
  DemandResponseController c(plain_feeder(), plain_dr());
  // Idle, no tariff: nothing pending.
  (void)c.observe(at_min(0), 50.0);
  EXPECT_EQ(c.next_deadline(), sim::TimePoint::max());
  // Arming: the trigger-hold end.
  (void)c.observe(at_min(1), 120.0);
  EXPECT_EQ(c.next_deadline(), at_min(1) + sim::minutes(3));
  // Shedding (no relief yet): the shed expiry.
  (void)c.observe(at_min(2), 120.0);
  (void)c.observe(at_min(3), 120.0);
  const auto shed = c.observe(at_min(4), 120.0);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_TRUE(c.shed_active());
  EXPECT_EQ(c.next_deadline(), at_min(4) + sim::minutes(45));
  // Relief starts: the clear hold end, earlier than the expiry.
  (void)c.observe(at_min(5), 80.0);
  EXPECT_EQ(c.next_deadline(), at_min(5) + sim::minutes(10));
  // Relief interrupted: back to the expiry.
  (void)c.observe(at_min(6), 95.0);
  EXPECT_EQ(c.next_deadline(), at_min(4) + sim::minutes(45));
}

TEST(EventControl, NextDeadlineCooldownAndTariff) {
  DrConfig dr = plain_dr();
  dr.tariff_windows = {{sim::hours(17), sim::hours(21), TariffTier::kPeak}};
  DemandResponseController c(plain_feeder(), dr);
  (void)c.observe(at_min(0), 50.0);
  // Idle with a schedule: the next window edge.
  EXPECT_EQ(c.next_deadline(), sim::TimePoint::epoch() + sim::hours(17));
  // Before any observation the boundary search anchors at the epoch.
  DemandResponseController fresh(plain_feeder(), dr);
  EXPECT_EQ(fresh.next_deadline(), sim::TimePoint::epoch() + sim::hours(17));
}

TEST(EventControl, NextTariffBoundaryWrapsMidnight) {
  DrConfig dr = plain_dr();
  dr.tariff_windows = {{sim::hours(22), sim::hours(2), TariffTier::kOffPeak}};
  DemandResponseController c(plain_feeder(), dr);
  EXPECT_EQ(c.next_tariff_boundary(sim::TimePoint::epoch() + sim::hours(23)),
            sim::TimePoint::epoch() + sim::hours(26));  // 02:00 next day
  EXPECT_EQ(c.next_tariff_boundary(sim::TimePoint::epoch() + sim::hours(2)),
            sim::TimePoint::epoch() + sim::hours(22));  // strictly after
  EXPECT_EQ(c.next_tariff_boundary(sim::TimePoint::epoch() + sim::hours(5)),
            sim::TimePoint::epoch() + sim::hours(22));
  DemandResponseController flat(plain_feeder(), plain_dr());
  EXPECT_EQ(flat.next_tariff_boundary(sim::TimePoint::epoch()),
            sim::TimePoint::max());
}

TEST(EventControl, HoldClearAndCooldownDeadlinesFireExactlyOnce) {
  // 120 kW until the shed fires at m3, then 60 kW (below clear):
  // all-clear at m14 (clear hold 10 from the m4 crossing), cooldown
  // end at m29 — and not a single wake beyond those.
  std::vector<double> series;
  append(series, 4, 120.0);
  append(series, 56, 60.0);
  const EventRun run = run_event(plain_feeder(), plain_dr(), series);

  ASSERT_EQ(run.signals.size(), 2u);
  EXPECT_EQ(run.signals[0].kind, SignalKind::kDrShed);
  EXPECT_EQ(run.signals[0].at, at_min(3));
  EXPECT_EQ(run.signals[1].kind, SignalKind::kAllClear);
  EXPECT_EQ(run.signals[1].at, at_min(14));
  EXPECT_EQ(run.wake_minutes, (std::vector<sim::Ticks>{0, 3, 4, 14, 29}));
  EXPECT_EQ(wakes_at(run, 3), 1u);   // trigger-hold deadline
  EXPECT_EQ(wakes_at(run, 14), 1u);  // clear-hold deadline
  EXPECT_EQ(wakes_at(run, 29), 1u);  // cooldown end (no signal)
}

TEST(EventControl, ShedExpiryRollsExactlyOncePerExpiry) {
  DrConfig dr = plain_dr();
  dr.shed_duration = sim::minutes(20);
  std::vector<double> series;
  append(series, 60, 120.0);  // hot forever: every expiry rolls
  const EventRun run = run_event(plain_feeder(), dr, series);

  // Sheds at m3 (hold), then rolls at m23 and m43 — one wake each.
  ASSERT_EQ(run.signals.size(), 3u);
  for (const GridSignal& s : run.signals) {
    EXPECT_EQ(s.kind, SignalKind::kDrShed);
  }
  EXPECT_EQ(run.signals[0].at, at_min(3));
  EXPECT_EQ(run.signals[1].at, at_min(23));
  EXPECT_EQ(run.signals[2].at, at_min(43));
  EXPECT_EQ(run.wake_minutes, (std::vector<sim::Ticks>{0, 3, 23, 43}));
}

TEST(EventControl, CoincidingClearAndExpiryDeadlinesResolveOnce) {
  // Thermal keeps the feeder "hot" (slow decay from a stressed prime)
  // while the load sits below clear, and the clear hold is sized so
  // its deadline lands exactly on the shed expiry: the shed fires at
  // m3 (trigger hold 3 from the hot prime), relief starts at the m6
  // crossing, and both the clear hold (6 + 27) and the expiry (3 + 30)
  // land on m33. The single wake there must resolve to one all-clear —
  // relief wins over a rollover, exactly as the polled state machine
  // orders its checks.
  DrConfig dr = plain_dr();
  dr.trigger_temp_pu = 1.05;
  dr.shed_duration = sim::minutes(30);
  dr.clear_hold = sim::minutes(27);
  FeederConfig f = plain_feeder();
  f.thermal_tau = sim::minutes(300);
  std::vector<double> series;
  append(series, 6, 130.0);  // primes hot; shed fires at m3
  append(series, 35, 60.0);  // relief from m6; temp stays above 1.05
  const EventRun run = run_event(f, dr, series);

  ASSERT_EQ(run.signals.size(), 2u);
  EXPECT_EQ(run.signals[0].kind, SignalKind::kDrShed);
  EXPECT_EQ(run.signals[0].at, at_min(3));
  EXPECT_EQ(run.signals[1].kind, SignalKind::kAllClear);
  EXPECT_EQ(run.signals[1].at, at_min(33));
  EXPECT_EQ(wakes_at(run, 33), 1u);
  // And the polled reference agrees signal-for-signal.
  EXPECT_EQ(run.signals, run_polled(f, dr, series));
}

TEST(EventControl, TariffBoundariesWakeWithoutBands) {
  DrConfig dr = plain_dr();
  dr.shed_enabled = false;  // no bands registered at all
  dr.tariff_windows = {{sim::hours(1), sim::hours(2), TariffTier::kPeak}};
  std::vector<double> series;
  append(series, 181, 50.0);
  const EventRun run = run_event(plain_feeder(), dr, series);

  ASSERT_EQ(run.signals.size(), 2u);
  EXPECT_EQ(run.signals[0].kind, SignalKind::kTariffChange);
  EXPECT_EQ(run.signals[0].at, at_min(60));
  EXPECT_EQ(run.signals[0].tier, TariffTier::kPeak);
  EXPECT_EQ(run.signals[1].at, at_min(120));
  EXPECT_EQ(run.signals[1].tier, TariffTier::kStandard);
  EXPECT_EQ(run.wake_minutes, (std::vector<sim::Ticks>{0, 60, 120}));
}

/// Builds a boundary-aligned stress series exercising every transition
/// of `dr` against capacity `cap`: arm+shed, early all-clear, a
/// rolling expiry, a cancelled relief, and a cooldown re-trigger.
std::vector<double> stress_series(const DrConfig& dr, double cap) {
  const double quiet = 0.5 * dr.clear_utilization * cap;
  const double hot = 1.08 * dr.trigger_utilization * cap;
  const double relief =
      0.9 * std::min(dr.clear_utilization, dr.target_utilization) * cap;
  const double mid =
      0.5 * (dr.clear_utilization + dr.trigger_utilization) * cap;
  const int hold = static_cast<int>(dr.trigger_hold.min());
  const int duration = static_cast<int>(dr.shed_duration.min());
  const int clear = static_cast<int>(dr.clear_hold.min());
  const int cooldown = static_cast<int>(dr.cooldown.min());

  std::vector<double> s;
  append(s, 30, quiet);
  append(s, hold + 3, hot);              // arm, fire
  append(s, clear + 3, relief);          // early all-clear
  append(s, cooldown + 5, quiet);        // cooldown runs out cold
  append(s, hold + duration + 3, hot);   // fire again, roll at expiry
  append(s, clear / 2 + 1, relief);      // relief starts...
  append(s, 3, mid);                     // ...and is cancelled
  append(s, clear + 3, relief);          // fresh relief: all-clear
  append(s, cooldown + 10, quiet);
  return s;
}

TEST(EventControl, MatchesPolledOnEveryPresetTuning) {
  // The equivalence guarantee, pinned per preset: with every crossing
  // landing on an interval boundary, the event-driven front end emits
  // exactly the polled signal stream — ids, times, targets, stretches,
  // tiers — under each scenario's controller tuning.
  for (const fleet::ScenarioInfo& info : fleet::scenarios()) {
    const fleet::FleetConfig cfg = fleet::make_scenario(info.kind, 100, 1);
    const double cap = cfg.transformer_capacity_kw > 0.0
                           ? cfg.transformer_capacity_kw
                           : 2.0 * 100.0;
    FeederConfig f = cfg.grid.feeder;
    f.capacity_kw = cap;
    const DrConfig& dr = cfg.grid.dr;
    const std::vector<double> series = stress_series(dr, cap);

    const std::vector<GridSignal> polled = run_polled(f, dr, series);
    const EventRun event = run_event(f, dr, series);
    EXPECT_EQ(event.signals, polled) << info.name;

    // Not vacuous: the series must exercise the shed machinery, and
    // the event run must have slept through most of it.
    std::size_t sheds = 0;
    for (const GridSignal& s : polled) {
      sheds += s.kind == SignalKind::kDrShed ? 1 : 0;
    }
    EXPECT_GE(sheds, 2u) << info.name;
    EXPECT_LT(event.wake_minutes.size(), series.size() / 4) << info.name;
  }
}

}  // namespace
}  // namespace han::grid
