// Tie-switch transfer state machine: trigger/latency/hold/give-back
// semantics, hysteresis, ping-pong resistance, premise selection
// bounds, topology, and subscription stability across a migration —
// all driven directly against the Substation, no fleet engine.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grid/substation.hpp"

namespace han::grid {
namespace {

FeederConfig feeder(double capacity_kw = 100.0) {
  FeederConfig f;
  f.capacity_kw = capacity_kw;
  return f;
}

DrConfig quiet_dr() {
  // Sheds out of the way: these tests watch the tie switches only.
  DrConfig c;
  c.shed_enabled = false;
  return c;
}

FeederPlan plan(std::vector<std::size_t> premises,
                double capacity_kw = 100.0) {
  FeederPlan p;
  p.feeder = feeder(capacity_kw);
  p.dr = quiet_dr();
  p.premises = std::move(premises);
  return p;
}

TieConfig tie_defaults() {
  TieConfig t;
  t.enabled = true;
  t.trigger_utilization = 1.0;
  t.donor_target_utilization = 0.9;
  t.receiver_cap_utilization = 0.9;
  t.max_transfer_fraction = 0.5;
  t.switch_latency = sim::minutes(1);
  t.hold_time = sim::minutes(30);
  t.give_back_utilization = 0.8;
  return t;
}

/// Two 100 kW feeders: premises 0-3 on feeder 0, 4-7 on feeder 1.
Substation two_feeders(TieConfig tie = tie_defaults()) {
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0, 1, 2, 3}));
  plans.push_back(plan({4, 5, 6, 7}));
  return Substation(SubstationConfig{}, std::move(plans), sim::Rng(1),
                    std::move(tie));
}

sim::TimePoint at_min(long long m) {
  return sim::TimePoint::epoch() + sim::minutes(m);
}

/// Every premise contributes `kw` except the overrides.
std::function<double(std::size_t)> loads(
    double kw, std::unordered_map<std::size_t, double> overrides = {}) {
  return [kw, overrides = std::move(overrides)](std::size_t p) {
    const auto it = overrides.find(p);
    return it == overrides.end() ? kw : it->second;
  };
}

TEST(TieSwitch, TriggerSchedulesTransferAfterSwitchLatency) {
  Substation sub = two_feeders();
  // Feeder 0 at 120/100, feeder 1 at 20/100: over trigger vs headroom.
  sub.plan_transfers(at_min(10), {120.0, 20.0}, loads(30.0));
  // Decision made, actuation pending behind the switch latency.
  EXPECT_EQ(sub.next_tie_deadline(at_min(10)), at_min(11));
  EXPECT_TRUE(sub.apply_due_transfers(at_min(10)).empty());
  EXPECT_EQ(sub.premises(0).size(), 4u);

  const std::vector<TieEvent> events = sub.apply_due_transfers(at_min(11));
  ASSERT_EQ(events.size(), 1u);
  const TieEvent& ev = events.front();
  EXPECT_EQ(ev.from, 0u);
  EXPECT_EQ(ev.to, 1u);
  EXPECT_FALSE(ev.give_back);
  EXPECT_EQ(ev.at, at_min(11));
  // Budget = min(120 - 90, 0.5 * 120, 0.9*100 - 20) = 30 kW; the first
  // 30 kW premise fills it alone.
  EXPECT_EQ(ev.premises, (std::vector<std::size_t>{0}));
  EXPECT_DOUBLE_EQ(ev.moved_kw, 30.0);

  EXPECT_EQ(sub.premises(0), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(sub.premises(1), (std::vector<std::size_t>{0, 4, 5, 6, 7}));
  EXPECT_EQ(sub.serving_feeder(0), 1u);
  EXPECT_EQ(sub.home_feeder(0), 0u);
  EXPECT_EQ(sub.tie_stats().switch_operations, 1u);
  EXPECT_EQ(sub.tie_stats().transfers, 1u);
  EXPECT_EQ(sub.tie_stats().premise_moves, 1u);
  ASSERT_EQ(sub.active_transfers().size(), 1u);
  EXPECT_EQ(sub.active_transfers().front().hold_until, at_min(41));
}

TEST(TieSwitch, NoTransferBelowTriggerOrWithoutHeadroom) {
  Substation sub = two_feeders();
  // Below the trigger band.
  sub.plan_transfers(at_min(0), {99.0, 20.0}, loads(25.0));
  EXPECT_EQ(sub.next_tie_deadline(at_min(0)), sim::TimePoint::max());
  // Over trigger, but the neighbor has no headroom under its cap.
  sub.plan_transfers(at_min(1), {120.0, 95.0}, loads(30.0));
  EXPECT_EQ(sub.next_tie_deadline(at_min(1)), sim::TimePoint::max());
  EXPECT_TRUE(sub.tie_log().empty());
}

TEST(TieSwitch, ReceiverHeadroomIsAHardWallOnSelection) {
  Substation sub = two_feeders();
  // Headroom = 0.9*100 - 85 = 5 kW. 4 kW premises: the first fits,
  // the second would break the wall and is skipped even though the
  // budget (min(30, 60, 5) = 5) is not yet met.
  sub.plan_transfers(at_min(0), {120.0, 85.0}, loads(4.0));
  const std::vector<TieEvent> events = sub.apply_due_transfers(at_min(1));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front().premises.size(), 1u);
  EXPECT_DOUBLE_EQ(events.front().moved_kw, 4.0);
}

TEST(TieSwitch, MovedLoadRespectsTheFractionCap) {
  TieConfig tie = tie_defaults();
  tie.max_transfer_fraction = 0.1;  // 12 kW of a 120 kW donor
  Substation sub = two_feeders(std::move(tie));
  sub.plan_transfers(at_min(0), {120.0, 0.0}, loads(10.0));
  const std::vector<TieEvent> events = sub.apply_due_transfers(at_min(1));
  ASSERT_EQ(events.size(), 1u);
  // Budget = min(30, 12, 90) = 12 kW of 10 kW premises: the budget is
  // a hard wall, so exactly one premise fits — the fraction cap can
  // never be overshot.
  EXPECT_EQ(events.front().premises.size(), 1u);
  EXPECT_DOUBLE_EQ(events.front().moved_kw, 10.0);
}

TEST(TieSwitch, BiggestContributorsTravelFirst) {
  Substation sub = two_feeders();
  // Budget 30; premise 2 carries 25, the rest 5 each: 2 goes first,
  // then the lowest-id 5 kW premise tops it up.
  sub.plan_transfers(at_min(0), {120.0, 20.0}, loads(5.0, {{2, 25.0}}));
  const std::vector<TieEvent> events = sub.apply_due_transfers(at_min(1));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front().premises, (std::vector<std::size_t>{0, 2}));
  EXPECT_DOUBLE_EQ(events.front().moved_kw, 30.0);
}

TEST(TieSwitch, HoldBlocksGiveBackUntilExpiry) {
  Substation sub = two_feeders();
  sub.plan_transfers(at_min(0), {120.0, 20.0}, loads(30.0));
  ASSERT_EQ(sub.apply_due_transfers(at_min(1)).size(), 1u);
  // Donor fully recovered (40 + 30 returned = 70 <= 80), but the hold
  // runs to minute 31: planning earlier must not schedule a give-back.
  sub.plan_transfers(at_min(20), {40.0, 50.0}, loads(30.0));
  EXPECT_EQ(sub.next_tie_deadline(at_min(20)), at_min(31));
  EXPECT_TRUE(sub.apply_due_transfers(at_min(30)).empty());

  sub.plan_transfers(at_min(31), {40.0, 50.0}, loads(30.0));
  const std::vector<TieEvent> events = sub.apply_due_transfers(at_min(32));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events.front().give_back);
  EXPECT_EQ(events.front().from, 1u);
  EXPECT_EQ(events.front().to, 0u);
  EXPECT_EQ(sub.premises(0), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(sub.serving_feeder(0), 0u);
  EXPECT_EQ(sub.tie_stats().give_backs, 1u);
  EXPECT_TRUE(sub.active_transfers().empty());
}

TEST(TieSwitch, GiveBackIsHysteretic) {
  Substation sub = two_feeders();
  sub.plan_transfers(at_min(0), {120.0, 20.0}, loads(30.0));
  ASSERT_EQ(sub.apply_due_transfers(at_min(1)).size(), 1u);
  // Past the hold, donor at 55: returning 30 kW would land it at 85 —
  // above the 0.8 give-back band although well below the 1.0 trigger.
  // The gap is the hysteresis; no give-back.
  sub.plan_transfers(at_min(40), {55.0, 50.0}, loads(30.0));
  EXPECT_TRUE(sub.apply_due_transfers(at_min(41)).empty());
  // Once the returned load fits under the band, it goes home.
  sub.plan_transfers(at_min(45), {50.0, 50.0}, loads(30.0));
  EXPECT_EQ(sub.apply_due_transfers(at_min(46)).size(), 1u);
}

TEST(TieSwitch, StableLoadsNeverPingPong) {
  // Ping-pong resistance: drive the machine every minute for six
  // hours. The donor sheds its lent load but stays warm enough that
  // give-back would land it above the hysteresis band (60 + 30 = 90 >
  // 80) — so after the single transfer the switch must never operate
  // again, in either direction.
  Substation sub = two_feeders();
  double donor = 120.0;
  double receiver = 20.0;
  for (int m = 0; m <= 360; ++m) {
    sub.plan_transfers(at_min(m), {donor, receiver}, loads(30.0));
    for (const TieEvent& ev : sub.apply_due_transfers(at_min(m))) {
      ASSERT_FALSE(ev.give_back);
      donor -= ev.moved_kw * 2.0;  // lent load plus organic cooling
      receiver += ev.moved_kw;
    }
  }
  EXPECT_EQ(sub.tie_stats().transfers, 1u);
  EXPECT_EQ(sub.tie_stats().give_backs, 0u);
  EXPECT_EQ(sub.tie_stats().switch_operations, 1u);
}

TEST(TieSwitch, RecoveredDonorCycleSettles) {
  // Full cycle with recovery: transfer, hold, give-back, then quiet.
  Substation sub = two_feeders();
  std::uint64_t ops_after_cycle = 0;
  for (int m = 0; m <= 360; ++m) {
    // Donor surges 100-130 min, runs cool before and after.
    const bool surge = m >= 100 && m < 130;
    const bool lent = !sub.active_transfers().empty();
    double donor = surge ? 120.0 : 45.0;
    if (lent) donor -= 30.0;
    const double receiver = lent ? 50.0 : 20.0;
    sub.plan_transfers(at_min(m), {donor, receiver}, loads(30.0));
    (void)sub.apply_due_transfers(at_min(m));
    if (m == 200) ops_after_cycle = sub.tie_stats().switch_operations;
  }
  EXPECT_EQ(sub.tie_stats().transfers, 1u);
  EXPECT_EQ(sub.tie_stats().give_backs, 1u);
  // Nothing switched again after the cycle completed.
  EXPECT_EQ(sub.tie_stats().switch_operations, ops_after_cycle);
  EXPECT_EQ(sub.premises(0), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(TieSwitch, BorrowersNeverDonateAndLendersNeverBorrow) {
  // K=3 ring. Feeder 0 lends to feeder 1; while that transfer is
  // active, feeder 1 (a borrower) may not donate — not even its own
  // home premises, and certainly not the borrowed ones — and feeder 0
  // (a lender) may not receive. The role split is what rules out
  // lending cycles.
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0, 1, 2}));
  plans.push_back(plan({3, 4, 5}));
  plans.push_back(plan({6, 7, 8}));
  Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1),
                 tie_defaults());
  sub.plan_transfers(at_min(0), {120.0, 20.0, 20.0}, loads(30.0));
  ASSERT_EQ(sub.apply_due_transfers(at_min(1)).size(), 1u);
  ASSERT_EQ(sub.serving_feeder(0), 1u);
  // Feeder 1 (borrower) goes over trigger with feeder 2 wide open.
  // The donor is kept hot (95 + 30 returned >= trigger) so the
  // emergency give-back cannot resolve it either: nothing may move.
  sub.plan_transfers(at_min(5), {95.0, 150.0, 10.0}, loads(30.0));
  EXPECT_TRUE(sub.apply_due_transfers(at_min(6)).empty());
  EXPECT_EQ(sub.tie_stats().transfers, 1u);
  EXPECT_EQ(sub.serving_feeder(0), 1u);
  // Feeder 2 overloads; its ring ties reach 0 (a lender — excluded)
  // and 1 (a borrower — a legal receiver, but without headroom).
  // Nothing moves, and in particular lender 0's headroom is off
  // limits.
  sub.plan_transfers(at_min(7), {40.0, 95.0, 150.0}, loads(30.0));
  EXPECT_TRUE(sub.apply_due_transfers(at_min(8)).empty());
  EXPECT_EQ(sub.tie_stats().transfers, 1u);
}

TEST(TieSwitch, DeeplyOverloadedDonorLendsRepeatedly) {
  // One transfer moves at most max_transfer_fraction of the donor's
  // load; a 2x-overloaded shard needs several bites. Once a transfer
  // is ACTIVE (actuated, so its effect shows in the observed loads)
  // the donor may lend again — only PENDING operations freeze it.
  Substation sub = two_feeders();
  sub.plan_transfers(at_min(0), {200.0, 10.0}, loads(25.0));
  ASSERT_EQ(sub.next_tie_deadline(at_min(0)), at_min(1));
  // Still pending: planning again at the same loads must not stack a
  // second operation on the frozen pair.
  sub.plan_transfers(at_min(0), {200.0, 10.0}, loads(25.0));
  ASSERT_EQ(sub.apply_due_transfers(at_min(1)).size(), 1u);
  EXPECT_EQ(sub.tie_stats().transfers, 1u);
  // First bite: budget min(200-90, 0.5*200, 0.9*100-10) = 80 moved
  // three 25 kW premises. The donor is still over trigger, the first
  // transfer is active (not pending), so a second bite follows.
  sub.plan_transfers(at_min(2), {120.0, 50.0}, loads(25.0));
  const std::vector<TieEvent> second = sub.apply_due_transfers(at_min(3));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second.front().give_back);
  EXPECT_EQ(sub.tie_stats().transfers, 2u);
  EXPECT_EQ(sub.active_transfers().size(), 2u);
}

TEST(TieSwitch, ReceiverDistressForcesGiveBackThroughTheHold) {
  Substation sub = two_feeders();
  sub.plan_transfers(at_min(0), {120.0, 20.0}, loads(30.0));
  ASSERT_EQ(sub.apply_due_transfers(at_min(1)).size(), 1u);
  // Well inside the 30 min hold the receiver's own load surges over
  // its trigger band while the donor could take the premises back
  // without re-triggering: the emergency give-back overrides the
  // hold (holding load on a failing bank beats nothing but churn).
  sub.plan_transfers(at_min(5), {60.0, 105.0}, loads(30.0));
  const std::vector<TieEvent> events = sub.apply_due_transfers(at_min(6));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events.front().give_back);
  EXPECT_EQ(sub.serving_feeder(0), 0u);
  // But with BOTH ends over trigger there is no good move: the
  // transfer stands.
  sub.plan_transfers(at_min(10), {120.0, 20.0}, loads(30.0));
  ASSERT_EQ(sub.apply_due_transfers(at_min(11)).size(), 1u);
  sub.plan_transfers(at_min(15), {90.0, 120.0}, loads(30.0));
  EXPECT_TRUE(sub.apply_due_transfers(at_min(16)).empty());
}

TEST(TieSwitch, ExplicitTiePairsLimitTheTopology) {
  TieConfig tie = tie_defaults();
  tie.ties = {{0, 1}};
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0, 1}));
  plans.push_back(plan({2, 3}));
  plans.push_back(plan({4, 5}));
  Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1),
                 std::move(tie));
  // Feeder 2 is overloaded with both others wide open, but no tie
  // reaches it.
  sub.plan_transfers(at_min(0), {10.0, 10.0, 150.0}, loads(50.0));
  EXPECT_EQ(sub.next_tie_deadline(at_min(0)), sim::TimePoint::max());
  // Feeder 0 can still hand off across its configured tie.
  sub.plan_transfers(at_min(1), {150.0, 10.0, 150.0}, loads(50.0));
  const std::vector<TieEvent> events = sub.apply_due_transfers(at_min(2));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front().to, 1u);
}

TEST(TieSwitch, SubscriptionsSurviveMigration) {
  Substation sub = two_feeders();
  // Latency/opt-in of premise 0 as drawn on its home bus.
  const Subscriber before = sub.bus(0).subscriber(0);
  sub.plan_transfers(at_min(0), {120.0, 20.0}, loads(30.0));
  ASSERT_EQ(sub.apply_due_transfers(at_min(1)).size(), 1u);
  // Premise 0 is now member 0 of feeder 1's bus (global ids ascend).
  ASSERT_EQ(sub.bus(1).premise_id(0), 0u);
  const Subscriber after = sub.bus(1).subscriber(0);
  EXPECT_EQ(before.latency, after.latency);
  EXPECT_EQ(before.opted_in, after.opted_in);
  EXPECT_EQ(before.can_comply, after.can_comply);
}

TEST(TieSwitch, DisabledTiesNeverPlan) {
  TieConfig tie = tie_defaults();
  tie.enabled = false;
  Substation sub = two_feeders(std::move(tie));
  sub.plan_transfers(at_min(0), {200.0, 0.0}, loads(50.0));
  EXPECT_EQ(sub.next_tie_deadline(at_min(0)), sim::TimePoint::max());
  EXPECT_TRUE(sub.apply_due_transfers(at_min(10)).empty());
  EXPECT_EQ(sub.tie_stats().switch_operations, 0u);
}

TEST(TieSwitch, ZeroLatencyOpsStillReportADeadline) {
  // A zero-latency switch planned at barrier t is due at t itself —
  // after apply_due_transfers already ran. It must still show up as a
  // deadline so the event engine's barrier clamp lands the actuation
  // one control interval later, where the polled loop would land it.
  TieConfig tie = tie_defaults();
  tie.switch_latency = sim::Duration::zero();
  Substation sub = two_feeders(std::move(tie));
  sub.plan_transfers(at_min(10), {120.0, 20.0}, loads(30.0));
  EXPECT_EQ(sub.next_tie_deadline(at_min(10)), at_min(10));
  EXPECT_EQ(sub.apply_due_transfers(at_min(11)).size(), 1u);
}

TEST(TieSwitch, SingleFeederHasNoNeighbors) {
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0, 1, 2}));
  Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1),
                 tie_defaults());
  sub.plan_transfers(at_min(0), {500.0}, loads(100.0));
  EXPECT_EQ(sub.next_tie_deadline(at_min(0)), sim::TimePoint::max());
}

TEST(TieSwitch, RejectsBadTieConfigs) {
  {
    TieConfig tie = tie_defaults();
    tie.ties = {{0, 7}};
    std::vector<FeederPlan> plans;
    plans.push_back(plan({0}));
    plans.push_back(plan({1}));
    EXPECT_THROW(Substation(SubstationConfig{}, std::move(plans),
                            sim::Rng(1), std::move(tie)),
                 std::invalid_argument);
  }
  {
    TieConfig tie = tie_defaults();
    tie.max_transfer_fraction = 0.0;
    std::vector<FeederPlan> plans;
    plans.push_back(plan({0}));
    plans.push_back(plan({1}));
    EXPECT_THROW(Substation(SubstationConfig{}, std::move(plans),
                            sim::Rng(1), std::move(tie)),
                 std::invalid_argument);
  }
  {
    // No hysteresis gap: give-back at/above the trigger would
    // ping-pong the switch every hold_time.
    TieConfig tie = tie_defaults();
    tie.give_back_utilization = tie.trigger_utilization;
    std::vector<FeederPlan> plans;
    plans.push_back(plan({0}));
    plans.push_back(plan({1}));
    EXPECT_THROW(Substation(SubstationConfig{}, std::move(plans),
                            sim::Rng(1), std::move(tie)),
                 std::invalid_argument);
  }
}

TEST(TieSwitch, MembershipChangeDropsPartialControllerHolds) {
  // The controller forgets a partial trigger hold when its member set
  // changes: the shed must re-earn its hold minutes against the
  // post-transfer aggregate.
  DrConfig dr;
  dr.trigger_utilization = 1.0;
  dr.trigger_temp_pu = 10.0;  // thermal trigger out of the way
  dr.trigger_hold = sim::minutes(3);
  DemandResponseController c(feeder(100.0), dr);
  EXPECT_TRUE(c.observe(at_min(0), 120.0).empty());  // arming starts
  EXPECT_TRUE(c.observe(at_min(2), 120.0).empty());
  c.on_membership_change(at_min(2));
  // Without the reset this observation would complete the hold and
  // shed; with it, minute 3 only re-arms.
  EXPECT_TRUE(c.observe(at_min(3), 120.0).empty());
  EXPECT_TRUE(c.observe(at_min(5), 120.0).empty());
  EXPECT_EQ(c.observe(at_min(6), 120.0).size(), 1u);  // re-earned hold
}

TEST(TieSwitch, MembershipChangeResetsClearHoldMidShed) {
  DrConfig dr;
  dr.trigger_utilization = 1.0;
  dr.trigger_temp_pu = 10.0;
  dr.trigger_hold = sim::minutes(1);
  dr.clear_utilization = 0.8;
  dr.clear_hold = sim::minutes(5);
  dr.shed_duration = sim::minutes(60);
  DemandResponseController c(feeder(100.0), dr);
  (void)c.observe(at_min(0), 120.0);
  ASSERT_EQ(c.observe(at_min(1), 120.0).size(), 1u);  // shed fires
  ASSERT_TRUE(c.shed_active());
  // Relief accumulates toward the clear hold...
  (void)c.observe(at_min(2), 70.0);
  (void)c.observe(at_min(5), 70.0);
  c.on_membership_change(at_min(5));
  // ...but the membership change resets it: minute 7 would have
  // completed the hold running since minute 2. Instead relief only
  // restarts the hold there, and the all-clear needs five fresh
  // minutes — minute 12.
  EXPECT_TRUE(c.observe(at_min(7), 70.0).empty());
  EXPECT_TRUE(c.observe(at_min(9), 70.0).empty());
  EXPECT_EQ(c.observe(at_min(12), 70.0).size(), 1u);  // all-clear
  EXPECT_FALSE(c.shed_active());
}

}  // namespace
}  // namespace han::grid
