// DemandResponseController: shed state machine, tariff schedule, grid
// metrics on hand-built load series.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "grid/controller.hpp"

namespace han::grid {
namespace {

FeederConfig feeder(double capacity_kw = 100.0) {
  FeederConfig f;
  f.capacity_kw = capacity_kw;
  return f;
}

/// Fast-reacting tuning so tests stay short.
DrConfig quick_dr() {
  DrConfig c;
  c.trigger_utilization = 1.0;
  c.trigger_temp_pu = 10.0;  // utilization path only unless overridden
  c.trigger_hold = sim::minutes(2);
  c.target_utilization = 0.9;
  c.shed_duration = sim::minutes(20);
  c.max_stretch = 4;
  c.clear_utilization = 0.8;
  c.clear_hold = sim::minutes(3);
  c.cooldown = sim::minutes(5);
  return c;
}

/// Feeds `loads` at 1-minute spacing starting at t=0; returns all
/// emitted signals.
std::vector<GridSignal> drive(DemandResponseController& c,
                              const std::vector<double>& loads) {
  std::vector<GridSignal> out;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto emitted = c.observe(
        sim::TimePoint::epoch() + sim::minutes(static_cast<sim::Ticks>(i)),
        loads[i]);
    out.insert(out.end(), emitted.begin(), emitted.end());
  }
  return out;
}

TEST(Controller, RejectsBadConfig) {
  DrConfig bad = quick_dr();
  bad.target_utilization = 0.0;
  EXPECT_THROW(DemandResponseController(feeder(), bad),
               std::invalid_argument);
  DrConfig bad_stretch = quick_dr();
  bad_stretch.max_stretch = 0;
  EXPECT_THROW(DemandResponseController(feeder(), bad_stretch),
               std::invalid_argument);
}

TEST(Controller, QuietLoadEmitsNothing) {
  DemandResponseController c(feeder(), quick_dr());
  const auto signals = drive(c, std::vector<double>(30, 50.0));
  EXPECT_TRUE(signals.empty());
  EXPECT_EQ(c.stats().shed_signals, 0u);
}

TEST(Controller, SustainedOverloadFiresShedAfterHold) {
  DemandResponseController c(feeder(), quick_dr());
  // 1 sample quiet, then persistent 110 % load. Trigger at t=1 arms;
  // hold of 2 min means the shed fires at t=3.
  std::vector<double> loads{50.0};
  loads.insert(loads.end(), 10, 110.0);
  const auto signals = drive(c, loads);
  ASSERT_FALSE(signals.empty());
  const GridSignal& s = signals.front();
  EXPECT_EQ(s.kind, SignalKind::kDrShed);
  EXPECT_EQ(s.at, sim::TimePoint::epoch() + sim::minutes(3));
  EXPECT_DOUBLE_EQ(s.target_kw, 90.0);
  EXPECT_DOUBLE_EQ(s.shed_kw, 20.0);
  EXPECT_EQ(s.period_stretch, 2);  // ceil(110/90) = 2
  EXPECT_EQ(s.duration, sim::minutes(20));
  EXPECT_TRUE(c.shed_active());
}

TEST(Controller, BlipShorterThanHoldDoesNotFire) {
  DemandResponseController c(feeder(), quick_dr());
  const auto signals =
      drive(c, {50.0, 110.0, 50.0, 110.0, 50.0, 110.0, 50.0});
  EXPECT_TRUE(signals.empty());
}

TEST(Controller, ThermalTriggerFiresWithoutRawOverload) {
  DrConfig dr = quick_dr();
  dr.trigger_utilization = 2.0;  // unreachable: thermal path only
  dr.trigger_temp_pu = 0.9;
  FeederConfig f = feeder();
  f.thermal_tau = sim::minutes(5);  // heat up fast
  DemandResponseController c(f, dr);
  // 97 % load never crosses a raw-utilization trigger but settles the
  // hotspot at 0.94 pu.
  const auto signals = drive(c, std::vector<double>(30, 97.0));
  ASSERT_FALSE(signals.empty());
  EXPECT_EQ(signals.front().kind, SignalKind::kDrShed);
}

TEST(Controller, AllClearAfterSustainedRelief) {
  DemandResponseController c(feeder(), quick_dr());
  // Overload long enough to shed, then drop well below clear (80 %).
  std::vector<double> loads(6, 110.0);  // arms at 0, sheds at t=2
  loads.insert(loads.end(), 10, 70.0);
  const auto signals = drive(c, loads);
  ASSERT_GE(signals.size(), 2u);
  EXPECT_EQ(signals[0].kind, SignalKind::kDrShed);
  EXPECT_EQ(signals[1].kind, SignalKind::kAllClear);
  // Relief starts at t=6; clear hold 3 min => all-clear at t=9.
  EXPECT_EQ(signals[1].at, sim::TimePoint::epoch() + sim::minutes(9));
  EXPECT_FALSE(c.shed_active());
  EXPECT_EQ(c.stats().all_clear_signals, 1u);
}

TEST(Controller, RollingShedWhenStillHotAtExpiry) {
  DemandResponseController c(feeder(), quick_dr());
  // Permanent 120 % load: the shed must roll at every expiry instead of
  // ever going idle.
  const auto signals = drive(c, std::vector<double>(50, 120.0));
  std::size_t sheds = 0;
  for (const GridSignal& s : signals) {
    if (s.kind == SignalKind::kDrShed) ++sheds;
  }
  EXPECT_GE(sheds, 2u);
  EXPECT_EQ(c.stats().all_clear_signals, 0u);
  EXPECT_TRUE(c.shed_active());
  // The load never reached target: every active minute is unserved.
  EXPECT_GT(c.stats().unserved_shed_kw_minutes, 0.0);
  EXPECT_DOUBLE_EQ(c.stats().mean_unserved_shed_kw(), 30.0);  // 120 - 90
}

TEST(Controller, RolloverResetsClearHoldTracking) {
  // A clear hold accumulated under an expiring shed must not all-clear
  // the rolled-over shed almost immediately: the fresh shed has to earn
  // its own clear_hold minutes. Thermal-only trigger so the roll fires
  // while the load is already below the clear threshold.
  DrConfig dr = quick_dr();
  dr.trigger_utilization = 2.0;  // unreachable: thermal path only
  dr.trigger_temp_pu = 0.9;
  dr.clear_hold = sim::minutes(10);
  DemandResponseController c(feeder(), dr);
  // 130 % for 15 min (hotspot primes at 1.69 pu), then 75 % — below the
  // 80 % clear line but thermally still hot at the t=22 expiry.
  std::vector<double> loads(15, 130.0);
  loads.insert(loads.end(), 25, 75.0);
  const auto signals = drive(c, loads);
  ASSERT_GE(signals.size(), 3u);
  // Shed fires at t=2 (armed at 0, hold 2), expires at t=22 still hot.
  EXPECT_EQ(signals[0].kind, SignalKind::kDrShed);
  EXPECT_EQ(signals[0].at, sim::TimePoint::epoch() + sim::minutes(2));
  EXPECT_EQ(signals[1].kind, SignalKind::kDrShed);
  EXPECT_EQ(signals[1].at, sim::TimePoint::epoch() + sim::minutes(22));
  // The clear hold pending since t=15 died at the rollover; the new
  // hold starts at t=23 and releases at t=33. A leak would have
  // all-cleared at t=25 (10 min after the STALE clear_since_ of 15).
  EXPECT_EQ(signals[2].kind, SignalKind::kAllClear);
  EXPECT_EQ(signals[2].at, sim::TimePoint::epoch() + sim::minutes(33));
}

TEST(Controller, CooldownSuppressesImmediateRetrigger) {
  DemandResponseController c(feeder(), quick_dr());
  std::vector<double> loads(6, 110.0);
  loads.insert(loads.end(), 5, 70.0);   // all-clear lands in here
  loads.insert(loads.end(), 3, 110.0);  // hot again inside cooldown
  const auto signals = drive(c, loads);
  std::size_t sheds = 0;
  for (const GridSignal& s : signals) {
    if (s.kind == SignalKind::kDrShed) ++sheds;
  }
  EXPECT_EQ(sheds, 1u);
}

TEST(Controller, ShedLatencyMeasuredToTarget) {
  DemandResponseController c(feeder(), quick_dr());
  // Shed fires at t=2 (armed at t=0); load obeys 3 minutes later.
  std::vector<double> loads(5, 110.0);
  loads.insert(loads.end(), 10, 85.0);  // 85 <= target 90
  (void)drive(c, loads);
  EXPECT_EQ(c.stats().sheds_reaching_target, 1u);
  // Emitted at t=2, reached target at t=5.
  EXPECT_DOUBLE_EQ(c.stats().total_shed_latency_minutes, 3.0);
}

TEST(Controller, TariffSignalsFollowTimeOfDay) {
  DrConfig dr = quick_dr();
  dr.shed_enabled = false;
  dr.tariff_windows = {
      {sim::hours(0), sim::hours(6), TariffTier::kOffPeak},
      {sim::hours(17), sim::hours(21), TariffTier::kPeak},
  };
  DemandResponseController c(feeder(), dr);
  std::vector<GridSignal> signals;
  for (sim::Ticks m = 0; m < 25 * 60; m += 15) {
    const auto emitted =
        c.observe(sim::TimePoint::epoch() + sim::minutes(m), 50.0);
    signals.insert(signals.end(), emitted.begin(), emitted.end());
  }
  // off_peak (t=0) -> standard (06:00) -> peak (17:00) -> standard
  // (21:00) -> off_peak (24:00).
  ASSERT_EQ(signals.size(), 5u);
  for (const GridSignal& s : signals) {
    EXPECT_EQ(s.kind, SignalKind::kTariffChange);
  }
  EXPECT_EQ(signals[0].tier, TariffTier::kOffPeak);
  EXPECT_EQ(signals[1].tier, TariffTier::kStandard);
  EXPECT_EQ(signals[2].tier, TariffTier::kPeak);
  EXPECT_EQ(signals[3].tier, TariffTier::kStandard);
  EXPECT_EQ(signals[4].tier, TariffTier::kOffPeak);
  EXPECT_EQ(c.stats().tariff_signals, 5u);
}

TEST(Controller, TariffWindowMayWrapMidnight) {
  DrConfig dr = quick_dr();
  dr.shed_enabled = false;
  dr.tariff_windows = {
      {sim::hours(22), sim::hours(2), TariffTier::kOffPeak},
  };
  const DemandResponseController c(feeder(), dr);
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::hours(23)),
            TariffTier::kOffPeak);
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::hours(1)),
            TariffTier::kOffPeak);
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::hours(2)),
            TariffTier::kStandard);
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::hours(12)),
            TariffTier::kStandard);
}

TEST(Controller, OverlappingTariffWindowsFirstMatchWins) {
  DrConfig dr = quick_dr();
  dr.shed_enabled = false;
  // The peak window sits inside a wider off-peak one; inside the
  // overlap the FIRST window in declaration order must win.
  dr.tariff_windows = {
      {sim::hours(17), sim::hours(21), TariffTier::kPeak},
      {sim::hours(16), sim::hours(22), TariffTier::kOffPeak},
  };
  const DemandResponseController c(feeder(), dr);
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::hours(18)),
            TariffTier::kPeak);
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::minutes(16 * 60 + 30)),
            TariffTier::kOffPeak);
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::minutes(21 * 60 + 30)),
            TariffTier::kOffPeak);
  // Exactly at the inner window's start the first window takes over.
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::hours(17)),
            TariffTier::kPeak);
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::hours(12)),
            TariffTier::kStandard);
}

TEST(Controller, WrappedWindowOverlapPrecedenceAcrossMidnight) {
  DrConfig dr = quick_dr();
  dr.shed_enabled = false;
  // A midnight-wrapping off-peak window declared first shadows a peak
  // window that overlaps its post-midnight tail.
  dr.tariff_windows = {
      {sim::hours(22), sim::hours(2), TariffTier::kOffPeak},
      {sim::hours(1), sim::hours(3), TariffTier::kPeak},
  };
  const DemandResponseController c(feeder(), dr);
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::minutes(90)),
            TariffTier::kOffPeak);  // 01:30: both match, first wins
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::minutes(150)),
            TariffTier::kPeak);  // 02:30: wrap ended, second window
  EXPECT_EQ(c.tier_at(sim::TimePoint::epoch() + sim::hours(23)),
            TariffTier::kOffPeak);
}

TEST(Controller, TariffChangeEmittedExactlyAtWrapBoundaries) {
  DrConfig dr = quick_dr();
  dr.shed_enabled = false;
  dr.tariff_windows = {
      {sim::hours(22), sim::hours(2), TariffTier::kOffPeak},
  };
  DemandResponseController c(feeder(), dr);
  // Minute resolution from 21:00 through 02:30 (next day): the only
  // transitions are at exactly 22:00 (into the wrap) and exactly 02:00
  // (out of it) — midnight itself must NOT re-emit.
  std::vector<GridSignal> signals;
  for (sim::Ticks m = 21 * 60; m <= 26 * 60 + 30; ++m) {
    const auto emitted =
        c.observe(sim::TimePoint::epoch() + sim::minutes(m), 50.0);
    signals.insert(signals.end(), emitted.begin(), emitted.end());
  }
  ASSERT_EQ(signals.size(), 2u);
  EXPECT_EQ(signals[0].kind, SignalKind::kTariffChange);
  EXPECT_EQ(signals[0].tier, TariffTier::kOffPeak);
  EXPECT_EQ(signals[0].at, sim::TimePoint::epoch() + sim::hours(22));
  EXPECT_EQ(signals[1].kind, SignalKind::kTariffChange);
  EXPECT_EQ(signals[1].tier, TariffTier::kStandard);
  EXPECT_EQ(signals[1].at, sim::TimePoint::epoch() + sim::hours(26));
}

TEST(Controller, UnitMaxStretchStillSheds) {
  // max_stretch == 1 is allowed by validation; the emitted stretch must
  // respect the cap instead of hitting the 2-minimum (which would be a
  // lo > hi clamp).
  DrConfig dr = quick_dr();
  dr.max_stretch = 1;
  DemandResponseController c(feeder(), dr);
  const auto signals = drive(c, std::vector<double>(10, 110.0));
  ASSERT_FALSE(signals.empty());
  EXPECT_EQ(signals.front().period_stretch, 1);
}

TEST(Controller, ShedDisabledStillTracksFeeder) {
  DrConfig dr = quick_dr();
  dr.shed_enabled = false;
  DemandResponseController c(feeder(), dr);
  const auto signals = drive(c, std::vector<double>(20, 150.0));
  EXPECT_TRUE(signals.empty());
  EXPECT_GT(c.feeder().overload_minutes(), 0.0);
}

TEST(Controller, SignalIdsAreSequential) {
  DemandResponseController c(feeder(), quick_dr());
  std::vector<double> loads(6, 110.0);
  loads.insert(loads.end(), 10, 70.0);
  loads.insert(loads.end(), 20, 50.0);
  const auto signals = drive(c, loads);
  for (std::size_t i = 0; i < signals.size(); ++i) {
    EXPECT_EQ(signals[i].id, i);
  }
}

}  // namespace
}  // namespace han::grid
