// Substation: per-feeder control-plane isolation, bank accounting,
// subscription stability under resharding, and the K=1 log format
// guarantee.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "grid/substation.hpp"

namespace han::grid {
namespace {

FeederConfig feeder(double capacity_kw = 100.0) {
  FeederConfig f;
  f.capacity_kw = capacity_kw;
  return f;
}

DrConfig quick_dr() {
  DrConfig c;
  c.trigger_utilization = 1.0;
  c.trigger_temp_pu = 10.0;
  c.trigger_hold = sim::minutes(2);
  c.target_utilization = 0.9;
  c.shed_duration = sim::minutes(20);
  c.max_stretch = 4;
  c.clear_utilization = 0.8;
  c.clear_hold = sim::minutes(3);
  c.cooldown = sim::minutes(5);
  return c;
}

FeederPlan plan(std::vector<std::size_t> premises,
                double capacity_kw = 100.0) {
  FeederPlan p;
  p.feeder = feeder(capacity_kw);
  p.dr = quick_dr();
  p.premises = std::move(premises);
  return p;
}

TEST(Substation, RejectsEmptyAndUnsortedPlans) {
  const sim::Rng rng(1);
  EXPECT_THROW(Substation(SubstationConfig{}, {}, rng),
               std::invalid_argument);
  std::vector<FeederPlan> bad;
  bad.push_back(plan({3, 1}));
  EXPECT_THROW(Substation(SubstationConfig{}, std::move(bad), rng),
               std::invalid_argument);
}

TEST(Substation, BankCapacityDefaultsToSumOfFeeders) {
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0, 1}, 60.0));
  plans.push_back(plan({2}, 40.0));
  const Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1));
  EXPECT_EQ(sub.feeder_count(), 2u);
  EXPECT_EQ(sub.premise_count(), 3u);
  EXPECT_DOUBLE_EQ(sub.transformer().config().capacity_kw, 100.0);
}

TEST(Substation, ExplicitBankConfigWins) {
  SubstationConfig cfg;
  cfg.capacity_kw = 250.0;
  cfg.thermal_tau = sim::minutes(90);
  cfg.overload_temp_pu = 1.2;
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0}));
  const Substation sub(cfg, std::move(plans), sim::Rng(1));
  EXPECT_DOUBLE_EQ(sub.transformer().config().capacity_kw, 250.0);
  EXPECT_EQ(sub.transformer().config().thermal_tau, sim::minutes(90));
  EXPECT_DOUBLE_EQ(sub.transformer().config().overload_temp_pu, 1.2);
}

TEST(Substation, SignalsStampedWithFeederId) {
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0, 1}));
  plans.push_back(plan({2, 3}));
  Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1));
  // Only feeder 1 runs hot.
  std::vector<GridSignal> emitted;
  for (sim::Ticks m = 0; m < 10; ++m) {
    const sim::TimePoint t = sim::TimePoint::epoch() + sim::minutes(m);
    const auto quiet = sub.observe_feeder(0, t, 50.0);
    EXPECT_TRUE(quiet.empty());
    const auto hot = sub.observe_feeder(1, t, 120.0);
    emitted.insert(emitted.end(), hot.begin(), hot.end());
    sub.observe_total(t, 170.0);
  }
  ASSERT_FALSE(emitted.empty());
  for (const GridSignal& s : emitted) {
    EXPECT_EQ(s.feeder, 1u);
    EXPECT_EQ(s.kind, SignalKind::kDrShed);
  }
  EXPECT_FALSE(sub.controller(0).shed_active());
  EXPECT_TRUE(sub.controller(1).shed_active());
}

TEST(Substation, FeederStateMachinesAreIndependent) {
  // A shed on one feeder must not advance the other's hold timers: the
  // quiet feeder fires its own shed only after its own full hold.
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0}));
  plans.push_back(plan({1}));
  Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1));
  std::vector<GridSignal> first, second;
  for (sim::Ticks m = 0; m < 12; ++m) {
    const sim::TimePoint t = sim::TimePoint::epoch() + sim::minutes(m);
    const auto a = sub.observe_feeder(0, t, 120.0);  // hot from t=0
    // Feeder 1 only turns hot at t=5.
    const auto b = sub.observe_feeder(1, t, m < 5 ? 50.0 : 120.0);
    first.insert(first.end(), a.begin(), a.end());
    second.insert(second.end(), b.begin(), b.end());
  }
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  // hold = 2 min: feeder 0 arms at 0 and fires at 2; feeder 1 arms at 5
  // and fires at 7 — not earlier on the back of feeder 0's arming.
  EXPECT_EQ(first.front().at, sim::TimePoint::epoch() + sim::minutes(2));
  EXPECT_EQ(second.front().at, sim::TimePoint::epoch() + sim::minutes(7));
}

TEST(Substation, SubscriptionsStableUnderResharding) {
  // A premise's latency/opt-in draw is keyed by its global id, so
  // moving it to a different shard must not change it.
  const sim::Rng rng = sim::Rng(42).stream("grid-bus");
  BusConfig bus;
  bus.opt_in = 0.5;
  std::vector<FeederPlan> one;
  one.push_back(plan({0, 1, 2, 3}));
  one.front().bus = bus;
  std::vector<FeederPlan> two;
  two.push_back(plan({0, 3}));
  two.push_back(plan({1, 2}));
  for (FeederPlan& p : two) p.bus = bus;
  const Substation a(SubstationConfig{}, std::move(one), rng);
  const Substation b(SubstationConfig{}, std::move(two), rng);
  // Global id 3: position 3 on the single shard, position 1 on shard 0.
  EXPECT_EQ(a.bus(0).subscriber(3).latency, b.bus(0).subscriber(1).latency);
  EXPECT_EQ(a.bus(0).subscriber(3).opted_in, b.bus(0).subscriber(1).opted_in);
  // Global id 2: position 2 vs shard 1 position 1.
  EXPECT_EQ(a.bus(0).subscriber(2).latency, b.bus(1).subscriber(1).latency);
  EXPECT_EQ(a.bus(0).subscriber(2).opted_in, b.bus(1).subscriber(1).opted_in);
}

TEST(Substation, DeliveriesCarryGlobalPremiseIds) {
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0, 2}));
  plans.push_back(plan({5, 9}));
  Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1));
  GridSignal s;
  s.kind = SignalKind::kTariffChange;
  s.feeder = 1;
  const auto& deliveries = sub.bus(1).publish(s);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].premise, 5u);
  EXPECT_EQ(deliveries[1].premise, 9u);
}

TEST(Substation, SingleFeederLogMatchesBusFormat) {
  // K=1 must emit the PR 2 single-bus CSV byte-for-byte (no feeder
  // column) — the backward-compatibility guarantee.
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0, 1}));
  Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1));
  GridSignal s;
  s.kind = SignalKind::kTariffChange;
  (void)sub.bus(0).publish(s);
  std::ostringstream from_sub, from_bus;
  sub.write_log_csv(from_sub);
  sub.bus(0).write_log_csv(from_bus);
  EXPECT_EQ(from_sub.str(), from_bus.str());
  EXPECT_EQ(from_sub.str().substr(0, 10), "signal_id,");
}

TEST(Substation, MultiFeederLogPrefixesFeederColumn) {
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0}));
  plans.push_back(plan({1}));
  Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1));
  for (std::uint32_t k = 0; k < 2; ++k) {
    GridSignal s;
    s.kind = SignalKind::kTariffChange;
    s.feeder = k;
    (void)sub.bus(k).publish(s);
  }
  std::ostringstream os;
  sub.write_log_csv(os);
  const std::string log = os.str();
  EXPECT_EQ(log.substr(0, 7), "feeder,");
  EXPECT_NE(log.find("\n0,0,tariff_change,"), std::string::npos);
  EXPECT_NE(log.find("\n1,0,tariff_change,"), std::string::npos);
}

TEST(Substation, EmptyFeederIsAllowedAndInert) {
  std::vector<FeederPlan> plans;
  plans.push_back(plan({0, 1}));
  plans.push_back(plan({}));
  Substation sub(SubstationConfig{}, std::move(plans), sim::Rng(1));
  EXPECT_EQ(sub.bus(1).premise_count(), 0u);
  GridSignal s;
  s.feeder = 1;
  EXPECT_TRUE(sub.bus(1).publish(s).empty());
  // Its transformer still counts toward the bank rating.
  EXPECT_DOUBLE_EQ(sub.transformer().config().capacity_kw, 200.0);
}

}  // namespace
}  // namespace han::grid
