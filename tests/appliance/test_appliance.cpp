// Type-1/Type-2 appliance models: demand lifecycle, relay accounting,
// constraint auditing.
#include <gtest/gtest.h>

#include "appliance/appliance.hpp"

namespace han::appliance {
namespace {

using sim::TimePoint;

ApplianceInfo info(net::NodeId id = 0, double kw = 1.0) {
  ApplianceInfo i;
  i.id = id;
  i.name = "test";
  i.rated_kw = kw;
  return i;
}

TimePoint at_min(sim::Ticks m) { return TimePoint::epoch() + sim::minutes(m); }

TEST(Type2, StartsIdle) {
  Type2Appliance a(info(), DutyCycleConstraints{});
  EXPECT_FALSE(a.active(TimePoint::epoch()));
  EXPECT_FALSE(a.relay_on());
  EXPECT_DOUBLE_EQ(a.load_kw(TimePoint::epoch()), 0.0);
}

TEST(Type2, DemandLifecycle) {
  Type2Appliance a(info(), DutyCycleConstraints{});
  a.add_demand(at_min(10), sim::minutes(30));
  EXPECT_TRUE(a.active(at_min(10)));
  EXPECT_TRUE(a.active(at_min(39)));
  EXPECT_FALSE(a.active(at_min(40)));
  EXPECT_EQ(a.demand_since(), at_min(10));
  EXPECT_EQ(a.requests_served(), 1u);
}

TEST(Type2, DemandSnapsToWholePeriods) {
  Type2Appliance a(info(), DutyCycleConstraints{});
  a.add_demand(at_min(0), sim::minutes(20));  // snapped up to 30
  EXPECT_EQ(a.demand_until(), at_min(30));
  a.add_demand(at_min(10), sim::minutes(30));  // span 40 -> 2 periods
  EXPECT_EQ(a.demand_until(), at_min(60));
}

TEST(Type2, ExtensionKeepsDemandSince) {
  Type2Appliance a(info(), DutyCycleConstraints{});
  a.add_demand(at_min(0), sim::minutes(30));
  a.add_demand(at_min(20), sim::minutes(30));
  EXPECT_EQ(a.demand_since(), at_min(0));
  EXPECT_EQ(a.requests_served(), 2u);
}

TEST(Type2, NewDemandAfterExpiryResets) {
  Type2Appliance a(info(), DutyCycleConstraints{});
  a.add_demand(at_min(0), sim::minutes(30));
  a.add_demand(at_min(50), sim::minutes(30));
  EXPECT_EQ(a.demand_since(), at_min(50));
  EXPECT_EQ(a.demand_until(), at_min(80));
}

TEST(Type2, RelayDrawsRatedPower) {
  Type2Appliance a(info(0, 2.5), DutyCycleConstraints{});
  a.add_demand(at_min(0), sim::minutes(30));
  a.set_relay(true, at_min(1));
  EXPECT_DOUBLE_EQ(a.load_kw(at_min(5)), 2.5);
  a.set_relay(false, at_min(16));
  EXPECT_DOUBLE_EQ(a.load_kw(at_min(17)), 0.0);
}

TEST(Type2, OnTimeAndEnergyAccounting) {
  Type2Appliance a(info(0, 2.0), DutyCycleConstraints{});
  a.add_demand(at_min(0), sim::minutes(60));
  a.set_relay(true, at_min(0));
  a.set_relay(false, at_min(15));
  a.set_relay(true, at_min(30));
  EXPECT_EQ(a.total_on_time(at_min(40)), sim::minutes(25));
  EXPECT_NEAR(a.energy_kwh(at_min(40)), 2.0 * 25.0 / 60.0, 1e-9);
  EXPECT_EQ(a.switch_count(), 3u);
}

TEST(Type2, MinDcdViolationAudited) {
  Type2Appliance a(info(), DutyCycleConstraints{});
  a.add_demand(at_min(0), sim::minutes(30));
  a.set_relay(true, at_min(0));
  a.set_relay(false, at_min(5));  // 5 < 15 min
  EXPECT_EQ(a.min_dcd_violations(), 1u);
  a.set_relay(true, at_min(10));
  a.set_relay(false, at_min(25));  // full burst: no new violation
  EXPECT_EQ(a.min_dcd_violations(), 1u);
}

TEST(Type2, RedundantRelaySetIsNoop) {
  Type2Appliance a(info(), DutyCycleConstraints{});
  a.set_relay(false, at_min(0));
  EXPECT_EQ(a.switch_count(), 0u);
  a.add_demand(at_min(0), sim::minutes(30));
  a.set_relay(true, at_min(0));
  a.set_relay(true, at_min(5));
  EXPECT_EQ(a.switch_count(), 1u);
}

TEST(Type2, BurstPendingTracksDemand) {
  Type2Appliance a(info(), DutyCycleConstraints{});
  EXPECT_FALSE(a.burst_pending(at_min(0)));  // idle
  a.add_demand(at_min(0), sim::minutes(30));
  EXPECT_TRUE(a.burst_pending(at_min(1)));
  a.set_relay(true, at_min(5));
  EXPECT_TRUE(a.burst_pending(at_min(10)));   // 5 of 15 min done
  EXPECT_FALSE(a.burst_pending(at_min(20)));  // 15 min accumulated
  a.set_relay(false, at_min(20));
  EXPECT_FALSE(a.burst_pending(at_min(25)));
}

TEST(Type2, BurstPendingResetsWithNewDemand) {
  Type2Appliance a(info(), DutyCycleConstraints{});
  a.add_demand(at_min(0), sim::minutes(30));
  a.set_relay(true, at_min(0));
  a.set_relay(false, at_min(15));
  EXPECT_FALSE(a.burst_pending(at_min(16)));
  a.add_demand(at_min(40), sim::minutes(30));
  EXPECT_TRUE(a.burst_pending(at_min(41)));
}

TEST(Type1, SessionLifecycle) {
  Type1Appliance a(info(3, 0.1));
  EXPECT_FALSE(a.running(at_min(0)));
  a.start_session(at_min(5), sim::minutes(10));
  EXPECT_TRUE(a.running(at_min(10)));
  EXPECT_DOUBLE_EQ(a.load_kw(at_min(10)), 0.1);
  EXPECT_FALSE(a.running(at_min(15)));
  EXPECT_EQ(a.sessions(), 1u);
}

TEST(Type1, OverlappingSessionsExtend) {
  Type1Appliance a(info());
  a.start_session(at_min(0), sim::minutes(10));
  a.start_session(at_min(5), sim::minutes(10));
  EXPECT_TRUE(a.running(at_min(14)));
  EXPECT_FALSE(a.running(at_min(15)));
}

}  // namespace
}  // namespace han::appliance
