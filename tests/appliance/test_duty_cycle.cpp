// DutyCycleConstraints validation and derived quantities.
#include <gtest/gtest.h>

#include "appliance/duty_cycle.hpp"

namespace han::appliance {
namespace {

TEST(DutyCycle, PaperDefaults) {
  const DutyCycleConstraints c;
  EXPECT_EQ(c.min_dcd(), sim::minutes(15));
  EXPECT_EQ(c.max_dcp(), sim::minutes(30));
  EXPECT_DOUBLE_EQ(c.duty_factor(), 0.5);
  EXPECT_EQ(c.serial_slots(), 2);
}

TEST(DutyCycle, RejectsInvalid) {
  EXPECT_THROW(DutyCycleConstraints(sim::minutes(0), sim::minutes(30)),
               std::invalid_argument);
  EXPECT_THROW(DutyCycleConstraints(sim::minutes(-5), sim::minutes(30)),
               std::invalid_argument);
  EXPECT_THROW(DutyCycleConstraints(sim::minutes(31), sim::minutes(30)),
               std::invalid_argument);
}

TEST(DutyCycle, EqualDurationsAllowed) {
  // minDCD == maxDCP: device runs continuously while active.
  const DutyCycleConstraints c(sim::minutes(10), sim::minutes(10));
  EXPECT_DOUBLE_EQ(c.duty_factor(), 1.0);
  EXPECT_EQ(c.serial_slots(), 1);
}

class DutyFactorSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DutyFactorSweep, FactorAndSlotsConsistent) {
  const auto [dcd_min, dcp_min] = GetParam();
  const DutyCycleConstraints c(sim::minutes(dcd_min), sim::minutes(dcp_min));
  EXPECT_NEAR(c.duty_factor(),
              static_cast<double>(dcd_min) / dcp_min, 1e-12);
  EXPECT_EQ(c.serial_slots(), dcp_min / dcd_min);
  EXPECT_GE(c.serial_slots(), 1);
}

INSTANTIATE_TEST_SUITE_P(Pairs, DutyFactorSweep,
                         ::testing::Values(std::pair{15, 30},
                                           std::pair{10, 30},
                                           std::pair{5, 60},
                                           std::pair{15, 45},
                                           std::pair{20, 30},
                                           std::pair{30, 30}));

}  // namespace
}  // namespace han::appliance
