// First-order thermal model: dynamics, equilibria, derived constraints.
#include <gtest/gtest.h>

#include "appliance/thermal.hpp"

namespace han::appliance {
namespace {

ThermalParams cooling_room() {
  ThermalParams p;
  p.capacitance_kwh_per_deg = 0.8;
  p.resistance_deg_per_kw = 8.0;
  p.outdoor_deg = 40.0;
  p.unit_kw = -3.0;
  p.band_low_deg = 22.0;
  p.band_high_deg = 26.0;
  return p;
}

TEST(Thermal, EquilibriumValues) {
  const ThermalZone z(cooling_room(), 25.0);
  EXPECT_DOUBLE_EQ(z.equilibrium(false), 40.0);
  EXPECT_DOUBLE_EQ(z.equilibrium(true), 40.0 - 24.0);  // 16 C
}

TEST(Thermal, DriftsTowardOutdoorWhenOff) {
  ThermalZone z(cooling_room(), 25.0);
  z.advance(sim::minutes(30), false);
  EXPECT_GT(z.temperature(), 25.0);
  EXPECT_LT(z.temperature(), 40.0);
}

TEST(Thermal, CoolsWhenOn) {
  ThermalZone z(cooling_room(), 26.0);
  z.advance(sim::minutes(30), true);
  EXPECT_LT(z.temperature(), 26.0);
  EXPECT_GT(z.temperature(), 16.0);
}

TEST(Thermal, ConvergesToEquilibrium) {
  ThermalZone z(cooling_room(), 26.0);
  z.advance(sim::hours(100), true);
  EXPECT_NEAR(z.temperature(), 16.0, 0.01);
}

TEST(Thermal, AdvanceIsComposable) {
  // advance(a+b) == advance(a); advance(b) — closed-form exactness.
  ThermalZone z1(cooling_room(), 26.0);
  ThermalZone z2(cooling_room(), 26.0);
  z1.advance(sim::minutes(40), true);
  z2.advance(sim::minutes(15), true);
  z2.advance(sim::minutes(25), true);
  EXPECT_NEAR(z1.temperature(), z2.temperature(), 1e-9);
}

TEST(Thermal, TimeToReachInvertsAdvance) {
  const ThermalZone z(cooling_room(), 26.0);
  const auto t = z.time_to_reach(26.0, 22.0, true);
  ASSERT_TRUE(t.has_value());
  ThermalZone sim_z(cooling_room(), 26.0);
  sim_z.advance(*t, true);
  EXPECT_NEAR(sim_z.temperature(), 22.0, 0.01);
}

TEST(Thermal, UnreachableTargetDetected) {
  const ThermalZone z(cooling_room(), 26.0);
  // Cooling equilibrium is 16 C: 10 C is unreachable.
  EXPECT_FALSE(z.time_to_reach(26.0, 10.0, true).has_value());
  // Warming up while cooling is on: wrong direction.
  EXPECT_FALSE(z.time_to_reach(22.0, 30.0, true).has_value());
}

TEST(Thermal, DerivedConstraintsKeepBand) {
  const ThermalZone z(cooling_room(), 26.0);
  const auto c = z.derive_constraints();
  ASSERT_TRUE(c.has_value());
  EXPECT_GT(c->min_dcd(), sim::Duration::zero());
  EXPECT_GT(c->max_dcp(), c->min_dcd());

  // Simulate one derived duty cycle: the zone must stay in the band.
  ThermalZone run(cooling_room(), 26.0);
  run.advance(c->min_dcd(), true);
  EXPECT_NEAR(run.temperature(), 22.0, 0.05);
  run.advance(c->max_dcp() - c->min_dcd(), false);
  EXPECT_NEAR(run.temperature(), 26.0, 0.05);
}

TEST(Thermal, HotterOutdoorsRaisesDutyFactor) {
  // The paper's §II point: constraints are dynamic in the environment.
  // Hotter outdoors => the zone drifts back through the band faster and
  // the unit needs longer to cool, so the duty factor rises.
  ThermalParams mild = cooling_room();
  mild.outdoor_deg = 32.0;
  ThermalParams hot = cooling_room();
  hot.outdoor_deg = 44.0;
  const auto c_mild = ThermalZone(mild, 26.0).derive_constraints();
  const auto c_hot = ThermalZone(hot, 26.0).derive_constraints();
  ASSERT_TRUE(c_mild && c_hot);
  EXPECT_GT(c_hot->duty_factor(), c_mild->duty_factor());
  // And the OFF-drift portion alone must shrink.
  EXPECT_LT(c_hot->max_dcp() - c_hot->min_dcd(),
            c_mild->max_dcp() - c_mild->min_dcd());
}

TEST(Thermal, UndersizedUnitYieldsNoConstraints) {
  ThermalParams weak = cooling_room();
  weak.unit_kw = -1.0;  // equilibrium 32 C > band
  const auto c = ThermalZone(weak, 26.0).derive_constraints();
  EXPECT_FALSE(c.has_value());
}

TEST(Thermal, HeatingModeWorks) {
  ThermalParams heater;
  heater.outdoor_deg = 0.0;
  heater.unit_kw = 3.0;
  heater.band_low_deg = 18.0;
  heater.band_high_deg = 22.0;
  const auto c = ThermalZone(heater, 18.0).derive_constraints();
  ASSERT_TRUE(c.has_value());
  ThermalZone run(heater, 18.0);
  run.advance(c->min_dcd(), true);
  EXPECT_NEAR(run.temperature(), 22.0, 0.05);
}

}  // namespace
}  // namespace han::appliance
