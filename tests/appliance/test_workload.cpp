// Workload generator: determinism, rates, scenarios, service models.
#include <gtest/gtest.h>

#include "appliance/workload.hpp"

namespace han::appliance {
namespace {

TEST(Workload, DeterministicPerSeed) {
  WorkloadParams p;
  const sim::Rng rng(42);
  const auto a = WorkloadGenerator::generate(p, rng);
  const auto b = WorkloadGenerator::generate(p, rng);
  EXPECT_EQ(a, b);
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadParams p;
  const auto a = WorkloadGenerator::generate(p, sim::Rng(1));
  const auto b = WorkloadGenerator::generate(p, sim::Rng(2));
  EXPECT_NE(a, b);
}

TEST(Workload, ArrivalsAreOrderedAndInHorizon) {
  WorkloadParams p;
  p.horizon = sim::minutes(350);
  const auto trace = WorkloadGenerator::generate(p, sim::Rng(7));
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].at, trace[i - 1].at);
  }
  EXPECT_LE(trace.back().at.since_epoch().us(), p.horizon.us());
}

TEST(Workload, RateMatchesExpectation) {
  WorkloadParams p;
  p.rate_per_hour = 30.0;
  p.horizon = sim::hours(200);  // long horizon for tight statistics
  const auto trace = WorkloadGenerator::generate(p, sim::Rng(3));
  const double measured =
      static_cast<double>(trace.size()) / p.horizon.hours_f();
  EXPECT_NEAR(measured, 30.0, 1.0);
}

TEST(Workload, DevicesCoverRange) {
  WorkloadParams p;
  p.horizon = sim::hours(100);
  const auto trace = WorkloadGenerator::generate(p, sim::Rng(3));
  std::vector<int> hits(p.device_count, 0);
  for (const Request& r : trace) {
    ASSERT_LT(r.device, p.device_count);
    ++hits[r.device];
  }
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(Workload, WarmupRespected) {
  WorkloadParams p;
  p.warmup = sim::minutes(5);
  const auto trace = WorkloadGenerator::generate(p, sim::Rng(3));
  ASSERT_FALSE(trace.empty());
  EXPECT_GT(trace.front().at.since_epoch(), sim::minutes(5));
}

TEST(Workload, FixedServiceModel) {
  WorkloadParams p;
  p.service_model = ServiceModel::kFixed;
  const auto trace = WorkloadGenerator::generate(p, sim::Rng(3));
  for (const Request& r : trace) EXPECT_EQ(r.service, p.mean_service);
}

TEST(Workload, UniformServiceModelBounds) {
  WorkloadParams p;
  p.service_model = ServiceModel::kUniform;
  p.horizon = sim::hours(50);
  const auto trace = WorkloadGenerator::generate(p, sim::Rng(3));
  for (const Request& r : trace) {
    EXPECT_GE(r.service.us(), p.mean_service.us() / 2);
    EXPECT_LE(r.service.us(), p.mean_service.us() * 3 / 2);
  }
}

TEST(Workload, ExponentialServiceMeanMatches) {
  WorkloadParams p;
  p.service_model = ServiceModel::kExponential;
  p.horizon = sim::hours(500);
  const auto trace = WorkloadGenerator::generate(p, sim::Rng(3));
  double sum = 0.0;
  for (const Request& r : trace) sum += r.service.minutes_f();
  EXPECT_NEAR(sum / static_cast<double>(trace.size()),
              p.mean_service.minutes_f(), 2.0);
}

TEST(Workload, ScenarioRates) {
  EXPECT_DOUBLE_EQ(scenario_rate_per_hour(ArrivalScenario::kLow), 4.0);
  EXPECT_DOUBLE_EQ(scenario_rate_per_hour(ArrivalScenario::kModerate), 18.0);
  EXPECT_DOUBLE_EQ(scenario_rate_per_hour(ArrivalScenario::kHigh), 30.0);
  EXPECT_EQ(to_string(ArrivalScenario::kHigh), "high");
}

TEST(Workload, ScenarioGeneratorMatchesParams) {
  const auto trace = WorkloadGenerator::generate_scenario(
      ArrivalScenario::kHigh, 26, sim::minutes(350), sim::Rng(1));
  // ~30/h over ~5.83 h => ~175 expected; allow generous slack.
  EXPECT_GT(trace.size(), 120u);
  EXPECT_LT(trace.size(), 240u);
}

TEST(Workload, ZeroRateYieldsEmpty) {
  WorkloadParams p;
  p.rate_per_hour = 0.0;
  EXPECT_TRUE(WorkloadGenerator::generate(p, sim::Rng(1)).empty());
}

TEST(Workload, ClusteredArrivalsAreDeterministic) {
  WorkloadParams base;
  ClusterParams cp;
  const auto a = WorkloadGenerator::generate_clustered(base, cp, sim::Rng(4));
  const auto b = WorkloadGenerator::generate_clustered(base, cp, sim::Rng(4));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(Workload, ClusteredArrivalsHitDistinctDevicesPerCluster) {
  // Clusters are spaced far apart (0.1/h) relative to their spread
  // (1 min), so grouping by time gap recovers them exactly; within a
  // group every device must be distinct.
  WorkloadParams base;
  base.horizon = sim::hours(100);
  ClusterParams cp;
  cp.cluster_size = 8;
  cp.spread = sim::minutes(1);
  cp.clusters_per_hour = 0.1;
  const auto trace =
      WorkloadGenerator::generate_clustered(base, cp, sim::Rng(4));
  ASSERT_GT(trace.size(), 8u);
  std::vector<net::NodeId> current;
  sim::TimePoint last = trace.front().at;
  for (const Request& r : trace) {
    if (r.at - last > sim::minutes(10)) current.clear();
    if (current.size() < cp.cluster_size) {
      EXPECT_EQ(std::count(current.begin(), current.end(), r.device), 0)
          << "duplicate device within a cluster";
    }
    current.push_back(r.device);
    last = r.at;
  }
}

TEST(Workload, ClusteredArrivalsSortedAndBounded) {
  WorkloadParams base;
  ClusterParams cp;
  const auto trace =
      WorkloadGenerator::generate_clustered(base, cp, sim::Rng(9));
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].at, trace[i - 1].at);
  }
  for (const Request& r : trace) {
    EXPECT_LT(r.device, base.device_count);
    // Jitter may push a member slightly past a cluster epoch near the
    // horizon edge; the epoch itself is bounded.
    EXPECT_LE(r.at.since_epoch().us(),
              (base.horizon + cp.spread).us());
  }
}

TEST(Workload, ClusterSizeClampedToDeviceCount) {
  WorkloadParams base;
  base.device_count = 4;
  ClusterParams cp;
  cp.cluster_size = 100;
  cp.clusters_per_hour = 1.0;
  base.horizon = sim::hours(1);
  const auto trace =
      WorkloadGenerator::generate_clustered(base, cp, sim::Rng(2));
  // At most device_count requests per cluster.
  EXPECT_LE(trace.size(), 8u);  // <= 2 clusters x 4 devices
}

TEST(Workload, ExpectedActiveDevicesLittleLaw) {
  WorkloadParams p;
  p.rate_per_hour = 30.0;
  p.mean_service = sim::minutes(30);
  EXPECT_NEAR(WorkloadGenerator::expected_active_devices(p), 15.0, 1e-9);
  p.rate_per_hour = 1000.0;
  EXPECT_DOUBLE_EQ(WorkloadGenerator::expected_active_devices(p), 26.0);
}

}  // namespace
}  // namespace han::appliance
