// StreamAggregate: index-ordered commit totals, band-crossing semantics
// (including at floating-point equality), thermal tracking equivalence
// with grid::FeederModel, and thermal-crossing prediction.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/feeder.hpp"
#include "metrics/stream_aggregate.hpp"

namespace han::metrics {
namespace {

sim::TimePoint at_min(sim::Ticks m) {
  return sim::TimePoint::epoch() + sim::minutes(m);
}

TEST(StreamAggregate, CommitSumsInMemberIndexOrder) {
  StreamAggregate agg(3);
  agg.update(0, 0.1);
  agg.update(1, 0.2);
  agg.update(2, 0.3);
  agg.commit(at_min(0));
  // Bit-identical to the rebuild pattern: left-to-right accumulation.
  EXPECT_EQ(agg.total_kw(), 0.1 + 0.2 + 0.3);
  agg.update(1, 5.0);
  agg.commit(at_min(1));
  EXPECT_EQ(agg.total_kw(), 0.1 + 5.0 + 0.3);
  EXPECT_EQ(agg.commits(), 2u);
}

TEST(StreamAggregate, PrimingCommitEmitsNoCrossings) {
  StreamAggregate agg(1);
  agg.add_band({/*id=*/7, BandQuantity::kLoadKw, /*level=*/10.0,
                /*inclusive=*/true});
  agg.update(0, 50.0);  // starts high
  EXPECT_TRUE(agg.commit(at_min(0)).empty());
  // The primed state was captured: falling below now crosses.
  agg.update(0, 5.0);
  const auto& down = agg.commit(at_min(1));
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].band, 7);
  EXPECT_EQ(down[0].direction, CrossDirection::kFalling);
  EXPECT_EQ(down[0].at, at_min(1));
  EXPECT_DOUBLE_EQ(down[0].value, 5.0);
}

TEST(StreamAggregate, InclusiveBandCrossesAtExactEquality) {
  // inclusive=true: high means value >= level, so landing exactly on
  // the level from below is a rising crossing...
  StreamAggregate ge(1);
  ge.add_band({0, BandQuantity::kLoadKw, 10.0, /*inclusive=*/true});
  ge.update(0, 9.0);
  ge.commit(at_min(0));
  ge.update(0, 10.0);
  EXPECT_EQ(ge.commit(at_min(1)).size(), 1u);

  // ...while inclusive=false (high means value > level) stays low at
  // equality — the "at or below" consumers (clear/target) need this.
  StreamAggregate gt(1);
  gt.add_band({0, BandQuantity::kLoadKw, 10.0, /*inclusive=*/false});
  gt.update(0, 9.0);
  gt.commit(at_min(0));
  gt.update(0, 10.0);
  EXPECT_TRUE(gt.commit(at_min(1)).empty());
  gt.update(0, 10.5);
  EXPECT_EQ(gt.commit(at_min(2)).size(), 1u);
}

TEST(StreamAggregate, UnchangedTotalEmitsNothing) {
  StreamAggregate agg(2);
  agg.add_band({0, BandQuantity::kLoadKw, 10.0, true});
  agg.update(0, 3.0);
  agg.update(1, 4.0);
  agg.commit(at_min(0));
  for (int m = 1; m < 10; ++m) {
    EXPECT_TRUE(agg.commit(at_min(m)).empty()) << m;
  }
}

TEST(StreamAggregate, ThermalMatchesFeederModelBitForBit) {
  // Same samples into both integrators: the temperatures and the
  // overload/hot accounting must agree exactly, which is what lets the
  // event-driven engine source feeder thermal metrics from the monitor.
  grid::FeederConfig cfg;
  cfg.capacity_kw = 100.0;
  cfg.thermal_tau = sim::minutes(30);
  cfg.overload_temp_pu = 1.0;
  grid::FeederModel model(cfg);

  StreamAggregate agg(1);
  agg.enable_thermal({cfg.capacity_kw, cfg.thermal_tau, cfg.overload_temp_pu});

  const double loads[] = {40.0, 80.0, 120.0, 120.0, 95.0, 130.0, 20.0};
  sim::Ticks m = 0;
  for (const double kw : loads) {
    model.observe(at_min(m), kw);
    agg.update(0, kw);
    agg.commit(at_min(m));
    EXPECT_EQ(agg.temperature_pu(), model.temperature_pu()) << m;
    EXPECT_EQ(agg.overload_minutes(), model.overload_minutes()) << m;
    EXPECT_EQ(agg.hot_minutes(), model.hot_minutes()) << m;
    EXPECT_EQ(agg.peak_temperature_pu(), model.peak_temperature_pu()) << m;
    EXPECT_EQ(agg.peak_load_kw(), model.peak_load_kw()) << m;
    m += 3;
  }
}

TEST(StreamAggregate, TemperatureBandRidesTheThermalState) {
  StreamAggregate agg(1);
  agg.enable_thermal({100.0, sim::minutes(10), 1.0});
  agg.add_band({1, BandQuantity::kTemperaturePu, 1.05, true});
  agg.update(0, 120.0);  // settles at 1.44
  agg.commit(at_min(0));  // primes at 1.44: band starts high
  agg.update(0, 50.0);   // settles at 0.25: decays through 1.05
  bool fell = false;
  for (int m = 1; m <= 30 && !fell; ++m) {
    for (const Crossing& c : agg.commit(at_min(m))) {
      if (c.band == 1 && c.direction == CrossDirection::kFalling) fell = true;
    }
  }
  EXPECT_TRUE(fell);
  EXPECT_LT(agg.temperature_pu(), 1.05);
}

TEST(StreamAggregate, PredictsRisingThermalCrossing) {
  StreamAggregate cool(1);
  cool.enable_thermal({100.0, sim::minutes(30), 1.0});
  cool.update(0, 50.0);
  cool.commit(at_min(0));  // primes at 0.25
  cool.update(0, 110.0);   // heads for 1.21
  cool.commit(at_min(1));
  const sim::TimePoint hit = cool.predict_thermal_crossing(1.05);
  ASSERT_LT(hit, sim::TimePoint::max());
  EXPECT_GT(hit, at_min(1));
  // Walk the model to the predicted instant: it must be at the level
  // (within integration rounding), and strictly below one minute prior.
  StreamAggregate walk(1);
  walk.enable_thermal({100.0, sim::minutes(30), 1.0});
  walk.update(0, 50.0);
  walk.commit(at_min(0));
  walk.update(0, 110.0);
  walk.commit(hit - sim::minutes(1));
  EXPECT_LT(walk.temperature_pu(), 1.05);
  walk.commit(hit);
  EXPECT_NEAR(walk.temperature_pu(), 1.05, 1e-6);
}

TEST(StreamAggregate, PredictsFallingCrossingAndRefusesUnreachable) {
  StreamAggregate agg(1);
  agg.enable_thermal({100.0, sim::minutes(30), 1.0});
  agg.update(0, 120.0);
  agg.commit(at_min(0));  // primes hot at 1.44
  agg.update(0, 50.0);    // decays toward 0.25
  agg.commit(at_min(1));
  EXPECT_LT(agg.predict_thermal_crossing(1.05), sim::TimePoint::max());
  // A level outside (state, settling) is never reached.
  EXPECT_EQ(agg.predict_thermal_crossing(2.0), sim::TimePoint::max());
  EXPECT_EQ(agg.predict_thermal_crossing(0.1), sim::TimePoint::max());
}

TEST(StreamAggregate, RejectsMisuse) {
  StreamAggregate agg(1);
  EXPECT_THROW(agg.add_band({0, BandQuantity::kTemperaturePu, 1.0, true}),
               std::logic_error);
  EXPECT_THROW(agg.enable_thermal({0.0, sim::minutes(1), 1.0}),
               std::invalid_argument);
  EXPECT_THROW(agg.enable_thermal({1.0, sim::Duration::zero(), 1.0}),
               std::invalid_argument);
  agg.commit(at_min(5));
  EXPECT_THROW(agg.commit(at_min(4)), std::invalid_argument);
  EXPECT_THROW(agg.add_band({0, BandQuantity::kLoadKw, 1.0, true}),
               std::logic_error);
  StreamAggregate late(1);
  late.commit(at_min(0));
  EXPECT_THROW(late.enable_thermal({1.0, sim::minutes(1), 1.0}),
               std::logic_error);
}

TEST(StreamAggregate, EmptyMembershipIsInert) {
  StreamAggregate agg(0);
  agg.enable_thermal({10.0, sim::minutes(5), 1.0});
  agg.add_band({0, BandQuantity::kLoadKw, 1.0, true});
  agg.commit(at_min(0));
  EXPECT_TRUE(agg.commit(at_min(10)).empty());
  EXPECT_DOUBLE_EQ(agg.total_kw(), 0.0);
  EXPECT_DOUBLE_EQ(agg.overload_minutes(), 0.0);
}

}  // namespace
}  // namespace han::metrics
