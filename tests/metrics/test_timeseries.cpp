// TimeSeries, LoadMonitor, CSV/TextTable rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/csv.hpp"
#include "metrics/load_monitor.hpp"
#include "metrics/timeseries.hpp"
#include "sim/simulator.hpp"

namespace han::metrics {
namespace {

TEST(TimeSeries, TimeOfSample) {
  TimeSeries ts(sim::TimePoint::epoch() + sim::minutes(5), sim::minutes(2));
  ts.append(1);
  ts.append(2);
  EXPECT_EQ(ts.time_of(0), sim::TimePoint::epoch() + sim::minutes(5));
  EXPECT_EQ(ts.time_of(1), sim::TimePoint::epoch() + sim::minutes(7));
}

TEST(TimeSeries, SummaryStats) {
  TimeSeries ts(sim::TimePoint::epoch(), sim::minutes(1));
  for (double v : {1.0, 3.0, 2.0, 8.0}) ts.append(v);
  EXPECT_DOUBLE_EQ(ts.peak(), 8.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 3.5);
  EXPECT_DOUBLE_EQ(ts.max_step(), 6.0);
}

TEST(TimeSeries, DownsampleAverages) {
  TimeSeries ts(sim::TimePoint::epoch(), sim::minutes(1));
  for (double v : {1.0, 3.0, 5.0, 7.0, 9.0}) ts.append(v);
  const TimeSeries d = ts.downsample(2);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.at(0), 2.0);
  EXPECT_DOUBLE_EQ(d.at(1), 6.0);
  EXPECT_DOUBLE_EQ(d.at(2), 9.0);  // tail bucket of one
  EXPECT_EQ(d.interval(), sim::minutes(2));
}

TEST(TimeSeries, DownsampleFactorOneIsIdentity) {
  TimeSeries ts(sim::TimePoint::epoch(), sim::minutes(1));
  ts.append(4.0);
  EXPECT_EQ(ts.downsample(1).values(), ts.values());
}

TEST(LoadMonitor, SamplesOnInterval) {
  sim::Simulator sim;
  double load = 0.0;
  LoadMonitor mon(sim, [&] { return load; }, sim::minutes(1));
  mon.start(sim::TimePoint::epoch());
  sim.schedule_at(sim::TimePoint::epoch() + sim::seconds(90),
                  [&] { load = 5.0; });
  sim.run_until(sim::TimePoint::epoch() + sim::seconds(250));
  mon.stop();
  // Samples at 0, 60, 120, 180, 240 s.
  ASSERT_EQ(mon.series().size(), 5u);
  EXPECT_DOUBLE_EQ(mon.series().at(0), 0.0);
  EXPECT_DOUBLE_EQ(mon.series().at(1), 0.0);
  EXPECT_DOUBLE_EQ(mon.series().at(2), 5.0);
  EXPECT_DOUBLE_EQ(mon.series().at(4), 5.0);
}

TEST(Csv, WritesAlignedSeries) {
  TimeSeries a(sim::TimePoint::epoch(), sim::minutes(1));
  TimeSeries b(sim::TimePoint::epoch(), sim::minutes(1));
  a.append(1.0);
  a.append(2.0);
  b.append(3.0);
  std::ostringstream os;
  write_csv(os, {"with", "without"}, {&a, &b});
  const std::string out = os.str();
  EXPECT_NE(out.find("time_min,with,without"), std::string::npos);
  EXPECT_NE(out.find("0.00,1.0000,3.0000"), std::string::npos);
  EXPECT_NE(out.find("1.00,2.0000,"), std::string::npos);  // padded blank
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"scenario", "peak", "avg"});
  t.add_row("high", {15.0, 7.5});
  t.add_row({"low", "4.00", "1.00"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("scenario"), std::string::npos);
  EXPECT_NE(out.find("15.00"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
}

}  // namespace
}  // namespace han::metrics
