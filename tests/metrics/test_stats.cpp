// RunningStats, percentile, max_step.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/stats.hpp"

namespace han::metrics {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i * 0.7) * 10.0;
    whole.add(v);
    (i < 37 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 17.5);
}

TEST(Percentile, EdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0}, 150), 3.0);  // clamped
}

TEST(MaxStep, FindsLargestJump) {
  EXPECT_DOUBLE_EQ(max_step({1, 2, 5, 4}), 3.0);
  EXPECT_DOUBLE_EQ(max_step({5, 1, 2}), 4.0);  // falling step counts
  EXPECT_DOUBLE_EQ(max_step({2}), 0.0);
  EXPECT_DOUBLE_EQ(max_step({}), 0.0);
}

}  // namespace
}  // namespace han::metrics
