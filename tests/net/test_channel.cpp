// Channel: path loss, BER/PRR link model, connectivity.
#include <gtest/gtest.h>

#include "net/channel.hpp"
#include "net/topology.hpp"

namespace han::net {
namespace {

ChannelParams clean() {
  ChannelParams p;
  p.shadowing_sigma_db = 0.0;
  return p;
}

TEST(Channel, DbmMwConversions) {
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(10.0), 10.0, 1e-9);
  EXPECT_NEAR(mw_to_dbm(1.0), 0.0, 1e-12);
  EXPECT_NEAR(mw_to_dbm(dbm_to_mw(-37.5)), -37.5, 1e-9);
  EXPECT_LE(mw_to_dbm(0.0), -250.0);  // clamped, not -inf
}

TEST(Channel, PathLossGrowsWithDistance) {
  sim::Rng rng(1);
  const Topology t = Topology::line(3, 10.0);
  const Channel ch(t, clean(), rng);
  EXPECT_LT(ch.path_loss_db(0, 1), ch.path_loss_db(0, 2));
}

TEST(Channel, PathLossMatchesLogDistanceFormula) {
  sim::Rng rng(1);
  const Topology t = Topology::line(2, 10.0);
  ChannelParams p = clean();
  const Channel ch(t, p, rng);
  const double expected =
      p.reference_loss_db + 10.0 * p.path_loss_exponent * 1.0;  // log10(10)=1
  EXPECT_NEAR(ch.path_loss_db(0, 1), expected, 1e-9);
}

TEST(Channel, LinksAreSymmetric) {
  sim::Rng rng(3);
  ChannelParams p;
  p.shadowing_sigma_db = 4.0;
  const Topology t = Topology::flocklab26();
  const Channel ch(t, p, rng);
  for (NodeId a = 0; a < 26; a += 5) {
    for (NodeId b = 1; b < 26; b += 7) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(ch.path_loss_db(a, b), ch.path_loss_db(b, a));
    }
  }
}

TEST(Channel, ShadowingIsDeterministicPerSeed) {
  const Topology t = Topology::line(4, 10.0);
  ChannelParams p;
  p.shadowing_sigma_db = 4.0;
  sim::Rng r1(9), r2(9);
  const Channel a(t, p, r1);
  const Channel b(t, p, r2);
  EXPECT_DOUBLE_EQ(a.path_loss_db(0, 3), b.path_loss_db(0, 3));
}

TEST(Channel, BerMonotoneInSinr) {
  double prev = 0.5;
  for (double sinr = -12.0; sinr <= 12.0; sinr += 0.5) {
    const double ber = Channel::ber_oqpsk(sinr);
    EXPECT_LE(ber, prev + 1e-12);
    prev = ber;
  }
  EXPECT_DOUBLE_EQ(Channel::ber_oqpsk(15.0), 0.0);
  EXPECT_DOUBLE_EQ(Channel::ber_oqpsk(-15.0), 0.5);
}

TEST(Channel, PrrCliffAroundSensitivity) {
  sim::Rng rng(1);
  const Topology t = Topology::line(2, 5.0);
  const Channel ch(t, clean(), rng);
  // Strong signal: near-perfect; below the noise floor: near-zero.
  EXPECT_GT(ch.prr(-80.0, 0.0, 64), 0.999);
  EXPECT_LT(ch.prr(-101.0, 0.0, 64), 0.05);
  // The transitional region sits within a few dB of the floor.
  const double mid = ch.prr(-98.5, 0.0, 64);
  EXPECT_GT(mid, 0.05);
  EXPECT_LT(mid, 0.999);
}

TEST(Channel, PrrDecreasesWithFrameLength) {
  sim::Rng rng(1);
  const Topology t = Topology::line(2, 5.0);
  const Channel ch(t, clean(), rng);
  const double short_prr = ch.prr(-94.0, 0.0, 16);
  const double long_prr = ch.prr(-94.0, 0.0, 127);
  EXPECT_GT(short_prr, long_prr);
}

TEST(Channel, InterferenceReducesPrr) {
  sim::Rng rng(1);
  const Topology t = Topology::line(2, 5.0);
  const Channel ch(t, clean(), rng);
  const double quiet = ch.prr(-90.0, 0.0, 64);
  const double noisy = ch.prr(-90.0, dbm_to_mw(-92.0), 64);
  EXPECT_GT(quiet, noisy);
}

TEST(Channel, UsableRangeIsRealistic) {
  sim::Rng rng(1);
  // 8 m apart: solid link; 60 m apart: dead link.
  const Topology t{{{0, 0}, {8, 0}, {60, 0}}};
  const Channel ch(t, clean(), rng);
  EXPECT_TRUE(ch.usable_link(0, 1));
  EXPECT_FALSE(ch.usable_link(0, 2));
}

TEST(Channel, HardRangeWallCutsLink) {
  sim::Rng rng(1);
  ChannelParams p = clean();
  p.hard_range_m = 10.0;
  p.hard_range_extra_loss_db = 60.0;
  const Topology t = Topology::line(2, 12.0);
  const Channel ch(t, p, rng);
  EXPECT_FALSE(ch.usable_link(0, 1));
}

TEST(Channel, ConnectivityMatrixMatchesUsableLink) {
  sim::Rng rng(2);
  const Topology t = Topology::flocklab26();
  const Channel ch(t, clean(), rng);
  const auto adj = ch.connectivity();
  for (NodeId a = 0; a < 26; a += 3) {
    for (NodeId b = 0; b < 26; b += 5) {
      EXPECT_EQ(adj[a][b], ch.usable_link(a, b));
    }
  }
  EXPECT_TRUE(Topology::is_connected(adj));
}

}  // namespace
}  // namespace han::net
