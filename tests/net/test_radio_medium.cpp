// Radio state machine, energy accounting, and medium arbitration
// (capture, CI combining, busy receivers, fault injection).
#include <gtest/gtest.h>

#include <memory>

#include "net/channel.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"

namespace han::net {
namespace {

struct Rig {
  explicit Rig(Topology topo, ChannelParams cp = clean(), std::uint64_t seed = 1)
      : topo_(std::move(topo)),
        rng_(seed),
        channel_(topo_, cp, rng_),
        medium_(sim_, channel_, rng_.stream("medium")) {
    for (std::size_t i = 0; i < topo_.size(); ++i) {
      radios_.push_back(
          std::make_unique<Radio>(sim_, medium_, static_cast<NodeId>(i)));
    }
  }

  static ChannelParams clean() {
    ChannelParams p;
    p.shadowing_sigma_db = 0.0;
    return p;
  }

  Frame frame(std::size_t len = 20) {
    Frame f;
    f.kind = FrameKind::kGlossyFlood;
    f.payload.assign(len, 0x5A);
    return f;
  }

  sim::Simulator sim_;
  Topology topo_;
  sim::Rng rng_;
  Channel channel_;
  Medium medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
};

TEST(Radio, FrameAirtime) {
  EXPECT_EQ(frame_airtime(0).us(), 6 * 32);
  EXPECT_EQ(frame_airtime(127).us(), (127 + 6) * 32);
}

TEST(Radio, StateTransitions) {
  Rig rig(Topology::line(2, 5.0));
  Radio& r = *rig.radios_[0];
  EXPECT_EQ(r.state(), Radio::State::kOff);
  r.listen();
  EXPECT_EQ(r.state(), Radio::State::kListen);
  r.transmit(rig.frame());
  EXPECT_EQ(r.state(), Radio::State::kTx);
  rig.sim_.run();
  EXPECT_EQ(r.state(), Radio::State::kListen);
  r.turn_off();
  EXPECT_EQ(r.state(), Radio::State::kOff);
}

TEST(Radio, TxDoneHandlerFires) {
  Rig rig(Topology::line(2, 5.0));
  bool done = false;
  rig.radios_[0]->set_tx_done_handler([&] { done = true; });
  rig.radios_[0]->transmit(rig.frame());
  rig.sim_.run();
  EXPECT_TRUE(done);
}

TEST(Medium, DeliversToListeningNeighbor) {
  Rig rig(Topology::line(2, 5.0));
  int got = 0;
  rig.radios_[1]->listen();
  rig.radios_[1]->set_receive_handler(
      [&](const Frame& f, const RxInfo& info) {
        ++got;
        EXPECT_EQ(f.source, 0);
        EXPECT_GT(info.rssi_dbm, -95.0);
      });
  rig.radios_[0]->transmit(rig.frame());
  rig.sim_.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rig.medium_.stats().deliveries, 1u);
}

TEST(Medium, NoDeliveryWhenRadioOff) {
  Rig rig(Topology::line(2, 5.0));
  int got = 0;
  rig.radios_[1]->set_receive_handler(
      [&](const Frame&, const RxInfo&) { ++got; });
  rig.radios_[0]->transmit(rig.frame());
  rig.sim_.run();
  EXPECT_EQ(got, 0);
}

TEST(Medium, LateListenerMissesFrame) {
  Rig rig(Topology::line(2, 5.0));
  int got = 0;
  rig.radios_[1]->set_receive_handler(
      [&](const Frame&, const RxInfo&) { ++got; });
  rig.radios_[0]->transmit(rig.frame());
  // Start listening a bit into the frame: header already missed.
  rig.sim_.schedule_after(sim::microseconds(100),
                          [&] { rig.radios_[1]->listen(); });
  rig.sim_.run();
  EXPECT_EQ(got, 0);
}

TEST(Medium, OutOfRangeNotDelivered) {
  Rig rig(Topology::line(2, 500.0));
  int got = 0;
  rig.radios_[1]->listen();
  rig.radios_[1]->set_receive_handler(
      [&](const Frame&, const RxInfo&) { ++got; });
  rig.radios_[0]->transmit(rig.frame());
  rig.sim_.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(rig.medium_.stats().reception_failures, 1u);
}

TEST(Medium, IdenticalConcurrentFramesCombine) {
  // Nodes 0 and 2 transmit the same content simultaneously; node 1 in
  // the middle decodes the CI-combined signal.
  Rig rig(Topology::line(3, 8.0));
  int got = 0;
  std::size_t combined = 0;
  rig.radios_[1]->listen();
  rig.radios_[1]->set_receive_handler(
      [&](const Frame&, const RxInfo& info) {
        ++got;
        combined = info.combined_transmitters;
      });
  rig.radios_[0]->transmit(rig.frame());
  rig.radios_[2]->transmit(rig.frame());
  rig.sim_.run();
  EXPECT_EQ(got, 1);  // one delivery, not two
  EXPECT_EQ(combined, 2u);
  EXPECT_EQ(rig.medium_.stats().ci_combined, 1u);
}

TEST(Medium, DifferentContentCollides) {
  // Equal-power different-content frames at the middle node: SINR ~0 dB
  // per frame => neither decodes.
  Rig rig(Topology::line(3, 8.0));
  int got = 0;
  rig.radios_[1]->listen();
  rig.radios_[1]->set_receive_handler(
      [&](const Frame&, const RxInfo&) { ++got; });
  Frame a = rig.frame();
  Frame b = rig.frame();
  b.payload[0] = 0xFF;
  rig.radios_[0]->transmit(a);
  rig.radios_[2]->transmit(b);
  rig.sim_.run();
  EXPECT_EQ(got, 0);
}

TEST(Medium, StrongerFrameCapturesWeaker) {
  // Node 1 sits next to node 0 (5 m) and far from node 2 (45 m): the
  // strong frame should capture despite the concurrent weak one.
  Rig rig(Topology{{{0, 0}, {5, 0}, {50, 0}}});
  int got = 0;
  rig.radios_[1]->listen();
  rig.radios_[1]->set_receive_handler(
      [&](const Frame& f, const RxInfo&) {
        ++got;
        EXPECT_EQ(f.source, 0);
      });
  Frame strong = rig.frame();
  Frame weak = rig.frame();
  weak.payload[0] = 0xFF;
  rig.radios_[0]->transmit(strong);
  rig.radios_[2]->transmit(weak);
  rig.sim_.run();
  EXPECT_EQ(got, 1);
}

TEST(Medium, CiGainIsCapped) {
  // Many equidistant same-content transmitters must not produce
  // unbounded combining gain: a far receiver still fails.
  Topology::LinkPredicate unused{};
  (void)unused;
  std::vector<Point> pts;
  for (int i = 0; i < 8; ++i) pts.push_back({static_cast<double>(i), 0.0});
  pts.push_back({60.0, 0.0});  // far receiver
  Rig rig(Topology{std::move(pts)});
  int got = 0;
  rig.radios_[8]->listen();
  rig.radios_[8]->set_receive_handler(
      [&](const Frame&, const RxInfo&) { ++got; });
  for (int i = 0; i < 8; ++i) rig.radios_[static_cast<NodeId>(i)]->transmit(rig.frame());
  rig.sim_.run();
  EXPECT_EQ(got, 0);
}

TEST(Medium, ForcedDropRateDropsEverything) {
  Rig rig(Topology::line(2, 5.0));
  rig.medium_.set_forced_drop_rate(1.0);
  int got = 0;
  rig.radios_[1]->listen();
  rig.radios_[1]->set_receive_handler(
      [&](const Frame&, const RxInfo&) { ++got; });
  rig.radios_[0]->transmit(rig.frame());
  rig.sim_.run();
  EXPECT_EQ(got, 0);
}

TEST(Medium, BusyReceiverSkipsSecondFrame) {
  // Frame B (from farther away, overlapping A) must not be decoded:
  // the receiver locks onto the stronger A and is busy for B's header.
  Rig rig(Topology{{{0, 0}, {5, 0}, {17, 0}}});
  int got = 0;
  rig.radios_[1]->listen();
  rig.radios_[1]->set_receive_handler(
      [&](const Frame& f, const RxInfo&) {
        ++got;
        EXPECT_EQ(f.source, 0);
      });
  Frame a = rig.frame();
  Frame b = rig.frame(60);
  b.payload[0] = 0x11;
  rig.radios_[0]->transmit(a);
  // Overlap: B starts before A's end.
  rig.sim_.schedule_after(sim::microseconds(200), [&] {
    rig.radios_[2]->transmit(b);
  });
  rig.sim_.run();
  // A decodes (strong, first, SIR above capture threshold); B fails.
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rig.medium_.stats().receiver_busy, 1u);
}

TEST(Radio, EnergyMeterAccumulates) {
  EnergyMeter m;
  m.accumulate(1, sim::seconds(3600));  // 1 h listening
  EXPECT_NEAR(m.total_mah(), 18.8, 1e-6);
  EXPECT_NEAR(m.total_mj(), 18.8 * 3600 * 3.0, 1e-3);
  EXPECT_NEAR(m.duty_cycle(), 1.0, 1e-12);
  m.accumulate(0, sim::seconds(3600));
  EXPECT_NEAR(m.duty_cycle(), 0.5, 1e-12);
}

TEST(Radio, CountersTrackTraffic) {
  Rig rig(Topology::line(2, 5.0));
  rig.radios_[1]->listen();
  rig.radios_[0]->transmit(rig.frame());
  rig.sim_.run();
  EXPECT_EQ(rig.radios_[0]->frames_sent(), 1u);
  EXPECT_EQ(rig.radios_[1]->frames_received(), 1u);
}

}  // namespace
}  // namespace han::net
