// Frame model and byte-level serialization.
#include <gtest/gtest.h>

#include <stdexcept>

#include "net/packet.hpp"

namespace han::net {
namespace {

TEST(Packet, PsduIncludesMacOverhead) {
  Frame f;
  f.payload = {1, 2, 3};
  EXPECT_EQ(f.psdu_bytes(), 14u);  // 3 + 11 MAC bytes
}

TEST(Packet, SameContentComparesPayloadAndKind) {
  Frame a, b;
  a.kind = b.kind = FrameKind::kMiniCastChunk;
  a.payload = b.payload = {1, 2, 3};
  a.source = 1;
  b.source = 9;  // source does not affect content identity
  EXPECT_TRUE(a.same_content(b));
  b.payload[1] = 7;
  EXPECT_FALSE(a.same_content(b));
  b.payload = a.payload;
  b.kind = FrameKind::kGlossyFlood;
  EXPECT_FALSE(a.same_content(b));
}

TEST(ByteWriter, RoundTripsAllWidths) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  const auto bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.done());
}

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 0x02);
  EXPECT_EQ(b[1], 0x01);
}

TEST(ByteWriter, CapacityEnforced) {
  ByteWriter w(4);
  w.u32(1);
  EXPECT_EQ(w.remaining(), 0u);
  EXPECT_THROW(w.u8(1), std::length_error);
}

TEST(ByteReader, TruncationDetected) {
  const std::vector<std::uint8_t> buf{1, 2};
  ByteReader r(buf);
  EXPECT_EQ(r.u16(), 0x0201);
  EXPECT_THROW(r.u8(), std::out_of_range);
}

TEST(ByteReader, RemainingTracksPosition) {
  const std::vector<std::uint8_t> buf{1, 2, 3, 4, 5};
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 5u);
  r.u32();
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_FALSE(r.done());
  r.u8();
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace han::net
