// RoutingTree: structure, determinism, congestion profile.
#include <gtest/gtest.h>

#include "net/routing.hpp"
#include "net/topology.hpp"

namespace han::net {
namespace {

ChannelParams clean() {
  ChannelParams p;
  p.shadowing_sigma_db = 0.0;
  return p;
}

TEST(Routing, LineTreeIsAChain) {
  sim::Rng rng(1);
  const Topology topo = Topology::line(5, 15.0);
  const Channel ch(topo, clean(), rng);
  const RoutingTree t = RoutingTree::shortest_path(ch, 0);
  EXPECT_EQ(t.sink(), 0);
  EXPECT_EQ(t.parent(0), kInvalidNode);
  EXPECT_EQ(t.parent(1), 0);
  EXPECT_EQ(t.parent(2), 1);
  EXPECT_EQ(t.hops(4), 4u);
  EXPECT_EQ(t.depth(), 4u);
}

TEST(Routing, Flocklab26FullyReachable) {
  sim::Rng rng(1);
  const Topology topo = Topology::flocklab26();
  const Channel ch(topo, clean(), rng);
  const RoutingTree t = RoutingTree::shortest_path(ch, 0);
  for (NodeId v = 0; v < 26; ++v) {
    EXPECT_TRUE(t.reachable(v)) << "node " << v;
  }
  EXPECT_GE(t.depth(), 2u);
  EXPECT_LE(t.depth(), 6u);
}

TEST(Routing, ParentIsOneHopCloser) {
  sim::Rng rng(1);
  const Topology topo = Topology::flocklab26();
  const Channel ch(topo, clean(), rng);
  const RoutingTree t = RoutingTree::shortest_path(ch, 0);
  for (NodeId v = 1; v < 26; ++v) {
    ASSERT_TRUE(t.reachable(v));
    EXPECT_EQ(t.hops(v), t.hops(t.parent(v)) + 1);
    EXPECT_TRUE(ch.usable_link(v, t.parent(v)));
  }
}

TEST(Routing, Deterministic) {
  sim::Rng rng(1);
  const Topology topo = Topology::flocklab26();
  const Channel ch(topo, clean(), rng);
  const RoutingTree a = RoutingTree::shortest_path(ch, 0);
  const RoutingTree b = RoutingTree::shortest_path(ch, 0);
  for (NodeId v = 0; v < 26; ++v) EXPECT_EQ(a.parent(v), b.parent(v));
}

TEST(Routing, ChildrenInverseOfParent) {
  sim::Rng rng(1);
  const Topology topo = Topology::line(4, 15.0);
  const Channel ch(topo, clean(), rng);
  const RoutingTree t = RoutingTree::shortest_path(ch, 0);
  EXPECT_EQ(t.children(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(t.children(1), (std::vector<NodeId>{2}));
  EXPECT_TRUE(t.children(3).empty());
}

TEST(Routing, SubtreeSizesSumAtSink) {
  sim::Rng rng(1);
  const Topology topo = Topology::flocklab26();
  const Channel ch(topo, clean(), rng);
  const RoutingTree t = RoutingTree::shortest_path(ch, 0);
  const auto sizes = t.subtree_sizes();
  EXPECT_EQ(sizes[0], 25u);  // everything routes through the root
}

TEST(Routing, UnreachableNodesMarked) {
  sim::Rng rng(1);
  const Topology topo = Topology::line(3, 400.0);  // disconnected
  const Channel ch(topo, clean(), rng);
  const RoutingTree t = RoutingTree::shortest_path(ch, 0);
  EXPECT_FALSE(t.reachable(1));
  EXPECT_FALSE(t.reachable(2));
  EXPECT_EQ(t.parent(2), kInvalidNode);
}

}  // namespace
}  // namespace han::net
