// CSMA/CA MAC: delivery, ACKs, retries, backoff under contention,
// queue bounds.
#include <gtest/gtest.h>

#include <memory>

#include "net/channel.hpp"
#include "net/csma.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"

namespace han::net {
namespace {

struct CsmaRig {
  explicit CsmaRig(Topology topo, std::uint64_t seed = 1)
      : topo_(std::move(topo)),
        rng_(seed),
        channel_(topo_, clean(), rng_),
        medium_(sim_, channel_, rng_.stream("medium")) {
    for (std::size_t i = 0; i < topo_.size(); ++i) {
      radios_.push_back(
          std::make_unique<Radio>(sim_, medium_, static_cast<NodeId>(i)));
      macs_.push_back(std::make_unique<CsmaMac>(
          sim_, *radios_.back(), CsmaParams{}, rng_.stream("mac", i)));
    }
  }

  static ChannelParams clean() {
    ChannelParams p;
    p.shadowing_sigma_db = 0.0;
    return p;
  }

  sim::Simulator sim_;
  Topology topo_;
  sim::Rng rng_;
  Channel channel_;
  Medium medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
};

TEST(Csma, DeliversAndAcks) {
  CsmaRig rig(Topology::line(2, 8.0));
  std::vector<std::uint8_t> got;
  bool ok = false;
  rig.macs_[1]->set_receive_handler(
      [&](NodeId src, const std::vector<std::uint8_t>& p) {
        EXPECT_EQ(src, 0);
        got = p;
      });
  rig.macs_[0]->send(1, {0xDE, 0xAD}, [&](bool delivered) { ok = delivered; });
  rig.sim_.run_until(rig.sim_.now() + sim::milliseconds(100));
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, (std::vector<std::uint8_t>{0xDE, 0xAD}));
  EXPECT_EQ(rig.macs_[0]->stats().sent_ok, 1u);
  EXPECT_EQ(rig.macs_[1]->stats().rx_data_frames, 1u);
}

TEST(Csma, OtherDestinationsFiltered) {
  CsmaRig rig(Topology::line(3, 8.0));
  int got2 = 0;
  rig.macs_[2]->set_receive_handler(
      [&](NodeId, const std::vector<std::uint8_t>&) { ++got2; });
  rig.macs_[0]->send(1, {1});
  rig.sim_.run_until(rig.sim_.now() + sim::milliseconds(100));
  EXPECT_EQ(got2, 0);  // node 2 overhears but must filter
}

TEST(Csma, RetriesExhaustOnDeadLink) {
  CsmaRig rig(Topology::line(2, 500.0));  // out of range
  bool result = true;
  rig.macs_[0]->send(1, {7}, [&](bool ok) { result = ok; });
  rig.sim_.run_until(rig.sim_.now() + sim::seconds(1));
  EXPECT_FALSE(result);
  const CsmaStats& s = rig.macs_[0]->stats();
  EXPECT_EQ(s.drops_retries, 1u);
  // 1 original + max_frame_retries retransmissions.
  EXPECT_EQ(s.tx_data_frames, 1u + CsmaParams{}.max_frame_retries);
}

TEST(Csma, LostAckCausesDuplicateSuppressedRetransmission) {
  CsmaRig rig(Topology::line(2, 8.0));
  rig.medium_.set_forced_drop_rate(0.5);  // some acks/data will drop
  int delivered_payloads = 0;
  rig.macs_[1]->set_receive_handler(
      [&](NodeId, const std::vector<std::uint8_t>&) {
        ++delivered_payloads;
      });
  int done_count = 0;
  for (int i = 0; i < 10; ++i) {
    rig.macs_[0]->send(1, {static_cast<std::uint8_t>(i)},
                       [&](bool) { ++done_count; });
  }
  rig.sim_.run_until(rig.sim_.now() + sim::seconds(5));
  EXPECT_EQ(done_count, 10);
  // Duplicates (data resent because the ACK dropped) must not be
  // delivered twice to the application.
  EXPECT_LE(delivered_payloads, 10);
}

TEST(Csma, ContendersBothSucceed) {
  // Three nodes in range: 0 and 2 both send to 1 at the same instant;
  // CSMA backoff + retries must get both through.
  CsmaRig rig(Topology::line(3, 8.0));
  int got = 0;
  rig.macs_[1]->set_receive_handler(
      [&](NodeId, const std::vector<std::uint8_t>&) { ++got; });
  bool ok0 = false, ok2 = false;
  rig.macs_[0]->send(1, {1}, [&](bool ok) { ok0 = ok; });
  rig.macs_[2]->send(1, {2}, [&](bool ok) { ok2 = ok; });
  rig.sim_.run_until(rig.sim_.now() + sim::seconds(1));
  EXPECT_TRUE(ok0);
  EXPECT_TRUE(ok2);
  EXPECT_EQ(got, 2);
}

TEST(Csma, ManyContendersMostlySucceed) {
  // A dense neighborhood pushing to node 0 with millisecond-scale
  // staggering (realistic offered load): CCA serializes the channel and
  // most frames get through.
  CsmaRig rig(Topology::grid(3, 3, 8.0));
  int got = 0;
  rig.macs_[0]->set_receive_handler(
      [&](NodeId, const std::vector<std::uint8_t>&) { ++got; });
  int delivered = 0;
  for (NodeId n = 1; n < 9; ++n) {
    rig.sim_.schedule_after(sim::milliseconds(5 * n), [&, n]() {
      rig.macs_[n]->send(0, {static_cast<std::uint8_t>(n)},
                         [&](bool ok) { delivered += ok; });
    });
  }
  rig.sim_.run_until(rig.sim_.now() + sim::seconds(2));
  EXPECT_GE(delivered, 6);
  EXPECT_GE(got, delivered);
}

TEST(Csma, SimultaneousBurstIsTheWorstCase) {
  // The same eight contenders submitting at the *same instant* lose a
  // large fraction to collisions — the fragility the paper's §I argues
  // synchronized transmissions avoid.
  CsmaRig rig(Topology::grid(3, 3, 8.0));
  int delivered = 0;
  for (NodeId n = 1; n < 9; ++n) {
    rig.macs_[n]->send(0, {static_cast<std::uint8_t>(n)},
                       [&](bool ok) { delivered += ok; });
  }
  rig.sim_.run_until(rig.sim_.now() + sim::seconds(2));
  EXPECT_LT(delivered, 8);
}

TEST(Csma, QueueOverflowCountsDrops) {
  CsmaRig rig(Topology::line(2, 8.0));
  for (int i = 0; i < 80; ++i) {
    rig.macs_[0]->send(1, {static_cast<std::uint8_t>(i)});
  }
  // Default queue_limit = 64: the tail must be dropped immediately.
  EXPECT_GT(rig.macs_[0]->stats().drops_queue, 0u);
}

TEST(Csma, QueueDrainsInOrder) {
  CsmaRig rig(Topology::line(2, 8.0));
  std::vector<std::uint8_t> order;
  rig.macs_[1]->set_receive_handler(
      [&](NodeId, const std::vector<std::uint8_t>& p) {
        order.push_back(p[0]);
      });
  for (std::uint8_t i = 0; i < 5; ++i) rig.macs_[0]->send(1, {i});
  rig.sim_.run_until(rig.sim_.now() + sim::seconds(1));
  EXPECT_EQ(order, (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace han::net
