// Topology builders and graph analysis.
#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace han::net {
namespace {

TEST(Topology, LinePlacement) {
  const Topology t = Topology::line(4, 10.0);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t.distance_between(0, 3), 30.0);
  EXPECT_DOUBLE_EQ(t.distance_between(1, 2), 10.0);
}

TEST(Topology, GridPlacement) {
  const Topology t = Topology::grid(3, 2, 5.0);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_DOUBLE_EQ(t.distance_between(0, 2), 10.0);  // same row
  EXPECT_DOUBLE_EQ(t.distance_between(0, 3), 5.0);   // same column
}

TEST(Topology, RingPlacement) {
  const Topology t = Topology::ring(8, 10.0);
  ASSERT_EQ(t.size(), 8u);
  // All nodes equidistant from the centre.
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_NEAR(distance(t.position(i), {0, 0}), 10.0, 1e-9);
  }
  // Opposite nodes are a diameter apart.
  EXPECT_NEAR(t.distance_between(0, 4), 20.0, 1e-9);
}

TEST(Topology, RandomUniformInBounds) {
  sim::Rng rng(5);
  const Topology t = Topology::random_uniform(50, 60.0, 35.0, rng);
  ASSERT_EQ(t.size(), 50u);
  for (const Point& p : t.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 60.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 35.0);
  }
}

TEST(Topology, Flocklab26Shape) {
  const Topology t = Topology::flocklab26();
  ASSERT_EQ(t.size(), 26u);
  EXPECT_GT(t.extent(), 40.0);  // office-floor scale
  EXPECT_LT(t.extent(), 80.0);
}

TEST(Topology, Flocklab26ConnectedAt20m) {
  const Topology t = Topology::flocklab26();
  const auto adj = t.adjacency_within(20.0);
  EXPECT_TRUE(Topology::is_connected(adj));
}

TEST(Topology, Flocklab26MultiHopAt20m) {
  const Topology t = Topology::flocklab26();
  const auto adj = t.adjacency_within(20.0);
  const std::size_t d = Topology::diameter(adj);
  EXPECT_GE(d, 3u);
  EXPECT_LE(d, 7u);
}

TEST(Topology, HopCountsFromSource) {
  const Topology t = Topology::line(5, 10.0);
  const auto adj = t.adjacency_within(10.5);
  const auto hops = Topology::hop_counts(adj, 0);
  EXPECT_EQ(hops, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Topology, DisconnectedDetected) {
  const Topology t = Topology::line(3, 100.0);
  const auto adj = t.adjacency_within(50.0);
  EXPECT_FALSE(Topology::is_connected(adj));
  EXPECT_EQ(Topology::diameter(adj), SIZE_MAX);
}

TEST(Topology, ExtentOfEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Topology{}.extent(), 0.0);
  const Topology single{{{3, 4}}};
  EXPECT_DOUBLE_EQ(single.extent(), 0.0);
}

}  // namespace
}  // namespace han::net
