// Property-based seed sweeps over the full system (abstract CP): the
// paper's claims and this library's invariants, asserted across many
// independent workloads rather than one lucky seed.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace han::core {
namespace {

using appliance::ArrivalScenario;

ExperimentConfig cfg_for(ArrivalScenario s, SchedulerKind k,
                         std::uint64_t seed) {
  ExperimentConfig cfg = paper_config(s, k, seed);
  cfg.han.fidelity = CpFidelity::kAbstract;
  return cfg;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CoordinatedNeverWorseOnPeak) {
  const auto un = run_experiment(
      cfg_for(ArrivalScenario::kHigh, SchedulerKind::kUncoordinated,
              GetParam()));
  const auto co = run_experiment(
      cfg_for(ArrivalScenario::kHigh, SchedulerKind::kCoordinated,
              GetParam()));
  // Across seeds, coordination must never *increase* the peak by more
  // than one device (transient claim imbalance).
  EXPECT_LE(co.peak_kw, un.peak_kw + 1.0) << "seed " << GetParam();
}

TEST_P(SeedSweep, NoConstraintViolationsAnySeed) {
  for (SchedulerKind k :
       {SchedulerKind::kCoordinated, SchedulerKind::kUncoordinated}) {
    const auto r =
        run_experiment(cfg_for(ArrivalScenario::kHigh, k, GetParam()));
    EXPECT_EQ(r.network.min_dcd_violations, 0u)
        << to_string(k) << " seed " << GetParam();
    EXPECT_EQ(r.network.service_gap_violations, 0u)
        << to_string(k) << " seed " << GetParam();
  }
}

TEST_P(SeedSweep, EnergyParityWithinHorizonTolerance) {
  const auto un = run_experiment(
      cfg_for(ArrivalScenario::kModerate, SchedulerKind::kUncoordinated,
              GetParam()));
  const auto co = run_experiment(
      cfg_for(ArrivalScenario::kModerate, SchedulerKind::kCoordinated,
              GetParam()));
  // Same requests => same energy, up to bursts deferred past the
  // sampling horizon (< ~12%).
  EXPECT_NEAR(co.mean_kw, un.mean_kw, un.mean_kw * 0.12 + 0.05)
      << "seed " << GetParam();
}

TEST_P(SeedSweep, LoadNeverExceedsPhysicalBound) {
  const auto r = run_experiment(
      cfg_for(ArrivalScenario::kHigh, SchedulerKind::kCoordinated,
              GetParam()));
  for (double v : r.load.values()) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 26.0);
  }
}

TEST_P(SeedSweep, LoadStepsAreSmallUnderCoordination) {
  // The paper: "total load thus increases in small steps". Rising steps
  // are bounded by a handful of devices even at the high rate (window
  // cohorts turn over at boundaries, arrivals add one at a time).
  const auto co = run_experiment(
      cfg_for(ArrivalScenario::kHigh, SchedulerKind::kCoordinated,
              GetParam()));
  double max_rise = 0.0;
  const auto& v = co.load.values();
  for (std::size_t i = 1; i < v.size(); ++i) {
    max_rise = std::max(max_rise, v[i] - v[i - 1]);
  }
  EXPECT_LE(max_rise, 8.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// The headline comparison must hold on aggregate over replicas even if
// a single seed is unlucky.
TEST(Aggregate, PeakAndSigmaReductionsOverReplicas) {
  ExperimentConfig un =
      cfg_for(ArrivalScenario::kHigh, SchedulerKind::kUncoordinated, 1);
  ExperimentConfig co =
      cfg_for(ArrivalScenario::kHigh, SchedulerKind::kCoordinated, 1);
  const ReplicatedResult run = run_replicated(un, 6);
  const ReplicatedResult rco = run_replicated(co, 6);
  EXPECT_LT(rco.peak_kw.mean(), run.peak_kw.mean() * 0.8)
      << "expected >=20% mean peak reduction across seeds";
  EXPECT_LT(rco.std_kw.mean(), run.std_kw.mean() * 0.9)
      << "expected >=10% mean sigma reduction across seeds";
}

TEST(Aggregate, ReductionGrowsWithRate) {
  // Fig 2(b)'s trend, asserted on 4-seed means: high-rate reduction
  // exceeds low-rate reduction.
  auto reduction_at = [](ArrivalScenario s) {
    const auto un = run_replicated(
        cfg_for(s, SchedulerKind::kUncoordinated, 1), 4);
    const auto co = run_replicated(
        cfg_for(s, SchedulerKind::kCoordinated, 1), 4);
    return (un.peak_kw.mean() - co.peak_kw.mean()) / un.peak_kw.mean();
  };
  EXPECT_GT(reduction_at(ArrivalScenario::kHigh),
            reduction_at(ArrivalScenario::kLow) - 0.05);
}

}  // namespace
}  // namespace han::core
