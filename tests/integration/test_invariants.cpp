// Cross-mode invariant harness for the closed-loop grid engine.
//
// The configuration matrix grew three independent axes on top of the
// premise/seed space: shard count K, control mode (polled vs
// event-driven), and tie-switch transfers (on vs off). Every cell must
// uphold the same conservation properties, so this harness sweeps
// seeds x K in {1,2,4,8} x both modes x transfers on/off and asserts,
// for every run:
//
//   * energy conservation — the summed premise series IS the
//     substation series (no premise's energy is lost or double-counted
//     by sharding or migration);
//   * exclusive service — replaying the transfer log from the planned
//     shard assignment, every premise is served by exactly one feeder
//     at any instant, transfers lend only home premises, give-backs
//     return them to their home feeder, and the end-of-run membership
//     matches the per-feeder outcomes;
//   * routing integrity — grid_signals_misrouted == 0 at every
//     premise, transfers included;
//   * DR accounting sanity — every time integral is non-negative and
//     bounded by the horizon.
//
// A second group pins event-mode accounting fidelity against polled
// (the PR 4 follow-up): the shed-active and unserved-shed integrals
// are coarser under event barriers, and the pinned tolerance is the
// contract that transfer work cannot silently widen the gap.
// A third group sweeps the fidelity-policy axis (PR 6): every premise
// tier mix — all-full, all-device, all-statistical and a stratified
// 50/50 — must uphold the exact same conservation/routing/accounting
// invariants in every (K, mode) cell, and a mixed-fidelity fleet must
// stay byte-identical across executor widths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "fidelity/fidelity.hpp"
#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"

namespace han::fleet {
namespace {

/// tie_switch shrunk to harness size: 10 premises, 6 h. Small shards
/// against thin capacity shares, so sheds and transfers both fire
/// inside the window.
FleetConfig harness_config(std::uint64_t seed, std::size_t feeders,
                           ControlMode mode, bool transfers) {
  FleetConfig cfg = make_scenario(ScenarioKind::kTieSwitch, 10, seed);
  cfg.horizon = sim::hours(6);
  cfg.round_period = sim::seconds(30);
  cfg.feeder_count = feeders;
  cfg.grid.control_mode = mode;
  cfg.grid.tie.enabled = transfers;
  return cfg;
}

double series_sum(const metrics::TimeSeries& s) {
  double sum = 0.0;
  for (const double v : s.values()) sum += v;
  return sum;
}

void check_energy_conservation(const GridFleetResult& r) {
  // Same grid, so equal sums == equal energy. The feeder series is
  // the index-ordered premise sum; shards partition it.
  double premise_sum = 0.0;
  for (const PremiseResult& p : r.fleet.premises) {
    premise_sum += series_sum(p.load);
  }
  const double feeder_sum = series_sum(r.fleet.feeder_load);
  EXPECT_NEAR(premise_sum, feeder_sum,
              1e-9 * std::max(1.0, std::abs(feeder_sum)));

  double shard_sum = 0.0;
  for (const FeederShard& s : r.fleet.shards) shard_sum += series_sum(s.load);
  EXPECT_NEAR(shard_sum, feeder_sum,
              1e-9 * std::max(1.0, std::abs(feeder_sum)));
}

void check_exclusive_service(const FleetEngine& engine,
                             const GridFleetResult& r) {
  // Replay the transfer log over the planned assignment: one serving
  // feeder per premise at all times, moves always consistent.
  const std::size_t n = engine.config().premise_count;
  std::vector<std::size_t> home(n);
  std::vector<std::size_t> serving(n);
  for (std::size_t i = 0; i < n; ++i) {
    home[i] = engine.feeder_of(i);
    serving[i] = home[i];
  }
  for (const grid::TieEvent& ev : r.transfers) {
    for (const std::size_t p : ev.premises) {
      ASSERT_LT(p, n);
      // The move starts where the premise actually is...
      EXPECT_EQ(serving[p], ev.from) << "premise " << p;
      // ...and only home premises travel; give-backs go home.
      if (ev.give_back) {
        EXPECT_EQ(ev.to, home[p]) << "premise " << p;
      } else {
        EXPECT_EQ(ev.from, home[p]) << "premise " << p;
      }
      serving[p] = ev.to;
    }
  }
  // End-of-run membership matches the replay, feeder by feeder.
  std::vector<std::size_t> count(r.feeders.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_LT(serving[i], count.size());
    ++count[serving[i]];
  }
  std::size_t total = 0;
  for (std::size_t k = 0; k < r.feeders.size(); ++k) {
    EXPECT_EQ(r.feeders[k].premises, count[k]) << "feeder " << k;
    total += r.feeders[k].premises;
  }
  EXPECT_EQ(total, n);
}

void check_routing_integrity(const GridFleetResult& r) {
  for (const PremiseResult& p : r.fleet.premises) {
    EXPECT_EQ(p.network.grid_signals_misrouted, 0u) << p.index;
  }
}

void check_dr_integrals(const GridFleetResult& r, sim::Duration horizon) {
  const double horizon_min = horizon.minutes_f();
  double active = 0.0;
  double unserved = 0.0;
  double latency = 0.0;
  for (const FeederOutcome& fo : r.feeders) {
    EXPECT_GE(fo.dr.shed_active_minutes, 0.0) << fo.feeder;
    EXPECT_LE(fo.dr.shed_active_minutes, horizon_min + 1e-9) << fo.feeder;
    EXPECT_GE(fo.dr.unserved_shed_kw_minutes, 0.0) << fo.feeder;
    EXPECT_GE(fo.dr.total_shed_latency_minutes, 0.0) << fo.feeder;
    EXPECT_GE(fo.overload_minutes, 0.0) << fo.feeder;
    EXPECT_GE(fo.hot_minutes, 0.0) << fo.feeder;
    active += fo.dr.shed_active_minutes;
    unserved += fo.dr.unserved_shed_kw_minutes;
    latency += fo.dr.total_shed_latency_minutes;
  }
  // The fleet roll-up is exactly the per-feeder sum.
  EXPECT_DOUBLE_EQ(r.dr.shed_active_minutes, active);
  EXPECT_DOUBLE_EQ(r.dr.unserved_shed_kw_minutes, unserved);
  EXPECT_DOUBLE_EQ(r.dr.total_shed_latency_minutes, latency);
}

TEST(Invariants, HoldAcrossSeedsShardsModesAndTransfers) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    for (const std::size_t feeders : {1u, 2u, 4u, 8u}) {
      for (const ControlMode mode :
           {ControlMode::kPolled, ControlMode::kEventDriven}) {
        for (const bool transfers : {false, true}) {
          SCOPED_TRACE(::testing::Message()
                       << "seed=" << seed << " K=" << feeders << " mode="
                       << (mode == ControlMode::kPolled ? "polled" : "event")
                       << " transfers=" << transfers);
          const FleetConfig cfg =
              harness_config(seed, feeders, mode, transfers);
          const FleetEngine engine(cfg);
          const GridFleetResult r = engine.run_grid(2);

          check_energy_conservation(r);
          check_exclusive_service(engine, r);
          check_routing_integrity(r);
          check_dr_integrals(r, cfg.horizon);

          if (!transfers || feeders == 1) {
            EXPECT_TRUE(r.transfers.empty());
            EXPECT_EQ(r.fleet.substation.tie_switch_operations, 0u);
            EXPECT_EQ(r.fleet.substation.transferred_energy_kwh, 0.0);
          }
        }
      }
    }
  }
}

TEST(Invariants, HoldAcrossFidelityTiers) {
  // Same invariants, fidelity axis: each tier mix through both control
  // modes and shard counts, transfers on (the harshest routing case).
  for (const char* flag : {"full", "device", "stat", "mixed:0.5"}) {
    for (const std::size_t feeders : {1u, 4u}) {
      for (const ControlMode mode :
           {ControlMode::kPolled, ControlMode::kEventDriven}) {
        SCOPED_TRACE(::testing::Message()
                     << "fidelity=" << flag << " K=" << feeders << " mode="
                     << (mode == ControlMode::kPolled ? "polled" : "event"));
        FleetConfig cfg = harness_config(1, feeders, mode, true);
        const auto policy = fidelity::policy_from_flag(flag);
        ASSERT_TRUE(policy.has_value());
        cfg.fidelity = *policy;
        const FleetEngine engine(cfg);
        const GridFleetResult r = engine.run_grid(2);

        check_energy_conservation(r);
        check_exclusive_service(engine, r);
        check_routing_integrity(r);
        check_dr_integrals(r, cfg.horizon);
      }
    }
  }
}

TEST(Invariants, MixedFidelityByteIdenticalAcrossThreads) {
  // A stratified full+statistical fleet must produce bit-equal output
  // for any executor width, exactly like the all-full engine does.
  for (const ControlMode mode :
       {ControlMode::kPolled, ControlMode::kEventDriven}) {
    SCOPED_TRACE(mode == ControlMode::kPolled ? "polled" : "event");
    FleetConfig cfg = harness_config(1, 4, mode, true);
    cfg.fidelity = *fidelity::policy_from_flag("mixed:0.5");
    const FleetEngine engine(cfg);
    const GridFleetResult a = engine.run_grid(1);
    const GridFleetResult b = engine.run_grid(4);

    EXPECT_EQ(a.signal_log_csv, b.signal_log_csv);
    ASSERT_EQ(a.fleet.feeder_load.size(), b.fleet.feeder_load.size());
    for (std::size_t i = 0; i < a.fleet.feeder_load.size(); ++i) {
      ASSERT_EQ(a.fleet.feeder_load.at(i), b.fleet.feeder_load.at(i)) << i;
    }
    ASSERT_EQ(a.fleet.premises.size(), b.fleet.premises.size());
    for (std::size_t p = 0; p < a.fleet.premises.size(); ++p) {
      ASSERT_EQ(a.fleet.premises[p].load.values(),
                b.fleet.premises[p].load.values())
          << "premise " << p;
    }
  }
}

TEST(Invariants, TransfersActuallyFireSomewhereInTheMatrix) {
  // The sweep above must not pass vacuously: at least one transferring
  // cell has to produce tie traffic in each control mode.
  for (const ControlMode mode :
       {ControlMode::kPolled, ControlMode::kEventDriven}) {
    std::uint64_t transfers = 0;
    for (const std::uint64_t seed : {1ull, 2ull}) {
      for (const std::size_t feeders : {4u, 8u}) {
        const GridFleetResult r =
            FleetEngine(harness_config(seed, feeders, mode, true))
                .run_grid(2);
        transfers += r.fleet.substation.tie_transfers;
      }
    }
    EXPECT_GT(transfers, 0u)
        << (mode == ControlMode::kPolled ? "polled" : "event");
  }
}

// --- Event-mode accounting fidelity (ROADMAP PR 4 follow-up) ----------
//
// Event barriers attribute held load across observation gaps, so the
// DR time integrals are coarser than polled's — in one direction:
// excursions the controller never observed cannot enter an integral,
// so event mode under-counts and must never over-count. The adaptive
// observe_cap (shrink to observe_cap_near while a feeder idles inside
// the trigger band) bounds shed-onset detection latency, which is what
// lets these pins sit much tighter than the pre-adaptive ones (they
// were 0.6x / 1.35x+60 / 1.5x+60 / 6). The pinned contract on the
// harness preset:
//
//   * shed-active minutes stay within 30% of polled (+30 min floor).
//     Shed spans are deadline-anchored so a single shed tracks
//     closely, but WHICH sheds run can differ — sparse barriers see a
//     different load/transfer trajectory (observed up to ~1.21x
//     polled on this preset with transfers on);
//   * the unserved-shed integral never exceeds polled by more than
//     10% (+30 kW-min floor; observed at or below 1.0x with the
//     adaptive cap). No symmetric lower bound: between-barrier
//     excursions legitimately vanish (observed down to ~0.1x polled
//     on this preset), which is the documented PR 4 trade;
//   * turning transfers ON must not widen the |event - polled|
//     unserved gap beyond 1.0x the transfers-OFF gap (+30 kW-min) —
//     the regression guard this satellite exists for;
//   * shed counts stay within 3 (observed diff <= 2 per seed).
TEST(AccountingFidelity, EventIntegralsTrackPolledAcrossTransferModes) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    double unserved_gap[2] = {0.0, 0.0};
    for (const bool transfers : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "transfers=" << transfers);
      const GridFleetResult polled =
          FleetEngine(
              harness_config(seed, 4, ControlMode::kPolled, transfers))
              .run_grid(2);
      const GridFleetResult event =
          FleetEngine(
              harness_config(seed, 4, ControlMode::kEventDriven, transfers))
              .run_grid(2);

      EXPECT_NEAR(event.dr.shed_active_minutes,
                  polled.dr.shed_active_minutes,
                  std::max(0.3 * polled.dr.shed_active_minutes, 30.0))
          << "shed_active_minutes";
      EXPECT_LE(event.dr.unserved_shed_kw_minutes,
                1.1 * polled.dr.unserved_shed_kw_minutes + 30.0)
          << "unserved_shed_kw_minutes";
      EXPECT_GE(event.dr.unserved_shed_kw_minutes, 0.0);
      unserved_gap[transfers ? 1 : 0] =
          std::abs(event.dr.unserved_shed_kw_minutes -
                   polled.dr.unserved_shed_kw_minutes);

      const auto diff = [](std::uint64_t a, std::uint64_t b) {
        return a > b ? a - b : b - a;
      };
      // Observed up to 2 on this preset with the adaptive cap (sparse
      // barriers see a different transfer trajectory); 3 is the
      // pinned ceiling.
      EXPECT_LE(diff(event.dr.shed_signals, polled.dr.shed_signals), 3u);
    }
    EXPECT_LE(unserved_gap[1], 1.0 * unserved_gap[0] + 30.0)
        << "transfers widened the event-vs-polled unserved gap";
  }
}

}  // namespace
}  // namespace han::fleet
