// Full packet-level stack integration: the paper's system end to end on
// the flocklab26 preset (shortened horizon to keep the suite fast), plus
// robustness under node failure and forced loss.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace han::core {
namespace {

using appliance::ArrivalScenario;

ExperimentConfig packet_config(SchedulerKind k, std::uint64_t seed = 1) {
  ExperimentConfig cfg = paper_config(ArrivalScenario::kHigh, k, seed);
  cfg.workload.horizon = sim::minutes(60);  // shortened for test speed
  return cfg;
}

TEST(FullStack, PacketLevelHighRateRuns) {
  const auto r = run_experiment(packet_config(SchedulerKind::kCoordinated));
  EXPECT_GT(r.requests, 10u);
  EXPECT_GT(r.peak_kw, 0.0);
  EXPECT_GE(r.network.cp_mean_coverage, 0.98);
  EXPECT_EQ(r.network.min_dcd_violations, 0u);
  EXPECT_EQ(r.network.service_gap_violations, 0u);
}

TEST(FullStack, CpRadioDutyIsLow) {
  // The CP occupies ~1.4 s of every 2 s round at the PHY, but radios
  // sleep between their slots; duty must stay well under always-on.
  const auto r = run_experiment(packet_config(SchedulerKind::kCoordinated));
  EXPECT_GT(r.network.mean_radio_duty, 0.0);
  EXPECT_LT(r.network.mean_radio_duty, 0.9);
  EXPECT_GT(r.network.total_radio_mah, 0.0);
}

TEST(FullStack, PacketAndAbstractAgreeOnShape) {
  ExperimentConfig packet = packet_config(SchedulerKind::kCoordinated);
  ExperimentConfig abstract = packet;
  abstract.han.fidelity = CpFidelity::kAbstract;
  const auto rp = run_experiment(packet);
  const auto ra = run_experiment(abstract);
  // Same workload and policy: metrics agree closely (CP loss is rare).
  EXPECT_NEAR(rp.mean_kw, ra.mean_kw, 0.5);
  EXPECT_NEAR(rp.peak_kw, ra.peak_kw, 2.0);
}

TEST(FullStack, SurvivesNodeFailureMidRun) {
  ExperimentConfig cfg = packet_config(SchedulerKind::kCoordinated);
  sim::Simulator sim;
  HanNetwork net(sim, cfg.han);
  const sim::Rng root(cfg.han.seed);
  auto wp = cfg.workload;
  wp.warmup = cfg.cp_boot;
  net.inject_requests(
      appliance::WorkloadGenerator::generate(wp, root.stream("workload")));
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  sim.schedule_at(sim::TimePoint::epoch() + sim::minutes(20),
                  [&] { net.set_node_failed(7, true); });
  sim.run_until(sim::TimePoint::epoch() + sim::minutes(60));
  // The remaining 25 nodes keep exchanging state: no global stall.
  EXPECT_GE(net.minicast()->stats().mean_coverage(), 0.9);
}

TEST(FullStack, ForcedLossDegradesCoverageNotCorrectness) {
  ExperimentConfig cfg = packet_config(SchedulerKind::kCoordinated);
  sim::Simulator sim;
  HanNetwork net(sim, cfg.han);
  // Note: forced drop applies at the PHY; scheduling must stay sane.
  const sim::Rng root(cfg.han.seed);
  auto wp = cfg.workload;
  wp.warmup = cfg.cp_boot;
  net.inject_requests(
      appliance::WorkloadGenerator::generate(wp, root.stream("workload")));
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  sim.run_until(sim::TimePoint::epoch() + sim::minutes(60));
  EXPECT_EQ(net.stats().min_dcd_violations, 0u);
}

TEST(FullStack, StaleViewsOnlySkewBalanceNeverConflict) {
  // Abstract CP at 80% reliability: devices act on stale views. The
  // slot-ledger design guarantees no minDCD violations can result.
  ExperimentConfig cfg = packet_config(SchedulerKind::kCoordinated);
  cfg.han.fidelity = CpFidelity::kAbstract;
  cfg.han.abstract_reliability = 0.8;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.network.min_dcd_violations, 0u);
  EXPECT_GT(r.network.stale_view_rounds, 0u);
  EXPECT_EQ(r.network.service_gap_violations, 0u);
}

}  // namespace
}  // namespace han::core
