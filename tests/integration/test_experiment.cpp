// End-to-end experiment runs (abstract CP for speed) asserting the
// paper's headline properties hold in-system, plus determinism and the
// audit invariants.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace han::core {
namespace {

using appliance::ArrivalScenario;

ExperimentConfig fast_config(ArrivalScenario scenario, SchedulerKind k,
                             std::uint64_t seed = 1) {
  ExperimentConfig cfg = paper_config(scenario, k, seed);
  cfg.han.fidelity = CpFidelity::kAbstract;
  return cfg;
}

TEST(Experiment, DeterministicPerSeed) {
  const auto a =
      run_experiment(fast_config(ArrivalScenario::kHigh,
                                 SchedulerKind::kCoordinated, 5));
  const auto b =
      run_experiment(fast_config(ArrivalScenario::kHigh,
                                 SchedulerKind::kCoordinated, 5));
  EXPECT_EQ(a.load.values(), b.load.values());
  EXPECT_EQ(a.requests, b.requests);
}

TEST(Experiment, SeedsProduceDifferentTraces) {
  const auto a =
      run_experiment(fast_config(ArrivalScenario::kHigh,
                                 SchedulerKind::kCoordinated, 1));
  const auto b =
      run_experiment(fast_config(ArrivalScenario::kHigh,
                                 SchedulerKind::kCoordinated, 2));
  EXPECT_NE(a.load.values(), b.load.values());
}

TEST(Experiment, CoordinationReducesPeakAtHighRate) {
  const auto un = run_experiment(
      fast_config(ArrivalScenario::kHigh, SchedulerKind::kUncoordinated));
  const auto co = run_experiment(
      fast_config(ArrivalScenario::kHigh, SchedulerKind::kCoordinated));
  EXPECT_LT(co.peak_kw, un.peak_kw);
  EXPECT_LE(co.peak_kw, un.peak_kw * 0.8) << "expect >=20% peak reduction";
}

TEST(Experiment, CoordinationReducesVariability) {
  const auto un = run_experiment(
      fast_config(ArrivalScenario::kHigh, SchedulerKind::kUncoordinated));
  const auto co = run_experiment(
      fast_config(ArrivalScenario::kHigh, SchedulerKind::kCoordinated));
  EXPECT_LT(co.std_kw, un.std_kw);
}

TEST(Experiment, AverageLoadApproximatelyPreserved) {
  const auto un = run_experiment(
      fast_config(ArrivalScenario::kHigh, SchedulerKind::kUncoordinated));
  const auto co = run_experiment(
      fast_config(ArrivalScenario::kHigh, SchedulerKind::kCoordinated));
  // Coordination shifts bursts by up to maxDCP; with a finite sampling
  // window the means match within ~10%.
  EXPECT_NEAR(co.mean_kw, un.mean_kw, un.mean_kw * 0.10);
}

TEST(Experiment, NoConstraintViolationsEitherStrategy) {
  for (SchedulerKind k :
       {SchedulerKind::kCoordinated, SchedulerKind::kUncoordinated}) {
    const auto r = run_experiment(fast_config(ArrivalScenario::kHigh, k));
    EXPECT_EQ(r.network.min_dcd_violations, 0u) << to_string(k);
    EXPECT_EQ(r.network.service_gap_violations, 0u) << to_string(k);
  }
}

class ScenarioSweep : public ::testing::TestWithParam<ArrivalScenario> {};

TEST_P(ScenarioSweep, MeanLoadTracksLittleLaw) {
  // Expected average load = rate x minDCD x 1 kW (one burst/request),
  // modulo request merging and edge effects.
  const auto r = run_experiment(
      fast_config(GetParam(), SchedulerKind::kUncoordinated));
  const double expected =
      appliance::scenario_rate_per_hour(GetParam()) * 0.25;
  // Poisson arrival-count noise dominates at the low rate (~23 expected
  // arrivals over the horizon), hence the generous band.
  EXPECT_GT(r.mean_kw, expected * 0.55);
  EXPECT_LT(r.mean_kw, expected * 1.45);
}

TEST_P(ScenarioSweep, PeakAtLeastMean) {
  for (SchedulerKind k :
       {SchedulerKind::kCoordinated, SchedulerKind::kUncoordinated}) {
    const auto r = run_experiment(fast_config(GetParam(), k));
    EXPECT_GE(r.peak_kw, r.mean_kw);
    EXPECT_LE(r.peak_kw, 26.0);  // physical bound: 26 x 1 kW
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, ScenarioSweep,
                         ::testing::Values(ArrivalScenario::kLow,
                                           ArrivalScenario::kModerate,
                                           ArrivalScenario::kHigh));

TEST(Experiment, ReplicatedAggregatesSeeds) {
  ExperimentConfig cfg =
      fast_config(ArrivalScenario::kModerate, SchedulerKind::kCoordinated);
  cfg.workload.horizon = sim::minutes(120);
  const ReplicatedResult rep = run_replicated(cfg, 3);
  EXPECT_EQ(rep.peak_kw.count(), 3u);
  EXPECT_GT(rep.peak_kw.mean(), 0.0);
  EXPECT_GT(rep.total_requests, 0u);
}

TEST(Experiment, PaperConfigMatchesPaperSetup) {
  const ExperimentConfig cfg =
      paper_config(ArrivalScenario::kHigh, SchedulerKind::kCoordinated);
  EXPECT_EQ(cfg.han.device_count, 26u);
  EXPECT_EQ(cfg.han.topology_kind, TopologyKind::kFlockLab26);
  EXPECT_EQ(cfg.han.constraints.min_dcd(), sim::minutes(15));
  EXPECT_EQ(cfg.han.constraints.max_dcp(), sim::minutes(30));
  EXPECT_EQ(cfg.han.minicast.round_period, sim::seconds(2));
  EXPECT_EQ(cfg.workload.horizon, sim::minutes(350));
  EXPECT_DOUBLE_EQ(cfg.workload.rate_per_hour, 30.0);
}

TEST(Experiment, LoadSampledEveryMinute) {
  auto cfg = fast_config(ArrivalScenario::kLow, SchedulerKind::kCoordinated);
  cfg.workload.horizon = sim::minutes(60);
  const auto r = run_experiment(cfg);
  // Sampling starts at cp_boot (4 s) and runs to the horizon.
  EXPECT_NEAR(static_cast<double>(r.load.size()), 60.0, 2.0);
  EXPECT_EQ(r.load.interval(), sim::minutes(1));
}

}  // namespace
}  // namespace han::core
