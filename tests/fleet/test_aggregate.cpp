// Feeder aggregation: summing, resampling, metric arithmetic.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fleet/aggregate.hpp"

namespace han::fleet {
namespace {

metrics::TimeSeries series(std::initializer_list<double> values,
                           sim::Duration interval = sim::minutes(1)) {
  metrics::TimeSeries s(sim::TimePoint::epoch(), interval);
  for (double v : values) s.append(v);
  return s;
}

TEST(SumSeries, ElementWiseSum) {
  const metrics::TimeSeries a = series({1.0, 2.0, 3.0});
  const metrics::TimeSeries b = series({10.0, 20.0, 30.0});
  const metrics::TimeSeries sum = sum_series({&a, &b});
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum.at(0), 11.0);
  EXPECT_DOUBLE_EQ(sum.at(1), 22.0);
  EXPECT_DOUBLE_EQ(sum.at(2), 33.0);
  EXPECT_EQ(sum.interval(), a.interval());
  EXPECT_EQ(sum.start(), a.start());
}

TEST(SumSeries, ShorterSeriesZeroPad) {
  const metrics::TimeSeries a = series({1.0, 2.0, 3.0, 4.0});
  const metrics::TimeSeries b = series({5.0});
  const metrics::TimeSeries sum = sum_series({&a, &b});
  ASSERT_EQ(sum.size(), 4u);
  EXPECT_DOUBLE_EQ(sum.at(0), 6.0);
  EXPECT_DOUBLE_EQ(sum.at(3), 4.0);
}

TEST(SumSeries, EmptyInputYieldsEmpty) {
  EXPECT_TRUE(sum_series({}).empty());
}

TEST(SumSeries, AllEmptySeriesYieldEmpty) {
  const metrics::TimeSeries a(sim::TimePoint::epoch(), sim::minutes(1));
  const metrics::TimeSeries b;  // default grid differs — must not matter
  EXPECT_TRUE(sum_series({&a, &b}).empty());
}

TEST(SumSeries, EmptySeriesNeitherConstrainGridNorContribute) {
  // A default-constructed empty series has a meaningless interval; it
  // must not trip the shared-grid check or change the sum.
  const metrics::TimeSeries a = series({1.0, 2.0});
  const metrics::TimeSeries empty;
  const metrics::TimeSeries sum = sum_series({&empty, &a, &empty});
  ASSERT_EQ(sum.size(), 2u);
  EXPECT_DOUBLE_EQ(sum.at(0), 1.0);
  EXPECT_DOUBLE_EQ(sum.at(1), 2.0);
  EXPECT_EQ(sum.interval(), a.interval());
  EXPECT_EQ(sum.start(), a.start());
}

TEST(SumSeries, SingleSeriesIsIdentity) {
  const metrics::TimeSeries a = series({4.0, 5.0, 6.0});
  const metrics::TimeSeries sum = sum_series({&a});
  EXPECT_EQ(sum.values(), a.values());
}

TEST(SumSeries, ManyMismatchedLengthsZeroPad) {
  const metrics::TimeSeries a = series({1.0});
  const metrics::TimeSeries b = series({1.0, 1.0});
  const metrics::TimeSeries c = series({1.0, 1.0, 1.0, 1.0});
  const metrics::TimeSeries sum = sum_series({&a, &b, &c});
  ASSERT_EQ(sum.size(), 4u);
  EXPECT_DOUBLE_EQ(sum.at(0), 3.0);
  EXPECT_DOUBLE_EQ(sum.at(1), 2.0);
  EXPECT_DOUBLE_EQ(sum.at(2), 1.0);
  EXPECT_DOUBLE_EQ(sum.at(3), 1.0);
}

TEST(SumSeries, MismatchedGridThrows) {
  const metrics::TimeSeries a = series({1.0});
  const metrics::TimeSeries b = series({1.0}, sim::minutes(5));
  EXPECT_THROW((void)sum_series({&a, &b}), std::invalid_argument);

  metrics::TimeSeries shifted(sim::TimePoint::epoch() + sim::minutes(1),
                              sim::minutes(1));
  shifted.append(1.0);
  EXPECT_THROW((void)sum_series({&a, &shifted}), std::invalid_argument);
}

TEST(SumSeries, NullSeriesThrows) {
  const metrics::TimeSeries a = series({1.0});
  EXPECT_THROW((void)sum_series({&a, nullptr}), std::invalid_argument);
}

TEST(Resample, AveragesWholeBuckets) {
  const metrics::TimeSeries s = series({1.0, 3.0, 5.0, 7.0});
  const metrics::TimeSeries r = resample(s, sim::minutes(2));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.at(0), 2.0);
  EXPECT_DOUBLE_EQ(r.at(1), 6.0);
  EXPECT_EQ(r.interval(), sim::minutes(2));
}

TEST(Resample, TailBucketAveragedOverActualSize) {
  const metrics::TimeSeries s = series({2.0, 4.0, 9.0});
  const metrics::TimeSeries r = resample(s, sim::minutes(2));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.at(0), 3.0);
  EXPECT_DOUBLE_EQ(r.at(1), 9.0);
}

TEST(Resample, NonMultipleIntervalThrows) {
  const metrics::TimeSeries s = series({1.0, 2.0});
  EXPECT_THROW((void)resample(s, sim::seconds(90)), std::invalid_argument);
}

TEST(Resample, NonPositiveIntervalThrows) {
  const metrics::TimeSeries s = series({1.0, 2.0});
  EXPECT_THROW((void)resample(s, sim::Duration::zero()),
               std::invalid_argument);
  EXPECT_THROW((void)resample(s, sim::minutes(-1)), std::invalid_argument);
}

TEST(Resample, SameIntervalIsIdentity) {
  const metrics::TimeSeries s = series({1.0, 2.0, 3.0});
  const metrics::TimeSeries r = resample(s, sim::minutes(1));
  EXPECT_EQ(r.values(), s.values());
  EXPECT_EQ(r.interval(), s.interval());
}

TEST(Resample, EmptySeriesStaysEmpty) {
  const metrics::TimeSeries s(sim::TimePoint::epoch(), sim::minutes(1));
  const metrics::TimeSeries r = resample(s, sim::minutes(5));
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.interval(), sim::minutes(5));
}

TEST(Resample, SingleSampleAveragesOverItself) {
  const metrics::TimeSeries s = series({7.0});
  const metrics::TimeSeries r = resample(s, sim::minutes(10));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.at(0), 7.0);
}

TEST(Resample, BucketLargerThanSeriesAveragesAll) {
  const metrics::TimeSeries s = series({2.0, 4.0, 6.0});
  const metrics::TimeSeries r = resample(s, sim::minutes(60));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.at(0), 4.0);
}

TEST(FeederMetrics, HandComputedValues) {
  // 4 samples at 15-min interval: 10, 30, 20, 20 kW.
  const metrics::TimeSeries load =
      series({10.0, 30.0, 20.0, 20.0}, sim::minutes(15));
  const FeederMetrics m =
      feeder_metrics(load, /*capacity=*/25.0, /*sum_peaks=*/45.0,
                     /*premises=*/3);
  EXPECT_EQ(m.premises, 3u);
  EXPECT_DOUBLE_EQ(m.coincident_peak_kw, 30.0);
  EXPECT_DOUBLE_EQ(m.mean_kw, 20.0);
  EXPECT_DOUBLE_EQ(m.peak_to_average, 1.5);
  EXPECT_DOUBLE_EQ(m.diversity_factor, 1.5);  // 45 / 30
  EXPECT_DOUBLE_EQ(m.max_step_kw, 20.0);
  // 80 kW-samples * 0.25 h / 1000 = 0.02 MWh.
  EXPECT_DOUBLE_EQ(m.energy_mwh, 0.02);
  // Exactly one sample above 25 kW => 15 overload minutes.
  EXPECT_DOUBLE_EQ(m.overload_minutes, 15.0);
}

TEST(FeederMetrics, NoCapacityDisablesOverload) {
  const metrics::TimeSeries load = series({100.0, 200.0});
  const FeederMetrics m = feeder_metrics(load, 0.0, 200.0, 1);
  EXPECT_DOUBLE_EQ(m.overload_minutes, 0.0);
}

TEST(FeederMetrics, EmptySeriesIsZeroed) {
  const FeederMetrics m = feeder_metrics(metrics::TimeSeries{}, 10.0, 0.0, 0);
  EXPECT_DOUBLE_EQ(m.coincident_peak_kw, 0.0);
  EXPECT_DOUBLE_EQ(m.energy_mwh, 0.0);
}

TEST(SubstationMetrics, InterFeederDiversityFromStaggeredShards) {
  // Shard A peaks in sample 0, shard B in sample 1: the substation
  // carries 25 kW at worst, while the shards' own peaks sum to 30.
  FeederShard a;
  a.feeder = 0;
  a.premises = 2;
  a.load = series({20.0, 5.0, 5.0});
  a.metrics = feeder_metrics(a.load, 15.0, 25.0, 2);
  FeederShard b;
  b.feeder = 1;
  b.premises = 1;
  b.load = series({5.0, 10.0, 5.0});
  b.metrics = feeder_metrics(b.load, 15.0, 12.0, 1);
  const metrics::TimeSeries total = sum_series({&a.load, &b.load});

  const SubstationMetrics m = substation_metrics(total, {a, b}, 20.0);
  EXPECT_EQ(m.feeders, 2u);
  EXPECT_DOUBLE_EQ(m.capacity_kw, 20.0);
  EXPECT_DOUBLE_EQ(m.coincident_peak_kw, 25.0);
  EXPECT_DOUBLE_EQ(m.sum_feeder_peaks_kw, 30.0);
  EXPECT_DOUBLE_EQ(m.inter_feeder_diversity, 1.2);  // 30 / 25
  // One sample (25) above the 20 kW rating => one minute.
  EXPECT_DOUBLE_EQ(m.overload_minutes, 1.0);
}

TEST(SubstationMetrics, EmptyAndSingleShardDegenerate) {
  const SubstationMetrics none =
      substation_metrics(metrics::TimeSeries{}, {}, 10.0);
  EXPECT_EQ(none.feeders, 0u);
  EXPECT_DOUBLE_EQ(none.inter_feeder_diversity, 1.0);

  FeederShard only;
  only.feeder = 0;
  only.premises = 3;
  only.load = series({10.0, 30.0, 20.0});
  only.metrics = feeder_metrics(only.load, 25.0, 45.0, 3);
  const SubstationMetrics m =
      substation_metrics(only.load, {only}, 25.0);
  // A single feeder cannot stagger against itself.
  EXPECT_DOUBLE_EQ(m.inter_feeder_diversity, 1.0);
  EXPECT_DOUBLE_EQ(m.coincident_peak_kw, 30.0);
  EXPECT_DOUBLE_EQ(m.overload_minutes, 1.0);
}

}  // namespace
}  // namespace han::fleet
