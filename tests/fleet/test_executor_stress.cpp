// Executor stress suite — the ThreadSanitizer workload.
//
// The plain executor tests prove functional properties at friendly
// sizes; this suite drives the concurrency machinery hard enough that
// TSan can observe the interesting interleavings: steal storms (tasks
// far cheaper than the dispatch path, so workers spend their time in
// the victim-scan), nested fan-out (outer parallel_for workers
// submitting parallel_for_ranges to an inner pool, exercising
// concurrent submissions into the MPMC rings), exception propagation
// racing normal completion, telemetry attach/flush from many workers,
// and the task-graph machinery itself: per-shard join independence (a
// stalled shard must not hold up another shard's join), graph
// submission races from raw threads, and exceptions crossing join
// nodes.
//
// Run it under -fsanitize=thread (the tsan CI job does); it also runs
// in the ordinary suites as a plain correctness test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fleet/executor.hpp"
#include "telemetry/telemetry.hpp"

namespace han::fleet {
namespace {

TEST(ExecutorStress, StealStormTinyTasks) {
  // 20k near-empty tasks on 4 workers: the deal is round-robin, so
  // every worker constantly exhausts its own deque and scans victims.
  Executor ex(4);
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<std::uint8_t>> hits(kN);
  for (int round = 0; round < 5; ++round) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    ex.parallel_for(kN, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "round " << round << " index " << i;
    }
  }
}

TEST(ExecutorStress, StealStormSkewedCosts) {
  // The first shard gets all the expensive tasks (indices are dealt
  // round-robin, and cost here is keyed on index % workers), so the
  // other workers must steal nearly everything they run.
  Executor ex(4);
  constexpr std::size_t kN = 4000;
  std::atomic<std::uint64_t> sum{0};
  ex.parallel_for(kN, [&sum](std::size_t i) {
    if (i % 4 == 0) {
      volatile std::uint64_t burn = 0;
      for (int k = 0; k < 2000; ++k) burn += static_cast<std::uint64_t>(k);
    }
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ExecutorStress, NestedRangesThroughInnerPool) {
  // Outer workers concurrently submit parallel_for_ranges to a shared
  // inner executor. The MPMC rings must absorb the concurrent
  // submissions and every (outer, inner) cell must be visited exactly
  // once.
  Executor outer(4);
  Executor inner(3);
  static constexpr std::size_t kOuter = 12;
  static constexpr std::size_t kInner = 512;
  std::vector<std::atomic<std::uint8_t>> cells(kOuter * kInner);
  outer.parallel_for(kOuter, [&](std::size_t o) {
    inner.parallel_for_ranges(
        kInner, inner.suggested_grain(kInner),
        [&cells, o](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            cells[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
          }
        });
  });
  for (std::size_t c = 0; c < cells.size(); ++c) {
    ASSERT_EQ(cells[c].load(), 1u) << "cell " << c;
  }
}

TEST(ExecutorStress, ConcurrentSubmittersOneExecutor) {
  // Raw std::threads racing to submit to one executor. The documented
  // contract is that concurrent submissions are safe (the rings are
  // MPMC); under TSan this is the test that would expose a
  // submit-path race.
  Executor ex(4);
  constexpr std::size_t kSubmitters = 6;
  constexpr std::size_t kPerSubmit = 1000;
  std::vector<std::atomic<std::uint32_t>> counts(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&ex, &counts, s]() {
      for (int round = 0; round < 3; ++round) {
        ex.parallel_for_ranges(
            kPerSubmit, 64, [&counts, s](std::size_t begin, std::size_t end) {
              counts[s].fetch_add(static_cast<std::uint32_t>(end - begin),
                                  std::memory_order_relaxed);
            });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(counts[s].load(), 3u * kPerSubmit) << "submitter " << s;
  }
}

TEST(ExecutorStress, ExceptionStormFirstWinsRestComplete) {
  // Many tasks throw concurrently; exactly one exception propagates,
  // every task still runs, and the pool survives for the next job.
  Executor ex(4);
  constexpr std::size_t kN = 2000;
  std::atomic<std::uint32_t> ran{0};
  for (int round = 0; round < 3; ++round) {
    ran.store(0);
    EXPECT_THROW(
        ex.parallel_for(kN,
                        [&ran](std::size_t i) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (i % 7 == 0) {
                            throw std::runtime_error("deliberate");
                          }
                        }),
        std::runtime_error);
    EXPECT_EQ(ran.load(), kN) << "round " << round;
  }
  ran.store(0);
  ex.parallel_for(64, [&ran](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 64u);
}

TEST(ExecutorStress, ExceptionInsideRangesBlock) {
  Executor ex(3);
  std::atomic<std::uint32_t> visited{0};
  EXPECT_THROW(ex.parallel_for_ranges(
                   1000, 32,
                   [&visited](std::size_t begin, std::size_t end) {
                     visited.fetch_add(
                         static_cast<std::uint32_t>(end - begin),
                         std::memory_order_relaxed);
                     if (begin == 0) throw std::logic_error("block 0");
                   }),
               std::logic_error);
  EXPECT_EQ(visited.load(), 1000u);
}

TEST(ExecutorStress, TelemetryFlushFromAllWorkers) {
  // Every worker flushes its per-job activity into the shared Collector
  // (relaxed atomics); totals must still be exact, and TSan must see no
  // race between worker flushes and the submitter reading afterwards.
  Executor ex(4);
  telemetry::Collector collector;
  constexpr std::size_t kN = 5000;
  {
    ExecutorTelemetryScope scope(ex, &collector);
    for (int round = 0; round < 4; ++round) {
      ex.parallel_for(kN, [](std::size_t) {});
    }
  }
  const telemetry::ExecutorActivity activity = collector.executor_activity();
  EXPECT_EQ(activity.parallel_for_calls, 4u);
  EXPECT_EQ(activity.tasks, 4u * kN);
}

TEST(ExecutorStress, RapidJobTurnover) {
  // Many minimal jobs back to back: exercises the retire/wake handshake
  // (graph retirement, done_cv/sleep_cv) more than any single job does.
  Executor ex(4);
  std::atomic<std::uint32_t> ran{0};
  for (int round = 0; round < 500; ++round) {
    ex.parallel_for(4, [&ran](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(ran.load(), 2000u);
}

// --- task-graph stress -------------------------------------------------

TEST(ExecutorStress, GraphPerShardJoinIndependence) {
  // The engine-shaped graph: per-shard leaf tasks gated by one join
  // per shard. Shard B contains a task that blocks until released;
  // shard A's join must retire anyway — the whole point of per-shard
  // joins is that feeder A's control decision does not stall behind
  // feeder B's biggest home.
  Executor ex(2);
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<int> a_ran{0};
  std::atomic<int> b_ran{0};

  Executor::TaskGraph graph;
  std::vector<Executor::TaskId> shard_a;
  std::vector<Executor::TaskId> shard_b;
  for (int i = 0; i < 8; ++i) {
    shard_a.push_back(graph.add([&a_ran]() { ++a_ran; }, /*affinity=*/0));
  }
  shard_b.push_back(graph.add(
      [&entered, &release, &b_ran]() {
        entered.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        ++b_ran;
      },
      /*affinity=*/1));
  for (int i = 0; i < 4; ++i) {
    shard_b.push_back(graph.add([&b_ran]() { ++b_ran; }, /*affinity=*/1));
  }
  const auto join_a = graph.add_join(shard_a);
  const auto join_b = graph.add_join(shard_b);
  auto run = ex.submit_graph(std::move(graph));

  // Wait until a WORKER owns the blocking task before this thread
  // starts helping: wait(join_a) executes pending tasks itself, and
  // picking up the blocker here would deadlock the release below.
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  run.wait(join_a);
  EXPECT_EQ(a_ran.load(), 8);
  EXPECT_TRUE(run.done(join_a));
  EXPECT_FALSE(run.done(join_b)) << "join B retired while its task blocked";

  release.store(true, std::memory_order_release);
  run.wait(join_b);
  EXPECT_EQ(b_ran.load(), 5);
  run.wait_all();
}

TEST(ExecutorStress, ConcurrentGraphSubmissions) {
  // Raw threads racing whole graphs (leaves + join continuation) into
  // one executor. Every graph's continuation must observe all of its
  // own leaves and nothing else; totals must be exact.
  Executor ex(4);
  constexpr std::size_t kSubmitters = 6;
  constexpr std::size_t kLeaves = 64;
  constexpr int kRounds = 20;
  std::vector<std::atomic<std::uint32_t>> joined(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&ex, &joined, s]() {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<std::uint32_t> leaves_run{0};
        Executor::TaskGraph graph;
        std::vector<Executor::TaskId> leaves;
        leaves.reserve(kLeaves);
        for (std::size_t i = 0; i < kLeaves; ++i) {
          leaves.push_back(graph.add(
              [&leaves_run]() {
                leaves_run.fetch_add(1, std::memory_order_relaxed);
              },
              /*affinity=*/i % 4));
        }
        graph.add_join(leaves, [&joined, &leaves_run, s]() {
          // The join body runs after every dependency retired, so the
          // leaf count must already be complete here.
          joined[s].fetch_add(leaves_run.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
        });
        auto run = ex.submit_graph(std::move(graph));
        run.wait_all();
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(joined[s].load(), kRounds * kLeaves) << "submitter " << s;
  }
}

TEST(ExecutorStress, ExceptionThroughJoinNodes) {
  // A leaf throws. Errors do not cancel the graph: the remaining
  // leaves and the join continuation still run (the engine's control
  // plane depends on joins always retiring), and wait_all() rethrows
  // the first error afterwards. The pool survives for the next graph.
  Executor ex(4);
  for (int round = 0; round < 3; ++round) {
    std::atomic<std::uint32_t> ran{0};
    std::atomic<bool> join_ran{false};
    Executor::TaskGraph graph;
    std::vector<Executor::TaskId> leaves;
    for (std::size_t i = 0; i < 256; ++i) {
      leaves.push_back(graph.add([&ran, i]() {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i % 31 == 0) throw std::runtime_error("leaf failed");
      }));
    }
    const auto join = graph.add_join(leaves, [&join_ran]() {
      join_ran.store(true, std::memory_order_release);
    });
    auto run = ex.submit_graph(std::move(graph));
    run.wait(join);  // wait() observes completion, not errors
    EXPECT_TRUE(join_ran.load(std::memory_order_acquire));
    EXPECT_EQ(ran.load(), 256u) << "round " << round;
    EXPECT_THROW(run.wait_all(), std::runtime_error);
  }
  std::atomic<std::uint32_t> ran{0};
  ex.parallel_for(64, [&ran](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 64u);
}

}  // namespace
}  // namespace han::fleet
