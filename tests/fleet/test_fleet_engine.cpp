// FleetEngine: determinism, thread-count independence, heterogeneity,
// scenario registry.
#include <gtest/gtest.h>

#include <set>

#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"

namespace han::fleet {
namespace {

/// Small fast fleet: 6 premises, 2 h horizon, 30 s CP rounds.
FleetConfig tiny_fleet(std::uint64_t seed) {
  FleetConfig cfg;
  cfg.premise_count = 6;
  cfg.seed = seed;
  cfg.horizon = sim::hours(2);
  cfg.round_period = sim::seconds(30);
  cfg.profile.min_devices = 3;
  cfg.profile.max_devices = 6;
  cfg.profile.base_rate_per_device_hour = 0.5;
  cfg.profile.surge = true;
  cfg.profile.surge_start = sim::minutes(30);
  cfg.profile.surge_end = sim::minutes(90);
  cfg.profile.surge_clusters_per_hour = 3.0;
  cfg.profile.surge_cluster_size = 4;
  return cfg;
}

void expect_identical(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.premises.size(), b.premises.size());
  for (std::size_t i = 0; i < a.premises.size(); ++i) {
    EXPECT_EQ(a.premises[i].device_count, b.premises[i].device_count) << i;
    EXPECT_EQ(a.premises[i].scheduler, b.premises[i].scheduler) << i;
    EXPECT_EQ(a.premises[i].requests, b.premises[i].requests) << i;
    EXPECT_EQ(a.premises[i].load.values(), b.premises[i].load.values()) << i;
  }
  EXPECT_EQ(a.feeder_load.values(), b.feeder_load.values());
  EXPECT_DOUBLE_EQ(a.feeder.coincident_peak_kw, b.feeder.coincident_peak_kw);
  EXPECT_DOUBLE_EQ(a.feeder.mean_kw, b.feeder.mean_kw);
  EXPECT_DOUBLE_EQ(a.feeder.energy_mwh, b.feeder.energy_mwh);
  EXPECT_DOUBLE_EQ(a.feeder.overload_minutes, b.feeder.overload_minutes);
}

TEST(FleetEngine, SameSeedSameAggregate) {
  const FleetEngine engine(tiny_fleet(42));
  expect_identical(engine.run(2), engine.run(2));
}

TEST(FleetEngine, ThreadCountDoesNotChangeResults) {
  const FleetEngine engine(tiny_fleet(42));
  const FleetResult one = engine.run(1);
  expect_identical(one, engine.run(4));
  expect_identical(one, engine.run(7));
}

TEST(FleetEngine, DifferentSeedsDiffer) {
  const FleetResult a = FleetEngine(tiny_fleet(1)).run(2);
  const FleetResult b = FleetEngine(tiny_fleet(2)).run(2);
  EXPECT_NE(a.feeder_load.values(), b.feeder_load.values());
}

TEST(FleetEngine, SpecsAreDeterministicAndHeterogeneous) {
  FleetConfig cfg = tiny_fleet(9);
  cfg.premise_count = 24;
  const FleetEngine engine(cfg);

  std::set<std::size_t> device_counts;
  std::set<std::uint64_t> han_seeds;
  for (std::size_t i = 0; i < cfg.premise_count; ++i) {
    const PremiseSpec a = engine.make_spec(i);
    const PremiseSpec b = engine.make_spec(i);
    EXPECT_EQ(a.experiment.han.seed, b.experiment.han.seed) << i;
    EXPECT_EQ(a.trace, b.trace) << i;
    device_counts.insert(a.experiment.han.device_count);
    han_seeds.insert(a.experiment.han.seed);
  }
  // Premises are distinct deployments...
  EXPECT_EQ(han_seeds.size(), cfg.premise_count);
  // ...and the profile actually produces size diversity.
  EXPECT_GT(device_counts.size(), 1u);
}

TEST(FleetEngine, PremiseSeriesShareTheSampleGrid) {
  const FleetEngine engine(tiny_fleet(3));
  const FleetResult r = engine.run(2);
  ASSERT_FALSE(r.premises.empty());
  const metrics::TimeSeries& first = r.premises.front().load;
  for (const PremiseResult& p : r.premises) {
    EXPECT_EQ(p.load.start(), first.start());
    EXPECT_EQ(p.load.interval(), first.interval());
    EXPECT_EQ(p.load.size(), first.size());
  }
  EXPECT_EQ(r.feeder_load.size(), first.size());
}

TEST(FleetEngine, SurgeRequestsLandInsideTheWindow) {
  const FleetConfig cfg = tiny_fleet(5);
  const FleetEngine engine(cfg);
  const PremiseSpec spec = engine.make_spec(0);
  // All requests respect warmup; trace is time-sorted.
  for (std::size_t i = 1; i < spec.trace.size(); ++i) {
    EXPECT_LE(spec.trace[i - 1].at, spec.trace[i].at);
  }
  for (const appliance::Request& r : spec.trace) {
    EXPECT_GE(r.at.since_epoch(), sim::Duration::zero());
    EXPECT_LE(r.at.since_epoch(), cfg.horizon);
  }
}

TEST(FleetEngine, SurgePastTheHorizonIsDropped) {
  // Surge window extends beyond the run: those requests would never
  // execute, so they must not be generated (or counted as served).
  FleetConfig cfg = tiny_fleet(5);
  cfg.profile.surge_start = sim::minutes(90);
  cfg.profile.surge_end = sim::minutes(300);  // horizon is 120 min
  const FleetEngine engine(cfg);
  for (std::size_t i = 0; i < cfg.premise_count; ++i) {
    for (const appliance::Request& r : engine.make_spec(i).trace) {
      EXPECT_LE(r.at.since_epoch(), cfg.horizon);
    }
  }
}

TEST(FleetEngine, MisorderedProfileRangesThrow) {
  FleetConfig bad_rated = tiny_fleet(1);
  bad_rated.profile.min_rated_kw = 2.0;
  bad_rated.profile.max_rated_kw = 1.0;
  EXPECT_THROW(FleetEngine{bad_rated}, std::invalid_argument);

  FleetConfig bad_base = tiny_fleet(1);
  bad_base.profile.min_base_kw = 0.5;
  bad_base.profile.max_base_kw = 0.1;
  EXPECT_THROW(FleetEngine{bad_base}, std::invalid_argument);
}

TEST(FleetEngine, ConstraintsAreNeverViolated) {
  const FleetResult r = FleetEngine(tiny_fleet(11)).run(2);
  EXPECT_EQ(r.min_dcd_violations, 0u);
  EXPECT_EQ(r.service_gap_violations, 0u);
}

TEST(Scenario, RegistryHasAllPresets) {
  ASSERT_EQ(scenarios().size(), 9u);
  for (const ScenarioInfo& s : scenarios()) {
    EXPECT_EQ(to_string(s.kind), s.name);
    const auto back = scenario_from_name(s.name);
    ASSERT_TRUE(back.has_value()) << s.name;
    EXPECT_EQ(*back, s.kind);
  }
  EXPECT_FALSE(scenario_from_name("nope").has_value());
}

TEST(Scenario, PresetsApplyPremiseCountAndSeed) {
  const FleetConfig cfg =
      make_scenario(ScenarioKind::kEveningPeak, 17, /*seed=*/99);
  EXPECT_EQ(cfg.premise_count, 17u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_TRUE(cfg.profile.surge);
  EXPECT_GT(cfg.transformer_capacity_kw, 0.0);

  const FleetConfig mixed =
      make_scenario(ScenarioKind::kMixedAdoption, 10);
  EXPECT_DOUBLE_EQ(mixed.profile.coordination_adoption, 0.5);
  const FleetConfig sweep = make_scenario(ScenarioKind::kScaleSweep, 10);
  EXPECT_LT(sweep.horizon, mixed.horizon);
}

}  // namespace
}  // namespace han::fleet
