// Executor: completeness, reuse, imbalance (stealing), exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fleet/executor.hpp"

namespace han::fleet {
namespace {

TEST(Executor, RunsEveryIndexExactlyOnce) {
  Executor ex(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ex.parallel_for(kN, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Executor, ZeroTasksIsANoOp) {
  Executor ex(2);
  ex.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(Executor, FewerTasksThanThreads) {
  Executor ex(8);
  std::atomic<int> ran{0};
  ex.parallel_for(3, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 3);
}

TEST(Executor, SingleThreadExecutesAll) {
  Executor ex(1);
  EXPECT_EQ(ex.thread_count(), 1u);
  std::atomic<int> ran{0};
  ex.parallel_for(64, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 64);
}

TEST(Executor, PoolIsReusableAcrossCalls) {
  Executor ex(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    ex.parallel_for(17, [&ran](std::size_t) { ++ran; });
    ASSERT_EQ(ran.load(), 17) << "round " << round;
  }
}

TEST(Executor, UnbalancedTasksAllComplete) {
  // One task is 100x the others; stealing must drain the rest anyway.
  Executor ex(4);
  std::atomic<int> ran{0};
  ex.parallel_for(40, [&ran](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(i == 0 ? 50 : 1));
    ++ran;
  });
  EXPECT_EQ(ran.load(), 40);
}

TEST(Executor, FirstExceptionPropagates) {
  Executor ex(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ex.parallel_for(32,
                      [&ran](std::size_t i) {
                        ++ran;
                        if (i == 7) throw std::runtime_error("task 7 failed");
                      }),
      std::runtime_error);
  // Remaining tasks still execute (the pool is not poisoned).
  EXPECT_EQ(ran.load(), 32);
  ran = 0;
  ex.parallel_for(8, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(Executor, DefaultThreadCountIsPositive) {
  Executor ex;
  EXPECT_GE(ex.thread_count(), 1u);
}

}  // namespace
}  // namespace han::fleet
